package replica

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"smalldb/internal/netsim"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// fastPolicy fails fast when a peer is unreachable, so tests that
// deliberately partition do not stall a full default retry budget per push.
var fastPolicy = rpc.RetryPolicy{MaxAttempts: 2, Budget: 200 * time.Millisecond, BaseDelay: time.Millisecond, PerTry: 100 * time.Millisecond}

// netNode is one replica served over a netsim endpoint.
type netNode struct {
	node *Node
	srv  *rpc.Server
	l    *netsim.Listener
}

// openNetNode opens a node on fs and serves its Replica service at the
// netsim endpoint named cfgName.
func openNetNode(t *testing.T, nw *netsim.Network, cfgName string, fs vfs.FS) *netNode {
	t.Helper()
	n, err := Open(Config{Name: cfgName, FS: fs, HistoryCap: 1000, PushPolicy: fastPolicy, SyncPolicy: fastPolicy})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	if err := srv.Register("Replica", NewService(n)); err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return &netNode{node: n, srv: srv, l: l}
}

// connect registers a reconnecting client from a to b's endpoint.
func connect(a, b *netNode, nw *netsim.Network) *rpc.Client {
	c := rpc.NewClientDialer(nw.Dialer(a.node.Name(), b.node.Name()))
	a.node.AddPeer(b.node.Name(), c)
	return c
}

func (n *netNode) close() {
	n.srv.Close()
	n.l.Close()
	n.node.Close()
}

// converged reports whether both nodes hold identical version vectors.
func converged(t *testing.T, a, b *Node) bool {
	t.Helper()
	va, err := a.Vector()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Vector()
	if err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(va, vb)
}

// TestPartitionHealConvergence partitions a live pair, keeps updating both
// sides, heals, and requires anti-entropy to converge the replicas with
// every acked update present on both.
func TestPartitionHealConvergence(t *testing.T) {
	nw := netsim.New(1, netsim.Options{})
	defer nw.Close()
	a := openNetNode(t, nw, "a", vfs.NewMem(1))
	b := openNetNode(t, nw, "b", vfs.NewMem(2))
	defer a.close()
	defer b.close()
	ab := connect(a, b, nw)
	ba := connect(b, a, nw)

	if err := a.node.Set("pre/partition", "v0"); err != nil {
		t.Fatal(err)
	}
	nw.Partition("a", "b")
	// Both sides keep accepting updates: each commits locally (the ack)
	// and fails to push — the §7 model, where propagation is best-effort
	// and anti-entropy is the guarantee.
	for i := 0; i < 5; i++ {
		if err := a.node.Set(fmt.Sprintf("part/a%d", i), "va"); err != nil {
			t.Fatalf("acked update on a during partition: %v", err)
		}
		if err := b.node.Set(fmt.Sprintf("part/b%d", i), "vb"); err != nil {
			t.Fatalf("acked update on b during partition: %v", err)
		}
	}
	if converged(t, a.node, b.node) {
		t.Fatal("nodes converged across a partition")
	}
	nw.Heal("a", "b")
	if err := a.node.SyncWith(ab); err != nil {
		t.Fatalf("sync a<-b after heal: %v", err)
	}
	if err := b.node.SyncWith(ba); err != nil {
		t.Fatalf("sync b<-a after heal: %v", err)
	}
	if !converged(t, a.node, b.node) {
		t.Fatal("nodes did not converge after heal")
	}
	for i := 0; i < 5; i++ {
		for _, n := range []*Node{a.node, b.node} {
			if v, err := n.Lookup(fmt.Sprintf("part/a%d", i)); err != nil || v != "va" {
				t.Fatalf("%s: part/a%d = %q, %v", n.Name(), i, v, err)
			}
			if v, err := n.Lookup(fmt.Sprintf("part/b%d", i)); err != nil || v != "vb" {
				t.Fatalf("%s: part/b%d = %q, %v", n.Name(), i, v, err)
			}
		}
	}
}

// TestAckedUpdateSurvivesPartitionAndCrash composes netsim with faultfs:
// an update acked by node a while partitioned from b must survive the
// partition plus a crash of a — after a restarts from its durable image
// and the partition heals, both replicas hold the update.
func TestAckedUpdateSurvivesPartitionAndCrash(t *testing.T) {
	nw := netsim.New(1, netsim.Options{})
	defer nw.Close()
	ffs := faultfs.New(vfs.NewMem(1), faultfs.Options{CrashAt: faultfs.Never})
	a := openNetNode(t, nw, "a", ffs)
	b := openNetNode(t, nw, "b", vfs.NewMem(2))
	defer b.close()
	connect(a, b, nw)
	ba := connect(b, a, nw)

	nw.Partition("a", "b")
	if err := a.node.Set("acked/during/partition", "survivor"); err != nil {
		t.Fatalf("update not acked: %v", err)
	}
	// Crash a: freeze the synced-only durable image, as a power cut
	// would, and abandon the live process state.
	frozen := ffs.Snapshot()
	a.close() // tear down the dead incarnation (different disk by now)

	// a restarts from its durable image; the partition heals.
	nw.Heal("a", "b")
	a2 := openNetNode(t, nw, "a", frozen)
	defer a2.close()
	connect(a2, b, nw)
	ba.Close()
	ba2 := connect(b, a2, nw)

	if v, err := a2.node.Lookup("acked/during/partition"); err != nil || v != "survivor" {
		t.Fatalf("acked update lost across crash: %q, %v", v, err)
	}
	if err := b.node.SyncWith(ba2); err != nil {
		t.Fatalf("anti-entropy after heal+restart: %v", err)
	}
	if v, err := b.node.Lookup("acked/during/partition"); err != nil || v != "survivor" {
		t.Fatalf("acked update never reached the peer: %q, %v", v, err)
	}
}

// TestConvergenceUnderHostileNetwork runs both writers through a lossy,
// jittery link; retries absorb what they can, anti-entropy repairs the
// rest, and the pair must end converged once the weather clears.
func TestConvergenceUnderHostileNetwork(t *testing.T) {
	nw := netsim.New(7, netsim.Options{Profile: netsim.Profile{
		DropProb:     0.05,
		DelayProb:    0.2,
		MaxDelay:     200 * time.Microsecond,
		DialFailProb: 0.1,
	}})
	defer nw.Close()
	a := openNetNode(t, nw, "a", vfs.NewMem(1))
	b := openNetNode(t, nw, "b", vfs.NewMem(2))
	defer a.close()
	defer b.close()
	ab := connect(a, b, nw)
	ba := connect(b, a, nw)

	for i := 0; i < 40; i++ {
		if err := a.node.Set(fmt.Sprintf("h/a%d", i), "x"); err != nil {
			t.Fatalf("acked update failed on a: %v", err)
		}
		if err := b.node.Set(fmt.Sprintf("h/b%d", i), "x"); err != nil {
			t.Fatalf("acked update failed on b: %v", err)
		}
	}
	// Clear weather; anti-entropy must finish the job.
	nw.SetProfile(netsim.Profile{})
	for round := 0; ; round++ {
		if err := a.node.SyncWith(ab); err != nil {
			t.Fatalf("sync a<-b: %v", err)
		}
		if err := b.node.SyncWith(ba); err != nil {
			t.Fatalf("sync b<-a: %v", err)
		}
		if converged(t, a.node, b.node) {
			break
		}
		if round > 10 {
			t.Fatal("replicas failed to converge after the network healed")
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := a.node.Lookup(fmt.Sprintf("h/b%d", i)); err != nil {
			t.Fatalf("a missing h/b%d: %v", i, err)
		}
		if _, err := b.node.Lookup(fmt.Sprintf("h/a%d", i)); err != nil {
			t.Fatalf("b missing h/a%d: %v", i, err)
		}
	}
}
