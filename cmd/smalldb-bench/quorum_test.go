package main

import "testing"

// TestQuorumCommitSection smoke-runs the quorum_commit bench section and
// prints the numbers the CI gate reads, so the section's health is
// checkable without the full metrics workload.
func TestQuorumCommitSection(t *testing.T) {
	if testing.Short() {
		t.Skip("bench section; run without -short")
	}
	out, err := quorumCommitJSON(1987, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("majority_p99_ns=%v pair_p99_ns=%v ratio=%.2f",
		out["majority_p99_ns"], out["pair_p99_ns"], out["majority_vs_pair_p99"])
	if out["majority_p99_ns"].(int64) <= 0 {
		t.Fatal("empty majority latency summary")
	}
}
