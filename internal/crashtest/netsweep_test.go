package crashtest

import (
	"testing"
	"time"

	"smalldb/internal/netsim"
)

// hostileProfile is the weather the bounded sweeps run under: enough loss
// and jitter that retries genuinely fire, mild enough that the bounded
// slice stays fast.
var hostileProfile = netsim.Profile{
	DropProb:     0.05,
	DelayProb:    0.2,
	MaxDelay:     200 * time.Microsecond,
	DialFailProb: 0.1,
}

// TestNetSweepBoundedSlice runs a bounded slice of the partition sweep —
// the full sweep lives behind cmd/crashtest -net.
func TestNetSweepBoundedSlice(t *testing.T) {
	res, err := RunNet(NetConfig{
		Seed:    1,
		Ops:     24,
		Window:  4,
		From:    0,
		To:      8,
		Profile: hostileProfile,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("sweep replayed no points")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestNetSweepWithCrash composes the partition with a power failure of the
// acking node at the heal point: updates acked during the partition must
// survive both.
func TestNetSweepWithCrash(t *testing.T) {
	res, err := RunNet(NetConfig{
		Seed:    2,
		Ops:     20,
		Window:  4,
		From:    0,
		To:      6,
		Stride:  2,
		Crash:   true,
		Profile: hostileProfile,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("sweep replayed no points")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}
