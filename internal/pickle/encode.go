package pickle

import (
	"encoding"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
)

// The encoder is organized around compiled codec plans: on the first
// encounter of a Go type, a per-type encode program — a tree of small
// closures with every reflect.Kind decision, field table and type
// definition resolved ahead of time — is compiled and cached in a
// package-wide sync.Map. Steady-state encoding therefore walks no
// reflection trees: each value dispatches straight into its type's program,
// which appends bytes to a grow-only buffer. Marshal and AppendMarshal run
// on pooled Encoders, so pickling a registered update in the store's commit
// path costs near-zero allocations.

// An Encoder pickles values onto an output stream. Struct type definitions
// are emitted once per Encoder; pointer/map identity is tracked per Encode
// call, so each Encode produces an independently decodable value graph.
type Encoder struct {
	w        io.Writer
	buf      []byte // output accumulates here; flushed to w per Encode
	types    map[reflect.Type]uint64
	wroteHdr bool
	err      error // first error; sticky

	// Per-Encode-call state: the identity table for shared pointers and
	// maps, and the recursion depth.
	refs    map[uintptr]uint64
	nextRef uint64
	depth   int
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, types: make(map[reflect.Type]uint64)}
}

// Encode pickles v, which may be any value built from bools, integers,
// floats, complex numbers, strings, slices, arrays, maps, structs (exported
// fields only), pointers and registered interface values.
func (e *Encoder) Encode(v any) error {
	if e.err != nil {
		return e.err
	}
	if !e.wroteHdr {
		e.buf = append(e.buf, magic)
		e.wroteHdr = true
	}
	if len(e.refs) > 0 {
		clear(e.refs)
	}
	e.nextRef = 0
	e.depth = 0
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		e.buf = append(e.buf, tNil)
	} else {
		encoderOf(rv.Type())(e, rv)
	}
	e.flush()
	return e.err
}

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// enter counts one level of value nesting, failing the encode when the
// value recurses past MaxDepth (a structure with unbounded recursion that
// never passes through a pointer or map, whose identity table would have
// caught the cycle).
func (e *Encoder) enter() bool {
	e.depth++
	if e.depth > MaxDepth {
		e.fail(errf("value exceeds maximum depth %d (unbounded recursion without pointers?)", MaxDepth))
		return false
	}
	return true
}

// ref assigns the next identity-table id to the pointer or map at p.
func (e *Encoder) ref(p uintptr) uint64 {
	if e.refs == nil {
		e.refs = make(map[uintptr]uint64)
	}
	id := e.nextRef
	e.nextRef++
	e.refs[p] = id
	return id
}

// flush drains the accumulated buffer to the underlying writer. A
// buffer-only encoder (Marshal, AppendMarshal) has no writer and never
// flushes.
func (e *Encoder) flush() {
	if e.w == nil || len(e.buf) == 0 {
		return
	}
	if e.err == nil {
		if _, err := e.w.Write(e.buf); err != nil {
			e.err = err
		}
	}
	e.buf = e.buf[:0]
}

// maybeFlush bounds the buffer while streaming a large value (a whole
// database root during a checkpoint) through an io.Writer.
func (e *Encoder) maybeFlush() {
	if e.w != nil && len(e.buf) >= 1<<15 {
		e.flush()
	}
}

func appendLenPrefixed(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

var binaryMarshalerType = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()

// binaryMarshalCache caches the per-type answer of usesBinaryMarshaling.
var binaryMarshalCache sync.Map // reflect.Type -> bool

// usesBinaryMarshaling reports whether rt opts out of structural pickling
// by implementing both encoding.BinaryMarshaler and BinaryUnmarshaler
// (checked on *T for the unmarshal side), as time.Time does.
func usesBinaryMarshaling(rt reflect.Type) bool {
	if v, ok := binaryMarshalCache.Load(rt); ok {
		return v.(bool)
	}
	uses := false
	if rt.Kind() == reflect.Struct && rt.Implements(binaryMarshalerType) {
		_, uses = reflect.PointerTo(rt).MethodByName("UnmarshalBinary")
	}
	binaryMarshalCache.Store(rt, uses)
	return uses
}

// An encFn is one compiled encode program: it appends the pickled form of a
// value of one fixed static type to e.buf.
type encFn func(e *Encoder, v reflect.Value)

// encPlans caches the compiled per-type encode programs.
var encPlans sync.Map // reflect.Type -> encFn

// encoderOf returns rt's compiled encode program, compiling it on first
// use.
func encoderOf(rt reflect.Type) encFn {
	if f, ok := encPlans.Load(rt); ok {
		return f.(encFn)
	}
	// Publish a forwarding stub before compiling so that compiling a type
	// that (indirectly) contains itself terminates: the inner reference
	// resolves to the stub, which waits for the real program.
	var (
		wg sync.WaitGroup
		fn encFn
	)
	wg.Add(1)
	stub := encFn(func(e *Encoder, v reflect.Value) {
		wg.Wait()
		fn(e, v)
	})
	if actual, loaded := encPlans.LoadOrStore(rt, stub); loaded {
		return actual.(encFn)
	}
	fn = buildEncoder(rt)
	wg.Done()
	encPlans.Store(rt, fn)
	codec.encPlanCompiles.Add(1)
	return fn
}

// buildEncoder compiles the encode program for rt, resolving every kind
// decision now so the returned program makes none per value.
func buildEncoder(rt reflect.Type) encFn {
	if rt.Kind() == reflect.Struct && usesBinaryMarshaling(rt) {
		return encBinaryMarshaler
	}
	switch rt.Kind() {
	case reflect.Bool:
		return encBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return encInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return encUint
	case reflect.Float32:
		return encFloat32
	case reflect.Float64:
		return encFloat64
	case reflect.Complex64, reflect.Complex128:
		return encComplex
	case reflect.String:
		return encString
	case reflect.Slice:
		return buildSliceEncoder(rt)
	case reflect.Array:
		return buildArrayEncoder(rt)
	case reflect.Map:
		return buildMapEncoder(rt)
	case reflect.Struct:
		return buildStructEncoder(rt)
	case reflect.Pointer:
		return buildPointerEncoder(rt)
	case reflect.Interface:
		return encInterface
	default:
		return func(e *Encoder, v reflect.Value) {
			e.fail(errf("cannot pickle value of kind %v (%v)", rt.Kind(), rt))
		}
	}
}

func encBool(e *Encoder, v reflect.Value) {
	if v.Bool() {
		e.buf = append(e.buf, tTrue)
	} else {
		e.buf = append(e.buf, tFalse)
	}
}

func encInt(e *Encoder, v reflect.Value) {
	e.buf = append(e.buf, tInt)
	e.buf = binary.AppendVarint(e.buf, v.Int())
}

func encUint(e *Encoder, v reflect.Value) {
	e.buf = append(e.buf, tUint)
	e.buf = binary.AppendUvarint(e.buf, v.Uint())
}

func encFloat32(e *Encoder, v reflect.Value) {
	e.buf = append(e.buf, tFloat32)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(v.Float())))
}

func encFloat64(e *Encoder, v reflect.Value) {
	e.buf = append(e.buf, tFloat64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v.Float()))
}

func encComplex(e *Encoder, v reflect.Value) {
	c := v.Complex()
	e.buf = append(e.buf, tComplex)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(real(c)))
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(imag(c)))
}

func encString(e *Encoder, v reflect.Value) {
	e.buf = append(e.buf, tString)
	e.buf = appendLenPrefixed(e.buf, v.String())
	e.maybeFlush()
}

func encBytes(e *Encoder, v reflect.Value) {
	if v.IsNil() {
		e.buf = append(e.buf, tNil)
		return
	}
	b := v.Bytes()
	e.buf = append(e.buf, tBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
	e.maybeFlush()
}

func encBinaryMarshaler(e *Encoder, v reflect.Value) {
	bm := v.Interface().(encoding.BinaryMarshaler)
	data, err := bm.MarshalBinary()
	if err != nil {
		e.fail(errf("MarshalBinary of %v: %v", v.Type(), err))
		return
	}
	e.buf = append(e.buf, tBinary)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(data)))
	e.buf = append(e.buf, data...)
	e.maybeFlush()
}

func buildSliceEncoder(rt reflect.Type) encFn {
	if rt.Elem().Kind() == reflect.Uint8 {
		return encBytes
	}
	elem := encoderOf(rt.Elem())
	return func(e *Encoder, v reflect.Value) {
		if v.IsNil() {
			e.buf = append(e.buf, tNil)
			return
		}
		if !e.enter() {
			return
		}
		n := v.Len()
		e.buf = append(e.buf, tSlice)
		e.buf = binary.AppendUvarint(e.buf, uint64(n))
		for i := 0; i < n && e.err == nil; i++ {
			elem(e, v.Index(i))
			e.maybeFlush()
		}
		e.depth--
	}
}

func buildArrayEncoder(rt reflect.Type) encFn {
	elem := encoderOf(rt.Elem())
	n := rt.Len()
	return func(e *Encoder, v reflect.Value) {
		if !e.enter() {
			return
		}
		e.buf = append(e.buf, tArray)
		e.buf = binary.AppendUvarint(e.buf, uint64(n))
		for i := 0; i < n && e.err == nil; i++ {
			elem(e, v.Index(i))
			e.maybeFlush()
		}
		e.depth--
	}
}

func buildMapEncoder(rt reflect.Type) encFn {
	if rt.Key().Kind() == reflect.String {
		return buildStringMapEncoder(rt)
	}
	keyFn := encoderOf(rt.Key())
	valFn := encoderOf(rt.Elem())
	cmp := keyComparer(rt.Key())
	return func(e *Encoder, v reflect.Value) {
		if v.IsNil() {
			e.buf = append(e.buf, tNil)
			return
		}
		if id, ok := e.refs[v.Pointer()]; ok {
			e.buf = append(e.buf, tRef)
			e.buf = binary.AppendUvarint(e.buf, id)
			return
		}
		if !e.enter() {
			return
		}
		id := e.ref(v.Pointer())
		e.buf = append(e.buf, tMap)
		e.buf = binary.AppendUvarint(e.buf, id)
		e.buf = binary.AppendUvarint(e.buf, uint64(v.Len()))
		// Deterministic output for maps whose key type has a compiled
		// comparer: sort the keys so the same logical map always pickles
		// to the same bytes, making checkpoints reproducible and
		// diffable. Maps with keys the comparer cannot order (pointers,
		// interfaces) are emitted in iteration order; decode is
		// unaffected.
		keys := v.MapKeys()
		if cmp != nil {
			sort.Slice(keys, func(i, j int) bool { return cmp(keys[i], keys[j]) < 0 })
		}
		for _, k := range keys {
			if e.err != nil {
				break
			}
			keyFn(e, k)
			valFn(e, v.MapIndex(k))
			e.maybeFlush()
		}
		e.depth--
	}
}

// buildStringMapEncoder is the compiled program for the dominant map shape,
// string-keyed maps (directories, tables): keys are extracted once through a
// reused iteration buffer and sorted as a plain []string, avoiding the
// reflect.Value swap cost that dominates sorting large maps generically.
func buildStringMapEncoder(rt reflect.Type) encFn {
	valFn := encoderOf(rt.Elem())
	kt := rt.Key()
	return func(e *Encoder, v reflect.Value) {
		if v.IsNil() {
			e.buf = append(e.buf, tNil)
			return
		}
		if id, ok := e.refs[v.Pointer()]; ok {
			e.buf = append(e.buf, tRef)
			e.buf = binary.AppendUvarint(e.buf, id)
			return
		}
		if !e.enter() {
			return
		}
		id := e.ref(v.Pointer())
		n := v.Len()
		e.buf = append(e.buf, tMap)
		e.buf = binary.AppendUvarint(e.buf, id)
		e.buf = binary.AppendUvarint(e.buf, uint64(n))
		ks := make([]string, 0, n)
		kbuf := reflect.New(kt).Elem()
		for iter := v.MapRange(); iter.Next(); {
			kbuf.SetIterKey(iter)
			ks = append(ks, kbuf.String())
		}
		sort.Strings(ks)
		for _, k := range ks {
			if e.err != nil {
				break
			}
			e.buf = append(e.buf, tString)
			e.buf = appendLenPrefixed(e.buf, k)
			kbuf.SetString(k)
			valFn(e, v.MapIndex(kbuf))
			e.maybeFlush()
		}
		e.depth--
	}
}

// structFields caches, per struct type, the exported fields we pickle.
var structFields sync.Map // reflect.Type -> []fieldInfo

type fieldInfo struct {
	name  string
	index int
}

func fieldsOf(rt reflect.Type) []fieldInfo {
	if f, ok := structFields.Load(rt); ok {
		return f.([]fieldInfo)
	}
	var fields []fieldInfo
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		name := f.Name
		if tag, ok := f.Tag.Lookup("pickle"); ok {
			if tag == "-" {
				continue
			}
			name = tag
		}
		fields = append(fields, fieldInfo{name: name, index: i})
	}
	structFields.Store(rt, fields)
	return fields
}

// structEncPlan is the compiled program for one struct type: the field
// programs in pickle order and the type's inline stream definition,
// pre-encoded so its first use per Encoder is a single append.
type structEncPlan struct {
	rt      reflect.Type
	typedef []byte // name, field count, field names — wire-ready
	idx     []int  // reflect field indices, parallel to fns
	fns     []encFn
}

func buildStructEncoder(rt reflect.Type) encFn {
	fields := fieldsOf(rt)
	p := &structEncPlan{rt: rt}
	p.typedef = appendLenPrefixed(p.typedef, rt.String())
	p.typedef = binary.AppendUvarint(p.typedef, uint64(len(fields)))
	for _, f := range fields {
		p.typedef = appendLenPrefixed(p.typedef, f.name)
		p.idx = append(p.idx, f.index)
		p.fns = append(p.fns, encoderOf(rt.Field(f.index).Type))
	}
	return p.encode
}

func (p *structEncPlan) encode(e *Encoder, v reflect.Value) {
	if !e.enter() {
		return
	}
	e.buf = append(e.buf, tStruct)
	id, known := e.types[p.rt]
	if !known {
		// Inline definition, emitted exactly once per Encoder at the
		// first use of the type.
		id = uint64(len(e.types))
		e.types[p.rt] = id
		e.buf = binary.AppendUvarint(e.buf, id)
		e.buf = append(e.buf, p.typedef...)
	} else {
		e.buf = binary.AppendUvarint(e.buf, id)
	}
	for i, fn := range p.fns {
		if e.err != nil {
			break
		}
		fn(e, v.Field(p.idx[i]))
		e.maybeFlush()
	}
	e.depth--
}

func buildPointerEncoder(rt reflect.Type) encFn {
	elem := encoderOf(rt.Elem())
	return func(e *Encoder, v reflect.Value) {
		if v.IsNil() {
			e.buf = append(e.buf, tNil)
			return
		}
		if id, ok := e.refs[v.Pointer()]; ok {
			e.buf = append(e.buf, tRef)
			e.buf = binary.AppendUvarint(e.buf, id)
			return
		}
		if !e.enter() {
			return
		}
		id := e.ref(v.Pointer())
		e.buf = append(e.buf, tPtr)
		e.buf = binary.AppendUvarint(e.buf, id)
		elem(e, v.Elem())
		e.depth--
	}
}

func encInterface(e *Encoder, v reflect.Value) {
	if v.IsNil() {
		e.buf = append(e.buf, tNil)
		return
	}
	elem := v.Elem()
	name, ok := lookupName(elem.Type())
	if !ok {
		e.fail(errf("interface holds unregistered concrete type %v; call pickle.Register", elem.Type()))
		return
	}
	if !e.enter() {
		return
	}
	e.buf = append(e.buf, tIface)
	e.buf = appendLenPrefixed(e.buf, name)
	encoderOf(elem.Type())(e, elem)
	e.depth--
}
