package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"smalldb/internal/vfs"
)

// TestSoakLifecycle compresses a long operational life into one test: many
// cycles of updates, deletions, policy-driven and explicit checkpoints,
// clean shutdowns, hard kills with torn pages, and occasional media damage
// recovered through the retained previous version — with a flat-map oracle
// checked after every recovery. It is the E9 property run across the
// store's entire feature surface.
func TestSoakLifecycle(t *testing.T) {
	seeds := 6
	cycles := 12
	if testing.Short() {
		seeds, cycles = 2, 5
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := vfs.NewMem(seed)
			oracle := map[string]string{}

			cfg := Config{
				FS:            fs,
				NewRoot:       newKV,
				Retain:        1,
				MaxLogEntries: int64(10 + rng.Intn(40)),
				GroupCommit:   rng.Intn(2) == 0,
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			for cycle := 0; cycle < cycles; cycle++ {
				// A burst of updates; a random crash may cut it
				// short.
				crashAfter := -1
				if rng.Intn(3) == 0 {
					crashAfter = rng.Intn(15)
				}
				count := 0
				boom := errors.New("injected crash")
				if crashAfter >= 0 {
					fs.FailSync = func(string) error {
						count++
						if count > crashAfter {
							return boom
						}
						return nil
					}
				}

				// pending is the single ambiguous update: the one
				// whose Apply failed at the injected crash. Its log
				// entry may or may not have become durable; recovery
				// decides.
				type ambiguous struct {
					del bool
					key string
					val string
				}
				var pending *ambiguous

				burst := 5 + rng.Intn(25)
				for i := 0; i < burst; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(50))
					if rng.Intn(4) == 0 {
						if _, exists := oracle[key]; exists {
							if err := s.Apply(&delKV{Key: key}); err != nil {
								pending = &ambiguous{del: true, key: key}
								break
							}
							delete(oracle, key)
							continue
						}
					}
					val := fmt.Sprintf("s%d-c%d-i%d", seed, cycle, i)
					if err := s.Apply(&putKV{Key: key, Value: val}); err != nil {
						pending = &ambiguous{key: key, val: val}
						break
					}
					oracle[key] = val
				}
				// Quiesce any in-flight background auto-checkpoint
				// before touching fs.FailSync (the checkpoint
				// goroutine syncs through it) — checkpointing clears
				// only after the goroutine has fully finished.
				for s.checkpointing.Load() {
					runtime.Gosched()
				}
				fs.FailSync = nil

				// Sometimes an explicit checkpoint.
				if rng.Intn(3) == 0 {
					_ = s.Checkpoint() // may fail if poisoned; recovery below sorts it out
				}

				// End the cycle with a shutdown of some kind. A real
				// hard kill takes the process's goroutines with it;
				// here the store object would outlive the "kill" and
				// its background auto-checkpoint could keep writing
				// to the fs we are about to recover from, so quiesce
				// again (the explicit checkpoint above may have
				// retriggered one through its own updates — and the
				// crash must not race a live checkpoint goroutine).
				for s.checkpointing.Load() {
					runtime.Gosched()
				}
				switch rng.Intn(3) {
				case 0:
					s.Close()
				case 1:
					fs.Crash() // hard kill
				default:
					fs.CrashTorn(512) // hard kill with torn pages
				}

				s, err = Open(cfg)
				if err != nil {
					t.Fatalf("cycle %d: recovery failed: %v", cycle, err)
				}
				// First resolve the ambiguous in-flight update: if
				// its effect is visible, it committed — adopt it.
				if pending != nil {
					got, ok := get(t, s, pending.key)
					switch {
					case pending.del && !ok:
						delete(oracle, pending.key)
					case !pending.del && ok && got == pending.val:
						oracle[pending.key] = pending.val
					}
				}
				// Every acknowledged update must be present.
				for k, v := range oracle {
					got, ok := get(t, s, k)
					if !ok || got != v {
						t.Fatalf("cycle %d: oracle mismatch at %s: got %q,%v want %q", cycle, k, got, ok, v)
					}
				}
				// And nothing unexplained may exist.
				s.View(func(root any) error {
					for k, v := range root.(*kvRoot).Data {
						if ov, ok := oracle[k]; !ok || ov != v {
							t.Errorf("cycle %d: unexplained key %s=%q (oracle %q)", cycle, k, v, ov)
						}
					}
					return nil
				})
			}
			s.Close()
		})
	}
}

// TestSoakHardErrorFallback interleaves checkpoint-file damage with the
// lifecycle: after damaging the current checkpoint, recovery must come back
// through the retained previous version without losing acknowledged data.
func TestSoakHardErrorFallback(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		fs := vfs.NewMem(seed)
		cfg := Config{FS: fs, NewRoot: newKV, Retain: 1}
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[string]string{}
		write := func(n int, tag string) {
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(30))
				v := tag + fmt.Sprint(i)
				if err := s.Apply(&putKV{Key: k, Value: v}); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
		}
		write(10, "era1-")
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		write(10, "era2-")
		if err := s.Checkpoint(); err != nil { // current = v3, retained = v2
			t.Fatal(err)
		}
		write(5, "era3-")
		s.Close()

		// Damage the current checkpoint.
		cur := fmt.Sprintf("checkpoint%d", 3)
		if err := fs.Damage(cur, 0, 64); err != nil {
			t.Fatal(err)
		}

		s, err = Open(cfg)
		if err != nil {
			t.Fatalf("seed %d: fallback recovery failed: %v", seed, err)
		}
		if !s.Stats().RestartUsedFallback {
			t.Fatalf("seed %d: fallback not used", seed)
		}
		for k, v := range oracle {
			if got, ok := get(t, s, k); !ok || got != v {
				t.Fatalf("seed %d: %s = %q,%v want %q", seed, k, got, ok, v)
			}
		}
		s.Close()
	}
}
