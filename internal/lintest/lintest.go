// Package lintest is a model-based linearizability checker for the
// store's lock-free snapshot enquiries.
//
// The store has a single logical writer (updates serialize on the update
// lock) and many concurrent readers, so the linearizability argument
// reduces to two obligations per enquiry:
//
//  1. Version consistency: the enquiry observes exactly the state produced
//     by some prefix of the committed update sequence — never a mix of two
//     versions, never a half-applied update.
//  2. Real-time bound: the observed prefix includes every update whose
//     Apply call had returned before the enquiry began, and nothing that
//     had not yet been issued when it ended.
//
// The harness makes both checkable without recording writer state: the
// writer's op i deterministically sets key (i mod Keys) to a value that
// encodes i, so the expected content of every key at any version j has a
// closed form. A reader takes one pinned snapshot (whose Seq names j
// exactly), reads all Keys keys from it, and validates each against the
// closed-form model of version j — any torn or stale mix fails on the
// spot. The (j, completed-before, started-after) triple of every read is
// recorded as an operation history; Check then validates the real-time
// window and per-reader monotonicity over the whole history.
package lintest

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
)

// Config sizes a Run.
type Config struct {
	// Readers is the number of concurrent reader goroutines (default 4).
	Readers int
	// Ops is the number of writer updates (default 1000).
	Ops int
	// Keys is how many distinct names the writer cycles over (default 8).
	Keys int
	// Prefix roots the harness's names (default "lin"). The subtree must
	// not exist when Run starts; Run owns it for the duration.
	Prefix string
}

func (c *Config) defaults() {
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Keys <= 0 {
		c.Keys = 8
	}
	if c.Prefix == "" {
		c.Prefix = "lin"
	}
}

// Stats reports what a Run exercised.
type Stats struct {
	Ops   uint64 // writer updates committed
	Reads uint64 // snapshot enquiries validated
}

// observation is one enquiry in the recorded history: the version it
// observed and the real-time window it ran in, all in writer-op units.
type observation struct {
	j  uint64 // writer ops included in the snapshot
	lo uint64 // writer ops completed before the read began
	hi uint64 // writer ops started by the time the read ended
}

// Run drives one writer (Ops sequential updates) against Readers
// concurrent snapshot enquiries on st, validating every enquiry against
// the version-ordered model as it happens and the full recorded history
// afterwards. The store's root must be the nameserver tree (or wrap one
// reachable as *nameserver.Tree via the root), versioned — Run fails with
// core.ErrNotVersioned otherwise — and must receive no other updates
// while Run is active.
func Run(st *core.Store, cfg Config) (Stats, error) {
	cfg.defaults()
	keys := make([][]string, cfg.Keys)
	for c := range keys {
		keys[c] = []string{cfg.Prefix, "k" + strconv.Itoa(c)}
	}

	// The model starts empty: the harness's subtree must not exist yet.
	if err := st.View(func(root any) error {
		if treeFromRoot(root).FindNode([]string{cfg.Prefix}) != nil {
			return fmt.Errorf("lintest: subtree %q already exists", cfg.Prefix)
		}
		return nil
	}); err != nil {
		return Stats{}, err
	}

	base := st.AppliedSeq()
	var started, completed atomic.Uint64
	var stop atomic.Bool
	var reads atomic.Uint64
	histories := make([][]observation, cfg.Readers)
	errs := make(chan error, cfg.Readers)

	var wg sync.WaitGroup
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := make([]observation, 0, 1024)
			// Every reader validates at least one snapshot even if the
			// scheduler only runs it after the writer finishes (on
			// GOMAXPROCS=1 a goroutine can sit runnable for the whole
			// writer phase).
			for first := true; first || !stop.Load(); first = false {
				lo := completed.Load()
				snap, err := st.SnapshotAt()
				if err != nil {
					errs <- err
					return
				}
				m := snap.Seq()
				verr := checkVersion(treeFromRoot(snap.Root()), keys, base, m)
				snap.Release()
				hi := started.Load()
				if verr != nil {
					errs <- verr
					return
				}
				if m < base {
					errs <- fmt.Errorf("lintest: snapshot at seq %d precedes the run's base %d", m, base)
					return
				}
				h = append(h, observation{j: m - base, lo: lo, hi: hi})
				reads.Add(1)
				// Yield so the single writer is never starved by spinning
				// readers: snapshot reads block on nothing, so on a small
				// GOMAXPROCS the run queue is all readers, all runnable.
				runtime.Gosched()
			}
			histories[r] = h
		}(r)
	}

	var werr error
	for i := uint64(1); i <= uint64(cfg.Ops); i++ {
		started.Store(i)
		u := &nameserver.SetValue{Path: keys[i%uint64(cfg.Keys)], Value: valueAt(i)}
		if werr = st.Apply(u); werr != nil {
			break
		}
		completed.Store(i)
		// Yield between ops for the same fairness reason as the readers:
		// the history is only interesting if reads interleave the writes.
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	if werr != nil {
		return Stats{}, fmt.Errorf("lintest: writer op %d: %w", started.Load(), werr)
	}
	for err := range errs {
		if err != nil {
			return Stats{}, err
		}
	}

	if err := checkHistory(histories); err != nil {
		return Stats{}, err
	}
	return Stats{Ops: completed.Load(), Reads: reads.Load()}, nil
}

// valueAt is the value writer op i writes: it encodes i so a read can
// recover which write it is seeing.
func valueAt(i uint64) string { return "v" + strconv.FormatUint(i, 10) }

// lastWrite reports the last writer op ≤ j that wrote key index c (keys
// cycle round-robin), or 0 when none has.
func lastWrite(j uint64, c, keys int) uint64 {
	if j == 0 {
		return 0
	}
	r := j % uint64(keys)
	diff := (r + uint64(keys) - uint64(c)%uint64(keys)) % uint64(keys)
	if diff >= j {
		return 0 // would reach before op 1
	}
	return j - diff
}

// checkVersion validates every harness key in a snapshot tree against the
// closed-form model of version j = m - base. Reading all keys from one
// snapshot is what makes the check complete: a snapshot mixing two
// versions cannot satisfy the model at any single j, because each op
// changes exactly one key and the keys cycle.
func checkVersion(t *nameserver.Tree, keys [][]string, base, m uint64) error {
	j := m - base
	for c := range keys {
		want := lastWrite(j, c, len(keys))
		n := t.FindNode(keys[c])
		switch {
		case want == 0:
			if n != nil && n.HasValue {
				return fmt.Errorf("lintest: at version %d key %d should be unwritten, found %q", j, c, n.Value)
			}
		case n == nil || !n.HasValue:
			return fmt.Errorf("lintest: at version %d key %d should hold %q, found nothing", j, c, valueAt(want))
		case n.Value != valueAt(want):
			return fmt.Errorf("lintest: at version %d key %d should hold %q, found %q", j, c, valueAt(want), n.Value)
		}
	}
	return nil
}

// checkHistory validates the recorded operation history: every read's
// version must fall inside its real-time window (reads never travel back
// before a completed write, never ahead of an issued one), and each
// reader's versions must be monotone (a reader never observes time moving
// backwards).
func checkHistory(histories [][]observation) error {
	for r, h := range histories {
		prev := uint64(0)
		for i, o := range h {
			if o.j < o.lo {
				return fmt.Errorf("lintest: reader %d read %d observed version %d, but %d writes had completed before it began (stale read)", r, i, o.j, o.lo)
			}
			if o.j > o.hi {
				return fmt.Errorf("lintest: reader %d read %d observed version %d, but only %d writes had been issued (read from the future)", r, i, o.j, o.hi)
			}
			if o.j < prev {
				return fmt.Errorf("lintest: reader %d went backwards: version %d after %d", r, o.j, prev)
			}
			prev = o.j
		}
	}
	return nil
}

// treeFromRoot extracts the nameserver tree from a store root: either the
// tree itself or a replica root embedding one.
func treeFromRoot(root any) *nameserver.Tree {
	switch r := root.(type) {
	case *nameserver.Tree:
		return r
	case interface{ NameTree() *nameserver.Tree }:
		return r.NameTree()
	}
	panic(fmt.Sprintf("lintest: root %T holds no nameserver tree", root))
}

// ErrNotVersioned re-exports the store's sentinel for callers gating on
// versioned-read support.
var ErrNotVersioned = core.ErrNotVersioned
