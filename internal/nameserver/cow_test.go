package nameserver

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The property-based copy-on-write test drives random update sequences
// against two implementations at once — the real tree and a flat
// path→value map — and checks that every published snapshot still agrees
// with the model copy taken at its publication, after every subsequent
// op. Aliasing bugs (a mutation reaching a node an old snapshot can see)
// show up as an old version drifting after later ops; forgotten
// path-copies show up as the live tree disagreeing with the live model.

// flatEntry is one node in the model: whether it carries a value, and
// which.
type flatEntry struct {
	has bool
	val string
}

// flatModel is the reference implementation: every node in the tree,
// keyed by "/"-joined path (the root is implicit and not stored).
type flatModel map[string]flatEntry

func (m flatModel) clone() flatModel {
	c := make(flatModel, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// ensurePath creates every node along parts, like Tree.ensure.
func (m flatModel) ensurePath(parts []string) {
	for i := 1; i <= len(parts); i++ {
		k := strings.Join(parts[:i], "/")
		if _, ok := m[k]; !ok {
			m[k] = flatEntry{}
		}
	}
}

// deletePrefix removes the node at parts and everything below it.
func (m flatModel) deletePrefix(parts []string) {
	p := strings.Join(parts, "/")
	for k := range m {
		if k == p || strings.HasPrefix(k, p+"/") {
			delete(m, k)
		}
	}
}

// insertSubtree installs a deep copy of n at parts.
func (m flatModel) insertSubtree(parts []string, n *Node) {
	k := strings.Join(parts, "/")
	m[k] = flatEntry{has: n.HasValue, val: n.Value}
	for label, c := range n.Children {
		m.insertSubtree(append(parts[:len(parts):len(parts)], label), c)
	}
}

// apply mirrors one update onto the model.
func (m flatModel) apply(u interface{ Apply(any) error }) {
	switch u := u.(type) {
	case *SetValue:
		m.ensurePath(u.Path)
		m[strings.Join(u.Path, "/")] = flatEntry{has: true, val: u.Value}
	case *DeleteSubtree:
		m.deletePrefix(u.Path)
	case *PutSubtree:
		m.ensurePath(u.Path[:len(u.Path)-1])
		m.deletePrefix(u.Path)
		m.insertSubtree(u.Path, u.Subtree)
	case *Move:
		from := strings.Join(u.From, "/")
		moved := make(map[string]flatEntry)
		for k, v := range m {
			if k == from || strings.HasPrefix(k, from+"/") {
				moved[k[len(from):]] = v // "" for the node itself, "/x..." below
				delete(m, k)
			}
		}
		m.ensurePath(u.To[:len(u.To)-1])
		to := strings.Join(u.To, "/")
		for suffix, v := range moved {
			m[to+suffix] = v
		}
	default:
		panic(fmt.Sprintf("model: unhandled update %T", u))
	}
}

// flattenTree renders a tree into model form.
func flattenTree(t *Tree) flatModel {
	m := make(flatModel)
	var walk func(n *Node, path string)
	walk = func(n *Node, path string) {
		if path != "" {
			m[path] = flatEntry{has: n.HasValue, val: n.Value}
		}
		for label, c := range n.Children {
			p := label
			if path != "" {
				p = path + "/" + label
			}
			walk(c, p)
		}
	}
	if t.Root != nil {
		walk(t.Root, "")
	}
	return m
}

func diffModels(got, want flatModel) string {
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			return fmt.Sprintf("missing node %q (want has=%v val=%q)", k, w.has, w.val)
		}
		if g != w {
			return fmt.Sprintf("node %q = {has:%v val:%q}, want {has:%v val:%q}", k, g.has, g.val, w.has, w.val)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Sprintf("extra node %q", k)
		}
	}
	return ""
}

// genUpdate draws one random update: mostly value writes, with enough
// structural ops (puts, deletes, moves) to keep paths colliding and
// subtrees shared. Mirrors the generator in the crashtest package's
// network model, which this test's oracle pattern extends to versions.
func genUpdate(rng *rand.Rand) interface {
	Verify(any) error
	Apply(any) error
} {
	labels := []string{"a", "b", "c", "d"}
	randPath := func() []string {
		depth := 1 + rng.Intn(3)
		p := make([]string, depth)
		for i := range p {
			p[i] = labels[rng.Intn(len(labels))]
		}
		return p
	}
	switch r := rng.Intn(100); {
	case r < 55:
		return &SetValue{Path: randPath(), Value: fmt.Sprintf("v%d", rng.Intn(1_000_000))}
	case r < 70:
		sub := &Node{HasValue: true, Value: fmt.Sprintf("s%d", rng.Intn(1_000_000))}
		for i := 0; i < rng.Intn(3); i++ {
			if sub.Children == nil {
				sub.Children = make(map[string]*Node)
			}
			sub.Children[labels[rng.Intn(len(labels))]] = &Node{
				HasValue: true, Value: fmt.Sprintf("c%d", rng.Intn(1_000_000)),
			}
		}
		return &PutSubtree{Path: randPath(), Subtree: sub}
	case r < 85:
		return &DeleteSubtree{Path: randPath()}
	default:
		return &Move{From: randPath(), To: randPath()}
	}
}

// retainedVersion pairs a published snapshot with the model state at its
// publication.
type retainedVersion struct {
	op    int
	tree  *Tree
	model flatModel
}

// runCOWProperty applies ops random updates to tree and model in
// lockstep, publishing a snapshot with probability pubP after each
// applied op, and verifies (periodically and at the end) that the live
// pair and every retained version pair still agree.
func runCOWProperty(t *testing.T, seed int64, ops int, pubP float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := NewTree()
	model := make(flatModel)
	var versions []retainedVersion

	checkAll := func(op int) {
		t.Helper()
		if d := diffModels(flattenTree(tree), model); d != "" {
			t.Fatalf("seed %d op %d: live tree diverged: %s", seed, op, d)
		}
		for _, v := range versions {
			if d := diffModels(flattenTree(v.tree), v.model); d != "" {
				t.Fatalf("seed %d op %d: version published at op %d drifted: %s", seed, op, v.op, d)
			}
		}
	}

	applied := 0
	for i := 0; i < ops; i++ {
		u := genUpdate(rng)
		if err := u.Verify(tree); err != nil {
			continue // precondition failed (delete/move of a missing path)
		}
		if err := u.Apply(tree); err != nil {
			t.Fatalf("seed %d op %d: apply %T: %v", seed, i, u, err)
		}
		model.apply(u)
		applied++
		if rng.Float64() < pubP {
			snap := tree.SnapshotView().(*Tree)
			versions = append(versions, retainedVersion{op: i, tree: snap, model: model.clone()})
		}
		if i%25 == 0 {
			checkAll(i)
		}
	}
	checkAll(ops)
	if applied == 0 || (pubP > 0 && len(versions) == 0) {
		t.Fatalf("seed %d: degenerate run: %d applied, %d versions", seed, applied, len(versions))
	}
	t.Logf("seed %d: %d/%d ops applied, %d versions all consistent", seed, applied, ops, len(versions))
}

func TestCOWPropertyVersions(t *testing.T) {
	ops := 400
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		ops = 120
		seeds = seeds[:2]
	}
	// publish-every-op is the store's behaviour (one version per commit);
	// publish-sometimes leaves multi-op epochs, exercising the in-place
	// fast path for writer-private nodes between snapshots.
	for _, tc := range []struct {
		name string
		pubP float64
	}{
		{"publish-every-op", 1.0},
		{"publish-sometimes", 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range seeds {
				runCOWProperty(t, seed, ops, tc.pubP)
			}
		})
	}
}

// TestCOWReplayInPlace covers the recovery path: with no snapshot taken,
// every op may mutate in place (no version to protect), and the first
// snapshot taken afterwards must then be isolated from further writes.
func TestCOWReplayInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := NewTree()
	model := make(flatModel)
	for i := 0; i < 300; i++ {
		u := genUpdate(rng)
		if err := u.Verify(tree); err != nil {
			continue
		}
		if err := u.Apply(tree); err != nil {
			t.Fatal(err)
		}
		model.apply(u)
	}
	if d := diffModels(flattenTree(tree), model); d != "" {
		t.Fatalf("after replay: %s", d)
	}

	// First snapshot after replay — the entire replayed tree becomes
	// frozen; keep writing and confirm the snapshot holds still.
	snap := tree.SnapshotView().(*Tree)
	frozen := model.clone()
	for i := 0; i < 100; i++ {
		u := genUpdate(rng)
		if err := u.Verify(tree); err != nil {
			continue
		}
		if err := u.Apply(tree); err != nil {
			t.Fatal(err)
		}
		model.apply(u)
	}
	if d := diffModels(flattenTree(snap), frozen); d != "" {
		t.Fatalf("replay-era snapshot drifted: %s", d)
	}
	if d := diffModels(flattenTree(tree), model); d != "" {
		t.Fatalf("post-replay live tree diverged: %s", d)
	}
}
