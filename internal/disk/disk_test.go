package disk

import (
	"testing"
	"time"

	"smalldb/internal/vfs"
)

func TestAccounting(t *testing.T) {
	d := New(vfs.NewMem(1), MicroVAX, 0)
	f, err := d.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	f.Write(payload)
	f.Sync()
	f.Close()

	s := d.Stats()
	if s.Syncs != 1 {
		t.Errorf("Syncs = %d", s.Syncs)
	}
	if s.BytesWritten != 1000 {
		t.Errorf("BytesWritten = %d", s.BytesWritten)
	}
	// Modeled: 20ms per-op + 1000B at 200KiB/s ≈ 20ms + 4.88ms.
	want := MicroVAX.PerOpWrite + time.Duration(1000*int64(time.Second)/int64(200<<10))
	if s.ModeledIO != want {
		t.Errorf("ModeledIO = %v, want %v", s.ModeledIO, want)
	}
}

func TestSyncChargesOnlyUnsynced(t *testing.T) {
	d := New(vfs.NewMem(1), MicroVAX, 0)
	f, _ := d.Create("f")
	f.Write(make([]byte, 100))
	f.Sync()
	first := d.Stats().ModeledIO
	f.Sync() // nothing new: per-op cost only
	second := d.Stats().ModeledIO - first
	if second != MicroVAX.PerOpWrite {
		t.Errorf("second sync cost %v, want per-op %v", second, MicroVAX.PerOpWrite)
	}
}

func TestReadAccounting(t *testing.T) {
	mem := vfs.NewMem(1)
	vfs.WriteFile(mem, "cp", make([]byte, 4096))
	d := New(mem, MicroVAX, 0)
	f, err := d.Open("cp")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	f.Read(buf)
	s := d.Stats()
	if s.Opens != 1 {
		t.Errorf("Opens = %d", s.Opens)
	}
	if s.BytesRead != 4096 {
		t.Errorf("BytesRead = %d", s.BytesRead)
	}
	if s.ModeledIO < MicroVAX.PerOpRead {
		t.Errorf("ModeledIO = %v missing open cost", s.ModeledIO)
	}
}

func TestScaledBlocking(t *testing.T) {
	// With scale, a sync should actually block for about modeled×scale.
	prof := Profile{Name: "test", PerOpWrite: 100 * time.Millisecond}
	d := New(vfs.NewMem(1), prof, 0.1) // 10ms real
	f, _ := d.Create("f")
	f.Write([]byte("x"))
	start := time.Now()
	f.Sync()
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Errorf("sync returned in %v; expected ≥ ~10ms block", elapsed)
	}
}

func TestZeroScaleDoesNotBlock(t *testing.T) {
	d := New(vfs.NewMem(1), MicroVAX, 0)
	f, _ := d.Create("f")
	f.Write(make([]byte, 1<<20))
	start := time.Now()
	f.Sync() // modeled ~5s; must not block
	if time.Since(start) > 100*time.Millisecond {
		t.Error("zero-scale sync blocked")
	}
}

func TestPassThrough(t *testing.T) {
	mem := vfs.NewMem(1)
	d := New(mem, Unlimited, 0)
	if err := vfs.WriteFile(d, "a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(d, "b")
	if err != nil || string(got) != "data" {
		t.Fatalf("got %q, %v", got, err)
	}
	names, _ := d.List()
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("List = %v", names)
	}
	if size, _ := d.Stat("b"); size != 4 {
		t.Errorf("Stat = %d", size)
	}
	if err := d.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(d, "b") {
		t.Error("b still exists")
	}
}

func TestCrashUnderneath(t *testing.T) {
	// Crash semantics of the underlying Mem must be visible through Disk.
	mem := vfs.NewMem(1)
	d := New(mem, Unlimited, 0)
	f, _ := d.Create("f")
	f.Write([]byte("keep"))
	f.Sync()
	f.Write([]byte("lose"))
	f.Close()
	mem.Crash()
	got, _ := vfs.ReadFile(d, "f")
	if string(got) != "keep" {
		t.Errorf("got %q", got)
	}
}
