package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"smalldb/internal/checkpoint"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// dkvRoot is a delta-capable variant of the kv test root: SnapshotView
// copies the table (an immutable view), DeltaSince diffs two views,
// ApplyDelta replays the diff. It stands in for the real tree roots so the
// DeltaRoot contract is tested without depending on their COW machinery.
type dkvRoot struct {
	Data map[string]string
}

func newDKV() any { return &dkvRoot{Data: make(map[string]string)} }

func (r *dkvRoot) SnapshotView() any {
	c := make(map[string]string, len(r.Data))
	for k, v := range r.Data {
		c[k] = v
	}
	return &dkvRoot{Data: c}
}

type dkvDelta struct {
	Put map[string]string
	Del []string
}

func (d *dkvDelta) DeltaOps() int { return len(d.Put) + len(d.Del) }

func (r *dkvRoot) DeltaSince(prev any) (any, error) {
	p, ok := prev.(*dkvRoot)
	if !ok {
		return nil, fmt.Errorf("delta base is %T", prev)
	}
	d := &dkvDelta{Put: map[string]string{}}
	for k, v := range r.Data {
		if ov, ok := p.Data[k]; !ok || ov != v {
			d.Put[k] = v
		}
	}
	for k := range p.Data {
		if _, ok := r.Data[k]; !ok {
			d.Del = append(d.Del, k)
		}
	}
	return d, nil
}

func (r *dkvRoot) ApplyDelta(delta any) error {
	d, ok := delta.(*dkvDelta)
	if !ok {
		return fmt.Errorf("delta is %T", delta)
	}
	for k, v := range d.Put {
		r.Data[k] = v
	}
	for _, k := range d.Del {
		delete(r.Data, k)
	}
	return nil
}

type putDKV struct{ Key, Value string }

func (u *putDKV) Verify(root any) error { return nil }
func (u *putDKV) Apply(root any) error {
	root.(*dkvRoot).Data[u.Key] = u.Value
	return nil
}

type delDKV struct{ Key string }

func (u *delDKV) Verify(root any) error { return nil }
func (u *delDKV) Apply(root any) error {
	delete(root.(*dkvRoot).Data, u.Key)
	return nil
}

func init() {
	pickle.Register(&dkvRoot{})
	pickle.Register(&dkvDelta{})
	RegisterUpdate(&putDKV{})
	RegisterUpdate(&delDKV{})
}

func openDKV(t *testing.T, fs vfs.FS, mod ...func(*Config)) *Store {
	t.Helper()
	cfg := Config{FS: fs, NewRoot: newDKV}
	for _, m := range mod {
		m(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func dkvData(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := s.View(func(root any) error {
		for k, v := range root.(*dkvRoot).Data {
			out[k] = v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// populate writes n keys sized so the base image dwarfs later deltas.
func populateDKV(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Apply(&putDKV{Key: fmt.Sprintf("key%04d", i), Value: strings.Repeat("x", 64)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeltaCheckpointFiles: the second checkpoint of a delta-capable root
// writes checkpointN.d, chained onto the full base; restart loads the
// chain and lands on the same state.
func TestDeltaCheckpointFiles(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs)
	populateDKV(t, s, 200)
	if err := s.Checkpoint(); err != nil { // big first image: full (size guard)
		t.Fatal(err)
	}
	if vfs.Exists(fs, checkpoint.DeltaName(2)) {
		t.Fatal("first post-populate checkpoint should be full, not a delta")
	}
	// Small churn, then checkpoint: this one must be a delta.
	for i := 0; i < 5; i++ {
		if err := s.Apply(&putDKV{Key: fmt.Sprintf("key%04d", i), Value: "changed"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Apply(&delDKV{Key: "key0199"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(fs, checkpoint.DeltaName(3)) || vfs.Exists(fs, checkpoint.CheckpointName(3)) {
		t.Fatal("second checkpoint did not write a delta file")
	}
	st := s.Stats()
	if st.DeltaCheckpoints != 1 || st.ChainLength != 2 {
		t.Fatalf("stats: delta=%d chain=%d", st.DeltaCheckpoints, st.ChainLength)
	}
	if st.LastCheckpointBytes <= 0 {
		t.Fatal("LastCheckpointBytes not recorded")
	}
	want := dkvData(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openDKV(t, fs)
	defer s2.Close()
	if got := dkvData(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart from chain diverged: %d vs %d keys", len(got), len(want))
	}
	rst := s2.Stats()
	if rst.RestartDeltasApplied != 1 {
		t.Fatalf("restart applied %d deltas, want 1", rst.RestartDeltasApplied)
	}
}

// TestDeltaRestartEquivalence: rounds of churn + checkpoint + crash,
// recovering through full base + delta chain + log each time.
func TestDeltaRestartEquivalence(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs)
	populateDKV(t, s, 150)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			if err := s.Apply(&putDKV{Key: fmt.Sprintf("key%04d", i*7), Value: fmt.Sprintf("r%d", round)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		// Post-checkpoint updates live only in the log: replay must run on
		// top of the chain-reconstructed root.
		if err := s.Apply(&putDKV{Key: "tail", Value: fmt.Sprintf("r%d", round)}); err != nil {
			t.Fatal(err)
		}
		want := dkvData(t, s)
		fs.Crash()
		s = openDKV(t, fs)
		if got := dkvData(t, s); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: recovered state diverged", round)
		}
		if got := s.Stats().ChainLength; got != round+2 {
			t.Fatalf("round %d: chain length %d, want %d", round, got, round+2)
		}
	}
	s.Close()
}

// TestCompactionByChainLength: crossing MaxDeltaChain rewrites the chain
// into a fresh full image.
func TestCompactionByChainLength(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs, func(c *Config) {
		c.MaxDeltaChain = 2
		c.SerialCompaction = true
	})
	defer s.Close()
	populateDKV(t, s, 100)
	if err := s.Checkpoint(); err != nil { // v2: full
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if err := s.Apply(&putDKV{Key: fmt.Sprintf("churn%d", round), Value: "x"}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil { // v3, v4: deltas
			t.Fatal(err)
		}
	}
	// The second delta made the chain hit the bound; SerialCompaction ran
	// a full switch (v5) inside that Checkpoint call.
	st := s.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if st.ChainLength != 1 {
		t.Fatalf("chain length %d after compaction", st.ChainLength)
	}
	if s.Version() != 5 || !vfs.Exists(fs, checkpoint.CheckpointName(5)) {
		t.Fatalf("version %d; compacted full image missing", s.Version())
	}
	if err := s.LastCheckpointErr(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionByRatio: cumulative delta bytes crossing
// base*MaxDeltaRatio triggers compaction even with a short chain.
func TestCompactionByRatio(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs, func(c *Config) {
		c.MaxDeltaRatio = 0.05
		c.MaxDeltaChain = 100 // out of the way: the ratio must trigger first
		c.SerialCompaction = true
	})
	defer s.Close()
	populateDKV(t, s, 300)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := s.Version()
	// Tiny per-checkpoint churn: each delta passes the single-delta size
	// guard, and the cumulative sum crosses base*0.05 after a few rounds.
	for i := 0; ; i++ {
		if i > 50 {
			t.Fatal("compaction never triggered")
		}
		if err := s.Apply(&putDKV{Key: fmt.Sprintf("key%04d", i), Value: "y"}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if s.Stats().Compactions > 0 {
			break
		}
	}
	st := s.Stats()
	if st.ChainLength != 1 {
		t.Fatalf("chain length %d after ratio compaction", st.ChainLength)
	}
	if st.DeltaCheckpoints == 0 {
		t.Fatal("no deltas were written before the ratio compaction")
	}
	if s.Version() <= base {
		t.Fatal("version did not advance")
	}
}

// TestFullCheckpointsAblation: the knob the checkpoint_scaling experiment
// flips — every checkpoint writes the full image, no .d files ever.
func TestFullCheckpointsAblation(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs, func(c *Config) { c.FullCheckpoints = true })
	populateDKV(t, s, 100)
	for round := 0; round < 3; round++ {
		if err := s.Apply(&putDKV{Key: "k", Value: fmt.Sprintf("%d", round)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DeltaCheckpoints != 0 || st.ChainLength != 1 {
		t.Fatalf("ablation wrote deltas: %+v", st)
	}
	for v := uint64(2); v <= 4; v++ {
		if vfs.Exists(fs, checkpoint.DeltaName(v)) {
			t.Fatalf("delta file for version %d under FullCheckpoints", v)
		}
	}
	want := dkvData(t, s)
	s.Close()
	s2 := openDKV(t, fs, func(c *Config) { c.FullCheckpoints = true })
	defer s2.Close()
	if got := dkvData(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("ablation restart diverged")
	}
}

// TestDeltaSizeGuard: a checkpoint whose delta would rival the base image
// writes a full image instead (and resets the chain).
func TestDeltaSizeGuard(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs)
	defer s.Close()
	populateDKV(t, s, 100)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Rewrite every key with new values: the delta would be as big as the
	// root.
	for i := 0; i < 100; i++ {
		if err := s.Apply(&putDKV{Key: fmt.Sprintf("key%04d", i), Value: strings.Repeat("z", 64)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	v := s.Version()
	if vfs.Exists(fs, checkpoint.DeltaName(v)) {
		t.Fatal("near-total churn still produced a delta")
	}
	if st := s.Stats(); st.ChainLength != 1 {
		t.Fatalf("chain length %d, want 1 (fresh full image)", st.ChainLength)
	}
}

// TestUnversionedRootFullCheckpoints: a root without SnapshotView (or
// DeltaRoot) keeps the old behaviour untouched.
func TestUnversionedRootFullCheckpoints(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	if err := s.Apply(&putKV{Key: "a", Value: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(&putKV{Key: "b", Value: "2"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(fs, checkpoint.DeltaName(2)) || vfs.Exists(fs, checkpoint.DeltaName(3)) {
		t.Fatal("unversioned root produced delta files")
	}
	if st := s.Stats(); st.DeltaCheckpoints != 0 {
		t.Fatalf("stats claim %d delta checkpoints", st.DeltaCheckpoints)
	}
}

// TestDeltaChainFallback: with the chain's newest delta corrupted and a
// version retained, restart falls back to the previous version's chain and
// replays both logs (§4 generalized to chains); the next checkpoint is a
// full image, never a delta chained onto the damaged version.
func TestDeltaChainFallback(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openDKV(t, fs, func(c *Config) { c.Retain = 1 })
	populateDKV(t, s, 100)
	if err := s.Checkpoint(); err != nil { // v2: full
		t.Fatal(err)
	}
	if err := s.Apply(&putDKV{Key: "k1", Value: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil { // v3: delta
		t.Fatal(err)
	}
	if err := s.Apply(&putDKV{Key: "k2", Value: "v2"}); err != nil {
		t.Fatal(err)
	}
	want := dkvData(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !vfs.Exists(fs, checkpoint.DeltaName(3)) {
		t.Fatal("setup: v3 is not a delta")
	}
	// Corrupt the newest delta (hard error on the current version).
	if err := vfs.WriteFile(fs, checkpoint.DeltaName(3), []byte("garbage")); err != nil {
		t.Fatal(err)
	}

	s2 := openDKV(t, fs, func(c *Config) { c.Retain = 1 })
	defer s2.Close()
	if got := dkvData(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatal("fallback recovery diverged")
	}
	if st := s2.Stats(); !st.RestartUsedFallback {
		t.Fatal("fallback not reported")
	}
	// The damaged version must not become a delta parent.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(fs, checkpoint.DeltaName(4)) {
		t.Fatal("checkpoint after fallback chained onto a damaged version")
	}
}
