package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"smalldb/internal/pickle"
)

// frameBytes builds a well-formed frame around payload.
func frameBytes(payload []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	return append(hdr[:n], payload...)
}

// FuzzDecodeFrame feeds arbitrary bytes to the wire-frame reader and the
// full message decoder. Truncated, garbage, or oversized frames must
// error — never panic, hang, or allocate anywhere near the claimed length.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: a valid request frame, empty input, a truncated frame,
	// an oversized length claim, and a zero-length frame.
	valid, err := pickle.Marshal(&request{ID: 1, Method: "NS.Lookup", Client: "c1", Token: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frameBytes(valid))
	f.Add([]byte{})
	f.Add(frameBytes(valid)[:3])
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], maxMessage+1)
	f.Add(huge[:n])
	f.Add(frameBytes(nil))
	// A large claimed length with only a few real bytes: must error from
	// truncation without allocating the claimed size up front.
	var big [binary.MaxVarintLen64]byte
	n = binary.PutUvarint(big[:], 32<<20)
	f.Add(append(big[:n], 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			if len(buf) > maxMessage {
				t.Fatalf("readFrame returned %d bytes, over the limit", len(buf))
			}
			if len(buf) > len(data) {
				t.Fatalf("readFrame returned %d bytes from %d input bytes", len(buf), len(data))
			}
		}
		// The full decode path must also never panic on garbage.
		var req request
		_ = readMessage(bufio.NewReader(bytes.NewReader(data)), &req)
	})
}

// TestFrameRoundTrip pins the framing format: writeMessage output decodes
// through readMessage.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	in := &request{ID: 42, Method: "Svc.M", Client: "me", Token: 9}
	if err := writeMessage(&buf, &mu, in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readMessage(bufio.NewReader(&buf), &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Method != in.Method || out.Client != in.Client || out.Token != in.Token {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

// TestReadFrameChunkedLargeFrame exercises the chunked-growth path with a
// genuine frame bigger than one chunk.
func TestReadFrameChunkedLargeFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, frameChunk*3+17)
	got, err := readFrame(bufio.NewReader(bytes.NewReader(frameBytes(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("large frame corrupted: %d bytes", len(got))
	}
}

// TestReadFrameOversizedClaim checks an over-limit length errors without
// reading the body.
func TestReadFrameOversizedClaim(t *testing.T) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], maxMessage+1)
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:n]))); err == nil {
		t.Fatal("oversized claim accepted")
	}
}
