package pickle

import (
	"bytes"
	"reflect"
	"testing"
)

// Map keys are emitted in sorted order so the same map always pickles to
// the same bytes (checkpoints are diffable, fingerprints are stable). The
// sort runs through compiled comparers; these tests pin the determinism
// and ordering for the non-string key kinds the comparers cover.

func marshalTimes(t *testing.T, v any, n int) []byte {
	t.Helper()
	first, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		b, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, b) {
			t.Fatalf("encoding %d differs from encoding 0 (map key order is not deterministic)", i)
		}
	}
	return first
}

func TestStructKeyedMapDeterministic(t *testing.T) {
	type key struct {
		A int
		B string
	}
	m := map[key]int{}
	for i := 0; i < 64; i++ {
		m[key{A: i % 8, B: string(rune('a' + i%13))}] = i
	}
	data := marshalTimes(t, m, 10)
	var out map[key]int
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, out) {
		t.Errorf("round trip lost entries: got %d, want %d", len(out), len(m))
	}
}

func TestArrayKeyedMapDeterministic(t *testing.T) {
	m := map[[3]int16]string{}
	for i := 0; i < 48; i++ {
		m[[3]int16{int16(i % 4), int16(i % 6), int16(i)}] = "x"
	}
	data := marshalTimes(t, m, 10)
	var out map[[3]int16]string
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, out) {
		t.Errorf("round trip lost entries: got %d, want %d", len(out), len(m))
	}
}

func TestFloatKeyedMapDeterministic(t *testing.T) {
	m := map[float64]int{}
	for i := 0; i < 32; i++ {
		m[float64(i)*1.5-16] = i
	}
	marshalTimes(t, m, 10)
}

// TestKeyComparerOrdering checks the comparers agree with the natural
// order, not just some stable order: struct keys compare field by field in
// declaration order, arrays element by element.
func TestKeyComparerOrdering(t *testing.T) {
	type key struct {
		A int
		B string
	}
	cmp := keyComparer(reflect.TypeOf(key{}))
	if cmp == nil {
		t.Fatal("no comparer for orderable struct key")
	}
	lt := func(a, b key) bool {
		return cmp(reflect.ValueOf(a), reflect.ValueOf(b)) < 0
	}
	if !lt(key{0, "z"}, key{1, "a"}) {
		t.Error("first field must dominate")
	}
	if !lt(key{1, "a"}, key{1, "b"}) {
		t.Error("tie breaks on the second field")
	}

	acmp := keyComparer(reflect.TypeOf([2]uint8{}))
	if acmp == nil {
		t.Fatal("no comparer for array key")
	}
	if acmp(reflect.ValueOf([2]uint8{0, 9}), reflect.ValueOf([2]uint8{1, 0})) >= 0 {
		t.Error("arrays compare elementwise from the front")
	}
}

// TestUnorderableKeysStillRoundTrip: pointer keys have no useful order, so
// the comparer bows out and the encoder falls back to iteration order —
// the map must still round-trip.
func TestUnorderableKeysStillRoundTrip(t *testing.T) {
	if keyComparer(reflect.TypeOf((*int)(nil))) != nil {
		t.Error("pointer keys should have no comparer")
	}
	a, b := 1, 2
	m := map[*int]string{&a: "a", &b: "b", nil: "nil"}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var out map[*int]string
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("round trip lost entries: %d", len(out))
	}
}
