// Bounded-staleness checking for secondary reads in a replica group.
//
// A quorum-commit group serves enquiries from any member, so a read may
// lag the writer — but never incoherently. The contract RunBounded checks
// has three clauses:
//
//  1. Frontier witness: a read answering at durable frontier s reflects
//     exactly the writer prefix of length s − base. The writer's op i
//     deterministically sets key (i mod Keys) to a value encoding i, so
//     the expected value of any key at any frontier has a closed form —
//     a member that answered at frontier s while missing an update with
//     seq ≤ s produces a value the model rejects on the spot.
//  2. Per-reader monotonicity across failover: each reader carries its
//     last observed frontier as the MinSeq floor of its next read, even
//     as it rotates across members. A member below the floor must refuse
//     (ErrStale) — the reader redirects — so a reader never observes time
//     moving backwards no matter which members fail over under it. Since
//     member frontiers only grow and some member served the floor, a full
//     rotation must find a member that can answer; failing to is itself a
//     violation.
//  3. No reads from the future: a frontier never exceeds the number of
//     writer ops issued.
//
// There is deliberately no real-time lower bound — that relaxation is
// what "bounded staleness" means; the staleness a run actually served is
// reported in the stats instead.
package lintest

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"smalldb/internal/nameserver"
	"smalldb/internal/replica"
)

// BoundedMember is one replica endpoint a bounded reader may query.
// *replica.Node implements it.
type BoundedMember interface {
	Name() string
	ReadAt(name string, minSeq uint64) (value string, frontier uint64, err error)
}

// BoundedStats reports what a RunBounded exercised.
type BoundedStats struct {
	Ops       uint64 // writer updates committed
	Reads     uint64 // bounded reads validated
	Redirects uint64 // stale refusals that sent a reader to another member
	Stale     uint64 // reads served behind the writer's completed count
	MaxLag    uint64 // worst staleness served (completed − frontier)
}

// RunBounded drives one writer (write, called Ops times with the harness's
// names) against Readers concurrent bounded-staleness readers rotating
// over members, validating every read against the closed-form model at its
// reported frontier. All members must start at a common frontier with the
// Prefix subtree unwritten and receive no other updates while the run is
// active; write must be the only writer and must target the group those
// members belong to.
func RunBounded(write func(name, value string) error, members []BoundedMember, cfg Config) (BoundedStats, error) {
	cfg.defaults()
	if len(members) == 0 {
		return BoundedStats{}, fmt.Errorf("lintest: no members")
	}
	names := make([]string, cfg.Keys)
	for c := range names {
		names[c] = cfg.Prefix + "/k" + strconv.Itoa(c)
	}

	// Base frontier: all members must agree before the writer starts, and
	// the harness subtree must not exist anywhere.
	var base uint64
	for i, m := range members {
		_, f, err := m.ReadAt(names[0], 0)
		switch {
		case err == nil:
			return BoundedStats{}, fmt.Errorf("lintest: subtree %q already exists on member %s", cfg.Prefix, m.Name())
		case !errors.Is(err, nameserver.ErrNotFound) && !errors.Is(err, nameserver.ErrNoValue):
			return BoundedStats{}, fmt.Errorf("lintest: probing member %s: %w", m.Name(), err)
		}
		if i == 0 {
			base = f
		} else if f != base {
			return BoundedStats{}, fmt.Errorf("lintest: members start at divergent frontiers (%d vs %d); converge them first", f, base)
		}
	}

	var started, completed atomic.Uint64
	var stop atomic.Bool
	var stats BoundedStats
	var reads, redirects, stale, maxLag atomic.Uint64
	errs := make(chan error, cfg.Readers)

	var wg sync.WaitGroup
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastSeen := base // the reader's MinSeq floor, ratcheted by every read
			c := r % cfg.Keys
			rotate := r // member rotation offset: readers spread over members
			for first := true; first || !stop.Load(); first = false {
				c = (c + 1) % cfg.Keys
				loCompleted := completed.Load()
				var v string
				var s uint64
				var err error
				served := -1
				for attempt := 0; attempt <= len(members); attempt++ {
					if attempt == len(members) {
						// Clause 2's progress half: some member served
						// lastSeen and frontiers only grow, so a full
						// rotation finding nobody is a frontier regression.
						errs <- fmt.Errorf("lintest: reader %d: no member can serve floor %d (frontier regressed?)", r, lastSeen)
						return
					}
					m := members[(rotate+attempt)%len(members)]
					v, s, err = m.ReadAt(names[c], lastSeen)
					if replica.IsStale(err) {
						redirects.Add(1)
						continue
					}
					served = (rotate + attempt) % len(members)
					break
				}
				rotate = served + 1 // next read starts from the next member over
				hi := started.Load()
				if s < lastSeen {
					errs <- fmt.Errorf("lintest: reader %d went backwards: frontier %d after floor %d (member %s)", r, s, lastSeen, members[served].Name())
					return
				}
				lastSeen = s
				if s < base || s-base > hi {
					errs <- fmt.Errorf("lintest: reader %d read from the future: frontier %d with only %d ops issued", r, s, hi)
					return
				}
				j := s - base
				want := lastWrite(j, c, cfg.Keys)
				switch {
				case err == nil:
					if want == 0 {
						errs <- fmt.Errorf("lintest: at frontier %d key %d should be unwritten, member %s holds %q", j, c, members[served].Name(), v)
						return
					}
					if v != valueAt(want) {
						errs <- fmt.Errorf("lintest: frontier witness broken: at frontier %d key %d should hold %q, member %s answered %q", j, c, valueAt(want), members[served].Name(), v)
						return
					}
				case errors.Is(err, nameserver.ErrNotFound), errors.Is(err, nameserver.ErrNoValue):
					if want != 0 {
						errs <- fmt.Errorf("lintest: frontier witness broken: at frontier %d key %d should hold %q, member %s missed it", j, c, valueAt(want), members[served].Name())
						return
					}
				default:
					errs <- fmt.Errorf("lintest: reader %d on member %s: %w", r, members[served].Name(), err)
					return
				}
				reads.Add(1)
				if j < loCompleted {
					stale.Add(1)
					if lag := loCompleted - j; lag > maxLag.Load() {
						maxLag.Store(lag) // racy max: a lower bound, good enough for stats
					}
				}
				runtime.Gosched()
			}
		}(r)
	}

	var werr error
	for i := uint64(1); i <= uint64(cfg.Ops); i++ {
		started.Store(i)
		if werr = write(names[i%uint64(cfg.Keys)], valueAt(i)); werr != nil {
			break
		}
		completed.Store(i)
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	if werr != nil {
		return BoundedStats{}, fmt.Errorf("lintest: writer op %d: %w", started.Load(), werr)
	}
	for err := range errs {
		if err != nil {
			return BoundedStats{}, err
		}
	}
	stats.Ops = completed.Load()
	stats.Reads = reads.Load()
	stats.Redirects = redirects.Load()
	stats.Stale = stale.Load()
	stats.MaxLag = maxLag.Load()
	return stats, nil
}
