package nameserver

import (
	"fmt"
	"sort"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

// Config configures a name server.
type Config struct {
	// FS holds the checkpoint and log files.
	FS vfs.FS
	// Retain, GroupCommit and the checkpoint policies pass through to
	// the underlying store.
	Retain        int
	GroupCommit   bool
	CoarseLocking bool
	UnsafeNoSync  bool
	MaxLogBytes   int64
	MaxLogEntries int64
	// SkipDamagedLogEntries passes through; name-server updates are
	// independent enough for the paper's skip-the-damaged-entry story.
	SkipDamagedLogEntries bool
	// ReplayWorkers passes through to the store's restart decode
	// pipeline (0 = auto, 1 = sequential).
	ReplayWorkers int
	// LogShards passes through: >1 splits the redo log into that many
	// parallel streams under epoch-based group commit (incompatible with
	// SkipDamagedLogEntries).
	LogShards int
	// SerialLogSync passes through: sharded epoch seals sync their streams
	// one at a time, in stream order (the crash-sweep determinism knob).
	SerialLogSync bool
	// BlockingCheckpoint passes through: checkpoints hold the update
	// lock for their whole duration instead of the default
	// mirror-window protocol.
	BlockingCheckpoint bool
	// LockedEnquiries passes through: enquiries take the shared lock and
	// are excluded during each in-memory apply, instead of reading
	// lock-free published snapshots (the read-scaling ablation).
	LockedEnquiries bool
	// FullCheckpoints passes through: every checkpoint writes the full
	// tree instead of the default incremental delta chained onto the last
	// full image (the checkpoint_scaling ablation).
	FullCheckpoints bool
	// MaxDeltaChain and MaxDeltaRatio pass through: the delta-chain
	// compaction thresholds (0 = the store defaults).
	MaxDeltaChain int
	MaxDeltaRatio float64
	// SerialCompaction passes through: a due compaction runs synchronously
	// inside the checkpoint that tripped it (the crash-sweep determinism
	// knob).
	SerialCompaction bool
	// Obs and Tracer pass through to the store's instrumentation.
	Obs    *obs.Registry
	Tracer obs.Tracer
}

// Server is a name server: the paper's worked example, its whole database a
// tree of hash tables in virtual memory.
type Server struct {
	store *core.Store
}

// Open recovers (or initializes) a name server from cfg.FS.
func Open(cfg Config) (*Server, error) {
	st, err := core.Open(core.Config{
		FS:                    cfg.FS,
		NewRoot:               NewRoot,
		Retain:                cfg.Retain,
		GroupCommit:           cfg.GroupCommit,
		CoarseLocking:         cfg.CoarseLocking,
		UnsafeNoSync:          cfg.UnsafeNoSync,
		MaxLogBytes:           cfg.MaxLogBytes,
		MaxLogEntries:         cfg.MaxLogEntries,
		SkipDamagedLogEntries: cfg.SkipDamagedLogEntries,
		ReplayWorkers:         cfg.ReplayWorkers,
		LogShards:             cfg.LogShards,
		SerialLogSync:         cfg.SerialLogSync,
		BlockingCheckpoint:    cfg.BlockingCheckpoint,
		LockedEnquiries:       cfg.LockedEnquiries,
		FullCheckpoints:       cfg.FullCheckpoints,
		MaxDeltaChain:         cfg.MaxDeltaChain,
		MaxDeltaRatio:         cfg.MaxDeltaRatio,
		SerialCompaction:      cfg.SerialCompaction,
		Obs:                   cfg.Obs,
		Tracer:                cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &Server{store: st}, nil
}

// Store exposes the underlying store (for replication and experiments).
func (s *Server) Store() *core.Store { return s.store }

// --- enquiries: shared lock, no disk ---

// Lookup returns the value bound to name.
func (s *Server) Lookup(name string) (string, error) {
	parts, err := SplitPath(name)
	if err != nil {
		return "", err
	}
	var val string
	err = s.store.View(func(root any) error {
		t, err := treeOf(root)
		if err != nil {
			return err
		}
		val, err = t.lookup(parts)
		return err
	})
	return val, err
}

// List returns the sorted child labels under name.
func (s *Server) List(name string) ([]string, error) {
	parts, err := SplitPath(name)
	if err != nil {
		return nil, err
	}
	var out []string
	err = s.store.View(func(root any) error {
		t, err := treeOf(root)
		if err != nil {
			return err
		}
		out, err = t.list(parts)
		return err
	})
	return out, err
}

// Enumerate calls fn for every (name, value) pair at or below name, in
// depth-first sorted order — the paper's browsing operation. Returning a
// non-nil error from fn stops the walk.
func (s *Server) Enumerate(name string, fn func(name, value string) error) error {
	parts, err := SplitPath(name)
	if err != nil {
		return err
	}
	return s.store.View(func(root any) error {
		t, err := treeOf(root)
		if err != nil {
			return err
		}
		n := t.find(parts)
		if n == nil {
			return fmt.Errorf("%w: %s", ErrNotFound, JoinPath(parts))
		}
		return walk(n, parts, fn)
	})
}

func walk(n *Node, path []string, fn func(name, value string) error) error {
	if n.HasValue {
		if err := fn(JoinPath(path), n.Value); err != nil {
			return err
		}
	}
	labels := make([]string, 0, len(n.Children))
	for k := range n.Children {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, k := range labels {
		if err := walk(n.Children[k], append(path, k), fn); err != nil {
			return err
		}
	}
	return nil
}

// SubtreeCopy returns a deep copy of the subtree at name; replication uses
// it for snapshots.
func (s *Server) SubtreeCopy(name string) (*Node, error) {
	parts, err := SplitPath(name)
	if err != nil {
		return nil, err
	}
	var out *Node
	err = s.store.View(func(root any) error {
		t, err := treeOf(root)
		if err != nil {
			return err
		}
		n := t.find(parts)
		if n == nil {
			return fmt.Errorf("%w: %s", ErrNotFound, JoinPath(parts))
		}
		out = copyNode(n)
		return nil
	})
	return out, err
}

// Count reports the number of nodes in the whole tree.
func (s *Server) Count() (int, error) {
	var n int
	err := s.store.View(func(root any) error {
		t, err := treeOf(root)
		if err != nil {
			return err
		}
		n = countNodes(t.Root)
		return nil
	})
	return n, err
}

// --- updates: single-shot transactions ---

// Set binds value to name, creating intermediate names.
func (s *Server) Set(name, value string) error {
	return s.SetTraced(name, value, obs.SpanContext{})
}

// SetTraced is Set under a trace context: the commit's phase spans land in
// the caller's trace.
func (s *Server) SetTraced(name, value string, sc obs.SpanContext) error {
	parts, err := SplitPath(name)
	if err != nil {
		return err
	}
	return s.store.ApplyTraced(&SetValue{Path: parts, Value: value}, sc)
}

// Delete removes name and its whole subtree.
func (s *Server) Delete(name string) error {
	return s.DeleteTraced(name, obs.SpanContext{})
}

// DeleteTraced is Delete under a trace context.
func (s *Server) DeleteTraced(name string, sc obs.SpanContext) error {
	parts, err := SplitPath(name)
	if err != nil {
		return err
	}
	return s.store.ApplyTraced(&DeleteSubtree{Path: parts}, sc)
}

// Put installs subtree at name, replacing any existing subtree.
func (s *Server) Put(name string, subtree *Node) error {
	parts, err := SplitPath(name)
	if err != nil {
		return err
	}
	return s.store.Apply(&PutSubtree{Path: parts, Subtree: subtree})
}

// Rename moves the subtree at from to to.
func (s *Server) Rename(from, to string) error {
	f, err := SplitPath(from)
	if err != nil {
		return err
	}
	tt, err := SplitPath(to)
	if err != nil {
		return err
	}
	return s.store.Apply(&Move{From: f, To: tt})
}

// --- administration ---

// Checkpoint writes a checkpoint now.
func (s *Server) Checkpoint() error { return s.store.Checkpoint() }

// CheckpointEvery checkpoints on a timer — "a checkpoint each night".
func (s *Server) CheckpointEvery(d time.Duration) { s.store.CheckpointEvery(d) }

// Stats returns the underlying store's instrumentation.
func (s *Server) Stats() core.Stats { return s.store.Stats() }

// Close closes the server.
func (s *Server) Close() error { return s.store.Close() }
