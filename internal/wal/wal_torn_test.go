package wal

import (
	"bytes"
	"fmt"
	"testing"

	"smalldb/internal/vfs"
)

// TestTornTailMatrix is the exhaustive torn-write table of §4's transient
// failure: for a committed prefix of entries followed by one final entry,
// truncate the file at every byte boundary inside the final entry's frame
// and require Repair to recover exactly the committed prefix — never an
// error, never a lost prefix entry, never a surfaced partial entry.
//
// The final-entry payload sizes cross the dirty-page granularity the
// in-memory fs tracks (0, 1, page-1, page, page+1, 4*page), so the
// truncation sweep covers frames smaller than, equal to and much larger
// than one page.
func TestTornTailMatrix(t *testing.T) {
	const page = 512
	prefixPayloads := [][]byte{
		[]byte("alpha"),
		bytes.Repeat([]byte{0xAB}, page), // a page-sized committed entry
		[]byte("gamma"),
	}
	tailSizes := []int{0, 1, page - 1, page, page + 1, 4 * page}

	for _, tailSize := range tailSizes {
		tailSize := tailSize
		t.Run(fmt.Sprintf("tail%d", tailSize), func(t *testing.T) {
			// Build the intact log once to learn the frame boundaries.
			build := func(fs vfs.FS) (prefixEnd, fileEnd int64) {
				l, err := Open(fs, "log", 1, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range prefixPayloads {
					if _, err := l.Append(p); err != nil {
						t.Fatal(err)
					}
				}
				prefixEnd = l.Size()
				if _, err := l.Append(bytes.Repeat([]byte{0xCD}, tailSize)); err != nil {
					t.Fatal(err)
				}
				fileEnd = l.Size()
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				return prefixEnd, fileEnd
			}
			probe := vfs.NewMem(1)
			prefixEnd, fileEnd := build(probe)

			// Truncate at every byte boundary of the final frame:
			// cut == prefixEnd is a cleanly missing tail entry,
			// cut == fileEnd is the fully written one.
			for cut := prefixEnd; cut <= fileEnd; cut++ {
				fs := vfs.NewMem(1)
				if p, f := build(fs); p != prefixEnd || f != fileEnd {
					t.Fatalf("rebuild diverged: %d/%d vs %d/%d", p, f, prefixEnd, fileEnd)
				}
				f, err := fs.OpenRW("log")
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Truncate(cut); err != nil {
					t.Fatal(err)
				}
				if err := f.Sync(); err != nil {
					t.Fatal(err)
				}
				f.Close()

				var got [][]byte
				res, err := Replay(fs, "log", 1, ReplayOptions{Repair: true}, func(seq uint64, payload []byte) error {
					got = append(got, append([]byte(nil), payload...))
					return nil
				})
				if err != nil {
					t.Fatalf("cut=%d: replay failed: %v", cut, err)
				}

				wantEntries := len(prefixPayloads)
				wantTrunc := cut > prefixEnd && cut < fileEnd
				wantGood := prefixEnd
				if cut == fileEnd {
					wantEntries++ // tail entry complete
					wantGood = fileEnd
				}
				if res.Entries != wantEntries {
					t.Fatalf("cut=%d: %d entries, want %d", cut, res.Entries, wantEntries)
				}
				if res.Truncated != wantTrunc {
					t.Fatalf("cut=%d: Truncated=%v, want %v", cut, res.Truncated, wantTrunc)
				}
				if res.NextSeq != uint64(wantEntries+1) {
					t.Fatalf("cut=%d: NextSeq=%d, want %d", cut, res.NextSeq, wantEntries+1)
				}
				if res.GoodSize != wantGood {
					t.Fatalf("cut=%d: GoodSize=%d, want %d", cut, res.GoodSize, wantGood)
				}
				for i, p := range prefixPayloads {
					if !bytes.Equal(got[i], p) {
						t.Fatalf("cut=%d: prefix entry %d corrupted", cut, i)
					}
				}
				// Repair must have shrunk the file to the committed
				// prefix, so a reopened log appends cleanly.
				if size, err := fs.Stat("log"); err != nil || size != wantGood {
					t.Fatalf("cut=%d: repaired size %d, want %d (%v)", cut, size, wantGood, err)
				}
				l, err := Open(fs, "log", res.NextSeq, Options{})
				if err != nil {
					t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
				}
				if seq, err := l.Append([]byte("after")); err != nil || seq != res.NextSeq {
					t.Fatalf("cut=%d: append after repair: seq=%d err=%v", cut, seq, err)
				}
				l.Close()
			}
		})
	}
}
