package pickle

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"strings"
)

// Generic decoding: reading a pickle stream without knowing the Go types it
// was written from. This serves two purposes. First, the typed decoder uses
// it to skip struct fields the target type no longer has. Second, diagnostic
// tools (cmd/logdump) use it to render checkpoints and log entries written
// by any program.

// A GenericStruct is the generic decoding of a pickled struct: its stream
// type name and its fields in stream order.
type GenericStruct struct {
	Name   string
	Fields []GenericField
}

// A GenericField is one named field of a GenericStruct.
type GenericField struct {
	Name  string
	Value any
}

// A GenericMap is the generic decoding of a pickled map, as ordered
// key/value pairs (keys decoded generically need not be comparable, so a Go
// map cannot represent them).
type GenericMap []GenericKV

// A GenericKV is one entry of a GenericMap.
type GenericKV struct {
	Key, Value any
}

// A GenericIface is the generic decoding of an interface-typed value: the
// registered concrete type name and the generically decoded value.
type GenericIface struct {
	TypeName string
	Value    any
}

// DecodeAny reads the next pickled value generically. Structs decode to
// GenericStruct, maps to GenericMap, slices and arrays to []any, pointers to
// *any, integers to int64/uint64.
func (d *Decoder) DecodeAny() (any, error) {
	if err := d.header(); err != nil {
		return nil, err
	}
	if len(d.refs) > 0 {
		clear(d.refs)
	}
	d.depth = 0
	return d.decodeAny()
}

// skipTagged consumes the value whose tag byte has already been read,
// discarding it. It shares the Decoder's identity table so that shared
// objects defined inside skipped fields still resolve from kept fields.
func (d *Decoder) skipTagged(tag byte) error {
	_, err := d.decodeAnyTagged(tag)
	return err
}

func (d *Decoder) decodeAny() (any, error) {
	tag, err := d.readByte()
	if err != nil {
		return nil, err
	}
	return d.decodeAnyTagged(tag)
}

func (d *Decoder) decodeAnyTagged(tag byte) (any, error) {
	switch tag {
	case tNil:
		return nil, nil
	case tFalse:
		return false, nil
	case tTrue:
		return true, nil
	case tInt:
		return d.readVarint()
	case tUint:
		return d.readUvarint()
	case tFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return nil, err
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[:]))), nil
	case tFloat64:
		return d.readFloat64()
	case tComplex:
		re, err := d.readFloat64()
		if err != nil {
			return nil, err
		}
		im, err := d.readFloat64()
		if err != nil {
			return nil, err
		}
		return complex(re, im), nil
	case tString:
		return d.readString(MaxStringLen)
	case tBytes, tBinary:
		s, err := d.readString(MaxStringLen)
		if err != nil {
			return nil, err
		}
		return []byte(s), nil
	case tSlice, tArray:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if n > MaxElems {
			return nil, errf("slice length %d exceeds limit %d", n, MaxElems)
		}
		if err := d.enter(); err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = d.decodeAny(); err != nil {
				return nil, err
			}
		}
		d.depth--
		return out, nil
	case tMap:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if n > MaxElems {
			return nil, errf("map length %d exceeds limit %d", n, MaxElems)
		}
		if err := d.enter(); err != nil {
			return nil, err
		}
		hole := new(any)
		d.setRef(id, reflect.ValueOf(hole))
		m := make(GenericMap, 0, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.decodeAny()
			if err != nil {
				return nil, err
			}
			v, err := d.decodeAny()
			if err != nil {
				return nil, err
			}
			m = append(m, GenericKV{Key: k, Value: v})
		}
		d.depth--
		*hole = m
		return m, nil
	case tStruct:
		stype, err := d.readStructType()
		if err != nil {
			return nil, err
		}
		if err := d.enter(); err != nil {
			return nil, err
		}
		gs := GenericStruct{Name: stype.name, Fields: make([]GenericField, len(stype.fields))}
		for i, fname := range stype.fields {
			v, err := d.decodeAny()
			if err != nil {
				return nil, err
			}
			gs.Fields[i] = GenericField{Name: fname, Value: v}
		}
		d.depth--
		return gs, nil
	case tPtr:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.enter(); err != nil {
			return nil, err
		}
		hole := new(any)
		d.setRef(id, reflect.ValueOf(hole))
		v, err := d.decodeAny()
		if err != nil {
			return nil, err
		}
		d.depth--
		*hole = v
		return hole, nil
	case tRef:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		rv, ok := d.refs[id]
		if !ok {
			return nil, errf("reference to undefined object %d", id)
		}
		return rv.Interface(), nil
	case tIface:
		name, err := d.readString(4096)
		if err != nil {
			return nil, err
		}
		if err := d.enter(); err != nil {
			return nil, err
		}
		v, err := d.decodeAny()
		if err != nil {
			return nil, err
		}
		d.depth--
		return GenericIface{TypeName: name, Value: v}, nil
	default:
		return nil, errf("invalid tag byte %#x", tag)
	}
}

// Format renders a generically decoded value as indented text, for
// diagnostic tools.
func Format(v any) string {
	var sb strings.Builder
	formatInto(&sb, v, 0, make(map[*any]bool))
	return sb.String()
}

func formatInto(sb *strings.Builder, v any, indent int, seen map[*any]bool) {
	pad := strings.Repeat("  ", indent)
	switch x := v.(type) {
	case nil:
		sb.WriteString("nil")
	case GenericStruct:
		fmt.Fprintf(sb, "%s {", x.Name)
		for _, f := range x.Fields {
			fmt.Fprintf(sb, "\n%s  %s: ", pad, f.Name)
			formatInto(sb, f.Value, indent+1, seen)
		}
		fmt.Fprintf(sb, "\n%s}", pad)
	case GenericMap:
		sb.WriteString("map {")
		for _, kv := range x {
			fmt.Fprintf(sb, "\n%s  ", pad)
			formatInto(sb, kv.Key, indent+1, seen)
			sb.WriteString(": ")
			formatInto(sb, kv.Value, indent+1, seen)
		}
		fmt.Fprintf(sb, "\n%s}", pad)
	case GenericIface:
		fmt.Fprintf(sb, "(%s) ", x.TypeName)
		formatInto(sb, x.Value, indent, seen)
	case []any:
		sb.WriteString("[")
		for i, e := range x {
			if i > 0 {
				sb.WriteString(", ")
			}
			formatInto(sb, e, indent, seen)
		}
		sb.WriteString("]")
	case *any:
		if seen[x] {
			sb.WriteString("<cycle>")
			return
		}
		seen[x] = true
		sb.WriteString("&")
		formatInto(sb, *x, indent, seen)
		delete(seen, x)
	case string:
		fmt.Fprintf(sb, "%q", x)
	case []byte:
		fmt.Fprintf(sb, "0x%x", x)
	default:
		fmt.Fprintf(sb, "%v", x)
	}
}
