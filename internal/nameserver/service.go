package nameserver

import (
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// RPCService exposes a Server over the rpc package — the paper's §6 client
// interface, with marshalling generated from the types rather than written
// by hand. Register it as "NS".
type RPCService struct {
	srv *Server
}

// NewRPCService wraps a Server for remote access.
func NewRPCService(s *Server) *RPCService { return &RPCService{srv: s} }

// LookupArgs names a single entry.
type LookupArgs struct{ Name string }

// LookupReply carries a value.
type LookupReply struct{ Value string }

// Lookup is the remote enquiry.
func (s *RPCService) Lookup(args *LookupArgs, reply *LookupReply) error {
	v, err := s.srv.Lookup(args.Name)
	reply.Value = v
	return err
}

// SetArgs carries one binding.
type SetArgs struct{ Name, Value string }

// SetReply is empty.
type SetReply struct{}

// Set is the remote update. It takes the rpc layer's span context so a
// traced request's commit timeline chains under the caller's trace.
func (s *RPCService) Set(args *SetArgs, reply *SetReply, sc obs.SpanContext) error {
	return s.srv.SetTraced(args.Name, args.Value, sc)
}

// DeleteArgs names a subtree.
type DeleteArgs struct{ Name string }

// DeleteReply is empty.
type DeleteReply struct{}

// Delete removes a subtree remotely.
func (s *RPCService) Delete(args *DeleteArgs, reply *DeleteReply, sc obs.SpanContext) error {
	return s.srv.DeleteTraced(args.Name, sc)
}

// ListArgs names a node.
type ListArgs struct{ Name string }

// ListReply carries sorted child labels.
type ListReply struct{ Labels []string }

// List enumerates a node's children remotely.
func (s *RPCService) List(args *ListArgs, reply *ListReply) error {
	labels, err := s.srv.List(args.Name)
	reply.Labels = labels
	return err
}

// EnumerateArgs names a subtree.
type EnumerateArgs struct{ Name string }

// EnumerateReply carries all (name, value) pairs beneath it.
type EnumerateReply struct {
	Names  []string
	Values []string
}

// Enumerate browses a whole subtree remotely.
func (s *RPCService) Enumerate(args *EnumerateArgs, reply *EnumerateReply) error {
	return s.srv.Enumerate(args.Name, func(name, value string) error {
		reply.Names = append(reply.Names, name)
		reply.Values = append(reply.Values, value)
		return nil
	})
}

func init() {
	pickle.Register(&LookupArgs{})
	pickle.Register(&LookupReply{})
	pickle.Register(&SetArgs{})
	pickle.Register(&SetReply{})
	pickle.Register(&DeleteArgs{})
	pickle.Register(&DeleteReply{})
	pickle.Register(&ListArgs{})
	pickle.Register(&ListReply{})
	pickle.Register(&EnumerateArgs{})
	pickle.Register(&EnumerateReply{})
}
