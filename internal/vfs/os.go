package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// OS is an FS backed by a single directory on the real file system. Rename
// fsyncs the directory afterwards so the rename itself is durable — the
// "appropriate number of Unix fsync calls" the paper alludes to.
type OS struct {
	dir string
}

// NewOS returns an FS rooted at dir, creating the directory if needed.
func NewOS(dir string) (*OS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OS{dir: dir}, nil
}

// Dir reports the backing directory.
func (o *OS) Dir() string { return o.dir }

func (o *OS) path(name string) (string, error) {
	if err := ValidName(name); err != nil {
		return "", err
	}
	return filepath.Join(o.dir, name), nil
}

func mapNotExist(err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %v", ErrNotExist, err)
	}
	return err
}

// Create implements FS.
func (o *OS) Create(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osHandle{f: f, name: name}, nil
}

// Open implements FS.
func (o *OS) Open(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, mapNotExist(err)
	}
	return &osHandle{f: f, name: name}, nil
}

// Append implements FS.
func (o *OS) Append(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &osHandle{f: f, name: name}, nil
}

// OpenRW implements FS.
func (o *OS) OpenRW(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR, 0o644)
	if err != nil {
		return nil, mapNotExist(err)
	}
	return &osHandle{f: f, name: name}, nil
}

// Rename implements FS, fsyncing the directory so the rename is durable.
func (o *OS) Rename(oldname, newname string) error {
	po, err := o.path(oldname)
	if err != nil {
		return err
	}
	pn, err := o.path(newname)
	if err != nil {
		return err
	}
	if err := os.Rename(po, pn); err != nil {
		return mapNotExist(err)
	}
	return o.syncDir()
}

// Remove implements FS.
func (o *OS) Remove(name string) error {
	p, err := o.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return mapNotExist(err)
	}
	return o.syncDir()
}

func (o *OS) syncDir() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms cannot fsync a directory; this is best-effort there.
	_ = d.Sync()
	return nil
}

// List implements FS.
func (o *OS) List() ([]string, error) {
	entries, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (o *OS) Stat(name string) (int64, error) {
	p, err := o.path(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if err != nil {
		return 0, mapNotExist(err)
	}
	return info.Size(), nil
}

type osHandle struct {
	f    *os.File
	name string
}

func (h *osHandle) Name() string { return h.name }

func (h *osHandle) Size() (int64, error) {
	info, err := h.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (h *osHandle) Read(p []byte) (int, error)                { return h.f.Read(p) }
func (h *osHandle) ReadAt(p []byte, off int64) (int, error)   { return h.f.ReadAt(p, off) }
func (h *osHandle) Write(p []byte) (int, error)               { return h.f.Write(p) }
func (h *osHandle) WriteAt(p []byte, off int64) (int, error)  { return h.f.WriteAt(p, off) }
func (h *osHandle) Seek(off int64, whence int) (int64, error) { return h.f.Seek(off, whence) }
func (h *osHandle) Truncate(size int64) error                 { return h.f.Truncate(size) }
func (h *osHandle) Sync() error                               { return h.f.Sync() }
func (h *osHandle) Close() error                              { return h.f.Close() }
