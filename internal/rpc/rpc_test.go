package rpc

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"smalldb/internal/pickle"
)

// Arith is the canonical test service.
type Arith struct{}

type ArithArgs struct{ A, B int }

type ArithReply struct{ Sum, Product int }

func (Arith) Do(args *ArithArgs, reply *ArithReply) error {
	reply.Sum = args.A + args.B
	reply.Product = args.A * args.B
	return nil
}

func (Arith) Fail(args *ArithArgs, reply *ArithReply) error {
	return fmt.Errorf("deliberate failure on %d", args.A)
}

func (Arith) Panics(args *ArithArgs, reply *ArithReply) error {
	panic("boom")
}

func (Arith) Slow(args *ArithArgs, reply *ArithReply) error {
	time.Sleep(time.Duration(args.A) * time.Millisecond)
	reply.Sum = args.A
	return nil
}

// unexported or wrong-shaped methods must be skipped.
func (Arith) wrongShape(a int) error { return nil }

type Echo struct{}

type EchoMsg struct{ S string }

func (Echo) Echo(in *EchoMsg, out *EchoMsg) error {
	out.S = in.S
	return nil
}

func init() {
	pickle.Register(&ArithArgs{})
	pickle.Register(&ArithReply{})
	pickle.Register(&EchoMsg{})
}

// pipePair returns a connected client and server over an in-memory pipe.
func pipePair(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := NewServer()
	if err := srv.Register("Arith", Arith{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("Echo", Echo{}); err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	c := NewClient(cConn)
	t.Cleanup(func() { c.Close(); srv.Close() })
	return c, srv
}

func TestBasicCall(t *testing.T) {
	c, _ := pipePair(t)
	var reply ArithReply
	if err := c.Call("Arith.Do", &ArithArgs{A: 6, B: 7}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Sum != 13 || reply.Product != 42 {
		t.Errorf("got %+v", reply)
	}
}

func TestRemoteError(t *testing.T) {
	c, _ := pipePair(t)
	err := c.Call("Arith.Fail", &ArithArgs{A: 9}, &ArithReply{})
	var se ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "deliberate failure on 9") {
		t.Fatalf("got %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	c, _ := pipePair(t)
	err := c.Call("Arith.Panics", &ArithArgs{}, &ArithReply{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("got %v", err)
	}
	// The connection survives a handler panic.
	var reply ArithReply
	if err := c.Call("Arith.Do", &ArithArgs{A: 1, B: 1}, &reply); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

func TestUnknownTargets(t *testing.T) {
	c, _ := pipePair(t)
	if err := c.Call("Nope.X", &ArithArgs{}, nil); err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Errorf("got %v", err)
	}
	if err := c.Call("Arith.Nope", &ArithArgs{}, nil); err == nil || !strings.Contains(err.Error(), "no method") {
		t.Errorf("got %v", err)
	}
	if err := c.Call("Malformed", &ArithArgs{}, nil); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("got %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	c, _ := pipePair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply ArithReply
			if err := c.Call("Arith.Do", &ArithArgs{A: i, B: i}, &reply); err != nil {
				errs <- err
				return
			}
			if reply.Sum != 2*i {
				errs <- fmt.Errorf("i=%d sum=%d", i, reply.Sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSlowCallDoesNotBlockFastCall(t *testing.T) {
	c, _ := pipePair(t)
	done := make(chan struct{})
	go func() {
		var r ArithReply
		c.Call("Arith.Slow", &ArithArgs{A: 300}, &r)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	var r ArithReply
	if err := c.Call("Arith.Do", &ArithArgs{A: 1, B: 2}, &r); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("fast call waited %v behind slow call", elapsed)
	}
	<-done
}

func TestOverTCP(t *testing.T) {
	srv := NewServer()
	if err := srv.Register("Echo", Echo{}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out EchoMsg
	if err := c.Call("Echo.Echo", &EchoMsg{S: "over tcp"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.S != "over tcp" {
		t.Errorf("got %q", out.S)
	}
}

func TestSimulatedRTT(t *testing.T) {
	c, _ := pipePair(t)
	c.SimulatedRTT = 30 * time.Millisecond
	start := time.Now()
	var r ArithReply
	if err := c.Call("Arith.Do", &ArithArgs{A: 1, B: 1}, &r); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("call took %v, expected ≥ 30ms RTT", elapsed)
	}
}

func TestCallTimeout(t *testing.T) {
	c, _ := pipePair(t)
	// A slow call times out.
	err := c.CallTimeout("Arith.Slow", &ArithArgs{A: 500}, &ArithReply{}, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v", err)
	}
	// The connection is still usable for later calls.
	var r ArithReply
	if err := c.CallTimeout("Arith.Do", &ArithArgs{A: 2, B: 3}, &r, time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Sum != 5 {
		t.Errorf("sum %d", r.Sum)
	}
}

func TestClientClose(t *testing.T) {
	c, _ := pipePair(t)
	c.Close()
	if err := c.Call("Arith.Do", &ArithArgs{}, nil); err == nil {
		t.Error("call on closed client succeeded")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	c, srv := pipePair(t)
	done := make(chan error, 1)
	go func() {
		var r ArithReply
		done <- c.Call("Arith.Slow", &ArithArgs{A: 2000}, &r)
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call succeeded past server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call hung after server close")
	}
}

func TestRegisterRejectsBareStruct(t *testing.T) {
	srv := NewServer()
	type empty struct{}
	if err := srv.Register("X", empty{}); err == nil {
		t.Error("registered a service with no methods")
	}
	if err := srv.Register("A", Arith{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("A", Arith{}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestNilReplyDiscards(t *testing.T) {
	c, _ := pipePair(t)
	if err := c.Call("Arith.Do", &ArithArgs{A: 1, B: 2}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCallPipe(b *testing.B) {
	srv := NewServer()
	srv.Register("Echo", Echo{})
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	c := NewClient(cConn)
	defer c.Close()
	defer srv.Close()
	b.ReportAllocs()
	var out EchoMsg
	for i := 0; i < b.N; i++ {
		if err := c.Call("Echo.Echo", &EchoMsg{S: "x"}, &out); err != nil {
			b.Fatal(err)
		}
	}
}
