package textfile

import (
	"fmt"
	"strings"
	"testing"

	"smalldb/internal/vfs"
)

func open(t *testing.T, fs vfs.FS) *DB {
	t.Helper()
	db, err := Open(fs, "passwd")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBasicOps(t *testing.T) {
	db := open(t, vfs.NewMem(1))
	if err := db.Update("amy", "uid=1001"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Lookup("amy")
	if err != nil || !ok || v != "uid=1001" {
		t.Fatalf("got %q %v %v", v, ok, err)
	}
	if err := db.Delete("amy"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Lookup("amy"); ok {
		t.Error("deleted key found")
	}
	if err := db.Delete("amy"); err == nil {
		t.Error("delete of missing key succeeded")
	}
}

func TestValuesWithSpecialCharacters(t *testing.T) {
	db := open(t, vfs.NewMem(1))
	nasty := "line1\nline2\ttabbed \"quoted\" \x00 bytes"
	if err := db.Update("k", nasty); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := db.Lookup("k")
	if !ok || v != nasty {
		t.Errorf("got %q", v)
	}
}

func TestInvalidKeys(t *testing.T) {
	db := open(t, vfs.NewMem(1))
	for _, k := range []string{"", "a\tb", "a\nb"} {
		if err := db.Update(k, "v"); err == nil {
			t.Errorf("key %q accepted", k)
		}
	}
}

func TestDurableViaRename(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	db.Update("k1", "v1")
	db.Update("k2", "v2")
	fs.Crash()
	db2 := open(t, fs)
	if v, ok, _ := db2.Lookup("k1"); !ok || v != "v1" {
		t.Errorf("k1 lost: %q %v", v, ok)
	}
	all, _ := db2.All()
	if len(all) != 2 {
		t.Errorf("records: %v", all)
	}
}

func TestHumanReadableFormat(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	db.Update("host", "16.4.0.1")
	data, err := vfs.ReadFile(fs, "passwd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "host\t\"16.4.0.1\"") {
		t.Errorf("file not human-readable: %q", data)
	}
}

func TestWholeFileRewrittenPerUpdate(t *testing.T) {
	// The defining cost of this baseline: file size scales with the
	// database, and every update rewrites all of it.
	fs := vfs.NewMem(1)
	db := open(t, fs)
	for i := 0; i < 100; i++ {
		db.Update(fmt.Sprintf("user%03d", i), strings.Repeat("x", 50))
	}
	size, _ := fs.Stat("passwd")
	if size < 100*50 {
		t.Errorf("file suspiciously small: %d", size)
	}
}

func TestManyRecordsSurviveRestart(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	for i := 0; i < 50; i++ {
		db.Update(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	db.Close()
	db2 := open(t, fs)
	all, err := db2.All()
	if err != nil || len(all) != 50 {
		t.Fatalf("got %d records, %v", len(all), err)
	}
}
