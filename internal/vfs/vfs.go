// Package vfs is the file-system abstraction under the checkpoint and log
// machinery. The paper stores all durable state as a handful of files in a
// single directory ("We use a single directory for our disk structures") and
// relies on only a few primitives: create, append, atomic rename, remove,
// and fsync. This package captures exactly those primitives in the FS
// interface and provides two implementations:
//
//   - OS: a directory on the real file system.
//   - Mem: an in-memory file system with crash simulation. Data written but
//     not Synced is lost at Crash(); a CrashTorn() additionally makes a
//     page-aligned prefix of unsynced data durable, modelling a machine
//     halting midway through flushing a multi-page write. Reads of
//     deliberately damaged ranges fail, modelling the paper's "hard"
//     failures ("some data in the disk structures becomes unreadable") and
//     its disk hardware property that "a partially written page will report
//     an error when it is read".
//
// The reliability experiments (E9, E13) run entirely against Mem, crashing
// the store at arbitrary points and checking the recovery invariants.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrExist is returned by Rename when the target would clobber in a mode
// that forbids it (not used by the default rename, which replaces).
var ErrExist = errors.New("vfs: file exists")

// ErrDamaged is returned by reads that cover a damaged (hard-failed) range
// of a Mem file.
var ErrDamaged = errors.New("vfs: unreadable data (simulated media failure)")

// File is an open file. Write appends at the current position; WriteAt and
// ReadAt address absolute offsets (used by the page-oriented baseline).
// Sync makes all data written so far durable across Crash().
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	// Sync flushes written data to durable storage; it is the commit
	// point of every update in the paper's design.
	Sync() error
	// Truncate changes the file's size. Recovery uses it to discard a
	// partially written tail log entry.
	Truncate(size int64) error
	// Name reports the name the file was opened under.
	Name() string
	// Size reports the current size of the file.
	Size() (int64, error)
}

// FS is a flat, single-directory file system: exactly what the paper's
// checkpoint/log protocol needs.
type FS interface {
	// Create opens a file for read/write, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens an existing file read-only.
	Open(name string) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	// OpenRW opens an existing file for read/write without truncation.
	OpenRW(name string) (File, error)
	// Rename atomically renames oldname to newname, replacing any
	// existing newname. The rename is durable when it returns.
	Rename(oldname, newname string) error
	// Remove deletes a file. Removing a non-existent file is an error.
	Remove(name string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// Stat reports a file's size.
	Stat(name string) (int64, error)
}

// ValidName reports whether name is acceptable: non-empty, no path
// separators, no NULs. Both implementations enforce it.
func ValidName(name string) error {
	if name == "" {
		return fmt.Errorf("vfs: empty file name")
	}
	if strings.ContainsAny(name, "/\\\x00") {
		return fmt.Errorf("vfs: invalid file name %q", name)
	}
	if name == "." || name == ".." {
		return fmt.Errorf("vfs: invalid file name %q", name)
	}
	return nil
}

// ReadFile reads the entire named file.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return buf, nil
}

// WriteFile writes data to the named file, creating or truncating it, and
// syncs it before closing.
func WriteFile(fs FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Exists reports whether the named file exists.
func Exists(fs FS, name string) bool {
	_, err := fs.Stat(name)
	return err == nil
}
