// Sharded log: the paper's single redo stream generalized to N per-core
// streams, the design of parallel-logging main-memory databases ("Fast
// Failure Recovery for Main-Memory DBMSs on Multicores"): every entry gets
// a global sequence number from one lightly-contended ticket, hashes to a
// stream by sequence, and commits under epoch-based group commit — an
// update is acknowledged once every stream that wrote entries in its epoch
// has synced that epoch.
//
// Epochs are sealed sync rounds, not persisted state: a seal captures the
// highest assigned sequence, flushes every stream with pending frames (one
// dedicated syncer goroutine per stream, in parallel), and on success
// advances the durable frontier to the captured sequence. Sequences are
// therefore acknowledged strictly in order, and the on-disk invariant that
// recovery relies on is simple: an acknowledged sequence's epoch synced on
// every participating stream, so the merged streams contain every sequence
// up to the frontier with no gap. Conversely, the first missing sequence
// after a crash marks the end of the acknowledged prefix — everything
// beyond it belongs to epochs whose barrier never completed and is
// discarded by recovery (ReplayShardedPipelined).
package wal

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

// ShardName returns the file name of stream shard of a sharded log whose
// base name is base: the base itself for stream 0 — so a single-stream
// directory layout is also a one-shard layout — and base.<shard> above it.
func ShardName(base string, shard int) string {
	if shard == 0 {
		return base
	}
	return base + "." + strconv.Itoa(shard)
}

// ShardFiles lists the existing stream files of the sharded log rooted at
// base, in stream order: base itself (when present) followed by every
// base.<i>. Recovery replays whatever streams exist rather than whatever
// the current configuration says, so a database can change LogShards — in
// either direction — across restarts.
func ShardFiles(fs vfs.FS, base string) ([]string, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	type stream struct {
		name string
		idx  int
	}
	var streams []stream
	prefix := base + "."
	for _, n := range names {
		if n == base {
			streams = append(streams, stream{n, 0})
			continue
		}
		if len(n) > len(prefix) && n[:len(prefix)] == prefix {
			if i, err := strconv.Atoi(n[len(prefix):]); err == nil && i > 0 {
				streams = append(streams, stream{n, i})
			}
		}
	}
	for i := 1; i < len(streams); i++ {
		for j := i; j > 0 && streams[j].idx < streams[j-1].idx; j-- {
			streams[j], streams[j-1] = streams[j-1], streams[j]
		}
	}
	out := make([]string, len(streams))
	for i, s := range streams {
		out[i] = s.name
	}
	return out, nil
}

// ShardedOptions configures a Sharded log beyond the per-stream Options.
type ShardedOptions struct {
	Options
	// SequentialSync makes each epoch seal sync its streams one at a time
	// in stream order instead of in parallel. It exists for the op-indexed
	// crash sweeps, whose deterministic replay needs a deterministic
	// file-operation order; it costs exactly the parallel-sync win.
	SequentialSync bool
}

// epochMetrics instruments the epoch barrier; nil-safe like metrics.
type epochMetrics struct {
	epochs  *obs.Counter   // seals completed
	entries *obs.Histogram // sequences acknowledged per epoch
	streams *obs.Histogram // streams synced per epoch
	syncNS  *obs.Histogram // latency of one seal (all stream syncs)
}

// Sharded is an open sharded redo log positioned for appending: N streams,
// each an ordinary Log, sharing one global sequence ticket and one
// epoch-based durability barrier.
type Sharded struct {
	fs    vfs.FS
	opts  ShardedOptions
	em    epochMetrics
	kick  []chan struct{} // one per stream: seal → syncer flush request
	res   []chan error    // one per stream: syncer → seal flush outcome
	wg    sync.WaitGroup  // syncer goroutines
	parts []int           // scratch: streams participating in the current seal

	mu       sync.Mutex
	cond     *sync.Cond
	base     string
	streams  []*Log
	nextSeq  uint64 // sequence the next append gets
	durable  uint64 // every sequence <= durable is durable on its stream
	epoch    uint64 // seals completed (the current epoch number)
	sealing  bool   // a seal is in flight; one at a time
	holdSeal bool   // blocks new seal leaders; see FinishMirror
	err      error  // sticky: a failed stream sync poisons the log
	closed   bool
	mirror   bool // a mirror window is open on every stream
}

// OpenSharded opens the sharded log rooted at base with the given stream
// count, creating (and syncing) any stream files that do not exist yet —
// stream 0 is the base file of the single-stream layout, so opening an
// existing single-stream log with shards > 1 upgrades it in place. nextSeq
// is one past the last recovered sequence, as reported by
// ReplayShardedPipelined.
func OpenSharded(fs vfs.FS, base string, shards int, nextSeq uint64, opts ShardedOptions) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("wal: shard count must be >= 1, got %d", shards)
	}
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: nextSeq must be ≥ 1")
	}
	s := &Sharded{
		fs:      fs,
		opts:    opts,
		base:    base,
		nextSeq: nextSeq,
		durable: nextSeq - 1,
		streams: make([]*Log, 0, shards),
		kick:    make([]chan struct{}, shards),
		res:     make([]chan error, shards),
		parts:   make([]int, 0, shards),
		em: epochMetrics{
			epochs:  opts.Obs.Counter("wal_epochs"),
			entries: opts.Obs.Histogram("wal_epoch_entries"),
			streams: opts.Obs.Histogram("wal_epoch_streams"),
			syncNS:  opts.Obs.Histogram("wal_epoch_sync_ns"),
		},
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < shards; i++ {
		name := ShardName(base, i)
		var l *Log
		var err error
		if vfs.Exists(fs, name) {
			l, err = Open(fs, name, nextSeq, opts.Options)
		} else {
			l, err = Create(fs, name, nextSeq, opts.Options)
		}
		if err != nil {
			for _, open := range s.streams {
				open.Close()
			}
			return nil, err
		}
		s.streams = append(s.streams, l)
	}
	for i := range s.streams {
		s.kick[i] = make(chan struct{})
		s.res[i] = make(chan error)
		s.wg.Add(1)
		go s.syncer(i)
	}
	return s, nil
}

// syncer is stream i's dedicated sync goroutine: it owns the stream's disk
// waits so a seal can run all participating streams' flushes concurrently.
func (s *Sharded) syncer(i int) {
	defer s.wg.Done()
	for range s.kick[i] {
		s.res[i] <- s.streams[i].Flush()
	}
}

// Base reports the base file name (stream 0's name).
func (s *Sharded) Base() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Shards reports the stream count.
func (s *Sharded) Shards() int { return len(s.streams) }

// NextSeq reports the sequence number the next Append will get.
func (s *Sharded) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// DurableSeq reports the durable frontier: every sequence at or below it
// has been acknowledged by a completed epoch barrier.
func (s *Sharded) DurableSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Size reports the total size of all streams in bytes, including unsynced
// frames.
func (s *Sharded) Size() int64 {
	var n int64
	for _, l := range s.streams {
		n += l.Size()
	}
	return n
}

// Append writes one entry and waits for its epoch barrier: on return the
// entry — and every entry sequenced before it — is durable.
func (s *Sharded) Append(payload []byte) (uint64, error) {
	seq, wait := s.AppendAsync(payload)
	return seq, wait()
}

// AppendAsync takes a global sequence from the ticket, frames the entry
// into its stream's pending buffer (stream = seq mod shards), and returns
// a wait function that blocks until the entry's epoch has synced on every
// participating stream. The enqueue does no I/O; concurrent appenders
// contend only on the ticket mutex for the duration of one memcpy.
func (s *Sharded) AppendAsync(payload []byte) (uint64, func() error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, func() error { return ErrClosed }
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return 0, func() error { return err }
	}
	seq := s.nextSeq
	s.nextSeq++
	s.streams[seq%uint64(len(s.streams))].enqueueSeq(seq, payload)
	s.mu.Unlock()
	return seq, func() error { return s.waitDurable(seq) }
}

// waitDurable blocks until seq is at or below the durable frontier. If no
// seal is in flight it leads one; otherwise it waits for the current
// leader and, if that epoch did not cover seq, leads the next. Concurrent
// waiters therefore share epoch barriers — the group commit, now spanning
// streams.
func (s *Sharded) waitDurable(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return s.err
		}
		if s.durable >= seq {
			return nil
		}
		if !s.sealing && !s.holdSeal {
			s.sealing = true
			err := s.sealLocked()
			s.sealing = false
			s.cond.Broadcast()
			if err != nil {
				return err
			}
			continue
		}
		s.cond.Wait()
	}
}

// sealLocked runs one epoch barrier: capture the highest assigned
// sequence, flush every stream with pending frames (in parallel through
// the per-stream syncers, or in stream order with SequentialSync), and on
// success advance the durable frontier to the captured sequence. Called
// with s.mu held (s.sealing set); releases it around the I/O. Entries
// enqueued after the capture may ride along in a stream's flush — they
// become durable early, and the frontier catches up to them on the next
// seal.
func (s *Sharded) sealLocked() error {
	hi := s.nextSeq - 1
	was := s.durable
	s.epoch++
	s.parts = s.parts[:0]
	for i, l := range s.streams {
		if l.hasPending() {
			s.parts = append(s.parts, i)
		}
	}
	if len(s.parts) == 0 {
		// Everything up to hi was flushed by an earlier, wider seal (or
		// a stream-level Flush); nothing to sync.
		if hi > s.durable {
			s.durable = hi
		}
		return nil
	}
	s.mu.Unlock()
	start := time.Now()
	var err error
	if s.opts.SequentialSync {
		for _, i := range s.parts {
			s.kick[i] <- struct{}{}
			if e := <-s.res[i]; e != nil && err == nil {
				err = e
			}
		}
	} else {
		for _, i := range s.parts {
			s.kick[i] <- struct{}{}
		}
		for _, i := range s.parts {
			if e := <-s.res[i]; e != nil && err == nil {
				err = e
			}
		}
	}
	dur := time.Since(start)
	s.mu.Lock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return s.err
	}
	if hi > s.durable {
		s.durable = hi
	}
	s.em.epochs.Inc()
	s.em.entries.Observe(int64(s.durable - was))
	s.em.streams.Observe(int64(len(s.parts)))
	s.em.syncNS.ObserveDuration(dur)
	if s.opts.Tracer != nil {
		s.opts.Tracer.Emit(obs.Event{Name: "log.epoch", Time: start, Dur: dur, Attrs: []obs.Attr{
			obs.A("epoch", s.epoch), obs.A("entries", s.durable-was), obs.A("streams", len(s.parts)),
		}})
	}
	return nil
}

// Flush makes every enqueued entry durable before returning: it waits out
// the barrier for the highest assigned sequence, sealing an epoch that
// covers everything — the epoch boundary a checkpoint cuts at.
func (s *Sharded) Flush() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	hi := s.nextSeq - 1
	s.mu.Unlock()
	return s.waitDurable(hi)
}

// MirrorActive reports whether a mirror window is open.
func (s *Sharded) MirrorActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mirror
}

// BeginMirror opens a mirror window on every stream. As for Log, the
// caller must have quiesced appends and flushed the log.
func (s *Sharded) BeginMirror() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.mirror {
		return errors.New("wal: mirror window already open")
	}
	for s.sealing {
		s.cond.Wait()
	}
	for i, l := range s.streams {
		if err := l.BeginMirror(); err != nil {
			for _, m := range s.streams[:i] {
				m.AbortMirror()
			}
			return err
		}
	}
	s.mirror = true
	return nil
}

// AttachMirrorFiles hands the window the new version's stream files,
// created and synced by the checkpoint protocol, one per stream in stream
// order. From each stream's attach on, its flushes dual-write both files.
func (s *Sharded) AttachMirrorFiles(files []vfs.File) error {
	if len(files) != len(s.streams) {
		return fmt.Errorf("wal: AttachMirrorFiles got %d files for %d streams", len(files), len(s.streams))
	}
	for i, l := range s.streams {
		if err := l.AttachMirrorFile(files[i]); err != nil {
			return err
		}
	}
	return nil
}

// SyncMirror drains every stream's mirror backlog: when it returns nil,
// each stream's new file durably holds every acknowledged entry of the
// window, and the per-stream dual-write rule keeps that invariant for
// every later acknowledgement — so the version flip is safe at any moment
// after this, exactly as for the single-stream window.
func (s *Sharded) SyncMirror() error {
	for _, l := range s.streams {
		if err := l.SyncMirror(); err != nil {
			return err
		}
	}
	return nil
}

// FinishMirror ends the window by retargeting every stream to its new
// file, renaming the log to newBase (stream i appends to
// ShardName(newBase, i) from now on). New seals are held off while each
// stream's brief retarget critical section runs; the durable frontier and
// sequence ticket carry over unchanged. It reports the total entries
// appended during the window across streams.
func (s *Sharded) FinishMirror(newBase string) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.holdSeal = true
	for s.sealing {
		s.cond.Wait()
	}
	s.mu.Unlock()

	var entries int64
	var firstErr error
	for i, l := range s.streams {
		n, err := l.FinishMirror(ShardName(newBase, i))
		if err != nil && firstErr == nil {
			firstErr = err
		}
		entries += n
	}

	s.mu.Lock()
	s.holdSeal = false
	if firstErr != nil && s.err == nil {
		s.err = firstErr
	} else if firstErr == nil {
		s.base = newBase
	}
	s.mirror = false
	s.cond.Broadcast()
	s.mu.Unlock()
	return entries, firstErr
}

// AbortMirror ends the window without switching files on any stream. Safe
// to call in any state.
func (s *Sharded) AbortMirror() {
	for _, l := range s.streams {
		l.AbortMirror()
	}
	s.mu.Lock()
	s.mirror = false
	s.mu.Unlock()
}

// Close flushes and closes every stream and stops the syncers.
func (s *Sharded) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	for s.sealing {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	for i := range s.kick {
		close(s.kick[i])
	}
	s.wg.Wait()
	var err error
	for _, l := range s.streams {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
