package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsQuick runs every experiment end to end in quick mode,
// checking each produces a non-empty, well-formed table.
func TestAllExperimentsQuick(t *testing.T) {
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tables, err := ex.Run(Env{Quick: true, DBEntries: 300})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 || len(tb.Header) == 0 {
					t.Errorf("table %s empty", tb.ID)
				}
				out := tb.String()
				if !strings.Contains(out, tb.ID) {
					t.Errorf("render missing id: %s", out)
				}
			}
		})
	}
}

// TestE1NoDiskDuringEnquiries verifies the paper's core claim as a hard
// assertion: enquiries touch no disk.
func TestE1NoDiskDuringEnquiries(t *testing.T) {
	tables, err := E1(Env{Quick: true, DBEntries: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[0] == "disk I/O during enquiries" && row[2] != "0" {
			t.Errorf("enquiries performed disk I/O: %v", row)
		}
	}
}

// TestE2OneSyncPerUpdate asserts the design's defining cost.
func TestE2OneSyncPerUpdate(t *testing.T) {
	tables, err := E2(Env{Quick: true, DBEntries: 200})
	if err != nil {
		t.Fatal(err)
	}
	note := tables[0].Notes[0]
	if !strings.Contains(note, "syncs per update = 1.00") {
		t.Errorf("unexpected syncs per update: %s", note)
	}
}

// TestE9NoAckedLoss asserts the reliability invariant numerically.
func TestE9NoAckedLoss(t *testing.T) {
	tables, err := E9(Env{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[0] == "this design" {
			if row[1] != "0" || row[2] != "0" || row[3] != "0" {
				t.Errorf("reliability violated: %v", row)
			}
		}
		if row[0] == "ad hoc in-place" {
			corrupt, _ := strconv.Atoi(row[4])
			broken, _ := strconv.Atoi(row[1])
			if corrupt+broken == 0 {
				t.Errorf("ad hoc baseline never corrupted; crash model not biting: %v", row)
			}
		}
	}
}

// TestE13LosesOnlyUnpropagated asserts the §4 replica-restore property.
func TestE13LosesOnlyUnpropagated(t *testing.T) {
	tables, err := E13(Env{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[1] != row[2] {
			t.Errorf("expected %q, measured %q (%s)", row[1], row[2], row[0])
		}
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[time.Duration]string{
		0:                      "0",
		500 * time.Nanosecond:  "500ns",
		1500 * time.Nanosecond: "1.5µs",
		2 * time.Millisecond:   "2.0ms",
		3 * time.Second:        "3.00s",
		2 * time.Minute:        "2.0min",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(2 << 20); got != "2.00MB" {
		t.Errorf("fmtBytes = %q", got)
	}
}
