// Package multistore implements the paper's §7 scaling suggestion in its
// more interesting variant: "many larger databases (for example the
// directories of a large file system) could be handled by considering them
// as multiple separate databases for the purpose of writing checkpoints. In
// that case, we could either use multiple log files or a single log file
// with more complicated rules for flushing the log."
//
// A Set holds several named partitions. Each partition is an independent
// in-memory database with its own checkpoints — so a busy partition
// checkpoints often and a quiet one never pays — but all partitions commit
// to one shared, segmented log, so an update still costs exactly one disk
// write regardless of how many partitions exist.
//
// The "more complicated rules for flushing the log" become segment
// retirement: the shared log is a chain of segments (seg<firstSeq>); a
// segment may be deleted once, for every partition, the partition's
// checkpoint covers all of that partition's entries in the segment. The
// set tracks each segment's per-partition high-water sequence (rebuilt
// from the replay on recovery) to decide this precisely. A partition that
// never checkpoints still pins every segment containing its entries —
// exactly the coupling the paper's remark is about, and the reason its
// simpler alternative is one log file per database (see
// examples/filedirectory).
//
// Disk layout (one directory):
//
//	seg<N>           log segment whose first entry has sequence N
//	cp-<part>-<S>    partition <part>'s checkpoint covering sequences ≤ S
package multistore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"smalldb/internal/core"
	"smalldb/internal/pickle"
	"smalldb/internal/sulock"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

const (
	segPrefix = "seg"
	cpPrefix  = "cp-"
)

// ErrClosed is returned by operations on a closed set.
var ErrClosed = errors.New("multistore: set is closed")

// ErrNoPartition is returned for an unknown partition name.
var ErrNoPartition = errors.New("multistore: no such partition")

// Config configures a Set.
type Config struct {
	// FS is the directory holding segments and checkpoints.
	FS vfs.FS
	// Partitions maps each partition name to its empty-root constructor.
	// Names may not contain '-' (it separates fields in file names).
	Partitions map[string]func() any
	// SegmentBytes rolls the shared log to a new segment past this size;
	// smaller segments retire sooner. Default 1 MiB.
	SegmentBytes int64
}

// segRecord is the pickled form of one shared-log entry.
type segRecord struct {
	Part string
	U    core.Update
}

// pheader is a partition checkpoint's contents.
type pheader struct {
	CpSeq uint64
	Root  any
}

// partition is one member database.
type partition struct {
	name  string
	lock  sulock.Lock
	root  any
	cpSeq uint64 // sequences ≤ cpSeq are covered by this partition's checkpoint

	applied uint64 // last sequence applied to root (any partition order; own entries only)
}

// Set is an open collection of partitions over one shared log.
type Set struct {
	cfg Config

	// rollMu serializes segment rolling against in-flight appends:
	// appenders hold it shared, the roller exclusively, so a segment is
	// never closed under an appender.
	rollMu sync.RWMutex

	mu       sync.Mutex // guards log administration and the partition map
	parts    map[string]*partition
	log      *wal.Log
	segBase  uint64 // first sequence of the current segment
	nextSeq  uint64
	closed   bool
	segParts map[uint64]map[string]uint64 // segment firstSeq -> partition -> max seq in segment
}

func segName(firstSeq uint64) string { return segPrefix + strconv.FormatUint(firstSeq, 10) }

func cpName(part string, seq uint64) string {
	return cpPrefix + part + "-" + strconv.FormatUint(seq, 10)
}

func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(segPrefix):], 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

func parseCp(name string) (part string, seq uint64, ok bool) {
	if !strings.HasPrefix(name, cpPrefix) {
		return "", 0, false
	}
	rest := name[len(cpPrefix):]
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 {
		return "", 0, false
	}
	v, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], v, true
}

// Open recovers (or initializes) a Set.
func Open(cfg Config) (*Set, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("multistore: Config.FS is required")
	}
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("multistore: no partitions configured")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 1 << 20
	}
	for name := range cfg.Partitions {
		if name == "" || strings.ContainsAny(name, "-/\\") {
			return nil, fmt.Errorf("multistore: invalid partition name %q", name)
		}
	}
	s := &Set{cfg: cfg, parts: make(map[string]*partition), segParts: make(map[uint64]map[string]uint64)}

	// 1. Load each partition's newest readable checkpoint.
	names, err := cfg.FS.List()
	if err != nil {
		return nil, err
	}
	newestCp := map[string]uint64{}
	for _, n := range names {
		if part, seq, ok := parseCp(n); ok {
			if seq >= newestCp[part] {
				newestCp[part] = seq
			}
		}
	}
	for name, newRoot := range cfg.Partitions {
		p := &partition{name: name}
		if seq, ok := newestCp[name]; ok {
			hdr, err := readPartCheckpoint(cfg.FS, cpName(name, seq))
			if err != nil {
				return nil, fmt.Errorf("multistore: partition %s: %w", name, err)
			}
			p.root = hdr.Root
			p.cpSeq = hdr.CpSeq
			p.applied = hdr.CpSeq
		} else {
			p.root = newRoot()
		}
		s.parts[name] = p
	}

	// 2. Replay the shared log segments in order, applying entries newer
	// than each partition's checkpoint.
	var segs []uint64
	for _, n := range names {
		if v, ok := parseSeg(n); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	s.nextSeq = 1
	if len(segs) > 0 {
		s.nextSeq = segs[0]
	}
	for _, first := range segs {
		if first != s.nextSeq {
			return nil, fmt.Errorf("multistore: segment gap: have %s, expected seg%d", segName(first), s.nextSeq)
		}
		res, err := wal.Replay(cfg.FS, segName(first), first, wal.ReplayOptions{Repair: true}, func(seq uint64, payload []byte) error {
			var rec segRecord
			if err := pickle.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("multistore: entry %d undecodable: %w", seq, err)
			}
			p, ok := s.parts[rec.Part]
			if !ok {
				return fmt.Errorf("%w: %q in log entry %d (partition removed from config?)", ErrNoPartition, rec.Part, seq)
			}
			s.recordSegEntry(first, rec.Part, seq)
			if seq <= p.cpSeq {
				return nil // already covered by the partition's checkpoint
			}
			if rec.U == nil {
				return fmt.Errorf("multistore: entry %d holds no update", seq)
			}
			if err := rec.U.Apply(p.root); err != nil {
				return fmt.Errorf("multistore: replaying entry %d into %s: %w", seq, rec.Part, err)
			}
			p.applied = seq
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.nextSeq = res.NextSeq
		if res.Truncated && first != segs[len(segs)-1] {
			return nil, fmt.Errorf("multistore: %s is truncated mid-chain", segName(first))
		}
	}

	// 3. Open the newest segment for appending (or start the first).
	if len(segs) == 0 {
		l, err := wal.Create(cfg.FS, segName(1), 1, wal.Options{})
		if err != nil {
			return nil, err
		}
		s.log = l
		s.segBase = 1
	} else {
		last := segs[len(segs)-1]
		l, err := wal.Open(cfg.FS, segName(last), s.nextSeq, wal.Options{})
		if err != nil {
			return nil, err
		}
		s.log = l
		s.segBase = last
	}
	return s, nil
}

func readPartCheckpoint(fs vfs.FS, name string) (*pheader, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr pheader
	if err := pickle.Read(f, &hdr); err != nil {
		return nil, fmt.Errorf("reading %s: %w", name, err)
	}
	if hdr.Root == nil {
		return nil, fmt.Errorf("%s is malformed", name)
	}
	return &hdr, nil
}

// Partitions lists the partition names, sorted.
func (s *Set) Partitions() []string {
	out := make([]string, 0, len(s.parts))
	for n := range s.parts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Set) part(name string) (*partition, error) {
	p, ok := s.parts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPartition, name)
	}
	return p, nil
}

// View runs an enquiry on one partition under its shared lock.
func (s *Set) View(part string, fn func(root any) error) error {
	p, err := s.part(part)
	if err != nil {
		return err
	}
	p.lock.Shared()
	defer p.lock.SharedUnlock()
	return fn(p.root)
}

// Apply commits one update to one partition: the §3 protocol against the
// partition's lock, with the log entry appended to the shared log. Still
// exactly one disk write.
func (s *Set) Apply(part string, u core.Update) error {
	p, err := s.part(part)
	if err != nil {
		return err
	}
	p.lock.Update()

	if err := u.Verify(p.root); err != nil {
		p.lock.UpdateUnlock()
		return err
	}
	payload, err := pickle.Marshal(&segRecord{Part: part, U: u})
	if err != nil {
		p.lock.UpdateUnlock()
		return fmt.Errorf("multistore: pickling update: %w", err)
	}

	// Append under the shared roll lock so the segment cannot be closed
	// out from under us; record the entry against its segment for the
	// retirement rule.
	s.rollMu.RLock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rollMu.RUnlock()
		p.lock.UpdateUnlock()
		return ErrClosed
	}
	log := s.log
	base := s.segBase
	s.mu.Unlock()

	seq, err := log.Append(payload)
	if err == nil {
		s.mu.Lock()
		s.recordSegEntry(base, part, seq)
		s.mu.Unlock()
	}
	s.rollMu.RUnlock()
	if err != nil {
		p.lock.UpdateUnlock()
		return err
	}

	p.lock.Upgrade()
	applyErr := u.Apply(p.root)
	if applyErr == nil {
		p.applied = seq
	}
	p.lock.ExclusiveUnlock()
	if applyErr != nil {
		return fmt.Errorf("multistore: update logged but failed in memory: %w", applyErr)
	}

	s.maybeRoll()
	return nil
}

// recordSegEntry notes that a segment holds an entry of a partition, for
// the retirement rule. Called with s.mu held.
func (s *Set) recordSegEntry(segFirst uint64, part string, seq uint64) {
	m := s.segParts[segFirst]
	if m == nil {
		m = make(map[string]uint64)
		s.segParts[segFirst] = m
	}
	if seq > m[part] {
		m[part] = seq
	}
}

// maybeRoll starts a new segment when the current one is large enough. The
// exclusive roll lock keeps appenders out while the segment swaps.
func (s *Set) maybeRoll() {
	s.mu.Lock()
	needRoll := !s.closed && s.log.Size() >= s.cfg.SegmentBytes && s.log.NextSeq() > s.segBase
	s.mu.Unlock()
	if !needRoll {
		return
	}
	s.rollMu.Lock()
	defer s.rollMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.log.Size() < s.cfg.SegmentBytes {
		return // another roller got here first
	}
	next := s.log.NextSeq()
	if next == s.segBase { // empty segment; nothing to roll
		return
	}
	nl, err := wal.Create(s.cfg.FS, segName(next), next, wal.Options{})
	if err != nil {
		return // keep appending to the old segment; rolling is advisory
	}
	old := s.log
	s.log = nl
	s.segBase = next
	old.Close()
}

// Checkpoint writes one partition's checkpoint, covering everything applied
// to it so far, then retires any fully covered log segments. Only this
// partition's updates are excluded while its root pickles; all other
// partitions run untouched.
func (s *Set) Checkpoint(part string) error {
	p, err := s.part(part)
	if err != nil {
		return err
	}
	p.lock.Update()
	defer p.lock.UpdateUnlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	log := s.log
	s.mu.Unlock()
	// The partition's last applied entry must be durable before a
	// checkpoint claims to cover it.
	if err := log.Flush(); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}

	cpSeq := p.applied
	tmp := cpPrefix + p.name + ".tmp"
	f, err := s.cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	if err := pickle.Write(f, &pheader{CpSeq: cpSeq, Root: p.root}); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Atomic install; the rename is the commit point.
	if err := s.cfg.FS.Rename(tmp, cpName(p.name, cpSeq)); err != nil {
		return err
	}
	oldCp := p.cpSeq
	p.cpSeq = cpSeq
	// Remove the superseded checkpoint.
	if oldCpName := cpName(p.name, oldCp); oldCp != cpSeq && vfs.Exists(s.cfg.FS, oldCpName) {
		_ = s.cfg.FS.Remove(oldCpName)
	}

	return s.retireSegments()
}

// retireSegments deletes every non-active segment all of whose entries are
// covered by their own partition's checkpoint — the shared log's flush
// rule. Reading cpSeq without each partition's lock is safe: it only
// grows, and a stale low value merely delays retirement.
func (s *Set) retireSegments() error {
	cover := map[string]uint64{}
	for name, p := range s.parts {
		cover[name] = p.cpSeq
	}
	names, err := s.cfg.FS.List()
	if err != nil {
		return err
	}
	var segs []uint64
	for _, n := range names {
		if v, ok := parseSeg(n); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.segBase
	// Only a prefix of the chain may be removed: recovery verifies the
	// remaining segments are sequence-contiguous.
	for _, first := range segs {
		if first == cur {
			break // never retire the active segment
		}
		retirable := true
		for part, maxSeq := range s.segParts[first] {
			if maxSeq > cover[part] {
				retirable = false
				break
			}
		}
		if !retirable {
			break
		}
		if err := s.cfg.FS.Remove(segName(first)); err != nil {
			return err
		}
		delete(s.segParts, first)
	}
	return nil
}

// Applied reports a partition's last applied sequence (diagnostics).
func (s *Set) Applied(part string) (uint64, error) {
	p, err := s.part(part)
	if err != nil {
		return 0, err
	}
	p.lock.Shared()
	defer p.lock.SharedUnlock()
	return p.applied, nil
}

// Segments reports the current on-disk segment count and total bytes.
func (s *Set) Segments() (count int, bytes int64, err error) {
	names, err := s.cfg.FS.List()
	if err != nil {
		return 0, 0, err
	}
	for _, n := range names {
		if _, ok := parseSeg(n); ok {
			count++
			sz, err := s.cfg.FS.Stat(n)
			if err != nil {
				return 0, 0, err
			}
			bytes += sz
		}
	}
	return count, bytes, nil
}

// Close flushes and closes the shared log.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.log.Close()
}
