// Incremental checkpoint support: the difference between two published
// snapshots of a Tree, as a pickleable value.
//
// Discovery rides on the copy-on-write discipline: a mutation rebuilds
// every node along its path and shares everything else, so between two
// snapshot views a subtree whose root pointer is unchanged is content-
// identical, and the diff needs to descend only where pointers differ —
// cost proportional to the churn between the snapshots, not to the tree.
// (The reverse implication does not hold: a Move reinstalls a shared
// subtree pointer under a new parent, so the diff sees a changed parent
// and pickles the moved subtree in full — a move costs its subtree's
// size, the same as the PutSubtree that created it.)
package nameserver

import (
	"fmt"

	"smalldb/internal/pickle"
)

// Delta op kinds.
const (
	// DeltaSet sets the scalar fields (value, presence, stamps) of the
	// node at Path, creating it and intermediates if absent. Children are
	// untouched.
	DeltaSet uint8 = 1
	// DeltaDelete removes the subtree at Path.
	DeltaDelete uint8 = 2
	// DeltaPut replaces the subtree at Path wholesale with Subtree.
	DeltaPut uint8 = 3
)

// DeltaOp is one step of a TreeDelta. Ops within a delta touch disjoint
// or scalar-vs-structure-disjoint paths, so they commute; apply order is
// irrelevant.
type DeltaOp struct {
	Op   uint8
	Path []string

	// DeltaSet payload.
	Value    string
	HasValue bool
	Stamp    uint64
	StampBy  string

	// DeltaPut payload.
	Subtree *Node
}

// TreeDelta is the pickled difference between two snapshot views of a
// Tree: applying Ops to the older view's state yields the newer view's.
type TreeDelta struct {
	Ops []DeltaOp
}

func init() {
	pickle.Register(&TreeDelta{})
	pickle.Register(DeltaOp{})
}

// DeltaOps reports the number of subtree operations in the delta — the
// checkpoint header's subtree count.
func (d *TreeDelta) DeltaOps() int { return len(d.Ops) }

// DeltaSince implements the core store's DeltaRoot contract: it returns a
// *TreeDelta transforming prev — an earlier SnapshotView of this tree —
// into t's state. Both trees must be immutable for the duration (snapshot
// views are). The walk skips every pointer-shared subtree, so its cost is
// proportional to what changed between the two views.
func (t *Tree) DeltaSince(prev any) (any, error) {
	p, ok := prev.(*Tree)
	if !ok {
		return nil, fmt.Errorf("nameserver: delta base is %T, not *Tree", prev)
	}
	d := &TreeDelta{}
	oldRoot, newRoot := p.Root, t.Root
	if oldRoot == nil {
		oldRoot = &Node{}
	}
	if newRoot == nil {
		newRoot = &Node{}
	}
	diffNode(oldRoot, newRoot, nil, d)
	return d, nil
}

// diffNode appends the ops turning old into new to d. old and new are both
// non-nil and pointer-distinct (callers handle the other cases).
func diffNode(old, new *Node, path []string, d *TreeDelta) {
	if old.Value != new.Value || old.HasValue != new.HasValue ||
		old.Stamp != new.Stamp || old.StampBy != new.StampBy {
		d.Ops = append(d.Ops, DeltaOp{
			Op: DeltaSet, Path: copyPath(path),
			Value: new.Value, HasValue: new.HasValue,
			Stamp: new.Stamp, StampBy: new.StampBy,
		})
	}
	for label, nc := range new.Children {
		var oc *Node
		if old.Children != nil {
			oc = old.Children[label]
		}
		if oc == nc {
			continue // pointer-shared: content-identical under COW
		}
		childPath := childPath(path, label)
		if oc == nil {
			d.Ops = append(d.Ops, DeltaOp{Op: DeltaPut, Path: childPath, Subtree: nc})
			continue
		}
		diffNode(oc, nc, childPath, d)
	}
	for label := range old.Children {
		if new.Children == nil || new.Children[label] == nil {
			d.Ops = append(d.Ops, DeltaOp{Op: DeltaDelete, Path: childPath(path, label)})
		}
	}
}

func copyPath(p []string) []string {
	if len(p) == 0 {
		return nil
	}
	out := make([]string, len(p))
	copy(out, p)
	return out
}

func childPath(p []string, label string) []string {
	out := make([]string, len(p)+1)
	copy(out, p)
	out[len(p)] = label
	return out
}

// ApplyDelta implements the core store's DeltaRoot contract: apply a
// *TreeDelta produced by DeltaSince to this tree. It is called on the
// working root during recovery (after the chain's base loads, before log
// replay) and respects the copy-on-write discipline, so it is also safe
// once snapshots exist.
func (t *Tree) ApplyDelta(delta any) error {
	d, ok := delta.(*TreeDelta)
	if !ok {
		return fmt.Errorf("nameserver: delta is %T, not *TreeDelta", delta)
	}
	for i := range d.Ops {
		op := &d.Ops[i]
		switch op.Op {
		case DeltaSet:
			n := t.ensure(op.Path)
			n.Value = op.Value
			n.HasValue = op.HasValue
			n.Stamp = op.Stamp
			n.StampBy = op.StampBy
		case DeltaDelete:
			if len(op.Path) == 0 {
				return fmt.Errorf("nameserver: delta deletes the root")
			}
			parent := t.cowPath(op.Path[:len(op.Path)-1])
			if parent != nil && parent.Children != nil {
				delete(parent.Children, op.Path[len(op.Path)-1])
			}
		case DeltaPut:
			if len(op.Path) == 0 {
				return fmt.Errorf("nameserver: delta replaces the root")
			}
			if op.Subtree == nil {
				return fmt.Errorf("nameserver: delta put with nil subtree at %s", JoinPath(op.Path))
			}
			parent := t.ensure(op.Path[:len(op.Path)-1])
			if parent.Children == nil {
				parent.Children = make(map[string]*Node)
			}
			// The decoded subtree is owned by the delta; share it. Its
			// nodes decode with born == 0, so later mutations copy them
			// — exactly the discipline for checkpoint-loaded nodes.
			parent.Children[op.Path[len(op.Path)-1]] = op.Subtree
		default:
			return fmt.Errorf("nameserver: unknown delta op %d at %s", op.Op, JoinPath(op.Path))
		}
	}
	return nil
}
