package wal

import (
	"fmt"
	"testing"

	"smalldb/internal/vfs"
)

func BenchmarkAppend(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(fmt.Sprintf("payload%d", size), func(b *testing.B) {
			fs := vfs.NewMem(1)
			l, err := Create(fs, "log", 1, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendParallelSharedSyncs(b *testing.B) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log", 1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReplay(b *testing.B) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	payload := make([]byte, 128)
	const entries = 1000
	for i := 0; i < entries; i++ {
		l.Append(payload)
	}
	l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Replay(fs, "log", 1, ReplayOptions{}, func(uint64, []byte) error { return nil })
		if err != nil || res.Entries != entries {
			b.Fatalf("%+v %v", res, err)
		}
	}
}
