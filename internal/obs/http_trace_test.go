package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smalldb/internal/vfs"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugTraceEndpoint(t *testing.T) {
	tb := NewTraceBuffer(64)
	srv := httptest.NewServer(NewMux(NewRegistry(), MuxOptions{Traces: tb}))
	defer srv.Close()

	// Empty collector: the list must say so rather than 500 or hang.
	if code, body := getBody(t, srv.URL+"/debug/trace"); code != http.StatusOK || !strings.Contains(body, "no traces recorded") {
		t.Errorf("empty list: %d %q", code, body)
	}

	// Record one two-span trace and fetch its timeline by hex id.
	root := StartRoot(tb, "update.commit")
	child := StartSpan(tb, root.Context(), "wal.sync")
	child.End(nil, A("seq", 3))
	root.End(nil)
	id := uint64(root.Context().Trace)

	code, body := getBody(t, srv.URL+"/debug/trace")
	if code != http.StatusOK || !strings.Contains(body, fmt.Sprintf("%016x", id)) || !strings.Contains(body, "update.commit") {
		t.Errorf("trace list: %d\n%s", code, body)
	}
	code, body = getBody(t, fmt.Sprintf("%s/debug/trace?id=%016x", srv.URL, id))
	if code != http.StatusOK || !strings.Contains(body, "update.commit") || !strings.Contains(body, "  wal.sync") {
		t.Errorf("timeline: %d\n%s", code, body)
	}
	if !strings.Contains(body, "seq=3") {
		t.Errorf("timeline missing attrs:\n%s", body)
	}

	// Unknown id says so; a non-hex id is a 400.
	if _, body := getBody(t, srv.URL+"/debug/trace?id=abcdef"); !strings.Contains(body, "no events") {
		t.Errorf("unknown id: %q", body)
	}
	if code, _ := getBody(t, srv.URL+"/debug/trace?id=zzz"); code != http.StatusBadRequest {
		t.Errorf("bad id status %d, want 400", code)
	}
}

func TestDebugFlightEndpoint(t *testing.T) {
	fr, err := OpenFlight(FlightConfig{FS: vfs.NewMem(1), FlushEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	fr.Emit(Event{Name: "update.commit", Dur: time.Millisecond})
	srv := httptest.NewServer(NewMux(NewRegistry(), MuxOptions{Flight: fr}))
	defer srv.Close()

	code, body := getBody(t, srv.URL+"/debug/flight")
	if code != http.StatusOK || !strings.Contains(body, "flight.start") || !strings.Contains(body, "update.commit") {
		t.Errorf("/debug/flight: %d\n%s", code, body)
	}

	// Without a flight recorder the route falls through to the index 404.
	bare := httptest.NewServer(NewMux(NewRegistry(), MuxOptions{}))
	defer bare.Close()
	if code, _ := getBody(t, bare.URL+"/debug/flight"); code != http.StatusNotFound {
		t.Errorf("unconfigured /debug/flight status %d, want 404", code)
	}
}

func TestStatsRendersEventTimestamps(t *testing.T) {
	rec := NewRecorder(8)
	rec.Emit(Event{Name: "update.commit", Time: time.Date(2026, 8, 8, 14, 5, 9, 123456000, time.Local), Dur: time.Millisecond})
	srv := httptest.NewServer(NewMux(NewRegistry(), MuxOptions{Recorder: rec}))
	defer srv.Close()
	code, body := getBody(t, srv.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if !strings.Contains(body, "14:05:09.123456") {
		t.Errorf("/stats recent events missing wall-clock timestamps:\n%s", body)
	}
}

func TestDebugFlightEmptyRing(t *testing.T) {
	// A recorder whose only event hasn't happened yet can't occur via
	// OpenFlight (it stamps flight.start), so exercise the empty branch
	// with a zero-value ring the way a future constructor might.
	fr := &FlightRecorder{slots: 4, enc: make([][]byte, 4), mem: make([]Event, 4)}
	srv := httptest.NewServer(NewMux(NewRegistry(), MuxOptions{Flight: fr}))
	defer srv.Close()
	if code, body := getBody(t, srv.URL+"/debug/flight"); code != http.StatusOK || !strings.Contains(body, "no flight events") {
		t.Errorf("empty flight tail: %d %q", code, body)
	}
}
