package pickle

import "sync/atomic"

// codec holds package-wide counters for the compiled-plan machinery. They
// are cheap atomics bumped off the hot path (plan compilation, pool
// refills) and on pool gets, and are surfaced through Stats so the obs
// layer can export them without this package importing it.
var codec struct {
	encPlanCompiles atomic.Uint64
	decPlanCompiles atomic.Uint64
	encPoolGets     atomic.Uint64
	encPoolMisses   atomic.Uint64
	decPoolGets     atomic.Uint64
	decPoolMisses   atomic.Uint64
}

// CodecStats is a snapshot of the compiled-codec machinery's counters.
type CodecStats struct {
	// EncPlanCompiles and DecPlanCompiles count per-type codec program
	// compilations; in steady state they stop growing.
	EncPlanCompiles uint64
	DecPlanCompiles uint64
	// Pool gets and misses for the pooled Marshal/Unmarshal state. A miss
	// is a get that had to allocate fresh state; hit rate = 1 - misses/gets.
	EncPoolGets   uint64
	EncPoolMisses uint64
	DecPoolGets   uint64
	DecPoolMisses uint64
}

// Stats returns a snapshot of the codec counters.
func Stats() CodecStats {
	return CodecStats{
		EncPlanCompiles: codec.encPlanCompiles.Load(),
		DecPlanCompiles: codec.decPlanCompiles.Load(),
		EncPoolGets:     codec.encPoolGets.Load(),
		EncPoolMisses:   codec.encPoolMisses.Load(),
		DecPoolGets:     codec.decPoolGets.Load(),
		DecPoolMisses:   codec.decPoolMisses.Load(),
	}
}
