package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// MuxOptions selects the optional data sources behind the admin mux.
type MuxOptions struct {
	// Recorder, if non-nil, supplies the recent-events section of /stats.
	Recorder *Recorder
	// Traces, if non-nil, serves /debug/trace: recent traces, and a full
	// per-trace timeline with ?id=<hex trace id>.
	Traces *TraceBuffer
	// Flight, if non-nil, serves /debug/flight: the live in-memory tail of
	// the crash-surviving flight recorder.
	Flight *FlightRecorder
}

// Mux builds the admin HTTP mux for a registry with only a recent-events
// recorder attached; see NewMux for the full option set.
func Mux(r *Registry, rec *Recorder) *http.ServeMux {
	return NewMux(r, MuxOptions{Recorder: rec})
}

// NewMux builds the admin HTTP mux for a registry:
//
//	/metrics       registry snapshot as JSON (counters, gauges, histogram
//	               percentile summaries)
//	/stats         the same, human-readable (durations and sizes formatted,
//	               ASCII bucket bars with ?buckets=1)
//	/debug/trace   recent traces; ?id=<hex> renders one commit timeline
//	/debug/flight  the flight recorder's in-memory tail
//	/debug/pprof/  the standard Go profiling endpoints
//	/debug/vars    expvar (the registry is published there too)
func NewMux(r *Registry, opts MuxOptions) *http.ServeMux {
	rec := opts.Recorder
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "goroutines=%d\n\n", runtime.NumGoroutine())
		r.WriteText(w)
		if req.URL.Query().Get("buckets") != "" {
			fmt.Fprintf(w, "\nhistogram buckets:\n")
			r.Each(func(name string, v any) {
				h, ok := v.(*Histogram)
				if !ok {
					return
				}
				s := h.Snapshot()
				if s.Count == 0 {
					return
				}
				fmt.Fprintf(w, "\n%s:\n%s", name, s.Bar(40, bucketFormat(name)))
			})
		}
		if rec != nil {
			fmt.Fprintf(w, "\nrecent events:\n")
			for _, e := range rec.Events() {
				fmt.Fprintf(w, "  %s\n", e)
			}
		}
	})
	if opts.Traces != nil {
		tb := opts.Traces
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if idStr := req.URL.Query().Get("id"); idStr != "" {
				id, err := strconv.ParseUint(idStr, 16, 64)
				if err != nil {
					http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
					return
				}
				evs := tb.Trace(TraceID(id))
				if len(evs) == 0 {
					fmt.Fprintf(w, "trace %016x: no events\n", id)
					return
				}
				fmt.Fprintf(w, "trace %016x (%d events)\n\n", id, len(evs))
				WriteTimeline(w, evs)
				return
			}
			ts := tb.Traces()
			if len(ts) == 0 {
				fmt.Fprintf(w, "no traces recorded\n")
				return
			}
			fmt.Fprintf(w, "recent traces (newest first; ?id=<trace> for the timeline):\n\n")
			for _, t := range ts {
				fmt.Fprintf(w, "  %016x  %-24s %3d events", uint64(t.Trace), t.Root, t.Events)
				if !t.Start.IsZero() {
					fmt.Fprintf(w, "  %s", t.Start.Format("15:04:05.000000"))
				}
				fmt.Fprintln(w)
			}
		})
	}
	if opts.Flight != nil {
		fr := opts.Flight
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			evs := fr.Events()
			if len(evs) == 0 {
				fmt.Fprintf(w, "no flight events\n")
				return
			}
			fmt.Fprintf(w, "flight recorder tail (%d events, oldest first):\n\n", len(evs))
			for _, e := range evs {
				fmt.Fprintf(w, "  %s\n", e)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", http.DefaultServeMux)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "smalldb debug endpoint\n\n/metrics\n/stats (?buckets=1 for distributions)\n/debug/trace (?id=<trace> for a timeline)\n/debug/flight\n/debug/pprof/\n/debug/vars\n")
	})
	return mux
}

func bucketFormat(name string) func(int64) string {
	if hasSuffix(name, "_ns") {
		return func(v int64) string { return time.Duration(v).String() }
	}
	if hasSuffix(name, "_bytes") {
		return sizeStr
	}
	return nil
}

// An AdminServer is a running debug HTTP endpoint.
type AdminServer struct {
	// Addr is the address the server is actually listening on (useful
	// when the requested address had port 0).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeAdmin starts the admin endpoint on addr, publishing the registry to
// expvar as a side effect. It returns once the listener is bound; serving
// continues in a background goroutine until Close.
func ServeAdmin(addr string, r *Registry, rec *Recorder) (*AdminServer, error) {
	return ServeAdminOpts(addr, r, MuxOptions{Recorder: rec})
}

// ServeAdminOpts is ServeAdmin with the full option set (trace buffer,
// flight recorder).
func ServeAdminOpts(addr string, r *Registry, opts MuxOptions) (*AdminServer, error) {
	r.PublishExpvar("smalldb_")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(r, opts), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the admin endpoint.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
