// Filedirectory: the paper's "file directories" example, and a
// demonstration of its §7 scaling idea — "many larger databases (for
// example the directories of a large file system) could be handled by
// considering them as multiple separate databases for the purpose of
// writing checkpoints."
//
// Each volume is its own store (its own checkpoint and log), so volumes
// checkpoint independently: a busy volume can checkpoint often while a
// quiet one never pays the cost. The example builds three volumes of file
// metadata, exercises renames and deletes, crashes one volume, and shows
// that recovery and checkpoint schedules are fully independent.
//
// Run with:
//
//	go run ./examples/filedirectory
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"smalldb/internal/nameserver"
	"smalldb/internal/vfs"
)

// Volume is one file-system volume's directory tree, backed by the
// nameserver tree (names are paths, values are encoded inode attributes).
type Volume struct {
	name string
	srv  *nameserver.Server
	fs   *vfs.Mem
}

func openVolume(name string, fs *vfs.Mem) (*Volume, error) {
	srv, err := nameserver.Open(nameserver.Config{
		FS:            fs,
		Retain:        1,
		MaxLogEntries: 50, // per-volume checkpoint policy
	})
	if err != nil {
		return nil, err
	}
	return &Volume{name: name, srv: srv, fs: fs}, nil
}

func (v *Volume) create(path, attrs string) error { return v.srv.Set(path, attrs) }
func (v *Volume) remove(path string) error        { return v.srv.Delete(path) }
func (v *Volume) rename(from, to string) error    { return v.srv.Rename(from, to) }

func (v *Volume) stat(path string) (string, error) { return v.srv.Lookup(path) }

func (v *Volume) ls(path string) ([]string, error) { return v.srv.List(path) }

func main() {
	// A "large file system" as several small databases.
	vols := map[string]*Volume{}
	for i, name := range []string{"home", "src", "scratch"} {
		fs := vfs.NewMem(int64(i + 1))
		v, err := openVolume(name, fs)
		if err != nil {
			log.Fatal(err)
		}
		vols[name] = v
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Populate: each volume gets its own tree.
	must(vols["home"].create("amy/notes.txt", "inode=101 size=2048 mode=0644"))
	must(vols["home"].create("amy/projects/plan.md", "inode=102 size=512 mode=0644"))
	must(vols["home"].create("bob/todo.txt", "inode=201 size=64 mode=0600"))
	for i := 0; i < 120; i++ { // busy volume: crosses MaxLogEntries → auto-checkpoints
		must(vols["src"].create(fmt.Sprintf("repo/file%03d.go", i), fmt.Sprintf("inode=%d size=%d", 1000+i, 100*i)))
	}
	must(vols["scratch"].create("tmp.dat", "inode=9 size=1"))

	// Directory operations are single-shot transactions.
	must(vols["home"].rename("amy/projects", "amy/archive"))
	must(vols["home"].remove("bob/todo.txt"))
	if err := vols["home"].remove("bob/todo.txt"); err != nil {
		fmt.Println("rejected:", err)
	}

	// Busy volume checkpointed itself; quiet volumes never paid for it.
	fmt.Printf("src volume: %d auto-checkpoints (version %d), log holds %d entries\n",
		vols["src"].srv.Stats().Checkpoints, vols["src"].srv.Store().Version(),
		vols["src"].srv.Stats().LogEntries)
	fmt.Printf("scratch volume: %d checkpoints (version %d)\n",
		vols["scratch"].srv.Stats().Checkpoints, vols["scratch"].srv.Store().Version())

	// Crash only the home volume; the others are untouched.
	vols["home"].srv.Close()
	vols["home"].fs.Crash()
	reopened, err := openVolume("home", vols["home"].fs)
	must(err)
	vols["home"] = reopened

	entries, err := vols["home"].ls("amy")
	must(err)
	fmt.Printf("home/amy after crash recovery: %v\n", entries)
	if _, err := vols["home"].stat("bob/todo.txt"); errors.Is(err, nameserver.ErrNotFound) {
		fmt.Println("bob/todo.txt stayed deleted across the crash")
	}
	attrs, err := vols["home"].stat("amy/archive/plan.md")
	must(err)
	fmt.Println("amy/archive/plan.md:", attrs)

	// Walk a whole volume (the browse operation).
	var listing []string
	must(vols["home"].srv.Enumerate("", func(name, value string) error {
		listing = append(listing, fmt.Sprintf("%s (%s)", name, value[strings.Index(value, "inode="):]))
		return nil
	}))
	fmt.Println("home volume contents:")
	for _, l := range listing {
		fmt.Println("  " + l)
	}

	for _, v := range vols {
		v.srv.Close()
	}

}
