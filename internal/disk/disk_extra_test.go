package disk

import (
	"sync"
	"testing"
	"time"

	"smalldb/internal/vfs"
)

// The simulated disk has one arm: concurrent syncs serialize, so N
// concurrent operations take about N× one operation's time.
func TestSingleArmSerializes(t *testing.T) {
	prof := Profile{Name: "test", PerOpWrite: 20 * time.Millisecond}
	d := New(vfs.NewMem(1), prof, 0.5) // 10 ms real per op

	const ops = 6
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := d.Create(vfsName(i))
			if err != nil {
				t.Error(err)
				return
			}
			f.Write([]byte("x"))
			f.Sync()
			f.Close()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < ops*10*time.Millisecond/2 {
		t.Errorf("%d concurrent syncs finished in %v; arm not serializing", ops, elapsed)
	}
}

func vfsName(i int) string {
	return string(rune('a' + i))
}

func TestModeledIOAccumulatesUnderConcurrency(t *testing.T) {
	d := New(vfs.NewMem(1), MicroVAX, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, _ := d.Create(vfsName(i))
			f.Write(make([]byte, 100))
			f.Sync()
			f.Close()
		}(i)
	}
	wg.Wait()
	s := d.Stats()
	if s.Syncs != 8 {
		t.Errorf("Syncs = %d", s.Syncs)
	}
	perOp := MicroVAX.PerOpWrite + time.Duration(100*int64(time.Second)/MicroVAX.WriteBytesPerSec)
	if s.ModeledIO != 8*perOp {
		t.Errorf("ModeledIO = %v, want %v", s.ModeledIO, 8*perOp)
	}
}

func TestResetStats(t *testing.T) {
	d := New(vfs.NewMem(1), MicroVAX, 0)
	f, _ := d.Create("f")
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	d.ResetStats()
	if s := d.Stats(); s.Syncs != 0 || s.ModeledIO != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestOverOSFilesystem(t *testing.T) {
	// The disk model composes with the real file system too.
	osfs, err := vfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := New(osfs, Unlimited, 0)
	if err := vfs.WriteFile(d, "real", []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(d, "real")
	if err != nil || string(got) != "bytes" {
		t.Fatalf("got %q, %v", got, err)
	}
	if s := d.Stats(); s.Syncs != 1 || s.BytesWritten != 5 {
		t.Errorf("stats over OS fs: %+v", s)
	}
}
