// Package checkpoint implements the paper's on-disk checkpoint protocol,
// byte for byte the §3 recipe:
//
//	"In the normal quiescent state the directory contains a version-
//	numbered checkpoint, with a file title such as checkpoint35, a
//	matching log file named logfile35, and a file named version
//	containing the characters '35'. We switch to a new checkpoint by
//	writing it to the file checkpoint36, creating an empty file
//	logfile36, then writing the characters '36' to a new file called
//	newversion. This is the commit point (after an appropriate number of
//	Unix fsync calls). Finally, we delete checkpoint35, logfile35 and
//	version, then rename newversion to be version."
//
// Recovery follows the paper's restart rule: read the version number from
// newversion if it exists and holds a valid version (valid further requires
// that its checkpoint and log files exist and were fsynced before newversion
// was written — which Switch guarantees), otherwise from version; then
// delete any redundant files and finish the interrupted switch.
//
// For hard-error recovery (§4), Switch can retain the previous checkpoint
// and log instead of deleting them: "Recovery from a hard error in the
// checkpoint could be achieved by keeping one previous checkpoint and log."
//
// # Delta chains
//
// The protocol is extended beyond the paper with chained incremental
// checkpoints: a switch may write checkpoint<v>.d — a delta against
// version v-1's state — instead of a full image checkpoint<v>. The commit
// point and the version files are unchanged; only the shape of the
// checkpoint data differs. Recovery then reads a *chain*: the newest full
// image at or below the current version (the chain's base) followed by
// every delta above it, in version order. Retention is generalized
// accordingly — a checkpoint file is kept as long as the chain of the
// current version or of any retained version still references it, so a
// base can outlive its own retention window while deltas stand on it.
package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

const (
	checkpointPrefix = "checkpoint"
	logPrefix        = "logfile"
	archivePrefix    = "archive-logfile"
	versionFile      = "version"
	newVersionFile   = "newversion"
)

// ErrNotInitialized is returned by Recover when the directory holds no
// database at all.
var ErrNotInitialized = errors.New("checkpoint: no database in directory")

// CheckpointName returns the full-image checkpoint file name for a version.
func CheckpointName(v uint64) string { return checkpointPrefix + strconv.FormatUint(v, 10) }

// DeltaName returns the delta checkpoint file name for a version: the
// incremental checkpoint whose contents transform version v-1's state into
// version v's. A version has either a full image or a delta, never both.
func DeltaName(v uint64) string { return CheckpointName(v) + deltaSuffix }

const deltaSuffix = ".d"

// parseCheckpointName recognizes checkpoint<v> and checkpoint<v>.d.
func parseCheckpointName(name string) (v uint64, delta bool, ok bool) {
	if rest, found := strings.CutSuffix(name, deltaSuffix); found {
		v, ok = parseNumbered(rest, checkpointPrefix)
		return v, true, ok
	}
	v, ok = parseNumbered(name, checkpointPrefix)
	return v, false, ok
}

// LogName returns the log file name for a version.
func LogName(v uint64) string { return logPrefix + strconv.FormatUint(v, 10) }

// ShardLogName returns the file name of one stream of a sharded log for a
// version: LogName(v) itself for stream 0, logfileN.<shard> above it — the
// wal.Sharded naming convention applied to the protocol's log names.
func ShardLogName(v uint64, shard int) string { return wal.ShardName(LogName(v), shard) }

// ArchiveLogName returns the name a version's log is archived under when
// the audit trail is kept (§4: "the log files form a complete audit trail
// for the database, and could be retained if desired").
func ArchiveLogName(v uint64) string { return archivePrefix + strconv.FormatUint(v, 10) }

// ArchiveShardLogName returns the archive name of one stream of a sharded
// log for a version.
func ArchiveShardLogName(v uint64, shard int) string {
	return wal.ShardName(ArchiveLogName(v), shard)
}

// ArchivedLogs lists the versions with archived logs, ascending. A version
// whose log was sharded counts once however many streams it has.
func ArchivedLogs(fs vfs.FS) ([]uint64, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	seen := map[uint64]bool{}
	var versions []uint64
	for _, n := range names {
		if v, ok := parseNumberedShard(n, archivePrefix); ok && !seen[v] {
			seen[v] = true
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	return versions, nil
}

// State describes the durable state of the directory after a successful
// Recover, Init or Switch.
type State struct {
	// Version is the current version number.
	Version uint64
	// Base is the full checkpoint the current version's delta chain
	// stands on: Version itself when the current checkpoint is a full
	// image, otherwise the newest version at or below Version whose
	// checkpoint file is full. Recovery reads CheckpointName(Base) and
	// applies DeltaName(w) for each w in Base+1..Version.
	Base uint64
	// Retained lists older versions whose state is still recoverable
	// (their chain and log files are kept) for hard-error recovery,
	// ascending.
	Retained []uint64
}

// CheckpointName returns the current checkpoint's file name.
func (s State) CheckpointName() string { return CheckpointName(s.Version) }

// LogName returns the current log's file name.
func (s State) LogName() string { return LogName(s.Version) }

// Chain returns the versions whose checkpoint files recovery reads to
// reconstruct the current state, ascending: the full base, then each delta.
func (s State) Chain() []uint64 {
	chain := make([]uint64, 0, s.Version-s.Base+1)
	for v := s.Base; v <= s.Version; v++ {
		chain = append(chain, v)
	}
	return chain
}

// parseVersionFile reads a version/newversion file and reports the version
// it names, if the contents are a valid number.
func parseVersionFile(fs vfs.FS, name string) (uint64, bool) {
	data, err := vfs.ReadFile(fs, name)
	if err != nil {
		return 0, false
	}
	s := strings.TrimSpace(string(data))
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// ChainOf resolves version v's checkpoint chain: the versions whose
// checkpoint files recovery reads, ascending from the full base to v
// itself. The error describes the first break in the chain.
func ChainOf(fs vfs.FS, v uint64) ([]uint64, error) {
	var chain []uint64
	for w := v; w >= 1; w-- {
		chain = append(chain, w)
		if vfs.Exists(fs, CheckpointName(w)) {
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return chain, nil
		}
		if !vfs.Exists(fs, DeltaName(w)) {
			return nil, fmt.Errorf("checkpoint: chain of version %d is broken at version %d: neither %s nor %s exists", v, w, CheckpointName(w), DeltaName(w))
		}
	}
	return nil, fmt.Errorf("checkpoint: chain of version %d reaches version 1 without a full base", v)
}

// versionComplete reports whether version v is recoverable: its log exists
// and its checkpoint chain resolves down to a full base.
func versionComplete(fs vfs.FS, v uint64) bool {
	if !vfs.Exists(fs, LogName(v)) {
		return false
	}
	_, err := ChainOf(fs, v)
	return err == nil
}

// Init creates version 1: the caller streams the initial checkpoint (for an
// empty database, the pickled empty root) through write. Crashing anywhere
// during Init leaves a directory Recover still reports as uninitialized.
func Init(fs vfs.FS, write func(w io.Writer) error) (State, error) {
	const v = 1
	if err := writeCheckpointFile(fs, CheckpointName(v), write); err != nil {
		return State{}, err
	}
	if err := createEmptySynced(fs, LogName(v)); err != nil {
		return State{}, err
	}
	// The version file's durable appearance is the commit point of Init.
	if err := vfs.WriteFile(fs, versionFile, []byte("1\n")); err != nil {
		return State{}, err
	}
	return State{Version: v, Base: v}, nil
}

func writeCheckpointFile(fs vfs.FS, name string, write func(w io.Writer) error) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	// The pickler streams many small writes; buffer them so a checkpoint
	// costs a few large file writes rather than one syscall per field.
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := write(bw); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", name, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func createEmptySynced(fs vfs.FS, name string) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Options configures recovery and switching beyond the base protocol.
type Options struct {
	// Retain is the number of previous checkpoint+log pairs to keep (the
	// paper suggests 1 for hard-error recovery; 0 reproduces the base
	// protocol exactly).
	Retain int
	// ArchiveLogs renames a log to archive-logfileN instead of deleting
	// it when its version leaves the retention window — the §4 audit
	// trail. Archived logs are never read by recovery; logdump and
	// Store.History read them.
	ArchiveLogs bool
	// Obs, when non-nil, receives the protocol's metrics:
	// checkpoint_switches, checkpoint_switch_ns and checkpoint_bytes.
	Obs *obs.Registry
}

// Recover inspects the directory, determines the current version, finishes
// any interrupted switch, deletes redundant files beyond the retention
// count, and returns the resulting state. retain is as in Options.Retain.
func Recover(fs vfs.FS, retain int) (State, error) {
	return RecoverWith(fs, Options{Retain: retain})
}

// RecoverWith is Recover with full Options.
func RecoverWith(fs vfs.FS, opts Options) (State, error) {
	cur, haveNew := parseVersionFile(fs, newVersionFile)
	if haveNew && !versionComplete(fs, cur) {
		// newversion exists but its files don't — only possible if
		// the switch crashed before its fsyncs completed, or media
		// loss. Fall back to version.
		haveNew = false
	}
	if !haveNew {
		v, ok := parseVersionFile(fs, versionFile)
		if !ok {
			// No valid version state. If checkpoints exist this is
			// damage and needs attention (restore from a replica
			// or the retained previous version by hand); if not,
			// it is a virgin directory or a crashed Init, whose
			// debris is safe to clear.
			names, err := fs.List()
			if err != nil {
				return State{}, err
			}
			laterCheckpoint := false
			for _, n := range names {
				if v, _, isCp := parseCheckpointName(n); isCp && v > 1 {
					laterCheckpoint = true
				}
			}
			// checkpoint1 alone is the debris of a crashed Init;
			// any later checkpoint means an established database
			// whose version file has been lost or damaged.
			if laterCheckpoint {
				return State{}, fmt.Errorf("checkpoint: checkpoints exist but version files are unreadable or invalid")
			}
			for _, n := range []string{versionFile, newVersionFile} {
				if vfs.Exists(fs, n) {
					if err := fs.Remove(n); err != nil {
						return State{}, err
					}
				}
			}
			return State{}, ErrNotInitialized
		}
		cur = v
		if !vfs.Exists(fs, LogName(cur)) {
			return State{}, fmt.Errorf("checkpoint: version file names %d but %s missing", cur, LogName(cur))
		}
		if _, cerr := ChainOf(fs, cur); cerr != nil {
			return State{}, fmt.Errorf("checkpoint: version file names %d but its checkpoint is unreadable: %w", cur, cerr)
		}
		// Any newversion file left behind at this point is debris of
		// a switch that never committed.
		if vfs.Exists(fs, newVersionFile) {
			if err := fs.Remove(newVersionFile); err != nil {
				return State{}, err
			}
		}
	} else {
		// Finish the interrupted switch: install newversion as
		// version.
		if vfs.Exists(fs, versionFile) {
			if err := fs.Remove(versionFile); err != nil {
				return State{}, err
			}
		}
		if err := fs.Rename(newVersionFile, versionFile); err != nil {
			return State{}, err
		}
	}
	return cleanup(fs, cur, opts)
}

// cleanup deletes checkpoint/log files that are newer than cur (debris of a
// crashed switch) or no longer referenced by the retention window, and
// reports the retained versions.
//
// Deletion is computed from a keep set, not version by version: a
// checkpoint file survives as long as the chain of cur or of any retained
// version still references it. This is what makes retention safe for delta
// chains — a base older than the retention window is kept while any
// surviving delta stands on it, where the old per-version rule would have
// deleted it and stranded the chain.
func cleanup(fs vfs.FS, cur uint64, opts Options) (State, error) {
	names, err := fs.List()
	if err != nil {
		return State{}, err
	}
	type cpKind struct{ full, delta bool }
	cps := map[uint64]cpKind{}
	versions := map[uint64]bool{}
	for _, n := range names {
		if v, isDelta, ok := parseCheckpointName(n); ok {
			k := cps[v]
			if isDelta {
				k.delta = true
			} else {
				k.full = true
			}
			cps[v] = k
			versions[v] = true
		} else if v, ok := parseNumberedShard(n, logPrefix); ok {
			versions[v] = true
		}
	}

	// chainBase walks v's delta chain down to its full base on the file
	// listing. A version with both kinds of file resolves as full: the
	// stray delta is uncommitted debris (Prepare removes the opposite
	// kind before the version can commit).
	chainBase := func(v uint64) (uint64, bool) {
		for w := v; w >= 1; w-- {
			k := cps[w]
			if k.full {
				return w, true
			}
			if !k.delta {
				return 0, false
			}
		}
		return 0, false
	}
	base, ok := chainBase(cur)
	if !ok {
		return State{}, fmt.Errorf("checkpoint: version %d's delta chain has no full base", cur)
	}

	keepFull := map[uint64]bool{}
	keepDelta := map[uint64]bool{}
	keepChain := func(v, vbase uint64) {
		keepFull[vbase] = true
		for w := vbase + 1; w <= v; w++ {
			keepDelta[w] = true
		}
	}
	keepChain(cur, base)

	// A version is retainable only if it is older than cur, inside the
	// window, and still recoverable (complete chain plus log).
	var retained []uint64
	keepLog := map[uint64]bool{cur: true}
	for v := range versions {
		if v >= cur || int(cur-v) > opts.Retain {
			continue
		}
		vbase, ok := chainBase(v)
		if !ok || !vfs.Exists(fs, LogName(v)) {
			continue
		}
		retained = append(retained, v)
		keepChain(v, vbase)
		keepLog[v] = true
	}

	for v := range versions {
		k := cps[v]
		if k.full && !keepFull[v] {
			if err := fs.Remove(CheckpointName(v)); err != nil {
				return State{}, err
			}
		}
		if k.delta && !keepDelta[v] {
			if err := fs.Remove(DeltaName(v)); err != nil {
				return State{}, err
			}
		}
		if keepLog[v] {
			continue
		}
		// A sharded version's log is all its stream files.
		streams, err := wal.ShardFiles(fs, LogName(v))
		if err != nil {
			return State{}, err
		}
		// Only logs of *completed* versions (older than cur) belong in
		// the audit trail; debris of a crashed switch (v > cur) never
		// held committed updates.
		if opts.ArchiveLogs && v < cur {
			for _, n := range streams {
				if err := fs.Rename(n, archivePrefix+strings.TrimPrefix(n, logPrefix)); err != nil {
					return State{}, err
				}
			}
			streams = nil
		}
		for _, n := range streams {
			if err := fs.Remove(n); err != nil {
				return State{}, err
			}
		}
	}
	sort.Slice(retained, func(i, j int) bool { return retained[i] < retained[j] })
	return State{Version: cur, Base: base, Retained: retained}, nil
}

func parseNumbered(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// parseNumberedShard is parseNumbered extended to the stream files of a
// sharded log: prefix<v> or prefix<v>.<shard> with shard >= 1.
func parseNumberedShard(name, prefix string) (uint64, bool) {
	if v, ok := parseNumbered(name, prefix); ok {
		return v, true
	}
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	rest := name[len(prefix):]
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, false
	}
	v, err := strconv.ParseUint(rest[:dot], 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	if shard, err := strconv.Atoi(rest[dot+1:]); err != nil || shard < 1 {
		return 0, false
	}
	return v, true
}

// Switch performs the paper's checkpoint switch from cur to cur.Version+1.
// write streams the new checkpoint's contents. The switch commits when the
// newversion file is durably on disk; a crash at any earlier point leaves
// the old version current, and a crash after leaves the new version
// recoverable. retain is as for Recover.
func Switch(fs vfs.FS, cur State, write func(w io.Writer) error, retain int) (State, error) {
	return SwitchWith(fs, cur, write, Options{Retain: retain})
}

// SwitchWith is Switch with full Options. It composes the split protocol
// steps below; callers that need to interleave other work between the steps
// (the store's non-blocking checkpoint) call them directly.
func SwitchWith(fs vfs.FS, cur State, write func(w io.Writer) error, opts Options) (State, error) {
	start := time.Now()
	next, err := Prepare(fs, cur, write, opts)
	if err != nil {
		return cur, err
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		return cur, err
	}
	if err := lf.Close(); err != nil {
		return cur, err
	}
	if err := CommitNewVersion(fs, next); err != nil {
		return cur, err
	}
	if err := InstallVersion(fs); err != nil {
		return cur, err
	}
	st, err := Finish(fs, next, opts)
	if err == nil {
		ObserveSwitch(opts, start)
	}
	return st, err
}

// Prepare performs the first step of a switch from cur: write and sync the
// next version's checkpoint file, streamed through write. The version files
// are untouched — the old version remains current, and a crash (or Abort)
// leaves only debris that recovery clears. It reports the new version
// number.
func Prepare(fs vfs.FS, cur State, write func(w io.Writer) error, opts Options) (uint64, error) {
	next := cur.Version + 1
	// An aborted earlier switch to next may have left the opposite-kind
	// file behind; clear it before this switch can commit, or recovery
	// would resolve next's chain through stale debris.
	if err := removeIfExists(fs, DeltaName(next)); err != nil {
		return 0, err
	}
	var written int64
	counted := func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := write(cw)
		written = cw.n
		return err
	}
	if err := writeCheckpointFile(fs, CheckpointName(next), counted); err != nil {
		return 0, err
	}
	opts.Obs.Histogram("checkpoint_bytes").Observe(written)
	return next, nil
}

// PrepareDelta is Prepare for a chained incremental switch: it writes and
// syncs the next version's delta file checkpoint<v>.d — whose contents,
// applied to version cur.Version's recovered state, produce the next
// version's — instead of a full image. Every other step of the switch
// (CreateLogFile, CommitNewVersion, InstallVersion, Finish) is identical,
// as is the crash behavior: an uncommitted delta is debris that recovery
// clears. The caller must hold a State whose own chain is intact (any
// State returned by this package satisfies that).
func PrepareDelta(fs vfs.FS, cur State, write func(w io.Writer) error, opts Options) (uint64, error) {
	next := cur.Version + 1
	// Clear opposite-kind debris of an aborted switch, as in Prepare: a
	// stale full image at next would silently become the chain's base.
	if err := removeIfExists(fs, CheckpointName(next)); err != nil {
		return 0, err
	}
	var written int64
	counted := func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := write(cw)
		written = cw.n
		return err
	}
	if err := writeCheckpointFile(fs, DeltaName(next), counted); err != nil {
		return 0, err
	}
	opts.Obs.Histogram("checkpoint_delta_bytes").Observe(written)
	return next, nil
}

func removeIfExists(fs vfs.FS, name string) error {
	if !vfs.Exists(fs, name) {
		return nil
	}
	return fs.Remove(name)
}

// CreateLogFile creates version v's empty log file, syncs it, and returns
// the open handle: the non-blocking checkpoint hands it to the WAL's mirror
// window so the log's tail can be drained into it before the flip. Callers
// with no such need just Close it.
func CreateLogFile(fs vfs.FS, v uint64) (vfs.File, error) {
	f, err := fs.Create(LogName(v))
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// CreateShardLogFiles creates version v's empty stream files — stream 0 is
// LogName(v) itself, so a one-shard call is CreateLogFile — syncs each, and
// returns the open handles in stream order: the sharded non-blocking
// checkpoint hands them to the mirror window via AttachMirrorFiles. On
// error every file it created is closed and removed.
func CreateShardLogFiles(fs vfs.FS, v uint64, shards int) ([]vfs.File, error) {
	files := make([]vfs.File, 0, shards)
	for i := 0; i < shards; i++ {
		f, err := fs.Create(ShardLogName(v, i))
		if err == nil {
			if serr := f.Sync(); serr != nil {
				f.Close()
				err = serr
			}
		}
		if err != nil {
			for j, g := range files {
				g.Close()
				_ = fs.Remove(ShardLogName(v, j))
			}
			_ = fs.Remove(ShardLogName(v, i))
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CommitNewVersion durably writes the newversion file naming v — the commit
// point of the switch. Until it returns successfully the old version is
// still what recovery restores; afterwards it is v. The caller must have
// completed Prepare and CreateLogFile (and made the new log's contents as
// current as it wants them) for version v first.
func CommitNewVersion(fs vfs.FS, v uint64) error {
	return vfs.WriteFile(fs, newVersionFile, []byte(strconv.FormatUint(v, 10)+"\n"))
}

// InstallVersion completes a committed switch: delete version, rename
// newversion over it. Recovery performs these same steps if a crash
// interrupts them.
func InstallVersion(fs vfs.FS) error {
	if vfs.Exists(fs, versionFile) {
		if err := fs.Remove(versionFile); err != nil {
			return err
		}
	}
	return fs.Rename(newVersionFile, versionFile)
}

// Finish tidies after an installed switch to v — deleting or archiving what
// fell out of retention — and reports the resulting state.
func Finish(fs vfs.FS, v uint64, opts Options) (State, error) {
	return cleanup(fs, v, opts)
}

// Abort removes the uncommitted debris of a prepared switch to v (the
// checkpoint and log files a crashed switch would also leave; recovery
// clears the same ones). It must not be called once CommitNewVersion has
// succeeded. Removal is best-effort: anything left behind is cleared by the
// next switch or recovery.
func Abort(fs vfs.FS, v uint64) {
	for _, n := range []string{CheckpointName(v), DeltaName(v)} {
		if vfs.Exists(fs, n) {
			_ = fs.Remove(n)
		}
	}
	if streams, err := wal.ShardFiles(fs, LogName(v)); err == nil {
		for _, n := range streams {
			_ = fs.Remove(n)
		}
	}
}

// ObserveSwitch records one completed switch, begun at start, in opts'
// metrics.
func ObserveSwitch(opts Options, start time.Time) {
	opts.Obs.Counter("checkpoint_switches").Inc()
	opts.Obs.Histogram("checkpoint_switch_ns").ObserveSince(start)
}

// countingWriter counts the bytes streamed through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
