package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/multistore"
	"smalldb/internal/pickle"
)

// e14Root is the per-partition database of E14.
type e14Root struct{ Rows map[string]string }

func newE14Root() any { return &e14Root{Rows: map[string]string{}} }

// e14Put is the E14 update type.
type e14Put struct{ K, V string }

// Verify implements core.Update.
func (u *e14Put) Verify(root any) error {
	if u.K == "" {
		return errors.New("empty key")
	}
	return nil
}

// Apply implements core.Update.
func (u *e14Put) Apply(root any) error {
	root.(*e14Root).Rows[u.K] = u.V
	return nil
}

func init() {
	pickle.Register(&e14Root{})
	core.RegisterUpdate(&e14Put{})
}

// E14 evaluates the §7 extension: one large database vs the same data split
// into partitions over a single shared log (internal/multistore). The
// quantity at stake is the checkpoint: a monolithic store pickles
// everything and blocks all updates for the duration, while a partitioned
// set pickles one partition at a time, blocking only that partition.
func E14(env Env) ([]*Table, error) {
	env = env.Defaults()
	const parts = 8
	perPart := env.iters(1000, 100)
	newFlat := newE14Root

	// --- monolithic: all rows in one store ---
	_, dMono := modeledFS(env.Seed, 0)
	mono, err := core.Open(core.Config{FS: dMono, NewRoot: newFlat})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(env.Seed))
	for i := 0; i < parts*perPart; i++ {
		if err := mono.Apply(&e14Put{K: fmt.Sprintf("k%d", i), V: Value(rng, 64)}); err != nil {
			return nil, err
		}
	}
	pre := mono.Stats()
	dMono.ResetStats()
	if err := mono.Checkpoint(); err != nil {
		return nil, err
	}
	post := mono.Stats()
	monoBlocked := slow(post.CheckpointPickleTime-pre.CheckpointPickleTime) + dMono.Stats().ModeledIO
	mono.Close()

	// --- partitioned: same rows over 8 partitions, one shared log ---
	_, dPart := modeledFS(env.Seed+1, 0)
	cfg := multistore.Config{FS: dPart, Partitions: map[string]func() any{}}
	for p := 0; p < parts; p++ {
		cfg.Partitions[fmt.Sprintf("p%d", p)] = newFlat
	}
	set, err := multistore.Open(cfg)
	if err != nil {
		return nil, err
	}
	dPart.ResetStats()
	for i := 0; i < parts*perPart; i++ {
		part := fmt.Sprintf("p%d", i%parts)
		if err := set.Apply(part, &e14Put{K: fmt.Sprintf("k%d", i), V: Value(rng, 64)}); err != nil {
			return nil, err
		}
	}
	updSyncs := dPart.Stats().Syncs

	// Checkpoint one partition: the blocked scope is 1/8 of the data,
	// and only that partition's updates stall.
	var worstPart time.Duration
	for p := 0; p < parts; p++ {
		dPart.ResetStats()
		t0 := time.Now()
		if err := set.Checkpoint(fmt.Sprintf("p%d", p)); err != nil {
			return nil, err
		}
		// Wall time on the in-memory FS is pure CPU; the disk model
		// accounts its own time separately.
		blocked := slow(time.Since(t0)) + dPart.Stats().ModeledIO
		if blocked > worstPart {
			worstPart = blocked
		}
	}
	segCount, segBytes, err := set.Segments()
	if err != nil {
		return nil, err
	}
	set.Close()

	return []*Table{{
		ID:     "E14",
		Title:  fmt.Sprintf("§7 extension: one database vs %d partitions over a shared log (%d rows)", parts, parts*perPart),
		Header: []string{"quantity", "monolithic store", "partitioned set"},
		Rows: [][]string{
			{"update-blocked time per checkpoint (1987)", fmtDur(monoBlocked), fmtDur(worstPart) + " (worst partition; others run)"},
			{"blocked scope", "every update", "one partition"},
			{"syncs per update", "1.00", fmt.Sprintf("%.2f", float64(updSyncs)/float64(parts*perPart))},
			{"shared-log segments after all checkpoints", "-", fmt.Sprintf("%d (%s)", segCount, fmtBytes(segBytes))},
		},
		Notes: []string{
			"\"larger databases could be handled by considering them as multiple separate databases for the",
			"purpose of writing checkpoints ... a single log file with more complicated rules for flushing the log\" (§7)",
			"fully covered segments retire once every partition's checkpoint passes them",
		},
	}}, nil
}
