// Command smalldb-bench regenerates every measurement reported in the
// paper's evaluation (§5 performance, §6 implementation size), printing
// paper-vs-measured tables.
//
// Usage:
//
//	smalldb-bench                 # run every experiment
//	smalldb-bench -run e2,e4,e9   # run a subset
//	smalldb-bench -quick          # small iteration counts (seconds, not minutes)
//	smalldb-bench -list           # list experiment ids
//	smalldb-bench -json out.json  # also run the metrics workload and dump
//	                              # per-phase percentile latencies as JSON
//
// The -json snapshot is the bench-trajectory record: an instrumented store
// runs a fixed update/enquiry workload and the resulting obs metrics —
// op counts plus p50/p90/p99/max for the paper's verify/pickle/commit/apply
// phases — are written to the named file, so successive PRs can compare
// BENCH_*.json files rather than eyeballing means.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smalldb/internal/bench"
	"smalldb/internal/disk"
	"smalldb/internal/nameserver"
	"smalldb/internal/netsim"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "shrink iteration counts")
		entries  = flag.Int("entries", 0, "database entries (default ≈1 MB worth)")
		seed     = flag.Int64("seed", 1987, "random seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.String("json", "", "write the metrics workload's snapshot to this file")
		jsonOps  = flag.Int("json-ops", 0, "updates in the metrics workload (default 2000, 200 with -quick)")
		jsonOnly = flag.Bool("json-only", false, "run only the metrics workload, skipping the experiments")
	)
	flag.Parse()

	if *list {
		for _, ex := range bench.All() {
			fmt.Printf("  %-4s %s\n", ex.ID, ex.Title)
		}
		return
	}

	if !*jsonOnly {
		env := bench.Env{Out: os.Stdout, Quick: *quick, DBEntries: *entries, Seed: *seed}
		var ids []string
		if *run != "" {
			for _, id := range strings.Split(*run, ",") {
				ids = append(ids, strings.TrimSpace(id))
			}
		}
		prof := disk.MicroVAX
		fmt.Println("smalldb experiment harness — reproducing Birrell/Jones/Wobber, SOSP 1987")
		fmt.Printf("disk model: %s (%v/write op, %dKB/s streaming, CPU ×%.0f)\n",
			prof.Name, prof.PerOpWrite, prof.WriteBytesPerSec>>10, prof.CPUSlowdown)
		if err := bench.Run(env, ids...); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		ops := *jsonOps
		if ops == 0 {
			ops = 2000
			if *quick {
				ops = 200
			}
		}
		if err := writeMetricsJSON(*jsonOut, ops, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics snapshot (%d updates) written to %s\n", ops, *jsonOut)
	}
}

// phaseJSON is one phase's latency summary in the -json snapshot.
type phaseJSON struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

func phase(s obs.Snapshot) phaseJSON {
	return phaseJSON{Count: s.Count, MeanNS: s.Mean, P50NS: s.P50, P90NS: s.P90, P99NS: s.P99, MaxNS: s.Max}
}

// microJSON is one micro-benchmark's result in the -json snapshot.
type microJSON struct {
	NSPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func micro(r testing.BenchmarkResult) microJSON {
	return microJSON{NSPerOp: r.NsPerOp(), BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// benchUpdate mirrors the shape of a committed update record: a small
// struct carried behind an interface, the exact thing the store pickles on
// every commit and unpickles on every replayed log entry.
type benchUpdate struct {
	Path  []string
	Value string
}

type benchRecord struct {
	U any
}

func init() {
	pickle.RegisterName("smalldb-bench.update", &benchUpdate{})
}

// microBenches measures the hot-path primitives directly — pickle
// marshal/unmarshal of an update record, a checkpoint-style map encode,
// and a log append — so the snapshot records codec and log costs
// independently of the workload mix.
func microBenches() (map[string]microJSON, error) {
	rec := &benchRecord{U: &benchUpdate{Path: []string{"zone3", "host17", "attr1234"}, Value: "value-1234"}}
	data, err := pickle.Marshal(rec)
	if err != nil {
		return nil, err
	}
	bigMap := make(map[string]string, 1000)
	for i := 0; i < 1000; i++ {
		bigMap[fmt.Sprintf("key-%04d", i)] = strings.Repeat("v", 32)
	}

	out := map[string]microJSON{}
	out["pickle_marshal_record"] = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pickle.Marshal(rec); err != nil {
				b.Fatal(err)
			}
		}
	}))
	out["pickle_unmarshal_record"] = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var r benchRecord
			if err := pickle.Unmarshal(data, &r); err != nil {
				b.Fatal(err)
			}
		}
	}))
	out["pickle_marshal_map1000"] = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pickle.Marshal(bigMap); err != nil {
				b.Fatal(err)
			}
		}
	}))

	fs := vfs.NewMem(1)
	l, err := wal.Create(fs, "microbench.log", 1, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	payload := make([]byte, 256)
	out["wal_append_256"] = micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return out, nil
}

// latJSON summarizes client-observed latencies of one workload phase.
type latJSON struct {
	Count int   `json:"count"`
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

func summarize(ds []time.Duration) latJSON {
	if len(ds) == 0 {
		return latJSON{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pick := func(q float64) int64 {
		// Nearest-rank, rounding up: with few samples the quantile must
		// not fall below the observations it claims to cover.
		i := int(q*float64(len(ds))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ds[i].Nanoseconds()
	}
	return latJSON{
		Count: len(ds),
		P50NS: pick(0.50),
		P99NS: pick(0.99),
		MaxNS: ds[len(ds)-1].Nanoseconds(),
	}
}

// checkpointStallMode measures update latency around one checkpoint of a
// large root dragged through a throughput-paced disk: steady-state latency
// with no checkpoint in flight, then the latency of updates issued while
// the checkpoint runs. With the mirror-window protocol the two should be
// indistinguishable; with BlockingCheckpoint the in-window updates stall
// for the whole disk write.
func checkpointStallMode(blocking bool, seed int64, rootEntries, valBytes int, bps int64) (map[string]any, error) {
	reg := obs.NewRegistry()
	slow := vfs.NewSlow(vfs.NewMem(seed))
	// FullCheckpoints: the stall being measured is a whole large root
	// dragged through the slow disk; an incremental delta of the few
	// steady-state updates would finish before the spin below ever saw it
	// in flight.
	ns, err := nameserver.Open(nameserver.Config{FS: slow, Obs: reg, Retain: 1, BlockingCheckpoint: blocking, FullCheckpoints: true})
	if err != nil {
		return nil, err
	}
	defer ns.Close()

	// Build the root and compact it at full disk speed.
	val := strings.Repeat("x", valBytes)
	for i := 0; i < rootEntries; i++ {
		if err := ns.Set(fmt.Sprintf("stall/dir%d/e%d", i%61, i), val); err != nil {
			return nil, err
		}
	}
	if err := ns.Checkpoint(); err != nil {
		return nil, err
	}

	slow.SetDelay(0, bps)
	defer slow.SetDelay(0, 0)

	steady := make([]time.Duration, 0, 256)
	for i := 0; i < 200; i++ {
		t0 := time.Now()
		if err := ns.Set(fmt.Sprintf("steady/e%d", i), "v"); err != nil {
			return nil, err
		}
		steady = append(steady, time.Since(t0))
	}

	cpDone := make(chan error, 1)
	cpStart := time.Now()
	go func() { cpDone <- ns.Checkpoint() }()
	// Don't start measuring until the checkpoint is actually in flight:
	// updates squeezed in before its goroutine is scheduled would dilute
	// the blocking mode's percentiles with unblocked samples.
	inflight := reg.Gauge("core_checkpoint_inflight")
	var cpErr error
	finished := false
	for inflight.Value() == 0 && !finished {
		select {
		case cpErr = <-cpDone:
			finished = true // too quick to overlap; "during" stays empty
		default:
			runtime.Gosched()
		}
	}
	var during []time.Duration
	for i := 0; !finished; i++ {
		select {
		case cpErr = <-cpDone:
			finished = true
		default:
			t0 := time.Now()
			if err := ns.Set(fmt.Sprintf("during/e%d", i), "v"); err != nil {
				return nil, err
			}
			during = append(during, time.Since(t0))
		}
	}
	if cpErr != nil {
		return nil, cpErr
	}
	cpElapsed := time.Since(cpStart)
	st := ns.Stats()
	return map[string]any{
		"blocking":         blocking,
		"checkpoint_ns":    cpElapsed.Nanoseconds(),
		"steady":           summarize(steady),
		"during":           summarize(during),
		"lock_stall_ns":    st.CheckpointStallTime.Nanoseconds(),
		"mirrored_entries": reg.Counter("checkpoint_mirrored_entries").Value(),
	}, nil
}

// checkpointStallJSON runs checkpointStallMode for the mirror-window
// protocol and the BlockingCheckpoint ablation on the same root and disk.
func checkpointStallJSON(seed int64, quick bool) (map[string]any, error) {
	rootEntries, valBytes, bps := 4096, 4096, int64(64<<20) // 16 MiB root, ~250ms checkpoint
	if quick {
		rootEntries = 1024 // 4 MiB root, ~60ms checkpoint
	}
	nonblocking, err := checkpointStallMode(false, seed, rootEntries, valBytes, bps)
	if err != nil {
		return nil, err
	}
	blocking, err := checkpointStallMode(true, seed, rootEntries, valBytes, bps)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"root_bytes":          int64(rootEntries) * int64(valBytes),
		"disk_bytes_per_sec":  bps,
		"nonblocking":         nonblocking,
		"blocking_checkpoint": blocking,
	}, nil
}

// cpScaleMode holds one (root size, checkpoint mode) measurement: the I/O
// of a checkpoint taken after a fixed amount of churn, and the restart that
// follows it. The restart decomposes into the base-image read — which grows
// with root size in either mode, because the whole root must reach memory —
// and the churn-proportional remainder (delta apply plus log replay). The
// scaling claim is about the checkpoint bytes and that remainder.
type cpScaleMode struct {
	CheckpointWriteBytes int64 `json:"checkpoint_write_bytes"`
	CheckpointFileBytes  int64 `json:"checkpoint_file_bytes"`
	ChainLength          int   `json:"chain_length"`
	RestartNS            int64 `json:"restart_ns"`
	RestartReadBytes     int64 `json:"restart_read_bytes"`
	RestartBaseNS        int64 `json:"restart_base_ns"`
	RestartChurnNS       int64 `json:"restart_churn_ns"`
	RestartDeltaBytes    int64 `json:"restart_delta_bytes"`
	DeltasApplied        int   `json:"deltas_applied"`
}

// checkpointScalingMode builds a root of entries values, takes a full base
// checkpoint, overwrites churn entries spread across the key space, and
// measures the next checkpoint (a delta by default, a full image under the
// FullCheckpoints ablation) plus the restart from the resulting disk state,
// all through a counting fs so the bytes are what the disk saw.
func checkpointScalingMode(seed int64, entries, churn, valBytes int, full bool) (cpScaleMode, error) {
	cfs := vfs.NewCounting(vfs.NewMem(seed))
	open := func() (*nameserver.Server, error) {
		return nameserver.Open(nameserver.Config{FS: cfs, Retain: 1, FullCheckpoints: full})
	}
	name := func(i int) string { return fmt.Sprintf("cpscale/dir%d/e%d", i%127, i) }
	ns, err := open()
	if err != nil {
		return cpScaleMode{}, err
	}
	val := strings.Repeat("x", valBytes)
	fail := func(err error) (cpScaleMode, error) { ns.Close(); return cpScaleMode{}, err }
	for i := 0; i < entries; i++ {
		if err := ns.Set(name(i), val); err != nil {
			return fail(err)
		}
	}
	if err := ns.Checkpoint(); err != nil { // the full base image
		return fail(err)
	}
	stride := entries / churn
	for i := 0; i < churn; i++ {
		if err := ns.Set(name(i*stride), val+"y"); err != nil {
			return fail(err)
		}
	}
	cfs.Reset()
	if err := ns.Checkpoint(); err != nil { // the measured checkpoint
		return fail(err)
	}
	m := cpScaleMode{CheckpointWriteBytes: cfs.WriteBytes()}
	st := ns.Stats()
	m.CheckpointFileBytes = st.LastCheckpointBytes
	m.ChainLength = st.ChainLength
	if err := ns.Close(); err != nil {
		return cpScaleMode{}, err
	}

	cfs.Reset()
	t0 := time.Now()
	ns2, err := open()
	if err != nil {
		return cpScaleMode{}, err
	}
	m.RestartNS = time.Since(t0).Nanoseconds()
	m.RestartReadBytes = cfs.ReadBytes()
	rst := ns2.Stats()
	m.RestartBaseNS = rst.RestartCheckpointTime.Nanoseconds()
	m.RestartChurnNS = (rst.RestartDeltaTime + rst.RestartReplayTime).Nanoseconds()
	m.RestartDeltaBytes = rst.RestartDeltaBytes
	m.DeltasApplied = rst.RestartDeltasApplied
	return m, ns2.Close()
}

// checkpointScalingJSON sweeps root sizes S, 2S, 4S at a fixed absolute
// churn (10% of S) in both checkpoint modes. With incremental checkpoints
// the delta's bytes and the restart's churn component should track the
// churn — near-flat across the sweep — while the FullCheckpoints ablation's
// bytes track the root and grow ~4×.
func checkpointScalingJSON(seed int64, quick bool) (map[string]any, error) {
	base, valBytes := 8192, 256
	if quick {
		base = 2048
	}
	churn := base / 10
	sizes := []int{base, 2 * base, 4 * base}
	var points []map[string]any
	var deltas, fulls []cpScaleMode
	for _, n := range sizes {
		d, err := checkpointScalingMode(seed, n, churn, valBytes, false)
		if err != nil {
			return nil, err
		}
		f, err := checkpointScalingMode(seed, n, churn, valBytes, true)
		if err != nil {
			return nil, err
		}
		deltas, fulls = append(deltas, d), append(fulls, f)
		points = append(points, map[string]any{"entries": n, "delta": d, "full": f})
	}
	ratio := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return map[string]any{
		"churn_entries": churn,
		"value_bytes":   valBytes,
		"sizes":         sizes,
		"points":        points,
		// The CI gate's summary numbers: delta-vs-full bytes at the size
		// where churn is 10% of the root, and the 4x growth factors.
		"delta_vs_full_bytes_at_10pct":  ratio(deltas[0].CheckpointWriteBytes, fulls[0].CheckpointWriteBytes),
		"delta_bytes_growth_4x":         ratio(deltas[2].CheckpointWriteBytes, deltas[0].CheckpointWriteBytes),
		"full_bytes_growth_4x":          ratio(fulls[2].CheckpointWriteBytes, fulls[0].CheckpointWriteBytes),
		"restart_delta_bytes_growth_4x": ratio(deltas[2].RestartDeltaBytes, deltas[0].RestartDeltaBytes),
		"restart_churn_ns_growth_4x":    ratio(deltas[2].RestartChurnNS, deltas[0].RestartChurnNS),
	}, nil
}

// tracingOverheadMode measures client-observed update latency on a
// throughput-paced disk under one tracing configuration: tracer absent,
// tracer set to Nop (the allocation-free disabled path), or a live span
// collector with every update carrying a fresh root trace (what `nsctl
// trace` and /debug/trace cost when they are used on every request).
func tracingOverheadMode(seed int64, ops int, bps int64, tracer obs.Tracer, traced bool) (latJSON, error) {
	slow := vfs.NewSlow(vfs.NewMem(seed))
	ns, err := nameserver.Open(nameserver.Config{FS: slow, Tracer: tracer})
	if err != nil {
		return latJSON{}, err
	}
	defer ns.Close()
	slow.SetDelay(0, bps)
	defer slow.SetDelay(0, 0)
	val := strings.Repeat("x", 1024)
	lat := make([]time.Duration, 0, ops)
	for i := 0; i < ops; i++ {
		name := fmt.Sprintf("trace/dir%d/e%d", i%31, i)
		t0 := time.Now()
		if traced {
			err = ns.SetTraced(name, val, obs.NewRootContext())
		} else {
			err = ns.Set(name, val)
		}
		if err != nil {
			return latJSON{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	return summarize(lat), nil
}

// tracingOverheadJSON compares commit latency with tracing disabled, with
// the Nop tracer, and with full per-update span collection into a
// TraceBuffer, reporting the full-collection p99 overhead over disabled.
func tracingOverheadJSON(seed int64, quick bool) (map[string]any, error) {
	ops, bps := 2000, int64(16<<20)
	if quick {
		ops = 400
	}
	disabled, err := tracingOverheadMode(seed, ops, bps, nil, false)
	if err != nil {
		return nil, err
	}
	nop, err := tracingOverheadMode(seed, ops, bps, obs.Nop, false)
	if err != nil {
		return nil, err
	}
	full, err := tracingOverheadMode(seed, ops, bps, obs.NewTraceBuffer(4096), true)
	if err != nil {
		return nil, err
	}
	var pct float64
	if disabled.P99NS > 0 {
		pct = 100 * float64(full.P99NS-disabled.P99NS) / float64(disabled.P99NS)
	}
	return map[string]any{
		"updates":            ops,
		"disk_bytes_per_sec": bps,
		"disabled":           disabled,
		"nop":                nop,
		"full":               full,
		"p99_overhead_pct":   pct,
	}, nil
}

// networkResilienceJSON runs a 2-replica workload through a hostile netsim
// link — 10% message drop, 10% flaky dials, up to 20ms added delay — with
// the client driving the NS service on replica "a" via CallRetry. Every
// update must succeed despite the weather (retries absorb all faults), the
// replicas must converge once anti-entropy runs, and the snapshot records
// how hard the resilience machinery worked (rpc_retries, rpc_reconnects,
// netsim drop counts).
func networkResilienceJSON(seed int64, quick bool) (map[string]any, error) {
	updates := 1000
	if quick {
		updates = 250
	}
	profile := netsim.Profile{
		DropProb:     0.10,
		DelayProb:    0.20,
		MaxDelay:     20 * time.Millisecond,
		DialFailProb: 0.10,
	}
	reg := obs.NewRegistry()
	nw := netsim.New(seed, netsim.Options{Profile: profile, Obs: reg})
	defer nw.Close()

	peerPolicy := rpc.RetryPolicy{Budget: 5 * time.Second, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, PerTry: time.Second}
	open := func(name string) (*replica.Node, *rpc.Server, *netsim.Listener, error) {
		node, err := replica.Open(replica.Config{Name: name, FS: vfs.NewMem(seed), HistoryCap: updates + 10, PushPolicy: peerPolicy, SyncPolicy: peerPolicy})
		if err != nil {
			return nil, nil, nil, err
		}
		srv := rpc.NewServer()
		if err := srv.Register("Replica", replica.NewService(node)); err != nil {
			node.Close()
			return nil, nil, nil, err
		}
		if name == "a" {
			if err := srv.Register("NS", replica.NewNSService(node)); err != nil {
				node.Close()
				return nil, nil, nil, err
			}
		}
		l, err := nw.Listen(name)
		if err != nil {
			srv.Close()
			node.Close()
			return nil, nil, nil, err
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}()
		return node, srv, l, nil
	}
	a, aSrv, _, err := open("a")
	if err != nil {
		return nil, err
	}
	defer a.Close()
	defer aSrv.Close()
	b, bSrv, _, err := open("b")
	if err != nil {
		return nil, err
	}
	defer b.Close()
	defer bSrv.Close()
	ab := rpc.NewClientDialer(nw.Dialer("a", "b"))
	ab.Instrument(reg)
	a.AddPeer("b", ab)
	ba := rpc.NewClientDialer(nw.Dialer("b", "a"))
	ba.Instrument(reg)

	// The client reaches replica "a" over the same hostile link.
	cli := rpc.NewClientDialer(nw.Dialer("client", "a"))
	cli.Instrument(reg)
	defer cli.Close()
	policy := rpc.RetryPolicy{Budget: 10 * time.Second, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond, PerTry: 2 * time.Second}

	clientErrors := 0
	start := time.Now()
	for i := 0; i < updates; i++ {
		args := &nameserver.SetArgs{Name: fmt.Sprintf("net/bench/e%d", i), Value: fmt.Sprintf("v%d", i)}
		if err := cli.CallRetry("NS.Set", args, nil, policy); err != nil {
			clientErrors++
		}
	}
	elapsed := time.Since(start)

	// Clear weather for the convergence check; anti-entropy owes the rest.
	nw.SetProfile(netsim.Profile{})
	converged := false
	for round := 0; round < 20; round++ {
		if err := b.SyncWith(ba); err != nil {
			continue
		}
		va, erra := a.Vector()
		vb, errb := b.Vector()
		if erra == nil && errb == nil && va["a"] == vb["a"] && va["a"] == uint64(updates) {
			converged = true
			break
		}
	}

	snap := reg.Snapshot()
	stat := func(name string) any {
		if v, ok := snap[name]; ok {
			return v
		}
		return uint64(0)
	}
	return map[string]any{
		"updates":        updates,
		"elapsed_ns":     elapsed.Nanoseconds(),
		"drop_prob":      profile.DropProb,
		"max_delay_ns":   profile.MaxDelay.Nanoseconds(),
		"client_errors":  clientErrors,
		"converged":      converged,
		"rpc_retries":    stat("rpc_retries"),
		"rpc_reconnects": stat("rpc_reconnects"),
		"rpc_timeouts":   stat("rpc_timeouts"),
		"netsim_drops":   stat("netsim_drops"),
		"netsim_delays":  stat("netsim_delays"),
		"netsim_dials":   stat("netsim_dials"),
	}, nil
}

// readScalingPoint is one goroutine count's throughput in the read
// scaling section.
type readScalingPoint struct {
	Goroutines   int     `json:"goroutines"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// readScalingMode runs the 95/5 enquiry/update mix at each goroutine
// count against one store configuration and reports per-count read
// throughput plus how many enquiries ever fell back to the shared lock.
func readScalingMode(seed int64, locked bool, counts []int, dur time.Duration) (map[string]any, error) {
	reg := obs.NewRegistry()
	ns, err := nameserver.Open(nameserver.Config{FS: vfs.NewMem(seed), Obs: reg, LockedEnquiries: locked})
	if err != nil {
		return nil, err
	}
	defer ns.Close()

	// A modest preloaded working set: lookups hit real paths.
	const keys = 512
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("scale/dir%d/e%d", i%31, i)
		if err := ns.Set(names[i], fmt.Sprintf("v%d", i)); err != nil {
			return nil, err
		}
	}

	var points []readScalingPoint
	for _, g := range counts {
		var reads, writes atomic.Uint64
		var stop atomic.Bool
		var wg sync.WaitGroup
		errs := make(chan error, g)
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g*1000+w)))
				for i := 0; !stop.Load(); i++ {
					if rng.Intn(100) < 5 {
						if err := ns.Set(names[rng.Intn(keys)], "w"); err != nil {
							errs <- err
							return
						}
						writes.Add(1)
					} else {
						if _, err := ns.Lookup(names[rng.Intn(keys)]); err != nil {
							errs <- err
							return
						}
						reads.Add(1)
					}
					if i%64 == 0 {
						// Periodic yield keeps the mix fair on small
						// GOMAXPROCS without distorting per-op cost.
						runtime.Gosched()
					}
				}
			}(w)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, err
		}
		secs := dur.Seconds()
		points = append(points, readScalingPoint{
			Goroutines:   g,
			ReadsPerSec:  float64(reads.Load()) / secs,
			WritesPerSec: float64(writes.Load()) / secs,
		})
	}

	var scaling float64
	if points[0].ReadsPerSec > 0 {
		scaling = points[len(points)-1].ReadsPerSec / points[0].ReadsPerSec
	}
	return map[string]any{
		"locked_enquiries": locked,
		"points":           points,
		"scaling_maxg":     scaling,
		"locked_reads":     reg.Counter("core_enquiries_locked").Value(),
	}, nil
}

// readScalingJSON measures enquiry throughput scaling across goroutine
// counts for the lock-free versioned read path and the locked-enquiries
// ablation. The CI gate on the versioned numbers is core-count-aware:
// single-core runners cannot show parallel speedup, so num_cpu and
// gomaxprocs are recorded alongside.
func readScalingJSON(seed int64, quick bool) (map[string]any, error) {
	counts := []int{1, 4, 16, 32}
	dur := 300 * time.Millisecond
	if quick {
		dur = 150 * time.Millisecond
	}
	versioned, err := readScalingMode(seed, false, counts, dur)
	if err != nil {
		return nil, err
	}
	locked, err := readScalingMode(seed, true, counts, dur)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"goroutines":       counts,
		"duration_ns":      dur.Nanoseconds(),
		"read_fraction":    0.95,
		"num_cpu":          runtime.NumCPU(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"versioned":        versioned,
		"locked_enquiries": locked,
	}, nil
}

// writeScalingPoint is one goroutine count's update throughput in the
// write scaling section.
type writeScalingPoint struct {
	Goroutines   int     `json:"goroutines"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// writeScalingMode runs an all-update workload at each writer-goroutine
// count against one log configuration, on a real OS directory: the cost
// being measured is the durability sync, and the in-memory fs would hide
// exactly that. With LogShards > 1 concurrent committers land on parallel
// streams and share epoch seals; the LogShards=1 ablation serializes every
// commit behind one file's sync.
func writeScalingMode(seed int64, shards int, counts []int, dur time.Duration) (map[string]any, error) {
	dir, err := os.MkdirTemp("", "smalldb-bench-write-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fs, err := vfs.NewOS(dir)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ns, err := nameserver.Open(nameserver.Config{FS: fs, Obs: reg, Retain: 1, LogShards: shards})
	if err != nil {
		return nil, err
	}
	defer ns.Close()

	// A bounded key set: writers overwrite rather than grow the root, so
	// the in-memory apply cost stays flat across the run.
	const keys = 512
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("wscale/dir%d/e%d", i%31, i)
	}

	var points []writeScalingPoint
	for _, g := range counts {
		var writes atomic.Uint64
		var stop atomic.Bool
		var wg sync.WaitGroup
		errs := make(chan error, g)
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g*1000+w)))
				for !stop.Load() {
					if err := ns.Set(names[rng.Intn(keys)], "w"); err != nil {
						errs <- err
						return
					}
					writes.Add(1)
				}
			}(w)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, err
		}
		points = append(points, writeScalingPoint{
			Goroutines:   g,
			WritesPerSec: float64(writes.Load()) / dur.Seconds(),
		})
	}

	var scaling float64
	if points[0].WritesPerSec > 0 {
		scaling = points[len(points)-1].WritesPerSec / points[0].WritesPerSec
	}
	return map[string]any{
		"log_shards":   shards,
		"points":       points,
		"scaling_maxg": scaling,
		"epochs":       reg.Counter("wal_epochs").Value(),
	}, nil
}

// writeScalingJSON measures update throughput scaling across writer counts
// for the sharded parallel WAL and the LogShards=1 ablation, on a real file
// system. The CI gate comparing the two is core-count-aware: single-core
// runners cannot overlap stream syncs, so num_cpu and gomaxprocs are
// recorded alongside the points.
func writeScalingJSON(seed int64, quick bool) (map[string]any, error) {
	counts := []int{1, 4, 16, 32}
	shards := 8
	dur := 400 * time.Millisecond
	if quick {
		dur = 200 * time.Millisecond
	}
	sharded, err := writeScalingMode(seed, shards, counts, dur)
	if err != nil {
		return nil, err
	}
	single, err := writeScalingMode(seed, 1, counts, dur)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"goroutines":  counts,
		"duration_ns": dur.Nanoseconds(),
		"num_cpu":     runtime.NumCPU(),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"sharded":     sharded,
		"single":      single,
	}, nil
}

// quorumGroupMode measures quorum-commit latency on an N-node replica
// group at write quorum w over a clean netsim network: one primary fans
// every update out to the members and acknowledges once w of them
// (itself included) have it durably.
func quorumGroupMode(seed int64, n, w, updates int) (map[string]any, error) {
	nw := netsim.New(seed, netsim.Options{})
	defer nw.Close()

	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	policy := rpc.RetryPolicy{Budget: 5 * time.Second, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, PerTry: time.Second}
	gcfg := replica.GroupConfig{
		Self:          name(0),
		W:             w,
		QuorumTimeout: 10 * time.Second,
		// Healthy members never need the repair loop; a fast tick would
		// only preempt the measured path on small machines.
		AntiEntropyEvery: 50 * time.Millisecond,
		PushPolicy:       policy,
		SyncPolicy:       policy,
	}
	for i := 0; i < n; i++ {
		gcfg.Members = append(gcfg.Members, replica.Member{Name: name(i), Addr: "netsim"})
	}

	var nodes []*replica.Node
	var servers []*rpc.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, node := range nodes {
			node.Close()
		}
	}()
	for i := 0; i < n; i++ {
		node, err := replica.Open(replica.Config{Name: name(i), FS: vfs.NewMem(seed + int64(i)), HistoryCap: updates + 10})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
		if i == 0 {
			continue
		}
		srv := rpc.NewServer()
		if err := srv.Register("Replica", replica.NewService(node)); err != nil {
			return nil, err
		}
		servers = append(servers, srv)
		l, err := nw.Listen(name(i))
		if err != nil {
			return nil, err
		}
		go func(srv *rpc.Server, l *netsim.Listener) {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go srv.ServeConn(conn)
			}
		}(srv, l)
	}

	group, err := replica.NewGroup(nodes[0], gcfg)
	if err != nil {
		return nil, err
	}
	defer group.Close()
	for i := 1; i < n; i++ {
		if err := group.Connect(name(i), rpc.NewClientDialer(nw.Dialer(name(0), name(i)))); err != nil {
			return nil, err
		}
	}

	// Warmup outside the measurement: the first push to each member pays
	// the dial, and the percentiles are about steady state.
	for i := 0; i < 25; i++ {
		if err := group.Set(fmt.Sprintf("quorum/warm/e%d", i), "w"); err != nil {
			return nil, fmt.Errorf("quorum warmup %d (W=%d): %w", i, w, err)
		}
	}

	lat := make([]time.Duration, 0, updates)
	start := time.Now()
	for i := 0; i < updates; i++ {
		t0 := time.Now()
		if err := group.Set(fmt.Sprintf("quorum/bench/e%d", i), fmt.Sprintf("v%d", i)); err != nil {
			return nil, fmt.Errorf("quorum set %d (W=%d): %w", i, w, err)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	sum := summarize(lat)
	return map[string]any{
		"nodes":          n,
		"w":              group.W(),
		"updates":        updates,
		"latency":        sum,
		"writes_per_sec": float64(updates) / elapsed.Seconds(),
	}, nil
}

// pairPushMode is the 2-node ablation: the pre-group replication path,
// where the primary's Set returns after the local commit plus the
// synchronous best-effort push to its single peer.
func pairPushMode(seed int64, updates int) (map[string]any, error) {
	nw := netsim.New(seed, netsim.Options{})
	defer nw.Close()
	policy := rpc.RetryPolicy{Budget: 5 * time.Second, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, PerTry: time.Second}
	a, err := replica.Open(replica.Config{Name: "a", FS: vfs.NewMem(seed), HistoryCap: updates + 10, PushPolicy: policy, SyncPolicy: policy})
	if err != nil {
		return nil, err
	}
	defer a.Close()
	b, err := replica.Open(replica.Config{Name: "b", FS: vfs.NewMem(seed + 1), HistoryCap: updates + 10})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	srv := rpc.NewServer()
	defer srv.Close()
	if err := srv.Register("Replica", replica.NewService(b)); err != nil {
		return nil, err
	}
	l, err := nw.Listen("b")
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	a.AddPeer("b", rpc.NewClientDialer(nw.Dialer("a", "b")))

	for i := 0; i < 25; i++ {
		if err := a.Set(fmt.Sprintf("quorum/warm/e%d", i), "w"); err != nil {
			return nil, err
		}
	}

	lat := make([]time.Duration, 0, updates)
	start := time.Now()
	for i := 0; i < updates; i++ {
		t0 := time.Now()
		if err := a.Set(fmt.Sprintf("quorum/bench/e%d", i), fmt.Sprintf("v%d", i)); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	return map[string]any{
		"nodes":          2,
		"updates":        updates,
		"latency":        summarize(lat),
		"writes_per_sec": float64(updates) / elapsed.Seconds(),
	}, nil
}

// quorumCommitJSON sweeps the write quorum on a 5-node group — W=1 (ack on
// local commit), W=majority, W=N (every member durable before the ack) —
// against the 2-node push-path ablation, all over a clean network so the
// numbers isolate the quorum protocol's own cost. The CI gate reads
// majority_p99_ns vs pair_p99_ns.
func quorumCommitJSON(seed int64, quick bool) (map[string]any, error) {
	updates, n, reps := 500, 5, 3
	if quick {
		updates = 150
	}
	// Median of reps by p99, symmetrically for every mode: with a few
	// hundred samples a single scheduler hiccup owns the p99 in either
	// direction, and the middle repetition is the stable estimate of the
	// protocol's own cost.
	p99of := func(m map[string]any) int64 { return m["latency"].(latJSON).P99NS }
	best := func(run func(rep int) (map[string]any, error)) (map[string]any, error) {
		outs := make([]map[string]any, 0, reps)
		for rep := 0; rep < reps; rep++ {
			m, err := run(rep)
			if err != nil {
				return nil, err
			}
			outs = append(outs, m)
		}
		sort.Slice(outs, func(i, j int) bool { return p99of(outs[i]) < p99of(outs[j]) })
		return outs[len(outs)/2], nil
	}
	w1, err := best(func(rep int) (map[string]any, error) {
		return quorumGroupMode(seed+int64(rep), n, 1, updates)
	})
	if err != nil {
		return nil, err
	}
	majority, err := best(func(rep int) (map[string]any, error) {
		return quorumGroupMode(seed+int64(rep), n, replica.Majority(n), updates)
	})
	if err != nil {
		return nil, err
	}
	all, err := best(func(rep int) (map[string]any, error) {
		return quorumGroupMode(seed+int64(rep), n, n, updates)
	})
	if err != nil {
		return nil, err
	}
	pair, err := best(func(rep int) (map[string]any, error) {
		return pairPushMode(seed+int64(rep), updates)
	})
	if err != nil {
		return nil, err
	}
	majP99 := majority["latency"].(latJSON).P99NS
	pairP99 := pair["latency"].(latJSON).P99NS
	var ratio float64
	if pairP99 > 0 {
		ratio = float64(majP99) / float64(pairP99)
	}
	return map[string]any{
		"nodes":   n,
		"updates": updates,
		// The gate comparing majority to the pair path is core-count-aware
		// like the scaling gates: the fan-out's four push chains overlap on
		// real machines but serialize behind the measured commit on a
		// single-core runner.
		"num_cpu":              runtime.NumCPU(),
		"gomaxprocs":           runtime.GOMAXPROCS(0),
		"w1":                   w1,
		"majority":             majority,
		"all":                  all,
		"pair_push":            pair,
		"majority_p99_ns":      majP99,
		"pair_p99_ns":          pairP99,
		"majority_vs_pair_p99": ratio,
	}, nil
}

// writeMetricsJSON runs the fixed metrics workload — an instrumented
// in-memory store under a mixed update/enquiry load — and writes the
// resulting snapshot.
func writeMetricsJSON(path string, ops int, seed int64, quick bool) error {
	reg := obs.NewRegistry()
	cfs := vfs.NewCounting(vfs.NewMem(seed))
	ns, err := nameserver.Open(nameserver.Config{FS: cfs, Obs: reg})
	if err != nil {
		return err
	}
	defer ns.Close()

	start := time.Now()
	for i := 0; i < ops; i++ {
		name := fmt.Sprintf("bench/dir%d/entry%d", i%31, i)
		if err := ns.Set(name, fmt.Sprintf("value-%d", i)); err != nil {
			return err
		}
		// One enquiry per update keeps the read path in the snapshot.
		if _, err := ns.Lookup(name); err != nil {
			return err
		}
	}
	cfs.Reset() // isolate the checkpoint's own I/O from the workload's
	if err := ns.Checkpoint(); err != nil {
		return err
	}
	cpWriteBytes := cfs.WriteBytes()
	elapsed := time.Since(start)
	st := ns.Stats()

	micros, err := microBenches()
	if err != nil {
		return err
	}
	stall, err := checkpointStallJSON(seed, quick)
	if err != nil {
		return err
	}
	netres, err := networkResilienceJSON(seed, quick)
	if err != nil {
		return err
	}
	traceOv, err := tracingOverheadJSON(seed, quick)
	if err != nil {
		return err
	}
	readScaling, err := readScalingJSON(seed, quick)
	if err != nil {
		return err
	}
	writeScaling, err := writeScalingJSON(seed, quick)
	if err != nil {
		return err
	}
	cpScaling, err := checkpointScalingJSON(seed, quick)
	if err != nil {
		return err
	}
	quorum, err := quorumCommitJSON(seed, quick)
	if err != nil {
		return err
	}

	out := map[string]any{
		"schema": "smalldb-bench-metrics/v1",
		"ops": map[string]uint64{"updates": st.Updates, "enquiries": st.Enquiries, "checkpoints": st.Checkpoints,
			"delta_checkpoints": st.DeltaCheckpoints, "compactions": st.Compactions},
		"checkpoint_bytes": map[string]int64{
			// What the last checkpoint of the metrics workload cost the
			// disk (fs write counter) and the pickled file size itself.
			"write_bytes": cpWriteBytes,
			"file_bytes":  st.LastCheckpointBytes,
			"chain_len":   int64(st.ChainLength),
		},
		"elapsed_ns": elapsed.Nanoseconds(),
		"phases": map[string]phaseJSON{
			"verify":            phase(st.VerifyDist),
			"pickle":            phase(st.PickleDist),
			"commit":            phase(st.CommitDist),
			"apply":             phase(st.ApplyDist),
			"checkpoint_pickle": phase(st.CheckpointPickleDist),
			"checkpoint_io":     phase(st.CheckpointIODist),
			"checkpoint_switch": phase(st.CheckpointSwitchDist),
		},
		"checkpoint_stall":   stall,
		"checkpoint_scaling": cpScaling,
		"micro":              micros,
		"network_resilience": netres,
		"quorum_commit":      quorum,
		"tracing_overhead":   traceOv,
		"read_scaling":       readScaling,
		"write_scaling":      writeScaling,
		"metrics":            reg.Snapshot(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
