package wal

import (
	"errors"
	"fmt"
	"testing"

	"smalldb/internal/vfs"
)

// mirrorAppend appends n entries tagged with tag and returns their payloads.
func mirrorAppend(t *testing.T, l *Log, n int, tag string) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("%s-%d", tag, i)
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("append %s: %v", p, err)
		}
		out = append(out, p)
	}
	return out
}

// TestMirrorWindowReplayBothFiles drives a full mirror window and checks the
// two invariants the checkpoint protocol relies on: every entry acknowledged
// before the window closes is durable in the OLD file (recovery before the
// version flip), and every entry of the window is durable in the NEW file
// (recovery after the flip) — including entries appended before the mirror
// file even existed and entries appended after the dual-write began.
func TestMirrorWindowReplayBothFiles(t *testing.T) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log1", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre := mirrorAppend(t, l, 3, "pre") // seqs 1..3, before the window

	if err := l.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	early := mirrorAppend(t, l, 2, "early") // seqs 4..5, buffered: no mirror file yet

	mf, err := fs.Create("log2")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachMirrorFile(mf); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncMirror(); err != nil {
		t.Fatal(err)
	}
	late := mirrorAppend(t, l, 2, "late") // seqs 6..7, dual-written

	entries, err := l.FinishMirror("log2")
	if err != nil {
		t.Fatal(err)
	}
	if entries != 4 {
		t.Errorf("window entries = %d, want 4", entries)
	}
	post := mirrorAppend(t, l, 2, "post") // seqs 8..9, new file only
	l.Close()

	// The old file holds everything up to the window's end: it stayed the
	// commit point throughout.
	res, got := collect(t, fs, "log1", 1, ReplayOptions{})
	want := append(append(append([]string{}, pre...), early...), late...)
	if res.Entries != len(want) {
		t.Fatalf("old log: %d entries, want %d", res.Entries, len(want))
	}
	for i, p := range got {
		if string(p) != want[i] {
			t.Errorf("old log entry %d = %q, want %q", i, p, want[i])
		}
	}

	// The new file holds the window plus everything after it, starting at
	// the window's first sequence — exactly what replay from the new
	// checkpoint needs.
	res2, got2 := collect(t, fs, "log2", 4, ReplayOptions{})
	want2 := append(append(append([]string{}, early...), late...), post...)
	if res2.Entries != len(want2) || res2.LastSeq != 9 {
		t.Fatalf("new log: %+v, want %d entries ending at seq 9", res2, len(want2))
	}
	for i, p := range got2 {
		if string(p) != want2[i] {
			t.Errorf("new log entry %d = %q, want %q", i, p, want2[i])
		}
	}
}

// TestMirrorCarriesUnflushedTail: frames appended after the last SyncMirror
// and still unflushed when FinishMirror runs must commit to the NEW file —
// the retarget hands the pending tail over rather than dropping it.
func TestMirrorCarriesUnflushedTail(t *testing.T) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log1", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	mf, _ := fs.Create("log2")
	if err := l.AttachMirrorFile(mf); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncMirror(); err != nil {
		t.Fatal(err)
	}
	_, wait := l.AppendAsync([]byte("tail"))
	if _, err := l.FinishMirror("log2"); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatalf("tail commit after retarget: %v", err)
	}
	l.Close()
	res, got := collect(t, fs, "log2", 1, ReplayOptions{})
	if res.Entries != 1 || string(got[0]) != "tail" {
		t.Errorf("new log: %+v %q", res, got)
	}
}

// TestBeginMirrorRequiresQuiescedLog: the window may only open on a flushed
// log (the store holds the update lock and flushes first); an unflushed
// frame would be invisible to the checkpoint's pickled root AND missing
// from the mirror — lost after the flip.
func TestBeginMirrorRequiresQuiescedLog(t *testing.T) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log1", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, wait := l.AppendAsync([]byte("x"))
	if err := l.BeginMirror(); err == nil {
		t.Fatal("BeginMirror accepted a log with pending frames")
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.BeginMirror(); err != nil {
		t.Fatalf("BeginMirror on flushed log: %v", err)
	}
	if err := l.BeginMirror(); err == nil {
		t.Fatal("BeginMirror accepted a second window")
	}
	l.AbortMirror()
}

// TestAbortMirror: aborting the window discards the mirror state and the
// log keeps committing to its original file as if nothing happened.
func TestAbortMirror(t *testing.T) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log1", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	mirrorAppend(t, l, 2, "win")
	mf, _ := fs.Create("log2")
	if err := l.AttachMirrorFile(mf); err != nil {
		t.Fatal(err)
	}
	l.AbortMirror()
	mirrorAppend(t, l, 2, "after")
	l.Close()

	res, _ := collect(t, fs, "log1", 1, ReplayOptions{})
	if res.Entries != 4 {
		t.Errorf("old log entries = %d, want 4", res.Entries)
	}
	// Aborting twice, or with no window open, is harmless.
	l2, _ := Create(fs, "log3", 1, Options{})
	l2.AbortMirror()
	l2.Close()
}

// TestMirrorSyncFailurePoisons: once the dual-write rule is in force, a
// mirror-file sync failure must fail the acknowledgement and poison the
// log — acking on the old file alone would let the version flip lose the
// update.
func TestMirrorSyncFailurePoisons(t *testing.T) {
	fs := vfs.NewMem(1)
	boom := errors.New("mirror disk died")
	l, err := Create(fs, "log1", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	mf, _ := fs.Create("log2")
	if err := l.AttachMirrorFile(mf); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncMirror(); err != nil {
		t.Fatal(err)
	}
	fs.FailSync = func(name string) error {
		if name == "log2" {
			return boom
		}
		return nil
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("append during failed mirror sync: %v, want %v", err, boom)
	}
	fs.FailSync = nil
	if _, err := l.Append([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("log not poisoned after mirror failure: %v", err)
	}
	if _, err := l.FinishMirror("log2"); !errors.Is(err, boom) {
		t.Fatalf("FinishMirror on poisoned log: %v", err)
	}
	l.AbortMirror()
	l.Close()
}
