package crashtest

import (
	"reflect"
	"strings"
	"testing"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/netsim"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// The model: a plain flat map from slash-joined path to value — an
// implementation of the name service so simple it is obviously correct.
// The database and the model agree at every quiescent point exactly when
// every name a client could Lookup resolves identically in both.

func modelKey(parts []string) string { return strings.Join(parts, "/") }

func modelDeletePrefix(m map[string]string, key string) {
	delete(m, key)
	for k := range m {
		if strings.HasPrefix(k, key+"/") {
			delete(m, k)
		}
	}
}

func modelInsertSubtree(m map[string]string, key string, n *nameserver.Node) {
	if n == nil {
		return
	}
	if n.HasValue {
		m[key] = n.Value
	}
	for arc, child := range n.Children {
		modelInsertSubtree(m, key+"/"+arc, child)
	}
}

// modelApply mirrors one update into the model.
func modelApply(m map[string]string, u core.Update) {
	switch v := u.(type) {
	case *nameserver.SetValue:
		m[modelKey(v.Path)] = v.Value
	case *nameserver.DeleteSubtree:
		modelDeletePrefix(m, modelKey(v.Path))
	case *nameserver.PutSubtree:
		key := modelKey(v.Path)
		modelDeletePrefix(m, key)
		modelInsertSubtree(m, key, v.Subtree)
	case *nameserver.Move:
		from, to := modelKey(v.From), modelKey(v.To)
		moved := make(map[string]string)
		for k, val := range m {
			if k == from || strings.HasPrefix(k, from+"/") {
				moved[to+k[len(from):]] = val
				delete(m, k)
			}
		}
		for k, val := range moved {
			m[k] = val
		}
	}
}

// valueMap extracts every bound name from a replica's tree.
func valueMap(t *testing.T, n *replica.Node) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := n.Store().View(func(root any) error {
		r, ok := root.(*replica.Root)
		if !ok {
			t.Fatalf("root is %T", root)
		}
		var walk func(node *nameserver.Node, path string)
		walk = func(node *nameserver.Node, path string) {
			if node.HasValue {
				out[path] = node.Value
			}
			for arc, child := range node.Children {
				key := arc
				if path != "" {
					key = path + "/" + arc
				}
				walk(child, key)
			}
		}
		walk(r.Tree.Root, "")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestModelOracle drives a replica pair with a seeded op stream against the
// flat-map model: writers alternate between the nodes at quiescent points,
// one phase runs partitioned, the acking node crashes and restarts midway,
// and after every quiescent point both replicas must agree with the model
// name for name.
func TestModelOracle(t *testing.T) {
	const (
		seed   = 11
		ops    = 60
		phases = 6
	)
	p := makePlan(seed, ops)
	model := make(map[string]string)

	nw := netsim.New(seed, netsim.Options{Profile: hostileProfile})
	defer nw.Close()
	ffs := faultfs.New(vfs.NewMem(seed), faultfs.Options{CrashAt: faultfs.Never})
	a, err := openNetNode(nw, "a", ffs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { a.close() }()
	b, err := openNetNode(nw, "b", vfs.NewMem(seed+1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.close()
	ab := rpc.NewClientDialer(nw.Dialer("a", "b"))
	a.node.AddPeer("b", ab)
	ba := rpc.NewClientDialer(nw.Dialer("b", "a"))
	b.node.AddPeer("a", ba)

	// quiesce clears the weather, converges the pair, restores the
	// weather, and checks both replicas against the model.
	quiesce := func(point string) {
		t.Helper()
		nw.SetProfile(netsim.Profile{})
		for round := 0; ; round++ {
			if err := a.node.SyncWith(ab); err != nil {
				t.Fatalf("%s: sync a<-b: %v", point, err)
			}
			if err := b.node.SyncWith(ba); err != nil {
				t.Fatalf("%s: sync b<-a: %v", point, err)
			}
			va, _ := a.node.Vector()
			vb, _ := b.node.Vector()
			if reflect.DeepEqual(va, vb) {
				break
			}
			if round > 10 {
				t.Fatalf("%s: replicas failed to converge", point)
			}
		}
		for name, n := range map[string]*replica.Node{"a": a.node, "b": b.node} {
			if got := valueMap(t, n); !reflect.DeepEqual(got, model) {
				t.Fatalf("%s: node %s diverges from the model:\n got  %v\n want %v", point, name, got, model)
			}
		}
		nw.SetProfile(hostileProfile)
	}

	perPhase := ops / phases
	for phase := 0; phase < phases; phase++ {
		// Writers switch only at quiescent points, so the sequential
		// model stays exact: the writer starts from the converged state,
		// and its Lamport stamps exceed everything already applied.
		writer := a.node
		if phase%2 == 1 {
			writer = b.node
		}
		if phase == 2 {
			// This phase's updates commit during a partition.
			nw.Partition("a", "b")
		}
		for i := phase * perPhase; i < (phase+1)*perPhase; i++ {
			if err := writer.Apply(p.updates[i]); err != nil {
				t.Fatalf("phase %d: update %d not acknowledged: %v", phase, i, err)
			}
			modelApply(model, p.updates[i])
		}
		if phase == 2 {
			nw.Heal("a", "b")
		}
		if phase == 3 {
			// Crash and restart node a between phases: the model must
			// still hold across recovery. The quiescent point just
			// before this phase synced everything, and phase 3's writer
			// commits are synced at ack time, so the durable image holds
			// the full prefix.
			frozen := ffs.Snapshot()
			a.close()
			restarted, err := openNetNode(nw, "a", frozen, nil)
			if err != nil {
				t.Fatalf("restart of node a: %v", err)
			}
			a = restarted
			ab = rpc.NewClientDialer(nw.Dialer("a", "b"))
			a.node.AddPeer("b", ab)
		}
		quiesce("phase " + string(rune('0'+phase)))
	}
	if len(model) == 0 {
		t.Fatal("workload left the model empty; generator broken")
	}
}
