// The N-node generalization of the partition sweep: the same seeded
// workload commits through a replica.Group at write quorum W instead of a
// hardwired pair. At each partition point a seeded minority of non-primary
// members is cut away from the rest, the window commits — and must ack —
// against the surviving majority, a rotating victim (including the
// primary) optionally power-fails at the heal point, the network heals,
// and every member must converge to the acked-prefix fingerprint oracle
// with zero quorum-acked updates lost.

package crashtest

import (
	"fmt"
	"math/rand"
	"time"

	"smalldb/internal/netsim"
	"smalldb/internal/obs"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// groupRunner replays group partition points.
type groupRunner struct {
	cfg    NetConfig
	plan   *plan
	nodes  int
	quorum int
}

func newGroupRunner(cfg NetConfig) (*groupRunner, error) {
	n := cfg.Nodes
	w := cfg.Quorum
	if w == 0 {
		w = replica.Majority(n)
	}
	if w < 1 || w > n {
		return nil, fmt.Errorf("crashtest: quorum %d out of range for %d nodes", w, n)
	}
	// The sweep cuts away up to (n-1)/2 non-primary members and still
	// demands the window be acknowledged, so the quorum must be
	// satisfiable by what a worst-case minority partition leaves: the
	// majority. (This is also just the sensible operating point — a
	// super-majority W trades exactly this availability away.)
	if w > replica.Majority(n) {
		return nil, fmt.Errorf("crashtest: quorum %d unreachable under a minority partition of %d nodes (max %d)", w, n, replica.Majority(n))
	}
	return &groupRunner{cfg: cfg, plan: makePlan(cfg.Seed, cfg.Ops), nodes: n, quorum: w}, nil
}

func (r *groupRunner) violation(k int, format string, args ...any) Violation {
	return Violation{Seed: r.cfg.Seed, Mode: ModeNet, Point: int64(k), Msg: fmt.Sprintf(format, args...)}
}

// member is one non-primary group member inside a point's network.
type member struct {
	name string
	ffs  *faultfs.FS
	nn   *netNode
	pull *rpc.Client // member -> primary, for convergence pulls
}

func memberName(i int) string { return fmt.Sprintf("n%d", i) }

// point replays one group partition point, converting a harness panic into
// a violation rather than killing the whole sweep.
func (r *groupRunner) point(k int) (vs []Violation) {
	defer func() {
		if p := recover(); p != nil {
			vs = append(vs, r.violation(k, "harness panic: %v", p))
		}
	}()
	return r.groupPoint(k)
}

func (r *groupRunner) groupPoint(k int) []Violation {
	// One private network per point; (seed, point) fixes the weather, the
	// minority choice, and the crash victim — any failure replays.
	pointSeed := r.cfg.Seed*1000003 + int64(k)
	nw := netsim.New(pointSeed, netsim.Options{Profile: r.cfg.Profile, TraceCap: 256})
	defer nw.Close()
	rng := rand.New(rand.NewSource(pointSeed))

	primaryName := memberName(0)
	gcfg := replica.GroupConfig{
		Self:             primaryName,
		W:                r.quorum,
		PushPolicy:       netPolicy,
		SyncPolicy:       netPolicy,
		QuorumTimeout:    10 * time.Second,
		AntiEntropyEvery: 5 * time.Millisecond,
	}
	for i := 0; i < r.nodes; i++ {
		gcfg.Members = append(gcfg.Members, replica.Member{Name: memberName(i), Addr: "netsim"})
	}

	// Primary: faultfs for the durable image, flight recorder for the
	// commit-trail assertion.
	pffs := faultfs.New(vfs.NewMem(r.cfg.Seed), faultfs.Options{CrashAt: faultfs.Never})
	fl, err := openFlight(pffs)
	if err != nil {
		return []Violation{r.violation(k, "harness: opening flight recorder: %v", err)}
	}
	defer fl.Close()
	primary, err := openNetNode(nw, primaryName, pffs, fl)
	if err != nil {
		return []Violation{r.violation(k, "harness: opening primary: %v", err)}
	}
	defer func() {
		if primary != nil {
			primary.close()
		}
	}()

	members := make([]*member, 0, r.nodes-1)
	defer func() {
		for _, m := range members {
			if m.nn != nil {
				m.nn.close()
			}
		}
	}()
	for i := 1; i < r.nodes; i++ {
		name := memberName(i)
		mffs := faultfs.New(vfs.NewMem(r.cfg.Seed+int64(i)), faultfs.Options{CrashAt: faultfs.Never})
		nn, err := openNetNode(nw, name, mffs, nil)
		if err != nil {
			return []Violation{r.violation(k, "harness: opening member %s: %v", name, err)}
		}
		members = append(members, &member{
			name: name,
			ffs:  mffs,
			nn:   nn,
			pull: rpc.NewClientDialer(nw.Dialer(name, primaryName)),
		})
	}

	connect := func(g *replica.Group) error {
		for _, m := range members {
			if err := g.Connect(m.name, rpc.NewClientDialer(nw.Dialer(primaryName, m.name))); err != nil {
				return err
			}
		}
		return nil
	}
	group, err := replica.NewGroup(primary.node, gcfg)
	if err != nil {
		return []Violation{r.violation(k, "harness: building group: %v", err)}
	}
	defer func() {
		if group != nil {
			group.Close()
		}
	}()
	if err := connect(group); err != nil {
		return []Violation{r.violation(k, "harness: connecting group: %v", err)}
	}

	// Prefix: updates [0, k) quorum-commit under the configured weather.
	for i := 0; i < k; i++ {
		if err := group.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "prefix update %d not quorum-acknowledged: %v", i, err)}
		}
	}

	// Cut a seeded minority of non-primary members away from everyone
	// else. The primary stays on the majority side — the whole point of
	// quorum commit is that it keeps acknowledging through exactly this.
	minority := rng.Perm(r.nodes - 1)[:(r.nodes-1)/2]
	cut := make(map[string]bool, len(minority))
	for _, mi := range minority {
		cut[members[mi].name] = true
	}
	for name := range cut {
		nw.Partition(name, primaryName)
		for _, m := range members {
			if !cut[m.name] {
				nw.Partition(name, m.name)
			}
		}
	}

	// The window must be acknowledged at quorum W against the survivors.
	ackedTo := k + r.cfg.Window
	for i := k; i < ackedTo; i++ {
		if err := group.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "update %d not quorum-acknowledged during minority partition of %v: %v", i, keys(cut), err)}
		}
	}

	if r.cfg.Crash {
		victim := k % r.nodes
		if victim == 0 {
			// Power-fail the primary: its synced-only image must hold a
			// decodable flight ring and every acknowledged update — the
			// group acks only after the local commit's sync.
			frozen := pffs.Snapshot()
			group.Close()
			group = nil
			primary.close()
			primary = nil
			if vs := r.checkGroupFlight(k, frozen, ackedTo); vs != nil {
				return vs
			}
			restarted, err := openNetNode(nw, primaryName, frozen, nil)
			if err != nil {
				return []Violation{r.violation(k, "recovery of the crashed primary failed: %v", err)}
			}
			primary = restarted
			vec, err := primary.node.Vector()
			if err != nil {
				return []Violation{r.violation(k, "reading recovered primary vector: %v", err)}
			}
			if recovered := int(vec[primaryName]); recovered < ackedTo {
				return []Violation{r.violation(k, "durability: primary recovered %d updates but %d were quorum-acknowledged", recovered, ackedTo)}
			}
			group, err = replica.NewGroup(primary.node, gcfg)
			if err != nil {
				return []Violation{r.violation(k, "harness: rebuilding group after primary crash: %v", err)}
			}
			if err := connect(group); err != nil {
				return []Violation{r.violation(k, "harness: reconnecting group after primary crash: %v", err)}
			}
		} else {
			// Power-fail a member (possibly one of the partitioned
			// minority): freeze its durable image and restart from it.
			// Member disks hold only asynchronously pushed state, so the
			// recovered prefix is whatever had synced — convergence below
			// is the assertion that none of it matters durably.
			m := members[victim-1]
			frozen := m.ffs.Snapshot()
			m.nn.close()
			restarted, err := openNetNode(nw, m.name, frozen, nil)
			if err != nil {
				m.nn = nil
				return []Violation{r.violation(k, "recovery of crashed member %s failed: %v", m.name, err)}
			}
			m.nn = restarted
			m.pull = rpc.NewClientDialer(nw.Dialer(m.name, primaryName))
		}
	}

	// Heal, clear the weather, converge everyone on the acked prefix.
	nw.HealAll()
	nw.SetProfile(netsim.Profile{})
	if vs := r.converge(k, primary, members, ackedTo, "after partition heal"); vs != nil {
		return vs
	}

	// Finish the workload at quorum and require the whole group to land
	// on the full oracle.
	for i := ackedTo; i < len(r.plan.updates); i++ {
		if err := group.Apply(r.plan.updates[i]); err != nil {
			return []Violation{r.violation(k, "post-heal update %d not quorum-acknowledged: %v", i, err)}
		}
	}
	if vs := r.converge(k, primary, members, len(r.plan.updates), "after finishing the workload"); vs != nil {
		return vs
	}
	if !r.cfg.Crash || k%r.nodes != 0 {
		// The primary survived the whole point: its durable ring must
		// decode and cover every acknowledged update.
		return r.checkGroupFlight(k, pffs.Snapshot(), len(r.plan.updates))
	}
	return nil
}

// checkGroupFlight mirrors checkNetFlight for the group sweep.
func (r *groupRunner) checkGroupFlight(k int, fs vfs.FS, ackedTo int) []Violation {
	events, err := obs.ReadFlight(fs, flightName)
	if err != nil {
		return []Violation{r.violation(k, "flight: unreadable on the primary's durable image: %v", err)}
	}
	if len(events) == 0 {
		return []Violation{r.violation(k, "flight: empty tail with %d acked updates", ackedTo)}
	}
	if max := maxCommitSeq(events); max < ackedTo-1 || max > ackedTo {
		return []Violation{r.violation(k, "flight: newest commit event is seq %d but %d updates were quorum-acknowledged", max, ackedTo)}
	}
	return nil
}

// converge pulls every member up to the primary and checks the whole group
// against the oracle prefix of upto updates.
func (r *groupRunner) converge(k int, primary *netNode, members []*member, upto int, when string) []Violation {
	want := r.plan.fp[upto]
	if got, err := replicaFingerprint(primary.node); err != nil || got != want {
		return []Violation{r.violation(k, "primary diverges from the oracle prefix of %d updates %s (%v)", upto, when, err)}
	}
	for _, m := range members {
		if err := m.nn.node.SyncWith(m.pull); err != nil {
			return []Violation{r.violation(k, "anti-entropy %s<-primary failed %s: %v", m.name, when, err)}
		}
		if got, err := replicaFingerprint(m.nn.node); err != nil || got != want {
			return []Violation{r.violation(k, "acked-update loss: member %s diverges from the oracle prefix of %d updates %s (%v)", m.name, upto, when, err)}
		}
	}
	return nil
}

// keys lists a set's members, for violation messages.
func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
