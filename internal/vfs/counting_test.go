package vfs

import "testing"

func TestCountingTallies(t *testing.T) {
	c := NewCounting(NewMem(1))
	f, err := c.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 50), 10); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := c.WriteBytes(); got != 150 {
		t.Errorf("WriteBytes = %d, want 150", got)
	}
	if got := c.Syncs(); got != 1 {
		t.Errorf("Syncs = %d, want 1", got)
	}

	r, err := c.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 40)
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(buf[:20], 5); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if got := c.ReadBytes(); got != 60 {
		t.Errorf("ReadBytes = %d, want 60", got)
	}

	c.Reset()
	if c.ReadBytes() != 0 || c.WriteBytes() != 0 || c.Syncs() != 0 {
		t.Errorf("Reset left counters at %d/%d/%d", c.ReadBytes(), c.WriteBytes(), c.Syncs())
	}
}
