package bench

import (
	"fmt"
	"math/rand"
	"time"

	"smalldb/internal/disk"
	"smalldb/internal/nameserver"
	"smalldb/internal/vfs"
)

// An Experiment regenerates one of the paper's reported measurements.
type Experiment struct {
	ID    string
	Title string
	Run   func(Env) ([]*Table, error)
}

// All lists every experiment, in id order.
func All() []Experiment {
	return []Experiment{
		{"e1", "enquiry latency (paper §5: 5 ms, pure virtual memory)", E1},
		{"e2", "update latency breakdown (paper §5: 6+22+20+6 = 54 ms)", E2},
		{"e3", "checkpoint cost (paper §5: 55 s pickling + 5 s disk)", E3},
		{"e4", "restart time vs log length (paper §5: 20 s + 20 ms/entry)", E4},
		{"e5", "sustained update rate and group commit (paper §5: >15 tx/s)", E5},
		{"e6", "§2 technique comparison (text file / ad hoc / atomic commit / this design)", E6},
		{"e7", "checkpoint frequency tradeoff (paper §5, §7)", E7},
		{"e8", "locking ablation: enquiries during update disk writes (paper §3)", E8},
		{"e9", "crash-recovery reliability (paper §4)", E9},
		{"e10", "implementation size (paper §6 source line counts)", E10},
		{"e11", "remote access via RPC (paper §5: 13 ms enquiry, 62 ms update)", E11},
		{"e12", "pickling share of update cost (paper §6: ~40%)", E12},
		{"e13", "replica hard-error restore (paper §4)", E13},
		{"e14", "extension: partitioned databases over one shared log (paper §7)", E14},
	}
}

// Run executes the named experiments (all of them if none named), printing
// each table to env.Out.
func Run(env Env, ids ...string) error {
	env = env.Defaults()
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, ex := range All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		tables, err := ex.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.ID, err)
		}
		for _, t := range tables {
			t.Fprint(env.Out)
		}
	}
	return nil
}

// modeledFS builds the standard experiment substrate: in-memory files
// behind the MicroVAX disk model. scale 0 = accounting only.
func modeledFS(seed int64, scale float64) (*vfs.Mem, *disk.Disk) {
	mem := vfs.NewMem(seed)
	return mem, disk.New(mem, disk.MicroVAX, scale)
}

// buildNS opens a name server on fs and populates it with env.DBEntries
// entries — the paper's "1 megabyte database" at the default Env.
func buildNS(env Env, fs vfs.FS, cfg nameserver.Config) (*nameserver.Server, error) {
	cfg.FS = fs
	s, err := nameserver.Open(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(env.Seed))
	for i := 0; i < env.DBEntries; i++ {
		if err := s.Set(NameFor(i), Value(rng, env.ValueSize)); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func slow(cpu time.Duration) time.Duration {
	return time.Duration(float64(cpu) * disk.MicroVAX.CPUSlowdown)
}

// E1 measures enquiry latency: a pure virtual-memory lookup.
func E1(env Env) ([]*Table, error) {
	env = env.Defaults()
	mem, d := modeledFS(env.Seed, 0)
	_ = mem
	s, err := buildNS(env, d, nameserver.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(env.Seed + 1))
	names := Names(rng, env.DBEntries, env.iters(20000, 500))
	// Warm up, then measure.
	for _, n := range names[:len(names)/10+1] {
		s.Lookup(n)
	}
	d.ResetStats()
	var hist Hist
	for _, n := range names {
		t0 := time.Now()
		if _, err := s.Lookup(n); err != nil {
			return nil, err
		}
		hist.Add(time.Since(t0))
	}
	diskIO := d.Stats().ModeledIO

	return []*Table{{
		ID:     "E1",
		Title:  "enquiry latency (1 MB-class database, working set in memory)",
		Header: []string{"quantity", "paper (MicroVAX, 1987)", "measured", "1987-equivalent"},
		Rows: [][]string{
			{"enquiry mean", "5ms", fmtDur(hist.Mean()), fmtDur(slow(hist.Mean()))},
			{"enquiry p95", "-", fmtDur(hist.Percentile(95)), fmtDur(slow(hist.Percentile(95)))},
			{"disk I/O during enquiries", "none", fmtDur(diskIO), fmtDur(diskIO)},
		},
		Notes: []string{
			fmt.Sprintf("%d lookups over %d entries; the disk row must be zero — the paper's core claim", hist.N(), env.DBEntries),
		},
	}}, nil
}

// E2 measures the update latency breakdown: verify (explore), pickle,
// commit disk write, in-memory apply.
func E2(env Env) ([]*Table, error) {
	env = env.Defaults()
	_, d := modeledFS(env.Seed, 0)
	s, err := buildNS(env, d, nameserver.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	before := s.Stats()
	d.ResetStats()
	rng := rand.New(rand.NewSource(env.Seed + 2))
	n := env.iters(2000, 100)
	for i := 0; i < n; i++ {
		if err := s.Set(NameFor(rng.Intn(env.DBEntries)), Value(rng, env.ValueSize)); err != nil {
			return nil, err
		}
	}
	after := s.Stats()
	ds := d.Stats()

	per := func(total time.Duration) time.Duration { return total / time.Duration(n) }
	verify := per(after.VerifyTime - before.VerifyTime)
	pickle := per(after.PickleTime - before.PickleTime)
	apply := per(after.ApplyTime - before.ApplyTime)
	diskW := ds.ModeledIO / time.Duration(n)
	total1987 := slow(verify) + slow(pickle) + slow(apply) + diskW

	return []*Table{{
		ID:     "E2",
		Title:  "update latency breakdown",
		Header: []string{"phase", "paper (1987)", "measured CPU", "1987-equivalent"},
		Rows: [][]string{
			{"explore (verify preconditions)", "6ms", fmtDur(verify), fmtDur(slow(verify))},
			{"pickle update parameters", "22ms", fmtDur(pickle), fmtDur(slow(pickle))},
			{"disk write of log entry", "20ms", "(modeled)", fmtDur(diskW)},
			{"modify virtual memory", "6ms", fmtDur(apply), fmtDur(slow(apply))},
			{"total", "54ms", "-", fmtDur(total1987)},
		},
		Notes: []string{
			fmt.Sprintf("%d updates; syncs per update = %.2f (paper: exactly one disk write per update)",
				n, float64(ds.Syncs)/float64(n)),
		},
	}}, nil
}

// E3 measures checkpoint cost: pickling the whole database vs streaming it
// to disk.
func E3(env Env) ([]*Table, error) {
	env = env.Defaults()
	_, d := modeledFS(env.Seed, 0)
	s, err := buildNS(env, d, nameserver.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	d.ResetStats()
	before := s.Stats()
	t0 := time.Now()
	if err := s.Checkpoint(); err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	after := s.Stats()
	ds := d.Stats()

	pickleCPU := after.CheckpointPickleTime - before.CheckpointPickleTime
	return []*Table{{
		ID:     "E3",
		Title:  fmt.Sprintf("checkpoint cost (database: %s on disk)", fmtBytes(ds.BytesWritten)),
		Header: []string{"phase", "paper (1 MB, 1987)", "measured", "1987-equivalent"},
		Rows: [][]string{
			{"pickle entire database", "55s", fmtDur(pickleCPU), fmtDur(slow(pickleCPU))},
			{"disk writes", "5s", "(modeled)", fmtDur(ds.ModeledIO)},
			{"total", "~60s", fmtDur(wall), fmtDur(slow(pickleCPU) + ds.ModeledIO)},
		},
		Notes: []string{"the paper's point: checkpoint cost is dominated by pickling, not the disk"},
	}}, nil
}

// E4 measures restart time as a function of log length.
func E4(env Env) ([]*Table, error) {
	env = env.Defaults()
	lengths := []int{0, 100, 1000, 5000}
	if env.Quick {
		lengths = []int{0, 50, 200}
	}
	t := &Table{
		ID:     "E4",
		Title:  "restart time vs log length (paper: ~20 s checkpoint read + ~20 ms per log entry)",
		Header: []string{"log entries", "measured restart", "replay CPU/entry", "1987-equivalent restart", "paper formula"},
	}
	for _, n := range lengths {
		mem, d := modeledFS(env.Seed+int64(n), 0)
		s, err := buildNS(env, d, nameserver.Config{})
		if err != nil {
			return nil, err
		}
		if err := s.Checkpoint(); err != nil {
			s.Close()
			return nil, err
		}
		rng := rand.New(rand.NewSource(env.Seed + 3))
		for i := 0; i < n; i++ {
			if err := s.Set(NameFor(rng.Intn(env.DBEntries)), Value(rng, env.ValueSize)); err != nil {
				s.Close()
				return nil, err
			}
		}
		s.Close()

		d2 := disk.New(mem, disk.MicroVAX, 0)
		t0 := time.Now()
		s2, err := nameserver.Open(nameserver.Config{FS: d2})
		if err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		st := s2.Stats()
		s2.Close()

		var perEntry time.Duration
		if st.RestartEntries > 0 {
			perEntry = st.RestartReplayTime / time.Duration(st.RestartEntries)
		}
		model := d2.Stats().ModeledIO + slow(st.RestartReplayTime) + slow(st.RestartCheckpointTime)
		paperFormula := 20*time.Second + time.Duration(n)*20*time.Millisecond
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtDur(wall),
			fmtDur(perEntry),
			fmtDur(model),
			fmtDur(paperFormula),
		})
	}
	t.Notes = append(t.Notes,
		"restart grows linearly in log length — the availability knob of §5",
		"1987-equivalent scales checkpoint read + replay CPU by the CPU model and charges modeled disk reads")
	return []*Table{t}, nil
}

// E5 measures the sustained update rate, with and without group commit.
func E5(env Env) ([]*Table, error) {
	env = env.Defaults()
	// A real-blocking disk, scaled 10× faster than 1987 so the run stays
	// short; rates scale back by the same factor.
	const scale = 0.1
	perWriter := env.iters(60, 10)

	type config struct {
		name    string
		writers int
		group   bool
		noSync  bool
	}
	configs := []config{
		{"1 writer, base design", 1, false, false},
		{"8 writers, base design", 8, false, false},
		{"8 writers, group commit", 8, true, false},
		{"8 writers, NO commit point (unsafe ablation)", 8, false, true},
	}
	t := &Table{
		ID:     "E5",
		Title:  "sustained update rate (paper: >15 tx/s; group commit is the only faster scheme)",
		Header: []string{"configuration", "tx/s (scaled disk)", "tx/s (1987-equivalent)", "syncs/update"},
	}
	for _, c := range configs {
		mem, d := modeledFS(env.Seed, scale)
		_ = mem
		s, err := buildNS(Env{Seed: env.Seed, DBEntries: 200, ValueSize: env.ValueSize, Out: env.Out, Quick: env.Quick}, d, nameserver.Config{GroupCommit: c.group, UnsafeNoSync: c.noSync})
		if err != nil {
			return nil, err
		}
		d.ResetStats()
		total := c.writers * perWriter
		t0 := time.Now()
		errCh := make(chan error, c.writers)
		for w := 0; w < c.writers; w++ {
			go func(w int) {
				rng := rand.New(rand.NewSource(env.Seed + int64(w)))
				for i := 0; i < perWriter; i++ {
					if err := s.Set(fmt.Sprintf("w%d/k%d", w, i), Value(rng, 32)); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(w)
		}
		for w := 0; w < c.writers; w++ {
			if err := <-errCh; err != nil {
				s.Close()
				return nil, err
			}
		}
		elapsed := time.Since(t0)
		ds := d.Stats()
		s.Close()

		rate := float64(total) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f", rate*scale),
			fmt.Sprintf("%.2f", float64(ds.Syncs)/float64(total)),
		})
	}
	t.Notes = append(t.Notes,
		"disk runs at 10× 1987 speed; the 1987-equivalent column scales rates back",
		"group commit raises throughput by sharing disk writes — fewer syncs per update",
		"the no-commit-point ablation is fast and loses acknowledged updates on a crash (E9 note)")
	return []*Table{t}, nil
}

// E6 compares the §2 techniques head to head on the same workload.
func E6(env Env) ([]*Table, error) {
	env = env.Defaults()
	records := env.iters(500, 60)
	updates := env.iters(200, 30)
	lookups := env.iters(200, 30)

	t := &Table{
		ID:     "E6",
		Title:  "§2 technique comparison (same records, same disk model)",
		Header: []string{"technique", "update (1987)", "enquiry (1987)", "syncs/update", "bytes/update", "crash-safe updates"},
	}
	for _, engine := range e6Engines() {
		mem, d := modeledFS(env.Seed, 0)
		_ = mem
		kv, err := engine.open(d)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(env.Seed))
		for i := 0; i < records; i++ {
			if err := kv.Update(fmt.Sprintf("key%04d", i), Value(rng, 48)); err != nil {
				return nil, fmt.Errorf("%s populate: %w", engine.name, err)
			}
		}
		// Updates.
		d.ResetStats()
		var updCPU time.Duration
		for i := 0; i < updates; i++ {
			k := fmt.Sprintf("key%04d", rng.Intn(records))
			t0 := time.Now()
			if err := kv.Update(k, Value(rng, 48)); err != nil {
				return nil, fmt.Errorf("%s update: %w", engine.name, err)
			}
			updCPU += time.Since(t0)
		}
		updDisk := d.Stats().ModeledIO
		updSyncs := d.Stats().Syncs
		updBytes := d.Stats().BytesWritten
		// Lookups.
		d.ResetStats()
		var lkCPU time.Duration
		for i := 0; i < lookups; i++ {
			k := fmt.Sprintf("key%04d", rng.Intn(records))
			t0 := time.Now()
			if _, _, err := kv.Lookup(k); err != nil {
				return nil, fmt.Errorf("%s lookup: %w", engine.name, err)
			}
			lkCPU += time.Since(t0)
		}
		lkDisk := d.Stats().ModeledIO
		kv.Close()

		upd1987 := (slow(updCPU) + updDisk) / time.Duration(updates)
		lk1987 := (slow(lkCPU) + lkDisk) / time.Duration(lookups)
		t.Rows = append(t.Rows, []string{
			engine.name,
			fmtDur(upd1987),
			fmtDur(lk1987),
			fmt.Sprintf("%.2f", float64(updSyncs)/float64(updates)),
			fmtBytes(updBytes / int64(updates)),
			engine.safety,
		})
	}
	t.Notes = append(t.Notes,
		"text file: rewrites the whole file per update; cost grows with database size",
		"ad hoc: one in-place write — fast but torn multi-page updates corrupt silently (E9)",
		"atomic commit: two disk writes — the paper's 'factor of two worse'",
		"this design: one log write per update, enquiries purely in memory")
	return []*Table{t}, nil
}

// E7 sweeps the checkpoint interval: restart time vs availability vs space.
func E7(env Env) ([]*Table, error) {
	env = env.Defaults()
	totalUpdates := env.iters(4000, 400)
	intervals := []int{totalUpdates / 40, totalUpdates / 8, totalUpdates / 2, totalUpdates + 1}
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("checkpoint frequency tradeoff over %d updates", totalUpdates),
		Header: []string{"checkpoint every", "checkpoints", "update-blocked (1987)", "final log", "restart (1987)", "peak disk"},
	}
	for _, every := range intervals {
		mem, d := modeledFS(env.Seed, 0)
		s, err := buildNS(Env{Seed: env.Seed, DBEntries: 1000, ValueSize: env.ValueSize}, d, nameserver.Config{Retain: 0})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(env.Seed + 7))
		var blocked time.Duration
		checkpoints := 0
		var peak int64
		for i := 1; i <= totalUpdates; i++ {
			if err := s.Set(NameFor(rng.Intn(1000)), Value(rng, env.ValueSize)); err != nil {
				s.Close()
				return nil, err
			}
			if i%every == 0 {
				pre := s.Stats()
				d.ResetStats()
				if err := s.Checkpoint(); err != nil {
					s.Close()
					return nil, err
				}
				post := s.Stats()
				blocked += slow(post.CheckpointPickleTime-pre.CheckpointPickleTime) + d.Stats().ModeledIO
				checkpoints++
				if b := mem.TotalBytes(); b > peak {
					peak = b
				}
			}
		}
		finalLog := s.Stats().LogBytes
		s.Close()
		if b := mem.TotalBytes(); b > peak {
			peak = b
		}

		// Restart cost for the final state.
		d2 := disk.New(mem, disk.MicroVAX, 0)
		s2, err := nameserver.Open(nameserver.Config{FS: d2})
		if err != nil {
			return nil, err
		}
		st := s2.Stats()
		s2.Close()
		restart := d2.Stats().ModeledIO + slow(st.RestartReplayTime) + slow(st.RestartCheckpointTime)

		label := fmt.Sprintf("%d updates", every)
		if every > totalUpdates {
			label = "never"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", checkpoints),
			fmtDur(blocked),
			fmtBytes(finalLog),
			fmtDur(restart),
			fmtBytes(peak),
		})
	}
	t.Notes = append(t.Notes,
		"frequent checkpoints: short restarts, long update-blocked stretches (updates are excluded during a checkpoint)",
		"rare checkpoints: cheap steady state, long log, long restart — the paper recommends one per night")
	return []*Table{t}, nil
}
