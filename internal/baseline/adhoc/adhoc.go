// Package adhoc is the paper's second §2 baseline: the "ad hoc schemes,
// involving a custom designed data representation in a disk file, and
// specialized code for accessing and modifying the data. Typical read
// accesses involve perusing a small number of directly accessed pages from
// the disk ... updates are typically performed by overwriting existing data
// in place. This leaves the database quite vulnerable to transient errors."
//
// It is a thin veneer over the slotfile substrate: one direct page write
// per update — fast, matching the paper's "performance ... generally quite
// good for updates, requiring typically one disk write per update" — and no
// recovery story at all, which the reliability experiment (E9's baseline
// leg) makes visible.
package adhoc

import (
	"smalldb/internal/baseline/slotfile"
	"smalldb/internal/vfs"
)

// DB is an ad-hoc paged database.
type DB struct {
	sf *slotfile.File
}

// DefaultSlots sizes a fresh database file.
const DefaultSlots = 1024

// Open opens (or creates) the database in the named file.
func Open(fs vfs.FS, name string) (*DB, error) {
	if vfs.Exists(fs, name) {
		sf, err := slotfile.Open(fs, name)
		if err != nil {
			return nil, err
		}
		return &DB{sf: sf}, nil
	}
	sf, err := slotfile.Create(fs, name, DefaultSlots)
	if err != nil {
		return nil, err
	}
	return &DB{sf: sf}, nil
}

// Lookup reads key's value with direct page access.
func (db *DB) Lookup(key string) (string, bool, error) { return db.sf.Lookup(key) }

// Update overwrites key's record in place: one disk write.
func (db *DB) Update(key, value string) error { return db.sf.Put(key, value) }

// Delete tombstones key's record in place: one disk write.
func (db *DB) Delete(key string) error {
	_, err := db.sf.Delete(key)
	return err
}

// All returns every record.
func (db *DB) All() (map[string]string, error) { return db.sf.All() }

// Close closes the file.
func (db *DB) Close() error { return db.sf.Close() }
