package vfs

import (
	"sync/atomic"
	"time"
)

// Slow wraps an FS and throttles its writes and syncs, modelling a disk
// that is much slower than memory — the regime the paper's non-blocking
// checkpoint exists for ("the disk write takes a while"). Reads are never
// delayed: enquiries against the in-memory database must stay fast even
// while a checkpoint is dragging a large file through a slow device.
//
// The throttle is toggleable at runtime with SetDelay: benchmarks build
// their initial state at full speed, then turn the brake on before
// measuring. Delays apply concurrently — two files syncing at once each
// pay their own delay — which is what lets a mirror-window checkpoint's
// slow file write overlap with fast log commits on a separate file.
type Slow struct {
	fs FS
	// syncDelay is the fixed cost of each Sync, in nanoseconds.
	syncDelay atomic.Int64
	// bytesPerSec rate-limits Write/WriteAt; 0 means unlimited.
	bytesPerSec atomic.Int64
	// owedNS accumulates pacing debt so that writes smaller than a
	// sleep's practical resolution (~1ms of debt) pass through and the
	// debt is paid by whoever next crosses the threshold — typically the
	// bulk writer being modelled. Sleeping per small write would round a
	// microsecond of pacing up to a millisecond of timer granularity.
	owedNS atomic.Int64
}

// NewSlow wraps fs with an initially disabled throttle.
func NewSlow(fs FS) *Slow { return &Slow{fs: fs} }

// SetDelay configures the throttle: every Sync sleeps for syncDelay, and
// writes are paced to bytesPerSec (0 = unpaced). Zero both to disable.
// Safe to call while operations are in flight.
func (s *Slow) SetDelay(syncDelay time.Duration, bytesPerSec int64) {
	s.syncDelay.Store(int64(syncDelay))
	s.bytesPerSec.Store(bytesPerSec)
}

func (s *Slow) writeDelay(n int) {
	bps := s.bytesPerSec.Load()
	if bps <= 0 || n <= 0 {
		return
	}
	owed := s.owedNS.Add(int64(n) * int64(time.Second) / bps)
	if owed >= int64(time.Millisecond) && s.owedNS.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
	}
}

// Create implements FS.
func (s *Slow) Create(name string) (File, error) { return s.wrap(s.fs.Create(name)) }

// Open implements FS.
func (s *Slow) Open(name string) (File, error) { return s.wrap(s.fs.Open(name)) }

// Append implements FS.
func (s *Slow) Append(name string) (File, error) { return s.wrap(s.fs.Append(name)) }

// OpenRW implements FS.
func (s *Slow) OpenRW(name string) (File, error) { return s.wrap(s.fs.OpenRW(name)) }

// Rename implements FS.
func (s *Slow) Rename(oldname, newname string) error { return s.fs.Rename(oldname, newname) }

// Remove implements FS.
func (s *Slow) Remove(name string) error { return s.fs.Remove(name) }

// List implements FS.
func (s *Slow) List() ([]string, error) { return s.fs.List() }

// Stat implements FS.
func (s *Slow) Stat(name string) (int64, error) { return s.fs.Stat(name) }

func (s *Slow) wrap(f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, fs: s}, nil
}

type slowFile struct {
	File
	fs *Slow
}

func (f *slowFile) Write(p []byte) (int, error) {
	f.fs.writeDelay(len(p))
	return f.File.Write(p)
}

func (f *slowFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.writeDelay(len(p))
	return f.File.WriteAt(p, off)
}

func (f *slowFile) Sync() error {
	if d := f.fs.syncDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return f.File.Sync()
}
