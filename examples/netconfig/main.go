// Netconfig: the paper's "network name servers, network configuration
// information" example, using the name-server layer directly — a tree of
// hash tables holding hosts, addresses and service records, replicated to a
// second server, with a hard-error restore.
//
// Run with:
//
//	go run ./examples/netconfig
package main

import (
	"fmt"
	"log"
	"net"

	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

func main() {
	// Two replicas, connected by the RPC layer over in-memory pipes (use
	// cmd/nsd for real TCP daemons).
	fsA := vfs.NewMem(1)
	alpha, err := replica.Open(replica.Config{Name: "alpha", FS: fsA, HistoryCap: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer alpha.Close()
	fsB := vfs.NewMem(2)
	beta, err := replica.Open(replica.Config{Name: "beta", FS: fsB, HistoryCap: 1000})
	if err != nil {
		log.Fatal(err)
	}

	srvA, srvB := rpc.NewServer(), rpc.NewServer()
	srvA.Register("Replica", replica.NewService(alpha))
	srvB.Register("Replica", replica.NewService(beta))
	defer srvA.Close()
	defer srvB.Close()

	dial := func(srv *rpc.Server) *rpc.Client {
		c, s := net.Pipe()
		go srv.ServeConn(s)
		return rpc.NewClient(c)
	}
	alpha.AddPeer("beta", dial(srvB))
	toAlpha := dial(srvA)
	defer toAlpha.Close()

	// Populate network configuration at alpha; propagation carries it to
	// beta.
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(alpha.Set("net/hosts/gva/addr", "16.4.0.1"))
	must(alpha.Set("net/hosts/gva/os", "ultrix"))
	must(alpha.Set("net/hosts/src/addr", "16.4.0.2"))
	must(alpha.Set("net/services/nameserver/port", "7001"))
	must(alpha.Set("net/services/mail/port", "25"))
	must(alpha.Set("net/routes/default", "16.4.0.254"))

	v, err := beta.Lookup("net/hosts/gva/addr")
	must(err)
	fmt.Println("beta sees gva at", v)

	// Browse the tree the way nsctl enumerate does.
	fmt.Println("alpha's services:")
	for _, svc := range []string{"nameserver", "mail"} {
		port, err := alpha.Lookup("net/services/" + svc + "/port")
		must(err)
		fmt.Printf("  %s: port %s\n", svc, port)
	}

	// Hard error at beta: its disk dies entirely. Restore from alpha,
	// losing nothing (everything had propagated).
	beta.Close()
	fsB2 := vfs.NewMem(99)
	beta2, err := replica.Open(replica.Config{Name: "beta", FS: fsB2, HistoryCap: 1000})
	must(err)
	defer beta2.Close()
	must(beta2.RestoreFromPeer(toAlpha))

	v, err = beta2.Lookup("net/routes/default")
	must(err)
	fmt.Println("beta restored from alpha; default route =", v)

	vec, _ := beta2.Vector()
	fmt.Printf("beta's version vector after restore: %v\n", vec)
}
