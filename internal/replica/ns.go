package replica

import (
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
)

// NSService adapts a replica node to the same "NS" RPC service an
// unreplicated name server exposes, so clients (nsctl, benchmarks) talk to
// replicated and unreplicated daemons identically. Updates commit locally
// — the paper's ack-after-one-replica rule — and propagate by push and
// anti-entropy.
type NSService struct {
	node *Node
}

// NewNSService returns the NS-compatible RPC service for a node.
func NewNSService(n *Node) *NSService { return &NSService{node: n} }

// Lookup serves the remote enquiry.
func (s *NSService) Lookup(args *nameserver.LookupArgs, reply *nameserver.LookupReply) error {
	v, err := s.node.Lookup(args.Name)
	reply.Value = v
	return err
}

// Set serves the remote update, carrying the caller's trace through the
// local commit and on to the peer push.
func (s *NSService) Set(args *nameserver.SetArgs, reply *nameserver.SetReply, sc obs.SpanContext) error {
	return s.node.SetTraced(args.Name, args.Value, sc)
}

// Delete serves the remote delete.
func (s *NSService) Delete(args *nameserver.DeleteArgs, reply *nameserver.DeleteReply, sc obs.SpanContext) error {
	return s.node.DeleteTraced(args.Name, sc)
}

// GroupNSService is the NS RPC face of a quorum-commit group member:
// updates ack at the group's write quorum instead of after the lone local
// commit; enquiries still answer from the local member (use the Replica
// service's Read for bounded-staleness enquiries with a MinSeq floor).
type GroupNSService struct {
	group *Group
}

// NewGroupNSService returns the NS-compatible RPC service for a group.
func NewGroupNSService(g *Group) *GroupNSService { return &GroupNSService{group: g} }

// Lookup serves the remote enquiry from the local member.
func (s *GroupNSService) Lookup(args *nameserver.LookupArgs, reply *nameserver.LookupReply) error {
	v, err := s.group.Node().Lookup(args.Name)
	reply.Value = v
	return err
}

// Set serves the remote update at quorum.
func (s *GroupNSService) Set(args *nameserver.SetArgs, reply *nameserver.SetReply, sc obs.SpanContext) error {
	return s.group.SetTraced(args.Name, args.Value, sc)
}

// Delete serves the remote delete at quorum.
func (s *GroupNSService) Delete(args *nameserver.DeleteArgs, reply *nameserver.DeleteReply, sc obs.SpanContext) error {
	return s.group.DeleteTraced(args.Name, sc)
}
