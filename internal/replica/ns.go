package replica

import "smalldb/internal/nameserver"

// NSService adapts a replica node to the same "NS" RPC service an
// unreplicated name server exposes, so clients (nsctl, benchmarks) talk to
// replicated and unreplicated daemons identically. Updates commit locally
// — the paper's ack-after-one-replica rule — and propagate by push and
// anti-entropy.
type NSService struct {
	node *Node
}

// NewNSService returns the NS-compatible RPC service for a node.
func NewNSService(n *Node) *NSService { return &NSService{node: n} }

// Lookup serves the remote enquiry.
func (s *NSService) Lookup(args *nameserver.LookupArgs, reply *nameserver.LookupReply) error {
	v, err := s.node.Lookup(args.Name)
	reply.Value = v
	return err
}

// Set serves the remote update.
func (s *NSService) Set(args *nameserver.SetArgs, reply *nameserver.SetReply) error {
	return s.node.Set(args.Name, args.Value)
}

// Delete serves the remote delete.
func (s *NSService) Delete(args *nameserver.DeleteArgs, reply *nameserver.DeleteReply) error {
	return s.node.Delete(args.Name)
}
