package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Causal tracing. A trace is the set of events sharing one TraceID — one
// logical operation (a client update, an anti-entropy round) followed
// across goroutines, subsystems, and the RPC wire. Each timed region is a
// span: it has its own SpanID, a Parent linking it into the tree, and is
// recorded as an ordinary Event when it ends, so every existing Tracer
// (Recorder, SlowOps, flight recorder) sees spans for free.
//
// The API is deliberately minimal and allocation-free when disabled: a
// Span is a small value, StartSpan on a nil/Nop tracer or a zero parent
// returns the zero Span, and End on the zero Span is a no-op.

// A TraceID identifies one causal trace; zero means "untraced".
type TraceID uint64

// A SpanID identifies one span within a trace; zero means "no span".
type SpanID uint64

// A SpanContext is the portable part of a span: enough to parent children
// to it, locally or across the RPC wire.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context belongs to a real trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// idCounter feeds newID; idSeed decorrelates IDs across processes without
// needing a random source on the hot path.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano()) | 1
)

// newID returns a non-zero pseudo-random 64-bit ID: an atomic counter fed
// through a splitmix64 finalizer, seeded per process. Cheap (one atomic
// add, a few multiplies), collision-resistant enough for debugging traces.
func newID() uint64 {
	for {
		x := idCounter.Add(1) + idSeed
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewRootContext mints a fresh trace with a root span, independent of any
// tracer. Clients use it to stamp an outgoing request so the server-side
// spans all land in one trace even though the client records nothing.
func NewRootContext() SpanContext {
	return SpanContext{Trace: TraceID(newID()), Span: SpanID(newID())}
}

// NewSpanID mints a fresh span ID, for callers that assemble span Events
// by hand (already holding the timestamps) instead of going through
// StartSpan/End.
func NewSpanID() SpanID { return SpanID(newID()) }

// A Span is an in-progress timed region. The zero Span is a valid no-op:
// End does nothing and Context returns the zero SpanContext.
type Span struct {
	tracer Tracer
	name   string
	start  time.Time
	ctx    SpanContext
	parent SpanID
}

// Context returns the span's context, for parenting children or sending
// across the wire.
func (s Span) Context() SpanContext { return s.ctx }

// Active reports whether the span will record anything (false for the
// zero, no-op Span).
func (s Span) Active() bool { return s.tracer != nil }

// StartSpan begins a span named name under parent. It returns the zero
// (no-op) Span when t is nil or Nop or parent carries no trace, so an
// untraced call path pays two comparisons and allocates nothing.
func StartSpan(t Tracer, parent SpanContext, name string) Span {
	if t == nil || t == Nop || parent.Trace == 0 {
		return Span{}
	}
	return Span{
		tracer: t,
		name:   name,
		start:  time.Now(),
		ctx:    SpanContext{Trace: parent.Trace, Span: SpanID(newID())},
		parent: parent.Span,
	}
}

// StartRoot begins a new trace rooted at a fresh span. It returns the zero
// Span when t is nil or Nop.
func StartRoot(t Tracer, name string) Span {
	if t == nil || t == Nop {
		return Span{}
	}
	return Span{
		tracer: t,
		name:   name,
		start:  time.Now(),
		ctx:    NewRootContext(),
	}
}

// End finishes the span, emitting it as an Event whose Time is the span's
// start, Dur its elapsed time, and Trace/Span/Parent its identity. err and
// attrs annotate the event. End on the zero Span does nothing.
func (s Span) End(err error, attrs ...Attr) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{
		Name:   s.name,
		Time:   s.start,
		Dur:    time.Since(s.start),
		Err:    err,
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
		Attrs:  attrs,
	})
}

// A TraceBuffer is a Tracer that collects recent traced events (those with
// a non-zero TraceID) in a ring, indexed so a whole trace can be pulled
// out by ID — the span collector behind /debug/trace and `nsctl trace`.
type TraceBuffer struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
}

// NewTraceBuffer returns a TraceBuffer keeping the most recent n traced
// events.
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = 1024
	}
	return &TraceBuffer{ring: make([]Event, n)}
}

// Emit implements Tracer; untraced events are dropped.
func (b *TraceBuffer) Emit(e Event) {
	if e.Trace == 0 {
		return
	}
	b.mu.Lock()
	b.ring[b.next] = e
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.filled = true
	}
	b.mu.Unlock()
}

// all returns the buffered events, oldest first. Caller must hold b.mu.
func (b *TraceBuffer) all() []Event {
	if !b.filled {
		return b.ring[:b.next]
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Trace returns every buffered event belonging to id, oldest first.
func (b *TraceBuffer) Trace(id TraceID) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, e := range b.all() {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// TraceSummary describes one trace present in the buffer.
type TraceSummary struct {
	Trace  TraceID
	Root   string // name of the first (oldest) event seen for the trace
	Events int
	Start  time.Time
}

// Traces lists the distinct traces in the buffer, most recent first.
func (b *TraceBuffer) Traces() []TraceSummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := make(map[TraceID]int)
	var out []TraceSummary
	for _, e := range b.all() {
		i, ok := idx[e.Trace]
		if !ok {
			idx[e.Trace] = len(out)
			out = append(out, TraceSummary{Trace: e.Trace, Root: e.Name, Events: 1, Start: e.Time})
			continue
		}
		out[i].Events++
		if !e.Time.IsZero() && (out[i].Start.IsZero() || e.Time.Before(out[i].Start)) {
			out[i].Start = e.Time
			out[i].Root = e.Name
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// WriteTimeline renders a trace's events as an indented timeline: one line
// per span, sorted by start time, indented by parent depth, with the
// offset from the trace's first event and each span's duration. Events
// whose Parent is absent from the set (the roots, or spans whose parent
// fell out of the ring) start at depth zero.
func WriteTimeline(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	t0 := evs[0].Time
	parent := make(map[SpanID]SpanID, len(evs))
	for _, e := range evs {
		if e.Span != 0 {
			parent[e.Span] = e.Parent
		}
	}
	depthOf := func(id SpanID) int {
		d := 0
		for id != 0 {
			p, ok := parent[id]
			if !ok || d > len(evs) { // absent parent or a cycle: stop
				break
			}
			id = p
			if id != 0 {
				d++
			}
		}
		return d
	}
	for _, e := range evs {
		d := 0
		if e.Parent != 0 {
			if _, ok := parent[e.Parent]; ok {
				d = depthOf(e.Parent) + 1
			}
		}
		off := e.Time.Sub(t0)
		fmt.Fprintf(w, "%10s  %*s%s", off.Round(time.Microsecond), 2*d, "", e.Name)
		if e.Dur != 0 {
			fmt.Fprintf(w, " (%v)", e.Dur.Round(time.Microsecond))
		}
		for _, a := range e.Attrs {
			fmt.Fprintf(w, " %s=%v", a.Key, a.Value)
		}
		if e.Err != nil {
			fmt.Fprintf(w, " err=%q", e.Err.Error())
		}
		fmt.Fprintln(w)
	}
}
