// Command nsctl is the name-server client: the browsing and modification
// user interface of the paper's §6, speaking the RPC protocol to an nsd.
//
// Usage:
//
//	nsctl -addr localhost:7001 set net/hosts/gva 16.4.0.1
//	nsctl -addr localhost:7001 lookup net/hosts/gva
//	nsctl -addr localhost:7001 list net/hosts
//	nsctl -addr localhost:7001 enumerate net
//	nsctl -addr localhost:7001 delete net/hosts/gva
//	nsctl -addr localhost:7001 trace net/hosts/gva 16.4.0.1
//	nsctl -addr localhost:7002 read net/hosts/gva 1042
//
// The read command is the bounded-staleness enquiry against any replica
// group member: it carries a minimum durable frontier (typically the
// frontier a previous read reported), the member catches up or refuses if
// it cannot serve at that floor, and the reply names the frontier actually
// served — feed it to the next read for monotonic reads across members.
//
// The trace command issues one traced set and prints the server-side
// commit timeline for it — lock wait, pickle, log append and sync, and
// (on a replicated daemon) the push to each peer with its remote apply.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: nsctl -addr host:port <command> [args]

commands:
  lookup <name>            print the value bound to name
  set <name> <value>       bind value to name
  delete <name>            remove name and its subtree
  list <name>              print the child labels under name
  enumerate <name>         print every name=value at or below name
  read <name> [min-seq]    bounded-staleness read from a replica group
                           member: serve name at durable frontier
                           >= min-seq or fail stale; prints the value
                           and the frontier served
  trace <name> [value]     set name (to value, or back to its current
                           value) under a fresh trace and print the
                           server's commit timeline for it
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "localhost:7001", "name server address")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	client, err := rpc.Dial(*addr)
	if err != nil {
		fatal("dial %s: %v", *addr, err)
	}
	defer client.Close()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "lookup":
		need(rest, 1)
		var reply nameserver.LookupReply
		if err := client.Call("NS.Lookup", &nameserver.LookupArgs{Name: rest[0]}, &reply); err != nil {
			fatal("lookup: %v", err)
		}
		fmt.Println(reply.Value)
	case "set":
		need(rest, 2)
		if err := client.Call("NS.Set", &nameserver.SetArgs{Name: rest[0], Value: rest[1]}, &nameserver.SetReply{}); err != nil {
			fatal("set: %v", err)
		}
	case "delete":
		need(rest, 1)
		if err := client.Call("NS.Delete", &nameserver.DeleteArgs{Name: rest[0]}, &nameserver.DeleteReply{}); err != nil {
			fatal("delete: %v", err)
		}
	case "list":
		need(rest, 1)
		var reply nameserver.ListReply
		if err := client.Call("NS.List", &nameserver.ListArgs{Name: rest[0]}, &reply); err != nil {
			fatal("list: %v", err)
		}
		for _, l := range reply.Labels {
			fmt.Println(l)
		}
	case "enumerate":
		need(rest, 1)
		var reply nameserver.EnumerateReply
		if err := client.Call("NS.Enumerate", &nameserver.EnumerateArgs{Name: rest[0]}, &reply); err != nil {
			fatal("enumerate: %v", err)
		}
		for i, n := range reply.Names {
			fmt.Printf("%s=%s\n", n, reply.Values[i])
		}
	case "read":
		if len(rest) != 1 && len(rest) != 2 {
			usage()
		}
		var minSeq uint64
		if len(rest) == 2 {
			var err error
			if minSeq, err = strconv.ParseUint(rest[1], 10, 64); err != nil {
				fatal("read: bad min-seq %q: %v", rest[1], err)
			}
		}
		var reply replica.ReadReply
		if err := client.Call("Replica.Read", &replica.ReadArgs{Name: rest[0], MinSeq: minSeq}, &reply); err != nil {
			fatal("read: %v", err)
		}
		if reply.Stale {
			fatal("read: stale: member %s frontier %d below min-seq %d; retry against a fresher member", reply.Node, reply.Frontier, minSeq)
		}
		fmt.Println(reply.Value)
		fmt.Fprintf(os.Stderr, "nsctl: frontier %d served by %s\n", reply.Frontier, reply.Node)
	case "trace":
		if len(rest) != 1 && len(rest) != 2 {
			usage()
		}
		name := rest[0]
		value := "trace-probe"
		if len(rest) == 2 {
			value = rest[1]
		} else {
			// Rewrite the current value when there is one, so the probe
			// does not change the database.
			var lr nameserver.LookupReply
			if err := client.Call("NS.Lookup", &nameserver.LookupArgs{Name: name}, &lr); err == nil {
				value = lr.Value
			}
		}
		sc := obs.NewRootContext()
		if err := client.CallTraced(sc, "NS.Set", &nameserver.SetArgs{Name: name, Value: value}, &nameserver.SetReply{}); err != nil {
			fatal("trace: set: %v", err)
		}
		var reply nameserver.TraceReply
		if err := client.Call("Trace.Get", &nameserver.TraceArgs{Trace: uint64(sc.Trace)}, &reply); err != nil {
			fatal("trace: fetch: %v", err)
		}
		events := make([]obs.Event, 0, len(reply.Events))
		for _, te := range reply.Events {
			events = append(events, te.Event())
		}
		fmt.Printf("trace %016x: %d events\n", uint64(sc.Trace), len(events))
		obs.WriteTimeline(os.Stdout, events)
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nsctl: "+format+"\n", args...)
	os.Exit(1)
}
