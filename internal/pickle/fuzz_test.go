package pickle

import (
	"math"
	"reflect"
	"testing"
)

// fuzzNode is the struct the fuzzer round-trips: it covers scalars,
// strings, slices, maps, pointers, nested structs and a shared/cyclic
// pointer position — the shapes the log and checkpoint encoders rely on.
type fuzzNode struct {
	B   bool
	I   int64
	U   uint32
	F   float64
	S   string
	Bs  []byte
	Ss  []string
	M   map[string]int32
	Sub *fuzzNode
	// Next may alias Sub or the node itself, exercising the pickle
	// package's address-identity preservation.
	Next *fuzzNode
}

// fuzzGen derives values deterministically from the fuzzer's byte string:
// every input is a valid generator program, so coverage guidance explores
// the value space instead of getting stuck on parse errors.
type fuzzGen struct {
	data []byte
	pos  int
}

func (g *fuzzGen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *fuzzGen) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(g.byte())
	}
	return v
}

func (g *fuzzGen) str() string {
	n := int(g.byte()) % 12
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a' + g.byte()%26
	}
	return string(b)
}

// node builds a tree of bounded depth. NaN is avoided: it round-trips as a
// NaN but breaks reflect.DeepEqual, which would be a false alarm.
func (g *fuzzGen) node(depth int) *fuzzNode {
	n := &fuzzNode{
		B:  g.byte()%2 == 0,
		I:  int64(g.u64()),
		U:  uint32(g.u64()),
		S:  g.str(),
		Bs: []byte(g.str()),
	}
	f := math.Float64frombits(g.u64())
	if !math.IsNaN(f) {
		n.F = f
	}
	for i := int(g.byte()) % 4; i > 0; i-- {
		n.Ss = append(n.Ss, g.str())
	}
	if g.byte()%2 == 0 {
		n.M = make(map[string]int32)
		for i := int(g.byte()) % 4; i > 0; i-- {
			n.M[g.str()] = int32(g.u64())
		}
	}
	if depth < 3 && g.byte()%3 == 0 {
		n.Sub = g.node(depth + 1)
	}
	switch g.byte() % 4 {
	case 0:
		n.Next = n // cycle back to self
	case 1:
		n.Next = n.Sub // shared pointer (nil-safe)
	}
	return n
}

// FuzzRoundTrip checks decode(encode(x)) == x for generated structures.
// Pointer identity must also survive: if Next aliased Sub (or the root) on
// the way in, it must alias it on the way out.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255,
		3, 'x', 'y', 'z', 1, 0, 2, 9, 9, 9, 9, 9, 9, 9, 9, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := (&fuzzGen{data: data}).node(0)
		raw, err := Marshal(in)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		var out *fuzzNode
		if err := Unmarshal(raw, &out); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		// Compare acyclically: break the Next alias on both sides after
		// verifying it points where it did on the way in.
		switch in.Next {
		case in:
			if out.Next != out {
				t.Fatal("self-cycle not preserved")
			}
		case nil:
		default: // aliased in.Sub
			if in.Sub != nil && out.Next != out.Sub {
				t.Fatal("shared pointer not preserved")
			}
		}
		in.Next, out.Next = nil, nil
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	})
}
