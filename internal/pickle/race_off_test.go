//go:build !race

package pickle

const raceEnabled = false
