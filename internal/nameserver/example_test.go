package nameserver_test

import (
	"fmt"

	"smalldb/internal/nameserver"
	"smalldb/internal/vfs"
)

func Example() {
	// The paper's worked example: a name server whose database is a tree
	// of hash tables, one disk write per update, no disk per enquiry.
	fs := vfs.NewMem(1)
	ns, err := nameserver.Open(nameserver.Config{FS: fs, Retain: 1})
	if err != nil {
		panic(err)
	}

	ns.Set("net/hosts/gva/addr", "16.4.0.1")
	ns.Set("net/hosts/src/addr", "16.4.0.2")
	ns.Set("net/services/mail/port", "25")

	addr, _ := ns.Lookup("net/hosts/gva/addr")
	fmt.Println("gva:", addr)

	hosts, _ := ns.List("net/hosts")
	fmt.Println("hosts:", hosts)

	// Browse a subtree (the paper's enumeration operations).
	ns.Enumerate("net/services", func(name, value string) error {
		fmt.Printf("%s = %s\n", name, value)
		return nil
	})

	// Crash and recover: the checkpoint+log machinery is underneath.
	ns.Close()
	fs.Crash()
	ns2, err := nameserver.Open(nameserver.Config{FS: fs, Retain: 1})
	if err != nil {
		panic(err)
	}
	defer ns2.Close()
	addr, _ = ns2.Lookup("net/hosts/src/addr")
	fmt.Println("src after crash:", addr)
	// Output:
	// gva: 16.4.0.1
	// hosts: [gva src]
	// net/services/mail/port = 25
	// src after crash: 16.4.0.2
}
