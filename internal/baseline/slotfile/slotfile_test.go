package slotfile

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"smalldb/internal/vfs"
)

func create(t *testing.T, slots int) (*File, *vfs.Mem) {
	t.Helper()
	fs := vfs.NewMem(1)
	sf, err := Create(fs, "db", slots)
	if err != nil {
		t.Fatal(err)
	}
	return sf, fs
}

func TestPutLookupDelete(t *testing.T) {
	sf, _ := create(t, 16)
	defer sf.Close()
	if err := sf.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := sf.Lookup("a")
	if err != nil || !ok || v != "1" {
		t.Fatalf("got %q %v %v", v, ok, err)
	}
	if _, ok, _ := sf.Lookup("missing"); ok {
		t.Error("found missing key")
	}
	if found, err := sf.Delete("a"); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := sf.Lookup("a"); ok {
		t.Error("deleted key still found")
	}
	if found, _ := sf.Delete("a"); found {
		t.Error("double delete reported found")
	}
}

func TestOverwrite(t *testing.T) {
	sf, _ := create(t, 16)
	defer sf.Close()
	sf.Put("k", "v1")
	sf.Put("k", "v2")
	if v, _, _ := sf.Lookup("k"); v != "v2" {
		t.Errorf("got %q", v)
	}
	if sf.Used() != 1 {
		t.Errorf("used %d", sf.Used())
	}
}

func TestTombstoneReuseAndProbing(t *testing.T) {
	sf, _ := create(t, 8)
	defer sf.Close()
	// Force collisions in a tiny table; interleave deletes.
	keys := []string{"k1", "k2", "k3", "k4"}
	for _, k := range keys {
		sf.Put(k, "v-"+k)
	}
	sf.Delete("k2")
	sf.Put("k5", "v-k5")
	for _, k := range []string{"k1", "k3", "k4", "k5"} {
		if v, ok, _ := sf.Lookup(k); !ok || v != "v-"+k {
			t.Errorf("%s: %q %v", k, v, ok)
		}
	}
	if _, ok, _ := sf.Lookup("k2"); ok {
		t.Error("deleted key found")
	}
}

func TestGrowth(t *testing.T) {
	sf, _ := create(t, 4)
	defer sf.Close()
	for i := 0; i < 100; i++ {
		if err := sf.Put(fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		if v, ok, _ := sf.Lookup(fmt.Sprintf("key%d", i)); !ok || v != fmt.Sprintf("val%d", i) {
			t.Fatalf("key%d: %q %v", i, v, ok)
		}
	}
	if sf.Used() != 100 {
		t.Errorf("used %d", sf.Used())
	}
}

func TestReopen(t *testing.T) {
	fs := vfs.NewMem(1)
	sf, err := Create(fs, "db", 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sf.Put(fmt.Sprintf("k%d", i), "v")
	}
	sf.Close()
	sf2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer sf2.Close()
	if sf2.Used() != 10 {
		t.Errorf("used %d after reopen", sf2.Used())
	}
	if v, ok, _ := sf2.Lookup("k7"); !ok || v != "v" {
		t.Errorf("k7: %q %v", v, ok)
	}
}

func TestLimits(t *testing.T) {
	sf, _ := create(t, 8)
	defer sf.Close()
	if err := sf.Put(strings.Repeat("k", MaxKeyLen+1), "v"); !errors.Is(err, ErrTooLarge) {
		t.Errorf("long key: %v", err)
	}
	if err := sf.Put("k", strings.Repeat("v", MaxValueLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("long value: %v", err)
	}
	if err := sf.Put("", "v"); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty key: %v", err)
	}
	// Max-size records fit exactly.
	k := strings.Repeat("k", MaxKeyLen)
	v := strings.Repeat("v", MaxValueLen)
	if err := sf.Put(k, v); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := sf.Lookup(k); !ok || got != v {
		t.Error("max-size record mangled")
	}
}

func TestNotASlotFile(t *testing.T) {
	fs := vfs.NewMem(1)
	vfs.WriteFile(fs, "junk", []byte("not a slot file at all"))
	if _, err := Open(fs, "junk"); err == nil {
		t.Error("opened junk")
	}
}

// The §2 hazard the paper warns about: in-place writes are not atomic
// across a crash. A logical update that touches several pages ("This is
// particularly true if the update modifies multiple pages") can land half
// done, and nothing in the file reveals it.
func TestMultiPageUpdateVulnerableToCrash(t *testing.T) {
	torn := false
	for seed := int64(0); seed < 60 && !torn; seed++ {
		fs := vfs.NewMem(seed)
		sf, _ := Create(fs, "db", 64)
		// A logical record split over two slots (as an ad-hoc schema
		// with an index slot + data slot would be).
		sf.Put("acct:balance", "old-balance")
		sf.Put("acct:updated", "old-stamp")
		// One logical update rewrites both in place; the crash hits
		// between/within the page flushes.
		sf.NoSync = true
		sf.Put("acct:balance", "new-balance")
		sf.Put("acct:updated", "new-stamp")
		sf.Close()
		fs.CrashTorn(512)

		sf2, err := Open(fs, "db")
		if err != nil {
			torn = true // file no longer even opens
			continue
		}
		bal, _, err1 := sf2.Lookup("acct:balance")
		stamp, _, err2 := sf2.Lookup("acct:updated")
		sf2.Close()
		if err1 != nil || err2 != nil {
			torn = true
			continue
		}
		balNew := bal == "new-balance"
		stampNew := stamp == "new-stamp"
		if balNew != stampNew {
			// Half the logical update applied, half lost — and the
			// database serves it as if nothing happened.
			torn = true
		}
	}
	if !torn {
		t.Error("no torn logical update over 60 seeds; the crash model is not exercising in-place writes")
	}
}

func TestQuickOracle(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		fs := vfs.NewMem(5)
		sf, err := Create(fs, "db", 8)
		if err != nil {
			return false
		}
		defer sf.Close()
		oracle := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key%d", o.Key%32)
			if o.Del {
				found, err := sf.Delete(k)
				if err != nil {
					return false
				}
				_, want := oracle[k]
				if found != want {
					return false
				}
				delete(oracle, k)
			} else {
				v := fmt.Sprintf("val%d", o.Val)
				if err := sf.Put(k, v); err != nil {
					return false
				}
				oracle[k] = v
			}
		}
		all, err := sf.All()
		if err != nil || len(all) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if all[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
