package lintest

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"smalldb/internal/nameserver"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// makeBoundedGroup wires a quorum-commit group — primary plus remote
// members over pipes — and returns it with every node (primary first) as a
// bounded-read member.
func makeBoundedGroup(t *testing.T, w int, names ...string) (*replica.Group, []*replica.Node) {
	t.Helper()
	cfg := replica.GroupConfig{
		Self:             names[0],
		W:                w,
		QuorumTimeout:    10 * time.Second,
		AntiEntropyEvery: 5 * time.Millisecond,
	}
	for _, name := range names {
		cfg.Members = append(cfg.Members, replica.Member{Name: name, Addr: "pipe"})
	}
	nodes := make([]*replica.Node, 0, len(names))
	var servers []*rpc.Server
	for i, name := range names {
		n, err := replica.Open(replica.Config{Name: name, FS: vfs.NewMem(int64(i + 1)), HistoryCap: 4096})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if i == 0 {
			continue
		}
		srv := rpc.NewServer()
		if err := srv.Register("Replica", replica.NewService(n)); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	g, err := replica.NewGroup(nodes[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes[1:] {
		cc, sc := net.Pipe()
		go servers[i].ServeConn(sc)
		if err := g.Connect(n.Name(), rpc.NewClient(cc)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		g.Close()
		for _, n := range nodes {
			n.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	})
	return g, nodes
}

// TestBoundedStalenessGroup is the satellite contract run: 32 readers
// rotating over all 5 members of a W=3 group, every read validated against
// the frontier witness with per-reader monotonic floors, zero violations.
func TestBoundedStalenessGroup(t *testing.T) {
	g, nodes := makeBoundedGroup(t, 3, "a", "b", "c", "d", "e")
	members := make([]BoundedMember, len(nodes))
	for i, n := range nodes {
		members[i] = n
	}
	ops := 400
	if testing.Short() {
		ops = 120
	}
	stats, err := RunBounded(g.Set, members, Config{Readers: 32, Ops: ops, Prefix: "bs"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != uint64(ops) {
		t.Fatalf("committed %d ops, want %d", stats.Ops, ops)
	}
	if stats.Reads < uint64(32) {
		t.Fatalf("only %d reads validated", stats.Reads)
	}
	t.Logf("ops=%d reads=%d redirects=%d stale=%d maxLag=%d",
		stats.Ops, stats.Reads, stats.Redirects, stats.Stale, stats.MaxLag)
}

// TestBoundedStalenessLaggard forces a member to fall behind mid-run so
// readers holding a higher floor must get ErrStale from it and redirect —
// the failover path — while anti-entropy repairs it underneath them.
func TestBoundedStalenessLaggard(t *testing.T) {
	g, nodes := makeBoundedGroup(t, 2, "a", "b", "c")
	members := make([]BoundedMember, len(nodes))
	for i, n := range nodes {
		members[i] = n
	}
	kicked := false
	write := func(name, value string) error {
		if err := g.Set(name, value); err != nil {
			return err
		}
		if !kicked {
			kicked = true
			g.MarkLagging("c")
		}
		return nil
	}
	stats, err := RunBounded(write, members, Config{Readers: 8, Ops: 200, Prefix: "bsl"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ops=%d reads=%d redirects=%d stale=%d maxLag=%d",
		stats.Ops, stats.Reads, stats.Redirects, stats.Stale, stats.MaxLag)
}

// lyingMember answers every read with an empty tree while claiming a
// nonzero durable frontier — exactly the incoherence the frontier witness
// must reject.
type lyingMember struct {
	calls atomic.Uint64
}

func (m *lyingMember) Name() string { return "liar" }

func (m *lyingMember) ReadAt(name string, minSeq uint64) (string, uint64, error) {
	// First call is RunBounded's base probe; answer honestly so the run
	// starts, then claim frontier 1 while holding nothing.
	if m.calls.Add(1) == 1 {
		return "", 0, nameserver.ErrNotFound
	}
	return "", 1, nameserver.ErrNotFound
}

// TestBoundedCatchesFrontierLie proves the checker has teeth: a member
// claiming frontier 1 while missing op 1's key must fail the run (as a
// frontier-witness violation, or as a read-from-the-future if the reader
// beats the writer to it).
func TestBoundedCatchesFrontierLie(t *testing.T) {
	write := func(name, value string) error { return nil }
	_, err := RunBounded(write, []BoundedMember{&lyingMember{}}, Config{Readers: 8, Ops: 16, Prefix: "bsx"})
	if err == nil {
		t.Fatal("a member serving an empty tree at frontier 1 passed the bounded-staleness check")
	}
	t.Logf("caught: %v", err)
}
