// Package replica replicates a name-server database across several nodes,
// the way the paper's name service handles hard failures: "we already
// replicate the database on multiple name servers spread across the
// network. We respond to a hard error on a particular name server replica
// by restoring its data from another replica. This causes us to lose only
// those updates that had been applied to the damaged replica but not
// propagated to any other replica" (§4).
//
// Each node is a full store (checkpoint + log) whose root embeds the
// replication metadata — a version vector, a Lamport clock, and a bounded
// history of recent updates — so that the metadata is exactly as
// crash-consistent as the data it describes. Every update carries (origin,
// sequence, stamp): a node applies a remote update only in per-origin
// sequence order, and conflicting value writes resolve by last-writer-wins
// on (stamp, origin) — the role timestamps play in the global name service
// this design fed into [Lampson 1986] — so replicas that have exchanged the
// same updates agree on every value regardless of delivery order.
//
// Three mechanisms keep replicas together:
//
//   - Propagation: after a local commit the node pushes the update to every
//     peer, best-effort.
//   - Anti-entropy: a periodic Pull exchanges version vectors and ships the
//     missing suffix from the peer's history — the paper's "automatic
//     mechanisms for ensuring the long-term consistency of the name server
//     replicas".
//   - Restore: a node whose disk is damaged beyond local recovery fetches a
//     full snapshot from a peer and rebuilds its store from scratch.
package replica

import (
	"errors"
	"fmt"
	"sort"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/pickle"
)

// Root is the replicated database root: the name tree plus replication
// metadata, checkpointed and logged together.
type Root struct {
	Tree *nameserver.Tree
	// Vector maps each origin node to the highest sequence applied here.
	Vector map[string]uint64
	// Clock is the node's Lamport clock: the highest stamp seen. Local
	// updates are stamped Clock+1, so a write that causally follows
	// another always carries a larger stamp, and last-writer-wins picks
	// it everywhere.
	Clock uint64
	// History holds the most recent updates, for anti-entropy; bounded
	// by HistoryCap.
	History    []Entry
	HistoryCap int
}

// SnapshotView implements core.VersionedRoot, so replica nodes serve
// lock-free snapshot enquiries too. The tree contributes its own
// copy-on-write view; the version vector is copied (Replicated.Apply
// mutates it in place); History may share its backing array with the
// writer because entries are immutable and the writer only ever appends
// past this snapshot's length or replaces the slice wholesale — the
// slots below len are never rewritten.
func (r *Root) SnapshotView() any {
	var tv *nameserver.Tree
	if r.Tree == nil {
		tv = nameserver.NewTree()
	} else {
		tv = r.Tree.SnapshotView().(*nameserver.Tree)
	}
	return &Root{
		Tree:       tv,
		Vector:     copyVector(r.Vector),
		Clock:      r.Clock,
		History:    r.History,
		HistoryCap: r.HistoryCap,
	}
}

// Entry is one replicated update: who issued it, its per-origin sequence,
// its Lamport stamp, and the underlying single-shot update.
type Entry struct {
	Origin string
	Seq    uint64
	Stamp  uint64
	Inner  core.Update
}

// DefaultHistoryCap bounds the per-node history when no cap is configured.
const DefaultHistoryCap = 4096

// NewRootWithCap returns a core.Config.NewRoot constructor with the given
// history bound.
func NewRootWithCap(cap int) func() any {
	if cap <= 0 {
		cap = DefaultHistoryCap
	}
	return func() any {
		return &Root{
			Tree:       nameserver.NewTree(),
			Vector:     make(map[string]uint64),
			HistoryCap: cap,
		}
	}
}

func init() {
	pickle.Register(&Root{})
	pickle.Register(Entry{})
	core.RegisterUpdate(&Replicated{})
}

// ErrAlreadyApplied marks an update the node has already seen; callers
// treat it as success.
var ErrAlreadyApplied = errors.New("replica: update already applied")

// ErrSequenceGap marks an update that arrived ahead of its predecessors
// from the same origin; anti-entropy must fill the gap first.
var ErrSequenceGap = errors.New("replica: sequence gap")

// Replicated wraps an inner update with its replication stamps; it is the
// only update type a replicated store logs.
type Replicated struct {
	Origin string
	Seq    uint64
	Stamp  uint64
	Inner  core.Update
}

// Verify implements core.Update: per-origin dedupe and ordering, then the
// inner update's own preconditions against the tree.
func (u *Replicated) Verify(root any) error {
	r, err := rootOf(root)
	if err != nil {
		return err
	}
	if u.Origin == "" || u.Seq == 0 {
		return fmt.Errorf("replica: update missing origin/sequence stamp")
	}
	applied := r.Vector[u.Origin]
	switch {
	case u.Seq <= applied:
		return fmt.Errorf("%w: %s/%d (have %d)", ErrAlreadyApplied, u.Origin, u.Seq, applied)
	case u.Seq > applied+1:
		return fmt.Errorf("%w: %s/%d (have %d)", ErrSequenceGap, u.Origin, u.Seq, applied)
	}
	if u.Inner == nil {
		return fmt.Errorf("replica: nil inner update")
	}
	return u.Inner.Verify(r.Tree)
}

// Apply implements core.Update. Value writes (SetValue) resolve conflicts
// by last-writer-wins on (Stamp, Origin): two replicas that have seen the
// same set of updates agree on every value no matter the delivery order.
// Structural updates (deletes, moves, subtree puts) apply in arrival
// order; a concurrent structural conflict resolves to a valid — but
// order-dependent — state, as in the paper's system before its timestamped
// successor.
func (u *Replicated) Apply(root any) error {
	r, err := rootOf(root)
	if err != nil {
		return err
	}
	if u.Stamp > r.Clock {
		r.Clock = u.Stamp
	}
	if set, ok := u.Inner.(*nameserver.SetValue); ok && u.Stamp > 0 {
		n := r.Tree.EnsureNode(set.Path)
		if newerWrite(u.Stamp, u.Origin, n) {
			n.Value = set.Value
			n.HasValue = true
			n.Stamp = u.Stamp
			n.StampBy = u.Origin
		}
	} else if err := u.Inner.Apply(r.Tree); err != nil {
		return err
	}
	if r.Vector == nil {
		r.Vector = make(map[string]uint64)
	}
	r.Vector[u.Origin] = u.Seq
	r.History = append(r.History, Entry{Origin: u.Origin, Seq: u.Seq, Stamp: u.Stamp, Inner: u.Inner})
	cap := r.HistoryCap
	if cap <= 0 {
		cap = DefaultHistoryCap
	}
	if len(r.History) > cap {
		r.History = append(r.History[:0:0], r.History[len(r.History)-cap:]...)
	}
	return nil
}

// newerWrite reports whether a write stamped (stamp, origin) supersedes the
// value currently on n.
func newerWrite(stamp uint64, origin string, n *nameserver.Node) bool {
	if !n.HasValue && n.Stamp == 0 {
		return true
	}
	if stamp != n.Stamp {
		return stamp > n.Stamp
	}
	return origin >= n.StampBy
}

func rootOf(root any) (*Root, error) {
	r, ok := root.(*Root)
	if !ok {
		return nil, fmt.Errorf("replica: root is %T, not *replica.Root", root)
	}
	if r.Tree == nil {
		r.Tree = nameserver.NewTree()
	}
	return r, nil
}

// missingFrom returns the entries of r.History that a holder of vector
// lacks, in per-origin sequence order, and whether the history has already
// dropped entries the caller needs (in which case only a full snapshot can
// help).
func (r *Root) missingFrom(vector map[string]uint64) (entries []Entry, needFull bool) {
	// Oldest surviving history seq per origin, to detect trimmed gaps.
	oldest := map[string]uint64{}
	for _, e := range r.History {
		if o, ok := oldest[e.Origin]; !ok || e.Seq < o {
			oldest[e.Origin] = e.Seq
		}
	}
	for origin, have := range r.Vector {
		theirs := vector[origin]
		if theirs >= have {
			continue
		}
		o, inHistory := oldest[origin]
		if !inHistory || o > theirs+1 {
			// History no longer reaches back to theirs+1.
			return nil, true
		}
	}
	for _, e := range r.History {
		if e.Seq > vector[e.Origin] {
			entries = append(entries, e)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Origin != entries[j].Origin {
			return entries[i].Origin < entries[j].Origin
		}
		return entries[i].Seq < entries[j].Seq
	})
	return entries, false
}

// copyVector snapshots a version vector.
func copyVector(v map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}
