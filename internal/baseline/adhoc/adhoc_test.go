package adhoc

import (
	"fmt"
	"testing"

	"smalldb/internal/vfs"
)

func TestBasicAndReopen(t *testing.T) {
	fs := vfs.NewMem(1)
	db, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := db.Update(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete("k7")
	db.Close()

	db2, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok, _ := db2.Lookup("k3"); !ok || v != "v3" {
		t.Errorf("k3: %q %v", v, ok)
	}
	if _, ok, _ := db2.Lookup("k7"); ok {
		t.Error("deleted key survived")
	}
	all, _ := db2.All()
	if len(all) != 29 {
		t.Errorf("records: %d", len(all))
	}
}

func TestOneSyncPerUpdate(t *testing.T) {
	// The ad-hoc baseline's defining cost: one disk write per update.
	fs := vfs.NewMem(1)
	db, err := Open(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	syncs := 0
	fs.FailSync = func(string) error { syncs++; return nil }
	before := syncs
	db.Update("k", "v")
	if got := syncs - before; got != 1 {
		t.Errorf("update cost %d syncs, want 1", got)
	}
}
