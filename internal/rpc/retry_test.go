package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smalldb/internal/netsim"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// CountSvc counts executions so tests can observe at-most-once semantics.
type CountSvc struct {
	mu    sync.Mutex
	calls map[string]int
}

type CountArgs struct{ Key string }
type CountReply struct{ N int }

func init() {
	pickle.Register(&CountArgs{})
	pickle.Register(&CountReply{})
}

func (s *CountSvc) Bump(arg *CountArgs, reply *CountReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.calls == nil {
		s.calls = make(map[string]int)
	}
	s.calls[arg.Key]++
	reply.N = s.calls[arg.Key]
	return nil
}

func (s *CountSvc) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[key]
}

// newCountServer returns a server exposing CountSvc as "Count".
func newCountServer(t *testing.T) (*Server, *CountSvc) {
	t.Helper()
	srv := NewServer()
	svc := &CountSvc{}
	if err := srv.Register("Count", svc); err != nil {
		t.Fatal(err)
	}
	return srv, svc
}

// TestDialerReconnect kills the live connection out from under the client
// and checks that the next call transparently redials.
func TestDialerReconnect(t *testing.T) {
	srv, _ := newCountServer(t)
	var mu sync.Mutex
	var serverEnd net.Conn
	dial := func() (io.ReadWriteCloser, error) {
		cli, s := net.Pipe()
		mu.Lock()
		serverEnd = s
		mu.Unlock()
		go srv.ServeConn(s)
		return cli, nil
	}
	c := NewClientDialer(dial)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	defer c.Close()

	var reply CountReply
	if err := c.Call("Count.Bump", &CountArgs{Key: "a"}, &reply); err != nil {
		t.Fatal(err)
	}
	// Sever the connection server-side.
	mu.Lock()
	serverEnd.Close()
	mu.Unlock()
	// The next call may race the readLoop noticing; retry absorbs it.
	if err := c.CallRetry("Count.Bump", &CountArgs{Key: "a"}, &reply, RetryPolicy{}); err != nil {
		t.Fatalf("call after conn death: %v", err)
	}
	if reply.N != 2 {
		t.Fatalf("reply.N = %d, want 2", reply.N)
	}
	if reg.Counter("rpc_reconnects").Value() == 0 {
		t.Error("rpc_reconnects not counted")
	}
}

// TestCallRetryAbsorbsDialFailures makes the first dials fail and checks
// CallRetry keeps trying until one succeeds.
func TestCallRetryAbsorbsDialFailures(t *testing.T) {
	srv, _ := newCountServer(t)
	var attempts atomic.Int64
	dial := func() (io.ReadWriteCloser, error) {
		if attempts.Add(1) <= 3 {
			return nil, errors.New("connection refused")
		}
		cli, s := net.Pipe()
		go srv.ServeConn(s)
		return cli, nil
	}
	c := NewClientDialer(dial)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	defer c.Close()

	var reply CountReply
	err := c.CallRetry("Count.Bump", &CountArgs{Key: "k"}, &reply, RetryPolicy{BaseDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("dial attempts = %d, want 4", got)
	}
	if reg.Counter("rpc_retries").Value() < 3 {
		t.Errorf("rpc_retries = %d, want >= 3", reg.Counter("rpc_retries").Value())
	}
}

// TestCallRetryBudgetExhausted checks a permanently dead endpoint fails
// within the budget with a retryable-classified error.
func TestCallRetryBudgetExhausted(t *testing.T) {
	c := NewClientDialer(func() (io.ReadWriteCloser, error) {
		return nil, errors.New("down")
	})
	defer c.Close()
	start := time.Now()
	err := c.CallRetry("Count.Bump", &CountArgs{}, nil, RetryPolicy{Budget: 50 * time.Millisecond, BaseDelay: time.Millisecond})
	if err == nil {
		t.Fatal("call against dead endpoint succeeded")
	}
	if !Retryable(err) {
		t.Fatalf("exhaustion error not classified retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("budget of 50ms took %v", elapsed)
	}
}

// TestCallRetryStopsOnServerError checks that a server-side error is final:
// the method executed, so retrying must not re-execute it.
func TestCallRetryStopsOnServerError(t *testing.T) {
	srv := NewServer()
	svc := &errSvc{}
	if err := srv.Register("Err", svc); err != nil {
		t.Fatal(err)
	}
	cli, s := net.Pipe()
	go srv.ServeConn(s)
	c := NewClient(cli)
	defer c.Close()
	err := c.CallRetry("Err.Fail", &CountArgs{}, nil, RetryPolicy{})
	var se ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}
	if n := svc.calls.Load(); n != 1 {
		t.Fatalf("method executed %d times, want 1", n)
	}
}

type errSvc struct{ calls atomic.Int64 }

func (s *errSvc) Fail(arg *CountArgs, reply *CountReply) error {
	s.calls.Add(1)
	return errors.New("boom")
}

// TestTimeoutRemovesPending is the regression test for the pending-map
// leak: a timed-out call must not leave its entry behind, and the late
// response must be discarded without wedging the read loop.
func TestTimeoutRemovesPending(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	if err := srv.Register("Slow", &slowSvc{block: block}); err != nil {
		t.Fatal(err)
	}
	cli, s := net.Pipe()
	go srv.ServeConn(s)
	c := NewClient(cli)
	defer c.Close()
	reg := obs.NewRegistry()
	c.Instrument(reg)

	err := c.CallTimeout("Slow.Wait", &CountArgs{}, nil, 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Fatalf("pending map holds %d entries after timeout, want 0", n)
	}
	if reg.Counter("rpc_timeouts").Value() != 1 {
		t.Errorf("rpc_timeouts = %d, want 1", reg.Counter("rpc_timeouts").Value())
	}
	// Release the slow handler; its late response must be discarded and
	// the connection must remain usable.
	close(block)
	var reply CountReply
	if err := c.CallTimeout("Slow.Quick", &CountArgs{}, &reply, time.Second); err != nil {
		t.Fatalf("call after discarded late response: %v", err)
	}
}

type slowSvc struct{ block chan struct{} }

func (s *slowSvc) Wait(arg *CountArgs, reply *CountReply) error {
	<-s.block
	return nil
}

func (s *slowSvc) Quick(arg *CountArgs, reply *CountReply) error { return nil }

// TestConnDeathFailsPending checks the other half of the audit: when the
// connection dies, every call in flight on it fails promptly with
// ErrDisconnected instead of wedging forever, and the pending map drains.
func TestConnDeathFailsPending(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	defer close(block)
	if err := srv.Register("Slow", &slowSvc{block: block}); err != nil {
		t.Fatal(err)
	}
	cli, s := net.Pipe()
	go srv.ServeConn(s)
	c := NewClient(cli)
	defer c.Close()

	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			errs <- c.Call("Slow.Wait", &CountArgs{}, nil)
		}()
	}
	// Wait for all calls to be in flight.
	deadline := time.Now().Add(2 * time.Second)
	for c.PendingCalls() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d calls in flight", c.PendingCalls())
		}
		time.Sleep(time.Millisecond)
	}
	cli.Close()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, ErrDisconnected) && !errors.Is(err, ErrShutdown) {
			t.Fatalf("in-flight call after conn death: %v", err)
		}
	}
	if got := c.PendingCalls(); got != 0 {
		t.Fatalf("pending map holds %d entries after conn death, want 0", got)
	}
}

// TestIdempotencyDedupe forces a retry whose first attempt executed but
// whose response was lost, and checks the server runs the method once and
// replays the cached response.
func TestIdempotencyDedupe(t *testing.T) {
	srv, svc := newCountServer(t)
	reg := obs.NewRegistry()
	srv.Instrument(reg, nil)

	// lossyConn drops the first response on the floor by closing the
	// client side after the request is written but before the response
	// arrives. Easier: use netsim's blackhole via one-way partition.
	nw := netsim.New(1, netsim.Options{})
	defer nw.Close()
	l, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	c := NewClientDialer(nw.Dialer("cli", "srv"))
	defer c.Close()

	// First, prove the path works.
	var reply CountReply
	if err := c.CallRetry("Count.Bump", &CountArgs{Key: "x"}, &reply, RetryPolicy{}); err != nil {
		t.Fatal(err)
	}
	// Black-hole srv->cli: the request gets through and executes, but the
	// response vanishes; the per-try deadline fires, we heal, and the
	// retry must be deduplicated.
	nw.PartitionOneWay("srv", "cli")
	healed := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		nw.Heal("srv", "cli")
		close(healed)
	}()
	err = c.CallRetry("Count.Bump", &CountArgs{Key: "x"}, &reply, RetryPolicy{
		PerTry: 10 * time.Millisecond, Budget: 2 * time.Second, BaseDelay: 5 * time.Millisecond,
	})
	<-healed
	if err != nil {
		t.Fatalf("retry across lost response: %v", err)
	}
	if got := svc.count("x"); got != 2 {
		t.Fatalf("method executed %d times, want exactly 2 (1 initial + 1 deduped retry)", got)
	}
	if reply.N != 2 {
		t.Fatalf("replayed reply.N = %d, want 2", reply.N)
	}
	if reg.Counter("rpc_dedupe_hits").Value() == 0 {
		t.Error("rpc_dedupe_hits not counted")
	}
}

// TestDedupeEviction checks the per-client token cache is bounded and
// evicts FIFO without wedging.
func TestDedupeEviction(t *testing.T) {
	d := dedupe{clients: make(map[string]*clientDedupe)}
	for i := uint64(1); i <= dedupePerClient+10; i++ {
		cached, inflight := d.begin("c", i)
		if cached != nil || inflight != nil {
			t.Fatalf("token %d: unexpected cache state", i)
		}
		d.finish("c", i, &response{ID: i})
	}
	cd := d.clients["c"]
	if len(cd.done) != dedupePerClient {
		t.Fatalf("done cache holds %d, want %d", len(cd.done), dedupePerClient)
	}
	// The oldest tokens were evicted: a late retry re-executes.
	if cached, _ := d.begin("c", 1); cached != nil {
		t.Fatal("evicted token still cached")
	}
	// Client eviction unblocks in-flight waiters.
	for i := 0; i < dedupeClients+5; i++ {
		d.begin(fmt.Sprintf("cl%d", i), 1) // leaves token 1 in flight
	}
	if len(d.clients) > dedupeClients {
		t.Fatalf("%d clients tracked, want <= %d", len(d.clients), dedupeClients)
	}
}

// TestCallRetryOverHostileNetsim runs many sequential calls through a
// lossy, jittery netsim link and requires zero client-visible errors — the
// in-test version of the bench acceptance criterion.
func TestCallRetryOverHostileNetsim(t *testing.T) {
	srv, svc := newCountServer(t)
	nw := netsim.New(99, netsim.Options{Profile: netsim.Profile{
		DropProb:     0.05,
		DelayProb:    0.2,
		MaxDelay:     200 * time.Microsecond,
		DialFailProb: 0.1,
	}})
	defer nw.Close()
	l, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	c := NewClientDialer(nw.Dialer("cli", "srv"))
	reg := obs.NewRegistry()
	c.Instrument(reg)
	defer c.Close()

	const n = 300
	policy := RetryPolicy{Budget: 5 * time.Second, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, PerTry: 250 * time.Millisecond}
	for i := 0; i < n; i++ {
		var reply CountReply
		if err := c.CallRetry("Count.Bump", &CountArgs{Key: "h"}, &reply, policy); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Every call executed exactly once despite drops and retries.
	if got := svc.count("h"); got != n {
		t.Fatalf("method executed %d times for %d calls", got, n)
	}
	if reg.Counter("rpc_retries").Value() == 0 {
		t.Error("hostile profile produced zero retries")
	}
}
