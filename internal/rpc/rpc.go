// Package rpc is a from-scratch remote procedure call facility in the
// mould of the paper's §6: clients interact with the name server "through a
// general purpose remote procedure call mechanism" whose marshalling
// converts "between strongly typed data structures and bit representations
// suitable for transport across the network" — here, the pickle package
// plays both roles, so (as the paper boasts) there is no manually written
// marshalling code anywhere.
//
// Exposed services are ordinary Go values. Every exported method of the
// form
//
//	func (s *Svc) Method(arg *A, reply *R) error
//
// becomes callable as "SvcName.Method". Argument and reply types must be
// registered with pickle.Register — the analogue of the paper's
// automatically generated stub modules, derived here from reflection
// instead of a stub compiler.
//
// The wire protocol is one uvarint-length-prefixed pickled message per
// request or response, multiplexed by call ID, so one connection carries
// any number of concurrent calls.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// maxMessage bounds a single RPC message.
const maxMessage = 64 << 20

// ServerError is an error returned by the remote side.
type ServerError string

func (e ServerError) Error() string { return string(e) }

// ErrShutdown is returned by calls on a closed client.
var ErrShutdown = errors.New("rpc: client is shut down")

// request and response are the two wire message types.
type request struct {
	ID     uint64
	Method string
	Arg    any
}

type response struct {
	ID     uint64
	Err    string
	Result any
}

func init() {
	pickle.Register(&request{})
	pickle.Register(&response{})
}

// writeMessage frames and writes one pickled message.
func writeMessage(w io.Writer, wmu *sync.Mutex, v any) error {
	payload, err := pickle.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	wmu.Lock()
	defer wmu.Unlock()
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readMessage reads one framed message into ptr.
func readMessage(r *bufio.Reader, ptr any) error {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if n > maxMessage {
		return fmt.Errorf("rpc: message of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return pickle.Unmarshal(buf, ptr)
}

// --- server ---

// A Server dispatches calls to registered services.
type Server struct {
	mu       sync.RWMutex
	services map[string]*service

	// obs and tracer are set by Instrument before serving; nil means
	// uninstrumented (every metric method tolerates nil).
	obs       *obs.Registry
	tracer    obs.Tracer
	openConns *obs.Gauge
	requests  *obs.Counter
	errors    *obs.Counter

	lmu       sync.Mutex
	listeners []net.Listener
	conns     map[io.Closer]bool
	closed    bool
}

// Instrument wires the server's metrics into reg — rpc_requests,
// rpc_errors, rpc_open_conns, and per-method rpc_calls_<Service.Method> /
// rpc_errors_<Service.Method> counters with rpc_latency_ns_<Service.Method>
// histograms — and emits an "rpc.call" event per dispatch to tr. Call
// before Serve.
func (s *Server) Instrument(reg *obs.Registry, tr obs.Tracer) {
	s.obs = reg
	s.tracer = tr
	s.openConns = reg.Gauge("rpc_open_conns")
	s.requests = reg.Counter("rpc_requests")
	s.errors = reg.Counter("rpc_errors")
}

type service struct {
	rcvr    reflect.Value
	methods map[string]reflect.Method
}

// NewServer returns an empty Server.
func NewServer() *Server {
	return &Server{services: make(map[string]*service), conns: make(map[io.Closer]bool)}
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Register exposes rcvr's suitable methods under the given service name. A
// suitable method is exported, takes two pointer arguments (args and
// reply), and returns error.
func (s *Server) Register(name string, rcvr any) error {
	rv := reflect.ValueOf(rcvr)
	rt := rv.Type()
	svc := &service{rcvr: rv, methods: make(map[string]reflect.Method)}
	for i := 0; i < rt.NumMethod(); i++ {
		m := rt.Method(i)
		mt := m.Type
		if !m.IsExported() || mt.NumIn() != 3 || mt.NumOut() != 1 {
			continue
		}
		if mt.In(1).Kind() != reflect.Pointer || mt.In(2).Kind() != reflect.Pointer {
			continue
		}
		if mt.Out(0) != errType {
			continue
		}
		svc.methods[m.Name] = m
	}
	if len(svc.methods) == 0 {
		return fmt.Errorf("rpc: %T exposes no methods of the form Method(arg *A, reply *R) error", rcvr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[name]; dup {
		return fmt.Errorf("rpc: service %q already registered", name)
	}
	s.services[name] = svc
	return nil
}

// Serve accepts connections from l until it is closed, serving each
// connection on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.lmu.Lock()
	if s.closed {
		s.lmu.Unlock()
		l.Close()
		return errors.New("rpc: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.lmu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.lmu.Lock()
			closed := s.closed
			s.lmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn serves a single connection until it fails or the server closes.
// Requests on one connection are handled concurrently, each on its own
// goroutine, as the calls they carry may interleave enquiries and updates.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	s.lmu.Lock()
	if s.closed {
		s.lmu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = true
	s.lmu.Unlock()
	s.openConns.Inc()
	defer func() {
		s.openConns.Dec()
		s.lmu.Lock()
		delete(s.conns, conn)
		s.lmu.Unlock()
		conn.Close()
	}()

	var wmu sync.Mutex
	r := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		var req request
		if err := readMessage(r, &req); err != nil {
			return
		}
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			resp := s.dispatch(&req)
			_ = writeMessage(conn, &wmu, resp)
		}(req)
	}
}

// dispatch has a named result so the deferred panic handler can still
// deliver a response after recovering.
func (s *Server) dispatch(req *request) (resp *response) {
	resp = &response{ID: req.ID}
	if s.obs != nil || s.tracer != nil {
		s.requests.Inc()
		// Per-method metrics use only names that resolve to a
		// registered method, so a client sending garbage cannot grow
		// the registry without bound.
		label := "unknown"
		if svcName, mName, ok := splitMethod(req.Method); ok {
			s.mu.RLock()
			if svc := s.services[svcName]; svc != nil {
				if _, known := svc.methods[mName]; known {
					label = req.Method
				}
			}
			s.mu.RUnlock()
		}
		s.obs.Counter("rpc_calls_" + label).Inc()
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.obs.Histogram("rpc_latency_ns_" + label).ObserveDuration(dur)
			var err error
			if resp.Err != "" {
				err = ServerError(resp.Err)
				s.errors.Inc()
				s.obs.Counter("rpc_errors_" + label).Inc()
			}
			obs.Emit(s.tracer, obs.Event{Name: "rpc.call", Dur: dur, Err: err, Attrs: []obs.Attr{
				obs.A("method", req.Method),
			}})
		}()
	}
	svcName, mName, ok := splitMethod(req.Method)
	if !ok {
		resp.Err = fmt.Sprintf("rpc: malformed method %q", req.Method)
		return resp
	}
	s.mu.RLock()
	svc := s.services[svcName]
	s.mu.RUnlock()
	if svc == nil {
		resp.Err = fmt.Sprintf("rpc: unknown service %q", svcName)
		return resp
	}
	m, ok := svc.methods[mName]
	if !ok {
		resp.Err = fmt.Sprintf("rpc: service %q has no method %q", svcName, mName)
		return resp
	}

	argType := m.Type.In(1)   // *A
	replyType := m.Type.In(2) // *R
	argv := reflect.New(argType.Elem())
	if req.Arg != nil {
		av := reflect.ValueOf(req.Arg)
		switch {
		case av.Type() == argType:
			argv = av
		case av.Type() == argType.Elem():
			argv.Elem().Set(av)
		default:
			resp.Err = fmt.Sprintf("rpc: %s wants %v, got %T", req.Method, argType, req.Arg)
			return resp
		}
	}
	replyv := reflect.New(replyType.Elem())

	defer func() {
		if p := recover(); p != nil {
			resp.Err = fmt.Sprintf("rpc: %s panicked: %v", req.Method, p)
			resp.Result = nil
		}
	}()
	out := m.Func.Call([]reflect.Value{svc.rcvr, argv, replyv})
	if ierr := out[0].Interface(); ierr != nil {
		resp.Err = ierr.(error).Error()
		return resp
	}
	resp.Result = replyv.Interface()
	return resp
}

func splitMethod(s string) (svc, method string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i], s[i+1:], i > 0 && i < len(s)-1
		}
	}
	return "", "", false
}

// Close stops all listeners and open connections.
func (s *Server) Close() {
	s.lmu.Lock()
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	var conns []io.Closer
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lmu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// --- client ---

// A Client issues calls over one connection; it is safe for concurrent use
// and multiplexes any number of outstanding calls.
type Client struct {
	conn io.ReadWriteCloser
	wmu  sync.Mutex

	// SimulatedRTT, when set, delays every call by the given round-trip
	// time — experiment E11's stand-in for the paper's 8 ms network.
	SimulatedRTT time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *response
	err     error
	closed  bool
}

// NewClient returns a Client using conn.
func NewClient(conn io.ReadWriteCloser) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan *response)}
	go c.readLoop()
	return c
}

// Dial connects a Client to a TCP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		var resp response
		if err := readMessage(r, &resp); err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *response)
	c.mu.Unlock()
	for id, ch := range pending {
		ch <- &response{ID: id, Err: err.Error()}
	}
}

// CallTimeout is Call with a deadline: if the response does not arrive in
// time the call fails with ErrTimeout (the request is not cancelled on the
// server — as in the paper's RPC, the caller just stops waiting — but the
// late response is discarded).
func (c *Client) CallTimeout(method string, arg, reply any, d time.Duration) error {
	// Decode into a private value so a response arriving after the
	// timeout cannot race a caller that reuses reply.
	var tmp any
	if reply != nil {
		rv := reflect.ValueOf(reply)
		if rv.Kind() != reflect.Pointer || rv.IsNil() {
			return fmt.Errorf("rpc: reply must be a non-nil pointer, got %T", reply)
		}
		tmp = reflect.New(rv.Type().Elem()).Interface()
	}
	done := make(chan error, 1)
	go func() { done <- c.Call(method, arg, tmp) }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-done:
		if err == nil && reply != nil {
			reflect.ValueOf(reply).Elem().Set(reflect.ValueOf(tmp).Elem())
		}
		return err
	case <-timer.C:
		return ErrTimeout
	}
}

// ErrTimeout is returned by CallTimeout when the deadline passes.
var ErrTimeout = errors.New("rpc: call timed out")

// Call invokes "Service.Method" with arg, storing the result into reply
// (a non-nil pointer, or nil to discard).
func (c *Client) Call(method string, arg any, reply any) error {
	if c.SimulatedRTT > 0 {
		time.Sleep(c.SimulatedRTT)
	}
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrShutdown
		}
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *response, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := writeMessage(c.conn, &c.wmu, &request{ID: id, Method: method, Arg: arg}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	resp := <-ch
	if resp.Err != "" {
		return ServerError(resp.Err)
	}
	if reply == nil || resp.Result == nil {
		return nil
	}
	rv := reflect.ValueOf(reply)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("rpc: reply must be a non-nil pointer, got %T", reply)
	}
	res := reflect.ValueOf(resp.Result)
	switch {
	case res.Type() == rv.Type():
		rv.Elem().Set(res.Elem())
	case res.Type() == rv.Type().Elem():
		rv.Elem().Set(res)
	default:
		return fmt.Errorf("rpc: reply type %T does not match result %T", reply, resp.Result)
	}
	return nil
}

// Close shuts the client down; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrShutdown)
	return err
}
