// Package slotfile is the "custom designed data representation in a disk
// file" underlying the paper's §2 ad-hoc baseline: fixed-size record slots
// addressed by an open-addressing hash of the key, read and written in
// place with direct page access. On its own it provides no crash safety at
// all — exactly the property §2 criticizes ("updates are typically
// performed by overwriting existing data in place. This leaves the database
// quite vulnerable to transient errors") — and the reliability experiments
// exercise that weakness. The twophase baseline layers a redo log on top to
// repair it at the cost of a second disk write.
package slotfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"smalldb/internal/vfs"
)

// SlotSize is the fixed on-disk size of one record slot. A slot holds
// [state:1][klen:1][vlen:2][key][value] padded to SlotSize.
const SlotSize = 256

// slot states.
const (
	slotFree      byte = 0
	slotUsed      byte = 1
	slotTombstone byte = 2
)

// header is the file preamble: magic, slot count.
const headerSize = 16

var magic = [4]byte{'S', 'L', 'O', 'T'}

// MaxKeyLen and MaxValueLen bound what fits in one slot.
const (
	MaxKeyLen   = 64
	MaxValueLen = SlotSize - 4 - MaxKeyLen
)

// ErrFull is returned when the table cannot admit another record and
// growing is disabled.
var ErrFull = errors.New("slotfile: table full")

// ErrTooLarge is returned for keys or values exceeding a slot.
var ErrTooLarge = errors.New("slotfile: record exceeds slot size")

// File is an open slot file.
type File struct {
	mu    sync.Mutex
	fs    vfs.FS
	name  string
	f     vfs.File
	slots int
	used  int
	// NoSync suppresses the per-write sync; the twophase baseline syncs
	// explicitly at its own commit points.
	NoSync bool
}

// Create creates a slot file with the given slot count.
func Create(fs vfs.FS, name string, slots int) (*File, error) {
	if slots < 1 {
		return nil, fmt.Errorf("slotfile: slot count %d", slots)
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(slots))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(headerSize + int64(slots)*SlotSize); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &File{fs: fs, name: name, f: f, slots: slots}, nil
}

// Open opens an existing slot file.
func Open(fs vfs.FS, name string) (*File, error) {
	f, err := fs.OpenRW(name)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil && err != io.EOF {
		f.Close()
		return nil, err
	}
	if [4]byte(hdr[:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("slotfile: %s is not a slot file", name)
	}
	slots := int(binary.LittleEndian.Uint32(hdr[4:8]))
	sf := &File{fs: fs, name: name, f: f, slots: slots}
	// Count used slots for occupancy accounting.
	for i := 0; i < slots; i++ {
		s, _, _, err := sf.readSlot(i)
		if err != nil {
			continue // damaged slot: counted as free; reads will fail there
		}
		if s == slotUsed {
			sf.used++
		}
	}
	return sf, nil
}

func (sf *File) slotOffset(i int) int64 { return headerSize + int64(i)*SlotSize }

func hashKey(key string) uint32 {
	h := fnv.New32a()
	io.WriteString(h, key)
	return h.Sum32()
}

// readSlot reads slot i, returning its state, key and value.
func (sf *File) readSlot(i int) (state byte, key, value string, err error) {
	var buf [SlotSize]byte
	if _, err := sf.f.ReadAt(buf[:], sf.slotOffset(i)); err != nil && err != io.EOF {
		return 0, "", "", err
	}
	state = buf[0]
	if state != slotUsed {
		return state, "", "", nil
	}
	klen := int(buf[1])
	vlen := int(binary.LittleEndian.Uint16(buf[2:4]))
	if klen > MaxKeyLen || 4+klen+vlen > SlotSize {
		return 0, "", "", fmt.Errorf("slotfile: slot %d corrupt", i)
	}
	return state, string(buf[4 : 4+klen]), string(buf[4+klen : 4+klen+vlen]), nil
}

// writeSlot writes slot i in place — one direct page write.
func (sf *File) writeSlot(i int, state byte, key, value string) error {
	var buf [SlotSize]byte
	buf[0] = state
	if state == slotUsed {
		buf[1] = byte(len(key))
		binary.LittleEndian.PutUint16(buf[2:4], uint16(len(value)))
		copy(buf[4:], key)
		copy(buf[4+len(key):], value)
	}
	if _, err := sf.f.WriteAt(buf[:], sf.slotOffset(i)); err != nil {
		return err
	}
	if sf.NoSync {
		return nil
	}
	return sf.f.Sync()
}

// findSlot probes for key. It returns the slot holding key (found=true), or
// the first insertable slot (found=false).
func (sf *File) findSlot(key string) (idx int, found bool, err error) {
	start := int(hashKey(key) % uint32(sf.slots))
	insert := -1
	for probe := 0; probe < sf.slots; probe++ {
		i := (start + probe) % sf.slots
		state, k, _, err := sf.readSlot(i)
		if err != nil {
			return 0, false, err
		}
		switch state {
		case slotUsed:
			if k == key {
				return i, true, nil
			}
		case slotTombstone:
			if insert < 0 {
				insert = i
			}
		default: // free: end of probe chain
			if insert < 0 {
				insert = i
			}
			return insert, false, nil
		}
	}
	if insert >= 0 {
		return insert, false, nil
	}
	return 0, false, ErrFull
}

// Lookup reads the value for key directly from the disk pages (the §2
// baseline's "perusing a small number of directly accessed pages").
func (sf *File) Lookup(key string) (string, bool, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	i, found, err := sf.findSlot(key)
	if err != nil || !found {
		return "", false, err
	}
	_, _, v, err := sf.readSlot(i)
	if err != nil {
		return "", false, err
	}
	return v, true, nil
}

// Put writes key=value in place: typically one disk write, the §2 ad-hoc
// baseline's characteristic cost. It grows (rehashing the whole file — a
// multi-page update, and exactly the crash hazard §2 warns about) when
// occupancy passes 70%.
func (sf *File) Put(key, value string) error {
	if len(key) > MaxKeyLen || len(key) == 0 || len(value) > MaxValueLen {
		return ErrTooLarge
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.putLocked(key, value)
}

func (sf *File) putLocked(key, value string) error {
	if (sf.used+1)*10 > sf.slots*7 {
		if err := sf.growLocked(); err != nil {
			return err
		}
	}
	i, found, err := sf.findSlot(key)
	if err != nil {
		return err
	}
	if err := sf.writeSlot(i, slotUsed, key, value); err != nil {
		return err
	}
	if !found {
		sf.used++
	}
	return nil
}

// Delete removes key (one in-place write of a tombstone).
func (sf *File) Delete(key string) (bool, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	i, found, err := sf.findSlot(key)
	if err != nil || !found {
		return false, err
	}
	if err := sf.writeSlot(i, slotTombstone, "", ""); err != nil {
		return false, err
	}
	sf.used--
	return true, nil
}

// All returns every record; used by tests and the text-file comparison.
func (sf *File) All() (map[string]string, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	out := make(map[string]string, sf.used)
	for i := 0; i < sf.slots; i++ {
		state, k, v, err := sf.readSlot(i)
		if err != nil {
			return nil, err
		}
		if state == slotUsed {
			out[k] = v
		}
	}
	return out, nil
}

// growLocked doubles the table by rewriting every record into a new file
// and renaming it into place. The rename makes growth itself atomic, but
// the paper's point stands for the simpler in-place variants this models.
func (sf *File) growLocked() error {
	tmp := sf.name + ".grow"
	bigger, err := Create(sf.fs, tmp, sf.slots*2)
	if err != nil {
		return err
	}
	bigger.NoSync = true
	for i := 0; i < sf.slots; i++ {
		state, k, v, err := sf.readSlot(i)
		if err != nil {
			bigger.Close()
			return err
		}
		if state == slotUsed {
			if err := bigger.putLocked(k, v); err != nil {
				bigger.Close()
				return err
			}
		}
	}
	bigger.NoSync = sf.NoSync
	if err := bigger.f.Sync(); err != nil {
		bigger.Close()
		return err
	}
	if err := sf.fs.Rename(tmp, sf.name); err != nil {
		bigger.Close()
		return err
	}
	old := sf.f
	sf.f = bigger.f
	sf.slots = bigger.slots
	sf.used = bigger.used
	old.Close()
	return nil
}

// Sync flushes the file.
func (sf *File) Sync() error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.f.Sync()
}

// Used reports the number of live records.
func (sf *File) Used() int {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.used
}

// Close closes the file.
func (sf *File) Close() error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return sf.f.Close()
}
