package twophase

import (
	"fmt"
	"testing"

	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

func open(t *testing.T, fs vfs.FS) *DB {
	t.Helper()
	db, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBasicOps(t *testing.T) {
	db := open(t, vfs.NewMem(1))
	defer db.Close()
	if err := db.Update("a", "1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Lookup("a")
	if err != nil || !ok || v != "1" {
		t.Fatalf("got %q %v %v", v, ok, err)
	}
	if err := db.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Lookup("a"); ok {
		t.Error("deleted key found")
	}
	if err := db.Delete("a"); err == nil {
		t.Error("delete of missing key succeeded")
	}
}

func TestRecoveryReplaysRedo(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	for i := 0; i < 20; i++ {
		if err := db.Update(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close.
	fs.Crash()
	db2 := open(t, fs)
	defer db2.Close()
	for i := 0; i < 20; i++ {
		if v, ok, _ := db2.Lookup(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d lost: %q %v", i, v, ok)
		}
	}
}

func TestCrashBetweenLogAndData(t *testing.T) {
	// The crux of atomic commit: the crash window between the two disk
	// writes. Emulate it by committing a record to the redo log directly
	// — write one done, write two never performed — then crashing.
	fs := vfs.NewMem(1)
	db := open(t, fs)
	db.Update("stable", "x")

	payload, err := pickle.Marshal(&record{Key: "redo-me", Value: "after-crash"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.log.Append(payload); err != nil {
		t.Fatal(err)
	}
	// Crash now: the log has the record, the data file does not.
	fs.Crash()

	db2 := open(t, fs)
	defer db2.Close()
	if v, ok, _ := db2.Lookup("redo-me"); !ok || v != "after-crash" {
		t.Fatalf("redo not replayed: %q %v", v, ok)
	}
	if v, ok, _ := db2.Lookup("stable"); !ok || v != "x" {
		t.Errorf("stable record lost: %q %v", v, ok)
	}
}

func TestCompactBoundsLog(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	for i := 0; i < 50; i++ {
		db.Update(fmt.Sprintf("k%d", i), "v")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	size, _ := fs.Stat(logFile)
	if size != 0 {
		t.Errorf("log not emptied: %d bytes", size)
	}
	// Data survives compaction and restart.
	db.Close()
	db2 := open(t, fs)
	defer db2.Close()
	if v, ok, _ := db2.Lookup("k33"); !ok || v != "v" {
		t.Errorf("k33 after compact+restart: %q %v", v, ok)
	}
}

func TestCrashDuringCompact(t *testing.T) {
	fs := vfs.NewMem(1)
	db := open(t, fs)
	for i := 0; i < 10; i++ {
		db.Update(fmt.Sprintf("k%d", i), "v")
	}
	// Crash right after the data sync but before the log reset: the old
	// log replays over already-applied data — idempotent.
	db.sf.Sync()
	fs.Crash()
	db2 := open(t, fs)
	defer db2.Close()
	for i := 0; i < 10; i++ {
		if _, ok, _ := db2.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost", i)
		}
	}
}

func TestTwoSyncsPerUpdate(t *testing.T) {
	// The defining cost: exactly two durable writes per update (log +
	// data), the paper's "factor of two worse".
	fs := vfs.NewMem(1)
	db := open(t, fs)
	defer db.Close()
	syncs := 0
	fs.FailSync = func(string) error { syncs++; return nil }
	before := syncs
	db.Update("k", "v")
	got := syncs - before
	if got != 2 {
		t.Errorf("update cost %d syncs, want 2", got)
	}
}
