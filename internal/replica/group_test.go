package replica

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// groupCluster wires a primary's Group to N-1 member nodes over pipes.
type groupCluster struct {
	group   *Group
	primary *Node
	members []*Node // remote members only
	servers []*rpc.Server
}

func makeGroup(t *testing.T, w int, names ...string) *groupCluster {
	t.Helper()
	gc := &groupCluster{}
	cfg := GroupConfig{
		Self:             names[0],
		W:                w,
		QuorumTimeout:    5 * time.Second,
		AntiEntropyEvery: 10 * time.Millisecond,
	}
	for _, name := range names {
		cfg.Members = append(cfg.Members, Member{Name: name, Addr: "pipe"})
	}
	for i, name := range names {
		fs := vfs.NewMem(int64(i + 1))
		n, err := Open(Config{Name: name, FS: fs, HistoryCap: 100})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			gc.primary = n
			continue
		}
		srv := rpc.NewServer()
		if err := srv.Register("Replica", NewService(n)); err != nil {
			t.Fatal(err)
		}
		gc.members = append(gc.members, n)
		gc.servers = append(gc.servers, srv)
	}
	g, err := NewGroup(gc.primary, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gc.group = g
	for i, m := range gc.members {
		cc, sc := net.Pipe()
		go gc.servers[i].ServeConn(sc)
		if err := g.Connect(m.Name(), rpc.NewClient(cc)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		g.Close()
		gc.primary.Close()
		for _, m := range gc.members {
			m.Close()
		}
		for _, s := range gc.servers {
			s.Close()
		}
	})
	return gc
}

func TestGroupQuorumCommitMajority(t *testing.T) {
	gc := makeGroup(t, 0, "a", "b", "c", "d", "e") // W defaults to 3
	if got := gc.group.W(); got != 3 {
		t.Fatalf("W = %d, want majority 3", got)
	}
	for i := 0; i < 20; i++ {
		if err := gc.group.Set(fmt.Sprintf("svc/k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	// Quorum acked every update; with healthy streams all members converge.
	deadline := time.Now().Add(5 * time.Second)
	for _, m := range gc.members {
		for {
			v, err := m.Lookup("svc/k19")
			if err == nil && v == "v19" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("member %s never converged: %q %v", m.Name(), v, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	acked := gc.group.Acked()
	if acked["a"] != 20 {
		t.Fatalf("primary commitSeq = %d, want 20 (%v)", acked["a"], acked)
	}
}

func TestGroupQuorumOneAndAll(t *testing.T) {
	// W=1: ack on local commit alone.
	gc := makeGroup(t, 1, "a", "b", "c")
	if err := gc.group.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	// W=N: ack only when every member holds the update.
	gcAll := makeGroup(t, 3, "a", "b", "c")
	if err := gcAll.group.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	for _, m := range gcAll.members {
		if v, err := m.Lookup("k"); err != nil || v != "v" {
			t.Fatalf("W=N acked before member %s applied: %q %v", m.Name(), v, err)
		}
	}
}

func TestGroupQuorumUnreachable(t *testing.T) {
	gc := makeGroup(t, 0, "a", "b", "c")
	gc.group.quorumTimeout = 300 * time.Millisecond
	gc.group.cfg.PushPolicy = rpc.RetryPolicy{MaxAttempts: 2, Budget: 100 * time.Millisecond, PerTry: 50 * time.Millisecond}
	gc.group.cfg.SyncPolicy = gc.group.cfg.PushPolicy
	for _, s := range gc.servers {
		s.Close() // every remote member goes dark; W=2 needs one of them
	}
	err := gc.group.Set("k", "v")
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("err = %v, want ErrQuorumUnreachable", err)
	}
	// The update still committed locally and survives for anti-entropy.
	if v, lerr := gc.primary.Lookup("k"); lerr != nil || v != "v" {
		t.Fatalf("local commit lost: %q %v", v, lerr)
	}
}

func TestGroupLaggardRepair(t *testing.T) {
	gc := makeGroup(t, 2, "a", "b", "c")
	if err := gc.group.Set("k0", "v0"); err != nil {
		t.Fatal(err)
	}
	// Force c onto the anti-entropy path, then keep committing: pushes
	// skip c, quorum holds via b, and background repair must bring c back.
	gc.group.MarkLagging("c")
	for i := 1; i <= 10; i++ {
		if err := gc.group.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, err := gc.members[1].Lookup("k10"); err == nil && v == "v10" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("laggard c never repaired: acked=%v", gc.group.Acked())
		}
		time.Sleep(time.Millisecond)
	}
	gc.group.mu.Lock()
	lagging := gc.group.members[1].lagging
	gc.group.mu.Unlock()
	if lagging {
		t.Fatal("c still marked lagging after catching up")
	}
}

func TestRepairRoundMultiOriginAck(t *testing.T) {
	// Any member may originate writes, so a repair batch can mix origins —
	// and missingFrom sorts it by (origin, seq), so the last entry's slot
	// may belong to a foreign origin numerically ahead of ours. The round
	// must report the member's slot for OUR origin, not the last entry's:
	// an inflated ack would let awaitQuorum count the member for local
	// seqs it never received.
	gc := makeGroup(t, 2, "a", "b")
	svcA := NewService(gc.primary)
	var entries []Entry
	for i := 1; i <= 5; i++ {
		parts, _ := nameserver.SplitPath(fmt.Sprintf("z/k%d", i))
		entries = append(entries, Entry{Origin: "z", Seq: uint64(i), Stamp: uint64(i), Inner: &nameserver.SetValue{Path: parts, Value: "v"}})
	}
	var pr PushReply
	if err := svcA.Push(&PushArgs{Entries: entries}, &pr, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	// W=2: Set returns only once b holds it, so b's slot for a is exactly
	// 1 while it still lacks every z entry.
	if err := gc.group.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	ms := gc.group.members[0]
	repairedTo, err := gc.group.repairRound(ms)
	if err != nil {
		t.Fatal(err)
	}
	if repairedTo != 1 {
		t.Fatalf("repairedTo = %d, want 1 (member b's slot for origin a, not origin z's %d)", repairedTo, 5)
	}
	vec, err := gc.members[0].Vector()
	if err != nil || vec["z"] != 5 || vec["a"] != 1 {
		t.Fatalf("member vector after repair = %v, %v; want z=5 a=1", vec, err)
	}
}

func TestGroupBoundedStalenessRead(t *testing.T) {
	gc := makeGroup(t, 2, "a", "b", "c")
	for i := 0; i < 5; i++ {
		if err := gc.group.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	frontier, err := gc.primary.Frontier()
	if err != nil || frontier != 5 {
		t.Fatalf("primary frontier = %d, %v; want 5", frontier, err)
	}
	// A member read at the primary's frontier must either be fresh enough
	// or fail ErrStale — never silently answer from an older view.
	for _, m := range gc.members {
		v, f, rerr := m.ReadAt("k4", frontier)
		if rerr != nil {
			if !IsStale(rerr) {
				t.Fatalf("member %s: %v", m.Name(), rerr)
			}
			if f >= frontier {
				t.Fatalf("member %s stale at frontier %d >= floor %d", m.Name(), f, frontier)
			}
			continue
		}
		if v != "v4" || f < frontier {
			t.Fatalf("member %s: %q at frontier %d, want v4 at >= %d", m.Name(), v, f, frontier)
		}
	}
	// An impossible floor is always stale.
	if _, _, rerr := gc.members[0].ReadAt("k4", frontier+100); !IsStale(rerr) {
		t.Fatalf("read above the frontier returned %v, want ErrStale", rerr)
	}
}

func TestServiceReadCatchUp(t *testing.T) {
	// A member behind the floor catches itself up from its peer inside
	// Service.Read rather than failing straight away.
	c := makeCluster(t, "a", "b")
	// Commit at a without pushing, so b really is behind the floor.
	parts := []string{"x"}
	if _, err := c.nodes[0].commitLocal([]core.Update{&nameserver.SetValue{Path: parts, Value: "1"}}, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.nodes[1].ReadAt("x", 1); !IsStale(err) {
		t.Fatalf("b should start stale, got %v", err)
	}
	svcB := NewService(c.nodes[1])
	var reply ReadReply
	if err := svcB.Read(&ReadArgs{Name: "x", MinSeq: 1}, &reply); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if reply.Value != "1" || reply.Frontier < 1 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Stale {
		t.Fatalf("caught-up reply marked stale: %+v", reply)
	}
}

func TestServiceReadStaleReply(t *testing.T) {
	// A member that cannot reach the floor even after catch-up answers
	// with the structured Stale flag and its observed frontier — not a
	// wire error, which would arrive as an unmatchable string.
	c := makeCluster(t, "a", "b")
	if err := c.nodes[0].Set("x", "1"); err != nil {
		t.Fatal(err)
	}
	svcB := NewService(c.nodes[1])
	var reply ReadReply
	if err := svcB.Read(&ReadArgs{Name: "x", MinSeq: 100}, &reply); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reply.Stale || reply.Frontier >= 100 || reply.Node != "b" || reply.Value != "" {
		t.Fatalf("reply = %+v, want Stale with frontier < 100 from b and no value", reply)
	}
}

func TestParseGroupSpec(t *testing.T) {
	cfg, err := ParseGroupSpec("a", "b=host1:1, c=host2:2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Members) != 3 || cfg.W != 2 || cfg.Self != "a" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Members[2] != (Member{Name: "c", Addr: "host2:2"}) {
		t.Fatalf("member = %+v", cfg.Members[2])
	}
	// Solo group: valid, W=1.
	if cfg, err = ParseGroupSpec("a", "", 0); err != nil || cfg.W != 1 {
		t.Fatalf("solo: %+v %v", cfg, err)
	}

	cases := []struct {
		self, peers string
		w           int
		want        error
	}{
		{"", "b=x", 0, ErrBadMember},
		{"a", "b", 0, ErrBadMember},
		{"a", "=x", 0, ErrBadMember},
		{"a", "b=", 0, ErrBadMember},
		{"a", "b=x,", 0, ErrBadMember},
		{"a", "a=x", 0, ErrDuplicateMember},
		{"a", "b=x,b=y", 0, ErrDuplicateMember},
		{"a", "b=x", 3, ErrBadQuorum},
		{"a", "b=x", -1, ErrBadQuorum},
	}
	for _, tc := range cases {
		if _, err := ParseGroupSpec(tc.self, tc.peers, tc.w); !errors.Is(err, tc.want) {
			t.Errorf("ParseGroupSpec(%q, %q, %d) = %v, want %v", tc.self, tc.peers, tc.w, err, tc.want)
		}
	}
}

func TestGroupConfigValidate(t *testing.T) {
	if err := (&GroupConfig{}).Validate(); !errors.Is(err, ErrNoMembers) {
		t.Errorf("empty: %v", err)
	}
	cfg := GroupConfig{Self: "x", Members: []Member{{Name: "a", Addr: "1"}}}
	if err := cfg.Validate(); !errors.Is(err, ErrSelfNotMember) {
		t.Errorf("self: %v", err)
	}
}
