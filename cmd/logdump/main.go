// Command logdump inspects a small database's disk directory: the version
// files, checkpoints and redo logs of the paper's §3 protocol. It decodes
// pickled data generically (no knowledge of the application's Go types), so
// it works on any database this library wrote — the audit-trail reader the
// paper's §4 gestures at ("the log files form a complete audit trail for
// the database").
//
// Usage:
//
//	logdump -dir /var/lib/nsd               # summarize the directory
//	logdump -dir /var/lib/nsd -log 3        # dump logfile3's entries
//	logdump -dir /var/lib/nsd -checkpoint 3 # dump checkpoint 3's delta chain and contents
//	logdump -dir /var/lib/nsd -stats        # payload-size histograms per log
//	logdump -dir /var/lib/nsd -stats -log 3 # histogram for one log file
//	logdump -dir /var/lib/nsd -flight       # decode the flight-recorder ring
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smalldb/internal/checkpoint"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

func main() {
	var (
		dir    = flag.String("dir", "", "database directory (required)")
		logV   = flag.Uint64("log", 0, "dump the entries of logfile<N>, merging its streams by global sequence when the log is sharded")
		archV  = flag.Uint64("archive", 0, "dump the entries of archive-logfile<N> (§4 audit trail)")
		cpV    = flag.Uint64("checkpoint", 0, "dump checkpoint<N>'s chain (full base + deltas, header by header) and its own contents")
		stream = flag.Int("stream", -1, "with -log/-archive: dump only stream <i> of a sharded log instead of the merge (0 = the base file)")
		maxLen = flag.Int("max", 0, "dump at most this many log entries (0 = all)")
		stats  = flag.Bool("stats", false, "print entry-count, byte and payload-size histogram summaries instead of entries")
		flight = flag.Bool("flight", false, "decode the crash-surviving flight-recorder ring (the black box)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "logdump: -dir is required")
		os.Exit(2)
	}
	fs, err := vfs.NewOS(*dir)
	if err != nil {
		fatal("%v", err)
	}

	switch {
	case *flight:
		dumpFlight(fs)
	case *stats && *logV > 0:
		statsLog(fs, checkpoint.LogName(*logV), *stream)
	case *stats && *archV > 0:
		statsLog(fs, checkpoint.ArchiveLogName(*archV), *stream)
	case *stats:
		statsAll(fs)
	case *logV > 0:
		dumpLog(fs, checkpoint.LogName(*logV), *maxLen, *stream)
	case *archV > 0:
		dumpLog(fs, checkpoint.ArchiveLogName(*archV), *maxLen, *stream)
	case *cpV > 0:
		dumpCheckpoint(fs, *cpV)
	default:
		summarize(fs)
	}
}

// isShardStream reports whether name is a non-base stream file of a sharded
// log (base.<i>, i >= 1).
func isShardStream(name string) bool {
	dot := strings.LastIndexByte(name, '.')
	if dot < 0 {
		return false
	}
	i, err := strconv.Atoi(name[dot+1:])
	return err == nil && i >= 1
}

func summarize(fs vfs.FS) {
	names, err := fs.List()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println("directory contents:")
	for _, n := range names {
		size, _ := fs.Stat(n)
		fmt.Printf("  %-20s %8d bytes\n", n, size)
	}
	for _, vf := range []string{"version", "newversion"} {
		if data, err := vfs.ReadFile(fs, vf); err == nil {
			fmt.Printf("%s: %s\n", vf, strings.TrimSpace(string(data)))
		}
	}
	// Count entries of each log (current and archived) without decoding
	// payloads. Shard streams (logfileN.i) are summarized per stream, then
	// merged under their base by global sequence.
	for _, n := range names {
		if !strings.HasPrefix(n, "logfile") && !strings.HasPrefix(n, "archive-logfile") {
			continue
		}
		if isShardStream(n) {
			continue // summarized under its base below
		}
		streams, err := wal.ShardFiles(fs, n)
		if err != nil {
			fmt.Printf("%s: %v\n", n, err)
			continue
		}
		for _, sn := range streams {
			start, ok, err := wal.FirstSeq(fs, sn)
			if err != nil || !ok {
				fmt.Printf("%s: empty\n", sn)
				continue
			}
			entries := 0
			var first, last uint64
			wal.Replay(fs, sn, start, wal.ReplayOptions{Monotonic: true}, func(seq uint64, _ []byte) error {
				if entries == 0 {
					first = seq
				}
				last = seq
				entries++
				return nil
			})
			fmt.Printf("%s: %d entries (seq %d..%d)\n", sn, entries, first, last)
		}
		if len(streams) > 1 {
			first, ok, err := wal.FirstSeqSharded(fs, n)
			if err != nil || !ok {
				continue
			}
			res, err := wal.ReplayShardedPipelined(fs, n, first, wal.ReplayOptions{}, 4,
				func(_ uint64, _ []byte) (any, error) { return nil, nil },
				func(_ uint64, _ any) error { return nil })
			if err != nil {
				fmt.Printf("%s (merged): %v\n", n, err)
				continue
			}
			gap := ""
			if res.GapAt != 0 {
				gap = fmt.Sprintf(", gap at seq %d (%d unacknowledged entries beyond it)", res.GapAt, res.Discarded)
			}
			fmt.Printf("%s (merged, %d streams): %d entries (seq %d..%d)%s\n",
				n, len(streams), res.Entries, first, res.LastSeq, gap)
		}
	}
}

// statsAll prints a payload-size summary line for every log stream in the
// directory, current and archived — sharded logs get one summary per
// stream.
func statsAll(fs vfs.FS) {
	names, err := fs.List()
	if err != nil {
		fatal("%v", err)
	}
	found := false
	for _, n := range names {
		if !strings.HasPrefix(n, "logfile") && !strings.HasPrefix(n, "archive-logfile") {
			continue
		}
		found = true
		statsLogFile(fs, n)
	}
	if !found {
		fmt.Println("no log files")
	}
}

// statsLog prints the stats of one log version: the chosen stream, or every
// stream of a sharded log in stream order.
func statsLog(fs vfs.FS, base string, stream int) {
	if stream >= 0 {
		statsLogFile(fs, wal.ShardName(base, stream))
		return
	}
	streams, err := wal.ShardFiles(fs, base)
	if err != nil {
		fatal("%v", err)
	}
	if len(streams) == 0 {
		fatal("%s: no such log (and no streams of it)", base)
	}
	for _, sn := range streams {
		statsLogFile(fs, sn)
	}
}

// statsLogFile replays one log, feeding payload sizes into a histogram,
// and prints count/bytes/percentile summaries plus the distribution.
func statsLogFile(fs vfs.FS, name string) {
	size, err := fs.Stat(name)
	if err != nil {
		fatal("%v", err)
	}
	start, ok, err := wal.FirstSeq(fs, name)
	if err != nil {
		fatal("%v", err)
	}
	if !ok {
		fmt.Printf("%s: empty (%d bytes on disk)\n", name, size)
		return
	}
	// Skip damaged entries so a partly unreadable log still summarizes;
	// Monotonic admits shard streams, which hold only a residue class of
	// the global sequences.
	var h obs.Histogram
	var first, last uint64
	res, err := wal.Replay(fs, name, start, wal.ReplayOptions{SkipDamaged: true, Monotonic: true}, func(seq uint64, payload []byte) error {
		if first == 0 {
			first = seq
		}
		last = seq
		h.Observe(int64(len(payload)))
		return nil
	})
	if err != nil {
		fatal("replaying %s: %v", name, err)
	}
	s := h.Snapshot()
	fmt.Printf("%s: %d entries (seq %d..%d), %d bytes on disk (%.1f%% framing overhead)\n",
		name, s.Count, first, last, size, overheadPct(size, s.Sum))
	fmt.Printf("  payload sizes: %s\n", s.SizeString())
	if res.Truncated {
		fmt.Printf("  (torn tail entry discarded at offset %d)\n", res.GoodSize)
	}
	if res.Damaged > 0 {
		fmt.Printf("  (%d damaged entries skipped)\n", res.Damaged)
	}
	fmt.Print(s.Bar(40, sizeFmt))
}

func sizeFmt(v int64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}

func overheadPct(disk, payload int64) float64 {
	if disk <= 0 {
		return 0
	}
	return 100 * float64(disk-payload) / float64(disk)
}

// dumpLog dumps one log version: the chosen stream alone, or — when the
// log is sharded — every stream merged by global sequence, exactly the
// order recovery replays them in.
func dumpLog(fs vfs.FS, base string, max, stream int) {
	if stream >= 0 {
		dumpLogFile(fs, wal.ShardName(base, stream), max)
		return
	}
	streams, err := wal.ShardFiles(fs, base)
	if err != nil {
		fatal("%v", err)
	}
	switch {
	case len(streams) == 0:
		fatal("%s: no such log (and no streams of it)", base)
	case len(streams) == 1 && streams[0] == base:
		dumpLogFile(fs, base, max)
		return
	}

	fmt.Printf("%s: sharded log, %d streams: %s\n", base, len(streams), strings.Join(streams, ", "))
	first, ok, err := wal.FirstSeqSharded(fs, base)
	if err != nil {
		fatal("%v", err)
	}
	if !ok {
		fmt.Printf("%s: all streams empty\n", base)
		return
	}
	n := 0
	res, err := wal.ReplayShardedPipelined(fs, base, first, wal.ReplayOptions{}, 4,
		func(seq uint64, payload []byte) (any, error) {
			// Decode generically off the merge's worker pool; formatting
			// failures are per-entry notes, not errors.
			v, derr := pickle.NewDecoder(strings.NewReader(string(payload))).DecodeAny()
			if derr != nil {
				return fmt.Sprintf("%d bytes (undecodable: %v)", len(payload), derr), nil
			}
			return pickle.Format(v), nil
		},
		func(seq uint64, v any) error {
			if max > 0 && n >= max {
				return errStop
			}
			n++
			fmt.Printf("entry %d: %s\n", seq, v)
			return nil
		})
	if err != nil && err != errStop {
		fatal("merging %s: %v", base, err)
	}
	for i, sr := range res.StreamResults {
		if sr.Truncated {
			fmt.Printf("(%s: torn tail entry discarded at offset %d)\n", res.Names[i], sr.GoodSize)
		}
	}
	if err == nil && res.GapAt != 0 {
		fmt.Printf("(sequence gap at %d: %d entries beyond it belong to unacknowledged epochs and are ignored by recovery)\n",
			res.GapAt, res.Discarded)
	}
}

var errStop = fmt.Errorf("stop")

func dumpLogFile(fs vfs.FS, name string, max int) {
	start, ok, err := wal.FirstSeq(fs, name)
	if err != nil {
		fatal("%v", err)
	}
	if !ok {
		fmt.Printf("%s: empty\n", name)
		return
	}
	n := 0
	res, err := wal.Replay(fs, name, start, wal.ReplayOptions{Monotonic: true}, func(seq uint64, payload []byte) error {
		if max > 0 && n >= max {
			return errStop
		}
		n++
		v, derr := pickle.NewDecoder(strings.NewReader(string(payload))).DecodeAny()
		if derr != nil {
			fmt.Printf("entry %d: %d bytes (undecodable: %v)\n", seq, len(payload), derr)
			return nil
		}
		fmt.Printf("entry %d: %s\n", seq, pickle.Format(v))
		return nil
	})
	if err != nil && err != errStop {
		fatal("replaying %s: %v", name, err)
	}
	if res.Truncated {
		fmt.Printf("(torn tail entry discarded at offset %d)\n", res.GoodSize)
	}
}

// dumpFlight decodes the durable image of the flight-recorder ring: the
// last events the daemon recorded before it (or its power) died.
func dumpFlight(fs vfs.FS) {
	events, err := obs.ReadFlight(fs, "")
	if err != nil {
		fatal("%v", err)
	}
	if len(events) == 0 {
		fmt.Println("flight recorder: no events")
		return
	}
	fmt.Printf("flight recorder: %d events\n", len(events))
	for _, e := range events {
		fmt.Println(e.String())
	}
}

// dumpCheckpoint renders version v's checkpoint chain — the full base plus
// every delta recovery applies on top of it, header by header — then the
// decoded contents of version v's own file. A broken chain (a missing or
// unreadable link) reports which link broke instead of dying mid-decode.
func dumpCheckpoint(fs vfs.FS, v uint64) {
	chain, err := checkpoint.ChainOf(fs, v)
	if err != nil {
		fatal("%v", err)
	}
	if len(chain) == 1 {
		fmt.Printf("checkpoint %d: full image\n", v)
	} else {
		fmt.Printf("checkpoint %d: chain of %d files (full base %d + %d deltas)\n",
			v, len(chain), chain[0], len(chain)-1)
	}
	var prevNext uint64
	for i, cv := range chain {
		name := checkpoint.CheckpointName(cv)
		if i > 0 {
			name = checkpoint.DeltaName(cv)
		}
		size, serr := fs.Stat(name)
		if serr != nil {
			fatal("chain link %s: %v", name, serr)
		}
		hdr, derr := decodeFile(fs, name)
		if derr != nil {
			fatal("chain link %s (%d bytes): undecodable: %v", name, size, derr)
		}
		if i == 0 {
			fmt.Printf("  %-18s %9d bytes  full base, next-seq %s\n",
				name, size, fieldOf(hdr, "NextSeq"))
		} else {
			note := ""
			if from, ok := fieldUint(hdr, "FromSeq"); ok && prevNext != 0 && from != prevNext {
				note = fmt.Sprintf("  (DISCONTINUOUS: parent ends at seq %d)", prevNext)
			}
			fmt.Printf("  %-18s %9d bytes  delta, parent %s, seqs %s..%s, %s subtree ops%s\n",
				name, size, fieldOf(hdr, "Parent"), fieldOf(hdr, "FromSeq"),
				fieldOf(hdr, "NextSeq"), fieldOf(hdr, "Subtrees"), note)
		}
		if n, ok := fieldUint(hdr, "NextSeq"); ok {
			prevNext = n
		}
	}
	name := checkpoint.CheckpointName(v)
	if len(chain) > 1 {
		name = checkpoint.DeltaName(v)
	}
	val, err := decodeFile(fs, name)
	if err != nil {
		fatal("decoding %s: %v", name, err)
	}
	fmt.Printf("%s:\n%s\n", name, pickle.Format(val))
}

// decodeFile generically decodes the single pickled value in a file.
func decodeFile(fs vfs.FS, name string) (any, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pickle.NewDecoder(f).DecodeAny()
}

// fieldOf renders one named field of a generically decoded struct, "?" when
// the file's header doesn't carry it.
func fieldOf(v any, field string) string {
	if p, ok := v.(*any); ok {
		v = *p // checkpoint headers pickle as pointers
	}
	s, ok := v.(pickle.GenericStruct)
	if !ok {
		return "?"
	}
	for _, f := range s.Fields {
		if f.Name == field {
			return fmt.Sprint(f.Value)
		}
	}
	return "?"
}

// fieldUint extracts a named integer field of a generically decoded struct.
func fieldUint(v any, field string) (uint64, bool) {
	n, err := strconv.ParseUint(fieldOf(v, field), 10, 64)
	return n, err == nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "logdump: "+format+"\n", args...)
	os.Exit(1)
}
