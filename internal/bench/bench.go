// Package bench is the experiment harness: it regenerates every
// measurement the paper reports (§5 performance, §6 code size), printing
// paper-vs-measured tables. Each experiment builds its own database on an
// in-memory file system wrapped in the 1987 disk model, so runs are
// reproducible and the paper's *shape* — one disk write per update,
// checkpoint cost dominated by pickling, restart linear in log length — can
// be checked on modern hardware.
//
// Two numbers are reported for each measured quantity:
//
//   - measured: wall-clock on the machine running the experiment, with disk
//     time taken from the disk model's accounting (the in-memory FS itself
//     is effectively free);
//   - 1987-equivalent: measured CPU time multiplied by the profile's
//     CPUSlowdown, plus modeled disk time — the number to put beside the
//     paper's MicroVAX figures.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Env parameterizes an experiment run.
type Env struct {
	// Out receives the experiment's tables.
	Out io.Writer
	// Seed fixes all randomness.
	Seed int64
	// DBEntries sizes the built database; the default approximates the
	// paper's 1 MB name server database.
	DBEntries int
	// ValueSize is the payload per entry.
	ValueSize int
	// Quick shrinks iteration counts for use from tests.
	Quick bool
}

// Defaults fills zero fields.
func (e Env) Defaults() Env {
	if e.Out == nil {
		e.Out = io.Discard
	}
	if e.Seed == 0 {
		e.Seed = 1987
	}
	if e.DBEntries == 0 {
		e.DBEntries = 8000 // ≈1 MB of tree at default value size
	}
	if e.ValueSize == 0 {
		e.ValueSize = 64
	}
	return e
}

func (e Env) iters(full, quick int) int {
	if e.Quick {
		return quick
	}
	return full
}

// Table is one experiment's result, printable as aligned text.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Hist collects latency samples.
type Hist struct {
	samples []time.Duration
}

// Add records one sample.
func (h *Hist) Add(d time.Duration) { h.samples = append(h.samples, d) }

// N reports the sample count.
func (h *Hist) N() int { return len(h.samples) }

// Mean reports the mean sample.
func (h *Hist) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range h.samples {
		total += s
	}
	return total / time.Duration(len(h.samples))
}

// Percentile reports the p-th percentile (0 < p <= 100).
func (h *Hist) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max reports the largest sample.
func (h *Hist) Max() time.Duration {
	var max time.Duration
	for _, s := range h.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Names generates count pseudo-random hierarchical names over a keyspace of
// the given size, deterministic in seed.
func Names(rng *rand.Rand, keyspace, count int) []string {
	out := make([]string, count)
	for i := range out {
		k := rng.Intn(keyspace)
		out[i] = NameFor(k)
	}
	return out
}

// NameFor maps an index to a stable hierarchical name, spreading entries
// over a three-level tree the way a name service spreads hosts over
// domains.
func NameFor(k int) string {
	return fmt.Sprintf("zone%d/host%d/attr%d", k%37, k/37%211, k)
}

// Value builds a deterministic payload of the given size.
func Value(rng *rand.Rand, size int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, size)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// fmtDur renders a duration with sensible precision for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}

// fmtBytes renders a byte count.
func fmtBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	}
}
