// Consistent-hash routing of a flat key space across replica groups — the
// horizontal-scaling layer over the multistore: each group is one
// partition of a Set, and a Ring decides which group owns which key. The
// ring is the classic virtual-node construction, so adding or removing a
// group moves only ~1/N of the keys (every moved key moves to or from the
// changed group) instead of reshuffling everything the way a modulo table
// would.

package multistore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// ErrNoGroups marks a ring or shard set with an empty group list.
var ErrNoGroups = errors.New("multistore: no groups")

// ErrUnknownGroup marks a routing or rebalance target that is not a group.
var ErrUnknownGroup = errors.New("multistore: unknown group")

// DefaultVNodes is the virtual-node count per group when none is
// configured; 64 keeps the per-group load imbalance in the few-percent
// range without making ring edits noticeable.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	group string
}

// Ring maps keys to groups by consistent hashing. A Ring is a pure value:
// it is not safe for concurrent mutation (Shards adds the locking), and
// two rings built from the same group set — in any insertion order — route
// every key identically.
type Ring struct {
	vnodes int
	groups map[string]bool
	points []ringPoint // sorted by (hash, group)
}

// NewRing builds a ring with vnodes virtual nodes per group (0 =
// DefaultVNodes).
func NewRing(vnodes int, groups ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, groups: make(map[string]bool, len(groups))}
	for _, g := range groups {
		if err := r.Add(g); err != nil {
			return nil, err
		}
	}
	if len(r.groups) == 0 {
		return nil, ErrNoGroups
	}
	return r, nil
}

// fnvKey hashes a routing key.
func fnvKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add places a group's virtual nodes on the circle.
func (r *Ring) Add(group string) error {
	if group == "" {
		return fmt.Errorf("%w: empty name", ErrUnknownGroup)
	}
	if r.groups[group] {
		return fmt.Errorf("multistore: group %q already on the ring", group)
	}
	r.groups[group] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: fnvKey(group + "#" + strconv.Itoa(i)), group: group})
	}
	r.sortPoints()
	return nil
}

// Remove takes a group's virtual nodes off the circle; its keys fall to
// their clockwise successors. The last group cannot be removed.
func (r *Ring) Remove(group string) error {
	if !r.groups[group] {
		return fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	if len(r.groups) == 1 {
		return fmt.Errorf("%w: removing last group %q", ErrNoGroups, group)
	}
	delete(r.groups, group)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.group != group {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].group < r.points[j].group
	})
}

// Owner returns the group owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnvKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// Groups lists the ring's groups, sorted.
func (r *Ring) Groups() []string {
	out := make([]string, 0, len(r.groups))
	for g := range r.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Has reports whether group is on the ring.
func (r *Ring) Has(group string) bool { return r.groups[group] }
