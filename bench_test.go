// Benchmarks, one per experiment id in DESIGN.md / EXPERIMENTS.md. They
// measure the raw operations on this machine; the smalldb-bench command
// runs the same workloads under the 1987 disk/CPU model and prints the
// paper-vs-measured tables.
//
//	go test -bench=. -benchmem
package smalldb_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"smalldb"
	"smalldb/internal/baseline/adhoc"
	"smalldb/internal/baseline/textfile"
	"smalldb/internal/baseline/twophase"
	"smalldb/internal/bench"
	"smalldb/internal/nameserver"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// buildServer populates a name server with entries for the read/update
// benches.
func buildServer(b *testing.B, entries int, cfg nameserver.Config) (*nameserver.Server, *vfs.Mem) {
	b.Helper()
	mem := vfs.NewMem(1987)
	cfg.FS = mem
	s, err := nameserver.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < entries; i++ {
		if err := s.Set(bench.NameFor(i), bench.Value(rng, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() { s.Close() })
	return s, mem
}

// BenchmarkE1Enquiry: a pure virtual-memory lookup (paper §5: 5 ms on a
// MicroVAX; the point is zero disk I/O).
func BenchmarkE1Enquiry(b *testing.B) {
	s, _ := buildServer(b, 8000, nameserver.Config{})
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(bench.NameFor(rng.Intn(8000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Update: the full update protocol — verify, pickle, log append
// + sync, in-memory apply (paper §5: 54 ms total, one disk write).
func BenchmarkE2Update(b *testing.B) {
	s, _ := buildServer(b, 8000, nameserver.Config{})
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Set(bench.NameFor(rng.Intn(8000)), bench.Value(rng, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats()
	if st.Updates > 0 {
		b.ReportMetric(float64(st.PickleTime.Nanoseconds())/float64(st.Updates), "pickle-ns/op")
		b.ReportMetric(float64(st.CommitTime.Nanoseconds())/float64(st.Updates), "commit-ns/op")
	}
}

// BenchmarkE3Checkpoint: pickling and writing the whole ~1 MB database
// (paper §5: 55 s pickle + 5 s disk).
func BenchmarkE3Checkpoint(b *testing.B) {
	s, _ := buildServer(b, 8000, nameserver.Config{Retain: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Restart: recovery with a 1000-entry log (paper §5: restart
// time ∝ checkpoint size + log length).
func BenchmarkE4Restart(b *testing.B) {
	mem := vfs.NewMem(1987)
	s, err := nameserver.Open(nameserver.Config{FS: mem})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		s.Set(bench.NameFor(i), bench.Value(rng, 64))
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Set(bench.NameFor(rng.Intn(2000)), bench.Value(rng, 64))
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := nameserver.Open(nameserver.Config{FS: mem})
		if err != nil {
			b.Fatal(err)
		}
		if st := s2.Stats(); st.RestartEntries != 1000 {
			b.Fatalf("replayed %d entries", st.RestartEntries)
		}
		s2.Close()
	}
}

// BenchmarkE5ThroughputBase and ...GroupCommit: concurrent updates, the
// paper's "more than 15 transactions per second" and its group-commit
// improvement (§5).
func BenchmarkE5ThroughputBase(b *testing.B)        { benchThroughput(b, false) }
func BenchmarkE5ThroughputGroupCommit(b *testing.B) { benchThroughput(b, true) }

func benchThroughput(b *testing.B, group bool) {
	s, _ := buildServer(b, 500, nameserver.Config{GroupCommit: group})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(5))
		i := 0
		for pb.Next() {
			if err := s.Set(fmt.Sprintf("bench/k%d", i), bench.Value(rng, 32)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkE6* run the same update on each §2 baseline engine.
func BenchmarkE6TextFile(b *testing.B) {
	mem := vfs.NewMem(1)
	db, err := textfile.Open(mem, "passwd")
	if err != nil {
		b.Fatal(err)
	}
	benchKV(b, db.Update, db.Lookup)
}

func BenchmarkE6AdHoc(b *testing.B) {
	mem := vfs.NewMem(1)
	db, err := adhoc.Open(mem, "data")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	benchKV(b, db.Update, db.Lookup)
}

func BenchmarkE6TwoPhase(b *testing.B) {
	mem := vfs.NewMem(1)
	db, err := twophase.Open(mem)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	benchKV(b, db.Update, db.Lookup)
}

func BenchmarkE6ThisDesign(b *testing.B) {
	s, _ := buildServer(b, 0, nameserver.Config{})
	benchKV(b,
		func(k, v string) error { return s.Set(k, v) },
		func(k string) (string, bool, error) {
			v, err := s.Lookup(k)
			if err != nil {
				return "", false, nil
			}
			return v, true, nil
		})
}

func benchKV(b *testing.B, update func(k, v string) error, lookup func(k string) (string, bool, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		if err := update(fmt.Sprintf("key%03d", i), bench.Value(rng, 48)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(200))
		if i%2 == 0 {
			if err := update(k, bench.Value(rng, 48)); err != nil {
				b.Fatal(err)
			}
		} else if _, _, err := lookup(k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8 measures the two locking modes' update path cost (the
// enquiry-latency contrast is in the harness, which needs a blocking disk).
func BenchmarkE8PaperLocking(b *testing.B)  { benchLockMode(b, false) }
func BenchmarkE8CoarseLocking(b *testing.B) { benchLockMode(b, true) }

func benchLockMode(b *testing.B, coarse bool) {
	s, _ := buildServer(b, 500, nameserver.Config{CoarseLocking: coarse})
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Set(bench.NameFor(rng.Intn(500)), bench.Value(rng, 32)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11RPC: a remote enquiry round trip over the RPC layer (paper
// §5: 13 ms including an 8 ms network; here the transport is an in-memory
// pipe, so this measures marshalling + dispatch).
func BenchmarkE11RPC(b *testing.B) {
	s, _ := buildServer(b, 1000, nameserver.Config{})
	srv := rpc.NewServer()
	if err := srv.Register("NS", nameserver.NewRPCService(s)); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	client := rpc.NewClient(cConn)
	defer client.Close()

	rng := rand.New(rand.NewSource(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reply nameserver.LookupReply
		if err := client.Call("NS.Lookup", &nameserver.LookupArgs{Name: bench.NameFor(rng.Intn(1000))}, &reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14PartitionedApply: an update through the §7 partitioned set —
// same one-disk-write protocol, plus the shared-log bookkeeping.
func BenchmarkE14PartitionedApply(b *testing.B) {
	fs := vfs.NewMem(1)
	set, err := smalldb.OpenMulti(smalldb.MultiConfig{
		FS: fs,
		Partitions: map[string]func() any{
			"p0": func() any { return &bookRoot{Entries: map[string]string{}} },
			"p1": func() any { return &bookRoot{Entries: map[string]string{}} },
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := "p0"
		if i%2 == 1 {
			part = "p1"
		}
		if err := set.Apply(part, &addBook{K: fmt.Sprintf("k%d", i), V: "v"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14PartitionCheckpoint: checkpointing one partition of two.
func BenchmarkE14PartitionCheckpoint(b *testing.B) {
	fs := vfs.NewMem(1)
	set, err := smalldb.OpenMulti(smalldb.MultiConfig{
		FS: fs,
		Partitions: map[string]func() any{
			"p0": func() any { return &bookRoot{Entries: map[string]string{}} },
			"p1": func() any { return &bookRoot{Entries: map[string]string{}} },
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	for i := 0; i < 2000; i++ {
		set.Apply("p0", &addBook{K: fmt.Sprintf("k%d", i), V: "v"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.Checkpoint("p0"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- facade tests: the public API end to end ---

type bookRoot struct {
	Entries map[string]string
}

type addBook struct{ K, V string }

func (u *addBook) Verify(root any) error {
	if u.K == "" {
		return errors.New("empty key")
	}
	return nil
}

func (u *addBook) Apply(root any) error {
	root.(*bookRoot).Entries[u.K] = u.V
	return nil
}

func init() {
	smalldb.Register(&bookRoot{})
	smalldb.RegisterUpdate(&addBook{})
}

func TestFacadeEndToEnd(t *testing.T) {
	fs := smalldb.NewMemFS(1)
	cfg := smalldb.Config{
		FS:      fs,
		NewRoot: func() any { return &bookRoot{Entries: map[string]string{}} },
		Retain:  1,
	}
	st, err := smalldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(&addBook{K: "k", V: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(&addBook{K: "k2", V: "v2"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	fs.Crash()

	st2, err := smalldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	err = st2.View(func(root any) error {
		b := root.(*bookRoot)
		if b.Entries["k"] != "v" || b.Entries["k2"] != "v2" {
			return fmt.Errorf("entries wrong: %v", b.Entries)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Apply(&addBook{}); err == nil {
		t.Fatal("precondition failure not surfaced through facade")
	}
}

func TestFacadeAuditTrail(t *testing.T) {
	fs := smalldb.NewMemFS(1)
	cfg := smalldb.Config{
		FS:          fs,
		NewRoot:     func() any { return &bookRoot{Entries: map[string]string{}} },
		ArchiveLogs: true,
	}
	st, err := smalldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Apply(&addBook{K: "one", V: "1"})
	st.Checkpoint()
	st.Apply(&addBook{K: "two", V: "2"})

	var trail []string
	err = st.History(func(seq uint64, u smalldb.Update) error {
		trail = append(trail, fmt.Sprintf("%d:%s", seq, u.(*addBook).K))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) != 2 || trail[0] != "1:one" || trail[1] != "2:two" {
		t.Errorf("audit trail = %v", trail)
	}
}

func TestFacadeDirFS(t *testing.T) {
	dir := t.TempDir()
	fs, err := smalldb.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smalldb.Config{
		FS:      fs,
		NewRoot: func() any { return &bookRoot{Entries: map[string]string{}} },
	}
	st, err := smalldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(&addBook{K: "disk", V: "real"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := smalldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	st2.View(func(root any) error {
		if root.(*bookRoot).Entries["disk"] != "real" {
			t.Error("durability on the real file system failed")
		}
		return nil
	})
}
