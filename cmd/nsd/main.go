// Command nsd is the name-server daemon: the paper's worked example as a
// running network service. It stores its database (checkpoint + log) in a
// directory, serves enquiries and updates over the RPC protocol, and
// optionally replicates to peer daemons.
//
// Usage:
//
//	nsd -dir /var/lib/nsd -listen :7001
//	nsd -dir /var/lib/nsd2 -listen :7002 -name beta -peers alpha=localhost:7001
//	nsd -dir /var/lib/nsd -listen :7001 -debug :7070 -slow 50ms
//	nsd -dir /var/lib/nsd1 -listen :7001 -name alpha -quorum 2 \
//	    -peers beta=localhost:7002,gamma=localhost:7003
//
// Without -name, the daemon runs unreplicated and serves the "NS" service.
// With -name, it additionally serves the "Replica" service, pushes updates
// to its peers, and runs anti-entropy every -anti-entropy interval.
//
// With -quorum W (requires -name and -peers), the daemon instead runs as
// the primary of an N-way replica group: every NS.Set/Delete is
// acknowledged only once W members (itself included) have it durably, with
// laggards repaired by the group's background anti-entropy. W=0 on a peer
// daemon leaves it a plain replica member serving quorum pushes and
// bounded-staleness Replica.Read enquiries (see nsctl read); give each
// peer a -peers list of its fellow members so a Read behind the client's
// floor can catch itself up in place instead of redirecting.
//
// With -debug, the daemon serves a live observability endpoint: /metrics
// (JSON counters and histogram percentiles), /stats (human-readable, with
// ?buckets=1 for full distributions and a recent-events ring), and
// /debug/pprof/. With -slow, operations slower than the threshold (and all
// errors) are logged.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

func main() {
	var (
		dir         = flag.String("dir", "", "database directory (required)")
		listen      = flag.String("listen", ":7001", "RPC listen address")
		name        = flag.String("name", "", "replica name; enables replication")
		peers       = flag.String("peers", "", "comma-separated name=addr peer list")
		quorum      = flag.Int("quorum", 0, "write quorum; >0 runs this daemon as a replica-group primary committing at W members")
		checkpoint  = flag.Duration("checkpoint", 24*time.Hour, "checkpoint interval (the paper's nightly checkpoint)")
		antiEntropy = flag.Duration("anti-entropy", time.Minute, "anti-entropy interval (replicated mode)")
		retain      = flag.Int("retain", 1, "previous checkpoint+log pairs kept for hard-error recovery")
		debug       = flag.String("debug", "", "serve /metrics, /stats and /debug/pprof on this address")
		slow        = flag.Duration("slow", 0, "log operations slower than this (0 disables)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "nsd: -dir is required")
		os.Exit(2)
	}

	fs, err := vfs.NewOS(*dir)
	if err != nil {
		log.Fatalf("nsd: %v", err)
	}

	// The registry is always built (it is one map); -debug decides
	// whether it is served. The tracer fans out to the /stats
	// recent-events ring, the span collector behind /debug/trace and the
	// "Trace" RPC service, the crash-surviving flight recorder in the
	// database directory, and (with -slow) the slow-op logger.
	reg := obs.NewRegistry()
	recorder := obs.NewRecorder(128)
	traces := obs.NewTraceBuffer(4096)
	flight, err := obs.OpenFlight(obs.FlightConfig{FS: fs, FlushEvery: 250 * time.Millisecond})
	if err != nil {
		log.Fatalf("nsd: flight recorder: %v", err)
	}
	defer flight.PanicFlush()
	var tracer obs.Tracer = obs.Multi(recorder, traces, flight)
	if *slow > 0 {
		tracer = obs.Multi(recorder, traces, flight, obs.SlowOps(*slow, log.Printf))
	}
	startTime := time.Now()
	reg.Register("proc_uptime_seconds", func() any { return int64(time.Since(startTime).Seconds()) })
	reg.Register("proc_goroutines", func() any { return runtime.NumGoroutine() })

	srv := rpc.NewServer()
	srv.Instrument(reg, tracer)
	if err := srv.Register("Trace", nameserver.NewTraceService(traces)); err != nil {
		log.Fatalf("nsd: %v", err)
	}
	var closer interface{ Close() error }

	if *name == "" {
		ns, err := nameserver.Open(nameserver.Config{FS: fs, Retain: *retain, Obs: reg, Tracer: tracer})
		if err != nil {
			log.Fatalf("nsd: open: %v", err)
		}
		ns.CheckpointEvery(*checkpoint)
		if err := srv.Register("NS", nameserver.NewRPCService(ns)); err != nil {
			log.Fatalf("nsd: %v", err)
		}
		closer = ns
		log.Printf("nsd: serving %s (unreplicated) on %s", *dir, *listen)
	} else {
		node, err := replica.Open(replica.Config{Name: *name, FS: fs, Retain: *retain, Obs: reg, Tracer: tracer})
		if err != nil {
			log.Fatalf("nsd: open replica: %v", err)
		}
		node.Store().CheckpointEvery(*checkpoint)
		if err := srv.Register("Replica", replica.NewService(node)); err != nil {
			log.Fatalf("nsd: %v", err)
		}
		if *quorum > 0 {
			// Replica-group primary: NS updates quorum-commit through the
			// group; the group owns push streams and anti-entropy repair.
			gcfg, err := replica.ParseGroupSpec(*name, *peers, *quorum)
			if err != nil {
				log.Fatalf("nsd: group config: %v", err)
			}
			gcfg.AntiEntropyEvery = *antiEntropy
			gcfg.Obs = reg
			gcfg.Tracer = tracer
			group, err := replica.NewGroup(node, gcfg)
			if err != nil {
				log.Fatalf("nsd: group: %v", err)
			}
			for _, m := range gcfg.Members {
				if m.Name == *name {
					continue
				}
				// Lazy reconnecting client: a member need not be up yet,
				// and a member restart just redials on the next push or
				// repair round.
				client := rpc.DialRetry(m.Addr)
				client.Instrument(reg)
				if err := group.Connect(m.Name, client); err != nil {
					log.Fatalf("nsd: connect %s: %v", m.Name, err)
				}
				// Also expose the member as a node peer so Replica.Read's
				// server-side catch-up (SyncWith) can repair a stale read
				// in place instead of always redirecting. The client is
				// shared with the group's push stream; Close is
				// idempotent, so the double ownership is safe.
				node.AddPeer(m.Name, client)
			}
			if err := srv.Register("NS", replica.NewGroupNSService(group)); err != nil {
				log.Fatalf("nsd: %v", err)
			}
			closer = multiCloser{group, node}
			log.Printf("nsd: serving %s as group primary %q (N=%d, W=%d) on %s",
				*dir, *name, len(gcfg.Members), group.W(), *listen)
		} else {
			if err := srv.Register("NS", replica.NewNSService(node)); err != nil {
				log.Fatalf("nsd: %v", err)
			}
			for _, spec := range splitPeers(*peers) {
				pname, addr, ok := strings.Cut(spec, "=")
				if !ok {
					log.Fatalf("nsd: bad -peers entry %q (want name=addr)", spec)
				}
				// Lazy reconnecting client: the peer need not be up yet, and
				// a peer restart just redials on the next push or
				// anti-entropy round.
				client := rpc.DialRetry(addr)
				client.Instrument(reg)
				node.AddPeer(pname, client)
			}
			node.AntiEntropyEvery(*antiEntropy)
			closer = node
			log.Printf("nsd: serving %s as replica %q on %s", *dir, *name, *listen)
		}
	}

	var admin *obs.AdminServer
	if *debug != "" {
		admin, err = obs.ServeAdminOpts(*debug, reg, obs.MuxOptions{Recorder: recorder, Traces: traces, Flight: flight})
		if err != nil {
			log.Fatalf("nsd: debug listen: %v", err)
		}
		log.Printf("nsd: debug endpoint on http://%s (/metrics /stats /debug/trace /debug/flight /debug/pprof/)", admin.Addr)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("nsd: listen: %v", err)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Printf("nsd: serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("nsd: shutting down")
	srv.Close()
	admin.Close()
	if err := closer.Close(); err != nil {
		log.Printf("nsd: close: %v", err)
	}
	if err := flight.Close(); err != nil {
		log.Printf("nsd: flight close: %v", err)
	}
}

// multiCloser shuts components down in order, keeping the first error.
type multiCloser []interface{ Close() error }

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
