// Package crashtest is a deterministic crash-point torture harness for the
// store: it records a seeded workload of name-server updates, counts the N
// mutating file-system operations the workload performs, and then — for
// every crash point n in [0, N] — replays the workload on a fresh file
// system that crashes exactly before operation n, reopens the database
// through the normal restart path (checkpoint load + log replay), and
// checks the paper's durability contract:
//
//   - every update acknowledged to the client before the crash is present
//     after recovery;
//   - no unacknowledged update is half-applied (a multi-arc PutSubtree is
//     one log entry: all or nothing);
//   - the recovered state equals, bit for bit, the in-memory oracle of the
//     acknowledged prefix — and after catch-up (replaying the remaining
//     updates, or pulling them from a replica peer) it equals the oracle of
//     the full workload.
//
// Because the workload, the file-system op indexing and the recovery path
// are all deterministic, any violation is replayable from just (seed, n).
package crashtest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
)

// plan is a recorded workload: a deterministic update sequence together
// with the oracle fingerprint after every prefix. The update values are
// immutable once built, so one plan is shared by every crash-point replay.
type plan struct {
	updates []core.Update
	// fp[k] is the fingerprint of the oracle tree after the first k
	// updates; len(fp) == len(updates)+1.
	fp []uint64
}

// makePlan generates ops updates from seed. Each update is produced against
// a simulated oracle tree so that its preconditions hold at the point in
// the sequence where it runs — which also makes the tail of the plan
// replayable against any correctly recovered prefix.
func makePlan(seed int64, ops int) *plan {
	rng := rand.New(rand.NewSource(seed))
	oracle := nameserver.NewTree()
	p := &plan{fp: make([]uint64, 0, ops+1)}
	p.fp = append(p.fp, fingerprintTree(oracle))
	for i := 0; i < ops; i++ {
		u := genUpdate(rng, oracle, i)
		if err := u.Verify(oracle); err != nil {
			// The generator only emits valid updates; a failure here is
			// a bug in the generator itself.
			panic(fmt.Sprintf("crashtest: generated invalid update %d: %v", i, err))
		}
		if err := u.Apply(oracle); err != nil {
			panic(fmt.Sprintf("crashtest: oracle apply %d: %v", i, err))
		}
		p.updates = append(p.updates, u)
		p.fp = append(p.fp, fingerprintTree(oracle))
	}
	return p
}

// labels is the small component pool paths are drawn from; a small pool
// makes updates collide on shared prefixes, exercising deep overwrites,
// deletes of populated subtrees and moves across them.
var labels = []string{"net", "usr", "srv", "db", "a", "b", "c", "d"}

func randPath(rng *rand.Rand) []string {
	depth := 1 + rng.Intn(3)
	p := make([]string, depth)
	for i := range p {
		p[i] = labels[rng.Intn(len(labels))]
	}
	return p
}

// existingPaths lists every non-root node currently in the oracle, in
// depth-first sorted order (deterministic for a given tree).
func existingPaths(t *nameserver.Tree) [][]string {
	var out [][]string
	var walk func(n *nameserver.Node, path []string)
	walk = func(n *nameserver.Node, path []string) {
		if len(path) > 0 {
			out = append(out, append([]string(nil), path...))
		}
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.Children[k], append(path, k))
		}
	}
	walk(t.Root, nil)
	return out
}

// genUpdate emits the i-th update: mostly single-value sets, plus multi-arc
// subtree installs (the atomicity probe: several names change in one
// transaction), deletes of whole populated subtrees, and renames.
func genUpdate(rng *rand.Rand, oracle *nameserver.Tree, i int) core.Update {
	roll := rng.Intn(100)
	switch {
	case roll < 55:
		return &nameserver.SetValue{Path: randPath(rng), Value: fmt.Sprintf("v%d-%d", i, rng.Intn(1000))}
	case roll < 70:
		return &nameserver.PutSubtree{Path: randPath(rng), Subtree: randSubtree(rng, i)}
	case roll < 85:
		ex := existingPaths(oracle)
		if len(ex) == 0 {
			return &nameserver.SetValue{Path: randPath(rng), Value: fmt.Sprintf("v%d", i)}
		}
		return &nameserver.DeleteSubtree{Path: ex[rng.Intn(len(ex))]}
	default:
		ex := existingPaths(oracle)
		for try := 0; try < 8 && len(ex) > 0; try++ {
			from := ex[rng.Intn(len(ex))]
			to := randPath(rng)
			if oracle.FindNode(to) == nil && !pathPrefix(from, to) && !pathPrefix(to, from) {
				return &nameserver.Move{From: from, To: to}
			}
		}
		return &nameserver.SetValue{Path: randPath(rng), Value: fmt.Sprintf("v%d", i)}
	}
}

// randSubtree builds a small multi-arc subtree: a valued root with several
// valued children, so one PutSubtree changes several names atomically.
func randSubtree(rng *rand.Rand, i int) *nameserver.Node {
	n := &nameserver.Node{Value: fmt.Sprintf("sub%d", i), HasValue: true, Children: map[string]*nameserver.Node{}}
	for j, arcs := 0, 2+rng.Intn(3); j < arcs; j++ {
		n.Children[labels[rng.Intn(len(labels))]] = &nameserver.Node{
			Value: fmt.Sprintf("sub%d-%d", i, j), HasValue: true,
		}
	}
	return n
}

func pathPrefix(prefix, path []string) bool {
	if len(path) < len(prefix) {
		return false
	}
	for i := range prefix {
		if path[i] != prefix[i] {
			return false
		}
	}
	return true
}

// fingerprintTree hashes a canonical enumeration of the tree: every node in
// depth-first sorted order with its path, value presence and value. The
// replication stamps (Stamp, StampBy) are excluded so the same oracle
// fingerprints serve both the bare store and the replicated store.
func fingerprintTree(t *nameserver.Tree) uint64 {
	h := fnv.New64a()
	var walk func(n *nameserver.Node, path []string)
	walk = func(n *nameserver.Node, path []string) {
		for _, p := range path {
			h.Write([]byte(p))
			h.Write([]byte{'/'})
		}
		if n.HasValue {
			h.Write([]byte{'='})
			h.Write([]byte(n.Value))
		}
		h.Write([]byte{0})
		keys := make([]string, 0, len(n.Children))
		for k := range n.Children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.Children[k], append(path, k))
		}
	}
	if t != nil && t.Root != nil {
		walk(t.Root, nil)
	}
	return h.Sum64()
}

// recorder captures, during the reference run, the op-index window of each
// update: startOp[k] is the op count just before update k was issued,
// ackOp[k] the count right after its acknowledgement. Update k is
// acknowledged before a crash at point n exactly when ackOp[k] <= n (all
// its ops, including the commit-point sync, have indices < n).
type recorder struct {
	startOp []int64
	ackOp   []int64
}

func (r *recorder) start(op int64) { r.startOp = append(r.startOp, op) }
func (r *recorder) ack(op int64)   { r.ackOp = append(r.ackOp, op) }

// ackedAt reports how many updates had been acknowledged before a crash at
// point n.
func (r *recorder) ackedAt(n int64) int {
	return sort.Search(len(r.ackOp), func(i int) bool { return r.ackOp[i] > n })
}

// attemptedAt reports how many updates had issued at least one file-system
// operation before a crash at point n — the upper bound on what recovery
// may surface.
func (r *recorder) attemptedAt(n int64) int {
	return sort.Search(len(r.startOp), func(i int) bool { return r.startOp[i] >= n })
}
