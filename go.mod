module smalldb

go 1.22
