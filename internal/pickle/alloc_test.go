package pickle

import (
	"strings"
	"testing"
)

// The store's hot path pickles a record carrying the update behind an
// interface (core.logRecord) on every commit, and unpickles the same shape
// on every replayed entry at restart. These tests pin alloc ceilings on
// that shape so a regression in the compiled codec plans or the pooled
// encoder/decoder state shows up as a test failure, not a slow restart.

type allocUpdate struct {
	Path  []string
	Value string
}

type allocRecord struct {
	U any
}

func init() {
	Register(&allocUpdate{})
}

var allocRec = &allocRecord{U: &allocUpdate{
	Path:  []string{"usr", "srv", "db"},
	Value: "v42-frontend",
}}

func TestMarshalAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	// Warm the plan cache; plan compilation is a one-time cost.
	if _, err := Marshal(allocRec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(allocRec); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc for the returned buffer; everything else is pooled.
	if allocs > 2 {
		t.Errorf("Marshal(record): %.1f allocs/op, want <= 2", allocs)
	}
}

func TestAppendMarshalAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	buf := make([]byte, 0, 256)
	if _, err := AppendMarshal(buf, allocRec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := AppendMarshal(buf[:0], allocRec); err != nil {
			t.Fatal(err)
		}
	})
	// With a caller-owned destination even the output buffer is reused.
	if allocs > 1 {
		t.Errorf("AppendMarshal(record): %.1f allocs/op, want <= 1", allocs)
	}
}

func TestUnmarshalAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	data, err := Marshal(allocRec)
	if err != nil {
		t.Fatal(err)
	}
	var warm allocRecord
	if err := Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var out allocRecord
		if err := Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
	})
	// The decoded value itself costs allocations (concrete update, path
	// slice, four strings); the decoder machinery must add almost nothing
	// on top. The seed decoder spent 13 allocs on a two-field struct.
	if allocs > 10 {
		t.Errorf("Unmarshal(record): %.1f allocs/op, want <= 10", allocs)
	}
}

func BenchmarkUnmarshalLargeMap(b *testing.B) {
	m := make(map[string]string, 1000)
	for i := 0; i < 1000; i++ {
		m[strings.Repeat("k", 8)+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('0'+(i/10)%10))+string(rune('0'+(i/100)%10))] = strings.Repeat("v", 32)
	}
	data, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out map[string]string
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalStructKeyedMap exercises the compiled key comparer: a
// checkpoint-style map whose keys sort through field-by-field comparison
// rather than the string fast path.
func BenchmarkMarshalStructKeyedMap(b *testing.B) {
	type key struct {
		Host string
		Port int
	}
	m := make(map[key]string, 500)
	for i := 0; i < 500; i++ {
		m[key{Host: strings.Repeat("h", 6) + string(rune('a'+i%26)), Port: i}] = "addr"
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}
