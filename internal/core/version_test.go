package core

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// A versioned variant of the kv test root: SnapshotView copies the table,
// opting the store into lock-free snapshot enquiries.
type vkvRoot struct {
	Data map[string]string
}

func newVKV() any { return &vkvRoot{Data: make(map[string]string)} }

func (r *vkvRoot) SnapshotView() any {
	c := make(map[string]string, len(r.Data))
	for k, v := range r.Data {
		c[k] = v
	}
	return &vkvRoot{Data: c}
}

type putVKV struct {
	Key, Value string
}

func (u *putVKV) Verify(root any) error { return nil }
func (u *putVKV) Apply(root any) error {
	root.(*vkvRoot).Data[u.Key] = u.Value
	return nil
}

func init() {
	pickle.Register(&vkvRoot{})
	RegisterUpdate(&putVKV{})
}

func openVKV(t *testing.T, mod ...func(*Config)) *Store {
	t.Helper()
	cfg := Config{FS: vfs.NewMem(1), NewRoot: newVKV, Retain: 1}
	for _, m := range mod {
		m(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func putN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Apply(&putVKV{Key: "k", Value: strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotPinnedAcrossPublishes pins one snapshot while the writer
// publishes many newer versions: the snapshot's content must never move,
// superseded versions must accumulate (reclamation is blocked by the
// pin), and a single Release must let the next publish reclaim them all.
func TestSnapshotPinnedAcrossPublishes(t *testing.T) {
	s := openVKV(t)
	defer s.Close()

	if err := s.Apply(&putVKV{Key: "k", Value: "pinned"}); err != nil {
		t.Fatal(err)
	}
	snap, err := s.SnapshotAt()
	if err != nil {
		t.Fatal(err)
	}
	seq := snap.Seq()

	putN(t, s, 10)
	if got := s.RetainedVersions(); got == 0 {
		t.Fatal("no superseded versions retained while a reader holds a pin")
	}
	if snap.Seq() != seq {
		t.Fatalf("snapshot seq moved: %d → %d", seq, snap.Seq())
	}
	if got := snap.Root().(*vkvRoot).Data["k"]; got != "pinned" {
		t.Fatalf("pinned snapshot shows %q, want %q", got, "pinned")
	}

	snap.Release()
	putN(t, s, 1) // the next publish runs reclamation
	if got := s.RetainedVersions(); got != 0 {
		t.Fatalf("%d versions still retained after the only pin was released", got)
	}
}

// TestReclamationUnderChurn runs pin/unpin churn against a committing
// writer: retained versions must not grow without bound, and once the
// readers stop, one more publish must drain the retired list completely.
func TestReclamationUnderChurn(t *testing.T) {
	s := openVKV(t)
	defer s.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap, err := s.SnapshotAt()
				if err != nil {
					t.Error(err)
					return
				}
				_ = snap.Root().(*vkvRoot).Data["k"]
				snap.Release()
				runtime.Gosched()
			}
		}()
	}

	ops := 2000
	if testing.Short() {
		ops = 300
	}
	maxRetained := 0
	for i := 0; i < ops; i++ {
		if err := s.Apply(&putVKV{Key: "k", Value: strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
		if n := s.RetainedVersions(); n > maxRetained {
			maxRetained = n
		}
	}
	stop.Store(true)
	wg.Wait()

	// The retained count is bounded by the versions published since the
	// oldest outstanding pin — not by the reader count, since a descheduled
	// reader can hold one pin across many publishes. The hard invariant is
	// that churn never wedges reclamation: once the readers stop, a single
	// publish must drain the retired list completely.
	t.Logf("retained versions peaked at %d across %d publishes", maxRetained, ops)
	putN(t, s, 1)
	if got := s.RetainedVersions(); got != 0 {
		t.Fatalf("%d versions retained after all readers stopped", got)
	}
}

// TestPinTableOverflow exhausts the pin table: snapshot number pinSlots+N
// must still succeed (degrading to an unpinned read the garbage collector
// keeps safe) and count the overflow, and every overflowed snapshot must
// keep reading its version's content even after the store has reclaimed
// it.
func TestPinTableOverflow(t *testing.T) {
	reg := obs.NewRegistry()
	s := openVKV(t, func(c *Config) { c.Obs = reg })
	defer s.Close()

	if err := s.Apply(&putVKV{Key: "k", Value: "old"}); err != nil {
		t.Fatal(err)
	}
	const extra = 6
	snaps := make([]*Snapshot, 0, pinSlots+extra)
	for i := 0; i < pinSlots+extra; i++ {
		snap, err := s.SnapshotAt()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		snaps = append(snaps, snap)
	}
	if got := reg.Counter("core_enquiry_pin_overflow").Value(); got != extra {
		t.Fatalf("pin overflow counter = %d, want %d", got, extra)
	}

	// Supersede and reclaim; unpinned snapshots must still read "old".
	putN(t, s, pinSlots)
	for i, snap := range snaps {
		if got := snap.Root().(*vkvRoot).Data["k"]; got != "old" {
			t.Fatalf("snapshot %d shows %q after reclamation, want %q", i, got, "old")
		}
		snap.Release()
	}
	putN(t, s, 1)
	if got := s.RetainedVersions(); got != 0 {
		t.Fatalf("%d versions retained after releasing every snapshot", got)
	}
}

// TestVersionedLockSeries checks the /stats surface (the satellite fix for
// dead series): a versioned store must not export the never-acquired
// shared-lock metrics, while the locked-enquiries ablation — whose reads
// really do take the shared lock — must.
func TestVersionedLockSeries(t *testing.T) {
	hasShared := func(reg *obs.Registry) bool {
		for _, n := range reg.Names() {
			if strings.Contains(n, "lock_shared") {
				return true
			}
		}
		return false
	}

	reg := obs.NewRegistry()
	s := openVKV(t, func(c *Config) { c.Obs = reg })
	if hasShared(reg) {
		t.Error("versioned store exports dead core_lock_shared_* series")
	}
	for _, want := range []string{
		"core_versions_published", "core_versions_retained",
		"core_version_epoch", "core_reader_pins",
	} {
		found := false
		for _, n := range reg.Names() {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("versioned store missing %s", want)
		}
	}
	s.Close()

	lreg := obs.NewRegistry()
	ls := openVKV(t, func(c *Config) { c.Obs = lreg; c.LockedEnquiries = true })
	defer ls.Close()
	if !hasShared(lreg) {
		t.Error("locked-enquiries store should export the shared-lock series it uses")
	}
}

// TestUnversionedRootFallsBack pins the opt-in contract: a root without
// SnapshotView keeps the pre-versioning behaviour — View under the shared
// lock, SnapshotAt refused.
func TestUnversionedRootFallsBack(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	if _, err := s.SnapshotAt(); err != ErrNotVersioned {
		t.Fatalf("SnapshotAt on unversioned root = %v, want ErrNotVersioned", err)
	}
	if err := s.Apply(&putKV{Key: "a", Value: "1"}); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := s.View(func(root any) error {
		got = root.(*kvRoot).Data["a"]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Fatalf("View read %q, want %q", got, "1")
	}
}

// TestVersionsSurviveRestart checks that recovery republishes: a reopened
// versioned store serves snapshots of the recovered state immediately.
func TestVersionsSurviveRestart(t *testing.T) {
	fs := vfs.NewMem(1)
	cfg := Config{FS: fs, NewRoot: newVKV, Retain: 1}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(&putVKV{Key: "k", Value: "durable"}); err != nil {
		t.Fatal(err)
	}
	seq := s.AppliedSeq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.SnapshotAt()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.Seq() != seq {
		t.Fatalf("recovered snapshot at seq %d, want %d", snap.Seq(), seq)
	}
	if got := snap.Root().(*vkvRoot).Data["k"]; got != "durable" {
		t.Fatalf("recovered snapshot shows %q, want %q", got, "durable")
	}
}
