// Lock-free snapshot enquiries: copy-on-write versions of the database
// root, published through an atomic pointer, with epoch-based reclamation.
//
// The paper's three-mode lock already keeps enquiries running during disk
// transfers; what it cannot do is keep them running during the in-memory
// apply — the exclusive section excludes every reader for the duration of
// the virtual-memory mutation. With a root whose updates are persistent
// (copy-on-write along the touched path, everything else structurally
// shared), the writer can instead build the next version privately and
// publish it with one atomic store ordered after the WAL commit. An
// enquiry then loads the current version pointer and pointer-chases with
// no lock, no blocking and no exclusion window at all.
//
// Opt-in: a root type that implements VersionedRoot promises that a value
// returned by SnapshotView is never mutated again by later updates, so the
// store may hand it to concurrent readers. The nameserver tree and the
// replica root implement it; Config.LockedEnquiries restores the paper's
// shared-lock enquiries as an ablation.
//
// Reclamation is epoch-based. A global epoch advances on every publish;
// readers pin the epoch they entered at into one of a fixed array of
// slots; a superseded version is stamped with the epoch that retired it
// and reclaimed once every pinned epoch is newer. In Go the garbage
// collector makes a stale version memory-safe regardless — "reclaiming"
// here means dropping the store's own reference so the GC can collect it —
// so the epoch machinery's jobs are to bound how many superseded versions
// the store retains, to make retention observable (core_versions_retained,
// core_reader_pins), and to keep the protocol honest for a port to a
// non-collected runtime.
package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"smalldb/internal/obs"
)

// VersionedRoot is implemented by database roots that support lock-free
// snapshot enquiries. SnapshotView returns a view of the current state —
// typically a fresh wrapper sharing all interior structure — that will
// never be mutated by any later update: every subsequent Apply must be
// copy-on-write with respect to everything reachable from the returned
// value. SnapshotView is called by the store's single writer (under the
// exclusive lock, or during single-threaded recovery), immediately after
// each update applies.
type VersionedRoot interface {
	SnapshotView() any
}

// ErrNotVersioned is returned by SnapshotAt when the store's root does not
// implement VersionedRoot (or Config.LockedEnquiries disabled versioning).
var ErrNotVersioned = errors.New("core: root is not versioned")

// version is one published, immutable state of the database.
type version struct {
	root any    // the VersionedRoot's snapshot view; never mutated
	seq  uint64 // sequence of the last update applied to it
	// retireEpoch is the epoch whose publish superseded this version; set
	// by the writer when the version is retired, read by reclamation.
	retireEpoch uint64
}

// pinSlots is the size of the reader-pin table. Claiming is a bounded
// probe, so more concurrent pinned readers than slots degrades gracefully
// to unpinned (GC-backed) reads rather than blocking.
const pinSlots = 64

// pinSlot is one reader-pin entry, padded to its own cache line so
// concurrent readers on different slots do not false-share.
type pinSlot struct {
	// epoch holds 0 when free, pinned-epoch+1 when claimed.
	epoch atomic.Uint64
	_     [56]byte
}

// versionSet is the store's version-publication state. The zero value is
// an unversioned store (pub stays nil and View falls back to the lock).
type versionSet struct {
	pub   atomic.Pointer[version]
	epoch atomic.Uint64
	slots [pinSlots]pinSlot
	rr    atomic.Uint32 // round-robin hint for slot claiming

	// mu guards retired. Publishes are serialized by the store's write
	// path already; the mutex makes reclamation callable from tests and
	// keeps the invariant local.
	mu      sync.Mutex
	retired []*version
}

// versionMetrics wires the version machinery into a registry; all fields
// are nil-safe.
type versionMetrics struct {
	published   *obs.Counter
	reclaimed   *obs.Counter
	pinOverflow *obs.Counter
	locked      *obs.Counter
}

// initVersionObs registers the version gauges and counters.
func (s *Store) initVersionObs(reg *obs.Registry) {
	s.vm.published = reg.Counter("core_versions_published")
	s.vm.reclaimed = reg.Counter("core_versions_reclaimed")
	s.vm.pinOverflow = reg.Counter("core_enquiry_pin_overflow")
	s.vm.locked = reg.Counter("core_enquiries_locked")
	if reg == nil {
		return
	}
	reg.Register("core_version_epoch", func() any { return int64(s.vs.epoch.Load()) })
	reg.Register("core_versions_retained", func() any { return int64(s.RetainedVersions()) })
	reg.Register("core_reader_pins", func() any { return int64(s.vs.pinnedReaders()) })
}

// pinnedReaders counts currently claimed pin slots.
func (v *versionSet) pinnedReaders() int {
	n := 0
	for i := range v.slots {
		if v.slots[i].epoch.Load() != 0 {
			n++
		}
	}
	return n
}

// publish makes view the current version at seq, retires the previous one
// and reclaims every retired version no pinned reader can still hold.
// Called only from the store's serialized write path (the exclusive
// section of an apply, or single-threaded recovery).
func (v *versionSet) publish(view any, seq uint64, published, reclaimed *obs.Counter) {
	e := v.epoch.Add(1)
	old := v.pub.Swap(&version{root: view, seq: seq})
	published.Inc()
	if old == nil {
		return
	}
	old.retireEpoch = e
	v.mu.Lock()
	v.retired = append(v.retired, old)
	v.reclaim(reclaimed)
	v.mu.Unlock()
}

// reclaim drops retired versions whose retire epoch precedes every pinned
// reader. Callers hold v.mu.
//
// Safety: a reader pins epoch p (read from v.epoch) before loading the
// version pointer. Publishes are serialized and each advances the epoch
// before swapping the pointer, so a reader that pinned p > retireEpoch(V)
// observed an epoch advance that happens after the swap which retired V —
// its subsequent pointer load cannot return V. A reader whose pin was not
// yet visible when we scan the slots claimed its slot after our scan read
// it free, which orders its pointer load after the retiring swap too.
// Hence: no pin ≤ retireEpoch(V) observed ⇒ no reader holds V.
func (v *versionSet) reclaim(reclaimed *obs.Counter) {
	minPinned := uint64(0) // 0 = no pinned readers
	for i := range v.slots {
		if p := v.slots[i].epoch.Load(); p != 0 {
			if pin := p - 1; minPinned == 0 || pin < minPinned {
				minPinned = pin
			}
		}
	}
	kept := v.retired[:0]
	for _, old := range v.retired {
		if minPinned != 0 && old.retireEpoch >= minPinned {
			kept = append(kept, old)
			continue
		}
		reclaimed.Inc()
	}
	// Drop the reclaimed tail's pointers so the GC can collect the roots.
	for i := len(kept); i < len(v.retired); i++ {
		v.retired[i] = nil
	}
	v.retired = kept
}

// pin claims a slot and records the current epoch in it, returning the
// slot (nil when the table is full — the caller proceeds unpinned, which
// is safe under GC but exempts it from retention accounting).
func (v *versionSet) pin() *pinSlot {
	e := v.epoch.Load() + 1 // stored value; 0 means free
	start := v.rr.Add(1)
	for i := uint32(0); i < pinSlots; i++ {
		s := &v.slots[(start+i)%pinSlots]
		if s.epoch.CompareAndSwap(0, e) {
			return s
		}
	}
	return nil
}

// unpin releases a slot claimed by pin.
func (v *versionSet) unpin(s *pinSlot) {
	if s != nil {
		s.epoch.Store(0)
	}
}

// Snapshot is a pinned, immutable view of the database at one committed
// sequence number. It stays valid — and exempt from reclamation — until
// Release. A Snapshot is obtained lock-free; holding one never blocks
// updates or checkpoints.
type Snapshot struct {
	vs   *versionSet
	v    *version
	slot *pinSlot
}

// SnapshotAt returns a pinned snapshot of the current published version.
// The snapshot's Root is safe to read concurrently with every store
// operation; callers must Release it when done (Release is cheap and
// idempotent via the nil slot path, but call it exactly once).
func (s *Store) SnapshotAt() (*Snapshot, error) {
	slot := s.vs.pin()
	v := s.vs.pub.Load()
	if v == nil {
		s.vs.unpin(slot)
		return nil, ErrNotVersioned
	}
	if slot == nil {
		s.vm.pinOverflow.Inc()
	}
	return &Snapshot{vs: &s.vs, v: v, slot: slot}, nil
}

// Seq reports the sequence number of the last update included in the
// snapshot.
func (sn *Snapshot) Seq() uint64 { return sn.v.seq }

// Root returns the snapshot's immutable database root.
func (sn *Snapshot) Root() any { return sn.v.root }

// View runs fn on the snapshot's root, mirroring Store.View's shape so
// read helpers can run against either.
func (sn *Snapshot) View(fn func(root any) error) error { return fn(sn.v.root) }

// Release unpins the snapshot. The underlying version becomes reclaimable
// once every other pin of an epoch at or before its retirement is gone.
func (sn *Snapshot) Release() {
	sn.vs.unpin(sn.slot)
	sn.slot = nil
}

// RetainedVersions reports how many superseded versions the store still
// holds for pinned readers (the current version is not counted).
func (s *Store) RetainedVersions() int {
	s.vs.mu.Lock()
	defer s.vs.mu.Unlock()
	return len(s.vs.retired)
}

// LockHolders reports the three-mode lock's current holder counts
// (shared, update, exclusive) — the sulock holder assertion tests use to
// prove that versioned enquiries take zero locks.
func (s *Store) LockHolders() (shared int, update, exclusive bool) {
	return s.lock.Holders()
}

// publish captures and publishes a new version of the root after an apply,
// if the root is versioned. Must be called from the serialized write path.
func (s *Store) publish(seq uint64) {
	if !s.versioned {
		return
	}
	vr, ok := s.root.(VersionedRoot)
	if !ok {
		return
	}
	s.vs.publish(vr.SnapshotView(), seq, s.vm.published, s.vm.reclaimed)
}
