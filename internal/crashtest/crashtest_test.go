package crashtest

import (
	"fmt"
	"strings"
	"testing"
)

// TestPlanDeterministic: the same seed must generate the identical workload
// and fingerprints (that is what makes (seed, n) a replayable coordinate),
// and different seeds must diverge.
func TestPlanDeterministic(t *testing.T) {
	a, b := makePlan(7, 40), makePlan(7, 40)
	if len(a.fp) != 41 || len(a.updates) != 40 {
		t.Fatalf("plan sizes: %d fp, %d updates", len(a.fp), len(a.updates))
	}
	for i := range a.fp {
		if a.fp[i] != b.fp[i] {
			t.Fatalf("same seed diverged at prefix %d", i)
		}
	}
	c := makePlan(8, 40)
	if a.fp[40] == c.fp[40] {
		t.Error("different seeds produced the same final fingerprint")
	}
}

// TestPlanCoversUpdateKinds: a modest plan must include the multi-arc and
// structural updates, or the atomicity checks would be vacuous.
func TestPlanCoversUpdateKinds(t *testing.T) {
	p := makePlan(1, 60)
	kinds := map[string]int{}
	for _, u := range p.updates {
		kinds[fmt.Sprintf("%T", u)]++
	}
	for _, want := range []string{"*nameserver.SetValue", "*nameserver.PutSubtree", "*nameserver.DeleteSubtree", "*nameserver.Move"} {
		if kinds[want] == 0 {
			t.Errorf("plan of 60 updates contains no %s (got %v)", want, kinds)
		}
	}
}

// TestStoreTorture sweeps every crash point of a small store-mode workload.
func TestStoreTorture(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 15, Mode: ModeStore, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 20 {
		t.Fatalf("suspiciously few crash points: %d", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestReplicaTorture sweeps every crash point of a small replica-mode
// workload, including the anti-entropy catch-up after each recovery.
func TestReplicaTorture(t *testing.T) {
	res, err := Run(Config{Seed: 2, Ops: 10, Mode: ModeReplica, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestNoSyncSelfTest: running the store without log syncs forfeits the
// commit point, and the harness must catch the resulting lost
// acknowledged updates — proving the torture actually detects durability
// bugs rather than vacuously passing.
func TestNoSyncSelfTest(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 12, Mode: ModeStore, UnsafeNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Msg, "durability") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-sync run reported no durability violations (%d total): the harness is blind", len(res.Violations))
	}
}

// TestNoSyncReplicaRecovers: the same forfeited durability is survivable
// with a replica — the peer restores every acknowledged update (§4), so
// the sweep must be clean.
func TestNoSyncReplicaRecovers(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 10, Mode: ModeReplica, UnsafeNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestOverlapStoreTorture sweeps every crash point of a store-mode
// workload that commits updates *inside* each checkpoint's mirror window —
// the acceptance sweep for the non-blocking checkpoint: an update
// acknowledged mid-window must survive a crash at any subsequent op,
// whether recovery reads the old log, the new log, or either side of the
// version flip.
func TestOverlapStoreTorture(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 15, Mode: ModeStore, OverlapCheckpoints: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 20 {
		t.Fatalf("suspiciously few crash points: %d", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestOverlapReplicaTorture runs the same mid-window sweep on a replica
// node, where every acknowledged update was also pushed to the peer.
func TestOverlapReplicaTorture(t *testing.T) {
	res, err := Run(Config{Seed: 2, Ops: 10, Mode: ModeReplica, OverlapCheckpoints: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestDeltaChainCompactionTorture sweeps a store-mode workload whose
// checkpoints are incremental deltas with the chain capped at one link, so
// every second checkpoint trips a serial compaction: crash points land
// inside delta writes, inside the chain's version commits, and inside the
// compaction's full-base rewrite. Recovery at each point loads base +
// surviving deltas + log replay and must still land on the oracle prefix.
func TestDeltaChainCompactionTorture(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 15, Mode: ModeStore, CheckpointEvery: 3, MaxDeltaChain: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 20 {
		t.Fatalf("suspiciously few crash points: %d", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestOverlapDeltaChainTorture commits updates inside every checkpoint's
// mirror window — including the compaction rewrites the short chain cap
// forces — so the sweep covers updates acknowledged while a delta or a
// compacted full base is in flight.
func TestOverlapDeltaChainTorture(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 12, Mode: ModeStore, CheckpointEvery: 3, MaxDeltaChain: 1,
		OverlapCheckpoints: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestReplicaDeltaChainTorture runs the short-chain compaction sweep on a
// replica node: the delta chain, the compaction, and the anti-entropy
// catch-up after each recovery all compose.
func TestReplicaDeltaChainTorture(t *testing.T) {
	res, err := Run(Config{Seed: 2, Ops: 10, Mode: ModeReplica, CheckpointEvery: 3, MaxDeltaChain: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestFullCheckpointsTorture sweeps the ablation — every checkpoint a full
// root write, the pre-delta behaviour — so both sides of the
// checkpoint_scaling comparison stay crash-safe.
func TestFullCheckpointsTorture(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 12, Mode: ModeStore, FullCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestPointRangeAndStride: From/To/Stride select the requested subset.
func TestPointRangeAndStride(t *testing.T) {
	res, err := Run(Config{Seed: 3, Ops: 8, Mode: ModeStore, From: 4, To: 12, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 5 { // 4,6,8,10,12
		t.Errorf("points = %d, want 5", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestStoreTortureWithReaders re-runs the store sweep with concurrent
// snapshot readers validating lock-free enquiries against the oracle at
// every crash point — the interleaving the versioned read path must
// survive: crashes landing while pinned snapshots are live.
func TestStoreTortureWithReaders(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 12, Mode: ModeStore, Readers: 4, OverlapCheckpoints: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestReplicaTortureWithReaders does the same for replica mode, where the
// readers also overlap anti-entropy catch-up on the recovered node.
func TestReplicaTortureWithReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("replica sweep with readers is the slowest sweep variant")
	}
	res, err := Run(Config{Seed: 2, Ops: 8, Mode: ModeReplica, Readers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestReadersDeterminism: adding readers must not change the workload's
// file-system op indexing — the property that keeps (seed, point)
// replayable. The reference op counts with and without readers must match.
func TestReadersDeterminism(t *testing.T) {
	without, err := Run(Config{Seed: 3, Ops: 10, Mode: ModeStore, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(Config{Seed: 3, Ops: 10, Mode: ModeStore, To: 1, Readers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if without.TotalFSOps != with.TotalFSOps {
		t.Fatalf("readers changed the op indexing: %d fs ops without, %d with",
			without.TotalFSOps, with.TotalFSOps)
	}
}
