package core

// DeltaRoot is the contract a root type implements to get incremental
// delta checkpoints: instead of pickling the whole root every time, the
// store pickles only the difference since the previous checkpoint's
// published view, chained onto the last full image on disk (see
// internal/checkpoint's delta-chain notes for the file protocol).
//
// It extends VersionedRoot because the delta machinery rides the same
// copy-on-write snapshots that power lock-free enquiries: the store pins
// the published view at each checkpoint and diffs the next checkpoint's
// view against it, with no locking and no extra bookkeeping on the update
// path. An unversioned root (or Config.LockedEnquiries, or
// Config.FullCheckpoints) always checkpoints in full.
type DeltaRoot interface {
	VersionedRoot

	// DeltaSince returns a pickleable value transforming prev — an
	// earlier SnapshotView of this root — into this root's state. Both
	// views are immutable; the receiver is the newer one. The returned
	// value's concrete type must be registered with pickle.Register.
	DeltaSince(prev any) (any, error)

	// ApplyDelta applies a value produced by DeltaSince to this root,
	// which must hold the state of the view the delta was diffed against.
	// Recovery calls it on the chain's loaded base, oldest delta first.
	// The delta's ownership transfers to the root: decoded subtrees may be
	// shared rather than copied, so a delta must not be applied twice.
	ApplyDelta(delta any) error
}

// deltaOpCounter is optionally implemented by DeltaSince results to report
// how many subtree operations the delta holds, for checkpoint headers and
// inspection tooling.
type deltaOpCounter interface{ DeltaOps() int }

// Defaults for the compaction thresholds; see Config.MaxDeltaChain and
// Config.MaxDeltaRatio.
const (
	DefaultMaxDeltaChain = 8
	DefaultMaxDeltaRatio = 0.5
)

func (s *Store) maxDeltaChain() int {
	if s.cfg.MaxDeltaChain > 0 {
		return s.cfg.MaxDeltaChain
	}
	return DefaultMaxDeltaChain
}

func (s *Store) maxDeltaRatio() float64 {
	if s.cfg.MaxDeltaRatio > 0 {
		return s.cfg.MaxDeltaRatio
	}
	return DefaultMaxDeltaRatio
}

// deltaOps counts a delta's subtree operations, 0 when it doesn't say.
func deltaOps(delta any) int {
	if c, ok := delta.(deltaOpCounter); ok {
		return c.DeltaOps()
	}
	return 0
}
