package nameserver

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"smalldb/internal/vfs"
)

func open(t *testing.T, fs vfs.FS) *Server {
	t.Helper()
	s, err := Open(Config{FS: fs, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetLookup(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	if err := s.Set("net/hosts/gva", "16.4.0.1"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Lookup("net/hosts/gva")
	if err != nil || v != "16.4.0.1" {
		t.Fatalf("got %q, %v", v, err)
	}
	// Intermediate nodes exist but carry no value.
	if _, err := s.Lookup("net/hosts"); !errors.Is(err, ErrNoValue) {
		t.Errorf("intermediate: %v", err)
	}
	if _, err := s.Lookup("net/absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	s.Set("k", "v1")
	s.Set("k", "v2")
	if v, _ := s.Lookup("k"); v != "v2" {
		t.Errorf("got %q", v)
	}
}

func TestList(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	for _, n := range []string{"srv/c", "srv/a", "srv/b"} {
		s.Set(n, "x")
	}
	got, err := s.List("srv")
	if err != nil || !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := s.List("nothere"); !errors.Is(err, ErrNotFound) {
		t.Errorf("got %v", err)
	}
	// Root listing.
	top, err := s.List("")
	if err != nil || !reflect.DeepEqual(top, []string{"srv"}) {
		t.Errorf("root list %v, %v", top, err)
	}
}

func TestDelete(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	s.Set("a/b/c", "1")
	s.Set("a/b/d", "2")
	s.Set("a/e", "3")
	if err := s.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("a/b/c"); !errors.Is(err, ErrNotFound) {
		t.Error("subtree survived delete")
	}
	if v, _ := s.Lookup("a/e"); v != "3" {
		t.Error("sibling lost")
	}
	if err := s.Delete("a/b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := s.Delete(""); err == nil {
		t.Error("deleted the root")
	}
}

func TestEnumerate(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	s.Set("u/amy/uid", "1001")
	s.Set("u/amy/home", "/home/amy")
	s.Set("u/bob/uid", "1002")
	var got []string
	err := s.Enumerate("u", func(name, value string) error {
		got = append(got, name+"="+value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"u/amy/home=/home/amy", "u/amy/uid=1001", "u/bob/uid=1002"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
	// Early stop.
	n := 0
	stop := errors.New("stop")
	err = s.Enumerate("", func(string, string) error {
		n++
		return stop
	})
	if !errors.Is(err, stop) || n != 1 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}

func TestPutSubtree(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	sub := &Node{Children: map[string]*Node{
		"x": {Value: "1", HasValue: true},
		"y": {Children: map[string]*Node{"z": {Value: "2", HasValue: true}}},
	}}
	if err := s.Put("imported", sub); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Lookup("imported/x"); v != "1" {
		t.Error("x lost")
	}
	if v, _ := s.Lookup("imported/y/z"); v != "2" {
		t.Error("z lost")
	}
	// Mutating the caller's subtree afterwards must not affect the DB.
	sub.Children["x"].Value = "mutated"
	if v, _ := s.Lookup("imported/x"); v != "1" {
		t.Error("subtree aliased into database")
	}
}

func TestRename(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	s.Set("old/a", "1")
	s.Set("old/b", "2")
	if err := s.Rename("old", "new/place"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Lookup("new/place/a"); v != "1" {
		t.Error("a lost")
	}
	if _, err := s.Lookup("old/a"); !errors.Is(err, ErrNotFound) {
		t.Error("old path survived")
	}
	// Preconditions.
	if err := s.Rename("missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rename missing: %v", err)
	}
	s.Set("p/q", "v")
	if err := s.Rename("p", "p/q/r"); err == nil {
		t.Error("moved a tree into itself")
	}
	s.Set("occupied", "v")
	if err := s.Rename("p", "occupied"); err == nil {
		t.Error("rename clobbered destination")
	}
}

func TestDurability(t *testing.T) {
	fs := vfs.NewMem(1)
	s := open(t, fs)
	for i := 0; i < 20; i++ {
		s.Set(fmt.Sprintf("dir%d/name%d", i%3, i), fmt.Sprintf("v%d", i))
	}
	s.Delete("dir0/name0")
	s.Rename("dir1/name1", "renamed")
	s.Close()
	fs.Crash()

	s2 := open(t, fs)
	defer s2.Close()
	if _, err := s2.Lookup("dir0/name0"); !errors.Is(err, ErrNotFound) {
		t.Error("delete lost")
	}
	if v, _ := s2.Lookup("renamed"); v != "v1" {
		t.Error("rename lost")
	}
	if v, _ := s2.Lookup("dir2/name2"); v != "v2" {
		t.Error("set lost")
	}
}

func TestCheckpointPreservesTree(t *testing.T) {
	fs := vfs.NewMem(1)
	s := open(t, fs)
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("a/b%d/c%d", i%5, i), strings.Repeat("v", 20))
	}
	before, _ := s.Count()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Set("post/cp", "x")
	s.Close()

	s2 := open(t, fs)
	defer s2.Close()
	after, _ := s2.Count()
	if after != before+2 { // "post" + "cp"
		t.Errorf("node count %d -> %d", before, after)
	}
	if v, _ := s2.Lookup("post/cp"); v != "x" {
		t.Error("post-checkpoint update lost")
	}
}

func TestPathValidation(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	if err := s.Set("a//b", "v"); err == nil {
		t.Error("empty component accepted")
	}
	if _, err := SplitPath("///"); err != nil {
		t.Error("all-slash path should normalize to root")
	}
	parts, err := SplitPath("/a/b/")
	if err != nil || !reflect.DeepEqual(parts, []string{"a", "b"}) {
		t.Errorf("got %v, %v", parts, err)
	}
}

func TestSubtreeCopyIsolation(t *testing.T) {
	s := open(t, vfs.NewMem(1))
	defer s.Close()
	s.Set("t/a", "1")
	cp, err := s.SubtreeCopy("t")
	if err != nil {
		t.Fatal(err)
	}
	cp.Children["a"].Value = "hacked"
	if v, _ := s.Lookup("t/a"); v != "1" {
		t.Error("SubtreeCopy aliases the database")
	}
}

// Property: a random sequence of sets and deletes matches a flat map oracle.
func TestQuickOracle(t *testing.T) {
	type op struct {
		Del bool
		Key uint8 // small keyspace to get collisions
		Val string
	}
	f := func(ops []op) bool {
		fs := vfs.NewMem(3)
		s, err := Open(Config{FS: fs})
		if err != nil {
			return false
		}
		oracle := map[string]string{}
		for _, o := range ops {
			name := fmt.Sprintf("k%d/leaf", o.Key%8)
			if o.Del {
				err := s.Delete(name)
				_, existed := oracle[name]
				// Delete removes the leaf node; parent may remain.
				if existed {
					if err != nil {
						return false
					}
					delete(oracle, name)
				}
				// Deleting a non-existent name errors; both fine.
			} else {
				if err := s.Set(name, o.Val); err != nil {
					return false
				}
				oracle[name] = o.Val
			}
		}
		// Compare by restart, too.
		s.Close()
		s2, err := Open(Config{FS: fs})
		if err != nil {
			return false
		}
		defer s2.Close()
		for k, v := range oracle {
			got, err := s2.Lookup(k)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
