package vfs

import (
	"errors"
	"io"
	"testing"
)

// TestCloneSyncedIsDurableView checks that a clone holds exactly the synced
// state: synced data present, unsynced data and never-synced files gone.
func TestCloneSyncedIsDurableView(t *testing.T) {
	m := NewMem(1)
	if err := WriteFile(m, "a", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Append("a")
	f.Write([]byte("-unsynced"))
	f.Close()
	g, _ := m.Create("never-synced")
	g.Write([]byte("x"))
	g.Close()

	c := m.CloneSynced()
	data, err := ReadFile(c, "a")
	if err != nil || string(data) != "durable" {
		t.Fatalf("clone a = %q, %v; want %q", data, err, "durable")
	}
	// Directory metadata is durable immediately: the file exists in the
	// clone, but its never-synced content does not.
	if data, err := ReadFile(c, "never-synced"); err != nil || len(data) != 0 {
		t.Errorf("never-synced in clone = %q, %v; want empty", data, err)
	}
	// The parent still sees its unsynced data.
	data, err = ReadFile(m, "a")
	if err != nil || string(data) != "durable-unsynced" {
		t.Fatalf("parent a = %q, %v", data, err)
	}
}

// TestCloneSyncedIndependent checks that clone and parent never observe each
// other's subsequent writes, despite the shared (copy-on-write) slices.
func TestCloneSyncedIndependent(t *testing.T) {
	m := NewMem(1)
	if err := WriteFile(m, "a", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	c := m.CloneSynced()

	// Mutate the clone: overwrite, append, sync.
	cf, err := c.OpenRW("a")
	if err != nil {
		t.Fatal(err)
	}
	cf.WriteAt([]byte("XX"), 0)
	cf.Seek(0, io.SeekEnd)
	cf.Write([]byte("tail"))
	if err := cf.Sync(); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	// Mutate the parent too.
	pf, _ := m.OpenRW("a")
	pf.WriteAt([]byte("YY"), 2)
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	got, _ := ReadFile(c, "a")
	if string(got) != "XX23456789tail" {
		t.Errorf("clone a = %q", got)
	}
	got, _ = ReadFile(m, "a")
	if string(got) != "01YY456789" {
		t.Errorf("parent a = %q", got)
	}
}

// TestCloneSyncedOfClone checks clones can be taken from clones.
func TestCloneSyncedOfClone(t *testing.T) {
	m := NewMem(1)
	WriteFile(m, "a", []byte("v1"))
	c1 := m.CloneSynced()
	WriteFile(c1, "a", []byte("v2"))
	c2 := c1.CloneSynced()
	got, _ := ReadFile(c2, "a")
	if string(got) != "v2" {
		t.Errorf("c2 a = %q", got)
	}
	got, _ = ReadFile(m, "a")
	if string(got) != "v1" {
		t.Errorf("parent a = %q", got)
	}
}

// TestFailedSyncDamagesFlushedRegion checks the §2 torn-update model: after
// a failed sync, reads of the region being flushed report errors — both
// live and after a crash — until the region is rewritten.
func TestFailedSyncDamagesFlushedRegion(t *testing.T) {
	m := NewMem(1)
	if err := WriteFile(m, "a", []byte("good-prefix-")); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Append("a")
	f.Write([]byte("torn-tail"))
	boom := errors.New("power gone")
	m.FailSync = func(string) error { return boom }
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync err = %v", err)
	}
	m.FailSync = nil

	// Live reads of the flushed region fail now.
	if _, err := ReadFile(m, "a"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("read after failed sync = %v, want ErrDamaged", err)
	}

	// The damage survives a crash: the tail is durable but unreadable.
	c := m.CloneSynced()
	if _, err := ReadFile(c, "a"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("read of crash image = %v, want ErrDamaged", err)
	}

	// A retried, successful sync repairs it (the data was still in memory).
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(m, "a")
	if err != nil || string(got) != "good-prefix-torn-tail" {
		t.Fatalf("after repair: %q, %v", got, err)
	}
	f.Close()

	// Overwriting the damaged region also repairs it.
	m2 := NewMem(1)
	WriteFile(m2, "b", []byte("0123"))
	g, _ := m2.Append("b")
	g.Write([]byte("4567"))
	m2.FailSync = func(string) error { return boom }
	g.Sync()
	m2.FailSync = nil
	g.WriteAt([]byte("abcdefgh"), 0)
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	g.Close()
	got, err = ReadFile(m2, "b")
	if err != nil || string(got) != "abcdefgh" {
		t.Fatalf("after overwrite: %q, %v", got, err)
	}
}
