// Package twophase is the paper's third §2 baseline: the "naive
// implementation of atomic commit [that] will require two disk writes: one
// for the commit record (and log entry) and one for updating the actual
// data. This is somewhat more complicated than a system without atomic
// commit, has much better reliability, and performs about a factor of two
// worse for updates."
//
// It layers a redo log (the wal package) over the same slotted data file
// the ad-hoc baseline uses. An update first commits a redo record to the
// log (disk write one), then applies the change to the data file in place
// (disk write two). Recovery replays the log over the data file —
// re-applying a record is idempotent — so a crash between the two writes
// loses nothing. A Compact() checkpoint syncs the data file and empties the
// log, bounding replay; it runs automatically when the log passes a
// threshold.
package twophase

import (
	"fmt"
	"sync"

	"smalldb/internal/baseline/slotfile"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

const (
	dataFile = "data"
	logFile  = "redo"
	// compactAt bounds the redo log before automatic compaction.
	compactAt = 1 << 20
)

// record is one redo entry.
type record struct {
	Del   bool
	Key   string
	Value string
}

// DB is a naive atomic-commit database.
type DB struct {
	mu  sync.Mutex
	fs  vfs.FS
	sf  *slotfile.File
	log *wal.Log
	// AutoCompact, on by default, compacts when the log exceeds
	// compactAt bytes.
	AutoCompact bool
}

// Open recovers (or creates) the database in fs.
func Open(fs vfs.FS) (*DB, error) {
	var sf *slotfile.File
	var err error
	if vfs.Exists(fs, dataFile) {
		sf, err = slotfile.Open(fs, dataFile)
	} else {
		sf, err = slotfile.Create(fs, dataFile, 1024)
	}
	if err != nil {
		return nil, err
	}
	// The data file is synced only at commit points we control.
	sf.NoSync = true

	db := &DB{fs: fs, sf: sf, AutoCompact: true}

	if vfs.Exists(fs, logFile) {
		// Redo recovery: re-apply every committed record; a record
		// whose data-file write already happened is overwritten with
		// identical bytes.
		res, err := wal.Replay(fs, logFile, 1, wal.ReplayOptions{Repair: true}, func(seq uint64, payload []byte) error {
			var rec record
			if err := pickle.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("twophase: redo entry %d: %w", seq, err)
			}
			return db.applyToData(&rec)
		})
		if err != nil {
			sf.Close()
			return nil, err
		}
		if err := sf.Sync(); err != nil {
			sf.Close()
			return nil, err
		}
		db.log, err = wal.Open(fs, logFile, res.NextSeq, wal.Options{})
		if err != nil {
			sf.Close()
			return nil, err
		}
	} else {
		db.log, err = wal.Create(fs, logFile, 1, wal.Options{})
		if err != nil {
			sf.Close()
			return nil, err
		}
	}
	return db, nil
}

func (db *DB) applyToData(rec *record) error {
	if rec.Del {
		_, err := db.sf.Delete(rec.Key)
		return err
	}
	return db.sf.Put(rec.Key, rec.Value)
}

// commit runs the two-write protocol for one record.
func (db *DB) commit(rec *record) error {
	payload, err := pickle.Marshal(rec)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Disk write one: the commit record.
	if _, err := db.log.Append(payload); err != nil {
		return err
	}
	// Disk write two: the data page, in place.
	if err := db.applyToData(rec); err != nil {
		return err
	}
	if err := db.sf.Sync(); err != nil {
		return err
	}
	if db.AutoCompact && db.log.Size() > compactAt {
		return db.compactLocked()
	}
	return nil
}

// Lookup reads key directly from the data pages.
func (db *DB) Lookup(key string) (string, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sf.Lookup(key)
}

// Update sets key=value with two disk writes.
func (db *DB) Update(key, value string) error {
	return db.commit(&record{Key: key, Value: value})
}

// Delete removes key with two disk writes.
func (db *DB) Delete(key string) error {
	db.mu.Lock()
	_, found, err := db.sf.Lookup(key)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("twophase: no such key %q", key)
	}
	return db.commit(&record{Del: true, Key: key})
}

// All returns every record.
func (db *DB) All() (map[string]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sf.All()
}

// Compact syncs the data file and resets the redo log, bounding recovery
// replay.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	if err := db.sf.Sync(); err != nil {
		return err
	}
	if err := db.log.Close(); err != nil {
		return err
	}
	l, err := wal.Create(db.fs, logFile, 1, wal.Options{})
	if err != nil {
		return err
	}
	db.log = l
	return nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.sf.Sync(); err != nil {
		return err
	}
	if err := db.log.Close(); err != nil {
		db.sf.Close()
		return err
	}
	return db.sf.Close()
}
