package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Mux builds the admin HTTP mux for a registry:
//
//	/metrics       registry snapshot as JSON (counters, gauges, histogram
//	               percentile summaries)
//	/stats         the same, human-readable (durations and sizes formatted,
//	               ASCII bucket bars with ?buckets=1)
//	/debug/pprof/  the standard Go profiling endpoints
//	/debug/vars    expvar (the registry is published there too)
//
// rec, if non-nil, is a Recorder whose recent events are appended to the
// /stats page.
func Mux(r *Registry, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "goroutines=%d\n\n", runtime.NumGoroutine())
		r.WriteText(w)
		if req.URL.Query().Get("buckets") != "" {
			fmt.Fprintf(w, "\nhistogram buckets:\n")
			r.Each(func(name string, v any) {
				h, ok := v.(*Histogram)
				if !ok {
					return
				}
				s := h.Snapshot()
				if s.Count == 0 {
					return
				}
				fmt.Fprintf(w, "\n%s:\n%s", name, s.Bar(40, bucketFormat(name)))
			})
		}
		if rec != nil {
			fmt.Fprintf(w, "\nrecent events:\n")
			for _, e := range rec.Events() {
				fmt.Fprintf(w, "  %s\n", e)
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", http.DefaultServeMux)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "smalldb debug endpoint\n\n/metrics\n/stats (?buckets=1 for distributions)\n/debug/pprof/\n/debug/vars\n")
	})
	return mux
}

func bucketFormat(name string) func(int64) string {
	if hasSuffix(name, "_ns") {
		return func(v int64) string { return time.Duration(v).String() }
	}
	if hasSuffix(name, "_bytes") {
		return sizeStr
	}
	return nil
}

// An AdminServer is a running debug HTTP endpoint.
type AdminServer struct {
	// Addr is the address the server is actually listening on (useful
	// when the requested address had port 0).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeAdmin starts the admin endpoint on addr, publishing the registry to
// expvar as a side effect. It returns once the listener is bound; serving
// continues in a background goroutine until Close.
func ServeAdmin(addr string, r *Registry, rec *Recorder) (*AdminServer, error) {
	r.PublishExpvar("smalldb_")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Mux(r, rec), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the admin endpoint.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
