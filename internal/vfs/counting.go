package vfs

import "sync/atomic"

// Counting wraps an FS and tallies the I/O moved through it: bytes read,
// bytes written, and sync calls. Benchmarks wrap the store's file system
// with it to measure what a checkpoint or a restart actually cost the disk
// — independent of the store's own accounting — and Reset the counters
// between measurement windows. The counters are atomic, so concurrent
// writers (sharded log streams, background compactions) tally correctly.
type Counting struct {
	fs         FS
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	syncs      atomic.Int64
}

// NewCounting wraps fs with zeroed counters.
func NewCounting(fs FS) *Counting { return &Counting{fs: fs} }

// ReadBytes reports the bytes read since the last Reset.
func (c *Counting) ReadBytes() int64 { return c.readBytes.Load() }

// WriteBytes reports the bytes written since the last Reset.
func (c *Counting) WriteBytes() int64 { return c.writeBytes.Load() }

// Syncs reports the Sync calls since the last Reset.
func (c *Counting) Syncs() int64 { return c.syncs.Load() }

// Reset zeroes all counters, opening a new measurement window.
func (c *Counting) Reset() {
	c.readBytes.Store(0)
	c.writeBytes.Store(0)
	c.syncs.Store(0)
}

// Create implements FS.
func (c *Counting) Create(name string) (File, error) { return c.wrap(c.fs.Create(name)) }

// Open implements FS.
func (c *Counting) Open(name string) (File, error) { return c.wrap(c.fs.Open(name)) }

// Append implements FS.
func (c *Counting) Append(name string) (File, error) { return c.wrap(c.fs.Append(name)) }

// OpenRW implements FS.
func (c *Counting) OpenRW(name string) (File, error) { return c.wrap(c.fs.OpenRW(name)) }

// Rename implements FS.
func (c *Counting) Rename(oldname, newname string) error { return c.fs.Rename(oldname, newname) }

// Remove implements FS.
func (c *Counting) Remove(name string) error { return c.fs.Remove(name) }

// List implements FS.
func (c *Counting) List() ([]string, error) { return c.fs.List() }

// Stat implements FS.
func (c *Counting) Stat(name string) (int64, error) { return c.fs.Stat(name) }

func (c *Counting) wrap(f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

type countingFile struct {
	File
	fs *Counting
}

func (f *countingFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.fs.readBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.fs.readBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.writeBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	f.fs.writeBytes.Add(int64(n))
	return n, err
}

func (f *countingFile) Sync() error {
	f.fs.syncs.Add(1)
	return f.File.Sync()
}
