package replica

import (
	"fmt"
	"math/rand"
	"testing"

	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
)

// Property: under any interleaving of local updates and pairwise syncs,
// once every pair has synced in both directions with no further updates,
// all replicas hold identical vectors and identical trees.
func TestConvergenceProperty(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := makeCluster(t, "n0", "n1", "n2")
		// Sever automatic propagation by applying straight to stores.
		apply := func(n *Node, key, val string) {
			parts, _ := nameserver.SplitPath(key)
			var seq, stamp uint64
			n.store.View(func(root any) error {
				seq = root.(*Root).Vector[n.name] + 1
				stamp = root.(*Root).Clock + 1
				return nil
			})
			if err := n.store.Apply(&Replicated{Origin: n.name, Seq: seq, Stamp: stamp, Inner: &nameserver.SetValue{Path: parts, Value: val}}); err != nil {
				t.Fatal(err)
			}
		}
		// Random updates and random one-directional syncs.
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0, 1:
				i := rng.Intn(3)
				apply(c.nodes[i], fmt.Sprintf("k%d", rng.Intn(10)), fmt.Sprintf("s%d-%d", seed, step))
			case 2:
				i, j := rng.Intn(3), rng.Intn(3)
				if i != j {
					from := c.nodes[j].Name()
					_ = c.nodes[i].SyncWith(c.clients[c.nodes[i].Name()][from])
				}
			}
		}
		// Final full mesh sync, twice for transitivity.
		for round := 0; round < 2; round++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if i != j {
						if err := c.nodes[i].SyncWith(c.clients[c.nodes[i].Name()][c.nodes[j].Name()]); err != nil {
							t.Fatalf("seed %d: sync: %v", seed, err)
						}
					}
				}
			}
		}
		// All vectors equal.
		v0, _ := c.nodes[0].Vector()
		for i := 1; i < 3; i++ {
			vi, _ := c.nodes[i].Vector()
			if len(vi) != len(v0) {
				t.Fatalf("seed %d: vector size mismatch %v vs %v", seed, vi, v0)
			}
			for k, v := range v0 {
				if vi[k] != v {
					t.Fatalf("seed %d: vectors diverged: %v vs %v", seed, vi, v0)
				}
			}
		}
		// All trees equal on the touched keys.
		for k := 0; k < 10; k++ {
			key := fmt.Sprintf("k%d", k)
			ref, refErr := c.nodes[0].Lookup(key)
			for i := 1; i < 3; i++ {
				got, gotErr := c.nodes[i].Lookup(key)
				if (refErr == nil) != (gotErr == nil) || got != ref {
					t.Fatalf("seed %d: %s diverged: %q(%v) vs %q(%v)", seed, key, ref, refErr, got, gotErr)
				}
			}
		}
	}
}

func TestSnapshotIsolatedFromLiveTree(t *testing.T) {
	c := makeCluster(t, "a", "b")
	na := c.nodes[0]
	na.Set("k", "v1")

	svc := NewService(na)
	var snap SnapshotReply
	if err := svc.Snapshot(&SnapshotArgs{}, &snap); err != nil {
		t.Fatal(err)
	}
	// Mutating the snapshot must not affect the live database.
	snap.Root.Tree.Root.Children["k"].Value = "hacked"
	if v, _ := na.Lookup("k"); v != "v1" {
		t.Error("snapshot aliases the live tree")
	}
}

func TestPushBatchAppliesInOrder(t *testing.T) {
	c := makeCluster(t, "a", "b")
	nb := c.nodes[1]
	svc := NewService(nb)
	var entries []Entry
	for i := 1; i <= 5; i++ {
		parts, _ := nameserver.SplitPath(fmt.Sprintf("batch/k%d", i))
		entries = append(entries, Entry{Origin: "x", Seq: uint64(i), Inner: &nameserver.SetValue{Path: parts, Value: "v"}})
	}
	// Deliver out of order within one push: later entries hit the gap
	// check, so only the in-order prefix lands; a second push completes.
	shuffled := []Entry{entries[1], entries[0], entries[2], entries[4], entries[3]}
	var reply PushReply
	if err := svc.Push(&PushArgs{Entries: shuffled}, &reply, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	var second PushReply
	if err := svc.Push(&PushArgs{Entries: entries}, &second, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := nb.Lookup(fmt.Sprintf("batch/k%d", i)); err != nil {
			t.Errorf("k%d missing after reordered pushes: %v", i, err)
		}
	}
	vec, _ := nb.Vector()
	if vec["x"] != 5 {
		t.Errorf("vector: %v", vec)
	}
}
