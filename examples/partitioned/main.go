// Partitioned: the §7 extension through the public API — one "large"
// database handled as several independently checkpointed partitions over a
// single shared log ("a single log file with more complicated rules for
// flushing the log").
//
// The example runs a mail system's state split into three partitions
// (mailboxes, aliases, queues), shows that an update still costs one disk
// write, checkpoints the busy partition without blocking the others, and
// demonstrates shared-log segment retirement.
//
// Run with:
//
//	go run ./examples/partitioned
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"smalldb"
)

// MailState is the root of each partition (they happen to share a shape
// here; partitions may have entirely different root types).
type MailState struct {
	Entries map[string]string
}

func newMailState() any { return &MailState{Entries: map[string]string{}} }

// Put binds a key in one partition.
type Put struct{ K, V string }

// Verify implements smalldb.Update.
func (u *Put) Verify(root any) error {
	if u.K == "" {
		return errors.New("empty key")
	}
	return nil
}

// Apply implements smalldb.Update.
func (u *Put) Apply(root any) error {
	root.(*MailState).Entries[u.K] = u.V
	return nil
}

func init() {
	smalldb.Register(&MailState{})
	smalldb.RegisterUpdate(&Put{})
}

func main() {
	dir := filepath.Join(os.TempDir(), "smalldb-partitioned")
	defer os.RemoveAll(dir)
	fs, err := smalldb.NewDirFS(dir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := smalldb.MultiConfig{
		FS: fs,
		Partitions: map[string]func() any{
			"mailboxes": newMailState,
			"aliases":   newMailState,
			"queues":    newMailState,
		},
		SegmentBytes: 4 << 10, // small segments so retirement is visible
	}
	set, err := smalldb.OpenMulti(cfg)
	if err != nil {
		log.Fatal(err)
	}

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// The quiet partitions write early — their entries land in the first
	// segment — then the queues partition floods the log.
	must(set.Apply("mailboxes", &Put{K: "amy", V: "inbox=3"}))
	must(set.Apply("aliases", &Put{K: "postmaster", V: "amy"}))
	for i := 0; i < 200; i++ {
		must(set.Apply("queues", &Put{K: fmt.Sprintf("msg%04d", i), V: "queued"}))
	}

	segs, bytes, _ := set.Segments()
	fmt.Printf("shared log before checkpoints: %d segments, %d bytes\n", segs, bytes)

	// Checkpoint the busy partition: only "queues" blocks, briefly.
	must(set.Checkpoint("queues"))
	segs, _, _ = set.Segments()
	fmt.Printf("after checkpointing queues: %d segments (mailboxes/aliases entries still pin the oldest)\n", segs)

	// Checkpoint the rest: fully covered segments retire.
	must(set.Checkpoint("mailboxes"))
	must(set.Checkpoint("aliases"))
	segs, bytes, _ = set.Segments()
	fmt.Printf("after checkpointing all: %d segment(s), %d bytes\n", segs, bytes)

	// Crash-free restart: partitions recover from their own checkpoints
	// plus the shared log tail.
	set.Close()
	set2, err := smalldb.OpenMulti(cfg)
	must(err)
	defer set2.Close()
	must(set2.View("queues", func(root any) error {
		fmt.Printf("queues recovered with %d messages\n", len(root.(*MailState).Entries))
		return nil
	}))
	must(set2.View("aliases", func(root any) error {
		fmt.Printf("postmaster -> %s\n", root.(*MailState).Entries["postmaster"])
		return nil
	}))
}
