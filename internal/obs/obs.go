// Package obs is the system's observability substrate: atomic counters and
// gauges, log-bucketed latency histograms with percentile snapshots, a
// pluggable structured-event Tracer, and a Registry that exports everything
// as expvar-compatible JSON and over an HTTP admin endpoint.
//
// The paper's §5 evaluation decomposes every update into verify / pickle /
// commit / apply phases; this package generalizes that instrumentation so
// any subsystem can publish distributions rather than cumulative sums, and
// a running daemon can be watched live. Everything is stdlib-only and
// allocation-free on the hot paths (one atomic add per counter bump, a
// handful per histogram observation).
//
// All metric types tolerate nil receivers: a subsystem wired to a nil
// *Registry gets nil metrics whose methods are no-ops, so call sites need
// no conditionals and an uninstrumented store pays only a nil check.
package obs

import (
	"fmt"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// String renders the counter as JSON, satisfying expvar.Var.
func (c *Counter) String() string { return fmt.Sprintf("%d", c.Value()) }

// A Gauge is an atomic instantaneous value (open connections, queue depth).
// The zero value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc increases the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decreases the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// String renders the gauge as JSON, satisfying expvar.Var.
func (g *Gauge) String() string { return fmt.Sprintf("%d", g.Value()) }
