package pickle

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in, out any) {
	t.Helper()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal(%#v): %v", in, err)
	}
	if err := Unmarshal(data, out); err != nil {
		t.Fatalf("Unmarshal(%#v): %v", in, err)
	}
}

func TestScalars(t *testing.T) {
	cases := []any{
		true, false,
		int(42), int(-42), int8(-7), int16(300), int32(-70000), int64(1 << 60),
		uint(9), uint8(255), uint16(65535), uint32(1 << 30), uint64(1 << 63),
		float32(3.5), float64(-2.25), math.Pi,
		complex(1.5, -2.5),
		"hello", "", "日本語",
	}
	for _, in := range cases {
		out := reflect.New(reflect.TypeOf(in))
		roundTrip(t, in, out.Interface())
		if got := out.Elem().Interface(); !reflect.DeepEqual(got, in) {
			t.Errorf("round trip %#v: got %#v", in, got)
		}
	}
}

func TestFloatSpecials(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0} {
		var out float64
		roundTrip(t, f, &out)
		if out != f && !(f == 0 && out == 0) {
			t.Errorf("float %v round-tripped to %v", f, out)
		}
	}
	var nan float64
	roundTrip(t, math.NaN(), &nan)
	if !math.IsNaN(nan) {
		t.Errorf("NaN round-tripped to %v", nan)
	}
}

func TestSlicesAndArrays(t *testing.T) {
	var ints []int
	roundTrip(t, []int{1, 2, 3}, &ints)
	if !reflect.DeepEqual(ints, []int{1, 2, 3}) {
		t.Errorf("got %v", ints)
	}

	var nilSlice []string
	roundTrip(t, []string(nil), &nilSlice)
	if nilSlice != nil {
		t.Errorf("nil slice decoded non-nil: %v", nilSlice)
	}

	var empty []string
	roundTrip(t, []string{}, &empty)
	if empty == nil || len(empty) != 0 {
		t.Errorf("empty slice decoded as %#v", empty)
	}

	var bs []byte
	roundTrip(t, []byte{0, 1, 2, 255}, &bs)
	if !bytes.Equal(bs, []byte{0, 1, 2, 255}) {
		t.Errorf("got %v", bs)
	}

	var arr [3]string
	roundTrip(t, [3]string{"a", "b", "c"}, &arr)
	if arr != [3]string{"a", "b", "c"} {
		t.Errorf("got %v", arr)
	}

	var nested [][]int
	roundTrip(t, [][]int{{1}, nil, {2, 3}}, &nested)
	if !reflect.DeepEqual(nested, [][]int{{1}, nil, {2, 3}}) {
		t.Errorf("got %v", nested)
	}
}

func TestStringByteCrossDecode(t *testing.T) {
	// A string may be decoded into []byte and vice versa; useful when a
	// field's type is migrated.
	var b []byte
	roundTrip(t, "abc", &b)
	if string(b) != "abc" {
		t.Errorf("got %q", b)
	}
	var s string
	roundTrip(t, []byte("xyz"), &s)
	if s != "xyz" {
		t.Errorf("got %q", s)
	}
}

func TestMaps(t *testing.T) {
	in := map[string]int{"a": 1, "b": 2, "c": 3}
	var out map[string]int
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %v", out)
	}

	var nilMap map[string]int
	roundTrip(t, map[string]int(nil), &nilMap)
	if nilMap != nil {
		t.Errorf("nil map decoded non-nil")
	}

	deep := map[string]map[string]bool{"x": {"y": true}, "z": nil}
	var deepOut map[string]map[string]bool
	roundTrip(t, deep, &deepOut)
	if !reflect.DeepEqual(deep, deepOut) {
		t.Errorf("got %v", deepOut)
	}

	intKeys := map[int][]string{-1: {"neg"}, 7: {"seven"}}
	var intOut map[int][]string
	roundTrip(t, intKeys, &intOut)
	if !reflect.DeepEqual(intKeys, intOut) {
		t.Errorf("got %v", intOut)
	}
}

func TestMapDeterminism(t *testing.T) {
	m := map[string]int{}
	for _, k := range []string{"q", "a", "zz", "m", "b", "c", "d", "e", "f", "g"} {
		m[k] = len(k)
	}
	first, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("map pickling not deterministic on attempt %d", i)
		}
	}
}

type inner struct {
	Label string
	N     int
}

type outer struct {
	Name     string
	Count    int64
	Ratio    float64
	Inner    inner
	InnerPtr *inner
	Tags     []string
	Attrs    map[string]string
	hidden   int    // unexported: not pickled
	Skipped  string `pickle:"-"`
	Renamed  string `pickle:"alias"`
}

func TestStructs(t *testing.T) {
	in := outer{
		Name:     "db",
		Count:    99,
		Ratio:    0.5,
		Inner:    inner{Label: "in", N: 3},
		InnerPtr: &inner{Label: "ptr", N: 4},
		Tags:     []string{"t1", "t2"},
		Attrs:    map[string]string{"k": "v"},
		hidden:   7,
		Skipped:  "nope",
		Renamed:  "alias-value",
	}
	var out outer
	roundTrip(t, in, &out)
	if out.hidden != 0 || out.Skipped != "" {
		t.Errorf("unexported/skipped fields leaked: %+v", out)
	}
	in.hidden, in.Skipped = 0, ""
	if !reflect.DeepEqual(in, out) {
		t.Errorf("got %+v want %+v", out, in)
	}
}

func TestPointerSharing(t *testing.T) {
	shared := &inner{Label: "shared", N: 1}
	in := []*inner{shared, shared, {Label: "other", N: 2}, shared}
	var out []*inner
	roundTrip(t, in, &out)
	if len(out) != 4 {
		t.Fatalf("len %d", len(out))
	}
	if out[0] != out[1] || out[1] != out[3] {
		t.Errorf("shared pointer identity lost")
	}
	if out[0] == out[2] {
		t.Errorf("distinct pointers merged")
	}
	if out[0].Label != "shared" || out[2].Label != "other" {
		t.Errorf("values wrong: %+v", out)
	}
}

type listNode struct {
	Val  int
	Next *listNode
}

func TestCycle(t *testing.T) {
	a := &listNode{Val: 1}
	b := &listNode{Val: 2, Next: a}
	a.Next = b // a -> b -> a
	var out *listNode
	roundTrip(t, a, &out)
	if out.Val != 1 || out.Next.Val != 2 {
		t.Fatalf("values wrong")
	}
	if out.Next.Next != out {
		t.Errorf("cycle not preserved")
	}
}

func TestSharedMapIdentity(t *testing.T) {
	m := map[string]int{"x": 1}
	in := []map[string]int{m, m}
	var out []map[string]int
	roundTrip(t, in, &out)
	out[0]["y"] = 2
	if out[1]["y"] != 2 {
		t.Errorf("map identity lost: %v %v", out[0], out[1])
	}
}

type shape interface{ Area() float64 }

type rect struct{ W, H float64 }

func (r rect) Area() float64 { return r.W * r.H }

type circle struct{ R float64 }

func (c *circle) Area() float64 { return 3 * c.R * c.R }

func init() {
	Register(rect{})
	Register(&circle{})
}

func TestInterfaces(t *testing.T) {
	in := []shape{rect{W: 2, H: 3}, &circle{R: 1}, nil}
	var out []shape
	roundTrip(t, in, &out)
	if len(out) != 3 {
		t.Fatalf("len %d", len(out))
	}
	if out[0].Area() != 6 {
		t.Errorf("rect area %v", out[0].Area())
	}
	if out[1].Area() != 3 {
		t.Errorf("circle area %v", out[1].Area())
	}
	if out[2] != nil {
		t.Errorf("nil interface decoded non-nil")
	}
}

func TestUnregisteredInterface(t *testing.T) {
	type secret struct{ X int }
	in := []any{secret{X: 1}}
	if _, err := Marshal(in); err == nil {
		t.Fatal("expected error pickling unregistered concrete type")
	} else if !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("wrong error: %v", err)
	}
}

type v1Record struct {
	Name string
	Age  int
}

type v2Record struct {
	Name    string
	Age     int
	Address string // new field
}

type v2RecordDropped struct {
	Name string
	// Age removed
}

func TestSchemaEvolution(t *testing.T) {
	data, err := Marshal(v1Record{Name: "n", Age: 30})
	if err != nil {
		t.Fatal(err)
	}
	var grew v2Record
	if err := Unmarshal(data, &grew); err != nil {
		t.Fatalf("decode into grown struct: %v", err)
	}
	if grew.Name != "n" || grew.Age != 30 || grew.Address != "" {
		t.Errorf("got %+v", grew)
	}

	data2, err := Marshal(v2Record{Name: "m", Age: 40, Address: "somewhere"})
	if err != nil {
		t.Fatal(err)
	}
	var shrunk v2RecordDropped
	if err := Unmarshal(data2, &shrunk); err != nil {
		t.Fatalf("decode into shrunk struct: %v", err)
	}
	if shrunk.Name != "m" {
		t.Errorf("got %+v", shrunk)
	}
}

func TestSkippedFieldWithSharedPointer(t *testing.T) {
	// A struct whose skipped (unknown-to-target) field contains pointers
	// must still decode cleanly.
	type rich struct {
		Keep  string
		Extra []*inner
	}
	type lean struct {
		Keep string
	}
	shared := &inner{Label: "s"}
	data, err := Marshal(rich{Keep: "k", Extra: []*inner{shared, shared}})
	if err != nil {
		t.Fatal(err)
	}
	var out lean
	if err := Unmarshal(data, &out); err != nil {
		t.Fatalf("decode skipping pointer field: %v", err)
	}
	if out.Keep != "k" {
		t.Errorf("got %+v", out)
	}
}

func TestPointerLevelTolerance(t *testing.T) {
	// Writer passed &x, reader passes &x too (target is the struct).
	data, err := Marshal(&inner{Label: "p", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	var flat inner
	if err := Unmarshal(data, &flat); err != nil {
		t.Fatalf("ptr stream into struct target: %v", err)
	}
	if flat.Label != "p" {
		t.Errorf("got %+v", flat)
	}

	// Writer passed x, reader wants a pointer target.
	data2, err := Marshal(inner{Label: "v", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	var viaPtr *inner
	if err := Unmarshal(data2, &viaPtr); err != nil {
		t.Fatalf("struct stream into pointer target: %v", err)
	}
	if viaPtr == nil || viaPtr.Label != "v" {
		t.Errorf("got %+v", viaPtr)
	}

	// Deep mismatch: a **T stream into a T target.
	x := &inner{Label: "deep", N: 3}
	data3, err := Marshal(&x)
	if err != nil {
		t.Fatal(err)
	}
	var deep inner
	if err := Unmarshal(data3, &deep); err != nil {
		t.Fatalf("double-ptr stream into struct target: %v", err)
	}
	if deep.Label != "deep" {
		t.Errorf("got %+v", deep)
	}
}

func TestEncoderStream(t *testing.T) {
	// Multiple Encode calls on one Encoder share the type table; the
	// matching Decoder must decode all of them in order.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 0; i < 5; i++ {
		if err := enc.Encode(inner{Label: "x", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; i < 5; i++ {
		var v inner
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if v.N != i {
			t.Errorf("decode %d: got %d", i, v.N)
		}
	}
	var v inner
	if err := dec.Decode(&v); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTypeMismatch(t *testing.T) {
	data, err := Marshal("a string")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := Unmarshal(data, &n); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestOverflow(t *testing.T) {
	data, err := Marshal(int64(1 << 40))
	if err != nil {
		t.Fatal(err)
	}
	var small int8
	if err := Unmarshal(data, &small); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestDecodeTargetErrors(t *testing.T) {
	data, _ := Marshal(1)
	if err := Unmarshal(data, 1); err == nil {
		t.Error("expected error for non-pointer target")
	}
	var p *int
	if err := Unmarshal(data, p); err == nil {
		t.Error("expected error for nil pointer target")
	}
}

func TestCorruptStreams(t *testing.T) {
	good, err := Marshal(outer{Name: "x", Tags: []string{"a"}, Attrs: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(good); n++ {
		var out outer
		if err := Unmarshal(good[:n], &out); err == nil {
			t.Errorf("truncation at %d decoded without error", n)
		}
	}
	// Single-byte corruptions must error or decode to *something*, never
	// panic or hang.
	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xFF
		var out outer
		_ = Unmarshal(mut, &out)
	}
}

func TestBadMagic(t *testing.T) {
	var out int
	if err := Unmarshal([]byte{0x00, tInt, 2}, &out); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("expected magic error, got %v", err)
	}
}

func TestHostileLengths(t *testing.T) {
	// A stream claiming a huge string must be rejected before allocation.
	buf := []byte{magic, tString, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	var s string
	if err := Unmarshal(buf, &s); err == nil {
		t.Fatal("expected length-limit error")
	}
}

func TestDepthLimit(t *testing.T) {
	// Build a linear chain of pointers deeper than MaxDepth.
	head := &listNode{}
	cur := head
	for i := 0; i < MaxDepth+10; i++ {
		cur.Next = &listNode{Val: i}
		cur = cur.Next
	}
	if _, err := Marshal(head); err == nil {
		t.Fatal("expected depth error on encode")
	}
}

func TestGenericDecode(t *testing.T) {
	in := outer{
		Name:    "g",
		Count:   5,
		Inner:   inner{Label: "i", N: 1},
		Tags:    []string{"a", "b"},
		Attrs:   map[string]string{"k": "v"},
		Renamed: "r",
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewDecoder(bytes.NewReader(data)).DecodeAny()
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := v.(GenericStruct)
	if !ok {
		t.Fatalf("got %T", v)
	}
	byName := map[string]any{}
	for _, f := range gs.Fields {
		byName[f.Name] = f.Value
	}
	if byName["Name"] != "g" {
		t.Errorf("Name = %v", byName["Name"])
	}
	if byName["Count"] != int64(5) {
		t.Errorf("Count = %v (%T)", byName["Count"], byName["Count"])
	}
	if _, ok := byName["alias"]; !ok {
		t.Errorf("renamed field missing: %v", byName)
	}
	text := Format(v)
	if !strings.Contains(text, "Name") || !strings.Contains(text, `"g"`) {
		t.Errorf("Format output missing fields: %s", text)
	}
}

func TestFormatCycle(t *testing.T) {
	a := &listNode{Val: 1}
	a.Next = a
	data, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewDecoder(bytes.NewReader(data)).DecodeAny()
	if err != nil {
		t.Fatal(err)
	}
	text := Format(v)
	if !strings.Contains(text, "<cycle>") {
		t.Errorf("cycle not detected in %s", text)
	}
}

func TestRegisterConflicts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on conflicting registration")
		}
	}()
	RegisterName("pickleconflict", rect{})
	RegisterName("pickleconflict", inner{})
}

// Property: any value built from quick-generatable primitives round-trips.
func TestQuickRoundTrip(t *testing.T) {
	type blob struct {
		B  bool
		I  int64
		U  uint32
		F  float64
		S  string
		Bs []byte
		M  map[string]int32
		L  []string
	}
	f := func(in blob) bool {
		var out blob
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		// Normalise nil/empty distinctions quick doesn't care about.
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		var out string
		data, err := Marshal(s)
		if err != nil {
			return false
		}
		return Unmarshal(data, &out) == nil && out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMapDeterminism(t *testing.T) {
	f := func(m map[int16]string) bool {
		a, err := Marshal(m)
		if err != nil {
			return false
		}
		b, err := Marshal(m)
		if err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshalSmallStruct(b *testing.B) {
	in := inner{Label: "label", N: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalSmallStruct(b *testing.B) {
	data, err := Marshal(inner{Label: "label", N: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out inner
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalLargeMap(b *testing.B) {
	m := make(map[string]string, 1000)
	for i := 0; i < 1000; i++ {
		m[strings.Repeat("k", 8)+string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('0'+(i/10)%10))+string(rune('0'+(i/100)%10))] = strings.Repeat("v", 32)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}
