package checkpoint

import (
	"fmt"
	"testing"

	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
	"smalldb/internal/wal"
)

// TestSwitchCrashWindows enumerates every crash point inside a checkpoint
// switch — during the new checkpoint's writes, between its fsync and the
// version-file rename, and after the rename — and checks the paper's
// protocol at each: a crash before the commit point (newversion durable)
// recovers the OLD checkpoint with its log fully intact, a crash after
// recovers the NEW one, and either way recovery leaves no debris (no
// orphaned checkpoint2/logfile2/newversion from an uncommitted switch).
func TestSwitchCrashWindows(t *testing.T) {
	logPayloads := [][]byte{[]byte("upd-1"), []byte("upd-2")}

	// scenario replays the fixed history: Init v1, two committed log
	// entries, then a switch to v2. Returns the op count where the
	// switch started.
	scenario := func(fs vfs.FS) (switchStart int64, err error) {
		st, err := Init(fs, writeBytes([]byte("old checkpoint")))
		if err != nil {
			return 0, err
		}
		l, err := wal.Open(fs, st.LogName(), 1, wal.Options{})
		if err != nil {
			return 0, err
		}
		for _, p := range logPayloads {
			if _, err := l.Append(p); err != nil {
				return 0, err
			}
		}
		if err := l.Close(); err != nil {
			return 0, err
		}
		if ffs, ok := fs.(*faultfs.FS); ok {
			switchStart = ffs.OpCount()
		}
		_, err = SwitchWith(fs, st, writeBytes([]byte("new checkpoint")), Options{})
		return switchStart, err
	}

	// Reference run: learn the op indices of the switch window.
	ref := faultfs.New(vfs.NewMem(1), faultfs.Options{CrashAt: faultfs.Never})
	switchStart, err := scenario(ref)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.OpCount()
	if switchStart <= 0 || switchStart >= total {
		t.Fatalf("bad switch window [%d, %d)", switchStart, total)
	}

	sawOld, sawNew := false, false
	for n := switchStart; n <= total; n++ {
		ffs := faultfs.New(vfs.NewMem(1), faultfs.Options{CrashAt: n})
		_, serr := scenario(ffs)
		if n < total && serr == nil {
			t.Fatalf("n=%d: switch did not observe the crash", n)
		}
		snap := ffs.Snapshot()

		st, err := RecoverWith(snap, Options{})
		if err != nil {
			t.Fatalf("n=%d: recovery failed: %v", n, err)
		}
		switch st.Version {
		case 1:
			sawOld = true
			// The old checkpoint and its FULL log must survive: the
			// uncommitted switch may not have eaten any update.
			data, err := vfs.ReadFile(snap, st.CheckpointName())
			if err != nil || string(data) != "old checkpoint" {
				t.Fatalf("n=%d: old checkpoint = %q, %v", n, data, err)
			}
			var got int
			res, err := wal.Replay(snap, st.LogName(), 1, wal.ReplayOptions{}, func(seq uint64, p []byte) error {
				if string(p) != string(logPayloads[got]) {
					return fmt.Errorf("entry %d = %q", seq, p)
				}
				got++
				return nil
			})
			if err != nil || res.Entries != len(logPayloads) {
				t.Fatalf("n=%d: old log replay: %d entries, %v", n, res.Entries, err)
			}
		case 2:
			sawNew = true
			data, err := vfs.ReadFile(snap, st.CheckpointName())
			if err != nil || string(data) != "new checkpoint" {
				t.Fatalf("n=%d: new checkpoint = %q, %v", n, data, err)
			}
			if size, err := snap.Stat(st.LogName()); err != nil || size != 0 {
				t.Fatalf("n=%d: new log size %d, %v; want empty", n, size, err)
			}
		default:
			t.Fatalf("n=%d: recovered version %d", n, st.Version)
		}

		// Recovery must have cleaned the directory down to exactly the
		// current pair plus the version file: an orphaned new
		// checkpoint, its empty log, or a stale newversion file must
		// all be gone.
		names, err := snap.List()
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{st.CheckpointName(): true, st.LogName(): true, "version": true}
		for _, name := range names {
			if !want[name] {
				t.Fatalf("n=%d: debris %q left after recovery (have %v)", n, name, names)
			}
			delete(want, name)
		}
		for name := range want {
			t.Fatalf("n=%d: %q missing after recovery", n, name)
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("sweep did not cover both outcomes: old=%v new=%v", sawOld, sawNew)
	}
}
