package crashtest

import (
	"math/rand"
	"testing"

	"smalldb/internal/nameserver"
	"smalldb/internal/vfs"
)

// TestPipelinedReplayDifferential is the correctness proof for pipelined
// restart: recover the same durable image sequentially (ReplayWorkers=1)
// and pipelined (ReplayWorkers=8) and require identical applied sequence
// numbers and identical tree fingerprints — which must also match the
// in-memory oracle that generated the 10k-entry log.
func TestPipelinedReplayDifferential(t *testing.T) {
	const entries = 10000
	fs := vfs.NewMem(11)
	srv, err := nameserver.Open(nameserver.Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	oracle := nameserver.NewTree()
	for i := 0; i < entries; i++ {
		u := genUpdate(rng, oracle, i)
		if err := u.Apply(oracle); err != nil {
			t.Fatalf("oracle apply %d: %v", i, err)
		}
		if err := srv.Store().Apply(u); err != nil {
			t.Fatalf("store apply %d: %v", i, err)
		}
	}
	want := fingerprintTree(oracle)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		srv, err := nameserver.Open(nameserver.Config{FS: fs, ReplayWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: recovery failed: %v", workers, err)
		}
		if seq := srv.Store().AppliedSeq(); seq != entries {
			t.Errorf("workers=%d: recovered %d updates, want %d", workers, seq, entries)
		}
		got, err := storeFingerprint(srv)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: recovered state diverges from the oracle", workers)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreTorturePipelined sweeps every crash point of a store-mode
// workload with pipelined replay on the recovery path: out-of-order decode
// must not change what any crash image recovers to.
func TestStoreTorturePipelined(t *testing.T) {
	res, err := Run(Config{Seed: 4, Ops: 12, Mode: ModeStore, ReplayWorkers: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points < 20 {
		t.Fatalf("suspiciously few crash points: %d", res.Points)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestReplicaTorturePipelined is the replica-mode counterpart, covering
// pipelined replay of logs that carry replication stamps and anti-entropy
// catch-up after each pipelined recovery.
func TestReplicaTorturePipelined(t *testing.T) {
	res, err := Run(Config{Seed: 5, Ops: 8, Mode: ModeReplica, ReplayWorkers: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}
