package pickle

import (
	"bufio"
	"encoding"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sync"
)

// A Decoder reads pickled values from an input stream. It is the inverse of
// Encoder: the stream's struct-type table accumulates across Decode calls on
// the same Decoder, while pointer/map identity is scoped to a single decoded
// value graph.
//
// A Decoder buffers its input; do not interleave reads on the underlying
// reader with Decode calls.
type Decoder struct {
	r       *bufio.Reader
	types   []streamType
	readHdr bool
}

// streamType is a struct type as described by the stream: its printed name
// (diagnostics only — matching is by field name) and its field names in
// stream order.
type streamType struct {
	name   string
	fields []string
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next pickled value into the variable pointed to by ptr,
// which must be a non-nil pointer.
func (d *Decoder) Decode(ptr any) error {
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errf("Decode target must be a non-nil pointer, got %T", ptr)
	}
	if err := d.header(); err != nil {
		return err
	}
	st := &decState{refs: make(map[uint64]reflect.Value)}
	return d.decodeValue(st, rv.Elem(), 0)
}

func (d *Decoder) header() error {
	if d.readHdr {
		return nil
	}
	b, err := d.r.ReadByte()
	if err != nil {
		return wrapEOF(err)
	}
	if b != magic {
		return errf("bad magic byte %#x: not a pickle stream", b)
	}
	d.readHdr = true
	return nil
}

// decState is per-value-graph decode state.
type decState struct {
	refs map[uint64]reflect.Value
}

func wrapEOF(err error) error {
	if err == io.EOF {
		return io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return errf("truncated stream")
	}
	return err
}

func (d *Decoder) readByte() (byte, error) {
	b, err := d.r.ReadByte()
	return b, wrapEOF(err)
}

func (d *Decoder) readUvarint() (uint64, error) {
	u, err := binary.ReadUvarint(d.r)
	return u, wrapEOF(err)
}

func (d *Decoder) readVarint() (int64, error) {
	i, err := binary.ReadVarint(d.r)
	return i, wrapEOF(err)
}

func (d *Decoder) readFull(p []byte) error {
	_, err := io.ReadFull(d.r, p)
	if err == io.EOF {
		err = errf("truncated stream")
	}
	return wrapEOF(err)
}

func (d *Decoder) readString(limit uint64) (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > limit {
		return "", errf("string length %d exceeds limit %d", n, limit)
	}
	buf := make([]byte, n)
	if err := d.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *Decoder) readFloat64() (float64, error) {
	var b [8]byte
	if err := d.readFull(b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// decodeValue reads one value into v, which must be settable.
func (d *Decoder) decodeValue(st *decState, v reflect.Value, depth int) error {
	if depth > MaxDepth {
		return errf("stream exceeds maximum depth %d", MaxDepth)
	}
	tag, err := d.readByte()
	if err != nil {
		return err
	}
	return d.decodeTagged(st, tag, v, depth)
}

func (d *Decoder) decodeTagged(st *decState, tag byte, v reflect.Value, depth int) error {
	// Pointer-level tolerance, as in encoding/gob: a non-pointer stream
	// value decodes into a pointer target by allocating, and a pointer
	// stream value decodes into a non-pointer target by dereferencing.
	// Writers and readers therefore need not agree on whether the value
	// was passed as &x or x.
	if v.Kind() == reflect.Pointer && tag != tNil && tag != tPtr && tag != tRef {
		np := reflect.New(v.Type().Elem())
		v.Set(np)
		return d.decodeTagged(st, tag, np.Elem(), depth)
	}
	if tag == tPtr && v.Kind() != reflect.Pointer {
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		if v.CanAddr() {
			st.refs[id] = v.Addr()
		}
		return d.decodeValue(st, v, depth+1)
	}

	// An interface target accepts any concrete stream value only via
	// tIface or tNil; anything else is a mismatch caught below.
	switch tag {
	case tNil:
		switch v.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Interface:
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		return errf("stream has nil but target is %v", v.Type())
	case tFalse, tTrue:
		if v.Kind() != reflect.Bool {
			return mismatch(tag, v)
		}
		v.SetBool(tag == tTrue)
		return nil
	case tInt:
		i, err := d.readVarint()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if v.OverflowInt(i) {
				return errf("value %d overflows %v", i, v.Type())
			}
			v.SetInt(i)
			return nil
		}
		return mismatch(tag, v)
	case tUint:
		u, err := d.readUvarint()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
			if v.OverflowUint(u) {
				return errf("value %d overflows %v", u, v.Type())
			}
			v.SetUint(u)
			return nil
		}
		return mismatch(tag, v)
	case tFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		f := math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(float64(f))
			return nil
		}
		return mismatch(tag, v)
	case tFloat64:
		f, err := d.readFloat64()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Float64:
			v.SetFloat(f)
			return nil
		case reflect.Float32:
			if v.OverflowFloat(f) {
				return errf("value %g overflows float32", f)
			}
			v.SetFloat(f)
			return nil
		}
		return mismatch(tag, v)
	case tComplex:
		re, err := d.readFloat64()
		if err != nil {
			return err
		}
		im, err := d.readFloat64()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Complex64, reflect.Complex128:
			v.SetComplex(complex(re, im))
			return nil
		}
		return mismatch(tag, v)
	case tString, tBytes:
		s, err := d.readString(MaxStringLen)
		if err != nil {
			return err
		}
		switch {
		case v.Kind() == reflect.String:
			v.SetString(s)
			return nil
		case v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8:
			v.SetBytes([]byte(s))
			return nil
		}
		return mismatch(tag, v)
	case tSlice:
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		if n > MaxElems {
			return errf("slice length %d exceeds limit %d", n, MaxElems)
		}
		if v.Kind() != reflect.Slice {
			return mismatch(tag, v)
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.decodeValue(st, s.Index(i), depth+1); err != nil {
				return err
			}
		}
		v.Set(s)
		return nil
	case tArray:
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Array {
			return mismatch(tag, v)
		}
		if int(n) != v.Len() {
			return errf("array length mismatch: stream %d, target %v", n, v.Type())
		}
		for i := 0; i < int(n); i++ {
			if err := d.decodeValue(st, v.Index(i), depth+1); err != nil {
				return err
			}
		}
		return nil
	case tMap:
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		if n > MaxElems {
			return errf("map length %d exceeds limit %d", n, MaxElems)
		}
		if v.Kind() != reflect.Map {
			return mismatch(tag, v)
		}
		m := reflect.MakeMapWithSize(v.Type(), int(n))
		v.Set(m)
		st.refs[id] = m
		kt, vt := v.Type().Key(), v.Type().Elem()
		for i := 0; i < int(n); i++ {
			k := reflect.New(kt).Elem()
			if err := d.decodeValue(st, k, depth+1); err != nil {
				return err
			}
			val := reflect.New(vt).Elem()
			if err := d.decodeValue(st, val, depth+1); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		return nil
	case tStruct:
		stype, err := d.readStructType()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Struct {
			return errf("stream has struct %s but target is %v", stype.name, v.Type())
		}
		idx := fieldIndex(v.Type())
		for _, fname := range stype.fields {
			if i, ok := idx[fname]; ok {
				if err := d.decodeValue(st, v.Field(i), depth+1); err != nil {
					return err
				}
			} else if err := d.skipValue(st, depth+1); err != nil {
				return err
			}
		}
		return nil
	case tPtr:
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Pointer {
			return mismatch(tag, v)
		}
		np := reflect.New(v.Type().Elem())
		v.Set(np)
		st.refs[id] = np
		return d.decodeValue(st, np.Elem(), depth+1)
	case tRef:
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		rv, ok := st.refs[id]
		if !ok {
			return errf("reference to undefined object %d", id)
		}
		if !rv.Type().AssignableTo(v.Type()) {
			return errf("shared object %d has type %v, target wants %v", id, rv.Type(), v.Type())
		}
		v.Set(rv)
		return nil
	case tBinary:
		data, err := d.readString(MaxStringLen)
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Struct || !v.CanAddr() {
			return mismatch(tag, v)
		}
		bu, ok := v.Addr().Interface().(encoding.BinaryUnmarshaler)
		if !ok {
			return errf("stream has binary-marshaled value but %v has no UnmarshalBinary", v.Type())
		}
		if err := bu.UnmarshalBinary([]byte(data)); err != nil {
			return errf("UnmarshalBinary into %v: %v", v.Type(), err)
		}
		return nil
	case tIface:
		name, err := d.readString(4096)
		if err != nil {
			return err
		}
		rt, ok := lookupType(name)
		if !ok {
			return errf("stream has unregistered concrete type %q; call pickle.Register", name)
		}
		cv := reflect.New(rt).Elem()
		if err := d.decodeValue(st, cv, depth+1); err != nil {
			return err
		}
		if v.Kind() != reflect.Interface {
			// Tolerate decoding an interface-pickled value into its
			// concrete type.
			if rt != v.Type() {
				return errf("stream has %q but target is %v", name, v.Type())
			}
			v.Set(cv)
			return nil
		}
		if !rt.AssignableTo(v.Type()) {
			return errf("concrete type %q does not implement target interface %v", name, v.Type())
		}
		v.Set(cv)
		return nil
	default:
		return errf("invalid tag byte %#x", tag)
	}
}

func mismatch(tag byte, v reflect.Value) error {
	return errf("stream has %s but target is %v", tagName(tag), v.Type())
}

// readStructType reads a struct type id and, on first occurrence, its inline
// definition.
func (d *Decoder) readStructType() (*streamType, error) {
	id, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	switch {
	case id < uint64(len(d.types)):
		return &d.types[id], nil
	case id == uint64(len(d.types)):
		name, err := d.readString(4096)
		if err != nil {
			return nil, err
		}
		nf, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if nf > 1<<16 {
			return nil, errf("struct %s claims %d fields", name, nf)
		}
		fields := make([]string, nf)
		for i := range fields {
			fields[i], err = d.readString(4096)
			if err != nil {
				return nil, err
			}
		}
		d.types = append(d.types, streamType{name: name, fields: fields})
		return &d.types[len(d.types)-1], nil
	default:
		return nil, errf("struct type id %d out of order (have %d)", id, len(d.types))
	}
}

// fieldIndexCache maps a target struct type to its pickled-name -> field
// index table.
var fieldIndexCache sync.Map // reflect.Type -> map[string]int

func fieldIndex(rt reflect.Type) map[string]int {
	if m, ok := fieldIndexCache.Load(rt); ok {
		return m.(map[string]int)
	}
	m := make(map[string]int)
	for _, f := range fieldsOf(rt) {
		m[f.name] = f.index
	}
	fieldIndexCache.Store(rt, m)
	return m
}
