package smalldb

import (
	"smalldb/internal/multistore"
)

// MultiConfig configures a MultiStore: the §7 extension where one large
// database is handled as several independently checkpointed partitions
// committing to a single shared, segmented log. See the package
// documentation of internal/multistore for the flushing rules.
type MultiConfig = multistore.Config

// MultiStore is a set of partitions over one shared log. Each partition
// behaves like a Store (View/Apply with the same Update contract), but
// Checkpoint takes a partition name and blocks only that partition.
type MultiStore = multistore.Set

// ErrNoPartition is returned for unknown partition names.
var ErrNoPartition = multistore.ErrNoPartition

// OpenMulti recovers (or initializes) a partitioned store set.
func OpenMulti(cfg MultiConfig) (*MultiStore, error) { return multistore.Open(cfg) }
