// Command smalldb-bench regenerates every measurement reported in the
// paper's evaluation (§5 performance, §6 implementation size), printing
// paper-vs-measured tables.
//
// Usage:
//
//	smalldb-bench                 # run every experiment
//	smalldb-bench -run e2,e4,e9   # run a subset
//	smalldb-bench -quick          # small iteration counts (seconds, not minutes)
//	smalldb-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smalldb/internal/bench"
	"smalldb/internal/disk"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "shrink iteration counts")
		entries = flag.Int("entries", 0, "database entries (default ≈1 MB worth)")
		seed    = flag.Int64("seed", 1987, "random seed")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, ex := range bench.All() {
			fmt.Printf("  %-4s %s\n", ex.ID, ex.Title)
		}
		return
	}

	env := bench.Env{Out: os.Stdout, Quick: *quick, DBEntries: *entries, Seed: *seed}
	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	prof := disk.MicroVAX
	fmt.Println("smalldb experiment harness — reproducing Birrell/Jones/Wobber, SOSP 1987")
	fmt.Printf("disk model: %s (%v/write op, %dKB/s streaming, CPU ×%.0f)\n",
		prof.Name, prof.PerOpWrite, prof.WriteBytesPerSec>>10, prof.CPUSlowdown)
	if err := bench.Run(env, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
