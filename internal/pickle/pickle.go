// Package pickle converts between strongly typed in-memory data structures
// and flat byte representations suitable for long-term storage on disk, in
// the manner of the "pickles" package of Birrell, Jones and Wobber (SOSP
// 1987): "PickleWrite takes a pointer to a strongly typed data structure and
// delivers buffers of bits for writing to the disk. Conversely PickleRead
// reads buffers of bits from the disk and delivers a copy of the original
// data structure."
//
// The encoding is self-describing: struct types carry their name and field
// names in the stream, so a reader whose struct type has gained or lost
// fields still decodes the fields the two sides share (unknown fields are
// skipped). Pointer and map identity is preserved — a structure in which the
// same object is reachable along several paths, including cyclic structures,
// round-trips to an isomorphic structure, exactly as the paper's pickles
// "identify the occurrences of addresses in the structure" and rebuild them
// on read.
//
// Interface-typed fields require the concrete types that may appear in them
// to be registered with Register or RegisterName, mirroring the run-time
// typing tables that drove the original implementation.
//
// Struct types that implement both encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler (notably time.Time) are pickled through those
// methods instead of structurally, so types with unexported invariants
// round-trip correctly.
//
// The package is the foundation for both the redo log (each log entry is a
// pickled update record) and checkpoints (a checkpoint is the pickled root
// of the entire database).
package pickle

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// Stream limits. They bound what a corrupt or hostile stream can make the
// decoder allocate; they are far above anything the paper's ≤10 MB databases
// need.
const (
	// MaxStringLen bounds a single decoded string or []byte.
	MaxStringLen = 1 << 28 // 256 MB
	// MaxElems bounds a single decoded slice or map length.
	MaxElems = 1 << 26
	// MaxDepth bounds recursion while encoding or decoding.
	MaxDepth = 512
)

// Error is the kind of error returned for malformed streams or unsupported
// values.
type Error struct{ msg string }

func (e *Error) Error() string { return "pickle: " + e.msg }

func errf(format string, args ...any) error {
	return &Error{msg: fmt.Sprintf(format, args...)}
}

// The concrete-type registry used for interface-typed values.
var (
	regMu      sync.RWMutex
	nameToType = make(map[string]reflect.Type)
	typeToName = make(map[reflect.Type]string)
)

// Register records a concrete type, identified by the value's dynamic type,
// under its canonical name so that values of that type can be pickled when
// they appear in interface-typed positions. It is idempotent for the same
// (name, type) pair and panics on conflicting registrations, matching the
// behaviour downstream code expects from encoding/gob.
func Register(value any) {
	rt := reflect.TypeOf(value)
	name := canonicalName(rt)
	RegisterName(name, value)
}

// RegisterName is like Register but uses the supplied name.
func RegisterName(name string, value any) {
	if name == "" {
		panic("pickle: RegisterName with empty name")
	}
	rt := reflect.TypeOf(value)
	if rt == nil {
		panic("pickle: RegisterName with nil value")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := nameToType[name]; ok && prev != rt {
		panic(fmt.Sprintf("pickle: name %q registered for both %v and %v", name, prev, rt))
	}
	if prev, ok := typeToName[rt]; ok && prev != name {
		panic(fmt.Sprintf("pickle: type %v registered as both %q and %q", rt, prev, name))
	}
	nameToType[name] = rt
	typeToName[rt] = name
}

// RegisteredNames reports the names of all registered concrete types, sorted.
// It exists for diagnostic tools such as cmd/logdump.
func RegisteredNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(nameToType))
	for n := range nameToType {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupName(rt reflect.Type) (string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	n, ok := typeToName[rt]
	return n, ok
}

func lookupType(name string) (reflect.Type, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := nameToType[name]
	return t, ok
}

func canonicalName(rt reflect.Type) string {
	star := ""
	for rt.Kind() == reflect.Pointer {
		star += "*"
		rt = rt.Elem()
	}
	if rt.Name() == "" {
		panic(fmt.Sprintf("pickle: cannot register unnamed type %v", rt))
	}
	if rt.PkgPath() == "" {
		return star + rt.Name()
	}
	return star + rt.PkgPath() + "." + rt.Name()
}

// Marshal and Unmarshal run on pooled codec state: the Encoder (with its
// grow-only output buffer and type table) and the Decoder are recycled
// across calls, and oversized buffers are dropped rather than pinned in the
// pool.
const maxPooledBuf = 1 << 20

var encoderPool = sync.Pool{New: func() any {
	codec.encPoolMisses.Add(1)
	return &Encoder{types: make(map[reflect.Type]uint64)}
}}

var decoderPool = sync.Pool{New: func() any {
	codec.decPoolMisses.Add(1)
	return new(Decoder)
}}

func getEncoder() *Encoder {
	codec.encPoolGets.Add(1)
	return encoderPool.Get().(*Encoder)
}

func putEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledBuf {
		return
	}
	e.w = nil
	e.buf = e.buf[:0]
	e.wroteHdr = false
	e.err = nil
	if len(e.types) > 0 {
		clear(e.types)
	}
	if len(e.refs) > 0 {
		clear(e.refs)
	}
	e.nextRef = 0
	e.depth = 0
	encoderPool.Put(e)
}

// Marshal pickles v into a fresh byte slice. It is the paper's PickleWrite.
func Marshal(v any) ([]byte, error) {
	e := getEncoder()
	if err := e.Encode(v); err != nil {
		putEncoder(e)
		return nil, err
	}
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	putEncoder(e)
	return out, nil
}

// AppendMarshal pickles v and appends the result to dst, returning the
// extended slice. It is Marshal for callers that already own a buffer —
// the log append path — so steady-state pickling allocates nothing.
func AppendMarshal(dst []byte, v any) ([]byte, error) {
	e := getEncoder()
	if err := e.Encode(v); err != nil {
		putEncoder(e)
		return dst, err
	}
	dst = append(dst, e.buf...)
	putEncoder(e)
	return dst, nil
}

// Unmarshal reads a pickled value from data into the variable pointed to by
// ptr. It is the paper's PickleRead. It decodes directly from data on
// pooled state, with no intermediate buffering.
func Unmarshal(data []byte, ptr any) error {
	codec.decPoolGets.Add(1)
	d := decoderPool.Get().(*Decoder)
	d.data = data
	err := d.Decode(ptr)
	d.data = nil
	d.pos = 0
	d.types = d.types[:0]
	d.readHdr = false
	if len(d.refs) > 0 {
		clear(d.refs)
	}
	d.depth = 0
	decoderPool.Put(d)
	return err
}

// Write pickles v onto w; it is a streaming PickleWrite, used for
// checkpoints, whose pickled form should not be materialised in one buffer.
func Write(w io.Writer, v any) error {
	return NewEncoder(w).Encode(v)
}

// Read reads one pickled value from r into the variable pointed to by ptr.
func Read(r io.Reader, ptr any) error {
	return NewDecoder(r).Decode(ptr)
}
