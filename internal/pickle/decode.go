package pickle

import (
	"bufio"
	"encoding"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sync"
)

// Decoding mirrors the encoder's compiled-plan design: the first decode
// into a Go type compiles a per-type decode program (overflow checks, field
// tables and element programs resolved ahead of time) cached in a
// package-wide sync.Map, so steady-state Unmarshal walks no reflection
// trees. Unmarshal additionally reads straight from the caller's byte
// slice — no bufio layer, no per-call buffering — on a pooled Decoder.

// A Decoder reads pickled values from an input stream. It is the inverse of
// Encoder: the stream's struct-type table accumulates across Decode calls on
// the same Decoder, while pointer/map identity is scoped to a single decoded
// value graph.
//
// A Decoder buffers its input; do not interleave reads on the underlying
// reader with Decode calls.
type Decoder struct {
	r       *bufio.Reader // streaming input; nil when reading from data
	data    []byte        // slice input (Unmarshal path)
	pos     int
	types   []*streamType
	readHdr bool
	scratch []byte // reused by readName on the streaming path

	// Per-value-graph state: the identity table for shared pointers and
	// maps, and the recursion depth.
	refs  map[uint64]reflect.Value
	depth int
}

// streamType is a struct type as described by the stream: its printed name
// (diagnostics only — matching is by field name) and its field names in
// stream order. Instances seen on the byte-slice path are interned by their
// raw definition bytes, so the per-target field match below is computed
// once per (stream type, target type) pair process-wide.
type streamType struct {
	name   string
	fields []string
	match  sync.Map // *structDecPlan -> []int (stream field -> plan slot, -1 = skip)
}

// matchFor returns, for each stream field in order, the plan slot it decodes
// into, or -1 when the target type has no such field.
func (st *streamType) matchFor(p *structDecPlan) []int {
	if m, ok := st.match.Load(p); ok {
		return m.([]int)
	}
	m := make([]int, len(st.fields))
	for i, name := range st.fields {
		slot, ok := p.byName[name]
		if !ok {
			slot = -1
		}
		m[i] = slot
	}
	st.match.Store(p, m)
	return m
}

// typeIntern deduplicates stream-type definitions across Decoders, keyed by
// the raw definition bytes. The lookup on the hot path allocates nothing.
var typeIntern struct {
	sync.RWMutex
	m map[string]*streamType
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next pickled value into the variable pointed to by ptr,
// which must be a non-nil pointer.
func (d *Decoder) Decode(ptr any) error {
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errf("Decode target must be a non-nil pointer, got %T", ptr)
	}
	if err := d.header(); err != nil {
		return err
	}
	if len(d.refs) > 0 {
		clear(d.refs)
	}
	d.depth = 0
	tag, err := d.readByte()
	if err != nil {
		return err
	}
	elem := rv.Elem()
	return decoderOf(elem.Type())(d, elem, tag)
}

func (d *Decoder) header() error {
	if d.readHdr {
		return nil
	}
	b, err := d.readByte()
	if err != nil {
		return err
	}
	if b != magic {
		return errf("bad magic byte %#x: not a pickle stream", b)
	}
	d.readHdr = true
	return nil
}

// enter counts one level of value nesting, bounding what a hostile stream
// can make the decoder recurse.
func (d *Decoder) enter() error {
	d.depth++
	if d.depth > MaxDepth {
		return errf("stream exceeds maximum depth %d", MaxDepth)
	}
	return nil
}

func (d *Decoder) setRef(id uint64, v reflect.Value) {
	if d.refs == nil {
		d.refs = make(map[uint64]reflect.Value)
	}
	d.refs[id] = v
}

func wrapEOF(err error) error {
	if err == io.EOF {
		return io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return errf("truncated stream")
	}
	return err
}

func (d *Decoder) readByte() (byte, error) {
	if d.r != nil {
		b, err := d.r.ReadByte()
		return b, wrapEOF(err)
	}
	if d.pos >= len(d.data) {
		return 0, io.EOF
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *Decoder) readUvarint() (uint64, error) {
	if d.r != nil {
		u, err := binary.ReadUvarint(d.r)
		return u, wrapEOF(err)
	}
	u, n := binary.Uvarint(d.data[d.pos:])
	if n > 0 {
		d.pos += n
		return u, nil
	}
	if n == 0 {
		if d.pos >= len(d.data) {
			return 0, io.EOF
		}
		return 0, errf("truncated stream")
	}
	return 0, errf("varint overflows a 64-bit integer")
}

func (d *Decoder) readVarint() (int64, error) {
	if d.r != nil {
		i, err := binary.ReadVarint(d.r)
		return i, wrapEOF(err)
	}
	i, n := binary.Varint(d.data[d.pos:])
	if n > 0 {
		d.pos += n
		return i, nil
	}
	if n == 0 {
		if d.pos >= len(d.data) {
			return 0, io.EOF
		}
		return 0, errf("truncated stream")
	}
	return 0, errf("varint overflows a 64-bit integer")
}

func (d *Decoder) readFull(p []byte) error {
	if d.r != nil {
		_, err := io.ReadFull(d.r, p)
		if err == io.EOF {
			err = errf("truncated stream")
		}
		return wrapEOF(err)
	}
	if len(d.data)-d.pos < len(p) {
		return errf("truncated stream")
	}
	copy(p, d.data[d.pos:])
	d.pos += len(p)
	return nil
}

func (d *Decoder) readString(limit uint64) (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > limit {
		return "", errf("string length %d exceeds limit %d", n, limit)
	}
	if d.r == nil {
		if uint64(len(d.data)-d.pos) < n {
			return "", errf("truncated stream")
		}
		s := string(d.data[d.pos : d.pos+int(n)])
		d.pos += int(n)
		return s, nil
	}
	buf := make([]byte, n)
	if err := d.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readName reads a length-prefixed name, returning bytes valid only until
// the next read. On the slice path this is a view into the input; on the
// streaming path it is the Decoder's scratch buffer. It exists so the hot
// interface-type lookup allocates nothing.
func (d *Decoder) readName(limit uint64) ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, errf("string length %d exceeds limit %d", n, limit)
	}
	if d.r == nil {
		if uint64(len(d.data)-d.pos) < n {
			return nil, errf("truncated stream")
		}
		s := d.data[d.pos : d.pos+int(n)]
		d.pos += int(n)
		return s, nil
	}
	if uint64(cap(d.scratch)) < n {
		d.scratch = make([]byte, n)
	}
	s := d.scratch[:n]
	if err := d.readFull(s); err != nil {
		return nil, err
	}
	return s, nil
}

func (d *Decoder) readFloat64() (float64, error) {
	var b [8]byte
	if err := d.readFull(b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

// A decFn is one compiled decode program: given the already-read tag byte
// of the next stream value, it decodes that value into v, which must be
// settable and of the program's fixed static type.
type decFn func(d *Decoder, v reflect.Value, tag byte) error

// decPlans caches the compiled per-type decode programs.
var decPlans sync.Map // reflect.Type -> decFn

// decoderOf returns rt's compiled decode program, compiling it on first
// use.
func decoderOf(rt reflect.Type) decFn {
	if f, ok := decPlans.Load(rt); ok {
		return f.(decFn)
	}
	var (
		wg sync.WaitGroup
		fn decFn
	)
	wg.Add(1)
	stub := decFn(func(d *Decoder, v reflect.Value, tag byte) error {
		wg.Wait()
		return fn(d, v, tag)
	})
	if actual, loaded := decPlans.LoadOrStore(rt, stub); loaded {
		return actual.(decFn)
	}
	fn = buildDecoder(rt)
	wg.Done()
	decPlans.Store(rt, fn)
	codec.decPlanCompiles.Add(1)
	return fn
}

func buildDecoder(rt reflect.Type) decFn {
	switch rt.Kind() {
	case reflect.Bool:
		return decBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return decInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return decUint
	case reflect.Float32, reflect.Float64:
		return decFloat
	case reflect.Complex64, reflect.Complex128:
		return decComplex
	case reflect.String:
		return decString
	case reflect.Slice:
		if rt.Elem().Kind() == reflect.Uint8 {
			return buildBytesDecoder(rt)
		}
		return buildSliceDecoder(rt)
	case reflect.Array:
		return buildArrayDecoder(rt)
	case reflect.Map:
		return buildMapDecoder(rt)
	case reflect.Struct:
		return buildStructDecoder(rt)
	case reflect.Pointer:
		return buildPointerDecoder(rt)
	case reflect.Interface:
		return decIface
	default:
		return func(d *Decoder, v reflect.Value, tag byte) error {
			return errf("cannot decode into value of kind %v (%v)", rt.Kind(), rt)
		}
	}
}

// tolerant handles the stream tags every program accepts in its default
// case, preserving encoding/gob-style pointer-level tolerance: a pointer
// stream value decodes into a non-pointer target by dereferencing (the
// mirror case lives in the pointer program), a shared reference resolves
// through the identity table, and an interface-pickled value decodes into
// its own concrete type.
func (d *Decoder) tolerant(v reflect.Value, tag byte, self decFn) error {
	switch tag {
	case tNil:
		switch v.Kind() {
		case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Interface:
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		return errf("stream has nil but target is %v", v.Type())
	case tPtr:
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		if v.CanAddr() {
			d.setRef(id, v.Addr())
		}
		if err := d.enter(); err != nil {
			return err
		}
		tag2, err := d.readByte()
		if err != nil {
			return err
		}
		err = self(d, v, tag2)
		d.depth--
		return err
	case tRef:
		return d.decodeRef(v)
	case tIface:
		name, err := d.readName(4096)
		if err != nil {
			return err
		}
		rt, ok := lookupTypeBytes(name)
		if !ok {
			return errf("stream has unregistered concrete type %q; call pickle.Register", name)
		}
		if err := d.enter(); err != nil {
			return err
		}
		cv := reflect.New(rt).Elem()
		tag2, err := d.readByte()
		if err != nil {
			return err
		}
		if err := decoderOf(rt)(d, cv, tag2); err != nil {
			return err
		}
		d.depth--
		if rt != v.Type() {
			n, _ := lookupName(rt)
			return errf("stream has %q but target is %v", n, v.Type())
		}
		v.Set(cv)
		return nil
	default:
		return mismatch(tag, v)
	}
}

func (d *Decoder) decodeRef(v reflect.Value) error {
	id, err := d.readUvarint()
	if err != nil {
		return err
	}
	rv, ok := d.refs[id]
	if !ok {
		return errf("reference to undefined object %d", id)
	}
	if !rv.Type().AssignableTo(v.Type()) {
		return errf("shared object %d has type %v, target wants %v", id, rv.Type(), v.Type())
	}
	v.Set(rv)
	return nil
}

func decBool(d *Decoder, v reflect.Value, tag byte) error {
	switch tag {
	case tFalse:
		v.SetBool(false)
		return nil
	case tTrue:
		v.SetBool(true)
		return nil
	default:
		return d.tolerant(v, tag, decBool)
	}
}

func decInt(d *Decoder, v reflect.Value, tag byte) error {
	if tag != tInt {
		return d.tolerant(v, tag, decInt)
	}
	i, err := d.readVarint()
	if err != nil {
		return err
	}
	if v.OverflowInt(i) {
		return errf("value %d overflows %v", i, v.Type())
	}
	v.SetInt(i)
	return nil
}

func decUint(d *Decoder, v reflect.Value, tag byte) error {
	if tag != tUint {
		return d.tolerant(v, tag, decUint)
	}
	u, err := d.readUvarint()
	if err != nil {
		return err
	}
	if v.OverflowUint(u) {
		return errf("value %d overflows %v", u, v.Type())
	}
	v.SetUint(u)
	return nil
}

func decFloat(d *Decoder, v reflect.Value, tag byte) error {
	switch tag {
	case tFloat32:
		var b [4]byte
		if err := d.readFull(b[:]); err != nil {
			return err
		}
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(b[:]))))
		return nil
	case tFloat64:
		f, err := d.readFloat64()
		if err != nil {
			return err
		}
		if v.Kind() == reflect.Float32 && v.OverflowFloat(f) {
			return errf("value %g overflows float32", f)
		}
		v.SetFloat(f)
		return nil
	default:
		return d.tolerant(v, tag, decFloat)
	}
}

func decComplex(d *Decoder, v reflect.Value, tag byte) error {
	if tag != tComplex {
		return d.tolerant(v, tag, decComplex)
	}
	re, err := d.readFloat64()
	if err != nil {
		return err
	}
	im, err := d.readFloat64()
	if err != nil {
		return err
	}
	v.SetComplex(complex(re, im))
	return nil
}

func decString(d *Decoder, v reflect.Value, tag byte) error {
	if tag != tString && tag != tBytes {
		return d.tolerant(v, tag, decString)
	}
	s, err := d.readString(MaxStringLen)
	if err != nil {
		return err
	}
	v.SetString(s)
	return nil
}

func buildBytesDecoder(rt reflect.Type) decFn {
	elem := decoderOf(rt.Elem())
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		switch tag {
		case tNil:
			v.Set(reflect.Zero(rt))
			return nil
		case tString, tBytes:
			n, err := d.readUvarint()
			if err != nil {
				return err
			}
			if n > MaxStringLen {
				return errf("string length %d exceeds limit %d", n, MaxStringLen)
			}
			b := make([]byte, n)
			if err := d.readFull(b); err != nil {
				return err
			}
			v.SetBytes(b)
			return nil
		case tSlice:
			// A byte slice written element-wise by another encoder.
			return decodeSliceElems(d, v, rt, elem)
		default:
			return d.tolerant(v, tag, self)
		}
	}
	return self
}

func decodeSliceElems(d *Decoder, v reflect.Value, rt reflect.Type, elem decFn) error {
	n, err := d.readUvarint()
	if err != nil {
		return err
	}
	if n > MaxElems {
		return errf("slice length %d exceeds limit %d", n, MaxElems)
	}
	if err := d.enter(); err != nil {
		return err
	}
	s := reflect.MakeSlice(rt, int(n), int(n))
	for i := 0; i < int(n); i++ {
		tag, err := d.readByte()
		if err != nil {
			return err
		}
		if err := elem(d, s.Index(i), tag); err != nil {
			return err
		}
	}
	d.depth--
	v.Set(s)
	return nil
}

func buildSliceDecoder(rt reflect.Type) decFn {
	elem := decoderOf(rt.Elem())
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		switch tag {
		case tNil:
			v.Set(reflect.Zero(rt))
			return nil
		case tSlice:
			return decodeSliceElems(d, v, rt, elem)
		default:
			return d.tolerant(v, tag, self)
		}
	}
	return self
}

func buildArrayDecoder(rt reflect.Type) decFn {
	elem := decoderOf(rt.Elem())
	n := rt.Len()
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		if tag != tArray {
			return d.tolerant(v, tag, self)
		}
		sn, err := d.readUvarint()
		if err != nil {
			return err
		}
		if int(sn) != n {
			return errf("array length mismatch: stream %d, target %v", sn, rt)
		}
		if err := d.enter(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			tag2, err := d.readByte()
			if err != nil {
				return err
			}
			if err := elem(d, v.Index(i), tag2); err != nil {
				return err
			}
		}
		d.depth--
		return nil
	}
	return self
}

func buildMapDecoder(rt reflect.Type) decFn {
	keyFn := decoderOf(rt.Key())
	valFn := decoderOf(rt.Elem())
	kt, vt := rt.Key(), rt.Elem()
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		switch tag {
		case tNil:
			v.Set(reflect.Zero(rt))
			return nil
		case tMap:
			id, err := d.readUvarint()
			if err != nil {
				return err
			}
			n, err := d.readUvarint()
			if err != nil {
				return err
			}
			if n > MaxElems {
				return errf("map length %d exceeds limit %d", n, MaxElems)
			}
			if err := d.enter(); err != nil {
				return err
			}
			m := reflect.MakeMapWithSize(rt, int(n))
			v.Set(m)
			d.setRef(id, m)
			for i := 0; i < int(n); i++ {
				// Fresh key/value buffers per entry: pointer-level
				// tolerance may register their addresses in the
				// identity table, so they must not be reused.
				k := reflect.New(kt).Elem()
				tag2, err := d.readByte()
				if err != nil {
					return err
				}
				if err := keyFn(d, k, tag2); err != nil {
					return err
				}
				val := reflect.New(vt).Elem()
				if tag2, err = d.readByte(); err != nil {
					return err
				}
				if err := valFn(d, val, tag2); err != nil {
					return err
				}
				m.SetMapIndex(k, val)
			}
			d.depth--
			return nil
		default:
			return d.tolerant(v, tag, self)
		}
	}
	return self
}

// structDecPlan is the compiled program for one struct type: the per-field
// programs, the pickled-name table used to match stream fields, and whether
// the type accepts binary-marshaled values.
type structDecPlan struct {
	rt        reflect.Type
	byName    map[string]int
	idx       []int // slot -> reflect field index
	fns       []decFn
	canBinary bool // *T implements encoding.BinaryUnmarshaler
}

var binaryUnmarshalerType = reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem()

func buildStructDecoder(rt reflect.Type) decFn {
	p := &structDecPlan{
		rt:        rt,
		byName:    make(map[string]int),
		canBinary: reflect.PointerTo(rt).Implements(binaryUnmarshalerType),
	}
	for _, f := range fieldsOf(rt) {
		p.byName[f.name] = len(p.idx)
		p.idx = append(p.idx, f.index)
		p.fns = append(p.fns, decoderOf(rt.Field(f.index).Type))
	}
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		switch tag {
		case tStruct:
			st, err := d.readStructType()
			if err != nil {
				return err
			}
			if err := d.enter(); err != nil {
				return err
			}
			for _, slot := range st.matchFor(p) {
				tag2, err := d.readByte()
				if err != nil {
					return err
				}
				if slot >= 0 {
					err = p.fns[slot](d, v.Field(p.idx[slot]), tag2)
				} else {
					err = d.skipTagged(tag2)
				}
				if err != nil {
					return err
				}
			}
			d.depth--
			return nil
		case tBinary:
			data, err := d.readString(MaxStringLen)
			if err != nil {
				return err
			}
			if !v.CanAddr() {
				return mismatch(tag, v)
			}
			if !p.canBinary {
				return errf("stream has binary-marshaled value but %v has no UnmarshalBinary", rt)
			}
			bu := v.Addr().Interface().(encoding.BinaryUnmarshaler)
			if err := bu.UnmarshalBinary([]byte(data)); err != nil {
				return errf("UnmarshalBinary into %v: %v", rt, err)
			}
			return nil
		default:
			return d.tolerant(v, tag, self)
		}
	}
	return self
}

func buildPointerDecoder(rt reflect.Type) decFn {
	elem := decoderOf(rt.Elem())
	et := rt.Elem()
	var self decFn
	self = func(d *Decoder, v reflect.Value, tag byte) error {
		switch tag {
		case tNil:
			v.Set(reflect.Zero(rt))
			return nil
		case tPtr:
			id, err := d.readUvarint()
			if err != nil {
				return err
			}
			np := reflect.New(et)
			v.Set(np)
			d.setRef(id, np)
			if err := d.enter(); err != nil {
				return err
			}
			tag2, err := d.readByte()
			if err != nil {
				return err
			}
			err = elem(d, np.Elem(), tag2)
			d.depth--
			return err
		case tRef:
			return d.decodeRef(v)
		default:
			// Pointer-level tolerance: a non-pointer stream value decodes
			// into a pointer target by allocating.
			np := reflect.New(et)
			v.Set(np)
			return elem(d, np.Elem(), tag)
		}
	}
	return self
}

func decIface(d *Decoder, v reflect.Value, tag byte) error {
	switch tag {
	case tNil:
		v.Set(reflect.Zero(v.Type()))
		return nil
	case tIface:
		name, err := d.readName(4096)
		if err != nil {
			return err
		}
		rt, ok := lookupTypeBytes(name)
		if !ok {
			return errf("stream has unregistered concrete type %q; call pickle.Register", name)
		}
		if err := d.enter(); err != nil {
			return err
		}
		cv := reflect.New(rt).Elem()
		tag2, err := d.readByte()
		if err != nil {
			return err
		}
		if err := decoderOf(rt)(d, cv, tag2); err != nil {
			return err
		}
		d.depth--
		if !rt.AssignableTo(v.Type()) {
			n, _ := lookupName(rt)
			return errf("concrete type %q does not implement target interface %v", n, v.Type())
		}
		v.Set(cv)
		return nil
	default:
		return d.tolerant(v, tag, decIface)
	}
}

func mismatch(tag byte, v reflect.Value) error {
	return errf("stream has %s but target is %v", tagName(tag), v.Type())
}

// readStructType reads a struct type id and, on first occurrence, its inline
// definition.
func (d *Decoder) readStructType() (*streamType, error) {
	id, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	switch {
	case id < uint64(len(d.types)):
		return d.types[id], nil
	case id == uint64(len(d.types)):
		st, err := d.readStructTypeDef()
		if err != nil {
			return nil, err
		}
		d.types = append(d.types, st)
		return st, nil
	default:
		return nil, errf("struct type id %d out of order (have %d)", id, len(d.types))
	}
}

func (d *Decoder) readStructTypeDef() (*streamType, error) {
	var start int
	if d.r == nil {
		// Byte-slice path: scan the definition first so an
		// already-interned type is found without allocating.
		start = d.pos
		if err := d.skipStructTypeDef(); err != nil {
			return nil, err
		}
		raw := d.data[start:d.pos]
		typeIntern.RLock()
		st := typeIntern.m[string(raw)]
		typeIntern.RUnlock()
		if st != nil {
			return st, nil
		}
		d.pos = start
	}
	name, err := d.readString(4096)
	if err != nil {
		return nil, err
	}
	nf, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if nf > 1<<16 {
		return nil, errf("struct %s claims %d fields", name, nf)
	}
	fields := make([]string, nf)
	for i := range fields {
		fields[i], err = d.readString(4096)
		if err != nil {
			return nil, err
		}
	}
	st := &streamType{name: name, fields: fields}
	if d.r == nil {
		raw := d.data[start:d.pos]
		typeIntern.Lock()
		if prev := typeIntern.m[string(raw)]; prev != nil {
			st = prev
		} else {
			if typeIntern.m == nil {
				typeIntern.m = make(map[string]*streamType)
			}
			typeIntern.m[string(raw)] = st
		}
		typeIntern.Unlock()
	}
	return st, nil
}

// skipStructTypeDef advances past an inline struct definition, validating
// the same limits readStructTypeDef enforces.
func (d *Decoder) skipStructTypeDef() error {
	skipStr := func(limit uint64) error {
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		if n > limit {
			return errf("string length %d exceeds limit %d", n, limit)
		}
		if uint64(len(d.data)-d.pos) < n {
			return errf("truncated stream")
		}
		d.pos += int(n)
		return nil
	}
	if err := skipStr(4096); err != nil {
		return err
	}
	nf, err := d.readUvarint()
	if err != nil {
		return err
	}
	if nf > 1<<16 {
		return errf("struct claims %d fields", nf)
	}
	for i := uint64(0); i < nf; i++ {
		if err := skipStr(4096); err != nil {
			return err
		}
	}
	return nil
}

func lookupTypeBytes(name []byte) (reflect.Type, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := nameToType[string(name)]
	return t, ok
}
