package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNewRootContext(t *testing.T) {
	a, b := NewRootContext(), NewRootContext()
	if !a.Valid() || !b.Valid() {
		t.Fatal("fresh root contexts must be valid")
	}
	if a.Trace == b.Trace || a.Span == b.Span {
		t.Errorf("ids must differ: %+v vs %+v", a, b)
	}
	if (SpanContext{}).Valid() {
		t.Error("zero SpanContext must be invalid")
	}
}

func TestSpanLifecycle(t *testing.T) {
	rec := NewRecorder(8)
	root := StartRoot(rec, "update.commit")
	if !root.Active() {
		t.Fatal("root span on a live tracer must be active")
	}
	child := StartSpan(rec, root.Context(), "wal.append")
	if !child.Active() {
		t.Fatal("child span must be active")
	}
	if child.Context().Trace != root.Context().Trace {
		t.Error("child must share the root's trace id")
	}
	if child.Context().Span == root.Context().Span {
		t.Error("child must get its own span id")
	}
	child.End(nil, A("seq", 7))
	root.End(fmt.Errorf("boom"))
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	c, r := evs[0], evs[1]
	if c.Name != "wal.append" || c.Parent != root.Context().Span || c.Trace != root.Context().Trace {
		t.Errorf("child event wrong: %+v", c)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "seq" {
		t.Errorf("child attrs wrong: %+v", c.Attrs)
	}
	if r.Name != "update.commit" || r.Parent != 0 || r.Err == nil {
		t.Errorf("root event wrong: %+v", r)
	}
	if c.Time.IsZero() || c.Dur < 0 {
		t.Errorf("span event must carry start time and duration: %+v", c)
	}
}

func TestSpanDisabledPaths(t *testing.T) {
	live := NewRecorder(4)
	for name, s := range map[string]Span{
		"nil tracer":  StartSpan(nil, NewRootContext(), "x"),
		"nop tracer":  StartSpan(Nop, NewRootContext(), "x"),
		"zero parent": StartSpan(live, SpanContext{}, "x"),
		"nil root":    StartRoot(nil, "x"),
		"nop root":    StartRoot(Nop, "x"),
		"zero span":   {},
	} {
		if s.Active() {
			t.Errorf("%s: span must be inactive", name)
		}
		if s.Context().Valid() {
			t.Errorf("%s: inactive span must have a zero context", name)
		}
		s.End(fmt.Errorf("ignored")) // must not panic or record
	}
	if len(live.Events()) != 0 {
		t.Errorf("inactive spans recorded events: %v", live.Events())
	}
}

func TestMultiFlattensNested(t *testing.T) {
	var got []string
	ta := FuncTracer(func(e Event) { got = append(got, "a:"+e.Name) })
	tb := FuncTracer(func(e Event) { got = append(got, "b:"+e.Name) })
	tc := FuncTracer(func(e Event) { got = append(got, "c:"+e.Name) })
	m := Multi(ta, Multi(tb, tc))
	mt, ok := m.(multiTracer)
	if !ok {
		t.Fatalf("Multi(nested) = %T, want multiTracer", m)
	}
	if len(mt) != 3 {
		t.Fatalf("nested multiTracer not flattened: %d entries, want 3", len(mt))
	}
	m.Emit(Event{Name: "x"})
	if len(got) != 3 {
		t.Errorf("fan-out through flattened multi: %v", got)
	}
}

func TestTraceBufferCollectsByTrace(t *testing.T) {
	tb := NewTraceBuffer(16)
	t1, t2 := TraceID(1111), TraceID(2222)
	tb.Emit(Event{Name: "untraced"}) // dropped
	tb.Emit(Event{Name: "a1", Trace: t1, Span: 1, Time: time.Unix(10, 0)})
	tb.Emit(Event{Name: "b1", Trace: t2, Span: 2, Time: time.Unix(11, 0)})
	tb.Emit(Event{Name: "a2", Trace: t1, Span: 3, Time: time.Unix(12, 0)})
	evs := tb.Trace(t1)
	if len(evs) != 2 || evs[0].Name != "a1" || evs[1].Name != "a2" {
		t.Fatalf("Trace(t1) = %+v", evs)
	}
	if got := tb.Trace(TraceID(9999)); len(got) != 0 {
		t.Errorf("unknown trace returned events: %v", got)
	}
	ts := tb.Traces()
	if len(ts) != 2 {
		t.Fatalf("Traces() = %+v, want 2", ts)
	}
	// Newest first: t2 was first seen after t1.
	if ts[0].Trace != t2 || ts[1].Trace != t1 {
		t.Errorf("ordering: %+v", ts)
	}
	if ts[1].Events != 2 || ts[1].Root != "a1" {
		t.Errorf("summary for t1: %+v", ts[1])
	}
}

func TestTraceBufferWraps(t *testing.T) {
	tb := NewTraceBuffer(4)
	for i := 0; i < 10; i++ {
		tb.Emit(Event{Name: fmt.Sprintf("e%d", i), Trace: TraceID(77), Span: SpanID(i + 1)})
	}
	evs := tb.Trace(TraceID(77))
	if len(evs) != 4 || evs[0].Name != "e6" || evs[3].Name != "e9" {
		t.Errorf("ring tail = %+v", evs)
	}
}

func TestWriteTimeline(t *testing.T) {
	t0 := time.Unix(100, 0)
	events := []Event{
		{Name: "update.commit", Time: t0, Dur: 3 * time.Millisecond, Trace: 1, Span: 10},
		{Name: "wal.append", Time: t0.Add(time.Millisecond), Dur: time.Millisecond, Trace: 1, Span: 11, Parent: 10, Attrs: []Attr{A("seq", 4)}},
		{Name: "wal.sync", Time: t0.Add(2 * time.Millisecond), Dur: time.Millisecond, Trace: 1, Span: 12, Parent: 11, Err: fmt.Errorf("disk gone")},
	}
	var b strings.Builder
	WriteTimeline(&b, events)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(lines[0], "update.commit") || !strings.Contains(lines[1], "wal.append") {
		t.Errorf("ordering by time lost:\n%s", out)
	}
	// Children indent two spaces per depth level.
	if !strings.Contains(lines[1], "  wal.append") {
		t.Errorf("child not indented:\n%s", out)
	}
	if !strings.Contains(lines[2], "    wal.sync") {
		t.Errorf("grandchild not double-indented:\n%s", out)
	}
	if !strings.Contains(lines[1], "seq=4") || !strings.Contains(lines[2], `err="disk gone"`) {
		t.Errorf("attrs/err missing:\n%s", out)
	}

	var empty strings.Builder
	WriteTimeline(&empty, nil)
	if !strings.Contains(empty.String(), "no events") {
		t.Errorf("empty timeline = %q", empty.String())
	}
}

func TestWriteTimelineOrphanAndCycle(t *testing.T) {
	// An event whose parent fell out of the ring renders at depth zero,
	// and a parent cycle must not hang the renderer.
	events := []Event{
		{Name: "orphan", Time: time.Unix(1, 0), Trace: 1, Span: 5, Parent: 99},
		{Name: "selfloop", Time: time.Unix(2, 0), Trace: 1, Span: 6, Parent: 6},
	}
	var b strings.Builder
	WriteTimeline(&b, events)
	if !strings.Contains(b.String(), "orphan") || !strings.Contains(b.String(), "selfloop") {
		t.Errorf("timeline = %q", b.String())
	}
}

func TestEmitStampsTime(t *testing.T) {
	rec := NewRecorder(4)
	Emit(rec, Event{Name: "x"})
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Time.IsZero() {
		t.Fatalf("Emit must stamp a zero Time: %+v", evs)
	}
	want := time.Unix(42, 0)
	Emit(rec, Event{Name: "y", Time: want})
	if evs = rec.Events(); !evs[1].Time.Equal(want) {
		t.Errorf("Emit must preserve an explicit Time: %v", evs[1].Time)
	}
}

func TestEventStringRendersTimestampAndTrace(t *testing.T) {
	e := Event{Name: "update.commit", Time: time.Date(2026, 8, 8, 9, 30, 1, 250000000, time.UTC), Trace: 0xabcd, Dur: time.Millisecond}
	s := e.String()
	if !strings.Contains(s, "09:30:01.250000") {
		t.Errorf("timestamp missing from %q", s)
	}
	if !strings.Contains(s, "trace=000000000000abcd") {
		t.Errorf("trace id missing from %q", s)
	}
	if plain := (Event{Name: "x"}).String(); strings.Contains(plain, "trace=") || strings.Contains(plain, ":") {
		t.Errorf("zero time/trace must not render: %q", plain)
	}
}

// --- allocation ceilings: the disabled paths must stay free ---

func TestEmitNopAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	e := Event{Name: "x", Dur: time.Millisecond}
	if n := testing.AllocsPerRun(200, func() { Emit(Nop, e) }); n != 0 {
		t.Errorf("Emit via Nop allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { Emit(nil, e) }); n != 0 {
		t.Errorf("Emit via nil allocates %.1f/op, want 0", n)
	}
}

func TestSlowOpsFilteredAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := SlowOps(time.Second, func(string, ...any) { t.Error("filtered event logged") })
	e := Event{Name: "fast", Dur: time.Millisecond}
	if n := testing.AllocsPerRun(200, func() { s.Emit(e) }); n != 0 {
		t.Errorf("filtered SlowOps.Emit allocates %.1f/op, want 0", n)
	}
}

func TestRecorderEmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	rec := NewRecorder(64)
	e := Event{Name: "x", Time: time.Unix(1, 0), Dur: time.Millisecond}
	if n := testing.AllocsPerRun(200, func() { rec.Emit(e) }); n != 0 {
		t.Errorf("Recorder.Emit allocates %.1f/op, want 0", n)
	}
}

func TestInactiveSpanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	sc := NewRootContext()
	if n := testing.AllocsPerRun(200, func() {
		s := StartSpan(Nop, sc, "x")
		s.End(nil)
	}); n != 0 {
		t.Errorf("StartSpan/End on Nop allocates %.1f/op, want 0", n)
	}
}
