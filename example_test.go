package smalldb_test

import (
	"fmt"

	"smalldb"
)

// Counters is a tiny example database: named counters.
type Counters struct {
	N map[string]int
}

// Increment is a single-shot transaction adding Delta to one counter.
type Increment struct {
	Name  string
	Delta int
}

// Verify implements smalldb.Update: preconditions are checked in memory
// before anything reaches the disk.
func (u *Increment) Verify(root any) error {
	if u.Delta == 0 {
		return fmt.Errorf("increment of zero")
	}
	return nil
}

// Apply implements smalldb.Update: called after the update's log entry is
// durably on disk.
func (u *Increment) Apply(root any) error {
	root.(*Counters).N[u.Name] += u.Delta
	return nil
}

func init() {
	smalldb.Register(&Counters{})
	smalldb.RegisterUpdate(&Increment{})
}

// Example shows the whole lifecycle: open, update (one disk write each),
// read (no disk), checkpoint, crash, recover.
func Example() {
	fs := smalldb.NewMemFS(1) // use NewDirFS for a real directory
	cfg := smalldb.Config{
		FS:      fs,
		NewRoot: func() any { return &Counters{N: map[string]int{}} },
		Retain:  1,
	}
	st, err := smalldb.Open(cfg)
	if err != nil {
		panic(err)
	}

	st.Apply(&Increment{Name: "requests", Delta: 3})
	st.Apply(&Increment{Name: "requests", Delta: 4})
	st.Checkpoint()
	st.Apply(&Increment{Name: "errors", Delta: 1})

	// Simulate a crash: unsynced state vanishes, committed updates stay.
	fs.Crash()
	st, err = smalldb.Open(cfg)
	if err != nil {
		panic(err)
	}
	defer st.Close()

	st.View(func(root any) error {
		c := root.(*Counters)
		fmt.Println("requests:", c.N["requests"])
		fmt.Println("errors:", c.N["errors"])
		return nil
	})
	fmt.Println("replayed:", st.Stats().RestartEntries, "log entry")
	// Output:
	// requests: 7
	// errors: 1
	// replayed: 1 log entry
}

// ExampleOpenMulti shows the §7 partitioned variant: independent
// checkpoints over one shared log.
func ExampleOpenMulti() {
	fs := smalldb.NewMemFS(1)
	set, err := smalldb.OpenMulti(smalldb.MultiConfig{
		FS: fs,
		Partitions: map[string]func() any{
			"east": func() any { return &Counters{N: map[string]int{}} },
			"west": func() any { return &Counters{N: map[string]int{}} },
		},
	})
	if err != nil {
		panic(err)
	}
	defer set.Close()

	set.Apply("east", &Increment{Name: "reqs", Delta: 10})
	set.Apply("west", &Increment{Name: "reqs", Delta: 20})
	set.Checkpoint("east") // only east blocks, briefly

	set.View("west", func(root any) error {
		fmt.Println("west reqs:", root.(*Counters).N["reqs"])
		return nil
	})
	// Output:
	// west reqs: 20
}
