package netsim

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"smalldb/internal/obs"
)

// echoServer accepts connections on l and echoes every byte back.
func echoServer(l *Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			buf := make([]byte, 256)
			for {
				n, err := conn.Read(buf)
				if err != nil {
					conn.Close()
					return
				}
				if _, err := conn.Write(buf[:n]); err != nil {
					conn.Close()
					return
				}
			}
		}()
	}
}

func TestPerfectNetworkRoundTrip(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	l, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go echoServer(l)
	c, err := nw.Dial("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestGracefulCloseGivesEOF(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	a, b := nw.newPair("a", "b")
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("buffered data lost on graceful close: %q, %v", buf[:n], err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
}

func TestKillResetsBothEnds(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	a, b := nw.newPair("a", "b")
	a.Write([]byte("in flight"))
	a.Kill()
	if _, err := b.Read(make([]byte, 8)); !errors.Is(err, ErrReset) {
		t.Fatalf("read after kill: %v", err)
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write after kill: %v", err)
	}
}

func TestDropKillsConnection(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	a, b := nw.newPair("a", "b")
	nw.FailAt(0) // force the first message decision to drop
	if _, err := a.Write([]byte("doomed")); !errors.Is(err, ErrReset) {
		t.Fatalf("dropped write: %v", err)
	}
	if _, err := b.Read(make([]byte, 8)); !errors.Is(err, ErrReset) {
		t.Fatalf("peer read after drop: %v", err)
	}
}

func TestSymmetricPartition(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	l, err := nw.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	go echoServer(l)
	c, err := nw.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	nw.Partition("a", "b")
	// Existing connection is reset.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write across partition: %v", err)
	}
	// Dials are refused both ways.
	if _, err := nw.Dial("a", "b"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial a->b across partition: %v", err)
	}
	if _, err := nw.Dial("b", "a"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial b->a across partition: %v", err)
	}
	nw.Heal("a", "b")
	c2, err := nw.Dial("a", "b")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestOneWayPartitionBlackholes(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	a, b := nw.newPair("a", "b")
	nw.PartitionOneWay("a", "b")
	// a->b vanishes but the write is acknowledged.
	if _, err := a.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	// b->a still works.
	if _, err := b.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "back" {
		t.Fatalf("reverse direction: %q, %v", buf[:n], err)
	}
	// Nothing ever arrives at b.
	done := make(chan struct{})
	go func() {
		b.Read(make([]byte, 8))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blackholed message was delivered")
	case <-time.After(20 * time.Millisecond):
	}
	a.Kill() // unblock the reader
	<-done
}

func TestRebindAfterListenerClose(t *testing.T) {
	nw := New(1, Options{})
	defer nw.Close()
	l, err := nw.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("x"); err == nil {
		t.Fatal("double listen succeeded")
	}
	l.Close()
	if _, err := nw.Listen("x"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

// script drives one deterministic sequence of dials and writes against a
// hostile profile, returning the observed outcome sequence.
func script(t *testing.T, nw *Network) []string {
	t.Helper()
	var out []string
	l, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go echoServer(l)
	var c io.ReadWriteCloser
	for i := 0; i < 200; i++ {
		if c == nil {
			cc, err := nw.Dial("cli", "srv")
			if err != nil {
				out = append(out, "dial-fail")
				continue
			}
			out = append(out, "dial")
			c = cc
		}
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			out = append(out, "write-fail")
			c.Close()
			c = nil
			continue
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(c.(io.Reader), buf); err != nil {
			out = append(out, "read-fail")
			c.Close()
			c = nil
			continue
		}
		out = append(out, "ok")
	}
	if c != nil {
		c.Close()
	}
	return out
}

// TestDeterministicReplay is the acceptance self-test: the same seed and
// the same (sequential) workload produce the identical fault schedule —
// outcome for outcome and trace event for trace event — including a forced
// known-bad decision, so any failing schedule replays from (seed, index).
func TestDeterministicReplay(t *testing.T) {
	profile := Profile{DropProb: 0.15, DelayProb: 0.2, MaxDelay: 100 * time.Microsecond, DialFailProb: 0.2, DupDialProb: 0.1}
	run := func() ([]string, []Event) {
		nw := New(42, Options{Profile: profile})
		defer nw.Close()
		nw.FailAt(17) // the known-bad decision
		return script(t, nw), nw.Trace()
	}
	out1, trace1 := run()
	out2, trace2 := run()
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("outcome sequences diverge:\n%v\n%v", out1, out2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("fault traces diverge across replays (%d vs %d events)", len(trace1), len(trace2))
	}
	if len(trace1) == 0 {
		t.Fatal("no trace recorded")
	}
	// The forced failure actually fired at its index.
	foundForced := false
	for _, e := range trace1 {
		if e.Index == 17 && (e.Kind == "drop" || e.Kind == "dial-fail") {
			foundForced = true
		}
	}
	if !foundForced {
		t.Fatalf("forced failure at index 17 missing from trace: %v", trace1[:min(len(trace1), 25)])
	}
	// And a different seed gives a different schedule.
	nw := New(43, Options{Profile: profile})
	defer nw.Close()
	out3 := script(t, nw)
	if reflect.DeepEqual(out1, out3) {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

func TestCountersAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	nw := New(7, Options{Profile: Profile{DropProb: 0.5}, Obs: reg, TraceCap: 8})
	defer nw.Close()
	for i := 0; i < 50; i++ {
		a, _ := nw.newPair("a", "b")
		a.Write([]byte("x"))
		a.Close()
	}
	if reg.Counter("netsim_messages").Value() == 0 {
		t.Error("netsim_messages not counted")
	}
	if reg.Counter("netsim_drops").Value() == 0 {
		t.Error("netsim_drops not counted with DropProb=0.5")
	}
	if tr := nw.Trace(); len(tr) != 8 {
		t.Errorf("trace ring holds %d events, want cap 8", len(tr))
	}
}
