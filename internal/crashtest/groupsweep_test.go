package crashtest

import (
	"testing"
)

// TestGroupSweepBoundedSlice runs a bounded slice of the N-node group
// sweep: 3 nodes, majority quorum, a seeded minority partition per point.
func TestGroupSweepBoundedSlice(t *testing.T) {
	res, err := RunNet(NetConfig{
		Seed:    1,
		Ops:     16,
		Window:  3,
		From:    0,
		To:      6,
		Stride:  2,
		Nodes:   3,
		Profile: hostileProfile,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("sweep replayed no points")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestGroupSweepFiveNodesWithCrash composes the 5-node minority partition
// with a rotating member power failure — including the primary at point 0
// — at W=3.
func TestGroupSweepFiveNodesWithCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded but heavy; covered in full by cmd/crashtest -nodes 5")
	}
	res, err := RunNet(NetConfig{
		Seed:    2,
		Ops:     14,
		Window:  3,
		From:    0,
		To:      6,
		Stride:  3,
		Nodes:   5,
		Quorum:  3,
		Crash:   true,
		Profile: hostileProfile,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points == 0 {
		t.Fatal("sweep replayed no points")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestGroupSweepRejectsSuperMajorityQuorum documents the harness contract:
// a quorum the minority partition could starve is a config error, not a
// sweep full of availability violations.
func TestGroupSweepRejectsSuperMajorityQuorum(t *testing.T) {
	if _, err := RunNet(NetConfig{Seed: 1, Ops: 8, Window: 2, Nodes: 5, Quorum: 4}); err == nil {
		t.Fatal("W=4 of 5 accepted; a 2-node minority partition would starve it")
	}
	if _, err := RunNet(NetConfig{Seed: 1, Ops: 8, Window: 2, Nodes: 3, Quorum: 9}); err == nil {
		t.Fatal("W>N accepted")
	}
}
