package crashtest

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// Modes of the torture run.
const (
	// ModeStore tortures a bare name-server store: recovery must surface
	// exactly the acknowledged prefix, and replaying the remaining updates
	// must reach the full-workload oracle.
	ModeStore = "store"
	// ModeReplica tortures one node of a two-node replica pair: after the
	// crashed node recovers, anti-entropy with its peer must restore every
	// update the pair acknowledged, then the workload finishes on the
	// recovered node and both replicas must converge on the full oracle.
	ModeReplica = "replica"
)

// Config configures one torture run.
type Config struct {
	// Seed fixes the workload; (Seed, crash point) replays any failure.
	Seed int64
	// Ops is the number of updates in the workload (default 50).
	Ops int
	// CheckpointEvery checkpoints after every k-th update, so the crash
	// points sweep through the checkpoint-switch windows. 0 picks
	// Ops/4+1 (several switches per run); negative disables checkpoints.
	CheckpointEvery int
	// Mode is ModeStore or ModeReplica (default ModeStore).
	Mode string
	// From and To bound the crash points to replay, inclusive; To <= 0
	// means "through the last operation". The full sweep is [0, N] where
	// N is the workload's total op count: point n crashes just before
	// the n-th operation, point N is the crash-free run.
	From, To int64
	// Stride replays every Stride-th point in [From, To] (default 1).
	Stride int64
	// Shards is the number of crash points replayed concurrently
	// (default GOMAXPROCS). Points are independent, so sharding does not
	// affect the result.
	Shards int
	// OverlapCheckpoints commits workload updates *inside* each
	// checkpoint's mirror window: at every checkpoint stage (mirror
	// open, file written, version flipped) the workload applies a couple
	// more updates through the store's stage hook, so the crash sweep
	// covers updates that are acknowledged while the whole-database
	// write is in flight and durable only through the mirror protocol.
	// A store configured for blocking checkpoints has no stages, so the
	// hook simply never fires and the updates run after the switch.
	OverlapCheckpoints bool
	// UnsafeNoSync runs the workload without log syncs. In ModeStore
	// this is a self-test: the harness must report lost acknowledged
	// updates. In ModeReplica it exercises the paper's §4 story — the
	// node forfeits local durability and recovery restores the lost
	// updates from the peer; no violation is expected.
	UnsafeNoSync bool
	// ReplayWorkers passes through to recovery's decode pipeline
	// (0 = auto, 1 = sequential), so the sweep can torture pipelined
	// restart at every crash point.
	ReplayWorkers int
	// LogShards splits the store's redo log into this many parallel
	// streams (0 or 1 = the paper's single stream). Sharded runs force
	// SerialLogSync, so each epoch seal syncs its streams one at a time in
	// stream order and the sweep's fs-op indexing stays deterministic —
	// crash points then land inside individual stream syncs and, with
	// Batch, between the streams of one epoch.
	LogShards int
	// Batch groups every Batch consecutive workload updates into one
	// ApplyBatch call: one epoch barrier spanning several streams, so the
	// sweep covers crashes after some streams of an epoch synced but
	// before the rest. 0 or 1 applies updates one at a time. Checkpoint
	// cadence is rounded up to a batch multiple so the schedule still
	// fires.
	Batch int
	// FullCheckpoints runs every checkpoint as a full-root write instead
	// of the default incremental delta chained onto the last full image —
	// the ablation sweep, and the pre-delta behaviour.
	FullCheckpoints bool
	// MaxDeltaChain caps the delta chain before a compaction rewrites it
	// into a fresh full base (0 = the store default). Small values put
	// compactions inside the sweep, so crash points land mid-rewrite. The
	// harness always forces SerialCompaction: a due compaction runs
	// synchronously inside the checkpoint that tripped it, on the workload
	// thread, so the sweep's fs-op indexing stays deterministic.
	MaxDeltaChain int
	// Readers runs this many concurrent snapshot readers alongside every
	// workload — the reference run, each crash replay, and the post-crash
	// catch-up — each continuously validating that a pinned snapshot at
	// sequence k fingerprints exactly to the oracle prefix fp[k]. The
	// readers take no locks and perform no file-system operations, so the
	// crash-point op indexing stays deterministic; what they add is the
	// check that lock-free enquiries never observe a torn or stale
	// version, at every crash point. 0 disables.
	Readers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Violation is one broken durability invariant, replayable from
// (Seed, Point) with the same Config.
type Violation struct {
	Seed  int64
	Mode  string
	Point int64
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("seed=%d mode=%s crash-point=%d: %s", v.Seed, v.Mode, v.Point, v.Msg)
}

// Result summarizes a torture run.
type Result struct {
	Mode       string
	Seed       int64
	Ops        int
	TotalFSOps int64 // N: mutating fs ops in the crash-free workload
	Points     int   // crash points replayed
	Violations []Violation
}

type runner struct {
	cfg     Config
	cpEvery int
	plan    *plan
	rec     *recorder
}

// Run executes the torture: a reference run to count operations and record
// acknowledgement windows, then one full workload replay per crash point.
func Run(cfg Config) (*Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 50
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeStore
	}
	if cfg.Mode != ModeStore && cfg.Mode != ModeReplica {
		return nil, fmt.Errorf("crashtest: unknown mode %q", cfg.Mode)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	cpEvery := cfg.CheckpointEvery
	if cpEvery == 0 {
		cpEvery = cfg.Ops/4 + 1
	}
	if cpEvery > 0 && cfg.Batch > 1 {
		// The loop checkpoints when the update index is a cpEvery
		// multiple; batched indices advance Batch at a time, so align the
		// cadence or it might never fire.
		cpEvery = ((cpEvery + cfg.Batch - 1) / cfg.Batch) * cfg.Batch
	}
	r := &runner{cfg: cfg, cpEvery: cpEvery, plan: makePlan(cfg.Seed, cfg.Ops)}

	n, err := r.reference()
	if err != nil {
		return nil, fmt.Errorf("crashtest: reference run failed: %w", err)
	}

	from := cfg.From
	if from < 0 {
		from = 0
	}
	to := cfg.To
	if to <= 0 || to > n {
		to = n
	}
	var points []int64
	for p := from; p <= to; p += cfg.Stride {
		points = append(points, p)
	}
	r.logf("crashtest: mode=%s seed=%d ops=%d fs-ops=%d points=%d shards=%d",
		cfg.Mode, cfg.Seed, cfg.Ops, n, len(points), cfg.Shards)

	res := &Result{Mode: cfg.Mode, Seed: cfg.Seed, Ops: cfg.Ops, TotalFSOps: n, Points: len(points)}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next atomic.Int64
		done atomic.Int64
	)
	next.Store(-1)
	for w := 0; w < cfg.Shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(points)) {
					return
				}
				vs := r.point(points[i])
				if len(vs) > 0 {
					mu.Lock()
					res.Violations = append(res.Violations, vs...)
					mu.Unlock()
				}
				if d := done.Add(1); d%64 == 0 {
					r.logf("crashtest: %d/%d points done", d, len(points))
				}
			}
		}()
	}
	wg.Wait()
	sort.Slice(res.Violations, func(i, j int) bool { return res.Violations[i].Point < res.Violations[j].Point })
	return res, nil
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// point replays one crash point, converting a harness panic into a
// violation rather than killing the whole sweep.
func (r *runner) point(n int64) (vs []Violation) {
	defer func() {
		if p := recover(); p != nil {
			vs = append(vs, r.violation(n, "harness panic: %v", p))
		}
	}()
	if r.cfg.Mode == ModeReplica {
		return r.replicaPoint(n)
	}
	return r.storePoint(n)
}

func (r *runner) violation(n int64, format string, args ...any) Violation {
	return Violation{Seed: r.cfg.Seed, Mode: r.cfg.Mode, Point: n, Msg: fmt.Sprintf(format, args...)}
}

// reference runs the workload crash-free on an instrumented fs, recording
// each update's op-index window and the total op count N.
func (r *runner) reference() (int64, error) {
	ffs := faultfs.New(vfs.NewMem(r.cfg.Seed), faultfs.Options{CrashAt: faultfs.Never})
	rec := &recorder{}
	rc := r.newReaderCheck()
	var err error
	if r.cfg.Mode == ModeReplica {
		peer, shutdown, perr := r.newPeer()
		if perr != nil {
			return 0, perr
		}
		err = r.runReplicaWorkload(ffs, peer, rec, ffs.OpCount, rc)
		shutdown()
	} else {
		err = r.runStoreWorkload(ffs, rec, ffs.OpCount, rc)
	}
	if msgs := rc.finish(); err == nil && len(msgs) > 0 {
		err = fmt.Errorf("concurrent reader: %s", msgs[0])
	}
	if err != nil {
		return 0, err
	}
	if len(rec.ackOp) != len(r.plan.updates) {
		return 0, fmt.Errorf("reference run acked %d of %d updates", len(rec.ackOp), len(r.plan.updates))
	}
	r.rec = rec
	return ffs.OpCount(), nil
}

// overlapPerStage is how many workload updates OverlapCheckpoints commits
// at each checkpoint stage — six per checkpoint, spread across the mirror
// window's three stages.
const overlapPerStage = 2

// workloadLoop drives the shared plan through apply/checkpoint callbacks:
// the updates run in plan order through doOne (which records ack windows
// and advances the shared index), with a checkpoint after every cpEvery-th
// update. In overlap mode the checkpoint callback consumes further updates
// mid-window via the store's stage hook, which is why the index lives in
// the closure rather than a range loop.
func (r *runner) workloadLoop(doOne func() error, checkpoint func() error, k *int) error {
	for *k < len(r.plan.updates) {
		if err := doOne(); err != nil {
			return err
		}
		if r.cpEvery > 0 && *k%r.cpEvery == 0 {
			if err := checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// overlapCheckpoint runs one checkpoint with the stage hook applying
// overlapPerStage more workload updates at each stage of the mirror
// window, then clears the hook. The first error — from the checkpoint
// itself or from an in-window update — stops the workload.
func overlapCheckpoint(st *core.Store, cp func() error, doOne func() error, remaining func() bool) error {
	var hookErr error
	st.SetCheckpointStageHook(func(core.CheckpointStage) {
		for i := 0; i < overlapPerStage; i++ {
			if hookErr != nil || !remaining() {
				return
			}
			hookErr = doOne()
		}
	})
	err := cp()
	st.SetCheckpointStageHook(nil)
	if err != nil {
		return err
	}
	return hookErr
}

// --- concurrent snapshot readers ---

// readerCheck drives Config.Readers snapshot readers against a store
// while a workload runs, validating every observed version against the
// plan's per-prefix oracle fingerprints. Reads are lock-free and touch no
// file system, so they cannot perturb the crash-point determinism of the
// workload they overlap.
type readerCheck struct {
	readers int
	plan    *plan
	stop    atomic.Bool
	wg      sync.WaitGroup
	mu      sync.Mutex
	errs    []string
}

func (r *runner) newReaderCheck() *readerCheck {
	return &readerCheck{readers: r.cfg.Readers, plan: r.plan}
}

func (rc *readerCheck) fail(format string, args ...any) {
	rc.mu.Lock()
	rc.errs = append(rc.errs, fmt.Sprintf(format, args...))
	rc.mu.Unlock()
}

// launch starts the readers against an open store. treeOf extracts the
// name tree from a snapshot root (bare tree in store mode, replica root's
// tree in replica mode).
func (rc *readerCheck) launch(st *core.Store, treeOf func(any) *nameserver.Tree) {
	for i := 0; i < rc.readers; i++ {
		rc.wg.Add(1)
		go func() {
			defer rc.wg.Done()
			defer func() {
				if p := recover(); p != nil {
					rc.fail("reader panic: %v", p)
				}
			}()
			for !rc.stop.Load() {
				snap, err := st.SnapshotAt()
				if err != nil {
					rc.fail("snapshot: %v", err)
					return
				}
				seq := int(snap.Seq())
				var msg string
				if seq >= len(rc.plan.fp) {
					msg = fmt.Sprintf("snapshot at seq %d beyond the %d-update plan", seq, len(rc.plan.updates))
				} else if fp := fingerprintTree(treeOf(snap.Root())); fp != rc.plan.fp[seq] {
					msg = fmt.Sprintf("snapshot at seq %d diverges from the oracle prefix of %d updates", seq, seq)
				}
				snap.Release()
				if msg != "" {
					rc.fail("%s", msg)
					return
				}
				// Yield so spinning lock-free readers never starve the
				// single-threaded workload on a small GOMAXPROCS.
				runtime.Gosched()
			}
		}()
	}
}

// finish stops the readers and reports every validation failure. Safe to
// call after the store has closed: pending reads are pure memory reads of
// published versions.
func (rc *readerCheck) finish() []string {
	rc.stop.Store(true)
	rc.wg.Wait()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.errs
}

func storeTree(root any) *nameserver.Tree   { return root.(*nameserver.Tree) }
func replicaTree(root any) *nameserver.Tree { return root.(*replica.Root).Tree }

// --- flight recorder ---

// flightName is the ring file the torture workloads record into, on the
// same tortured fs as the store itself.
const flightName = "flightrec"

// openFlight starts the workload's flight recorder in synchronous mode, so
// its fs ops are deterministic (reference and crash runs see identical op
// indices) and every event is durable before the update that emitted it is
// acknowledged to the harness.
func openFlight(fs vfs.FS) (*obs.FlightRecorder, error) {
	return obs.OpenFlight(obs.FlightConfig{FS: fs, Name: flightName, FlushEvery: 0})
}

// maxCommitSeq scans a decoded flight tail for the newest committed
// sequence — per-update "update.commit" events or batched "update.batch"
// events (which carry the batch's last sequence); 0 means no commit event
// survived.
func maxCommitSeq(events []obs.Event) int {
	max := 0
	for _, e := range events {
		var key string
		switch e.Name {
		case "update.commit":
			key = "seq"
		case "update.batch":
			key = "last_seq"
		default:
			continue
		}
		for _, a := range e.Attrs {
			if a.Key != key {
				continue
			}
			if v, err := strconv.Atoi(fmt.Sprint(a.Value)); err == nil && v > max {
				max = v
			}
		}
	}
	return max
}

// checkFlight validates the crash-surviving flight recorder against the
// acked-prefix oracle on a post-crash durable image. Once any update has
// been acknowledged the ring must be present and decodable, its tail
// non-empty, and its newest commit event within [acked-1, attempted]: the
// lower bound is acked-1 rather than acked because the crash can land on
// the commit event's own slot write, after the update's log sync already
// made it durable (and acknowledgeable).
func (r *runner) checkFlight(n int64, fs vfs.FS, acked, attempted int) []Violation {
	events, err := obs.ReadFlight(fs, flightName)
	if err != nil {
		if acked == 0 {
			return nil // crashed before the ring header was durable
		}
		return []Violation{r.violation(n, "flight: unreadable after crash with %d acked updates: %v", acked, err)}
	}
	if acked == 0 {
		return nil
	}
	if len(events) == 0 {
		return []Violation{r.violation(n, "flight: empty tail after crash with %d acked updates", acked)}
	}
	max := maxCommitSeq(events)
	// With batching the whole batch shares one event, so the crash landing
	// on that event's own ring write can leave the newest surviving event a
	// full batch behind the acknowledged frontier.
	if max < acked-r.cfg.Batch {
		return []Violation{r.violation(n, "flight: newest commit event is seq %d but %d updates were acknowledged", max, acked)}
	}
	if max > attempted {
		return []Violation{r.violation(n, "flight: phantom commit event seq %d with only %d updates attempted", max, attempted)}
	}
	return nil
}

// --- store mode ---

// runStoreWorkload replays the plan against one store on fs, interleaving
// checkpoints, stopping at the first error (the crash, in a torture
// replay).
func (r *runner) runStoreWorkload(fs vfs.FS, rec *recorder, opCount func() int64, rc *readerCheck) error {
	fl, err := openFlight(fs)
	if err != nil {
		return err // in a torture replay, the crash landed on the ring setup
	}
	defer fl.Close()
	srv, err := nameserver.Open(nameserver.Config{FS: fs, UnsafeNoSync: r.cfg.UnsafeNoSync, ReplayWorkers: r.cfg.ReplayWorkers,
		LogShards: r.cfg.LogShards, SerialLogSync: r.cfg.LogShards > 1, Tracer: fl,
		FullCheckpoints: r.cfg.FullCheckpoints, MaxDeltaChain: r.cfg.MaxDeltaChain, SerialCompaction: true})
	if err != nil {
		return err
	}
	st := srv.Store()
	rc.launch(st, storeTree)
	k := 0
	doOne := func() error {
		end := k + r.cfg.Batch
		if end > len(r.plan.updates) {
			end = len(r.plan.updates)
		}
		if rec != nil {
			for j := k; j < end; j++ {
				rec.start(opCount())
			}
		}
		var err error
		if end == k+1 {
			err = st.Apply(r.plan.updates[k])
		} else {
			err = st.ApplyBatch(r.plan.updates[k:end])
		}
		if err != nil {
			return err
		}
		if rec != nil {
			for j := k; j < end; j++ {
				rec.ack(opCount())
			}
		}
		k = end
		return nil
	}
	checkpoint := srv.Checkpoint
	if r.cfg.OverlapCheckpoints {
		checkpoint = func() error {
			return overlapCheckpoint(st, srv.Checkpoint, doOne, func() bool { return k < len(r.plan.updates) })
		}
	}
	if err := r.workloadLoop(doOne, checkpoint, &k); err != nil {
		srv.Close()
		return err
	}
	return srv.Close()
}

// storePoint crashes the workload before op n, recovers from the frozen
// durable image through the normal restart path, and checks the
// invariants.
func (r *runner) storePoint(n int64) (out []Violation) {
	ffs := faultfs.New(vfs.NewMem(r.cfg.Seed), faultfs.Options{CrashAt: n})
	rc := r.newReaderCheck()
	_ = r.runStoreWorkload(ffs, nil, ffs.OpCount, rc) // error is the crash itself

	snap := ffs.Snapshot()
	acked, attempted := r.rec.ackedAt(n), r.rec.attemptedAt(n)
	out = r.checkFlight(n, snap, acked, attempted)
	for _, msg := range rc.finish() {
		out = append(out, r.violation(n, "concurrent reader: %s", msg))
	}

	srv, err := nameserver.Open(nameserver.Config{FS: snap, ReplayWorkers: r.cfg.ReplayWorkers,
		LogShards: r.cfg.LogShards, SerialLogSync: r.cfg.LogShards > 1,
		FullCheckpoints: r.cfg.FullCheckpoints, MaxDeltaChain: r.cfg.MaxDeltaChain, SerialCompaction: true})
	if err != nil {
		return append(out, r.violation(n, "recovery failed: %v", err))
	}
	defer srv.Close()

	// Readers also overlap the recovered store's catch-up, so the sweep
	// covers snapshots taken while a freshly recovered database is still
	// absorbing the rest of the workload.
	rc2 := r.newReaderCheck()
	rc2.launch(srv.Store(), storeTree)
	defer func() {
		for _, msg := range rc2.finish() {
			out = append(out, r.violation(n, "catch-up reader: %s", msg))
		}
	}()

	recovered := int(srv.Store().AppliedSeq())
	// The lower bound holds unconditionally in store mode: with
	// UnsafeNoSync it is exactly the violation the self-test expects the
	// harness to catch.
	if recovered < acked {
		out = append(out, r.violation(n, "durability: recovered %d updates but %d were acknowledged", recovered, acked))
	}
	if recovered > attempted {
		out = append(out, r.violation(n, "phantom: recovered %d updates but only %d were attempted", recovered, attempted))
		return out
	}
	got, err := storeFingerprint(srv)
	if err != nil {
		return append(out, r.violation(n, "reading recovered state: %v", err))
	}
	if got != r.plan.fp[recovered] {
		return append(out, r.violation(n, "atomicity: recovered state diverges from the oracle prefix of %d updates", recovered))
	}
	// Catch-up: the recovered state must accept the rest of the workload
	// and land exactly on the full oracle.
	for k := recovered; k < len(r.plan.updates); k++ {
		if err := srv.Store().Apply(r.plan.updates[k]); err != nil {
			return append(out, r.violation(n, "catch-up: update %d rejected after recovery: %v", k, err))
		}
	}
	if got, err := storeFingerprint(srv); err != nil || got != r.plan.fp[len(r.plan.updates)] {
		out = append(out, r.violation(n, "catch-up: state after finishing the workload diverges from the full oracle (%v)", err))
	}
	return out
}

func storeFingerprint(srv *nameserver.Server) (uint64, error) {
	var fp uint64
	err := srv.Store().View(func(root any) error {
		t, ok := root.(*nameserver.Tree)
		if !ok {
			return fmt.Errorf("root is %T, not *nameserver.Tree", root)
		}
		fp = fingerprintTree(t)
		return nil
	})
	return fp, err
}

// --- replica mode ---

// peer is the crash-free replica "b": every update node "a" acknowledges
// has been pushed here, so after a crash it holds exactly the acknowledged
// prefix.
type peer struct {
	node *replica.Node
	srv  *rpc.Server
}

func (r *runner) newPeer() (*peer, func(), error) {
	node, err := replica.Open(replica.Config{Name: "b", FS: vfs.NewMem(r.cfg.Seed + 1)})
	if err != nil {
		return nil, nil, err
	}
	srv := rpc.NewServer()
	if err := srv.Register("Replica", replica.NewService(node)); err != nil {
		node.Close()
		return nil, nil, err
	}
	p := &peer{node: node, srv: srv}
	shutdown := func() {
		p.node.Close()
		p.srv.Close()
	}
	return p, shutdown, nil
}

// dial opens a fresh in-memory connection to the peer.
func (p *peer) dial() *rpc.Client {
	cc, sc := net.Pipe()
	go p.srv.ServeConn(sc)
	return rpc.NewClient(cc)
}

// dialNode stands up an RPC endpoint for node and returns a client
// connected to it, so the peer can pull from the recovered node (the
// reverse direction of anti-entropy).
func dialNode(node *replica.Node) (*rpc.Client, func(), error) {
	srv := rpc.NewServer()
	if err := srv.Register("Replica", replica.NewService(node)); err != nil {
		return nil, nil, err
	}
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	return rpc.NewClient(cc), func() { srv.Close() }, nil
}

// runReplicaWorkload replays the plan through node "a" on fs, pushing each
// committed update to the peer, checkpointing on the same schedule as
// store mode.
func (r *runner) runReplicaWorkload(fs vfs.FS, p *peer, rec *recorder, opCount func() int64, rc *readerCheck) error {
	fl, err := openFlight(fs)
	if err != nil {
		return err // in a torture replay, the crash landed on the ring setup
	}
	defer fl.Close()
	node, err := replica.Open(replica.Config{Name: "a", FS: fs, UnsafeNoSync: r.cfg.UnsafeNoSync, ReplayWorkers: r.cfg.ReplayWorkers,
		LogShards: r.cfg.LogShards, SerialLogSync: r.cfg.LogShards > 1, Tracer: fl,
		FullCheckpoints: r.cfg.FullCheckpoints, MaxDeltaChain: r.cfg.MaxDeltaChain, SerialCompaction: true})
	if err != nil {
		return err
	}
	node.AddPeer("b", p.dial())
	rc.launch(node.Store(), replicaTree)
	k := 0
	doOne := func() error {
		end := k + r.cfg.Batch
		if end > len(r.plan.updates) {
			end = len(r.plan.updates)
		}
		if rec != nil {
			for j := k; j < end; j++ {
				rec.start(opCount())
			}
		}
		var err error
		if end == k+1 {
			err = node.Apply(r.plan.updates[k])
		} else {
			err = node.ApplyBatch(r.plan.updates[k:end])
		}
		if err != nil {
			return err
		}
		if rec != nil {
			for j := k; j < end; j++ {
				rec.ack(opCount())
			}
		}
		k = end
		return nil
	}
	checkpoint := node.Checkpoint
	if r.cfg.OverlapCheckpoints {
		checkpoint = func() error {
			return overlapCheckpoint(node.Store(), node.Checkpoint, doOne, func() bool { return k < len(r.plan.updates) })
		}
	}
	if err := r.workloadLoop(doOne, checkpoint, &k); err != nil {
		node.Close()
		return err
	}
	return node.Close()
}

// replicaPoint crashes node "a" before op n, recovers it, pulls the missing
// suffix from the peer (anti-entropy catch-up), finishes the workload on
// the recovered node, and requires both replicas to converge on the full
// oracle.
func (r *runner) replicaPoint(n int64) (out []Violation) {
	p, shutdown, err := r.newPeer()
	if err != nil {
		return []Violation{r.violation(n, "harness: opening peer: %v", err)}
	}
	defer shutdown()

	ffs := faultfs.New(vfs.NewMem(r.cfg.Seed), faultfs.Options{CrashAt: n})
	rc := r.newReaderCheck()
	_ = r.runReplicaWorkload(ffs, p, nil, ffs.OpCount, rc) // error is the crash itself

	snap := ffs.Snapshot()
	acked, attempted := r.rec.ackedAt(n), r.rec.attemptedAt(n)
	out = r.checkFlight(n, snap, acked, attempted)
	for _, msg := range rc.finish() {
		out = append(out, r.violation(n, "concurrent reader: %s", msg))
	}

	node, err := replica.Open(replica.Config{Name: "a", FS: snap, ReplayWorkers: r.cfg.ReplayWorkers,
		LogShards: r.cfg.LogShards, SerialLogSync: r.cfg.LogShards > 1,
		FullCheckpoints: r.cfg.FullCheckpoints, MaxDeltaChain: r.cfg.MaxDeltaChain, SerialCompaction: true})
	if err != nil {
		return append(out, r.violation(n, "recovery failed: %v", err))
	}
	defer node.Close()

	// Readers overlap the recovered node's anti-entropy catch-up and the
	// rest of the workload. Node "a" only ever applies its own origin's
	// updates — locally or pulled back from the peer — so its store
	// sequence keeps indexing the oracle prefixes throughout.
	rc2 := r.newReaderCheck()
	rc2.launch(node.Store(), replicaTree)
	defer func() {
		for _, msg := range rc2.finish() {
			out = append(out, r.violation(n, "catch-up reader: %s", msg))
		}
	}()

	vec, err := node.Vector()
	if err != nil {
		return append(out, r.violation(n, "reading recovered vector: %v", err))
	}
	recovered := int(vec["a"])
	if !r.cfg.UnsafeNoSync && recovered < acked {
		out = append(out, r.violation(n, "durability: recovered %d updates but %d were acknowledged", recovered, acked))
	}
	if recovered > attempted {
		out = append(out, r.violation(n, "phantom: recovered %d updates but only %d were attempted", recovered, attempted))
		return out
	}
	if got, err := replicaFingerprint(node); err != nil || got != r.plan.fp[recovered] {
		return append(out, r.violation(n, "atomicity: recovered state diverges from the oracle prefix of %d updates (%v)", recovered, err))
	}

	// Catch-up: one full anti-entropy round, both directions. The pull
	// restores every acknowledged update from the peer — even when the
	// crashed node ran without local log syncs — and the reverse pull
	// hands the peer any update that committed locally inside the crash
	// window but died before its push (with the mirror-window
	// checkpoint, an update can be durable in the old log yet
	// unacknowledged until the new log's sync, so recovery may surface
	// acked+1 updates). The peer can likewise hold one update past the
	// acked prefix: the flight-recorder write between the log sync and
	// the ack is a crash point, and a crash there still lets the
	// already-durable update's push go out. Both replicas must agree on
	// the longest of the three prefixes, and the peer must never have
	// dropped an acknowledged update.
	pvec, err := p.node.Vector()
	if err != nil {
		return append(out, r.violation(n, "harness: reading peer vector: %v", err))
	}
	peerHas := int(pvec["a"])
	if peerHas < acked {
		out = append(out, r.violation(n, "durability: peer holds %d updates but %d were acknowledged", peerHas, acked))
	}
	if peerHas > attempted {
		out = append(out, r.violation(n, "phantom: peer holds %d updates but only %d were attempted", peerHas, attempted))
		return out
	}
	upto := recovered
	if acked > upto {
		upto = acked
	}
	if peerHas > upto {
		upto = peerHas
	}
	client := p.dial()
	node.AddPeer("b", client)
	if err := node.SyncWith(client); err != nil {
		return append(out, r.violation(n, "catch-up: anti-entropy pull failed: %v", err))
	}
	if got, err := replicaFingerprint(node); err != nil || got != r.plan.fp[upto] {
		return append(out, r.violation(n, "catch-up: state after anti-entropy diverges from the oracle prefix of %d updates (acked %d, recovered %d: %v)", upto, acked, recovered, err))
	}
	back, closeBack, err := dialNode(node)
	if err != nil {
		return append(out, r.violation(n, "harness: serving recovered node: %v", err))
	}
	defer closeBack()
	if err := p.node.SyncWith(back); err != nil {
		return append(out, r.violation(n, "catch-up: reverse anti-entropy pull failed: %v", err))
	}
	if got, err := replicaFingerprint(p.node); err != nil || got != r.plan.fp[upto] {
		return append(out, r.violation(n, "peer diverges from the oracle prefix of %d updates after anti-entropy (%v)", upto, err))
	}

	// Finish the workload on the recovered node; pushes propagate to the
	// peer, and both replicas must land on the full oracle.
	for k := upto; k < len(r.plan.updates); k++ {
		if err := node.Apply(r.plan.updates[k]); err != nil {
			return append(out, r.violation(n, "catch-up: update %d rejected after recovery: %v", k, err))
		}
	}
	if got, err := replicaFingerprint(node); err != nil || got != r.plan.fp[len(r.plan.updates)] {
		out = append(out, r.violation(n, "recovered node misses the full oracle after finishing the workload (%v)", err))
	}
	if got, err := replicaFingerprint(p.node); err != nil || got != r.plan.fp[len(r.plan.updates)] {
		out = append(out, r.violation(n, "replicas diverge after finishing the workload (%v)", err))
	}
	return out
}

func replicaFingerprint(node *replica.Node) (uint64, error) {
	var fp uint64
	err := node.Store().View(func(root any) error {
		rr, ok := root.(*replica.Root)
		if !ok {
			return fmt.Errorf("root is %T, not *replica.Root", root)
		}
		fp = fingerprintTree(rr.Tree)
		return nil
	})
	return fp, err
}
