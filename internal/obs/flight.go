package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"smalldb/internal/vfs"
)

// The flight recorder is a crash-surviving ring of recent events: a small
// fixed-size file of fixed-size slots, each holding one encoded event
// protected by a CRC, written through vfs so the crash-consistency harness
// can torture it like any other durable structure. After a power cut the
// file's durable image holds the last events the process recorded — the
// black box a post-mortem (`logdump -flight`, /debug/flight) reads to see
// what the store was doing at the moment of death.
//
// Layout: a 16-byte file header (magic, slot size, slot count), then slot
// i at header+i*slotSize. Each slot is
//
//	magic "FLR1" | seq u64 | used u16 | payload[used] | zero pad | crc32c
//
// with the CRC (Castagnoli) covering everything before it. Slot i holds
// the event with sequence (i mod slots)+k·slots for the largest k written,
// so the file is a ring over event sequence numbers; a torn or damaged
// slot fails its CRC (or reads as vfs.ErrDamaged) and is skipped by the
// decoder — one lost slot never poisons the rest of the tail.
//
// Durability: with FlushEvery == 0 every event is written and synced
// before Emit returns, making the recorder's fs-op sequence deterministic
// (what crashtest needs); with FlushEvery > 0 a background goroutine
// flushes dirty slots on that cadence, keeping the recorder off the commit
// path for production daemons. PanicFlush flushes on the way out of a
// panicking goroutine.

const (
	flightFileMagic = "FLRH"
	flightSlotMagic = "FLR1"
	flightHeaderLen = 16
	flightSlotOver  = 4 + 8 + 2 + 4 // slot magic + seq + used + crc
)

var flightCRC = crc32.MakeTable(crc32.Castagnoli)

// FlightConfig configures a FlightRecorder.
type FlightConfig struct {
	// FS is the file system the ring lives on.
	FS vfs.FS
	// Name is the ring's file name; default "flightrec".
	Name string
	// Slots is the ring capacity in events; default 256.
	Slots int
	// SlotSize is the fixed byte size of one slot (an event that encodes
	// larger has its attributes dropped to fit); default 256.
	SlotSize int
	// FlushEvery is the background flush cadence. Zero means synchronous:
	// every Emit writes and syncs its slot before returning.
	FlushEvery time.Duration
}

// A FlightRecorder is a Tracer whose recent events survive a crash. See
// the package comment above for the on-disk contract.
type FlightRecorder struct {
	mu       sync.Mutex
	f        vfs.File
	name     string
	slotSize int
	slots    int

	seq     uint64   // last assigned event sequence (1-based)
	flushed uint64   // last sequence durably written and synced
	enc     [][]byte // encoded-slot ring, index (seq-1)%slots
	mem     []Event  // in-memory mirror ring, same indexing
	err     error    // latest write/sync failure (diagnostic only)

	syncEach bool
	stop     chan struct{}
	done     chan struct{}
}

// OpenFlight creates (truncating any previous run's ring) and starts a
// flight recorder, emitting an initial "flight.start" event so the ring is
// non-empty from the first durable instant.
func OpenFlight(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.Name == "" {
		cfg.Name = "flightrec"
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	if cfg.SlotSize <= flightSlotOver+64 {
		cfg.SlotSize = 256
	}
	f, err := cfg.FS.Create(cfg.Name)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, flightHeaderLen)
	copy(hdr, flightFileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(cfg.SlotSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(cfg.Slots))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	r := &FlightRecorder{
		f:        f,
		name:     cfg.Name,
		slotSize: cfg.SlotSize,
		slots:    cfg.Slots,
		enc:      make([][]byte, cfg.Slots),
		mem:      make([]Event, cfg.Slots),
		syncEach: cfg.FlushEvery <= 0,
	}
	if !r.syncEach {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go r.flushLoop(cfg.FlushEvery)
	}
	r.Emit(Event{Name: "flight.start", Time: time.Now()})
	return r, nil
}

// Emit implements Tracer. Write failures are swallowed (a flight recorder
// on a dead disk must not take the store down with it); the latest failure
// is kept for Err.
func (r *FlightRecorder) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	r.seq++
	i := int((r.seq - 1) % uint64(r.slots))
	if r.enc[i] == nil {
		r.enc[i] = make([]byte, r.slotSize)
	}
	encodeFlightSlot(r.enc[i], r.seq, e)
	r.mem[i] = e
	if r.syncEach {
		r.flushLocked()
	}
	r.mu.Unlock()
}

// flushLocked writes every slot in (r.flushed, r.seq] and syncs. Caller
// holds r.mu.
func (r *FlightRecorder) flushLocked() {
	if r.seq == r.flushed {
		return
	}
	lo := r.flushed + 1
	if r.seq > uint64(r.slots) && lo < r.seq-uint64(r.slots)+1 {
		lo = r.seq - uint64(r.slots) + 1 // older slots were overwritten
	}
	var failed error
	for s := lo; s <= r.seq; s++ {
		i := int((s - 1) % uint64(r.slots))
		off := int64(flightHeaderLen) + int64(i)*int64(r.slotSize)
		if _, err := r.f.WriteAt(r.enc[i], off); err != nil {
			failed = err
			break
		}
	}
	if failed == nil {
		failed = r.f.Sync()
	}
	if failed != nil {
		r.err = failed
		return
	}
	r.flushed = r.seq
}

// Flush writes any unflushed slots and syncs the ring.
func (r *FlightRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	if r.flushed != r.seq {
		return r.err
	}
	return nil
}

// Err reports the most recent write or sync failure, if any.
func (r *FlightRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// PanicFlush flushes the ring when the calling goroutine is panicking,
// then re-panics. Use as `defer rec.PanicFlush()` near the top of main so
// the black box is durable before the process dies.
func (r *FlightRecorder) PanicFlush() {
	if p := recover(); p != nil {
		r.Flush()
		panic(p)
	}
}

func (r *FlightRecorder) flushLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	defer close(r.done)
	for {
		select {
		case <-t.C:
			r.Flush()
		case <-r.stop:
			return
		}
	}
}

// Close flushes and closes the ring file.
func (r *FlightRecorder) Close() error {
	if r.stop != nil {
		close(r.stop)
		<-r.done
	}
	err := r.Flush()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Events returns the recorder's in-memory tail, oldest first — what
// /debug/flight serves on a live process.
func (r *FlightRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seq
	if n > uint64(r.slots) {
		n = uint64(r.slots)
	}
	out := make([]Event, 0, n)
	for s := r.seq - n + 1; s <= r.seq && r.seq > 0; s++ {
		out = append(out, r.mem[int((s-1)%uint64(r.slots))])
	}
	return out
}

// encodeFlightSlot encodes e with sequence seq into buf (one whole slot).
// Attributes that do not fit are dropped; name and error are truncated.
func encodeFlightSlot(buf []byte, seq uint64, e Event) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, flightSlotMagic)
	binary.LittleEndian.PutUint64(buf[4:], seq)
	p := buf[14 : len(buf)-4] // payload area
	w := 0
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(p[w:], v)
		w += 8
	}
	put64(uint64(e.Time.UnixNano()))
	put64(uint64(e.Dur))
	put64(uint64(e.Trace))
	put64(uint64(e.Span))
	put64(uint64(e.Parent))
	// putStr truncates s to fit the payload while reserving `reserve`
	// trailing bytes for the fields that must follow it (the error length
	// byte and the attribute count); the minimum slot size guarantees the
	// fixed fields plus all three length/count bytes always fit.
	putStr := func(s string, reserve int) {
		if len(s) > 255 {
			s = s[:255]
		}
		if max := len(p) - reserve - w - 1; len(s) > max {
			if max < 0 {
				max = 0
			}
			s = s[:max]
		}
		p[w] = byte(len(s))
		w++
		w += copy(p[w:], s)
	}
	putStr(e.Name, 2) // reserve the err-length and attr-count bytes
	if e.Err != nil {
		putStr(e.Err.Error(), 1) // reserve the attr-count byte
	} else {
		putStr("", 1)
	}
	// Attribute count placeholder, then as many attrs as fit.
	np := w
	p[w] = 0
	w++
	n := 0
	for _, a := range e.Attrs {
		if n == 255 {
			break
		}
		val := fmt.Sprint(a.Value)
		if len(a.Key) > 255 {
			continue
		}
		if len(val) > 255 {
			val = val[:255]
		}
		if w+2+len(a.Key)+len(val) > len(p) {
			break
		}
		p[w] = byte(len(a.Key))
		w++
		w += copy(p[w:], a.Key)
		p[w] = byte(len(val))
		w++
		w += copy(p[w:], val)
		n++
	}
	p[np] = byte(n)
	binary.LittleEndian.PutUint16(buf[12:], uint16(w))
	crc := crc32.Checksum(buf[:len(buf)-4], flightCRC)
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc)
}

// decodeFlightSlot decodes one slot, returning its sequence and event.
// ok is false for empty, torn, or damaged slots.
func decodeFlightSlot(buf []byte) (seq uint64, e Event, ok bool) {
	if len(buf) < flightSlotOver || string(buf[:4]) != flightSlotMagic {
		return 0, Event{}, false
	}
	crc := crc32.Checksum(buf[:len(buf)-4], flightCRC)
	if crc != binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return 0, Event{}, false
	}
	seq = binary.LittleEndian.Uint64(buf[4:])
	used := int(binary.LittleEndian.Uint16(buf[12:]))
	p := buf[14 : len(buf)-4]
	if used > len(p) || used < 5*8+2+1 {
		return 0, Event{}, false
	}
	p = p[:used]
	w := 0
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(p[w:])
		w += 8
		return v
	}
	e.Time = time.Unix(0, int64(get64()))
	e.Dur = time.Duration(get64())
	e.Trace = TraceID(get64())
	e.Span = SpanID(get64())
	e.Parent = SpanID(get64())
	getStr := func() (string, bool) {
		if w >= len(p) {
			return "", false
		}
		n := int(p[w])
		w++
		if w+n > len(p) {
			return "", false
		}
		s := string(p[w : w+n])
		w += n
		return s, true
	}
	name, ok2 := getStr()
	if !ok2 {
		return 0, Event{}, false
	}
	e.Name = name
	es, ok2 := getStr()
	if !ok2 {
		return 0, Event{}, false
	}
	if es != "" {
		e.Err = errors.New(es)
	}
	if w >= len(p) {
		return 0, Event{}, false
	}
	na := int(p[w])
	w++
	for i := 0; i < na; i++ {
		k, ok2 := getStr()
		if !ok2 {
			return 0, Event{}, false
		}
		v, ok2 := getStr()
		if !ok2 {
			return 0, Event{}, false
		}
		e.Attrs = append(e.Attrs, Attr{Key: k, Value: v})
	}
	return seq, e, true
}

// ReadFlight decodes the durable image of a flight-recorder ring, oldest
// event first. Torn or damaged slots are skipped; an absent file is an
// error, a present-but-empty ring decodes to no events.
func ReadFlight(fs vfs.FS, name string) ([]Event, error) {
	if name == "" {
		name = "flightrec"
	}
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, flightHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("obs: flight header unreadable: %w", err)
	}
	if string(hdr[:4]) != flightFileMagic {
		return nil, fmt.Errorf("obs: %s is not a flight-recorder ring", name)
	}
	slotSize := int(binary.LittleEndian.Uint32(hdr[4:]))
	slots := int(binary.LittleEndian.Uint32(hdr[8:]))
	if slotSize <= flightSlotOver || slotSize > 1<<20 || slots <= 0 || slots > 1<<20 {
		return nil, fmt.Errorf("obs: flight header corrupt (slotSize=%d slots=%d)", slotSize, slots)
	}
	type rec struct {
		seq uint64
		e   Event
	}
	var recs []rec
	buf := make([]byte, slotSize)
	for i := 0; i < slots; i++ {
		off := int64(flightHeaderLen) + int64(i)*int64(slotSize)
		if _, err := f.ReadAt(buf, off); err != nil {
			continue // short file tail, or a damaged (ErrDamaged) slot
		}
		if seq, e, ok := decodeFlightSlot(buf); ok {
			recs = append(recs, rec{seq, e})
		}
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1].seq > recs[j].seq; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
	out := make([]Event, len(recs))
	for i, r := range recs {
		out[i] = r.e
	}
	return out, nil
}
