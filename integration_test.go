// End-to-end tests of the command-line tools: build the real binaries, run
// an nsd daemon against a real directory, drive it with nsctl, inspect the
// directory with logdump, and check recovery across a daemon restart.
package smalldb_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the commands once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/nsd", "./cmd/nsctl", "./cmd/logdump")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

// freePort grabs an available TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func waitForServer(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

func nsctl(t *testing.T, bin, addr string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, "nsctl"), append([]string{"-addr", addr}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bin := buildTools(t)
	dbdir := t.TempDir()
	addr := freePort(t)

	start := func() *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, "nsd"), "-dir", dbdir, "-listen", addr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitForServer(t, addr)
		return cmd
	}
	daemon := start()
	stop := func(cmd *exec.Cmd) {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}

	// Populate over the wire.
	for i := 0; i < 5; i++ {
		if out, err := nsctl(t, bin, addr, "set", fmt.Sprintf("net/hosts/h%d", i), fmt.Sprintf("16.4.0.%d", i)); err != nil {
			t.Fatalf("set: %v\n%s", err, out)
		}
	}
	out, err := nsctl(t, bin, addr, "lookup", "net/hosts/h3")
	if err != nil || strings.TrimSpace(out) != "16.4.0.3" {
		t.Fatalf("lookup: %q, %v", out, err)
	}
	out, err = nsctl(t, bin, addr, "list", "net/hosts")
	if err != nil || !strings.Contains(out, "h0") || !strings.Contains(out, "h4") {
		t.Fatalf("list: %q, %v", out, err)
	}
	if out, err := nsctl(t, bin, addr, "delete", "net/hosts/h0"); err != nil {
		t.Fatalf("delete: %v\n%s", err, out)
	}
	if out, _ := nsctl(t, bin, addr, "lookup", "net/hosts/h0"); !strings.Contains(out, "not found") {
		t.Fatalf("deleted name still resolves: %q", out)
	}
	out, err = nsctl(t, bin, addr, "enumerate", "net")
	if err != nil || !strings.Contains(out, "net/hosts/h1=16.4.0.1") {
		t.Fatalf("enumerate: %q, %v", out, err)
	}

	// Kill (no clean shutdown) and restart: the log replays.
	daemon.Process.Kill()
	daemon.Wait()
	daemon = start()
	defer stop(daemon)

	out, err = nsctl(t, bin, addr, "lookup", "net/hosts/h2")
	if err != nil || strings.TrimSpace(out) != "16.4.0.2" {
		t.Fatalf("after restart: %q, %v", out, err)
	}
	if out, _ := nsctl(t, bin, addr, "lookup", "net/hosts/h0"); !strings.Contains(out, "not found") {
		t.Fatalf("delete resurrected by restart: %q", out)
	}
}

func TestReplicatedDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bin := buildTools(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	addrA, addrB := freePort(t), freePort(t)

	start := func(dir, addr, name, peers string) *exec.Cmd {
		args := []string{"-dir", dir, "-listen", addr, "-name", name, "-anti-entropy", "200ms"}
		if peers != "" {
			args = append(args, "-peers", peers)
		}
		cmd := exec.Command(filepath.Join(bin, "nsd"), args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitForServer(t, addr)
		return cmd
	}
	a := start(dirA, addrA, "alpha", "beta="+addrB)
	b := start(dirB, addrB, "beta", "alpha="+addrA)
	defer func() {
		for _, d := range []*exec.Cmd{a, b} {
			d.Process.Signal(os.Interrupt)
			d.Wait()
		}
	}()

	// Write at alpha; read at beta (push propagation, with anti-entropy
	// as backstop).
	if out, err := nsctl(t, bin, addrA, "set", "repl/key", "propagated"); err != nil {
		t.Fatalf("set at alpha: %v\n%s", err, out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, err := nsctl(t, bin, addrB, "lookup", "repl/key")
		if err == nil && strings.TrimSpace(out) == "propagated" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("beta never converged: %q, %v", out, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// And the reverse direction.
	if out, err := nsctl(t, bin, addrB, "set", "repl/back", "from-beta"); err != nil {
		t.Fatalf("set at beta: %v\n%s", err, out)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		out, err := nsctl(t, bin, addrA, "lookup", "repl/back")
		if err == nil && strings.TrimSpace(out) == "from-beta" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha never converged: %q, %v", out, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestLogdumpOnRealDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bin := buildTools(t)
	dbdir := t.TempDir()
	addr := freePort(t)

	daemon := exec.Command(filepath.Join(bin, "nsd"), "-dir", dbdir, "-listen", addr)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	waitForServer(t, addr)
	if out, err := nsctl(t, bin, addr, "set", "audit/entry", "value-42"); err != nil {
		t.Fatalf("set: %v\n%s", err, out)
	}
	daemon.Process.Signal(os.Interrupt)
	daemon.Wait()

	// Summary view.
	out, err := exec.Command(filepath.Join(bin, "logdump"), "-dir", dbdir).CombinedOutput()
	if err != nil {
		t.Fatalf("logdump: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "checkpoint1") || !strings.Contains(text, "version: 1") {
		t.Errorf("summary missing structure:\n%s", text)
	}
	if !strings.Contains(text, "logfile1: 1 entries") {
		t.Errorf("summary missing log count:\n%s", text)
	}

	// Entry dump decodes the update generically.
	out, err = exec.Command(filepath.Join(bin, "logdump"), "-dir", dbdir, "-log", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("logdump -log: %v\n%s", err, out)
	}
	text = string(out)
	if !strings.Contains(text, "SetValue") || !strings.Contains(text, "value-42") {
		t.Errorf("entry dump missing update contents:\n%s", text)
	}

	// Checkpoint dump decodes the tree generically.
	out, err = exec.Command(filepath.Join(bin, "logdump"), "-dir", dbdir, "-checkpoint", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("logdump -checkpoint: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Tree") {
		t.Errorf("checkpoint dump missing root:\n%s", out)
	}
}

// httpGet fetches a debug-endpoint path, retrying briefly while the
// listener comes up.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", url, err)
		}
		return resp.StatusCode, string(body)
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return 0, ""
}

// TestDebugEndpoint starts nsd with -debug and checks that the live
// observability endpoint serves /metrics (JSON with non-zero update
// counters after traffic), /stats and /debug/pprof/, and that
// logdump -stats summarizes the resulting log.
func TestDebugEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	bin := buildTools(t)
	dbdir := t.TempDir()
	addr := freePort(t)
	debugAddr := freePort(t)

	daemon := exec.Command(filepath.Join(bin, "nsd"),
		"-dir", dbdir, "-listen", addr, "-debug", debugAddr, "-slow", "1ns")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(os.Interrupt)
		daemon.Wait()
	}()
	waitForServer(t, addr)
	waitForServer(t, debugAddr)

	for i := 0; i < 7; i++ {
		if out, err := nsctl(t, bin, addr, "set", fmt.Sprintf("obs/k%d", i), "v"); err != nil {
			t.Fatalf("set: %v\n%s", err, out)
		}
	}
	if out, err := nsctl(t, bin, addr, "lookup", "obs/k3"); err != nil {
		t.Fatalf("lookup: %v\n%s", err, out)
	}

	base := "http://" + debugAddr

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var metrics map[string]any
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if got, _ := metrics["core_updates"].(float64); got != 7 {
		t.Errorf("core_updates = %v, want 7", metrics["core_updates"])
	}
	if got, _ := metrics["rpc_requests"].(float64); got < 8 {
		t.Errorf("rpc_requests = %v, want ≥ 8", metrics["rpc_requests"])
	}
	commit, ok := metrics["core_update_commit_ns"].(map[string]any)
	if !ok {
		t.Fatalf("core_update_commit_ns = %v, want histogram object", metrics["core_update_commit_ns"])
	}
	if got, _ := commit["count"].(float64); got != 7 {
		t.Errorf("commit histogram count = %v, want 7", commit["count"])
	}
	if p50, _ := commit["p50"].(float64); p50 <= 0 {
		t.Errorf("commit p50 = %v, want > 0", commit["p50"])
	}

	code, body = httpGet(t, base+"/stats")
	if code != http.StatusOK || !strings.Contains(body, "core_updates") {
		t.Errorf("/stats status %d body:\n%s", code, body)
	}
	if !strings.Contains(body, "update.commit") {
		t.Errorf("/stats missing traced events:\n%s", body)
	}

	if code, _ := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// logdump -stats reads the directory the daemon just wrote.
	daemon.Process.Signal(os.Interrupt)
	daemon.Wait()
	out, err := exec.Command(filepath.Join(bin, "logdump"), "-dir", dbdir, "-stats").CombinedOutput()
	if err != nil {
		t.Fatalf("logdump -stats: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "logfile1: 7 entries") || !strings.Contains(text, "payload sizes:") {
		t.Errorf("logdump -stats output:\n%s", text)
	}
}

// TestCrashTortureBounded runs the crashtest CLI with a small op budget:
// every crash point of a 10-update workload, in both store and replica
// modes, must recover with zero invariant violations. A full-size sweep
// lives behind `go run ./cmd/crashtest`; this slice keeps the suite fast.
func TestCrashTortureBounded(t *testing.T) {
	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "./cmd/crashtest")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(filepath.Join(dir, "crashtest"), "-seed", "1", "-ops", "10").CombinedOutput()
	if err != nil {
		t.Fatalf("crashtest found violations: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "mode=store") || !strings.Contains(text, "mode=replica") {
		t.Errorf("crashtest output missing a mode:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.Contains(line, "violations=0") {
			t.Errorf("unexpected crashtest line: %s", line)
		}
	}
}
