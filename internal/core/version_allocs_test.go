//go:build !race

package core

import "testing"

// TestEnquiryAllocs pins the allocation ceiling of the lock-free read
// path: a versioned View must not allocate at all, and a pinned snapshot
// costs exactly its handle. Race instrumentation adds allocations, so
// this file is excluded from -race runs.
func TestEnquiryAllocs(t *testing.T) {
	s := openVKV(t)
	defer s.Close()
	if err := s.Apply(&putVKV{Key: "k", Value: "v"}); err != nil {
		t.Fatal(err)
	}

	fn := func(root any) error { return nil }
	if n := testing.AllocsPerRun(1000, func() {
		if err := s.View(fn); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("versioned View allocates %.1f objects per call, want 0", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		snap, err := s.SnapshotAt()
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()
	}); n > 1 {
		t.Fatalf("SnapshotAt+Release allocates %.1f objects per call, want ≤ 1", n)
	}
}
