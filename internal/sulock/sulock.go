// Package sulock implements the paper's three-mode lock with exactly its
// compatibility matrix (§3):
//
//	           shared     update     exclusive
//	shared    compatible compatible  conflict
//	update    compatible  conflict   conflict
//	exclusive  conflict   conflict   conflict
//
// "An enquiry operation is performed with a shared lock. An update
// operation first acquires an update lock (thereby excluding other update
// operations but permitting enquiry operations). After the update operation
// has verified its pre-conditions it assembles its log record and commits
// it to disk. Finally the update operation converts its lock to an
// exclusive lock (thus excluding enquiry operations) and modifies the
// virtual memory structures. An update lock is held while writing a
// checkpoint. Note that these rules never exclude enquiry operations during
// disk transfers, only during virtual memory operations."
//
// The one policy choice the matrix leaves open is what happens to new
// shared requests while an upgrade to exclusive is waiting for readers to
// drain: this implementation blocks them, so the upgrade cannot be starved
// by a stream of enquiries. The exclusive section is as short as an
// in-memory mutation, so the enquiry delay is bounded and tiny.
package sulock

import "sync"

// Lock is a shared/update/exclusive lock. The zero value is ready to use.
type Lock struct {
	mu   sync.Mutex
	cond *sync.Cond

	readers   int  // holders of shared
	updater   bool // the (single) holder of update or exclusive
	exclusive bool // updater has upgraded
	upgrading bool // updater is waiting for readers to drain
}

func (l *Lock) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
}

// Shared acquires the lock in shared mode; enquiries run under it. It
// blocks while an exclusive holder exists or an upgrade is pending.
func (l *Lock) Shared() {
	l.mu.Lock()
	l.init()
	for l.exclusive || l.upgrading {
		l.cond.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// SharedUnlock releases one shared hold.
func (l *Lock) SharedUnlock() {
	l.mu.Lock()
	l.init()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("sulock: SharedUnlock without Shared")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Update acquires the lock in update mode: it excludes other updaters but
// admits shared holders. Updates and checkpoints run under it.
func (l *Lock) Update() {
	l.mu.Lock()
	l.init()
	for l.updater {
		l.cond.Wait()
	}
	l.updater = true
	l.mu.Unlock()
}

// UpdateUnlock releases update mode without having upgraded (a checkpoint,
// or an update whose preconditions failed).
func (l *Lock) UpdateUnlock() {
	l.mu.Lock()
	l.init()
	if !l.updater || l.exclusive {
		l.mu.Unlock()
		panic("sulock: UpdateUnlock without plain Update")
	}
	l.updater = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Upgrade converts the caller's update hold to exclusive, blocking until
// all shared holders release. This is the paper's lock conversion performed
// after the log entry is committed and before the virtual memory structures
// are modified.
func (l *Lock) Upgrade() {
	l.mu.Lock()
	l.init()
	if !l.updater || l.exclusive {
		l.mu.Unlock()
		panic("sulock: Upgrade without Update")
	}
	l.upgrading = true
	for l.readers > 0 {
		l.cond.Wait()
	}
	l.upgrading = false
	l.exclusive = true
	l.mu.Unlock()
}

// ExclusiveUnlock releases an exclusive hold (acquired by Upgrade or
// Exclusive), freeing both update and exclusive modes.
func (l *Lock) ExclusiveUnlock() {
	l.mu.Lock()
	l.init()
	if !l.exclusive {
		l.mu.Unlock()
		panic("sulock: ExclusiveUnlock without exclusive")
	}
	l.exclusive = false
	l.updater = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Exclusive acquires the lock directly in exclusive mode. The paper's
// design never needs it; it exists for the E8 ablation, which holds
// exclusive for a whole update (disk write included) to show what the
// three-mode matrix buys.
func (l *Lock) Exclusive() {
	l.Update()
	l.Upgrade()
}

// Holders reports the current holder counts (shared, update, exclusive);
// used by tests and instrumentation.
func (l *Lock) Holders() (shared int, update, exclusive bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readers, l.updater, l.exclusive
}
