// Package textfile is the paper's first §2 baseline: the Unix way, where
// "almost all databases are stored as ordinary text files (for example,
// /etc/passwd ...). Whenever a program wishes to access the data it does so
// by reading and parsing the file ... An update involves rewriting the
// entire file", made safe against transient errors "by using an atomic file
// rename operation to install a new version of the file".
//
// Records are "key<TAB>quoted-value" lines. Every Lookup re-reads and
// re-parses the whole file; every update rewrites it completely, syncs, and
// renames into place. Updates are serialized by an internal lock, the
// package's stand-in for the administrator's "exclusive lock prior to
// editing the file". The performance consequences — update cost linear in
// database size — are what experiment E6 demonstrates.
package textfile

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"smalldb/internal/vfs"
)

// DB is a text-file database.
type DB struct {
	mu   sync.Mutex
	fs   vfs.FS
	name string
}

// Open returns a DB stored in the named file, creating it empty if absent.
func Open(fs vfs.FS, name string) (*DB, error) {
	db := &DB{fs: fs, name: name}
	if !vfs.Exists(fs, name) {
		if err := db.writeAll(map[string]string{}); err != nil {
			return nil, err
		}
	}
	// Validate by parsing once.
	if _, err := db.readAll(); err != nil {
		return nil, err
	}
	return db, nil
}

// readAll reads and parses the entire file — the cost of every access.
func (db *DB) readAll() (map[string]string, error) {
	data, err := vfs.ReadFile(db.fs, db.name)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, quoted, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("textfile: %s:%d: no separator", db.name, line)
		}
		val, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("textfile: %s:%d: bad value: %v", db.name, line, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// writeAll rewrites the whole file and installs it with an atomic rename.
func (db *DB) writeAll(records map[string]string) error {
	var buf bytes.Buffer
	buf.WriteString("# textfile database; do not hand-edit while the server runs\n")
	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s\t%s\n", k, strconv.Quote(records[k]))
	}
	tmp := db.name + ".new"
	if err := vfs.WriteFile(db.fs, tmp, buf.Bytes()); err != nil {
		return err
	}
	return db.fs.Rename(tmp, db.name)
}

func validKey(key string) error {
	if key == "" || strings.ContainsAny(key, "\t\n") {
		return fmt.Errorf("textfile: invalid key %q", key)
	}
	return nil
}

// Lookup reads the value for key by parsing the whole file.
func (db *DB) Lookup(key string) (string, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	records, err := db.readAll()
	if err != nil {
		return "", false, err
	}
	v, ok := records[key]
	return v, ok, nil
}

// Update sets key=value by rewriting the entire file.
func (db *DB) Update(key, value string) error {
	if err := validKey(key); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	records, err := db.readAll()
	if err != nil {
		return err
	}
	records[key] = value
	return db.writeAll(records)
}

// Delete removes key by rewriting the entire file.
func (db *DB) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	records, err := db.readAll()
	if err != nil {
		return err
	}
	if _, ok := records[key]; !ok {
		return fmt.Errorf("textfile: no such key %q", key)
	}
	delete(records, key)
	return db.writeAll(records)
}

// All returns every record.
func (db *DB) All() (map[string]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.readAll()
}

// Close releases nothing (the DB holds no open handles between calls) but
// completes the common store interface.
func (db *DB) Close() error { return nil }
