package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smalldb/internal/baseline/adhoc"
	"smalldb/internal/baseline/textfile"
	"smalldb/internal/baseline/twophase"
	"smalldb/internal/nameserver"
	"smalldb/internal/replica"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// kvEngine is the common face of the §2 techniques for E6 and E9.
type kvEngine interface {
	Lookup(key string) (string, bool, error)
	Update(key, value string) error
	Close() error
}

// nsKV adapts the paper's design (a name server store) to the flat KV
// interface the baselines expose.
type nsKV struct{ s *nameserver.Server }

func (k nsKV) Lookup(key string) (string, bool, error) {
	v, err := k.s.Lookup(key)
	if errors.Is(err, nameserver.ErrNotFound) || errors.Is(err, nameserver.ErrNoValue) {
		return "", false, nil
	}
	return v, err == nil, err
}

func (k nsKV) Update(key, value string) error { return k.s.Set(key, value) }
func (k nsKV) Close() error                   { return k.s.Close() }

type e6Engine struct {
	name   string
	safety string
	open   func(fs vfs.FS) (kvEngine, error)
}

func e6Engines() []e6Engine {
	return []e6Engine{
		{"text file (rewrite + rename)", "yes (whole-file rename)", func(fs vfs.FS) (kvEngine, error) {
			db, err := textfile.Open(fs, "passwd")
			if err != nil {
				return nil, err
			}
			return db, nil
		}},
		{"ad hoc paged file (in place)", "NO (torn updates)", func(fs vfs.FS) (kvEngine, error) {
			db, err := adhoc.Open(fs, "data")
			if err != nil {
				return nil, err
			}
			return db, nil
		}},
		{"naive atomic commit (2 writes)", "yes (redo log)", func(fs vfs.FS) (kvEngine, error) {
			db, err := twophase.Open(fs)
			if err != nil {
				return nil, err
			}
			return db, nil
		}},
		{"this design (log + checkpoint)", "yes (redo log)", func(fs vfs.FS) (kvEngine, error) {
			s, err := nameserver.Open(nameserver.Config{FS: fs})
			if err != nil {
				return nil, err
			}
			return nsKV{s: s}, nil
		}},
	}
}

// E8 is the locking ablation: enquiry latency while updates commit, with
// the paper's three-mode lock vs a coarse exclusive lock held across the
// disk write.
func E8(env Env) ([]*Table, error) {
	env = env.Defaults()
	// The disk really blocks here (~2 ms per commit at 0.1 scale), so an
	// enquiry issued in the middle of a commit observes the lock policy
	// directly: admitted at memory speed under the paper's matrix,
	// stalled for the rest of the disk write under the coarse ablation.
	const scale = 0.1
	iters := env.iters(100, 20)

	t := &Table{
		ID:     "E8",
		Title:  "latency of an enquiry issued mid-commit (disk write ~2 ms real, modelling 20 ms)",
		Header: []string{"locking", "enquiry p50", "enquiry p95", "enquiry max", "update mean"},
	}
	for _, coarse := range []bool{false, true} {
		_, d := modeledFS(env.Seed, scale)
		s, err := buildNS(Env{Seed: env.Seed, DBEntries: 500, ValueSize: env.ValueSize}, d, nameserver.Config{CoarseLocking: coarse})
		if err != nil {
			return nil, err
		}

		rng := rand.New(rand.NewSource(env.Seed + 9))
		var enq, upd Hist
		for i := 0; i < iters; i++ {
			done := make(chan error, 1)
			u0 := time.Now()
			go func(i int) {
				done <- s.Set(NameFor(rng.Intn(500)), Value(rng, 32))
			}(i)
			// Land inside the commit's disk write.
			time.Sleep(500 * time.Microsecond)
			t0 := time.Now()
			if _, err := s.Lookup(NameFor(1)); err != nil {
				s.Close()
				return nil, err
			}
			enq.Add(time.Since(t0))
			if err := <-done; err != nil {
				s.Close()
				return nil, err
			}
			upd.Add(time.Since(u0))
		}
		s.Close()

		mode := "paper (shared/update/exclusive)"
		if coarse {
			mode = "ablation (exclusive whole update)"
		}
		t.Rows = append(t.Rows, []string{
			mode,
			fmtDur(enq.Percentile(50)),
			fmtDur(enq.Percentile(95)),
			fmtDur(enq.Max()),
			fmtDur(upd.Mean()),
		})
	}
	t.Notes = append(t.Notes,
		"paper §3: \"these rules never exclude enquiry operations during disk transfers, only during virtual memory operations\"",
		"each sample issues one enquiry ~0.5 ms into a ~2 ms commit; the ablation makes it wait out the disk write")
	return []*Table{t}, nil
}

// E9 runs randomized crash-recovery trials for this design and for the
// ad-hoc baseline.
func E9(env Env) ([]*Table, error) {
	env = env.Defaults()
	trials := env.iters(150, 25)

	// --- this design ---
	var ackedLost, unackedVisible, recoverFailed, tornDiscarded int
	for trial := 0; trial < trials; trial++ {
		seed := env.Seed + int64(trial)
		mem := vfs.NewMem(seed)
		s, err := nameserver.Open(nameserver.Config{FS: mem})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		crashAfter := rng.Intn(20)
		count := 0
		fail := errors.New("crash")
		mem.FailSync = func(string) error {
			count++
			if count > crashAfter {
				return fail
			}
			return nil
		}
		acked := 0
		for i := 0; i < 15; i++ {
			if err := s.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
				break
			}
			acked++
		}
		mem.FailSync = nil
		mem.CrashTorn(512)

		s2, err := nameserver.Open(nameserver.Config{FS: mem})
		if err != nil {
			recoverFailed++
			continue
		}
		if s2.Stats().RestartTornTail {
			tornDiscarded++
		}
		for i := 0; i < acked; i++ {
			if _, err := s2.Lookup(fmt.Sprintf("k%d", i)); err != nil {
				ackedLost++
			}
		}
		for i := acked + 1; i < 15; i++ {
			if _, err := s2.Lookup(fmt.Sprintf("k%d", i)); err == nil {
				unackedVisible++
			}
		}
		s2.Close()
	}

	// --- ad-hoc baseline: the same crash pattern, checking the paired
	// invariant from E6's schema (balance/stamp must move together) ---
	var adhocCorrupt, adhocBroken int
	for trial := 0; trial < trials; trial++ {
		seed := env.Seed + 100000 + int64(trial)
		mem := vfs.NewMem(seed)
		db, err := adhoc.Open(mem, "data")
		if err != nil {
			return nil, err
		}
		db.Update("acct:balance", "gen-0")
		db.Update("acct:stamp", "gen-0")
		rng := rand.New(rand.NewSource(seed))
		crashAfter := rng.Intn(8)
		count := 0
		fail := errors.New("crash")
		mem.FailSync = func(string) error {
			count++
			if count > crashAfter {
				return fail
			}
			return nil
		}
		for g := 1; g <= 5; g++ {
			if err := db.Update("acct:balance", fmt.Sprintf("gen-%d", g)); err != nil {
				break
			}
			if err := db.Update("acct:stamp", fmt.Sprintf("gen-%d", g)); err != nil {
				break
			}
		}
		mem.FailSync = nil
		mem.CrashTorn(512)

		db2, err := adhoc.Open(mem, "data")
		if err != nil {
			adhocBroken++
			continue
		}
		bal, ok1, err1 := db2.Lookup("acct:balance")
		stamp, ok2, err2 := db2.Lookup("acct:stamp")
		db2.Close()
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			adhocBroken++
			continue
		}
		if bal != stamp {
			adhocCorrupt++ // half-applied logical update, served silently
		}
	}

	return []*Table{{
		ID:     "E9",
		Title:  fmt.Sprintf("crash-recovery reliability, %d randomized trials per engine", trials),
		Header: []string{"engine", "recovery failed", "acked updates lost", "unacked visible (>1 in flight)", "silent corruption"},
		Rows: [][]string{
			{"this design", fmt.Sprintf("%d", recoverFailed), fmt.Sprintf("%d", ackedLost), fmt.Sprintf("%d", unackedVisible), "0"},
			{"ad hoc in-place", fmt.Sprintf("%d", adhocBroken), "-", "-", fmt.Sprintf("%d", adhocCorrupt)},
		},
		Notes: []string{
			fmt.Sprintf("this design discarded a torn tail entry in %d trials — detected, never served", tornDiscarded),
			"paper §4: committed iff the log entry completed; the ad-hoc scheme has no such commit point",
		},
	}}, nil
}

// E10 counts source lines per module, beside the paper's §6 table.
func E10(env Env) ([]*Table, error) {
	env = env.Defaults()
	root := srcRoot()
	count := func(rel ...string) string {
		total := 0
		for _, r := range rel {
			n, err := countGoLines(filepath.Join(root, r))
			if err != nil {
				return "n/a"
			}
			total += n
		}
		return fmt.Sprintf("%d", total)
	}
	return []*Table{{
		ID:     "E10",
		Title:  "implementation size (source lines, tests excluded), beside the paper's §6 counts",
		Header: []string{"component", "paper (Modula-2+)", "this reproduction (Go)"},
		Rows: [][]string{
			{"pickle package", "1648", count("internal/pickle")},
			{"checkpoint + log package", "638", count("internal/wal", "internal/checkpoint", "internal/core")},
			{"name server database semantics", "1404", count("internal/nameserver")},
			{"RPC stubs (client+server)", "663+622 (generated)", count("internal/rpc")},
			{"replication & consistency", "(2 programmer-months)", count("internal/replica")},
		},
		Notes: []string{
			"paper's stub modules were machine-generated; ours is a reflection-driven runtime, counted once",
			"our checkpoint+log row includes the generic store engine the paper folds into the server",
		},
	}}, nil
}

func srcRoot() string {
	for _, dir := range []string{".", "..", "../..", "/root/repo"} {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
	}
	return "."
}

func countGoLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += strings.Count(string(data), "\n")
	}
	return total, nil
}

// E11 measures remote enquiry and update cost over the RPC layer with the
// paper's 8 ms network round trip.
func E11(env Env) ([]*Table, error) {
	env = env.Defaults()
	_, d := modeledFS(env.Seed, 0)
	s, err := buildNS(Env{Seed: env.Seed, DBEntries: 1000, ValueSize: env.ValueSize}, d, nameserver.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	srv := rpc.NewServer()
	if err := srv.Register("NS", nameserver.NewRPCService(s)); err != nil {
		return nil, err
	}
	defer srv.Close()
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	client := rpc.NewClient(cConn)
	defer client.Close()
	client.SimulatedRTT = 8 * time.Millisecond

	iters := env.iters(100, 15)
	rng := rand.New(rand.NewSource(env.Seed))

	// Server-side enquiry CPU, measured directly (scheduling noise in the
	// pipe transport must not be inflated by the CPU model).
	var lookupCPU time.Duration
	{
		n := env.iters(2000, 100)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := s.Lookup(NameFor(rng.Intn(1000))); err != nil {
				return nil, err
			}
		}
		lookupCPU = time.Since(t0) / time.Duration(n)
	}

	var enq, upd Hist
	d.ResetStats()
	for i := 0; i < iters; i++ {
		name := NameFor(rng.Intn(1000))
		t0 := time.Now()
		var lr nameserver.LookupReply
		if err := client.Call("NS.Lookup", &nameserver.LookupArgs{Name: name}, &lr); err != nil {
			return nil, err
		}
		enq.Add(time.Since(t0))
	}
	enqDisk := d.Stats().ModeledIO
	d.ResetStats()
	pre := s.Stats()
	for i := 0; i < iters; i++ {
		name := NameFor(rng.Intn(1000))
		t0 := time.Now()
		if err := client.Call("NS.Set", &nameserver.SetArgs{Name: name, Value: Value(rng, 32)}, &nameserver.SetReply{}); err != nil {
			return nil, err
		}
		upd.Add(time.Since(t0))
	}
	post := s.Stats()
	updDisk := d.Stats().ModeledIO / time.Duration(iters)
	updCPU := (post.VerifyTime - pre.VerifyTime + post.PickleTime - pre.PickleTime + post.ApplyTime - pre.ApplyTime) / time.Duration(iters)

	// 1987-equivalent: the 8 ms RTT is already at period-accurate speed;
	// the server phases scale by the CPU model and the log write is the
	// modeled disk.
	rtt := 8 * time.Millisecond
	enq1987 := rtt + slow(lookupCPU)
	upd1987 := rtt + slow(updCPU) + updDisk

	return []*Table{{
		ID:     "E11",
		Title:  "remote access cost over RPC (8 ms simulated round trip, as the paper's network)",
		Header: []string{"operation", "paper (1987)", "measured (RTT + server)", "1987-equivalent"},
		Rows: [][]string{
			{"remote enquiry", "13ms (5 + 8 RTT)", fmtDur(enq.Mean()), fmtDur(enq1987)},
			{"remote update", "62ms (54 + 8 RTT)", fmtDur(upd.Mean()), fmtDur(upd1987)},
		},
		Notes: []string{
			fmt.Sprintf("enquiries did %s of disk I/O (must be zero)", fmtDur(enqDisk)),
			"measured update excludes modeled disk (accounting mode); 1987-equivalent adds the 20 ms-class log write",
		},
	}}, nil
}

// E12 reports pickling's share of update cost.
func E12(env Env) ([]*Table, error) {
	env = env.Defaults()
	_, d := modeledFS(env.Seed, 0)
	s, err := buildNS(env, d, nameserver.Config{})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	before := s.Stats()
	d.ResetStats()
	rng := rand.New(rand.NewSource(env.Seed))
	n := env.iters(2000, 100)
	for i := 0; i < n; i++ {
		if err := s.Set(NameFor(rng.Intn(env.DBEntries)), Value(rng, env.ValueSize)); err != nil {
			return nil, err
		}
	}
	after := s.Stats()

	verify := slow(after.VerifyTime - before.VerifyTime)
	pickle := slow(after.PickleTime - before.PickleTime)
	apply := slow(after.ApplyTime - before.ApplyTime)
	diskW := d.Stats().ModeledIO
	total := verify + pickle + apply + diskW
	share := float64(pickle) / float64(total) * 100
	cpuShare := float64(pickle) / float64(verify+pickle+apply) * 100

	return []*Table{{
		ID:     "E12",
		Title:  "pickling's share of update cost (paper §6: 'about 40% of the cost of an update is in PickleWrite')",
		Header: []string{"quantity", "paper", "this reproduction"},
		Rows: [][]string{
			{"PickleWrite share of update (incl. disk write)", "~40% (22/54ms)", fmt.Sprintf("%.0f%%", share)},
			{"PickleWrite share of update CPU", "~65% (22/34ms)", fmt.Sprintf("%.0f%%", cpuShare)},
		},
		Notes: []string{
			"computed from the E2 phase totals at 1987-equivalent scale",
			"Go's pickle is cheaper relative to the disk write than the 1987 runtime-typed one, so the",
			"total-cost share is lower; the qualitative claim — pickling dominates an update's CPU — holds",
		},
	}}, nil
}

// E13 demonstrates hard-error recovery by replica restore.
func E13(env Env) ([]*Table, error) {
	env = env.Defaults()
	propagated := env.iters(200, 30)
	localOnly := 5

	fsA := vfs.NewMem(env.Seed)
	na, err := replica.Open(replica.Config{Name: "a", FS: fsA, HistoryCap: propagated * 2})
	if err != nil {
		return nil, err
	}
	defer na.Close()
	fsB := vfs.NewMem(env.Seed + 1)
	nb, err := replica.Open(replica.Config{Name: "b", FS: fsB, HistoryCap: propagated * 2})
	if err != nil {
		return nil, err
	}

	srvA := rpc.NewServer()
	srvA.Register("Replica", replica.NewService(na))
	defer srvA.Close()
	srvB := rpc.NewServer()
	srvB.Register("Replica", replica.NewService(nb))
	defer srvB.Close()

	caConn, saConn := net.Pipe()
	go srvA.ServeConn(saConn)
	clientToA := rpc.NewClient(caConn)
	defer clientToA.Close()
	cbConn, sbConn := net.Pipe()
	go srvB.ServeConn(sbConn)
	clientToB := rpc.NewClient(cbConn)
	na.AddPeer("b", clientToB)

	// Propagated updates flow a -> b.
	for i := 0; i < propagated; i++ {
		if err := na.Set(fmt.Sprintf("shared/k%d", i), "v"); err != nil {
			return nil, err
		}
	}
	// Local-only updates at b: never propagated (b has no peers wired).
	for i := 0; i < localOnly; i++ {
		if err := nb.Set(fmt.Sprintf("local/k%d", i), "v"); err != nil {
			return nil, err
		}
	}

	// Hard error: b's disk is lost entirely. Rebuild from a.
	nb.Close()
	fresh := vfs.NewMem(env.Seed + 99)
	nb2, err := replica.Open(replica.Config{Name: "b", FS: fresh, HistoryCap: propagated * 2})
	if err != nil {
		return nil, err
	}
	defer nb2.Close()
	if err := nb2.RestoreFromPeer(clientToA); err != nil {
		return nil, err
	}

	recovered, lost := 0, 0
	for i := 0; i < propagated; i++ {
		if _, err := nb2.Lookup(fmt.Sprintf("shared/k%d", i)); err == nil {
			recovered++
		}
	}
	for i := 0; i < localOnly; i++ {
		if _, err := nb2.Lookup(fmt.Sprintf("local/k%d", i)); err != nil {
			lost++
		}
	}

	return []*Table{{
		ID:     "E13",
		Title:  "hard-error recovery by replica restore (paper §4)",
		Header: []string{"quantity", "expected", "measured"},
		Rows: [][]string{
			{"propagated updates recovered", fmt.Sprintf("%d/%d", propagated, propagated), fmt.Sprintf("%d/%d", recovered, propagated)},
			{"unpropagated updates lost", fmt.Sprintf("%d", localOnly), fmt.Sprintf("%d", lost)},
		},
		Notes: []string{
			"\"we lose only those updates that had been applied to the damaged replica but not propagated\"",
		},
	}}, nil
}
