package checkpoint

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"smalldb/internal/vfs"
)

// deltaSwitch runs one full chained switch to cur.Version+1 via the split
// API, writing content as the delta body.
func deltaSwitch(t *testing.T, fs vfs.FS, cur State, content string, opts Options) State {
	t.Helper()
	next, err := PrepareDelta(fs, cur, writeBytes([]byte(content)), opts)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CommitNewVersion(fs, next); err != nil {
		t.Fatal(err)
	}
	if err := InstallVersion(fs); err != nil {
		t.Fatal(err)
	}
	st, err := Finish(fs, next, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDeltaSwitchChain(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	st = deltaSwitch(t, fs, st, "d2", Options{})
	st = deltaSwitch(t, fs, st, "d3", Options{})

	if st.Version != 3 || st.Base != 1 {
		t.Fatalf("state %+v", st)
	}
	if !reflect.DeepEqual(st.Chain(), []uint64{1, 2, 3}) {
		t.Errorf("chain %v", st.Chain())
	}
	// With retain 0 the old logs are gone, but every chain file survives:
	// the base and intermediate deltas are still referenced by version 3.
	names, _ := fs.List()
	want := []string{"checkpoint1", "checkpoint2.d", "checkpoint3.d", "logfile3", "version"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("directory: %v", names)
	}

	got, err := Recover(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 || got.Base != 1 || len(got.Retained) != 0 {
		t.Errorf("recovered %+v", got)
	}
	chain, err := ChainOf(fs, 3)
	if err != nil || !reflect.DeepEqual(chain, []uint64{1, 2, 3}) {
		t.Errorf("ChainOf: %v, %v", chain, err)
	}
}

// TestRetentionKeepsReferencedBase is the regression for the retention
// bug: a base that has left the "one previous version" window must survive
// as long as a surviving delta references it.
func TestRetentionKeepsReferencedBase(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	opts := Options{Retain: 1}
	for i := 0; i < 5; i++ {
		st = deltaSwitch(t, fs, st, "d", opts)
	}
	if st.Version != 6 || st.Base != 1 {
		t.Fatalf("state %+v", st)
	}
	// Version 1 is far outside the retention window, yet its full image
	// is the base of every surviving chain.
	if !vfs.Exists(fs, CheckpointName(1)) {
		t.Error("chain base deleted by retention")
	}
	for v := uint64(2); v <= 6; v++ {
		if !vfs.Exists(fs, DeltaName(v)) {
			t.Errorf("delta %d missing", v)
		}
	}
	if !reflect.DeepEqual(st.Retained, []uint64{5}) {
		t.Errorf("retained %v", st.Retained)
	}
	// Only the retained and current logs survive.
	if vfs.Exists(fs, LogName(4)) || !vfs.Exists(fs, LogName(5)) || !vfs.Exists(fs, LogName(6)) {
		t.Error("log retention wrong")
	}
}

// TestFullSwitchCollapsesChain: a full switch on top of a delta chain (the
// compactor's move) lets retention drop the old chain once it leaves the
// window.
func TestFullSwitchCollapsesChain(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	st = deltaSwitch(t, fs, st, "d2", Options{Retain: 1})
	st = deltaSwitch(t, fs, st, "d3", Options{Retain: 1})

	// Compaction: switch to a fresh full image at version 4. Version 3 is
	// retained, so its whole chain (1, 2.d, 3.d) must survive this switch.
	st, err := SwitchWith(fs, st, writeBytes([]byte("full4")), Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 4 || st.Base != 4 || !reflect.DeepEqual(st.Retained, []uint64{3}) {
		t.Fatalf("state %+v", st)
	}
	for _, n := range []string{CheckpointName(1), DeltaName(2), DeltaName(3), CheckpointName(4)} {
		if !vfs.Exists(fs, n) {
			t.Errorf("%s missing while version 3 is retained", n)
		}
	}

	// One more switch and the old chain leaves the window entirely.
	st, err = SwitchWith(fs, st, writeBytes([]byte("full5")), Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{CheckpointName(1), DeltaName(2), DeltaName(3)} {
		if vfs.Exists(fs, n) {
			t.Errorf("%s survived past its chain's retention", n)
		}
	}
	if !vfs.Exists(fs, CheckpointName(4)) {
		t.Error("retained full image deleted")
	}
}

// TestDeltaCrashBeforeCommit: a delta file without a durable newversion is
// debris; recovery restores the old version and clears it.
func TestDeltaCrashBeforeCommit(t *testing.T) {
	fs := vfs.NewMem(1)
	mustInit(t, fs, "base")
	writeCheckpointFile(fs, DeltaName(2), writeBytes([]byte("d2")))
	createEmptySynced(fs, LogName(2))
	fs.Crash()

	st, err := Recover(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 || st.Base != 1 {
		t.Fatalf("state %+v", st)
	}
	if vfs.Exists(fs, DeltaName(2)) {
		t.Error("uncommitted delta survived recovery")
	}
}

// TestDeltaCrashAfterCommit: once newversion is durable, recovery finishes
// the delta switch and reports the chain.
func TestDeltaCrashAfterCommit(t *testing.T) {
	fs := vfs.NewMem(1)
	mustInit(t, fs, "base")
	writeCheckpointFile(fs, DeltaName(2), writeBytes([]byte("d2")))
	createEmptySynced(fs, LogName(2))
	vfs.WriteFile(fs, "newversion", []byte("2\n"))
	fs.Crash()

	st, err := Recover(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Base != 1 {
		t.Fatalf("state %+v", st)
	}
	if !vfs.Exists(fs, CheckpointName(1)) {
		t.Error("base of the committed chain deleted")
	}
}

// TestRecoverBrokenChain: a chain whose base is missing is damage and must
// be reported clearly, not silently reinitialized or panicked over.
func TestRecoverBrokenChain(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	st = deltaSwitch(t, fs, st, "d2", Options{})
	_ = st
	if err := fs.Remove(CheckpointName(1)); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(fs, 0)
	if err == nil || errors.Is(err, ErrNotInitialized) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "unreadable") && !strings.Contains(err.Error(), "chain") {
		t.Errorf("error does not name the chain: %v", err)
	}
	if _, cerr := ChainOf(fs, 2); cerr == nil {
		t.Error("ChainOf did not report the break")
	}
}

// TestChainCrashMidCleanup: a crash in the middle of retention cleanup —
// some stale files already deleted, others not — must recover to the same
// final state, with the chain's base intact. Regression test for the
// chain-aware retention rule.
func TestChainCrashMidCleanup(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	st = deltaSwitch(t, fs, st, "d2", Options{Retain: 1})
	st = deltaSwitch(t, fs, st, "d3", Options{Retain: 1})
	_ = st

	// Simulate a crash midway through the cleanup of a fourth delta
	// switch: newversion already installed as version, one old log
	// already deleted, the rest of the cleanup never ran, stale debris of
	// an aborted full switch to 5 also on disk.
	writeCheckpointFile(fs, DeltaName(4), writeBytes([]byte("d4")))
	createEmptySynced(fs, LogName(4))
	vfs.WriteFile(fs, versionFile, []byte("4\n"))
	writeCheckpointFile(fs, CheckpointName(5), writeBytes([]byte("stale")))
	if err := fs.Remove(LogName(2)); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	got, err := Recover(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 4 || got.Base != 1 || !reflect.DeepEqual(got.Retained, []uint64{3}) {
		t.Fatalf("recovered %+v", got)
	}
	for _, n := range []string{CheckpointName(1), DeltaName(2), DeltaName(3), DeltaName(4), LogName(3), LogName(4)} {
		if !vfs.Exists(fs, n) {
			t.Errorf("%s missing after mid-cleanup recovery", n)
		}
	}
	for _, n := range []string{CheckpointName(5), LogName(2)} {
		if vfs.Exists(fs, n) {
			t.Errorf("%s survived mid-cleanup recovery", n)
		}
	}
	// Recovery is idempotent: a second crashless recover changes nothing.
	again, err := Recover(fs, 1)
	if err != nil || !reflect.DeepEqual(again, got) {
		t.Errorf("second recover: %+v, %v", again, err)
	}
}

// TestPrepareClearsOppositeKindDebris: an aborted full switch must not
// leave a stale full image that a later committed delta switch would
// resolve as its chain base (and vice versa).
func TestPrepareClearsOppositeKindDebris(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")

	// Debris: a failed full switch to 2 that Abort never cleaned.
	writeCheckpointFile(fs, CheckpointName(2), writeBytes([]byte("stale-full")))
	st = deltaSwitch(t, fs, st, "d2", Options{})
	if st.Version != 2 || st.Base != 1 {
		t.Fatalf("state %+v (stale full image became the base?)", st)
	}
	if vfs.Exists(fs, CheckpointName(2)) {
		t.Error("stale full image survived PrepareDelta")
	}

	// And the other direction: stale delta debris before a full switch.
	writeCheckpointFile(fs, DeltaName(3), writeBytes([]byte("stale-delta")))
	st, err := SwitchWith(fs, st, writeBytes([]byte("full3")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 3 || st.Base != 3 {
		t.Fatalf("state %+v", st)
	}
	if vfs.Exists(fs, DeltaName(3)) {
		t.Error("stale delta survived Prepare")
	}
}

// TestDeltaAbort: Abort clears a prepared delta along with the log files.
func TestDeltaAbort(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "base")
	next, err := PrepareDelta(fs, st, writeBytes([]byte("d2")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		t.Fatal(err)
	}
	lf.Close()
	Abort(fs, next)
	if vfs.Exists(fs, DeltaName(next)) || vfs.Exists(fs, LogName(next)) {
		t.Error("abort left delta debris")
	}
	if got, err := Recover(fs, 0); err != nil || got.Version != 1 {
		t.Errorf("recover after abort: %+v %v", got, err)
	}
}
