package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// An Event is one structured trace record: an update committed, a
// checkpoint started or finished, replay progress, a log flush, a lock
// wait, an RPC call, a replica push or anti-entropy round. Dur is zero for
// instantaneous events; Err is nil for successful ones.
//
// Time is when the event began (for a span, its start; Time+Dur is its
// end). Trace/Span/Parent place the event in a causal trace: all events of
// one logical operation share a Trace, each span has its own Span ID, and
// Parent links it to the enclosing span. All three are zero for plain
// untraced events.
type Event struct {
	Name   string
	Time   time.Time
	Dur    time.Duration
	Err    error
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Attrs  []Attr
}

// An Attr is one key/value annotation on an event.
type Attr struct {
	Key   string
	Value any
}

// A formats an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// String renders the event on one line: timestamp, name, duration, error,
// attributes.
func (e Event) String() string {
	var b strings.Builder
	if !e.Time.IsZero() {
		b.WriteString(e.Time.Format("15:04:05.000000"))
		b.WriteByte(' ')
	}
	b.WriteString(e.Name)
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", e.Dur.Round(time.Microsecond))
	}
	if e.Trace != 0 {
		fmt.Fprintf(&b, " trace=%016x", uint64(e.Trace))
	}
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%q", e.Err.Error())
	}
	return b.String()
}

// A Tracer receives structured events. Implementations must be safe for
// concurrent use; Emit is called on hot paths and should be cheap.
type Tracer interface {
	Emit(e Event)
}

// Nop is the default tracer; it discards every event.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Emit(Event) {}

// Emit sends e to t if t is non-nil and not Nop — the helper subsystems use
// so an unconfigured tracer costs one nil check. The event's Time is
// stamped at emit when the caller left it zero, so every recorded event is
// dated without each call site naming the clock.
func Emit(t Tracer, e Event) {
	if t == nil || t == Nop {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.Emit(e)
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Emit implements Tracer.
func (f FuncTracer) Emit(e Event) { f(e) }

// Multi fans every event out to each tracer in order; nil entries are
// skipped, nested Multi results are flattened (so composing tracers in
// layers costs one dispatch, not a chain), and an empty set behaves as Nop.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		switch t := t.(type) {
		case nil:
		case nopTracer:
		case multiTracer:
			live = append(live, t...)
		default:
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// SlowOps returns a tracer that forwards to logf only the events whose
// duration meets threshold or that carry an error — the "why was that
// update slow" tracer a production daemon runs by default. Filtered events
// pay only the comparison: no formatting, no allocation.
func SlowOps(threshold time.Duration, logf func(format string, args ...any)) Tracer {
	return &slowOps{threshold: threshold, logf: logf}
}

type slowOps struct {
	threshold time.Duration
	logf      func(format string, args ...any)
}

// Emit implements Tracer.
func (s *slowOps) Emit(e Event) {
	if e.Err == nil && (e.Dur < s.threshold || e.Dur <= 0) {
		return
	}
	s.logf("obs: slow op: %s", e.String())
}

// A Recorder is a tracer that keeps the last N events in a ring, for tests
// and for the /stats page's recent-events section.
type Recorder struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
}

// NewRecorder returns a Recorder holding up to n events.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{ring: make([]Event, n)}
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}
