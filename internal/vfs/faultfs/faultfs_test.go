package faultfs

import (
	"errors"
	"testing"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

// workload performs a fixed op sequence: create+write+sync "a" (3 ops),
// write+sync more (2 ops), rename (1 op), create "b" + write, no sync
// (2 ops). N = 8.
func workload(fs vfs.FS) error {
	f, err := fs.Create("a")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("one")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.Write([]byte("two")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	if err := fs.Rename("a", "a2"); err != nil {
		return err
	}
	g, err := fs.Create("b")
	if err != nil {
		return err
	}
	if _, err := g.Write([]byte("unsynced")); err != nil {
		return err
	}
	g.Close()
	return nil
}

func TestOpCounting(t *testing.T) {
	ffs := New(vfs.NewMem(1), Options{CrashAt: Never})
	if err := workload(ffs); err != nil {
		t.Fatal(err)
	}
	if n := ffs.OpCount(); n != 8 {
		t.Errorf("OpCount = %d, want 8", n)
	}
	if ffs.Crashed() {
		t.Error("crashed without a crash point")
	}
	// Snapshot without a crash is the synced view: b exists but is empty.
	snap := ffs.Snapshot()
	if data, err := vfs.ReadFile(snap, "a2"); err != nil || string(data) != "onetwo" {
		t.Errorf("a2 = %q, %v", data, err)
	}
	if data, err := vfs.ReadFile(snap, "b"); err != nil || len(data) != 0 {
		t.Errorf("b = %q, %v; want empty", data, err)
	}
}

// TestCrashAtEveryPoint replays the workload for each crash point and
// checks the frozen image matches the durable state implied by the op
// index.
func TestCrashAtEveryPoint(t *testing.T) {
	for n := int64(0); n <= 8; n++ {
		ffs := New(vfs.NewMem(1), Options{CrashAt: n, TraceCap: 16})
		err := workload(ffs)
		if n < 8 {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("n=%d: workload err = %v, want ErrCrashed", n, err)
			}
			if !ffs.Crashed() {
				t.Fatalf("n=%d: not crashed", n)
			}
		} else if err != nil {
			t.Fatalf("n=8: workload err = %v", err)
		}
		snap := ffs.Snapshot()
		// The first sync is op 2; before it, "a" is empty or absent.
		data, rerr := vfs.ReadFile(snap, "a")
		switch {
		case n <= 2:
			if vfs.Exists(snap, "a") && len(mustRead(t, snap, "a")) != 0 {
				t.Errorf("n=%d: a has durable content %q before first sync", n, data)
			}
		case n <= 4: // first sync done, second not
			if rerr != nil || string(data) != "one" {
				t.Errorf("n=%d: a = %q, %v; want \"one\"", n, data, rerr)
			}
		case n == 5: // second sync done, rename not
			if rerr != nil || string(data) != "onetwo" {
				t.Errorf("n=%d: a = %q, %v; want \"onetwo\"", n, data, rerr)
			}
		default: // rename durable
			if vfs.Exists(snap, "a") {
				t.Errorf("n=%d: a still exists after rename", n)
			}
			if d, err := vfs.ReadFile(snap, "a2"); err != nil || string(d) != "onetwo" {
				t.Errorf("n=%d: a2 = %q, %v", n, d, err)
			}
		}
	}
}

func mustRead(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	data, err := vfs.ReadFile(fs, name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestEverythingFailsAfterCrash(t *testing.T) {
	ffs := New(vfs.NewMem(1), Options{CrashAt: 3})
	_ = workload(ffs)
	if _, err := ffs.Create("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("Create after crash: %v", err)
	}
	if _, err := ffs.Open("a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("Open after crash: %v", err)
	}
	if _, err := ffs.List(); !errors.Is(err, ErrCrashed) {
		t.Errorf("List after crash: %v", err)
	}
	if err := ffs.Remove("a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("Remove after crash: %v", err)
	}
	// The frozen image is stable: mutations after the crash change nothing.
	if got := ffs.OpCount(); got != 4 {
		// ops 0..3 indexed; the crash consumed index 3.
		t.Errorf("OpCount after crash = %d, want 4", got)
	}
}

func TestFailSyncAt(t *testing.T) {
	boom := errors.New("EIO")
	ffs := New(vfs.NewMem(1), Options{CrashAt: Never})
	ffs.FailSyncAt(2, boom)
	f, _ := ffs.Create("a")
	f.Write([]byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("second sync = %v, want injected error", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync (injection is one-shot): %v", err)
	}
	f.Close()
}

func TestFailName(t *testing.T) {
	boom := errors.New("EIO")
	reg := obs.NewRegistry()
	ffs := New(vfs.NewMem(1), Options{CrashAt: Never, Obs: reg})
	ffs.FailName("version", boom)
	if _, err := ffs.Create("newversion"); !errors.Is(err, boom) {
		t.Fatalf("Create newversion = %v", err)
	}
	if _, err := ffs.Create("checkpoint1"); err != nil {
		t.Fatalf("unrelated create: %v", err)
	}
	ffs.ClearFaults()
	if _, err := ffs.Create("version"); err != nil {
		t.Fatalf("create after ClearFaults: %v", err)
	}
	snap := reg.Snapshot()
	if snap["faultfs_injected_errors"].(uint64) != 1 {
		t.Errorf("injected counter = %v", snap["faultfs_injected_errors"])
	}
}

func TestTrace(t *testing.T) {
	ffs := New(vfs.NewMem(1), Options{CrashAt: 4, TraceCap: 3})
	_ = workload(ffs)
	tr := ffs.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want 3 (capped)", len(tr))
	}
	last := tr[len(tr)-1]
	if last.Index != 4 || last.Injected != "crash" {
		t.Errorf("last trace record = %+v, want crash at index 4", last)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Index != tr[i-1].Index+1 {
			t.Errorf("trace indices not consecutive: %v", tr)
		}
	}
}
