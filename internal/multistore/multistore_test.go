package multistore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"smalldb/internal/core"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
)

// Test partition roots and updates.
type table struct {
	Rows map[string]string
}

func newTable() any { return &table{Rows: map[string]string{}} }

type putRow struct{ K, V string }

func (u *putRow) Verify(root any) error {
	if u.K == "" {
		return errors.New("empty key")
	}
	return nil
}

func (u *putRow) Apply(root any) error {
	root.(*table).Rows[u.K] = u.V
	return nil
}

func init() {
	pickle.Register(&table{})
	core.RegisterUpdate(&putRow{})
}

func openSet(t *testing.T, fs vfs.FS, segBytes int64, parts ...string) *Set {
	t.Helper()
	cfg := Config{FS: fs, Partitions: map[string]func() any{}, SegmentBytes: segBytes}
	for _, p := range parts {
		cfg.Partitions[p] = newTable
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func getRow(t *testing.T, s *Set, part, key string) (string, bool) {
	t.Helper()
	var v string
	var ok bool
	if err := s.View(part, func(root any) error {
		v, ok = root.(*table).Rows[key]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v, ok
}

func TestBasicPartitions(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "home", "src")
	defer s.Close()

	if err := s.Apply("home", &putRow{K: "a", V: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply("src", &putRow{K: "a", V: "2"}); err != nil {
		t.Fatal(err)
	}
	if v, _ := getRow(t, s, "home", "a"); v != "1" {
		t.Errorf("home/a = %q", v)
	}
	if v, _ := getRow(t, s, "src", "a"); v != "2" {
		t.Errorf("src/a = %q", v)
	}
	if err := s.Apply("nope", &putRow{K: "x", V: "y"}); !errors.Is(err, ErrNoPartition) {
		t.Errorf("unknown partition: %v", err)
	}
	if got := s.Partitions(); len(got) != 2 || got[0] != "home" || got[1] != "src" {
		t.Errorf("Partitions() = %v", got)
	}
}

func TestRecoveryInterleaved(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "a", "b", "c")
	for i := 0; i < 30; i++ {
		part := []string{"a", "b", "c"}[i%3]
		if err := s.Apply(part, &putRow{K: fmt.Sprintf("k%d", i), V: part}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	fs.Crash()

	s2 := openSet(t, fs, 0, "a", "b", "c")
	defer s2.Close()
	for i := 0; i < 30; i++ {
		part := []string{"a", "b", "c"}[i%3]
		if v, ok := getRow(t, s2, part, fmt.Sprintf("k%d", i)); !ok || v != part {
			t.Fatalf("%s/k%d = %q %v", part, i, v, ok)
		}
	}
}

func TestPerPartitionCheckpointIndependence(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "busy", "quiet")
	for i := 0; i < 20; i++ {
		s.Apply("busy", &putRow{K: fmt.Sprintf("k%d", i), V: "v"})
	}
	s.Apply("quiet", &putRow{K: "only", V: "one"})
	// Checkpoint only the busy partition.
	if err := s.Checkpoint("busy"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openSet(t, fs, 0, "busy", "quiet")
	defer s2.Close()
	if v, ok := getRow(t, s2, "busy", "k7"); !ok || v != "v" {
		t.Error("busy partition lost data")
	}
	if v, ok := getRow(t, s2, "quiet", "only"); !ok || v != "one" {
		t.Error("quiet partition lost data (its updates live only in the shared log)")
	}
}

func TestSegmentRetirement(t *testing.T) {
	fs := vfs.NewMem(1)
	// Tiny segments so rolling happens quickly.
	s := openSet(t, fs, 256, "p", "q")
	for i := 0; i < 40; i++ {
		s.Apply("p", &putRow{K: fmt.Sprintf("p%d", i), V: strings.Repeat("x", 40)})
		s.Apply("q", &putRow{K: fmt.Sprintf("q%d", i), V: strings.Repeat("y", 40)})
	}
	count, _, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if count < 3 {
		t.Fatalf("expected several segments, have %d", count)
	}
	// Checkpointing only p must retire nothing (q pins the log).
	if err := s.Checkpoint("p"); err != nil {
		t.Fatal(err)
	}
	afterP, _, _ := s.Segments()
	if afterP < count {
		t.Errorf("segments retired while q's checkpoint is at 0: %d -> %d", count, afterP)
	}
	// Checkpointing q as well frees everything but the active segment.
	if err := s.Checkpoint("q"); err != nil {
		t.Fatal(err)
	}
	afterQ, _, _ := s.Segments()
	if afterQ != 1 {
		t.Errorf("segments after both checkpoints: %d, want 1", afterQ)
	}
	s.Close()

	// Recovery from checkpoints + the remaining segment is complete.
	s2 := openSet(t, fs, 256, "p", "q")
	defer s2.Close()
	for i := 0; i < 40; i++ {
		if _, ok := getRow(t, s2, "p", fmt.Sprintf("p%d", i)); !ok {
			t.Fatalf("p%d lost after retirement", i)
		}
		if _, ok := getRow(t, s2, "q", fmt.Sprintf("q%d", i)); !ok {
			t.Fatalf("q%d lost after retirement", i)
		}
	}
}

func TestCrashDuringPartitionCheckpoint(t *testing.T) {
	for failAt := 1; failAt <= 3; failAt++ {
		fs := vfs.NewMem(int64(failAt))
		s := openSet(t, fs, 0, "p")
		for i := 0; i < 10; i++ {
			s.Apply("p", &putRow{K: fmt.Sprintf("k%d", i), V: "v"})
		}
		count := 0
		boom := errors.New("crash")
		fs.FailSync = func(string) error {
			count++
			if count >= failAt {
				return boom
			}
			return nil
		}
		_ = s.Checkpoint("p") // may fail; either way state must recover
		fs.FailSync = nil
		s.Close()
		fs.Crash()

		s2 := openSet(t, fs, 0, "p")
		for i := 0; i < 10; i++ {
			if _, ok := getRow(t, s2, "p", fmt.Sprintf("k%d", i)); !ok {
				t.Fatalf("failAt %d: k%d lost", failAt, i)
			}
		}
		s2.Close()
	}
}

func TestOneSyncPerUpdate(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "p", "q", "r")
	defer s.Close()
	syncs := 0
	fs.FailSync = func(string) error { syncs++; return nil }
	before := syncs
	s.Apply("p", &putRow{K: "k", V: "v"})
	s.Apply("q", &putRow{K: "k", V: "v"})
	if got := syncs - before; got != 2 {
		t.Errorf("2 updates cost %d syncs; the shared log must cost one each", got)
	}
}

func TestConcurrentPartitions(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 4096, "a", "b", "c", "d")
	var wg sync.WaitGroup
	for _, part := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(part string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Apply(part, &putRow{K: fmt.Sprintf("k%d", i), V: part}); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := s.Checkpoint(part); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(part)
	}
	wg.Wait()
	s.Close()

	s2 := openSet(t, fs, 4096, "a", "b", "c", "d")
	defer s2.Close()
	for _, part := range []string{"a", "b", "c", "d"} {
		for i := 0; i < 50; i++ {
			if v, ok := getRow(t, s2, part, fmt.Sprintf("k%d", i)); !ok || v != part {
				t.Fatalf("%s/k%d = %q %v", part, i, v, ok)
			}
		}
	}
}

func TestUnknownPartitionInLog(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "old")
	s.Apply("old", &putRow{K: "k", V: "v"})
	s.Close()
	// Reopen with a config that dropped the partition.
	_, err := Open(Config{FS: fs, Partitions: map[string]func() any{"new": newTable}})
	if !errors.Is(err, ErrNoPartition) {
		t.Errorf("got %v", err)
	}
}

func TestInvalidPartitionNames(t *testing.T) {
	fs := vfs.NewMem(1)
	for _, bad := range []string{"", "with-dash", "with/slash"} {
		_, err := Open(Config{FS: fs, Partitions: map[string]func() any{bad: newTable}})
		if err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
}

func TestPreconditionFailureDoesNotLog(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openSet(t, fs, 0, "p")
	defer s.Close()
	_, before, _ := s.Segments()
	if err := s.Apply("p", &putRow{K: "", V: "v"}); err == nil {
		t.Fatal("empty key accepted")
	}
	_, after, _ := s.Segments()
	if after != before {
		t.Error("failed precondition grew the shared log")
	}
}
