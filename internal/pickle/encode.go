package pickle

import (
	"encoding"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"sort"
	"sync"
)

// An Encoder pickles values onto an output stream. Struct type definitions
// are emitted once per Encoder; pointer/map identity is tracked per Encode
// call, so each Encode produces an independently decodable value graph.
type Encoder struct {
	w        io.Writer
	scratch  [binary.MaxVarintLen64]byte
	types    map[reflect.Type]uint64 // struct type -> stream type id
	wroteHdr bool
	err      error // first write error; sticky
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, types: make(map[reflect.Type]uint64)}
}

// Encode pickles v, which may be any value built from bools, integers,
// floats, complex numbers, strings, slices, arrays, maps, structs (exported
// fields only), pointers and registered interface values.
func (e *Encoder) Encode(v any) error {
	if e.err != nil {
		return e.err
	}
	if !e.wroteHdr {
		e.writeByte(magic)
		e.wroteHdr = true
	}
	st := &encState{refs: make(map[uintptr]uint64)}
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		e.writeByte(tNil)
		return e.err
	}
	e.encodeValue(st, rv, 0)
	return e.err
}

// encState is per-Encode-call state: the identity table for shared pointers
// and maps.
type encState struct {
	refs    map[uintptr]uint64
	nextRef uint64
}

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
	}
}

func (e *Encoder) writeByte(b byte) {
	e.scratch[0] = b
	e.write(e.scratch[:1])
}

func (e *Encoder) writeUvarint(u uint64) {
	n := binary.PutUvarint(e.scratch[:], u)
	e.write(e.scratch[:n])
}

func (e *Encoder) writeVarint(i int64) {
	n := binary.PutVarint(e.scratch[:], i)
	e.write(e.scratch[:n])
}

func (e *Encoder) writeString(s string) {
	e.writeUvarint(uint64(len(s)))
	if e.err == nil {
		io.WriteString(e.w, s)
	}
}

func (e *Encoder) writeFloat64(f float64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], math.Float64bits(f))
	e.write(e.scratch[:8])
}

var binaryMarshalerType = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()

// binaryMarshalCache caches the per-type answer of usesBinaryMarshaling.
var binaryMarshalCache sync.Map // reflect.Type -> bool

// usesBinaryMarshaling reports whether rt opts out of structural pickling
// by implementing both encoding.BinaryMarshaler and BinaryUnmarshaler
// (checked on *T for the unmarshal side), as time.Time does.
func usesBinaryMarshaling(rt reflect.Type) bool {
	if v, ok := binaryMarshalCache.Load(rt); ok {
		return v.(bool)
	}
	uses := false
	if rt.Kind() == reflect.Struct && rt.Implements(binaryMarshalerType) {
		_, uses = reflect.PointerTo(rt).MethodByName("UnmarshalBinary")
	}
	binaryMarshalCache.Store(rt, uses)
	return uses
}

func (e *Encoder) encodeValue(st *encState, v reflect.Value, depth int) {
	if e.err != nil {
		return
	}
	if depth > MaxDepth {
		e.fail(errf("value exceeds maximum depth %d (unbounded recursion without pointers?)", MaxDepth))
		return
	}
	if v.Kind() == reflect.Struct && usesBinaryMarshaling(v.Type()) {
		bm := v.Interface().(encoding.BinaryMarshaler)
		data, err := bm.MarshalBinary()
		if err != nil {
			e.fail(errf("MarshalBinary of %v: %v", v.Type(), err))
			return
		}
		e.writeByte(tBinary)
		e.writeUvarint(uint64(len(data)))
		e.write(data)
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			e.writeByte(tTrue)
		} else {
			e.writeByte(tFalse)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.writeByte(tInt)
		e.writeVarint(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.writeByte(tUint)
		e.writeUvarint(v.Uint())
	case reflect.Float32:
		e.writeByte(tFloat32)
		binary.LittleEndian.PutUint32(e.scratch[:4], math.Float32bits(float32(v.Float())))
		e.write(e.scratch[:4])
	case reflect.Float64:
		e.writeByte(tFloat64)
		e.writeFloat64(v.Float())
	case reflect.Complex64, reflect.Complex128:
		e.writeByte(tComplex)
		c := v.Complex()
		e.writeFloat64(real(c))
		e.writeFloat64(imag(c))
	case reflect.String:
		e.writeByte(tString)
		e.writeString(v.String())
	case reflect.Slice:
		e.encodeSlice(st, v, depth)
	case reflect.Array:
		e.writeByte(tArray)
		e.writeUvarint(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			e.encodeValue(st, v.Index(i), depth+1)
		}
	case reflect.Map:
		e.encodeMap(st, v, depth)
	case reflect.Struct:
		e.encodeStruct(st, v, depth)
	case reflect.Pointer:
		e.encodePointer(st, v, depth)
	case reflect.Interface:
		e.encodeInterface(st, v, depth)
	default:
		e.fail(errf("cannot pickle value of kind %v (%v)", v.Kind(), v.Type()))
	}
}

func (e *Encoder) encodeSlice(st *encState, v reflect.Value, depth int) {
	if v.IsNil() {
		e.writeByte(tNil)
		return
	}
	if v.Type().Elem().Kind() == reflect.Uint8 {
		e.writeByte(tBytes)
		b := v.Bytes()
		e.writeUvarint(uint64(len(b)))
		e.write(b)
		return
	}
	e.writeByte(tSlice)
	e.writeUvarint(uint64(v.Len()))
	for i := 0; i < v.Len(); i++ {
		e.encodeValue(st, v.Index(i), depth+1)
	}
}

func (e *Encoder) encodeMap(st *encState, v reflect.Value, depth int) {
	if v.IsNil() {
		e.writeByte(tNil)
		return
	}
	if id, ok := st.refs[v.Pointer()]; ok {
		e.writeByte(tRef)
		e.writeUvarint(id)
		return
	}
	id := st.nextRef
	st.nextRef++
	st.refs[v.Pointer()] = id
	e.writeByte(tMap)
	e.writeUvarint(id)
	e.writeUvarint(uint64(v.Len()))
	// Deterministic output for primitive-keyed maps: sort the keys by
	// value so the same logical map always pickles to the same bytes,
	// making checkpoints reproducible and diffable. Maps with composite
	// keys are emitted in iteration order; their decode is unaffected.
	keys := v.MapKeys()
	sortKeys(keys)
	for _, k := range keys {
		e.encodeValue(st, k, depth+1)
		e.encodeValue(st, v.MapIndex(k), depth+1)
	}
}

func sortKeys(keys []reflect.Value) {
	if len(keys) == 0 {
		return
	}
	var less func(a, b reflect.Value) bool
	switch keys[0].Kind() {
	case reflect.String:
		less = func(a, b reflect.Value) bool { return a.String() < b.String() }
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		less = func(a, b reflect.Value) bool { return a.Int() < b.Int() }
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		less = func(a, b reflect.Value) bool { return a.Uint() < b.Uint() }
	case reflect.Float32, reflect.Float64:
		less = func(a, b reflect.Value) bool { return a.Float() < b.Float() }
	case reflect.Bool:
		less = func(a, b reflect.Value) bool { return !a.Bool() && b.Bool() }
	default:
		return
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
}

// structFields caches, per struct type, the exported fields we pickle.
var structFields sync.Map // reflect.Type -> []fieldInfo

type fieldInfo struct {
	name  string
	index int
}

func fieldsOf(rt reflect.Type) []fieldInfo {
	if f, ok := structFields.Load(rt); ok {
		return f.([]fieldInfo)
	}
	var fields []fieldInfo
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		name := f.Name
		if tag, ok := f.Tag.Lookup("pickle"); ok {
			if tag == "-" {
				continue
			}
			name = tag
		}
		fields = append(fields, fieldInfo{name: name, index: i})
	}
	structFields.Store(rt, fields)
	return fields
}

func (e *Encoder) encodeStruct(st *encState, v reflect.Value, depth int) {
	rt := v.Type()
	fields := fieldsOf(rt)
	e.writeByte(tStruct)
	id, known := e.types[rt]
	if !known {
		id = uint64(len(e.types))
		e.types[rt] = id
		e.writeUvarint(id)
		// Inline definition, emitted exactly once per Encoder at the
		// first use of the type: name, field count, field names.
		name := rt.String()
		e.writeString(name)
		e.writeUvarint(uint64(len(fields)))
		for _, f := range fields {
			e.writeString(f.name)
		}
	} else {
		e.writeUvarint(id)
	}
	for _, f := range fields {
		e.encodeValue(st, v.Field(f.index), depth+1)
	}
}

func (e *Encoder) encodePointer(st *encState, v reflect.Value, depth int) {
	if v.IsNil() {
		e.writeByte(tNil)
		return
	}
	if id, ok := st.refs[v.Pointer()]; ok {
		e.writeByte(tRef)
		e.writeUvarint(id)
		return
	}
	id := st.nextRef
	st.nextRef++
	st.refs[v.Pointer()] = id
	e.writeByte(tPtr)
	e.writeUvarint(id)
	e.encodeValue(st, v.Elem(), depth+1)
}

func (e *Encoder) encodeInterface(st *encState, v reflect.Value, depth int) {
	if v.IsNil() {
		e.writeByte(tNil)
		return
	}
	elem := v.Elem()
	name, ok := lookupName(elem.Type())
	if !ok {
		e.fail(errf("interface holds unregistered concrete type %v; call pickle.Register", elem.Type()))
		return
	}
	e.writeByte(tIface)
	e.writeString(name)
	e.encodeValue(st, elem, depth+1)
}
