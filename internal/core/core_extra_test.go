package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"smalldb/internal/vfs"
)

// Acked group-commit updates must survive a crash: the wait() only returns
// after the shared sync covers the update.
func TestGroupCommitAckedDurable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fs := vfs.NewMem(seed)
		s := openKV(t, fs, func(c *Config) { c.GroupCommit = true })

		const writers, each = 4, 10
		var wg sync.WaitGroup
		acked := make([][]string, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					k := fmt.Sprintf("w%d-%d", w, i)
					if err := s.Apply(&putKV{Key: k, Value: "v"}); err != nil {
						return
					}
					acked[w] = append(acked[w], k)
				}
			}(w)
		}
		wg.Wait()
		// Crash without Close: anything acked must be on disk already.
		fs.CrashTorn(512)

		s2, err := Open(Config{FS: fs, NewRoot: newKV})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for w := range acked {
			for _, k := range acked[w] {
				if _, ok := get(t, s2, k); !ok {
					t.Fatalf("seed %d: acked group-commit update %s lost", seed, k)
				}
			}
		}
		s2.Close()
	}
}

func TestLogBytesResetAfterCheckpoint(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	if s.Stats().LogBytes == 0 {
		t.Fatal("log empty after updates")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LogBytes != 0 || st.LogEntries != 0 {
		t.Errorf("log not reset: %d bytes, %d entries", st.LogBytes, st.LogEntries)
	}
}

func TestViewErrorPropagates(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	boom := errors.New("reader error")
	if err := s.View(func(any) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("got %v", err)
	}
}

func TestCloseDuringCheckpointTimer(t *testing.T) {
	// Close must stop the timer goroutine without racing a checkpoint.
	for i := 0; i < 20; i++ {
		fs := vfs.NewMem(int64(i))
		s := openKV(t, fs)
		s.CheckpointEvery(time.Millisecond)
		put(t, s, "k", "v")
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentCheckpointsSerialize(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.Checkpoint()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Versions advanced by exactly 8 (each checkpoint serialized).
	if v := s.Version(); v != 9 {
		t.Errorf("version %d after 8 checkpoints", v)
	}
}

func TestUpdatesDuringCheckpointBlockButComplete(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()
	for i := 0; i < 500; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	done := make(chan error, 1)
	go func() { done <- s.Checkpoint() }()
	// Updates issued while the checkpoint runs must succeed afterwards.
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("during%d", i), "v")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := get(t, s, fmt.Sprintf("during%d", i)); !ok {
			t.Fatalf("during%d lost", i)
		}
	}
}

func TestOpenConfigValidation(t *testing.T) {
	if _, err := Open(Config{NewRoot: newKV}); err == nil {
		t.Error("missing FS accepted")
	}
	if _, err := Open(Config{FS: vfs.NewMem(1)}); err == nil {
		t.Error("missing NewRoot accepted")
	}
}

func TestRetainZeroMatchesPaperBaseProtocol(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.Retain = 0 })
	put(t, s, "a", "1")
	s.Checkpoint()
	put(t, s, "b", "2")
	s.Checkpoint()
	s.Close()
	names, _ := fs.List()
	// Exactly: checkpoint3, logfile3, version.
	if len(names) != 3 {
		t.Errorf("directory after two checkpoints with retain 0: %v", names)
	}
}
