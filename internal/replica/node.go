package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// Config configures a replica node.
type Config struct {
	// Name identifies this node in update stamps; it must be unique
	// across the replica set and stable across restarts.
	Name string
	// FS holds this node's own checkpoint and log files.
	FS vfs.FS
	// HistoryCap bounds the anti-entropy history kept in the database.
	HistoryCap int
	// Retain and the checkpoint policies pass through to the store.
	Retain        int
	MaxLogBytes   int64
	MaxLogEntries int64
	// UnsafeNoSync passes through to the store: the node forfeits local
	// durability and relies on its peers to restore lost updates — the §4
	// replica story, where "we respond to a hard error ... by restoring
	// its data from another replica". The crashtest harness uses it to
	// exercise exactly that recovery path.
	UnsafeNoSync bool
	// ReplayWorkers passes through to the store's restart decode
	// pipeline (0 = auto, 1 = sequential).
	ReplayWorkers int
	// LogShards passes through: >1 splits the node's redo log into that
	// many parallel streams under epoch-based group commit.
	LogShards int
	// SerialLogSync passes through: sharded epoch seals sync their streams
	// one at a time, in stream order (the crash-sweep determinism knob).
	SerialLogSync bool
	// BlockingCheckpoint passes through: checkpoints hold the update
	// lock for their whole duration instead of the default
	// mirror-window protocol.
	BlockingCheckpoint bool
	// LockedEnquiries passes through: enquiries take the shared lock
	// instead of reading lock-free published snapshots (the ablation).
	LockedEnquiries bool
	// FullCheckpoints passes through: every checkpoint writes the full
	// root instead of the default incremental delta chained onto the last
	// full image (the checkpoint_scaling ablation).
	FullCheckpoints bool
	// MaxDeltaChain and MaxDeltaRatio pass through: the delta-chain
	// compaction thresholds (0 = the store defaults).
	MaxDeltaChain int
	MaxDeltaRatio float64
	// SerialCompaction passes through: a due compaction runs synchronously
	// inside the checkpoint that tripped it (the crash-sweep determinism
	// knob).
	SerialCompaction bool
	// Obs and Tracer pass through to the store and additionally receive
	// the replication metrics (replica_*) and the replica.push /
	// replica.antientropy events.
	Obs    *obs.Registry
	Tracer obs.Tracer
	// PushPolicy bounds the retrying push of each committed update to
	// each peer (the zero value means the rpc defaults: 2s budget,
	// exponential backoff with jitter). A push that exhausts its policy
	// is simply dropped — the peer catches up through anti-entropy — so
	// the budget is how long Apply is willing to stall absorbing
	// transient network faults before handing the update to the
	// background repair path.
	PushPolicy rpc.RetryPolicy
	// SyncPolicy bounds each anti-entropy RPC (Pull, Snapshot) the same
	// way. Both policies ride on idempotency tokens, so a retried push
	// never double-applies even if the first attempt executed and only
	// its response was lost.
	SyncPolicy rpc.RetryPolicy
}

// Node is one replica: a full store plus the propagation machinery.
type Node struct {
	name  string
	store *core.Store

	m      nodeMetrics
	tracer obs.Tracer

	pushPolicy rpc.RetryPolicy
	syncPolicy rpc.RetryPolicy

	mu    sync.Mutex // serializes local sequence assignment
	peers map[string]*rpc.Client

	stopAE chan struct{}
	aeWG   sync.WaitGroup
}

// nodeMetrics is the replication-layer instrumentation; all fields are
// nil-safe.
type nodeMetrics struct {
	pushes       *obs.Counter   // propagation attempts (one per peer per local update)
	pushErrors   *obs.Counter   // failed pushes (the peer catches up by anti-entropy)
	pushLag      *obs.Histogram // local commit → peer ack, ns
	aeRounds     *obs.Counter   // anti-entropy pulls completed
	aeErrors     *obs.Counter   // anti-entropy pulls failed
	aeApplied    *obs.Counter   // divergence repairs: entries applied by anti-entropy
	fullRestores *obs.Counter   // snapshot installs (history trimmed or hard error)
}

func newNodeMetrics(reg *obs.Registry) nodeMetrics {
	return nodeMetrics{
		pushes:       reg.Counter("replica_pushes"),
		pushErrors:   reg.Counter("replica_push_errors"),
		pushLag:      reg.Histogram("replica_push_lag_ns"),
		aeRounds:     reg.Counter("replica_ae_rounds"),
		aeErrors:     reg.Counter("replica_ae_errors"),
		aeApplied:    reg.Counter("replica_ae_applied"),
		fullRestores: reg.Counter("replica_full_restores"),
	}
}

// Open recovers (or initializes) a replica node.
func Open(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("replica: Config.Name is required")
	}
	st, err := core.Open(core.Config{
		FS:                 cfg.FS,
		NewRoot:            NewRootWithCap(cfg.HistoryCap),
		Retain:             cfg.Retain,
		MaxLogBytes:        cfg.MaxLogBytes,
		MaxLogEntries:      cfg.MaxLogEntries,
		UnsafeNoSync:       cfg.UnsafeNoSync,
		ReplayWorkers:      cfg.ReplayWorkers,
		LogShards:          cfg.LogShards,
		SerialLogSync:      cfg.SerialLogSync,
		BlockingCheckpoint: cfg.BlockingCheckpoint,
		LockedEnquiries:    cfg.LockedEnquiries,
		FullCheckpoints:    cfg.FullCheckpoints,
		MaxDeltaChain:      cfg.MaxDeltaChain,
		MaxDeltaRatio:      cfg.MaxDeltaRatio,
		SerialCompaction:   cfg.SerialCompaction,
		Obs:                cfg.Obs,
		Tracer:             cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &Node{
		name:       cfg.Name,
		store:      st,
		m:          newNodeMetrics(cfg.Obs),
		tracer:     cfg.Tracer,
		pushPolicy: cfg.PushPolicy,
		syncPolicy: cfg.SyncPolicy,
		peers:      make(map[string]*rpc.Client),
	}, nil
}

// Name reports the node's name.
func (n *Node) Name() string { return n.name }

// Store exposes the underlying store.
func (n *Node) Store() *core.Store { return n.store }

// AddPeer connects this node to a peer's RPC endpoint. The client adopts
// the node's tracer so retrying pushes record per-attempt spans.
func (n *Node) AddPeer(name string, client *rpc.Client) {
	client.SetTracer(n.tracer)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = client
}

// --- local operations ---

// Apply commits an inner update locally (stamped with this node's next
// sequence number) and then pushes it to every peer, best-effort: a peer
// that is down catches up later through anti-entropy.
func (n *Node) Apply(inner core.Update) error {
	return n.ApplyTraced(inner, obs.SpanContext{})
}

// ApplyTraced is Apply under a trace context: the local commit's phase
// spans, the per-peer push (with its rpc attempts), and the peer's remote
// apply all land in the caller's trace.
func (n *Node) ApplyTraced(inner core.Update, sc obs.SpanContext) error {
	n.mu.Lock()
	var seq, stamp uint64
	err := n.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		seq = r.Vector[n.name] + 1
		stamp = r.Clock + 1
		return nil
	})
	if err != nil {
		n.mu.Unlock()
		return err
	}
	ru := &Replicated{Origin: n.name, Seq: seq, Stamp: stamp, Inner: inner}
	err = n.store.ApplyTraced(ru, sc)
	peers := make([]*rpc.Client, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	if err != nil {
		return err
	}
	committed := time.Now()
	entry := Entry{Origin: n.name, Seq: seq, Stamp: stamp, Inner: inner}
	for _, p := range peers {
		// The push is a child span of the caller's trace, and its own
		// context rides the wire so the peer's apply joins the trace too.
		pspan := obs.StartSpan(n.tracer, sc, "replica.push")
		wire := sc
		if pspan.Active() {
			wire = pspan.Context()
		}
		var reply PushReply
		perr := p.CallRetryTraced(wire, "Replica.Push", &PushArgs{Entries: []Entry{entry}}, &reply, n.pushPolicy)
		n.m.pushes.Inc()
		if perr != nil {
			n.m.pushErrors.Inc()
		} else {
			// Push lag: how far behind a peer runs between our commit
			// point and its acknowledgement of the propagated update.
			n.m.pushLag.ObserveSince(committed)
		}
		if pspan.Active() {
			pspan.End(perr, obs.A("origin", n.name), obs.A("seq", seq), obs.A("peer", reply.Node))
			if perr == nil && reply.Node != "" {
				// Echo the peer's apply time into our own collector so the
				// single-node timeline shows the remote side of the push.
				d := time.Duration(reply.ApplyNS)
				n.tracer.Emit(obs.Event{
					Name:   "replica.remote_apply",
					Time:   time.Now().Add(-d),
					Dur:    d,
					Trace:  wire.Trace,
					Span:   obs.NewSpanID(),
					Parent: wire.Span,
					Attrs:  []obs.Attr{obs.A("node", reply.Node), obs.A("applied", reply.Applied)},
				})
			}
		} else {
			obs.Emit(n.tracer, obs.Event{Name: "replica.push", Dur: time.Since(committed), Err: perr, Attrs: []obs.Attr{
				obs.A("origin", n.name), obs.A("seq", seq),
			}})
		}
	}
	return nil
}

// ApplyBatch commits a batch of local updates through one store batch —
// one epoch barrier on a sharded log — stamping each with consecutive
// local sequence numbers, then pushes the whole batch to every peer in a
// single RPC. Prefix semantics follow core.Store.ApplyBatch: on error the
// already-verified prefix is committed (and pushed) and the error returned.
func (n *Node) ApplyBatch(inners []core.Update) error {
	if len(inners) == 0 {
		return nil
	}
	n.mu.Lock()
	var seq, stamp uint64
	err := n.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		seq = r.Vector[n.name]
		stamp = r.Clock
		return nil
	})
	if err != nil {
		n.mu.Unlock()
		return err
	}
	us := make([]core.Update, len(inners))
	entries := make([]Entry, len(inners))
	for i, inner := range inners {
		us[i] = &Replicated{Origin: n.name, Seq: seq + uint64(i) + 1, Stamp: stamp + uint64(i) + 1, Inner: inner}
		entries[i] = Entry{Origin: n.name, Seq: seq + uint64(i) + 1, Stamp: stamp + uint64(i) + 1, Inner: inner}
	}
	batchErr := n.store.ApplyBatch(us)
	committedN := len(entries)
	if batchErr != nil {
		// Only the applied prefix may be pushed; anti-entropy would
		// otherwise resurrect updates this node never committed.
		committedN = int(mustVectorSeq(n.store, n.name) - seq)
		if committedN < 0 {
			committedN = 0
		}
	}
	peers := make([]*rpc.Client, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	if committedN > 0 {
		committed := time.Now()
		for _, p := range peers {
			var reply PushReply
			perr := p.CallRetry("Replica.Push", &PushArgs{Entries: entries[:committedN]}, &reply, n.pushPolicy)
			n.m.pushes.Inc()
			if perr != nil {
				n.m.pushErrors.Inc()
			} else {
				n.m.pushLag.ObserveSince(committed)
			}
			obs.Emit(n.tracer, obs.Event{Name: "replica.push", Dur: time.Since(committed), Err: perr, Attrs: []obs.Attr{
				obs.A("origin", n.name), obs.A("seq", seq+uint64(committedN)), obs.A("batch", committedN),
			}})
		}
	}
	return batchErr
}

// commitLocal commits a batch of inner updates locally — stamping each
// with this node's consecutive sequence numbers — without pushing to any
// peer. It returns the committed entries; on a batch error the applied
// prefix is returned alongside the error (core.Store.ApplyBatch prefix
// semantics). Group mode uses it as the first half of quorum commit: the
// group's per-member push streams take propagation from there.
func (n *Node) commitLocal(inners []core.Update, sc obs.SpanContext) ([]Entry, error) {
	if len(inners) == 0 {
		return nil, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var seq, stamp uint64
	err := n.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		seq = r.Vector[n.name]
		stamp = r.Clock
		return nil
	})
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, len(inners))
	for i, inner := range inners {
		entries[i] = Entry{Origin: n.name, Seq: seq + uint64(i) + 1, Stamp: stamp + uint64(i) + 1, Inner: inner}
	}
	if len(inners) == 1 {
		if err := n.store.ApplyTraced(&Replicated{Origin: n.name, Seq: entries[0].Seq, Stamp: entries[0].Stamp, Inner: inners[0]}, sc); err != nil {
			return nil, err
		}
		return entries, nil
	}
	us := make([]core.Update, len(inners))
	for i := range inners {
		us[i] = &Replicated{Origin: n.name, Seq: entries[i].Seq, Stamp: entries[i].Stamp, Inner: inners[i]}
	}
	batchErr := n.store.ApplyBatch(us)
	committedN := len(entries)
	if batchErr != nil {
		committedN = int(mustVectorSeq(n.store, n.name) - seq)
		if committedN < 0 {
			committedN = 0
		}
	}
	return entries[:committedN], batchErr
}

// mustVectorSeq reads the node's own vector entry, 0 on any error (the
// caller is already on an error path).
func mustVectorSeq(st *core.Store, name string) uint64 {
	var v uint64
	_ = st.View(func(root any) error {
		if r, err := rootOf(root); err == nil {
			v = r.Vector[name]
		}
		return nil
	})
	return v
}

// Set, Delete and Lookup are name-tree conveniences over Apply/View.

// Set binds value to name in the replicated tree.
func (n *Node) Set(name, value string) error {
	return n.SetTraced(name, value, obs.SpanContext{})
}

// SetTraced is Set under a trace context.
func (n *Node) SetTraced(name, value string, sc obs.SpanContext) error {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return err
	}
	return n.ApplyTraced(&nameserver.SetValue{Path: parts, Value: value}, sc)
}

// Delete removes name and its subtree.
func (n *Node) Delete(name string) error {
	return n.DeleteTraced(name, obs.SpanContext{})
}

// DeleteTraced is Delete under a trace context.
func (n *Node) DeleteTraced(name string, sc obs.SpanContext) error {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return err
	}
	return n.ApplyTraced(&nameserver.DeleteSubtree{Path: parts}, sc)
}

// Lookup reads the value bound to name.
func (n *Node) Lookup(name string) (string, error) {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return "", err
	}
	var out string
	err = n.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		t := r.Tree
		v, err := lookupTree(t, parts)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out, err
}

func lookupTree(t *nameserver.Tree, parts []string) (string, error) {
	n := t.Root
	for _, p := range parts {
		if n == nil || n.Children == nil {
			return "", nameserver.ErrNotFound
		}
		n = n.Children[p]
	}
	if n == nil {
		return "", nameserver.ErrNotFound
	}
	if !n.HasValue {
		return "", nameserver.ErrNoValue
	}
	return n.Value, nil
}

// ErrStale marks a bounded-staleness read served by a member whose durable
// frontier has not yet reached the caller's MinSeq floor; the caller should
// catch the member up or redirect to a fresher one.
var ErrStale = errors.New("replica: member frontier below requested MinSeq")

// IsStale reports whether err marks a stale bounded-staleness read from a
// local member. Remote enquiries do not surface staleness as an error at
// all — typed errors would not survive the RPC wire — so Service.Read
// answers with ReadReply.Stale set instead; RPC clients check that flag.
func IsStale(err error) bool {
	return errors.Is(err, ErrStale)
}

// Frontier reports the node's durable read frontier: the sum of its version
// vector as of the latest published (durability-bounded) snapshot. The sum
// is monotone — every apply raises exactly one slot by one — and in the
// single-writer case equals the origin's sequence number; it is the seq a
// bounded-staleness read quotes as "this read reflects everything up to s".
func (n *Node) Frontier() (uint64, error) {
	_, f, err := n.readSnapshot(nil)
	return f, err
}

// ReadAt serves a bounded-staleness enquiry from this member: it reads name
// from the latest published snapshot and reports the durable frontier seq
// the read reflects. If that frontier is below minSeq the read fails with
// ErrStale (wrapping the observed frontier in its message) and no value —
// the caller catches this member up or redirects.
func (n *Node) ReadAt(name string, minSeq uint64) (value string, frontier uint64, err error) {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return "", 0, err
	}
	var v string
	var lerr error
	_, frontier, err = n.readSnapshot(func(r *Root) {
		v, lerr = lookupTree(r.Tree, parts)
	})
	if err != nil {
		return "", 0, err
	}
	if frontier < minSeq {
		return "", frontier, fmt.Errorf("%w: frontier %d < %d", ErrStale, frontier, minSeq)
	}
	return v, frontier, lerr
}

// readSnapshot runs fn against a consistent root view and returns the
// durable frontier that view reflects. It prefers the lock-free published
// snapshot (whose seq is bounded by the durable frontier); stores without
// versioned roots fall back to a locked View.
func (n *Node) readSnapshot(fn func(r *Root)) (seq uint64, frontier uint64, err error) {
	if sn, serr := n.store.SnapshotAt(); serr == nil {
		defer sn.Release()
		r, rerr := rootOf(sn.Root())
		if rerr != nil {
			return 0, 0, rerr
		}
		if fn != nil {
			fn(r)
		}
		return sn.Seq(), vectorSum(r.Vector), nil
	}
	err = n.store.View(func(root any) error {
		r, rerr := rootOf(root)
		if rerr != nil {
			return rerr
		}
		frontier = vectorSum(r.Vector)
		if fn != nil {
			fn(r)
		}
		return nil
	})
	return frontier, frontier, err
}

// Vector snapshots this node's version vector.
func (n *Node) Vector() (map[string]uint64, error) {
	var out map[string]uint64
	err := n.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		out = copyVector(r.Vector)
		return nil
	})
	return out, err
}

// applyEntries applies remote entries in order, skipping already-applied
// ones and stopping an origin's run at a gap. It reports how many entries
// were newly applied.
func (n *Node) applyEntries(entries []Entry) (applied int, err error) {
	return n.applyEntriesTraced(entries, obs.SpanContext{})
}

// applyEntriesTraced is applyEntries under a trace context: each entry's
// local commit records its phase spans into the pushing side's trace.
func (n *Node) applyEntriesTraced(entries []Entry, sc obs.SpanContext) (applied int, err error) {
	for _, e := range entries {
		aerr := n.store.ApplyTraced(&Replicated{Origin: e.Origin, Seq: e.Seq, Stamp: e.Stamp, Inner: e.Inner}, sc)
		switch {
		case aerr == nil:
			applied++
		case errors.Is(aerr, ErrAlreadyApplied):
			// fine: duplicate delivery
		case errors.Is(aerr, ErrSequenceGap):
			// later anti-entropy round will fill it
		default:
			// An inner precondition failure against our state:
			// the update was valid where it committed, so force
			// convergence is impossible for this entry; skip it
			// but surface the error.
			err = aerr
		}
	}
	return applied, err
}

// --- anti-entropy ---

// SyncWith pulls everything this node is missing from one peer. If the
// peer's history has been trimmed past what we need, it falls back to a
// full snapshot transfer.
func (n *Node) SyncWith(client *rpc.Client) error {
	// An anti-entropy round is its own trace root: the pull, any snapshot
	// transfer, and every repaired entry's commit chain under it.
	root := obs.StartRoot(n.tracer, "replica.antientropy")
	start := time.Now()
	applied, full, err := n.syncWith(client, root.Context())
	if err != nil {
		n.m.aeErrors.Inc()
	} else {
		n.m.aeRounds.Inc()
		n.m.aeApplied.Add(uint64(applied))
	}
	if root.Active() {
		root.End(err, obs.A("applied", applied), obs.A("full_snapshot", full))
	} else {
		obs.Emit(n.tracer, obs.Event{Name: "replica.antientropy", Dur: time.Since(start), Err: err, Attrs: []obs.Attr{
			obs.A("applied", applied), obs.A("full_snapshot", full),
		}})
	}
	return err
}

func (n *Node) syncWith(client *rpc.Client, sc obs.SpanContext) (applied int, full bool, err error) {
	vec, err := n.Vector()
	if err != nil {
		return 0, false, err
	}
	var reply PullReply
	if err := client.CallRetryTraced(sc, "Replica.Pull", &PullArgs{Vector: vec}, &reply, n.syncPolicy); err != nil {
		return 0, false, err
	}
	if reply.NeedFull {
		var snap SnapshotReply
		if err := client.CallRetryTraced(sc, "Replica.Snapshot", &SnapshotArgs{}, &snap, n.syncPolicy); err != nil {
			return 0, true, err
		}
		return 0, true, n.installSnapshot(snap.Root)
	}
	applied, err = n.applyEntriesTraced(reply.Entries, sc)
	return applied, false, err
}

// AntiEntropyEvery starts a background loop syncing with every peer at the
// given interval — the paper's long-term replica consistency mechanism.
func (n *Node) AntiEntropyEvery(interval time.Duration) {
	n.mu.Lock()
	if n.stopAE != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.stopAE = stop
	n.mu.Unlock()
	n.aeWG.Add(1)
	go func() {
		defer n.aeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				n.mu.Lock()
				peers := make([]*rpc.Client, 0, len(n.peers))
				for _, p := range n.peers {
					peers = append(peers, p)
				}
				n.mu.Unlock()
				for _, p := range peers {
					_ = n.SyncWith(p)
				}
			}
		}
	}()
}

// installSnapshot replaces this node's entire state with a peer's snapshot,
// keeping our own-origin updates if we are ahead (they will re-propagate).
func (n *Node) installSnapshot(snap *Root) error {
	if snap == nil {
		return fmt.Errorf("replica: nil snapshot")
	}
	err := n.store.Apply(&installSnapshot{Snap: snap})
	if err == nil {
		n.m.fullRestores.Inc()
	}
	return err
}

// installSnapshot is an update that replaces the whole root in place; it is
// logged like any other update, so it is itself crash-consistent.
type installSnapshot struct {
	Snap *Root
}

func init() { core.RegisterUpdate(&installSnapshot{}) }

// Verify implements core.Update.
func (u *installSnapshot) Verify(root any) error {
	if u.Snap == nil || u.Snap.Tree == nil {
		return fmt.Errorf("replica: malformed snapshot")
	}
	_, err := rootOf(root)
	return err
}

// Apply implements core.Update.
func (u *installSnapshot) Apply(root any) error {
	r, err := rootOf(root)
	if err != nil {
		return err
	}
	r.Tree = u.Snap.Tree
	r.Vector = copyVector(u.Snap.Vector)
	if u.Snap.Clock > r.Clock {
		r.Clock = u.Snap.Clock
	}
	r.History = append([]Entry(nil), u.Snap.History...)
	if u.Snap.HistoryCap > 0 {
		r.HistoryCap = u.Snap.HistoryCap
	}
	return nil
}

// RestoreFromPeer rebuilds a replica from a peer's full snapshot — the
// paper's hard-error recovery. Call it on a freshly opened (empty or
// reinitialized) node whose disk was lost; the node loses only updates that
// had not propagated anywhere.
func (n *Node) RestoreFromPeer(client *rpc.Client) error {
	var snap SnapshotReply
	if err := client.CallRetry("Replica.Snapshot", &SnapshotArgs{}, &snap, n.syncPolicy); err != nil {
		return err
	}
	return n.installSnapshot(snap.Root)
}

// Checkpoint forwards to the store.
func (n *Node) Checkpoint() error { return n.store.Checkpoint() }

// Close stops anti-entropy and closes the store.
func (n *Node) Close() error {
	n.mu.Lock()
	stop := n.stopAE
	n.stopAE = nil
	peers := n.peers
	n.peers = map[string]*rpc.Client{}
	n.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	n.aeWG.Wait()
	for _, p := range peers {
		p.Close()
	}
	return n.store.Close()
}

// --- RPC service ---

// Service is the RPC face of a node; register it as "Replica".
type Service struct {
	node *Node
}

// NewService returns the RPC service for a node.
func NewService(n *Node) *Service { return &Service{node: n} }

// PushArgs carries propagated updates.
type PushArgs struct {
	Entries []Entry
}

// PushReply reports how many entries were newly applied, which node
// applied them, and how long the remote apply took — the origin echoes
// Node/ApplyNS into its trace as the remote half of the push. Vector is
// the member's full post-apply version vector: it is the authoritative
// per-origin ack, and quorum commit counts an ack only when the pusher's
// own slot in it covers the pushed entries, because a push that races
// ahead of its predecessors is silently skipped as a sequence gap
// (applied = 0, no error) and must not count. Seq duplicates the slot for
// the origin of the last pushed entry — only meaningful for single-origin
// batches; multi-origin pushers (anti-entropy repair) must read Vector,
// since a (origin, seq)-sorted batch can end on another origin's slot.
type PushReply struct {
	Applied int
	Node    string
	ApplyNS int64
	Seq     uint64
	Vector  map[string]uint64
}

// Push applies propagated updates. It takes the rpc layer's span context,
// so a traced push records the remote applies into this node's collector
// under the origin's trace ID.
func (s *Service) Push(args *PushArgs, reply *PushReply, sc obs.SpanContext) error {
	start := time.Now()
	applied, err := s.node.applyEntriesTraced(args.Entries, sc)
	reply.Applied = applied
	reply.Node = s.node.name
	reply.ApplyNS = int64(time.Since(start))
	if vec, verr := s.node.Vector(); verr == nil {
		reply.Vector = vec
		if len(args.Entries) > 0 {
			reply.Seq = vec[args.Entries[len(args.Entries)-1].Origin]
		}
	}
	return err
}

// PullArgs carries the caller's version vector.
type PullArgs struct {
	Vector map[string]uint64
}

// PullReply carries the entries the caller is missing, or NeedFull if the
// history has been trimmed past the caller's vector.
type PullReply struct {
	Entries  []Entry
	NeedFull bool
}

// Pull computes the missing suffix for a caller's vector.
func (s *Service) Pull(args *PullArgs, reply *PullReply) error {
	return s.node.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		reply.Entries, reply.NeedFull = r.missingFrom(args.Vector)
		return nil
	})
}

// SnapshotArgs requests a full snapshot.
type SnapshotArgs struct{}

// SnapshotReply carries a deep copy of the node's entire root.
type SnapshotReply struct {
	Root *Root
}

// Snapshot returns the node's full state.
func (s *Service) Snapshot(args *SnapshotArgs, reply *SnapshotReply) error {
	return s.node.store.View(func(root any) error {
		r, err := rootOf(root)
		if err != nil {
			return err
		}
		// Deep-copy via pickle: the reply outlives the shared lock.
		data, err := pickle.Marshal(r)
		if err != nil {
			return err
		}
		var cp Root
		if err := pickle.Unmarshal(data, &cp); err != nil {
			return err
		}
		reply.Root = &cp
		return nil
	})
}

// VectorArgs requests a member's version vector.
type VectorArgs struct{}

// VectorReply carries the member's version vector and durable frontier.
type VectorReply struct {
	Vector   map[string]uint64
	Frontier uint64
	Node     string
}

// Vector reports this member's version vector — the group primary's
// anti-entropy loop uses it to compute the missing suffix to push.
func (s *Service) Vector(args *VectorArgs, reply *VectorReply) error {
	vec, err := s.node.Vector()
	if err != nil {
		return err
	}
	reply.Vector = vec
	reply.Frontier = vectorSum(vec)
	reply.Node = s.node.name
	return nil
}

// InstallArgs carries a full snapshot pushed to a member whose lag has
// outrun the history — the push-style dual of Snapshot/RestoreFromPeer.
type InstallArgs struct {
	Root *Root
}

// InstallReply acknowledges a snapshot install.
type InstallReply struct {
	Node     string
	Frontier uint64
}

// Install replaces this member's state with the pushed snapshot.
func (s *Service) Install(args *InstallArgs, reply *InstallReply) error {
	if err := s.node.installSnapshot(args.Root); err != nil {
		return err
	}
	reply.Node = s.node.name
	if vec, err := s.node.Vector(); err == nil {
		reply.Frontier = vectorSum(vec)
	}
	return nil
}

// ReadArgs is a bounded-staleness enquiry: the member may answer from its
// own durable frontier as long as that frontier is at least MinSeq.
type ReadArgs struct {
	Name   string
	MinSeq uint64
}

// ReadReply carries the value and the durable frontier seq the read
// reflects — the staleness witness a client uses to ratchet MinSeq. Stale
// is the structured wire form of ErrStale: the member's frontier (echoed
// in Frontier) never reached the caller's MinSeq floor, no value was
// read, and the client should redirect to a fresher member.
type ReadReply struct {
	Value    string
	Frontier uint64
	Node     string
	Stale    bool
}

// Read serves a bounded-staleness enquiry. A member behind the MinSeq
// floor first tries to catch itself up with one anti-entropy round against
// each of its peers; if still behind it answers with Stale set (typed
// errors do not survive the RPC wire, so staleness is a reply field, not
// an error) and the client redirects to a fresher member.
func (s *Service) Read(args *ReadArgs, reply *ReadReply) error {
	v, frontier, err := s.node.ReadAt(args.Name, args.MinSeq)
	if IsStale(err) {
		s.node.mu.Lock()
		peers := make([]*rpc.Client, 0, len(s.node.peers))
		for _, p := range s.node.peers {
			peers = append(peers, p)
		}
		s.node.mu.Unlock()
		for _, p := range peers {
			if s.node.SyncWith(p) != nil {
				continue
			}
			if v, frontier, err = s.node.ReadAt(args.Name, args.MinSeq); !IsStale(err) {
				break
			}
		}
	}
	if IsStale(err) {
		reply.Frontier = frontier
		reply.Node = s.node.name
		reply.Stale = true
		return nil
	}
	if err != nil {
		return err
	}
	reply.Value = v
	reply.Frontier = frontier
	reply.Node = s.node.name
	return nil
}

func init() {
	pickle.Register(&PushArgs{})
	pickle.Register(&PushReply{})
	pickle.Register(&PullArgs{})
	pickle.Register(&PullReply{})
	pickle.Register(&SnapshotArgs{})
	pickle.Register(&SnapshotReply{})
	pickle.Register(&VectorArgs{})
	pickle.Register(&VectorReply{})
	pickle.Register(&InstallArgs{})
	pickle.Register(&InstallReply{})
	pickle.Register(&ReadArgs{})
	pickle.Register(&ReadReply{})
}
