package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// An Event is one structured trace record: an update committed, a
// checkpoint started or finished, replay progress, a log flush, a lock
// wait, an RPC call, a replica push or anti-entropy round. Dur is zero for
// instantaneous events; Err is nil for successful ones.
type Event struct {
	Name  string
	Dur   time.Duration
	Err   error
	Attrs []Attr
}

// An Attr is one key/value annotation on an event.
type Attr struct {
	Key   string
	Value any
}

// A formats an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// String renders the event on one line: name, duration, error, attributes.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", e.Dur.Round(time.Microsecond))
	}
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%q", e.Err.Error())
	}
	return b.String()
}

// A Tracer receives structured events. Implementations must be safe for
// concurrent use; Emit is called on hot paths and should be cheap.
type Tracer interface {
	Emit(e Event)
}

// Nop is the default tracer; it discards every event.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Emit(Event) {}

// Emit sends e to t if t is non-nil — the helper subsystems use so an
// unconfigured tracer costs one nil check.
func Emit(t Tracer, e Event) {
	if t != nil {
		t.Emit(e)
	}
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Emit implements Tracer.
func (f FuncTracer) Emit(e Event) { f(e) }

// Multi fans every event out to each tracer in order; nil entries are
// skipped, and an empty set behaves as Nop.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil && t != Nop {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// SlowOps returns a tracer that forwards to logf only the events whose
// duration meets threshold or that carry an error — the "why was that
// update slow" tracer a production daemon runs by default.
func SlowOps(threshold time.Duration, logf func(format string, args ...any)) Tracer {
	return FuncTracer(func(e Event) {
		if e.Err != nil || (e.Dur >= threshold && e.Dur > 0) {
			logf("obs: slow op: %s", e)
		}
	})
}

// A Recorder is a tracer that keeps the last N events in a ring, for tests
// and for the /stats page's recent-events section.
type Recorder struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
}

// NewRecorder returns a Recorder holding up to n events.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{ring: make([]Event, n)}
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}
