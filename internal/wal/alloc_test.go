package wal

import (
	"testing"

	"smalldb/internal/vfs"
)

// TestAppendAllocCeiling pins the per-append allocation count: framing
// happens in place in the grow-only pending buffer and the flush path
// recycles its double buffer, so a committed append costs only what the
// in-memory file system charges for the write itself.
func TestAppendAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	// Warm up so the pending/spare buffers reach steady-state capacity.
	for i := 0; i < 16; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("Append: %.1f allocs/op, want <= 4", allocs)
	}
}
