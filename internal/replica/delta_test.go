package replica

import (
	"fmt"
	"reflect"
	"testing"

	"smalldb/internal/nameserver"
	"smalldb/internal/pickle"
)

// applyN applies n replicated SetValue updates from origin to r, starting
// at per-origin sequence startSeq, stamping from the root's clock.
func applyN(t *testing.T, r *Root, origin string, startSeq uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := startSeq + uint64(i)
		u := &Replicated{
			Origin: origin,
			Seq:    seq,
			Stamp:  r.Clock + 1,
			Inner: &nameserver.SetValue{
				Path:  []string{origin, fmt.Sprintf("k%d", seq)},
				Value: fmt.Sprintf("v%d", seq),
			},
		}
		if err := u.Verify(r); err != nil {
			t.Fatalf("verify %s/%d: %v", origin, seq, err)
		}
		if err := u.Apply(r); err != nil {
			t.Fatalf("apply %s/%d: %v", origin, seq, err)
		}
	}
}

func treesMatch(a, b *nameserver.Node, path string) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return fmt.Sprintf("node %q: nil mismatch", path)
	}
	if a.Value != b.Value || a.HasValue != b.HasValue || a.Stamp != b.Stamp || a.StampBy != b.StampBy {
		return fmt.Sprintf("node %q: scalar mismatch", path)
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("node %q: %d vs %d children", path, len(a.Children), len(b.Children))
	}
	for label, ac := range a.Children {
		bc, ok := b.Children[label]
		if !ok {
			return fmt.Sprintf("node %q: extra child %q", path, label)
		}
		if d := treesMatch(ac, bc, path+"/"+label); d != "" {
			return d
		}
	}
	return ""
}

// rootsMatch compares every checkpointed field of two roots, history
// included.
func rootsMatch(t *testing.T, got, want *Root) {
	t.Helper()
	if d := treesMatch(got.Tree.Root, want.Tree.Root, ""); d != "" {
		t.Fatalf("tree mismatch: %s", d)
	}
	if !reflect.DeepEqual(got.Vector, want.Vector) {
		t.Fatalf("vector %v, want %v", got.Vector, want.Vector)
	}
	if got.Clock != want.Clock || got.HistoryCap != want.HistoryCap {
		t.Fatalf("clock/cap %d/%d, want %d/%d", got.Clock, got.HistoryCap, want.Clock, want.HistoryCap)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("history length %d, want %d", len(got.History), len(want.History))
	}
	for i := range got.History {
		if !entrySame(got.History[i], want.History[i]) {
			t.Fatalf("history[%d] = %+v, want %+v", i, got.History[i], want.History[i])
		}
	}
}

func wireDelta(t *testing.T, d any) *RootDelta {
	t.Helper()
	data, err := pickle.Marshal(d.(*RootDelta))
	if err != nil {
		t.Fatal(err)
	}
	out := &RootDelta{}
	if err := pickle.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRootDeltaRoundTrip: recovery-style reconstruction — a root holding
// the previous snapshot's state plus the wire delta lands exactly on the
// current snapshot, history and all.
func TestRootDeltaRoundTrip(t *testing.T) {
	mk := NewRootWithCap(64)
	live := mk().(*Root)
	recon := mk().(*Root)
	applyN(t, live, "a", 1, 10)
	applyN(t, live, "b", 1, 5)
	applyN(t, recon, "a", 1, 10)
	applyN(t, recon, "b", 1, 5)
	prev := live.SnapshotView().(*Root)

	applyN(t, live, "a", 11, 3)
	applyN(t, live, "c", 1, 2)
	cur := live.SnapshotView().(*Root)

	d, err := cur.DeltaSince(prev)
	if err != nil {
		t.Fatal(err)
	}
	wire := wireDelta(t, d)
	if wire.HistoryFull {
		t.Error("append-only histories should not need the full fallback")
	}
	if len(wire.HistoryAppended) != 5 {
		t.Errorf("appended %d entries, want 5", len(wire.HistoryAppended))
	}
	if err := recon.ApplyDelta(wire); err != nil {
		t.Fatal(err)
	}
	rootsMatch(t, recon, cur)
}

// TestRootDeltaHistoryTrim: the cap forces drops from the front; the delta
// must carry the dropped count and reconstruct the trimmed history.
func TestRootDeltaHistoryTrim(t *testing.T) {
	mk := NewRootWithCap(8)
	live := mk().(*Root)
	recon := mk().(*Root)
	applyN(t, live, "a", 1, 8)
	applyN(t, recon, "a", 1, 8)
	prev := live.SnapshotView().(*Root)

	applyN(t, live, "a", 9, 5) // pushes 5 entries out of the capped history
	cur := live.SnapshotView().(*Root)

	wire := wireDelta(t, mustRootDelta(t, cur, prev))
	if wire.HistoryDropped != 5 || len(wire.HistoryAppended) != 5 {
		t.Errorf("dropped %d appended %d, want 5/5", wire.HistoryDropped, len(wire.HistoryAppended))
	}
	if err := recon.ApplyDelta(wire); err != nil {
		t.Fatal(err)
	}
	rootsMatch(t, recon, cur)
}

// TestRootDeltaHistoryOverrun: more appends than the cap — every prev entry
// is gone and the delta ships the whole (capped) history.
func TestRootDeltaHistoryOverrun(t *testing.T) {
	mk := NewRootWithCap(4)
	live := mk().(*Root)
	recon := mk().(*Root)
	applyN(t, live, "a", 1, 4)
	applyN(t, recon, "a", 1, 4)
	prev := live.SnapshotView().(*Root)

	applyN(t, live, "a", 5, 10)
	cur := live.SnapshotView().(*Root)

	wire := wireDelta(t, mustRootDelta(t, cur, prev))
	if err := recon.ApplyDelta(wire); err != nil {
		t.Fatal(err)
	}
	rootsMatch(t, recon, cur)
}

// TestRootDeltaFullFallback: a history that was replaced wholesale (as a
// restore does) breaks the append-only relation; the delta must detect the
// mismatch and fall back to carrying the full history rather than splicing
// garbage.
func TestRootDeltaFullFallback(t *testing.T) {
	mk := NewRootWithCap(64)
	live := mk().(*Root)
	recon := mk().(*Root)
	applyN(t, live, "a", 1, 6)
	applyN(t, recon, "a", 1, 6)
	prev := live.SnapshotView().(*Root)

	// Wholesale replacement keeping the vector sum plausible: rewrite the
	// entries' stamps so boundary checks cannot match, then append one.
	replaced := make([]Entry, len(live.History))
	for i, e := range live.History {
		e.Stamp += 1000
		replaced[i] = e
	}
	live.History = replaced
	applyN(t, live, "a", 7, 1)
	cur := live.SnapshotView().(*Root)

	wire := wireDelta(t, mustRootDelta(t, cur, prev))
	if !wire.HistoryFull {
		t.Fatal("replaced history not detected; delta would splice garbage")
	}
	if err := recon.ApplyDelta(wire); err != nil {
		t.Fatal(err)
	}
	rootsMatch(t, recon, cur)
}

// TestRootDeltaEmpty: no changes, no ops, empty history delta.
func TestRootDeltaEmpty(t *testing.T) {
	mk := NewRootWithCap(16)
	live := mk().(*Root)
	applyN(t, live, "a", 1, 3)
	v1 := live.SnapshotView().(*Root)
	v2 := live.SnapshotView().(*Root)
	wire := wireDelta(t, mustRootDelta(t, v2, v1))
	if wire.DeltaOps() != 0 || len(wire.HistoryAppended) != 0 || wire.HistoryDropped != 0 {
		t.Errorf("delta of identical snapshots: %+v", wire)
	}
}

func mustRootDelta(t *testing.T, cur, prev *Root) any {
	t.Helper()
	d, err := cur.DeltaSince(prev)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
