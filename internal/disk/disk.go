// Package disk wraps a vfs.FS with a latency and accounting model of a
// late-1980s disk, so the benchmarks can reproduce the *shape* of the
// paper's measurements (one 20 ms disk write per update, a 5 s streaming
// write and 20 s read for a 1 MB checkpoint) on modern hardware.
//
// The model is deliberately simple, matching the granularity of the paper's
// own reporting: every Sync costs a fixed per-operation time (seek +
// rotation + controller) plus the unsynced bytes at a streaming transfer
// rate; every Open costs one per-operation read time; reads cost bandwidth
// only (the paper's restart streams the checkpoint and log sequentially).
// The simulated disk has a single arm: concurrent operations serialize, so
// group commit genuinely amortises the per-operation cost, exactly the
// effect the paper says is "the only scheme that will perform better".
//
// Two modes:
//
//   - Scale > 0: operations really block for modeled-time × Scale, so
//     concurrency experiments (E5, E8) behave correctly; and
//   - Scale == 0: no blocking; modeled time is only accumulated in Stats,
//     for fast experiments that just need the accounting (E2, E3, E4).
package disk

import (
	"sync"
	"time"

	"smalldb/internal/vfs"
)

// Profile describes the modeled hardware.
type Profile struct {
	// Name identifies the profile in experiment output.
	Name string
	// PerOpWrite is the fixed cost of one write operation (seek +
	// rotational latency + file-system overhead), charged per Sync.
	PerOpWrite time.Duration
	// PerOpRead is the fixed cost charged when a file is opened.
	PerOpRead time.Duration
	// WriteBytesPerSec is the streaming write bandwidth.
	WriteBytesPerSec int64
	// ReadBytesPerSec is the streaming read bandwidth.
	ReadBytesPerSec int64
	// CPUSlowdown is how many times slower the modeled CPU is than the
	// machine running the experiment; harnesses multiply measured CPU
	// time by it when reporting 1987-equivalent numbers. It does not
	// affect Disk's own behaviour.
	CPUSlowdown float64
}

// MicroVAX is a profile calibrated against the paper's §5 measurements on a
// MicroVAX II: a log-entry write costs ~20 ms, streaming a 1 MB checkpoint
// to disk ~5 s (≈200 KB/s), and reading it back ~200 KB/s. CPUSlowdown is
// tuned so that pickling a typical update (~22 ms in the paper) and a 1 MB
// checkpoint (~55 s) land near the paper's numbers when multiplied against
// modern measurements.
var MicroVAX = Profile{
	Name:             "MicroVAX-II-1987",
	PerOpWrite:       20 * time.Millisecond,
	PerOpRead:        30 * time.Millisecond,
	WriteBytesPerSec: 200 << 10,
	ReadBytesPerSec:  200 << 10,
	CPUSlowdown:      2000,
}

// Unlimited is a null profile: no delays, accounting only.
var Unlimited = Profile{Name: "unlimited"}

// Stats is a snapshot of accumulated I/O accounting.
type Stats struct {
	Syncs        int64 // commit-point disk writes
	Opens        int64
	BytesWritten int64 // bytes made durable by Syncs
	BytesRead    int64
	// ModeledIO is the total simulated disk time for all operations, as
	// if they had run on the profiled hardware, one at a time.
	ModeledIO time.Duration
}

// Disk is a vfs.FS that charges modeled latency. It has a single arm: all
// charged operations serialize.
type Disk struct {
	fs    vfs.FS
	prof  Profile
	scale float64

	arm sync.Mutex // the disk arm: one modeled operation at a time

	mu    sync.Mutex
	stats Stats
}

// New wraps fs with the given profile. scale of 1.0 blocks for full modeled
// time; 0 disables blocking (accounting only); 0.01 runs 100× faster than
// modeled.
func New(fs vfs.FS, prof Profile, scale float64) *Disk {
	return &Disk{fs: fs, prof: prof, scale: scale}
}

// Profile reports the disk's profile.
func (d *Disk) Profile() Profile { return d.prof }

// Stats returns a snapshot of the accounting counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters; experiments call it between phases.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// charge accounts for (and, when scale > 0, blocks for) one disk operation
// of the given modeled duration.
func (d *Disk) charge(dur time.Duration, f func(*Stats)) {
	d.mu.Lock()
	f(&d.stats)
	d.stats.ModeledIO += dur
	d.mu.Unlock()
	if d.scale > 0 && dur > 0 {
		d.arm.Lock()
		time.Sleep(time.Duration(float64(dur) * d.scale))
		d.arm.Unlock()
	}
}

func (d *Disk) writeCost(bytes int64) time.Duration {
	dur := d.prof.PerOpWrite
	if d.prof.WriteBytesPerSec > 0 {
		dur += time.Duration(bytes * int64(time.Second) / d.prof.WriteBytesPerSec)
	}
	return dur
}

func (d *Disk) readCost(bytes int64) time.Duration {
	if d.prof.ReadBytesPerSec == 0 {
		return 0
	}
	return time.Duration(bytes * int64(time.Second) / d.prof.ReadBytesPerSec)
}

// --- vfs.FS implementation ---

// Create implements vfs.FS.
func (d *Disk) Create(name string) (vfs.File, error) { return d.open(name, d.fs.Create) }

// Open implements vfs.FS, charging the per-operation read cost.
func (d *Disk) Open(name string) (vfs.File, error) {
	f, err := d.open(name, d.fs.Open)
	if err == nil {
		d.charge(d.prof.PerOpRead, func(s *Stats) { s.Opens++ })
	}
	return f, err
}

// Append implements vfs.FS.
func (d *Disk) Append(name string) (vfs.File, error) { return d.open(name, d.fs.Append) }

// OpenRW implements vfs.FS.
func (d *Disk) OpenRW(name string) (vfs.File, error) { return d.open(name, d.fs.OpenRW) }

func (d *Disk) open(name string, f func(string) (vfs.File, error)) (vfs.File, error) {
	file, err := f(name)
	if err != nil {
		return nil, err
	}
	return &handle{d: d, f: file}, nil
}

// Rename implements vfs.FS; metadata operations charge one write op.
func (d *Disk) Rename(oldname, newname string) error {
	err := d.fs.Rename(oldname, newname)
	if err == nil {
		d.charge(d.prof.PerOpWrite, func(s *Stats) {})
	}
	return err
}

// Remove implements vfs.FS.
func (d *Disk) Remove(name string) error {
	err := d.fs.Remove(name)
	if err == nil {
		d.charge(d.prof.PerOpWrite, func(s *Stats) {})
	}
	return err
}

// List implements vfs.FS.
func (d *Disk) List() ([]string, error) { return d.fs.List() }

// Stat implements vfs.FS.
func (d *Disk) Stat(name string) (int64, error) { return d.fs.Stat(name) }

// handle wraps a vfs.File, tracking unsynced bytes so Sync can charge them.
type handle struct {
	d *Disk
	f vfs.File

	mu       sync.Mutex
	unsynced int64
}

func (h *handle) Name() string           { return h.f.Name() }
func (h *handle) Size() (int64, error)   { return h.f.Size() }
func (h *handle) Truncate(n int64) error { return h.f.Truncate(n) }
func (h *handle) Close() error           { return h.f.Close() }

func (h *handle) Seek(off int64, whence int) (int64, error) { return h.f.Seek(off, whence) }

func (h *handle) Read(p []byte) (int, error) {
	n, err := h.f.Read(p)
	if n > 0 {
		h.d.charge(h.d.readCost(int64(n)), func(s *Stats) { s.BytesRead += int64(n) })
	}
	return n, err
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	n, err := h.f.ReadAt(p, off)
	if n > 0 {
		h.d.charge(h.d.readCost(int64(n)), func(s *Stats) { s.BytesRead += int64(n) })
	}
	return n, err
}

func (h *handle) Write(p []byte) (int, error) {
	n, err := h.f.Write(p)
	h.mu.Lock()
	h.unsynced += int64(n)
	h.mu.Unlock()
	return n, err
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	n, err := h.f.WriteAt(p, off)
	h.mu.Lock()
	h.unsynced += int64(n)
	h.mu.Unlock()
	return n, err
}

func (h *handle) Sync() error {
	if err := h.f.Sync(); err != nil {
		return err
	}
	h.mu.Lock()
	bytes := h.unsynced
	h.unsynced = 0
	h.mu.Unlock()
	h.d.charge(h.d.writeCost(bytes), func(s *Stats) {
		s.Syncs++
		s.BytesWritten += bytes
	})
	return nil
}
