package nameserver

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"

	"smalldb/internal/rpc"
	"smalldb/internal/vfs"
)

// serve wires a Server behind the RPC layer over an in-memory pipe.
func serve(t *testing.T) (*Server, *rpc.Client) {
	t.Helper()
	s := open(t, vfs.NewMem(1))
	srv := rpc.NewServer()
	if err := srv.Register("NS", NewRPCService(s)); err != nil {
		t.Fatal(err)
	}
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	client := rpc.NewClient(cConn)
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		s.Close()
	})
	return s, client
}

func TestRPCSetLookup(t *testing.T) {
	_, c := serve(t)
	if err := c.Call("NS.Set", &SetArgs{Name: "a/b", Value: "v"}, &SetReply{}); err != nil {
		t.Fatal(err)
	}
	var reply LookupReply
	if err := c.Call("NS.Lookup", &LookupArgs{Name: "a/b"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Value != "v" {
		t.Errorf("got %q", reply.Value)
	}
}

func TestRPCLookupMissing(t *testing.T) {
	_, c := serve(t)
	err := c.Call("NS.Lookup", &LookupArgs{Name: "ghost"}, &LookupReply{})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("got %v", err)
	}
}

func TestRPCDelete(t *testing.T) {
	_, c := serve(t)
	c.Call("NS.Set", &SetArgs{Name: "x/y", Value: "1"}, &SetReply{})
	if err := c.Call("NS.Delete", &DeleteArgs{Name: "x"}, &DeleteReply{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("NS.Lookup", &LookupArgs{Name: "x/y"}, &LookupReply{}); err == nil {
		t.Error("deleted name still resolves")
	}
}

func TestRPCListAndEnumerate(t *testing.T) {
	_, c := serve(t)
	for _, n := range []string{"d/b", "d/a", "d/c/deep"} {
		c.Call("NS.Set", &SetArgs{Name: n, Value: "v-" + n}, &SetReply{})
	}
	var lr ListReply
	if err := c.Call("NS.List", &ListArgs{Name: "d"}, &lr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lr.Labels, []string{"a", "b", "c"}) {
		t.Errorf("labels %v", lr.Labels)
	}
	var er EnumerateReply
	if err := c.Call("NS.Enumerate", &EnumerateArgs{Name: "d"}, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Names) != 3 || er.Names[0] != "d/a" || er.Values[2] != "v-d/c/deep" {
		t.Errorf("enumerate %v %v", er.Names, er.Values)
	}
}

func TestRPCSurvivesServerRestart(t *testing.T) {
	// Updates made over RPC are durable like any other.
	fs := vfs.NewMem(1)
	s := open(t, fs)
	srv := rpc.NewServer()
	srv.Register("NS", NewRPCService(s))
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	client := rpc.NewClient(cConn)
	if err := client.Call("NS.Set", &SetArgs{Name: "durable", Value: "yes"}, &SetReply{}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close()
	s.Close()
	fs.Crash()

	s2 := open(t, fs)
	defer s2.Close()
	if v, err := s2.Lookup("durable"); err != nil || v != "yes" {
		t.Errorf("got %q, %v", v, err)
	}
}

func TestRPCBadPath(t *testing.T) {
	_, c := serve(t)
	err := c.Call("NS.Set", &SetArgs{Name: "a//b", Value: "v"}, &SetReply{})
	var se rpc.ServerError
	if !errors.As(err, &se) {
		t.Errorf("got %v", err)
	}
}
