package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"smalldb/internal/vfs"
)

func shardedCfg(shards int) func(*Config) {
	return func(c *Config) { c.LogShards = shards }
}

// TestShardedStoreRoundTrip writes through a 4-stream log, checks the
// stream files exist on disk, and restarts: replay must merge the streams
// back into exactly the committed state.
func TestShardedStoreRoundTrip(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, shardedCfg(4))
	for i := 0; i < 40; i++ {
		put(t, s, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"logfile1", "logfile1.1", "logfile1.2", "logfile1.3"} {
		if _, err := fs.Open(name); err != nil {
			t.Fatalf("stream %s missing after sharded writes: %v", name, err)
		}
	}

	s2 := openKV(t, fs, shardedCfg(4))
	defer s2.Close()
	for i := 0; i < 40; i++ {
		if v, ok := get(t, s2, fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v after restart", i, v, ok)
		}
	}
}

// TestShardedMatchesSingleStream runs one seeded workload against a sharded
// store and a single-stream store and compares the roots after restart.
func TestShardedMatchesSingleStream(t *testing.T) {
	run := func(shards int) map[string]string {
		fs := vfs.NewMem(1)
		s := openKV(t, fs, shardedCfg(shards))
		for i := 0; i < 200; i++ {
			put(t, s, fmt.Sprintf("k%d", i%50), fmt.Sprintf("v%d", i))
			if i%70 == 69 {
				if err := s.Apply(&delKV{Key: fmt.Sprintf("k%d", i%50)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Close()
		s2 := openKV(t, fs, shardedCfg(shards))
		defer s2.Close()
		var out map[string]string
		if err := s2.View(func(root any) error {
			out = root.(*kvRoot).Data
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	single, sharded := run(1), run(4)
	if !reflect.DeepEqual(single, sharded) {
		t.Fatalf("sharded restart state diverged from single-stream:\nsingle:  %v\nsharded: %v", single, sharded)
	}
}

// TestShardedConcurrentAppliers hammers the sharded commit pipeline from
// many goroutines (the -race job's main subject) and restarts to verify the
// merged log holds every acknowledged update.
func TestShardedConcurrentAppliers(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, shardedCfg(4))
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Apply(&putKV{Key: fmt.Sprintf("w%d-%d", w, i), Value: "x"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openKV(t, fs, shardedCfg(4))
	defer s2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			if _, ok := get(t, s2, fmt.Sprintf("w%d-%d", w, i)); !ok {
				t.Fatalf("acknowledged update w%d-%d missing after restart", w, i)
			}
		}
	}
}

// TestShardedShardCountChange restarts a sharded store under different
// LogShards settings: recovery replays whatever streams exist, so the knob
// can change (up, down, back to one) without losing data.
func TestShardedShardCountChange(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, shardedCfg(3))
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("a%d", i), "1")
	}
	s.Close()

	for round, shards := range []int{1, 5, 2} {
		s = openKV(t, fs, shardedCfg(shards))
		for i := 0; i < 20; i++ {
			if _, ok := get(t, s, fmt.Sprintf("a%d", i)); !ok {
				t.Fatalf("round %d (shards=%d): a%d missing", round, shards, i)
			}
		}
		put(t, s, fmt.Sprintf("r%d", round), "1")
		s.Close()
	}
}

// TestShardedCheckpoint exercises both checkpoint flavors over a sharded
// log: the mirror window must dual-write every stream, and the new version
// must replay cleanly.
func TestShardedCheckpoint(t *testing.T) {
	for _, blocking := range []bool{false, true} {
		t.Run(fmt.Sprintf("blocking=%v", blocking), func(t *testing.T) {
			fs := vfs.NewMem(1)
			s := openKV(t, fs, shardedCfg(4), func(c *Config) { c.BlockingCheckpoint = blocking })
			for i := 0; i < 30; i++ {
				put(t, s, fmt.Sprintf("pre%d", i), "1")
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				put(t, s, fmt.Sprintf("post%d", i), "2")
			}
			s.Close()

			s2 := openKV(t, fs, shardedCfg(4))
			defer s2.Close()
			for i := 0; i < 30; i++ {
				if _, ok := get(t, s2, fmt.Sprintf("pre%d", i)); !ok {
					t.Fatalf("pre%d missing after checkpoint+restart", i)
				}
				if _, ok := get(t, s2, fmt.Sprintf("post%d", i)); !ok {
					t.Fatalf("post%d missing after checkpoint+restart", i)
				}
			}
		})
	}
}

// TestShardedDeferredPublish: with a versioned root on a sharded log,
// publication is deferred to the epoch barrier — but Apply's return still
// happens after it, so an applier reads its own write through the lock-free
// View path.
func TestShardedDeferredPublish(t *testing.T) {
	fs := vfs.NewMem(1)
	cfg := Config{FS: fs, NewRoot: newVKV, Retain: 1, LogShards: 4}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 25; i++ {
		v := fmt.Sprintf("v%d", i)
		if err := s.Apply(&putVKV{Key: "k", Value: v}); err != nil {
			t.Fatal(err)
		}
		var got string
		if err := s.View(func(root any) error {
			got = root.(*vkvRoot).Data["k"]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("read-your-writes broken on sharded log: got %q, want %q", got, v)
		}
		snap, err := s.SnapshotAt()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Seq() != uint64(i+1) {
			t.Fatalf("published seq %d after %d applies", snap.Seq(), i+1)
		}
		snap.Release()
	}
}

// TestShardedRejectsSkipDamaged: the skip-damaged-entry recovery mode is a
// single-stream feature (see wal sharded replay docs); asking for both must
// fail at Open rather than silently mis-recover later.
func TestShardedRejectsSkipDamaged(t *testing.T) {
	_, err := Open(Config{FS: vfs.NewMem(1), NewRoot: newKV, Retain: 1,
		LogShards: 2, SkipDamagedLogEntries: true})
	if err == nil {
		t.Fatal("Open accepted LogShards>1 with SkipDamagedLogEntries")
	}
}

// TestShardedApplyBatch commits batches through one epoch barrier and
// verifies prefix semantics when a mid-batch Verify fails.
func TestShardedApplyBatch(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, shardedCfg(4), func(c *Config) { c.SerialLogSync = true })

	var batch []Update
	for i := 0; i < 10; i++ {
		batch = append(batch, &putKV{Key: fmt.Sprintf("b%d", i), Value: "1"})
	}
	if err := s.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}

	// An invalid update mid-batch: the prefix commits, the rest does not.
	bad := []Update{
		&putKV{Key: "good", Value: "1"},
		&putKV{Key: "", Value: "boom"}, // fails Verify
		&putKV{Key: "never", Value: "1"},
	}
	if err := s.ApplyBatch(bad); err == nil {
		t.Fatal("batch with failing Verify reported success")
	}
	s.Close()

	s2 := openKV(t, fs, shardedCfg(4))
	defer s2.Close()
	for i := 0; i < 10; i++ {
		if _, ok := get(t, s2, fmt.Sprintf("b%d", i)); !ok {
			t.Fatalf("batched b%d missing after restart", i)
		}
	}
	if _, ok := get(t, s2, "good"); !ok {
		t.Fatal("committed prefix of failed batch missing")
	}
	if _, ok := get(t, s2, "never"); ok {
		t.Fatal("update after failed Verify was committed")
	}
}

// TestShardedHistory reads the audit trail back off a sharded log (current
// plus retained eras) and checks global sequence order.
func TestShardedHistory(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, shardedCfg(3), func(c *Config) { c.Retain = 2 })
	for i := 0; i < 15; i++ {
		put(t, s, fmt.Sprintf("h%d", i), "1")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 15; i < 30; i++ {
		put(t, s, fmt.Sprintf("h%d", i), "1")
	}
	defer s.Close()

	var seqs []uint64
	if err := s.History(func(seq uint64, u Update) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 30 {
		t.Fatalf("history returned %d entries, want 30", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("history seq[%d] = %d, want %d", i, seq, i+1)
		}
	}
}
