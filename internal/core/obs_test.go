package core

import (
	"fmt"
	"sync"
	"testing"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

// TestStatsRace hammers Stats() while updates, enquiries and checkpoints
// are in flight. Run with -race: every stats mutation must go through the
// recordStats helper, and this test is what catches a stray direct write.
func TestStatsRace(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()

	const writers, readers, perWorker = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				put(t, s, fmt.Sprintf("k%d-%d", w, i), "v")
				if i%10 == 0 {
					if err := s.View(func(any) error { return nil }); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker*4; i++ {
				_ = s.Stats()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Updates != writers*perWorker {
		t.Errorf("Updates = %d, want %d", st.Updates, writers*perWorker)
	}
	if st.Checkpoints != 5 {
		t.Errorf("Checkpoints = %d, want 5", st.Checkpoints)
	}
}

// TestStatsDistributions checks that the §5 phase histograms back the
// Stats() snapshot: counts equal the op count and percentiles are sane.
func TestStatsDistributions(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs)
	defer s.Close()

	const n = 50
	for i := 0; i < n; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	for _, ph := range []struct {
		name string
		d    obs.Snapshot
	}{
		{"verify", st.VerifyDist}, {"pickle", st.PickleDist},
		{"commit", st.CommitDist}, {"apply", st.ApplyDist},
	} {
		if ph.d.Count != n {
			t.Errorf("%s: count = %d, want %d", ph.name, ph.d.Count, n)
		}
		if ph.d.P99 < ph.d.P50 || ph.d.Max < ph.d.P99 {
			t.Errorf("%s: percentiles out of order: p50=%d p99=%d max=%d",
				ph.name, ph.d.P50, ph.d.P99, ph.d.Max)
		}
	}
	// Commit includes a disk sync, so it must have measurable latency.
	if st.CommitDist.P50 <= 0 {
		t.Errorf("commit p50 = %d, want > 0", st.CommitDist.P50)
	}
	if st.CheckpointPickleDist.Count != 1 || st.CheckpointIODist.Count != 1 {
		t.Errorf("checkpoint dists: pickle count=%d io count=%d, want 1/1",
			st.CheckpointPickleDist.Count, st.CheckpointIODist.Count)
	}
	// The aggregate totals must agree with the histograms they mirror.
	if st.Updates != n || st.VerifyTime <= 0 || st.CommitTime <= 0 {
		t.Errorf("aggregates: updates=%d verify=%v commit=%v", st.Updates, st.VerifyTime, st.CommitTime)
	}
}

// TestStoreWithRegistry exercises the registry-wired path: the store's
// phase histograms and counters must surface under the core_* names.
func TestStoreWithRegistry(t *testing.T) {
	fs := vfs.NewMem(1)
	reg := obs.NewRegistry()
	var events int
	tr := obs.FuncTracer(func(obs.Event) { events++ })
	s := openKV(t, fs, func(c *Config) { c.Obs = reg; c.Tracer = tr })
	put(t, s, "a", "1")
	put(t, s, "b", "2")
	if _, ok := get(t, s, "a"); !ok {
		t.Fatal("lookup a failed")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap["core_updates"]; got != uint64(2) {
		t.Errorf("core_updates = %v, want 2", got)
	}
	if got := snap["core_enquiries"]; got != uint64(1) {
		t.Errorf("core_enquiries = %v, want 1", got)
	}
	if got := snap["core_checkpoints"]; got != uint64(1) {
		t.Errorf("core_checkpoints = %v, want 1", got)
	}
	for _, name := range []string{
		"core_update_verify_ns", "core_update_pickle_ns",
		"core_update_commit_ns", "core_update_apply_ns",
		"wal_appends", "wal_flush_ns", "checkpoint_switches",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("registry missing %s (have %v)", name, reg.Names())
		}
	}
	if d, ok := snap["core_update_commit_ns"].(obs.Snapshot); !ok || d.Count != 2 {
		t.Errorf("core_update_commit_ns = %v, want histogram with count 2", snap["core_update_commit_ns"])
	}
	if events == 0 {
		t.Error("tracer saw no events")
	}

	// Reopening with the same registry must not panic or lose metrics
	// (name collisions resolve to the existing objects).
	s2 := openKV(t, fs, func(c *Config) { c.Obs = reg })
	put(t, s2, "c", "3")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["core_updates"]; got != uint64(3) {
		t.Errorf("core_updates after reopen = %v, want 3", got)
	}
}
