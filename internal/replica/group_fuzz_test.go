package replica

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseGroupSpec holds the group-membership decode path to its
// contract: arbitrary specs either parse into a config that re-validates
// cleanly or fail with one of the typed config errors — never a panic,
// never an unclassified error, never a config that Validate would reject.
func FuzzParseGroupSpec(f *testing.F) {
	f.Add("a", "b=host1:7001,c=host2:7001", 0)
	f.Add("a", "", 1)
	f.Add("node-1", "node-2=10.0.0.2:9,node-3=10.0.0.3:9", 2)
	f.Add("a", "b", 0)               // missing =addr
	f.Add("a", "=x", 0)              // missing name
	f.Add("a", "b=", 0)              // missing addr
	f.Add("a", "a=x", 0)             // self duplicated as peer
	f.Add("a", "b=x,b=y", 0)         // duplicate peer
	f.Add("a", "b=x", 5)             // W > N
	f.Add("a", "b=x", -3)            // W < 0
	f.Add("", "b=x", 0)              // empty self
	f.Add("a,b", "c=d", 1)           // separator in self
	f.Add("a", "b=x,,c=y", 0)        // empty item
	f.Add("a", " b = x , c = y ", 0) // whitespace tolerated
	f.Add("a", "b=x=y", 2)           // = in addr: first cut wins
	f.Add("a", strings.Repeat("m=", 1000), 1)
	f.Fuzz(func(t *testing.T, self, peers string, w int) {
		cfg, err := ParseGroupSpec(self, peers, w)
		if err != nil {
			for _, typed := range []error{ErrNoMembers, ErrDuplicateMember, ErrBadMember, ErrBadQuorum, ErrSelfNotMember} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("ParseGroupSpec(%q, %q, %d): untyped error %v", self, peers, w, err)
		}
		if cfg.Self != self {
			t.Fatalf("self mangled: %q -> %q", self, cfg.Self)
		}
		if cfg.W < 1 || cfg.W > len(cfg.Members) {
			t.Fatalf("accepted quorum W=%d outside 1..%d", cfg.W, len(cfg.Members))
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails Validate: %v", verr)
		}
	})
}
