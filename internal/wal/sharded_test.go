package wal

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"smalldb/internal/vfs"
)

// collectSharded merge-replays the sharded log rooted at base and returns
// the payloads in applied (global-sequence) order.
func collectSharded(t *testing.T, fs vfs.FS, base string, firstSeq uint64, opts ReplayOptions) (ShardedReplayResult, []string) {
	t.Helper()
	var got []string
	res, err := ReplayShardedPipelined(fs, base, firstSeq, opts, 4,
		func(seq uint64, payload []byte) (any, error) {
			return string(payload), nil
		},
		func(seq uint64, v any) error {
			got = append(got, v.(string))
			return nil
		})
	if err != nil {
		t.Fatalf("ReplayShardedPipelined: %v", err)
	}
	return res, got
}

func TestShardName(t *testing.T) {
	if got := ShardName("logfile3", 0); got != "logfile3" {
		t.Errorf("shard 0 = %q", got)
	}
	if got := ShardName("logfile3", 2); got != "logfile3.2" {
		t.Errorf("shard 2 = %q", got)
	}
}

func TestShardFiles(t *testing.T) {
	fs := vfs.NewMem(1)
	for _, n := range []string{"logfile3.10", "logfile3", "logfile3.2", "logfile30", "logfile3.x", "other", "logfile3.0"} {
		vfs.WriteFile(fs, n, []byte{})
	}
	names, err := ShardFiles(fs, "logfile3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"logfile3", "logfile3.2", "logfile3.10"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestShardedAppendReplay(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		fs := vfs.NewMem(1)
		s, err := OpenSharded(fs, "log", shards, 1, ShardedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		const n = 23
		for i := 0; i < n; i++ {
			seq, err := s.Append([]byte(fmt.Sprintf("entry-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(i+1) {
				t.Errorf("shards=%d: seq = %d, want %d", shards, seq, i+1)
			}
			if d := s.DurableSeq(); d < seq {
				t.Errorf("shards=%d: acked seq %d above durable frontier %d", shards, seq, d)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		res, got := collectSharded(t, fs, "log", 1, ReplayOptions{})
		if res.Entries != n || res.LastSeq != n || res.NextSeq != n+1 || res.GapAt != 0 {
			t.Fatalf("shards=%d: %+v", shards, res)
		}
		if len(res.Names) != shards {
			t.Errorf("shards=%d: discovered %v", shards, res.Names)
		}
		for i, p := range got {
			if p != fmt.Sprintf("entry-%d", i) {
				t.Errorf("shards=%d: entry %d = %q", shards, i, p)
			}
		}
	}
}

// TestShardedMatchesSequential: the merge replay of N streams delivers the
// exact sequence a single-stream log would — same order, same payloads —
// for the same appended history.
func TestShardedMatchesSequential(t *testing.T) {
	const n = 200
	single := vfs.NewMem(1)
	l, _ := Create(single, "log", 1, Options{})
	for i := 0; i < n; i++ {
		l.Append([]byte(fmt.Sprintf("e%d", i)))
	}
	l.Close()
	_, want := collect(t, single, "log", 1, ReplayOptions{})

	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 4, 1, ShardedOptions{})
	for i := 0; i < n; i++ {
		s.Append([]byte(fmt.Sprintf("e%d", i)))
	}
	s.Close()
	res, got := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != len(want) {
		t.Fatalf("entries = %d, want %d", res.Entries, len(want))
	}
	for i := range want {
		if got[i] != string(want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestShardedReopenChangedShardCount: recovery replays whatever streams
// exist, so the shard count can change across restarts in both directions.
func TestShardedReopenChangedShardCount(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 3, 1, ShardedOptions{})
	for i := 0; i < 10; i++ {
		s.Append([]byte(fmt.Sprintf("a%d", i)))
	}
	s.Close()

	for _, newShards := range []int{2, 5} {
		res, _ := collectSharded(t, fs, "log", 1, ReplayOptions{})
		if res.Entries < 10 {
			t.Fatalf("newShards=%d: lost entries: %+v", newShards, res)
		}
		s2, err := OpenSharded(fs, "log", newShards, res.NextSeq, ShardedOptions{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := s2.Append([]byte(fmt.Sprintf("b%d", newShards)))
		if err != nil || seq != res.NextSeq {
			t.Fatalf("newShards=%d: seq=%d err=%v want %d", newShards, seq, err, res.NextSeq)
		}
		s2.Close()
	}
	res, got := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 12 || got[10] != "b2" || got[11] != "b5" {
		t.Fatalf("final: %+v %v", res, got)
	}
}

// TestShardedGapDiscardsUnacked: the first missing global sequence ends
// recovery; intact entries beyond it on other streams belong to epochs
// whose barrier never completed and are discarded — and with Repair,
// truncated so the sequences can be reused.
func TestShardedGapDiscardsUnacked(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 2, 1, ShardedOptions{})
	for i := 0; i < 4; i++ { // seqs 1..4, acked
		s.Append([]byte(fmt.Sprintf("acked-%d", i)))
	}
	s.Close()

	// Simulate a crash that synced stream 1's tail of a later epoch but
	// never stream 0's: seq 7 lands on stream 1 (7 mod 2), seqs 5, 6
	// are missing entirely.
	l, err := Open(fs, "log.1", 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("orphan-7")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	res, got := collectSharded(t, fs, "log", 1, ReplayOptions{Repair: true})
	if res.Entries != 4 || res.LastSeq != 4 || res.NextSeq != 5 {
		t.Fatalf("prefix: %+v", res)
	}
	if res.GapAt != 5 || res.Discarded != 1 {
		t.Fatalf("gap accounting: %+v", res)
	}
	if got[3] != "acked-3" {
		t.Errorf("entries: %v", got)
	}

	// After repair the orphan is gone from disk: reopening at NextSeq and
	// appending reuses sequence 5 with no collision.
	s2, err := OpenSharded(fs, "log", 2, res.NextSeq, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := s2.Append([]byte("fresh-5")); err != nil || seq != 5 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	s2.Close()
	res2, got2 := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res2.Entries != 5 || res2.GapAt != 0 || got2[4] != "fresh-5" {
		t.Fatalf("after repair: %+v %v", res2, got2)
	}
}

// TestShardedDuplicateSeqDetected: the same global sequence on two streams
// is corruption, not a crash artifact, and must fail recovery.
func TestShardedDuplicateSeqDetected(t *testing.T) {
	fs := vfs.NewMem(1)
	for _, name := range []string{"log", "log.1"} {
		l, _ := Create(fs, name, 1, Options{})
		l.Append([]byte("both-claim-seq-1"))
		l.Close()
	}
	_, err := ReplayShardedPipelined(fs, "log", 1, ReplayOptions{}, 2,
		func(seq uint64, payload []byte) (any, error) { return nil, nil },
		func(seq uint64, v any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("got %v", err)
	}
}

// TestShardedTornStreamTail: a torn tail on one stream is that stream's
// unsynced last write; the merge keeps the acked prefix and Repair cleans
// the tail.
func TestShardedTornStreamTail(t *testing.T) {
	fs := vfs.NewMem(3)
	s, _ := OpenSharded(fs, "log", 2, 1, ShardedOptions{})
	for i := 0; i < 4; i++ {
		s.Append([]byte(fmt.Sprintf("acked-%d", i)))
	}
	s.Close()

	// Seq 5 hashes to stream 1: hand-write a torn frame there.
	full := frame(5, []byte("this frame is torn in half"))
	f, _ := fs.Append("log.1")
	f.Write(full[:len(full)/2])
	f.Close()
	fs.CrashTorn(8)

	res, got := collectSharded(t, fs, "log", 1, ReplayOptions{Repair: true})
	if res.Entries != 4 || res.GapAt != 0 || !res.Truncated {
		t.Fatalf("%+v", res)
	}
	if got[3] != "acked-3" {
		t.Errorf("entries: %v", got)
	}
	s2, err := OpenSharded(fs, "log", 2, res.NextSeq, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := s2.Append([]byte("next")); err != nil || seq != 5 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	s2.Close()
}

// TestShardedConcurrentAppenders is the -race stress of the ticket, the
// per-stream pending buffers, and the epoch barrier.
func TestShardedConcurrentAppenders(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 4, 1, ShardedOptions{})
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if d := s.DurableSeq(); d < seq {
					t.Errorf("acked %d above durable %d", seq, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	res, _ := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != writers*each || res.GapAt != 0 {
		t.Errorf("%+v", res)
	}
}

// TestShardedEpochBatching: concurrent appenders share epoch barriers, so
// the sync count stays well below the entry count — group commit, spanning
// streams.
func TestShardedEpochBatching(t *testing.T) {
	fs := vfs.NewMem(1)
	var mu sync.Mutex
	syncs := 0
	fs.FailSync = func(string) error {
		mu.Lock()
		syncs++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	}
	s, _ := OpenSharded(fs, "log", 4, 1, ShardedOptions{})
	mu.Lock()
	baseline := syncs
	mu.Unlock()
	var wg sync.WaitGroup
	const writers, each = 16, 20
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Append([]byte("payload"))
			}
		}()
	}
	wg.Wait()
	s.Close()
	mu.Lock()
	total := syncs - baseline
	mu.Unlock()
	if total >= writers*each/2 {
		t.Errorf("epoch barrier did not batch: %d syncs for %d entries", total, writers*each)
	}
}

func TestShardedFlushDurable(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 3, 1, ShardedOptions{})
	var waits []func() error
	for i := 0; i < 5; i++ {
		_, wait := s.AppendAsync([]byte(fmt.Sprintf("async-%d", i)))
		waits = append(waits, wait)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := s.DurableSeq(); d != 5 {
		t.Errorf("durable = %d, want 5", d)
	}
	for _, wait := range waits {
		if err := wait(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	fs.Crash()
	res, _ := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 5 {
		t.Errorf("flush not durable: %+v", res)
	}
}

func TestShardedSequentialSync(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 4, 1, ShardedOptions{SequentialSync: true})
	for i := 0; i < 16; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	res, _ := collectSharded(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 16 || res.GapAt != 0 {
		t.Errorf("%+v", res)
	}
}

// TestShardedMirrorWindow drives a full mirror window across streams: the
// old streams stay the commit point throughout, and after the retarget the
// new base's streams hold every window entry — the checkpoint flip
// invariant, per stream.
func TestShardedMirrorWindow(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "old", 3, 1, ShardedOptions{})
	for i := 0; i < 5; i++ { // seqs 1..5: before the window
		s.Append([]byte(fmt.Sprintf("pre-%d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	if !s.MirrorActive() {
		t.Fatal("mirror not active")
	}
	files := make([]vfs.File, s.Shards())
	for i := range files {
		f, err := fs.Create(ShardName("new", i))
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	if err := s.AttachMirrorFiles(files); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // seqs 6..9: dual-written
		if _, err := s.Append([]byte(fmt.Sprintf("win-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SyncMirror(); err != nil {
		t.Fatal(err)
	}
	entries, err := s.FinishMirror("new")
	if err != nil {
		t.Fatal(err)
	}
	if entries != 4 {
		t.Errorf("window entries = %d, want 4", entries)
	}
	if s.Base() != "new" {
		t.Errorf("base = %q", s.Base())
	}
	for i := 0; i < 2; i++ { // seqs 10..11: new streams only
		if _, err := s.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	res, got := collectSharded(t, fs, "old", 1, ReplayOptions{})
	if res.Entries != 9 || res.LastSeq != 9 {
		t.Fatalf("old streams: %+v", res)
	}
	if got[5] != "win-0" {
		t.Errorf("old entries: %v", got)
	}
	res2, got2 := collectSharded(t, fs, "new", 6, ReplayOptions{})
	if res2.Entries != 6 || res2.LastSeq != 11 || res2.GapAt != 0 {
		t.Fatalf("new streams: %+v", res2)
	}
	if got2[0] != "win-0" || got2[5] != "post-1" {
		t.Errorf("new entries: %v", got2)
	}
}

func TestShardedAbortMirror(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "old", 2, 1, ShardedOptions{})
	s.Append([]byte("a"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMirror(); err != nil {
		t.Fatal(err)
	}
	s.AbortMirror()
	if s.MirrorActive() {
		t.Error("mirror still active after abort")
	}
	if _, err := s.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if s.Base() != "old" {
		t.Errorf("base = %q", s.Base())
	}
	s.Close()
	res, _ := collectSharded(t, fs, "old", 1, ReplayOptions{})
	if res.Entries != 2 {
		t.Errorf("%+v", res)
	}
}

func TestShardedClosed(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 2, 1, ShardedOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("x")); err != ErrClosed {
		t.Errorf("append on closed: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("flush on closed: %v", err)
	}
	if err := s.Close(); err != nil { // double close is fine
		t.Errorf("double close: %v", err)
	}
}

func TestFirstSeqSharded(t *testing.T) {
	fs := vfs.NewMem(1)
	s, _ := OpenSharded(fs, "log", 3, 7, ShardedOptions{})
	for i := 0; i < 4; i++ { // seqs 7..10 spread across streams
		s.Append([]byte("x"))
	}
	s.Close()
	seq, ok, err := FirstSeqSharded(fs, "log")
	if err != nil || !ok || seq != 7 {
		t.Errorf("got %d %v %v", seq, ok, err)
	}

	empty := vfs.NewMem(1)
	s2, _ := OpenSharded(empty, "log", 2, 1, ShardedOptions{})
	s2.Close()
	if _, ok, err := FirstSeqSharded(empty, "log"); ok || err != nil {
		t.Errorf("empty: %v %v", ok, err)
	}
}

// TestShardedAppendAllocCeiling pins the sharded commit path's allocation
// count: the ticket, the per-stream in-place framing, and the epoch
// barrier add only the wait closure on top of the single-stream path.
func TestShardedAppendAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fs := vfs.NewMem(1)
	s, err := OpenSharded(fs, "log", 4, 1, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 256)
	for i := 0; i < 32; i++ {
		if _, err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("Sharded.Append: %.1f allocs/op, want <= 4", allocs)
	}
}
