package nameserver

import (
	"fmt"
	"math/rand"
	"testing"

	"smalldb/internal/pickle"
)

// nodesMatch compares two subtrees on every pickled field, stamps
// included (flatModel only covers values, and deltas must preserve
// replication stamps too).
func nodesMatch(a, b *Node, path string) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return fmt.Sprintf("node %q: nil mismatch", path)
	}
	if a.Value != b.Value || a.HasValue != b.HasValue || a.Stamp != b.Stamp || a.StampBy != b.StampBy {
		return fmt.Sprintf("node %q: scalars %v/%q/%d/%q vs %v/%q/%d/%q",
			path, a.HasValue, a.Value, a.Stamp, a.StampBy, b.HasValue, b.Value, b.Stamp, b.StampBy)
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("node %q: %d vs %d children", path, len(a.Children), len(b.Children))
	}
	for label, ac := range a.Children {
		bc, ok := b.Children[label]
		if !ok {
			return fmt.Sprintf("node %q: extra child %q", path, label)
		}
		if d := nodesMatch(ac, bc, path+"/"+label); d != "" {
			return d
		}
	}
	return ""
}

// roundTripDelta pushes a delta through the pickle wire format, as the
// checkpoint file does, so aliasing with the source tree is severed and
// wire-compatibility is asserted on every test.
func roundTripDelta(t *testing.T, d any) *TreeDelta {
	t.Helper()
	data, err := pickle.Marshal(d.(*TreeDelta))
	if err != nil {
		t.Fatalf("marshal delta: %v", err)
	}
	out := &TreeDelta{}
	if err := pickle.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal delta: %v", err)
	}
	return out
}

// TestTreeDeltaProperty: random updates with snapshots at random points;
// a reconstruction tree fed only pickled deltas must track every snapshot
// exactly.
func TestTreeDeltaProperty(t *testing.T) {
	ops := 600
	if testing.Short() {
		ops = 150
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		tree := NewTree()
		recon := NewTree()
		prev := tree.SnapshotView().(*Tree)
		snapshots, deltaOps, applied := 0, 0, 0
		for i := 0; i < ops; i++ {
			u := genUpdate(rng)
			if err := u.Verify(tree); err != nil {
				continue
			}
			if err := u.Apply(tree); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, i, err)
			}
			applied++
			if rng.Float64() < 0.15 {
				cur := tree.SnapshotView().(*Tree)
				d, err := cur.DeltaSince(prev)
				if err != nil {
					t.Fatalf("seed %d op %d: DeltaSince: %v", seed, i, err)
				}
				wire := roundTripDelta(t, d)
				deltaOps += len(wire.Ops)
				if err := recon.ApplyDelta(wire); err != nil {
					t.Fatalf("seed %d op %d: ApplyDelta: %v", seed, i, err)
				}
				if diff := nodesMatch(recon.Root, cur.Root, ""); diff != "" {
					t.Fatalf("seed %d op %d: reconstruction diverged: %s", seed, i, diff)
				}
				prev = cur
				snapshots++
			}
		}
		if snapshots == 0 || applied == 0 {
			t.Fatalf("seed %d: degenerate run (%d snapshots, %d applied)", seed, snapshots, applied)
		}
		t.Logf("seed %d: %d updates, %d snapshots, %d delta ops", seed, applied, snapshots, deltaOps)
	}
}

func TestTreeDeltaEmpty(t *testing.T) {
	tree := NewTree()
	(&SetValue{Path: []string{"a"}, Value: "1"}).Apply(tree)
	v1 := tree.SnapshotView().(*Tree)
	v2 := tree.SnapshotView().(*Tree)
	d, err := v2.DeltaSince(v1)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.(*TreeDelta).DeltaOps(); n != 0 {
		t.Fatalf("delta of identical snapshots has %d ops", n)
	}
}

// TestTreeDeltaProportionalToChurn: touching a handful of names in a big
// tree yields a delta whose op count is on the order of the churn, not
// the tree.
func TestTreeDeltaProportionalToChurn(t *testing.T) {
	tree := NewTree()
	for i := 0; i < 2000; i++ {
		p := []string{fmt.Sprintf("dir%d", i%50), fmt.Sprintf("leaf%d", i)}
		(&SetValue{Path: p, Value: "x"}).Apply(tree)
	}
	v1 := tree.SnapshotView().(*Tree)
	for i := 0; i < 10; i++ {
		(&SetValue{Path: []string{"dir0", fmt.Sprintf("leaf%d", i*50)}, Value: "y"}).Apply(tree)
	}
	v2 := tree.SnapshotView().(*Tree)
	d, err := v2.DeltaSince(v1)
	if err != nil {
		t.Fatal(err)
	}
	n := d.(*TreeDelta).DeltaOps()
	if n == 0 || n > 30 {
		t.Fatalf("10 leaf writes produced %d delta ops", n)
	}
}

// TestTreeDeltaMove: a Move shows up as a delete plus a full-subtree put;
// reconstruction must land on the identical tree.
func TestTreeDeltaMove(t *testing.T) {
	tree := NewTree()
	for i := 0; i < 5; i++ {
		(&SetValue{Path: []string{"src", fmt.Sprintf("k%d", i)}, Value: "v"}).Apply(tree)
	}
	v1 := tree.SnapshotView().(*Tree)
	recon := NewTree()
	if err := recon.ApplyDelta(roundTripDelta(t, mustDelta(t, v1, NewTree().SnapshotView().(*Tree)))); err != nil {
		t.Fatal(err)
	}
	if diff := nodesMatch(recon.Root, v1.Root, ""); diff != "" {
		t.Fatalf("base reconstruction: %s", diff)
	}

	if err := (&Move{From: []string{"src"}, To: []string{"dst"}}).Apply(tree); err != nil {
		t.Fatal(err)
	}
	v2 := tree.SnapshotView().(*Tree)
	d := roundTripDelta(t, mustDelta(t, v2, v1))
	if err := recon.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if diff := nodesMatch(recon.Root, v2.Root, ""); diff != "" {
		t.Fatalf("after move: %s", diff)
	}
}

// TestTreeDeltaStamps: replication stamps travel with DeltaSet ops.
func TestTreeDeltaStamps(t *testing.T) {
	tree := NewTree()
	(&SetValue{Path: []string{"x"}, Value: "0"}).Apply(tree)
	v1 := tree.SnapshotView().(*Tree)
	n := tree.EnsureNode([]string{"x"})
	n.Value, n.HasValue, n.Stamp, n.StampBy = "1", true, 42, "nodeB"
	v2 := tree.SnapshotView().(*Tree)

	recon := NewTree()
	(&SetValue{Path: []string{"x"}, Value: "0"}).Apply(recon)
	if err := recon.ApplyDelta(roundTripDelta(t, mustDelta(t, v2, v1))); err != nil {
		t.Fatal(err)
	}
	got := recon.FindNode([]string{"x"})
	if got == nil || got.Stamp != 42 || got.StampBy != "nodeB" || got.Value != "1" {
		t.Fatalf("stamps lost: %+v", got)
	}
}

func mustDelta(t *testing.T, cur, prev *Tree) any {
	t.Helper()
	d, err := cur.DeltaSince(prev)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
