package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
	"smalldb/internal/vfs/faultfs"
)

// TestUpdatesProgressDuringSlowCheckpoint is the tentpole's concurrency
// property: while a checkpoint drags a large root through a deliberately
// slow disk, updates and enquiries keep completing, each far faster than
// the checkpoint itself, and the update-lock stall the checkpoint charges
// is a small fraction of its total duration.
func TestUpdatesProgressDuringSlowCheckpoint(t *testing.T) {
	mem := vfs.NewMem(1)
	slow := vfs.NewSlow(mem)
	s := openKV(t, slow, func(c *Config) { c.Retain = 1 })
	defer s.Close()

	// ~1 MiB of root state, built at full speed.
	val := strings.Repeat("x", 4096)
	for i := 0; i < 256; i++ {
		put(t, s, fmt.Sprintf("big%d", i), val)
	}

	// ~4 MiB/s: the checkpoint's megabyte takes ~250ms; an update's
	// ~100-byte log write costs microseconds of pacing.
	slow.SetDelay(0, 4<<20)
	defer slow.SetDelay(0, 0)

	windowOpen := make(chan struct{})
	var once sync.Once
	s.SetCheckpointStageHook(func(stage CheckpointStage) {
		if stage == StageMirrorOpen {
			once.Do(func() { close(windowOpen) })
		}
	})
	defer s.SetCheckpointStageHook(nil)

	cpDone := make(chan error, 1)
	cpStart := time.Now()
	go func() { cpDone <- s.Checkpoint() }()
	<-windowOpen

	// Hammer updates and enquiries until the checkpoint finishes.
	var committed int
	var worst time.Duration
	for {
		select {
		case err := <-cpDone:
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			cpElapsed := time.Since(cpStart)
			if committed == 0 {
				t.Fatal("no update committed during the checkpoint window")
			}
			if worst > cpElapsed/2 {
				t.Errorf("worst in-window update took %v of a %v checkpoint: updates are stalling on checkpoint I/O", worst, cpElapsed)
			}
			st := s.Stats()
			if st.CheckpointStallTime > cpElapsed/2 {
				t.Errorf("update-lock stall %v of a %v checkpoint", st.CheckpointStallTime, cpElapsed)
			}
			if st.CheckpointStallDist.Count != 1 {
				t.Errorf("stall histogram count = %d, want 1", st.CheckpointStallDist.Count)
			}
			// Every in-window update must have reached the new log.
			if got, ok := get(t, s, fmt.Sprintf("during%d", committed-1)); !ok || got != "v" {
				t.Errorf("last in-window update lost: %q %v", got, ok)
			}
			return
		default:
		}
		t0 := time.Now()
		put(t, s, fmt.Sprintf("during%d", committed), "v")
		if _, ok := get(t, s, "big0"); !ok {
			t.Fatal("enquiry failed during checkpoint")
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
		committed++
	}
}

// TestMirroredEntriesSurvivReopen: updates committed inside the mirror
// window must be visible after a clean close and reopen — they live only in
// the new log once the version flipped.
func TestMirroredEntriesSurviveReopen(t *testing.T) {
	fs := vfs.NewMem(1)
	reg := obs.NewRegistry()
	s := openKV(t, fs, func(c *Config) { c.Obs = reg })
	put(t, s, "before", "1")

	s.SetCheckpointStageHook(func(stage CheckpointStage) {
		if err := s.Apply(&putKV{Key: "at-" + string(stage), Value: "v"}); err != nil {
			t.Errorf("apply at %s: %v", stage, err)
		}
	})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.SetCheckpointStageHook(nil)
	if got := reg.Counter("checkpoint_mirrored_entries").Value(); got != 3 {
		t.Errorf("checkpoint_mirrored_entries = %d, want 3", got)
	}
	s.Close()

	s2 := openKV(t, fs)
	defer s2.Close()
	for _, k := range []string{"before", "at-mirror-open", "at-file-written", "at-flipped"} {
		if _, ok := get(t, s2, k); !ok {
			t.Errorf("key %s lost across the mirror-window checkpoint", k)
		}
	}
}

// TestCheckpointErrorSurfacedWithoutPoison: a checkpoint that cannot write
// its files must report the failure — error return, LastCheckpointErr,
// core_checkpoint_errors — and leave the store fully serviceable on the old
// version.
func TestCheckpointErrorSurfacedWithoutPoison(t *testing.T) {
	boom := errors.New("checkpoint disk full")
	reg := obs.NewRegistry()
	ffs := faultfs.New(vfs.NewMem(1), faultfs.Options{CrashAt: faultfs.Never})
	s := openKV(t, ffs, func(c *Config) { c.Obs = reg })
	defer s.Close()
	put(t, s, "k", "v1")

	ffs.FailName("checkpoint2", boom)
	if err := s.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint = %v, want %v", err, boom)
	}
	if err := s.LastCheckpointErr(); !errors.Is(err, boom) {
		t.Fatalf("LastCheckpointErr = %v, want %v", err, boom)
	}
	if got := reg.Counter("core_checkpoint_errors").Value(); got != 1 {
		t.Errorf("core_checkpoint_errors = %d, want 1", got)
	}

	// Not poisoned: updates and enquiries still work…
	put(t, s, "k", "v2")
	if got, _ := get(t, s, "k"); got != "v2" {
		t.Fatalf("k = %q after failed checkpoint", got)
	}
	// …and once the disk heals, a checkpoint succeeds and clears the
	// error.
	ffs.ClearFaults()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if err := s.LastCheckpointErr(); err != nil {
		t.Fatalf("LastCheckpointErr after heal: %v", err)
	}
	if got := reg.Counter("core_checkpoint_errors").Value(); got != 1 {
		t.Errorf("core_checkpoint_errors = %d after heal, want 1", got)
	}
}

// TestAutoCheckpointOffUpdatePath: an automatic checkpoint runs on its own
// goroutine, so updates keep committing while one is in flight — proved
// deterministically by holding the checkpoint open at a stage and applying
// through it.
func TestAutoCheckpointOffUpdatePath(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.MaxLogEntries = 8 })
	defer s.Close()

	inWindow := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.SetCheckpointStageHook(func(stage CheckpointStage) {
		if stage == StageMirrorOpen {
			once.Do(func() {
				close(inWindow)
				<-release
			})
		}
	})
	defer s.SetCheckpointStageHook(nil)

	// Cross the threshold; the auto checkpoint parks at mirror-open.
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	<-inWindow
	// The checkpoint is provably in flight and yet updates commit.
	for i := 0; i < 5; i++ {
		put(t, s, fmt.Sprintf("win%d", i), "v")
	}
	close(release)
	waitCheckpoints(t, s, 1)
	if err := s.LastCheckpointErr(); err != nil {
		t.Fatalf("auto checkpoint failed: %v", err)
	}
}

// TestCloseWaitsForInflightAutoCheckpoint: Close must let a running
// background checkpoint finish rather than yanking the log out from under
// it.
func TestCloseWaitsForInflightAutoCheckpoint(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.MaxLogEntries = 8 })

	started := make(chan struct{})
	var once sync.Once
	s.SetCheckpointStageHook(func(stage CheckpointStage) {
		if stage == StageMirrorOpen {
			once.Do(func() { close(started) })
			time.Sleep(20 * time.Millisecond) // hold the window open across Close
		}
	})
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("k%d", i), "v")
	}
	<-started
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := s.Stats().Checkpoints; got != 1 {
		t.Errorf("checkpoints completed = %d, want 1 (Close must wait)", got)
	}
	if err := s.LastCheckpointErr(); err != nil {
		t.Errorf("in-flight checkpoint failed under Close: %v", err)
	}

	// The checkpointed state reopens cleanly.
	s2 := openKV(t, fs)
	defer s2.Close()
	if _, ok := get(t, s2, "k9"); !ok {
		t.Error("k9 lost")
	}
}

// TestConcurrentCheckpointChurn exercises Apply/View/Checkpoint/Stats/
// History from many goroutines at once; its value is under -race, where any
// unsynchronized access in the mirror-window paths would trip the detector.
func TestConcurrentCheckpointChurn(t *testing.T) {
	fs := vfs.NewMem(1)
	s := openKV(t, fs, func(c *Config) { c.GroupCommit = true })
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				put(t, s, fmt.Sprintf("w%d-%d", w, i%50), "v")
				s.View(func(root any) error { return nil })
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
			_ = s.Stats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = s.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
