// Quickstart: the smallest complete smalldb program.
//
// It defines a one-table database (name → e-mail address), opens a store in
// a temporary directory, applies a few single-shot updates (each one disk
// write), reads them back from memory, restarts the store to show recovery,
// and finally checkpoints.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"smalldb"
)

// AddressBook is the entire database: an ordinary Go data structure.
type AddressBook struct {
	Emails map[string]string
}

// AddEntry is a single-shot transaction.
type AddEntry struct {
	Name, Email string
}

// Verify checks preconditions under the update lock (readers still active).
func (u *AddEntry) Verify(root any) error {
	if u.Name == "" {
		return errors.New("empty name")
	}
	if _, exists := root.(*AddressBook).Emails[u.Name]; exists {
		return fmt.Errorf("%s already has an entry", u.Name)
	}
	return nil
}

// Apply mutates under the exclusive lock, after the update is on disk.
func (u *AddEntry) Apply(root any) error {
	root.(*AddressBook).Emails[u.Name] = u.Email
	return nil
}

func init() {
	smalldb.Register(&AddressBook{})
	smalldb.RegisterUpdate(&AddEntry{})
}

func main() {
	dir := filepath.Join(os.TempDir(), "smalldb-quickstart")
	defer os.RemoveAll(dir)
	fs, err := smalldb.NewDirFS(dir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := smalldb.Config{
		FS:      fs,
		NewRoot: func() any { return &AddressBook{Emails: map[string]string{}} },
		Retain:  1, // keep one previous checkpoint for hard-error recovery
	}
	st, err := smalldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Updates: verified, logged (the commit point — one disk write),
	// then applied in memory.
	for _, e := range []AddEntry{
		{"birrell", "birrell@src.dec.com"},
		{"jones", "jones@cs.cmu.edu"},
		{"wobber", "wobber@src.dec.com"},
	} {
		e := e
		if err := st.Apply(&e); err != nil {
			log.Fatal(err)
		}
	}
	// A precondition failure never reaches the disk.
	if err := st.Apply(&AddEntry{Name: "jones", Email: "dup@example.com"}); err != nil {
		fmt.Println("rejected as expected:", err)
	}

	// Enquiries: pure virtual memory, no disk at all.
	st.View(func(root any) error {
		book := root.(*AddressBook)
		fmt.Printf("%d entries; wobber = %s\n", len(book.Emails), book.Emails["wobber"])
		return nil
	})

	// Restart: recovery = read checkpoint + replay log.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	st, err = smalldb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	stats := st.Stats()
	fmt.Printf("recovered by replaying %d log entries\n", stats.RestartEntries)

	// A checkpoint bounds the next restart: it pickles the whole
	// database and empties the log.
	if err := st.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written; version %d, log now empty (%d bytes)\n",
		st.Version(), st.Stats().LogBytes)

	st.View(func(root any) error {
		fmt.Printf("still have %d entries after restart + checkpoint\n",
			len(root.(*AddressBook).Emails))
		return nil
	})
}
