package multistore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"smalldb/internal/vfs"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("net/hosts/h%d/addr", i)
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	// Same membership, different insertion orders: identical routing.
	a, err := NewRing(0, "g0", "g1", "g2", "g3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(0, "g3", "g1", "g0", "g2")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range testKeys(4000) {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("placement depends on insertion order: %q -> %q vs %q", k, oa, ob)
		}
		counts[oa]++
	}
	// Every group takes a real share of the space (balance smoke; the
	// virtual nodes keep skew modest but this bound is deliberately loose).
	for _, g := range a.Groups() {
		if counts[g] < 4000/4/4 {
			t.Errorf("group %s owns only %d/4000 keys: %v", g, counts[g], counts)
		}
	}
}

// flatOwners is the flat-map model: the owner of every key, materialized.
func flatOwners(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.Owner(k)
	}
	return m
}

func TestRingMinimalMovementOnAdd(t *testing.T) {
	keys := testKeys(4000)
	r, err := NewRing(0, "g0", "g1", "g2", "g3")
	if err != nil {
		t.Fatal(err)
	}
	before := flatOwners(r, keys)
	if err := r.Add("g4"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		// Consistency property: a key may only move TO the new group.
		if after != "g4" {
			t.Fatalf("key %q moved %s -> %s on adding g4", k, before[k], after)
		}
	}
	// Expected movement is 1/5 of the keys; allow generous slack, but a
	// modulo-style reshuffle (≈4/5 moved) must fail.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("adding 1 of 5 groups moved %d/%d keys", moved, len(keys))
	}
}

func TestRingMinimalMovementOnRemove(t *testing.T) {
	keys := testKeys(4000)
	r, err := NewRing(0, "g0", "g1", "g2", "g3")
	if err != nil {
		t.Fatal(err)
	}
	before := flatOwners(r, keys)
	if err := r.Remove("g2"); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "g2" {
			if after == "g2" {
				t.Fatalf("key %q still routed to removed g2", k)
			}
			continue
		}
		// Only the removed group's keys move.
		if after != before[k] {
			t.Fatalf("key %q moved %s -> %s on removing g2", k, before[k], after)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(0); !errors.Is(err, ErrNoGroups) {
		t.Errorf("empty ring: %v", err)
	}
	r, err := NewRing(0, "g0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("g0"); !errors.Is(err, ErrNoGroups) {
		t.Errorf("removing last group: %v", err)
	}
	if err := r.Remove("nope"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("removing unknown group: %v", err)
	}
	if err := r.Add("g0"); err == nil {
		t.Error("double add accepted")
	}
}

func TestShardsRebalanceUnderLoad(t *testing.T) {
	fs := vfs.NewMem(7)
	sh, err := OpenShards(ShardsConfig{
		FS:      fs,
		Groups:  []string{"g0", "g1", "g2", "g3"},
		Routed:  []string{"g0", "g1", "g2"}, // g3 provisioned but idle
		NewRoot: newTable,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Writers hammer the shard set while g3 joins the ring mid-load; every
	// apply records the owner it landed on, and afterwards each key's
	// value must be readable in exactly that partition.
	const writers, perWriter = 4, 200
	type placed struct{ key, val, owner string }
	results := make([][]placed, writers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("load/w%d/k%d", w, i)
				val := fmt.Sprintf("v%d", rng.Int())
				owner, err := sh.Apply(key, &putRow{K: key, V: val})
				if err != nil {
					t.Errorf("apply %s: %v", key, err)
					return
				}
				results[w] = append(results[w], placed{key, val, owner})
			}
		}()
	}
	close(start)
	if err := sh.AddGroup("g3"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	sawNew := false
	for _, rs := range results {
		for _, p := range rs {
			if p.owner == "g3" {
				sawNew = true
			}
			var got string
			var ok bool
			if err := sh.ViewGroup(p.owner, func(root any) error {
				got, ok = root.(*table).Rows[p.key]
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !ok || got != p.val {
				t.Fatalf("key %s not in partition %s it was placed in (%q, %v)", p.key, p.owner, got, ok)
			}
		}
	}
	if !sawNew {
		t.Log("no key landed on g3 during the window (timing); routing still consistent")
	}
	// After the rebalance the ring must route every recorded key to a
	// stable owner that answers Views.
	if got := len(sh.Routed()); got != 4 {
		t.Fatalf("routed groups = %d, want 4", got)
	}
}
