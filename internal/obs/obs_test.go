package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- counters and gauges ---

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if got := c.String(); got != "42" {
		t.Fatalf("String = %q, want \"42\"", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestConcurrentCounter(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// Nil metric handles must be usable: that is the whole wiring story.
func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	_ = c.Value()
	_ = c.String()
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	_ = g.Value()
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram snapshot count = %d", s.Count)
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry should hand out nil metrics")
	}
	r.Register("x", 1)
	r.Each(func(string, any) { t.Error("nil registry Each should not call fn") })
	Emit(nil, Event{Name: "e"})
}

// --- histogram buckets ---

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		b := bucketOf(c.v)
		if b != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, b, c.bucket)
			continue
		}
		lo, hi := bucketBounds(b)
		v := c.v
		if v < 0 {
			v = 0
		}
		if v < lo || v >= hi && !(b >= 63 && hi == math.MaxInt64) {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d)", c.v, b, lo, hi)
		}
	}
	// Bounds must tile the non-negative int64 line with no gaps.
	for i := 1; i < numBuckets; i++ {
		_, prevHi := bucketBounds(i - 1)
		lo, _ := bucketBounds(i)
		if i <= 63 && prevHi != lo {
			t.Errorf("gap between bucket %d (hi %d) and %d (lo %d)", i-1, prevHi, i, lo)
		}
	}
}

// --- percentile math ---

func TestQuantileUniform(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 1000*1001/2 || s.Max != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	// The true p50 of 1..1000 is 500; log buckets quantize to the
	// containing octave [256,512), so the estimate must land there.
	if s.P50 < 256 || s.P50 >= 512 {
		t.Errorf("P50 = %d, want within [256, 512)", s.P50)
	}
	// p90=900 and p99=990 both live in [512,1024), but the estimate is
	// clamped to the exact max.
	if s.P90 < 512 || s.P90 > 1000 {
		t.Errorf("P90 = %d, want within [512, 1000]", s.P90)
	}
	if s.P99 < s.P90 || s.P99 > 1000 {
		t.Errorf("P99 = %d, want within [P90, 1000]", s.P99)
	}
	if got := s.Quantile(1.0); got != 1000 {
		t.Errorf("Quantile(1.0) = %d, want exact max 1000", got)
	}
	if got := s.Quantile(0); got > s.P50 {
		t.Errorf("Quantile(0) = %d, want ≤ P50 %d", got, s.P50)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	lo, _ := bucketBounds(bucketOf(100))
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > 100 {
			t.Errorf("Quantile(%v) = %d, want within [%d, 100]", q, got, lo)
		}
	}
	if s.Max != 100 || s.Mean != 100 {
		t.Errorf("Max/Mean = %d/%d, want 100/100", s.Max, s.Mean)
	}
}

func TestQuantileEmptyAndZero(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	h.Observe(0)
	h.Observe(-7) // clamps to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("zero-only snapshot: count=%d max=%d p99=%d", s.Count, s.Max, s.P99)
	}
}

func TestSnapshotStringsAndBar(t *testing.T) {
	h := NewHistogram()
	h.Observe(int64(3 * time.Millisecond))
	s := h.Snapshot()
	if got := s.DurationString(); !strings.Contains(got, "count=1") {
		t.Errorf("DurationString = %q", got)
	}
	if got := s.SizeString(); !strings.Contains(got, "total=") {
		t.Errorf("SizeString = %q", got)
	}
	if got := s.Bar(20, nil); !strings.Contains(got, "#") {
		t.Errorf("Bar = %q, want at least one bar", got)
	}
	if got := (Snapshot{}).Bar(20, nil); !strings.Contains(got, "empty") {
		t.Errorf("empty Bar = %q", got)
	}
}

// --- tracer ---

func TestMultiFanOut(t *testing.T) {
	var a, b []string
	ta := FuncTracer(func(e Event) { a = append(a, e.Name) })
	tb := FuncTracer(func(e Event) { b = append(b, e.Name) })
	m := Multi(ta, nil, Nop, tb)
	m.Emit(Event{Name: "x"})
	m.Emit(Event{Name: "y"})
	if len(a) != 2 || len(b) != 2 || a[1] != "y" || b[0] != "x" {
		t.Fatalf("fan-out: a=%v b=%v", a, b)
	}
	// Collapsing: all-nop input yields Nop, single tracer comes back as-is.
	if got := Multi(nil, Nop); got != Nop {
		t.Errorf("Multi(nil, Nop) = %#v, want Nop", got)
	}
	if got := Multi(ta, nil); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", ta) {
		t.Errorf("Multi(single) should return the tracer itself")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Name: fmt.Sprintf("e%d", i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// Oldest-first: e6..e9 survive.
	for i, e := range evs {
		if want := fmt.Sprintf("e%d", 6+i); e.Name != want {
			t.Errorf("event %d = %s, want %s", i, e.Name, want)
		}
	}
}

func TestSlowOpsFilter(t *testing.T) {
	var lines []string
	tr := SlowOps(10*time.Millisecond, func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	tr.Emit(Event{Name: "fast", Dur: time.Millisecond})
	tr.Emit(Event{Name: "slow", Dur: 20 * time.Millisecond})
	tr.Emit(Event{Name: "failed", Err: fmt.Errorf("boom")})
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want 2 (slow + failed): %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "slow") || !strings.Contains(lines[1], "boom") {
		t.Errorf("lines = %v", lines)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Name: "update.commit", Dur: 2 * time.Millisecond, Attrs: []Attr{A("seq", 7)}}
	s := e.String()
	for _, want := range []string{"update.commit", "seq=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
}

// --- registry ---

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits")
	c1.Inc()
	if c2 := r.Counter("hits"); c2 != c1 {
		t.Error("second Counter(hits) returned a different object")
	}
	// A name registered as one kind cannot come back as another.
	if g := r.Gauge("hits"); g != nil {
		t.Error("Gauge(hits) on a counter name should return nil")
	}
	if h := r.Histogram("hits"); h != nil {
		t.Error("Histogram(hits) on a counter name should return nil")
	}
	r.Histogram("lat_ns").Observe(100)
	r.Register("custom", func() any { return 9 })
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("Names = %v, want 3 entries", names)
	}
	snap := r.Snapshot()
	if snap["custom"] != 9 {
		t.Errorf("snapshot custom = %v, want evaluated func result 9", snap["custom"])
	}
	if snap["hits"] != uint64(1) {
		t.Errorf("snapshot hits = %v (%T), want 1", snap["hits"], snap["hits"])
	}
}

func TestRegistryJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	r.Histogram("commit_ns").ObserveDuration(2 * time.Millisecond)
	r.Histogram("payload_bytes").Observe(4096)
	var jsonBuf strings.Builder
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(jsonBuf.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not JSON: %v\n%s", err, jsonBuf.String())
	}
	if decoded["ops"] != float64(3) {
		t.Errorf("ops = %v", decoded["ops"])
	}
	if _, ok := decoded["commit_ns"].(map[string]any); !ok {
		t.Errorf("commit_ns = %v, want histogram object", decoded["commit_ns"])
	}
	var textBuf strings.Builder
	r.WriteText(&textBuf)
	text := textBuf.String()
	if !strings.Contains(text, "ops") || !strings.Contains(text, "2ms") {
		t.Errorf("WriteText missing duration formatting:\n%s", text)
	}
	if !strings.Contains(text, "4.0KB") {
		t.Errorf("WriteText missing size formatting:\n%s", text)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Histogram(fmt.Sprintf("h%d", w%3)).Observe(int64(i))
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Errorf("shared = %d, want %d", got, 8*200)
	}
}

// --- HTTP mux ---

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_updates").Add(12)
	r.Histogram("core_update_commit_ns").ObserveDuration(time.Millisecond)
	rec := NewRecorder(8)
	rec.Emit(Event{Name: "update.commit", Dur: time.Millisecond})
	srv := httptest.NewServer(Mux(r, rec))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if m["core_updates"] != float64(12) {
		t.Errorf("/metrics core_updates = %v, want 12", m["core_updates"])
	}

	code, body = get("/stats")
	if code != http.StatusOK || !strings.Contains(body, "core_updates") {
		t.Errorf("/stats status %d body %q", code, body)
	}
	if !strings.Contains(body, "update.commit") {
		t.Errorf("/stats missing recorder events:\n%s", body)
	}
	code, body = get("/stats?buckets=1")
	if code != http.StatusOK || !strings.Contains(body, "#") {
		t.Errorf("/stats?buckets=1 should render distributions, got %d:\n%s", code, body)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/ status %d", code)
	}
}

func TestServeAdmin(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + a.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var nilSrv *AdminServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil AdminServer.Close = %v", err)
	}
}
