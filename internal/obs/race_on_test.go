//go:build race

package obs

// raceEnabled reports whether the race detector is on; allocation-ceiling
// tests skip under it (instrumentation adds allocations).
const raceEnabled = true
