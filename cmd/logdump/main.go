// Command logdump inspects a small database's disk directory: the version
// files, checkpoints and redo logs of the paper's §3 protocol. It decodes
// pickled data generically (no knowledge of the application's Go types), so
// it works on any database this library wrote — the audit-trail reader the
// paper's §4 gestures at ("the log files form a complete audit trail for
// the database").
//
// Usage:
//
//	logdump -dir /var/lib/nsd               # summarize the directory
//	logdump -dir /var/lib/nsd -log 3        # dump logfile3's entries
//	logdump -dir /var/lib/nsd -checkpoint 3 # dump checkpoint3's contents
//	logdump -dir /var/lib/nsd -stats        # payload-size histograms per log
//	logdump -dir /var/lib/nsd -stats -log 3 # histogram for one log file
//	logdump -dir /var/lib/nsd -flight       # decode the flight-recorder ring
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smalldb/internal/checkpoint"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/vfs"
	"smalldb/internal/wal"
)

func main() {
	var (
		dir    = flag.String("dir", "", "database directory (required)")
		logV   = flag.Uint64("log", 0, "dump the entries of logfile<N>")
		archV  = flag.Uint64("archive", 0, "dump the entries of archive-logfile<N> (§4 audit trail)")
		cpV    = flag.Uint64("checkpoint", 0, "dump the contents of checkpoint<N>")
		maxLen = flag.Int("max", 0, "dump at most this many log entries (0 = all)")
		stats  = flag.Bool("stats", false, "print entry-count, byte and payload-size histogram summaries instead of entries")
		flight = flag.Bool("flight", false, "decode the crash-surviving flight-recorder ring (the black box)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "logdump: -dir is required")
		os.Exit(2)
	}
	fs, err := vfs.NewOS(*dir)
	if err != nil {
		fatal("%v", err)
	}

	switch {
	case *flight:
		dumpFlight(fs)
	case *stats && *logV > 0:
		statsLogFile(fs, checkpoint.LogName(*logV))
	case *stats && *archV > 0:
		statsLogFile(fs, checkpoint.ArchiveLogName(*archV))
	case *stats:
		statsAll(fs)
	case *logV > 0:
		dumpLogFile(fs, checkpoint.LogName(*logV), *maxLen)
	case *archV > 0:
		dumpLogFile(fs, checkpoint.ArchiveLogName(*archV), *maxLen)
	case *cpV > 0:
		dumpCheckpoint(fs, *cpV)
	default:
		summarize(fs)
	}
}

func summarize(fs vfs.FS) {
	names, err := fs.List()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println("directory contents:")
	for _, n := range names {
		size, _ := fs.Stat(n)
		fmt.Printf("  %-20s %8d bytes\n", n, size)
	}
	for _, vf := range []string{"version", "newversion"} {
		if data, err := vfs.ReadFile(fs, vf); err == nil {
			fmt.Printf("%s: %s\n", vf, strings.TrimSpace(string(data)))
		}
	}
	// Count entries of each log (current and archived) without decoding
	// payloads.
	for _, n := range names {
		if !strings.HasPrefix(n, "logfile") && !strings.HasPrefix(n, "archive-logfile") {
			continue
		}
		start, ok, err := wal.FirstSeq(fs, n)
		if err != nil || !ok {
			fmt.Printf("%s: empty\n", n)
			continue
		}
		entries := 0
		var first, last uint64
		wal.Replay(fs, n, start, wal.ReplayOptions{}, func(seq uint64, _ []byte) error {
			if entries == 0 {
				first = seq
			}
			last = seq
			entries++
			return nil
		})
		fmt.Printf("%s: %d entries (seq %d..%d)\n", n, entries, first, last)
	}
}

// statsAll prints a payload-size summary line for every log in the
// directory, current and archived.
func statsAll(fs vfs.FS) {
	names, err := fs.List()
	if err != nil {
		fatal("%v", err)
	}
	found := false
	for _, n := range names {
		if !strings.HasPrefix(n, "logfile") && !strings.HasPrefix(n, "archive-logfile") {
			continue
		}
		found = true
		statsLogFile(fs, n)
	}
	if !found {
		fmt.Println("no log files")
	}
}

// statsLogFile replays one log, feeding payload sizes into a histogram,
// and prints count/bytes/percentile summaries plus the distribution.
func statsLogFile(fs vfs.FS, name string) {
	size, err := fs.Stat(name)
	if err != nil {
		fatal("%v", err)
	}
	start, ok, err := wal.FirstSeq(fs, name)
	if err != nil {
		fatal("%v", err)
	}
	if !ok {
		fmt.Printf("%s: empty (%d bytes on disk)\n", name, size)
		return
	}
	// Skip damaged entries so a partly unreadable log still summarizes.
	var h obs.Histogram
	var first, last uint64
	res, err := wal.Replay(fs, name, start, wal.ReplayOptions{SkipDamaged: true}, func(seq uint64, payload []byte) error {
		if first == 0 {
			first = seq
		}
		last = seq
		h.Observe(int64(len(payload)))
		return nil
	})
	if err != nil {
		fatal("replaying %s: %v", name, err)
	}
	s := h.Snapshot()
	fmt.Printf("%s: %d entries (seq %d..%d), %d bytes on disk (%.1f%% framing overhead)\n",
		name, s.Count, first, last, size, overheadPct(size, s.Sum))
	fmt.Printf("  payload sizes: %s\n", s.SizeString())
	if res.Truncated {
		fmt.Printf("  (torn tail entry discarded at offset %d)\n", res.GoodSize)
	}
	if res.Damaged > 0 {
		fmt.Printf("  (%d damaged entries skipped)\n", res.Damaged)
	}
	fmt.Print(s.Bar(40, sizeFmt))
}

func sizeFmt(v int64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	default:
		return fmt.Sprintf("%dB", v)
	}
}

func overheadPct(disk, payload int64) float64 {
	if disk <= 0 {
		return 0
	}
	return 100 * float64(disk-payload) / float64(disk)
}

func dumpLogFile(fs vfs.FS, name string, max int) {
	start, ok, err := wal.FirstSeq(fs, name)
	if err != nil {
		fatal("%v", err)
	}
	if !ok {
		fmt.Printf("%s: empty\n", name)
		return
	}
	n := 0
	res, err := wal.Replay(fs, name, start, wal.ReplayOptions{}, func(seq uint64, payload []byte) error {
		if max > 0 && n >= max {
			return fmt.Errorf("stop")
		}
		n++
		v, derr := pickle.NewDecoder(strings.NewReader(string(payload))).DecodeAny()
		if derr != nil {
			fmt.Printf("entry %d: %d bytes (undecodable: %v)\n", seq, len(payload), derr)
			return nil
		}
		fmt.Printf("entry %d: %s\n", seq, pickle.Format(v))
		return nil
	})
	if err != nil && !strings.Contains(err.Error(), "stop") {
		fatal("replaying %s: %v", name, err)
	}
	if res.Truncated {
		fmt.Printf("(torn tail entry discarded at offset %d)\n", res.GoodSize)
	}
}

// dumpFlight decodes the durable image of the flight-recorder ring: the
// last events the daemon recorded before it (or its power) died.
func dumpFlight(fs vfs.FS) {
	events, err := obs.ReadFlight(fs, "")
	if err != nil {
		fatal("%v", err)
	}
	if len(events) == 0 {
		fmt.Println("flight recorder: no events")
		return
	}
	fmt.Printf("flight recorder: %d events\n", len(events))
	for _, e := range events {
		fmt.Println(e.String())
	}
}

func dumpCheckpoint(fs vfs.FS, v uint64) {
	name := checkpoint.CheckpointName(v)
	f, err := fs.Open(name)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	val, err := pickle.NewDecoder(f).DecodeAny()
	if err != nil {
		fatal("decoding %s: %v", name, err)
	}
	fmt.Printf("%s:\n%s\n", name, pickle.Format(val))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "logdump: "+format+"\n", args...)
	os.Exit(1)
}
