package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// patterned returns n bytes with a position-dependent pattern, so any
// misalignment across chunk boundaries shows up as a content mismatch.
func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

// drain reads ra to EOF with the given read-buffer size.
func drain(t *testing.T, ra *ReadAhead, bufSize int) []byte {
	t.Helper()
	var out bytes.Buffer
	buf := make([]byte, bufSize)
	for {
		n, err := ra.Read(buf)
		out.Write(buf[:n])
		if err == io.EOF {
			return out.Bytes()
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	}
}

func TestReadAheadSizes(t *testing.T) {
	// Sizes straddling every interesting boundary: empty, tiny, one byte
	// short of a chunk, exactly one chunk, one byte over, several chunks,
	// and a short tail after full chunks.
	sizes := []int{0, 1, 100, readAheadChunk - 1, readAheadChunk, readAheadChunk + 1,
		3 * readAheadChunk, 3*readAheadChunk + 17}
	for _, size := range sizes {
		want := patterned(size)
		ra := NewReadAhead(bytes.NewReader(want))
		got := drain(t, ra, 8192)
		ra.Close()
		if !bytes.Equal(got, want) {
			t.Errorf("size %d: content mismatch (got %d bytes)", size, len(got))
		}
	}
}

func TestReadAheadZeroLengthFile(t *testing.T) {
	ra := NewReadAhead(bytes.NewReader(nil))
	defer ra.Close()
	n, err := ra.Read(make([]byte, 16))
	if n != 0 || err != io.EOF {
		t.Errorf("read on empty input: n=%d err=%v, want 0, EOF", n, err)
	}
	// EOF is sticky.
	if _, err := ra.Read(make([]byte, 16)); err != io.EOF {
		t.Errorf("second read: %v", err)
	}
}

// TestReadAheadSmallReads crosses chunk boundaries with a read buffer that
// never aligns to them.
func TestReadAheadSmallReads(t *testing.T) {
	want := patterned(2*readAheadChunk + 5000)
	ra := NewReadAhead(bytes.NewReader(want))
	defer ra.Close()
	got := drain(t, ra, 777)
	if !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// shortReader returns data in small odd-sized chunks, exercising the
// io.ReadFull tail handling inside fill.
type shortReader struct {
	data []byte
	step int
}

func (r *shortReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.step
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestReadAheadShortUnderlyingReads(t *testing.T) {
	want := patterned(readAheadChunk + 333)
	ra := NewReadAhead(&shortReader{data: want, step: 1000})
	defer ra.Close()
	got := drain(t, ra, 4096)
	if !bytes.Equal(got, want) {
		t.Fatalf("content mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// errReader yields some bytes and then a hard error.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReadAheadErrorAfterBytes(t *testing.T) {
	want := patterned(1234)
	boom := errors.New("disk on fire")
	ra := NewReadAhead(&errReader{data: want, err: boom})
	defer ra.Close()
	var out bytes.Buffer
	buf := make([]byte, 512)
	var got error
	for {
		n, err := ra.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			got = err
			break
		}
	}
	// Every byte before the error must be delivered, then the error.
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("delivered %d bytes before error, want %d", out.Len(), len(want))
	}
	if !errors.Is(got, boom) {
		t.Errorf("got %v, want the underlying error", got)
	}
}

func TestReadAheadCloseUnblocks(t *testing.T) {
	ra := NewReadAhead(bytes.NewReader(patterned(10 * readAheadChunk)))
	if err := ra.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent, and reads after Close do not hang.
	ra.Close()
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if _, err := ra.Read(buf); err == io.EOF {
			return
		}
	}
	// A few reads may still drain chunks already queued; that's fine, but
	// it must terminate with EOF, which the loop above checks.
	t.Log("reads after Close kept returning queued data; acceptable if bounded")
}
