package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"smalldb/internal/vfs"
)

func writeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func mustInit(t *testing.T, fs vfs.FS, content string) State {
	t.Helper()
	st, err := Init(fs, writeBytes([]byte(content)))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInitAndRecover(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	if st.Version != 1 {
		t.Fatalf("version %d", st.Version)
	}
	got, err := Recover(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || len(got.Retained) != 0 {
		t.Errorf("recovered %+v", got)
	}
	data, err := vfs.ReadFile(fs, got.CheckpointName())
	if err != nil || string(data) != "cp1" {
		t.Errorf("checkpoint content %q, %v", data, err)
	}
	if !vfs.Exists(fs, got.LogName()) {
		t.Error("log file missing")
	}
}

func TestRecoverVirgin(t *testing.T) {
	fs := vfs.NewMem(1)
	if _, err := Recover(fs, 1); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("got %v", err)
	}
}

func TestSwitch(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	st2, err := Switch(fs, st, writeBytes([]byte("cp2")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version != 2 {
		t.Fatalf("version %d", st2.Version)
	}
	// With retain 0, version 1's files are gone — the paper's base
	// protocol.
	if vfs.Exists(fs, CheckpointName(1)) || vfs.Exists(fs, LogName(1)) {
		t.Error("old version not deleted")
	}
	names, _ := fs.List()
	want := []string{"checkpoint2", "logfile2", "version"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("directory: %v", names)
	}
	data, _ := vfs.ReadFile(fs, "version")
	if string(data) != "2\n" {
		t.Errorf("version content %q", data)
	}
}

func TestSwitchRetainsPrevious(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	st2, err := Switch(fs, st, writeBytes([]byte("cp2")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2.Retained, []uint64{1}) {
		t.Fatalf("retained %v", st2.Retained)
	}
	if !vfs.Exists(fs, CheckpointName(1)) || !vfs.Exists(fs, LogName(1)) {
		t.Error("previous version not retained")
	}
	// A further switch with retain 1 drops version 1 but keeps 2.
	st3, err := Switch(fs, st2, writeBytes([]byte("cp3")), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st3.Retained, []uint64{2}) {
		t.Errorf("retained %v", st3.Retained)
	}
	if vfs.Exists(fs, CheckpointName(1)) {
		t.Error("version 1 survived retention window")
	}
}

func TestRecoverAfterCrashBeforeCommit(t *testing.T) {
	// Crash after writing checkpoint2 and logfile2 but before newversion
	// is durable: version 1 must remain current, and the debris must be
	// deleted.
	fs := vfs.NewMem(1)
	mustInit(t, fs, "cp1")
	writeCheckpointFile(fs, CheckpointName(2), writeBytes([]byte("cp2")))
	createEmptySynced(fs, LogName(2))
	f, _ := fs.Create("newversion")
	f.Write([]byte("2\n")) // never synced
	f.Close()
	fs.Crash()

	st, err := Recover(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 {
		t.Fatalf("version %d", st.Version)
	}
	for _, n := range []string{"checkpoint2", "logfile2", "newversion"} {
		if vfs.Exists(fs, n) {
			t.Errorf("debris %s survived", n)
		}
	}
}

func TestRecoverAfterCrashAfterCommit(t *testing.T) {
	// Crash after newversion is durable but before the old files are
	// deleted: version 2 is current; recovery finishes the switch.
	fs := vfs.NewMem(1)
	mustInit(t, fs, "cp1")
	writeCheckpointFile(fs, CheckpointName(2), writeBytes([]byte("cp2")))
	createEmptySynced(fs, LogName(2))
	vfs.WriteFile(fs, "newversion", []byte("2\n"))
	fs.Crash()

	st, err := Recover(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 {
		t.Fatalf("version %d", st.Version)
	}
	if vfs.Exists(fs, "newversion") {
		t.Error("newversion not installed as version")
	}
	data, _ := vfs.ReadFile(fs, "version")
	if string(data) != "2\n" {
		t.Errorf("version content %q", data)
	}
	if vfs.Exists(fs, CheckpointName(1)) {
		t.Error("old checkpoint not cleaned with retain 0")
	}
}

func TestRecoverMidCleanupCrash(t *testing.T) {
	// Crash after deleting version but before renaming newversion.
	fs := vfs.NewMem(1)
	mustInit(t, fs, "cp1")
	writeCheckpointFile(fs, CheckpointName(2), writeBytes([]byte("cp2")))
	createEmptySynced(fs, LogName(2))
	vfs.WriteFile(fs, "newversion", []byte("2\n"))
	fs.Remove("version")
	fs.Crash()

	st, err := Recover(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 {
		t.Fatalf("version %d", st.Version)
	}
}

func TestRecoverCrashedInit(t *testing.T) {
	// Crash during Init (before the version file is durable): the
	// directory recovers as uninitialized and a fresh Init succeeds.
	fs := vfs.NewMem(1)
	writeCheckpointFile(fs, CheckpointName(1), writeBytes([]byte("partial")))
	fs.Crash()
	if _, err := Recover(fs, 1); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("got %v", err)
	}
	st := mustInit(t, fs, "cp1-redo")
	if st.Version != 1 {
		t.Fatalf("version %d", st.Version)
	}
	data, _ := vfs.ReadFile(fs, st.CheckpointName())
	if string(data) != "cp1-redo" {
		t.Errorf("content %q", data)
	}
}

func TestRecoverDamagedVersionOfEstablishedDB(t *testing.T) {
	// Losing the version file of an established database (later
	// checkpoints exist) must be reported, not silently reinitialized.
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	st, _ = Switch(fs, st, writeBytes([]byte("cp2")), 0)
	fs.Remove("version")
	if _, err := Recover(fs, 0); err == nil || errors.Is(err, ErrNotInitialized) {
		t.Errorf("got %v", err)
	}
}

func TestCheckpointWriterError(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	boom := errors.New("pickling failed")
	if _, err := Switch(fs, st, func(io.Writer) error { return boom }, 0); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// The failed switch must not have committed.
	got, err := Recover(fs, 0)
	if err != nil || got.Version != 1 {
		t.Errorf("after failed switch: %+v, %v", got, err)
	}
}

func TestManySwitches(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "v1")
	for i := 2; i <= 20; i++ {
		var err error
		st, err = Switch(fs, st, writeBytes([]byte(fmt.Sprintf("v%d", i))), 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.Version != 20 {
		t.Fatalf("version %d", st.Version)
	}
	names, _ := fs.List()
	// Exactly: checkpoint19, checkpoint20, logfile19, logfile20, version.
	if len(names) != 5 {
		t.Errorf("directory has %d files: %v", len(names), names)
	}
	got, err := Recover(fs, 1)
	if err != nil || got.Version != 20 || !reflect.DeepEqual(got.Retained, []uint64{19}) {
		t.Errorf("recover: %+v, %v", got, err)
	}
}

// The exhaustive crash test: inject a sync failure at every possible sync
// point of a Switch, crash, and verify Recover lands on a consistent
// version (either old or new, with readable files).
func TestSwitchCrashAtEverySyncPoint(t *testing.T) {
	for failAt := 1; failAt <= 6; failAt++ {
		fs := vfs.NewMem(int64(failAt))
		st := mustInit(t, fs, "old-checkpoint")

		count := 0
		boom := errors.New("injected crash")
		fs.FailSync = func(name string) error {
			count++
			if count >= failAt {
				return boom
			}
			return nil
		}
		_, serr := Switch(fs, st, writeBytes([]byte("new-checkpoint")), 1)
		fs.FailSync = nil
		fs.Crash()

		got, err := Recover(fs, 1)
		if err != nil {
			t.Fatalf("failAt %d: recover: %v", failAt, err)
		}
		switch got.Version {
		case 1:
			if serr == nil {
				t.Errorf("failAt %d: switch claimed success but version is 1", failAt)
			}
			data, err := vfs.ReadFile(fs, got.CheckpointName())
			if err != nil || string(data) != "old-checkpoint" {
				t.Errorf("failAt %d: old checkpoint damaged: %q %v", failAt, data, err)
			}
		case 2:
			data, err := vfs.ReadFile(fs, got.CheckpointName())
			if err != nil || string(data) != "new-checkpoint" {
				t.Errorf("failAt %d: new checkpoint damaged: %q %v", failAt, data, err)
			}
		default:
			t.Errorf("failAt %d: impossible version %d", failAt, got.Version)
		}
	}
}

// TestShardedCleanupAndArchive: a version whose log was sharded has stream
// files logfileN.1, logfileN.2, ... next to logfileN; retention, deletion
// and archival must cover all of them, not just the base file.
func TestShardedCleanupAndArchive(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	// Give version 1 a sharded log: two extra stream files.
	for _, n := range []string{ShardLogName(1, 1), ShardLogName(1, 2)} {
		if err := vfs.WriteFile(fs, n, []byte("stream")); err != nil {
			t.Fatal(err)
		}
	}

	// Retained: the whole stream set survives.
	st2, err := SwitchWith(fs, st, writeBytes([]byte("cp2")), Options{Retain: 1, ArchiveLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2.Retained, []uint64{1}) {
		t.Fatalf("retained %v", st2.Retained)
	}
	for _, n := range []string{LogName(1), ShardLogName(1, 1), ShardLogName(1, 2)} {
		if !vfs.Exists(fs, n) {
			t.Errorf("retained stream %s missing", n)
		}
	}

	// Out of the window: every stream is archived, none deleted silently.
	st3, err := SwitchWith(fs, st2, writeBytes([]byte("cp3")), Options{Retain: 1, ArchiveLogs: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = st3
	for _, n := range []string{LogName(1), ShardLogName(1, 1), ShardLogName(1, 2), CheckpointName(1)} {
		if vfs.Exists(fs, n) {
			t.Errorf("%s survived cleanup", n)
		}
	}
	for shard := 0; shard < 3; shard++ {
		if !vfs.Exists(fs, ArchiveShardLogName(1, shard)) {
			t.Errorf("archive stream %d missing", shard)
		}
	}
	vers, err := ArchivedLogs(fs)
	if err != nil || !reflect.DeepEqual(vers, []uint64{1}) {
		t.Errorf("archived versions %v, %v", vers, err)
	}

	// Without archiving, cleanup deletes the whole stream set.
	fs2 := vfs.NewMem(1)
	stA := mustInit(t, fs2, "cp1")
	vfs.WriteFile(fs2, ShardLogName(1, 1), []byte("stream"))
	if _, err := Switch(fs2, stA, writeBytes([]byte("cp2")), 0); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(fs2, ShardLogName(1, 1)) {
		t.Error("stream file survived unarchived cleanup")
	}
}

// TestShardedAbort: Abort clears the stream files of a prepared sharded
// switch along with the base pair.
func TestShardedAbort(t *testing.T) {
	fs := vfs.NewMem(1)
	st := mustInit(t, fs, "cp1")
	next, err := Prepare(fs, st, writeBytes([]byte("cp2")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := CreateShardLogFiles(fs, next, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		f.Close()
	}
	Abort(fs, next)
	for shard := 0; shard < 3; shard++ {
		if vfs.Exists(fs, ShardLogName(next, shard)) {
			t.Errorf("stream %d survived abort", shard)
		}
	}
	if vfs.Exists(fs, CheckpointName(next)) {
		t.Error("checkpoint survived abort")
	}
	if st2, err := Recover(fs, 0); err != nil || st2.Version != 1 {
		t.Errorf("recover after abort: %+v %v", st2, err)
	}
}
