// Package faultfs wraps a vfs.Mem with deterministic fault injection for
// crash-consistency torture testing.
//
// Every mutating call — Create, Append-that-creates, Rename, Remove, Write,
// WriteAt, Truncate, Sync — is assigned a monotonically increasing op index.
// A torture harness first runs a workload once to count its ops, then
// replays it with CrashAt(n) for every n: when the workload's n-th mutating
// op is about to execute, the file system "loses power" — the op does not
// happen, the durable (synced-only) image of the disk is frozen via
// vfs.Mem.CloneSynced, and every subsequent operation fails with
// ErrCrashed, so the workload dies the way a process does when the machine
// goes down. Recovery then runs against the frozen image exactly as a
// restart would against the real disk.
//
// Beyond the crash point, individual ops can be failed deterministically:
// FailSyncAt(k, err) makes the k-th Sync from now return err (the store
// must treat it as a failed commit), and FailName(substr, err) makes every
// mutating op touching a matching file name fail — a sticky EIO on one
// file, the paper's hard-error model.
//
// The op trace (bounded by Options.TraceCap) records the tail of the op
// stream for debugging: when a crash point produces an invariant violation,
// the trace shows exactly which file operations preceded the simulated
// power cut. Counters (faultfs_ops, faultfs_syncs, faultfs_crashes,
// faultfs_injected_errors) feed internal/obs when a registry is configured.
package faultfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

// ErrCrashed is returned by every operation after the crash point fired:
// the simulated machine is off.
var ErrCrashed = errors.New("faultfs: simulated power failure")

// Op classifies a mutating file-system call.
type Op uint8

// The mutating op kinds, in no particular order.
const (
	OpCreate Op = iota
	OpAppend
	OpRename
	OpRemove
	OpWrite
	OpTruncate
	OpSync
)

var opNames = [...]string{"create", "append", "rename", "remove", "write", "truncate", "sync"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one traced op.
type Record struct {
	Index int64
	Op    Op
	Name  string
	// Injected is non-empty when the op failed by injection rather than
	// executing.
	Injected string
}

func (r Record) String() string {
	s := fmt.Sprintf("#%d %s %s", r.Index, r.Op, r.Name)
	if r.Injected != "" {
		s += " [injected: " + r.Injected + "]"
	}
	return s
}

// Options configures a FS.
type Options struct {
	// CrashAt is the op index at which power fails. 0 crashes before the
	// very first op; a negative value (use Never) disarms the crash.
	CrashAt int64
	// TraceCap bounds the op trace (a ring of the most recent ops);
	// 0 means keep no trace.
	TraceCap int
	// Obs, when non-nil, receives the faultfs_* counters.
	Obs *obs.Registry
}

// FS wraps a Mem, indexing and optionally failing its mutating operations.
type FS struct {
	mem *vfs.Mem

	mu       sync.Mutex
	next     int64 // index the next mutating op will get
	crashAt  int64
	crashed  bool
	frozen   *vfs.Mem // durable image captured when the crash fired
	syncSeen int64    // syncs observed since the last FailSyncAt arm
	failSync struct {
		k   int64 // fail the k-th sync from arm time; 0 = disarmed
		err error
	}
	nameRules []nameRule
	trace     []Record
	traceCap  int
	traceOff  int // ring start when len(trace) == traceCap

	ops      *obs.Counter
	syncs    *obs.Counter
	crashes  *obs.Counter
	injected *obs.Counter
}

type nameRule struct {
	substr string
	err    error
}

// Never is the CrashAt value that disarms the crash point, leaving a
// transparent op counter.
const Never int64 = -1

// New wraps mem.
func New(mem *vfs.Mem, opts Options) *FS {
	f := &FS{mem: mem, crashAt: opts.CrashAt, traceCap: opts.TraceCap}
	if opts.CrashAt < 0 {
		f.crashAt = -1
	}
	reg := opts.Obs
	f.ops = reg.Counter("faultfs_ops")
	f.syncs = reg.Counter("faultfs_syncs")
	f.crashes = reg.Counter("faultfs_crashes")
	f.injected = reg.Counter("faultfs_injected_errors")
	if opts.CrashAt == 0 {
		// Crash before the very first op: freeze immediately.
		f.mu.Lock()
		f.fireCrashLocked()
		f.mu.Unlock()
	}
	return f
}

// SetCrashAt arms (or, with a negative n, disarms) the crash point. Ops
// already indexed keep their indices; the crash fires when op n is about to
// execute.
func (f *FS) SetCrashAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	if n >= 0 && f.next >= n && !f.crashed {
		f.fireCrashLocked()
	}
}

// FailSyncAt makes the k-th Sync from now (1-based) fail with err, once.
func (f *FS) FailSyncAt(k int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncSeen = 0
	f.failSync.k = k
	f.failSync.err = err
}

// FailName makes every mutating op on a name containing substr fail with
// err, until ClearFaults.
func (f *FS) FailName(substr string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nameRules = append(f.nameRules, nameRule{substr: substr, err: err})
}

// ClearFaults disarms sync- and name-based injection (not the crash point).
func (f *FS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync.k = 0
	f.nameRules = nil
}

// OpCount reports how many mutating ops have been indexed so far; after a
// full workload run it is the N of the crash-point range [0, N].
func (f *FS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Crashed reports whether the crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Snapshot returns the durable image of the disk: the state a restart
// would find. After a crash it is the image frozen at the crash point;
// before one, it is the current synced view.
func (f *FS) Snapshot() *vfs.Mem {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return f.frozen
	}
	return f.mem.CloneSynced()
}

// Trace returns the recorded op tail, oldest first.
func (f *FS) Trace() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Record, 0, len(f.trace))
	out = append(out, f.trace[f.traceOff:]...)
	out = append(out, f.trace[:f.traceOff]...)
	return out
}

func (f *FS) fireCrashLocked() {
	f.crashed = true
	f.frozen = f.mem.CloneSynced()
	f.crashes.Inc()
}

func (f *FS) record(r Record) {
	if f.traceCap <= 0 {
		return
	}
	if len(f.trace) < f.traceCap {
		f.trace = append(f.trace, r)
		return
	}
	f.trace[f.traceOff] = r
	f.traceOff = (f.traceOff + 1) % f.traceCap
}

// step indexes one mutating op and decides its fate: ErrCrashed once power
// is out (firing the crash if this op is the armed one), or an injected
// error, or nil meaning the op proceeds.
func (f *FS) step(op Op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w (op %s %s)", ErrCrashed, op, name)
	}
	idx := f.next
	f.next++
	f.ops.Inc()
	rec := Record{Index: idx, Op: op, Name: name}
	if f.crashAt >= 0 && idx >= f.crashAt {
		rec.Injected = "crash"
		f.record(rec)
		f.fireCrashLocked()
		return fmt.Errorf("%w (at op %d: %s %s)", ErrCrashed, idx, op, name)
	}
	if op == OpSync {
		f.syncs.Inc()
		f.syncSeen++
		if f.failSync.k > 0 && f.syncSeen == f.failSync.k {
			f.failSync.k = 0
			f.injected.Inc()
			rec.Injected = f.failSync.err.Error()
			f.record(rec)
			return f.failSync.err
		}
	}
	for _, rule := range f.nameRules {
		if rule.substr != "" && strings.Contains(name, rule.substr) {
			f.injected.Inc()
			rec.Injected = rule.err.Error()
			f.record(rec)
			return rule.err
		}
	}
	f.record(rec)
	return nil
}

// alive is the gate for non-mutating calls: they are not indexed, but a
// dead machine serves nothing.
func (f *FS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// --- vfs.FS ---

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	if err := f.step(OpCreate, name); err != nil {
		return nil, err
	}
	inner, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Open implements vfs.FS.
func (f *FS) Open(name string) (vfs.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	inner, err := f.mem.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Append implements vfs.FS. It is indexed as a mutating op because it
// creates the file when absent.
func (f *FS) Append(name string) (vfs.File, error) {
	if err := f.step(OpAppend, name); err != nil {
		return nil, err
	}
	inner, err := f.mem.Append(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// OpenRW implements vfs.FS.
func (f *FS) OpenRW(name string) (vfs.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	inner, err := f.mem.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.step(OpRename, oldname+" -> "+newname); err != nil {
		return err
	}
	return f.mem.Rename(oldname, newname)
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	if err := f.step(OpRemove, name); err != nil {
		return err
	}
	return f.mem.Remove(name)
}

// List implements vfs.FS.
func (f *FS) List() ([]string, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.mem.List()
}

// Stat implements vfs.FS.
func (f *FS) Stat(name string) (int64, error) {
	if err := f.alive(); err != nil {
		return 0, err
	}
	return f.mem.Stat(name)
}

// file wraps an open handle, indexing its mutating calls.
type file struct {
	fs    *FS
	inner vfs.File
}

func (h *file) Name() string { return h.inner.Name() }

func (h *file) Read(p []byte) (int, error) {
	if err := h.fs.alive(); err != nil {
		return 0, err
	}
	return h.inner.Read(p)
}

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	if err := h.fs.alive(); err != nil {
		return 0, err
	}
	return h.inner.ReadAt(p, off)
}

func (h *file) Write(p []byte) (int, error) {
	if err := h.fs.step(OpWrite, h.inner.Name()); err != nil {
		return 0, err
	}
	return h.inner.Write(p)
}

func (h *file) WriteAt(p []byte, off int64) (int, error) {
	if err := h.fs.step(OpWrite, h.inner.Name()); err != nil {
		return 0, err
	}
	return h.inner.WriteAt(p, off)
}

func (h *file) Seek(offset int64, whence int) (int64, error) {
	if err := h.fs.alive(); err != nil {
		return 0, err
	}
	return h.inner.Seek(offset, whence)
}

func (h *file) Truncate(size int64) error {
	if err := h.fs.step(OpTruncate, h.inner.Name()); err != nil {
		return err
	}
	return h.inner.Truncate(size)
}

func (h *file) Sync() error {
	if err := h.fs.step(OpSync, h.inner.Name()); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *file) Size() (int64, error) {
	if err := h.fs.alive(); err != nil {
		return 0, err
	}
	return h.inner.Size()
}

// Close never fails: closing handles is the one thing a dying process's
// kernel still does.
func (h *file) Close() error {
	if h.fs.alive() != nil {
		return nil
	}
	return h.inner.Close()
}
