package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"smalldb/internal/vfs"
)

func collect(t *testing.T, fs vfs.FS, name string, firstSeq uint64, opts ReplayOptions) (ReplayResult, [][]byte) {
	t.Helper()
	var got [][]byte
	res, err := Replay(fs, name, firstSeq, opts, func(seq uint64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return res, got
}

func TestAppendReplay(t *testing.T) {
	fs := vfs.NewMem(1)
	l, err := Create(fs, "log", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Errorf("seq = %d, want %d", seq, i+1)
		}
	}
	l.Close()

	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 10 || res.LastSeq != 10 || res.NextSeq != 11 || res.Truncated {
		t.Errorf("result: %+v", res)
	}
	for i, p := range got {
		if string(p) != fmt.Sprintf("entry-%d", i) {
			t.Errorf("entry %d = %q", i, p)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Close()
	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 0 || len(got) != 0 || res.NextSeq != 1 {
		t.Errorf("result: %+v", res)
	}
}

func TestEmptyPayload(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 1 || len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("result: %+v %v", res, got)
	}
}

func TestFirstSeqZeroRejected(t *testing.T) {
	fs := vfs.NewMem(1)
	if _, err := Create(fs, "log", 0, Options{}); err == nil {
		t.Error("Create with firstSeq 0 succeeded")
	}
	if _, err := Open(fs, "log", 0, Options{}); err == nil {
		t.Error("Open with nextSeq 0 succeeded")
	}
}

func TestReopenAppend(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	l.Close()

	res, _ := collect(t, fs, "log", 1, ReplayOptions{})
	l2, err := Open(fs, "log", res.NextSeq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append([]byte("c"))
	if err != nil || seq != 3 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	l2.Close()

	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 3 || string(got[2]) != "c" {
		t.Errorf("after reopen: %+v %q", res, got)
	}
}

func TestCommitPointSemantics(t *testing.T) {
	// An entry whose Append returned is durable across a crash; an entry
	// being written when the crash happens is either fully present or
	// discarded by replay — never half-applied. This is the paper's §4
	// transient-failure guarantee.
	fs := vfs.NewMem(42)
	l, _ := Create(fs, "log", 1, Options{})
	l.Append([]byte("committed-1"))
	l.Append([]byte("committed-2"))
	l.Close()
	fs.Crash()

	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 2 {
		t.Fatalf("committed entries lost: %+v", res)
	}
	if string(got[0]) != "committed-1" || string(got[1]) != "committed-2" {
		t.Errorf("entries: %q", got)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	// Simulate a crash mid-write by appending a full entry, then writing
	// a partial frame directly and crashing with a torn sync.
	for seed := int64(0); seed < 30; seed++ {
		fs := vfs.NewMem(seed)
		l, _ := Create(fs, "log", 1, Options{})
		l.Append([]byte("good"))
		l.Close()

		// Hand-write a torn entry: a valid frame cut short.
		full := frame(2, []byte("this entry will be torn in half"))
		f, _ := fs.Append("log")
		f.Write(full[:len(full)/2])
		f.Close() // never synced
		fs.CrashTorn(8)

		var got [][]byte
		res, err := Replay(fs, "log", 1, ReplayOptions{}, func(seq uint64, p []byte) error {
			got = append(got, p)
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Entries != 1 || string(got[0]) != "good" {
			t.Fatalf("seed %d: %+v %q", seed, res, got)
		}
	}
}

func TestRepairTruncates(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Append([]byte("keep"))
	l.Close()
	f, _ := fs.Append("log")
	f.Write([]byte{0x01, 0x02, 0x03}) // garbage tail
	f.Sync()
	f.Close()

	res, err := Replay(fs, "log", 1, ReplayOptions{Repair: true}, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("garbage tail not detected")
	}
	size, _ := fs.Stat("log")
	if size != res.GoodSize {
		t.Errorf("file not repaired: size %d, good %d", size, res.GoodSize)
	}
	// After repair, appending from NextSeq and replaying is clean.
	l2, err := Open(fs, "log", res.NextSeq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Append([]byte("new"))
	l2.Close()
	res2, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res2.Entries != 2 || res2.Truncated || string(got[1]) != "new" {
		t.Errorf("after repair: %+v %q", res2, got)
	}
}

func TestSkipDamagedEntry(t *testing.T) {
	// Hard failure in the middle of the log: with SkipDamaged, replay
	// hops over the unreadable entry and delivers the rest — §4's
	// "ignoring just the damaged log entry".
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Append([]byte("first"))
	start := l.Size()
	l.Append([]byte("the-damaged-one"))
	end := l.Size()
	l.Append([]byte("third"))
	l.Close()

	// Damage the middle entry's payload (a few bytes past its header).
	fs.Damage("log", start+6, 4)

	// Without SkipDamaged: replay fails.
	if _, err := Replay(fs, "log", 1, ReplayOptions{}, func(uint64, []byte) error { return nil }); err == nil {
		t.Error("expected error replaying damaged log without SkipDamaged")
	}

	res, got := collect(t, fs, "log", 1, ReplayOptions{SkipDamaged: true})
	if res.Entries != 2 || res.Damaged != 1 {
		t.Fatalf("result: %+v", res)
	}
	if string(got[0]) != "first" || string(got[1]) != "third" {
		t.Errorf("entries: %q", got)
	}
	_ = end
}

func TestSequenceDiscontinuityDetected(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 5, Options{})
	l.Append([]byte("x"))
	l.Close()
	// Replaying expecting seq 1 finds seq 5: a mismatched log.
	if _, err := Replay(fs, "log", 1, ReplayOptions{}, func(uint64, []byte) error { return nil }); err == nil {
		t.Error("sequence discontinuity not detected")
	}
}

func TestReplayCallbackError(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	l.Close()
	boom := errors.New("boom")
	_, err := Replay(fs, "log", 1, ReplayOptions{}, func(uint64, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("got %v", err)
	}
}

func TestPoisonedLog(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	fail := errors.New("disk full")
	fs.FailSync = func(string) error { return fail }
	if _, err := l.Append([]byte("x")); !errors.Is(err, fail) {
		t.Fatalf("got %v", err)
	}
	fs.FailSync = nil
	// The log is poisoned: subsequent appends fail too.
	if _, err := l.Append([]byte("y")); err == nil {
		t.Error("append succeeded on poisoned log")
	}
	l.Close()
}

func TestConcurrentAppendsNoGroup(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	var wg sync.WaitGroup
	const writers, each = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	res, _ := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != writers*each {
		t.Errorf("entries = %d, want %d", res.Entries, writers*each)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	var wg sync.WaitGroup
	const writers, each = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	res, _ := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != writers*each {
		t.Errorf("entries = %d, want %d", res.Entries, writers*each)
	}
}

func TestGroupCommitSharesSyncs(t *testing.T) {
	// With group commit and many concurrent writers, the number of syncs
	// must be well below the number of entries.
	// A sync must be slow for batching to have a window; an instant
	// in-memory sync lets every appender lead its own commit.
	fs := vfs.NewMem(1)
	var mu sync.Mutex
	syncs := 0
	fs.FailSync = func(string) error {
		mu.Lock()
		syncs++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	}
	l, _ := Create(fs, "log", 1, Options{})
	mu.Lock()
	baseline := syncs
	mu.Unlock()
	var wg sync.WaitGroup
	const writers, each = 16, 20
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append([]byte("payload"))
			}
		}()
	}
	wg.Wait()
	l.Close()
	mu.Lock()
	total := syncs - baseline
	mu.Unlock()
	if total >= writers*each/2 {
		t.Errorf("group commit did not batch: %d syncs for %d entries", total, writers*each)
	}
}

func TestClosedLog(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("got %v", err)
	}
	if err := l.Close(); err != nil { // double close is fine
		t.Errorf("double close: %v", err)
	}
}

func TestFirstSeq(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 7, Options{})
	l.Append([]byte("x"))
	l.Close()
	seq, ok, err := FirstSeq(fs, "log")
	if err != nil || !ok || seq != 7 {
		t.Errorf("got %d %v %v", seq, ok, err)
	}

	// Empty log.
	l2, _ := Create(fs, "empty", 1, Options{})
	l2.Close()
	if _, ok, err := FirstSeq(fs, "empty"); ok || err != nil {
		t.Errorf("empty: %v %v", ok, err)
	}

	// Missing file.
	if _, _, err := FirstSeq(fs, "missing"); err == nil {
		t.Error("missing file: no error")
	}

	// Garbage-only file.
	vfs.WriteFile(fs, "junk", []byte{0xFF, 0xFE})
	if _, ok, err := FirstSeq(fs, "junk"); ok || err != nil {
		t.Errorf("junk: %v %v", ok, err)
	}
}

func TestFlush(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	// Enqueue without waiting.
	_, wait := l.AppendAsync([]byte("async"))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// After Flush, the waiter returns instantly and the entry is durable
	// across a crash.
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	fs.Crash()
	res, got := collect(t, fs, "log", 1, ReplayOptions{})
	if res.Entries != 1 || string(got[0]) != "async" {
		t.Errorf("flush not durable: %+v %q", res, got)
	}
}

func TestFlushOnClosed(t *testing.T) {
	fs := vfs.NewMem(1)
	l, _ := Create(fs, "log", 1, Options{})
	l.Close()
	if err := l.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("got %v", err)
	}
}

// Property: any sequence of payloads replays intact, in order, regardless
// of payload content (binary, empty, long).
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		fs := vfs.NewMem(7)
		l, err := Create(fs, "log", 1, Options{})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		i := 0
		res, err := Replay(fs, "log", 1, ReplayOptions{}, func(seq uint64, p []byte) error {
			if string(p) != string(payloads[i]) {
				return fmt.Errorf("entry %d mismatch", i)
			}
			i++
			return nil
		})
		return err == nil && res.Entries == len(payloads) && !res.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: truncating the log file at any byte boundary yields a replay of
// some prefix of the committed entries, never garbage, never an error.
func TestQuickPrefixAfterTruncation(t *testing.T) {
	fs := vfs.NewMem(7)
	l, _ := Create(fs, "log", 1, Options{})
	var sizes []int64
	for i := 0; i < 20; i++ {
		l.Append([]byte(fmt.Sprintf("entry-number-%d", i)))
		sizes = append(sizes, l.Size())
	}
	l.Close()
	full, _ := vfs.ReadFile(fs, "log")

	for cut := 0; cut <= len(full); cut++ {
		cutFS := vfs.NewMem(7)
		vfs.WriteFile(cutFS, "log", full[:cut])
		n := 0
		res, err := Replay(cutFS, "log", 1, ReplayOptions{}, func(seq uint64, p []byte) error {
			if want := fmt.Sprintf("entry-number-%d", n); string(p) != want {
				return fmt.Errorf("at cut %d entry %d = %q", cut, n, p)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The replayed prefix must be exactly the entries wholly
		// inside the cut.
		want := 0
		for _, s := range sizes {
			if s <= int64(cut) {
				want++
			}
		}
		if res.Entries != want {
			t.Fatalf("cut %d: replayed %d entries, want %d", cut, res.Entries, want)
		}
	}
}
