package checkpoint

import (
	"io"
	"reflect"
	"testing"

	"smalldb/internal/vfs"
)

func initV1(t *testing.T, fs vfs.FS, body string) State {
	t.Helper()
	st, err := Init(fs, func(w io.Writer) error {
		_, err := w.Write([]byte(body))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func names(t *testing.T, fs vfs.FS) []string {
	t.Helper()
	ns, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// TestSplitStepsEquivalentToSwitch: running the split steps in order must
// leave the directory in exactly the state one SwitchWith call does — the
// split API is a decomposition, not a second protocol.
func TestSplitStepsEquivalentToSwitch(t *testing.T) {
	write := func(w io.Writer) error {
		_, err := w.Write([]byte("root-v2"))
		return err
	}

	monoFS := vfs.NewMem(1)
	monoSt, err := SwitchWith(monoFS, initV1(t, monoFS, "root-v1"), write, Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}

	splitFS := vfs.NewMem(1)
	cur := initV1(t, splitFS, "root-v1")
	next, err := Prepare(splitFS, cur, write, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if next != cur.Version+1 {
		t.Fatalf("Prepare returned version %d, want %d", next, cur.Version+1)
	}
	lf, err := CreateLogFile(splitFS, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CommitNewVersion(splitFS, next); err != nil {
		t.Fatal(err)
	}
	if err := InstallVersion(splitFS); err != nil {
		t.Fatal(err)
	}
	splitSt, err := Finish(splitFS, next, Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(monoSt, splitSt) {
		t.Errorf("states diverge: switch %+v, split %+v", monoSt, splitSt)
	}
	if a, b := names(t, monoFS), names(t, splitFS); !reflect.DeepEqual(a, b) {
		t.Errorf("directories diverge: switch %v, split %v", a, b)
	}
	if data, err := vfs.ReadFile(splitFS, splitSt.CheckpointName()); err != nil || string(data) != "root-v2" {
		t.Errorf("checkpoint contents %q, %v", data, err)
	}
}

// TestSplitCrashBetweenCommitAndInstall: once CommitNewVersion has synced
// the newversion file, the switch is committed — a crash before
// InstallVersion/Finish must still recover to the NEW version, with
// recovery completing the rename and the cleanup.
func TestSplitCrashBetweenCommitAndInstall(t *testing.T) {
	fs := vfs.NewMem(1)
	cur := initV1(t, fs, "root-v1")
	next, err := Prepare(fs, cur, func(w io.Writer) error {
		_, err := w.Write([]byte("root-v2"))
		return err
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		t.Fatal(err)
	}
	lf.Close()
	if err := CommitNewVersion(fs, next); err != nil {
		t.Fatal(err)
	}
	// "Crash": neither InstallVersion nor Finish runs.
	st, err := RecoverWith(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != next {
		t.Fatalf("recovered version %d, want %d", st.Version, next)
	}
	for _, n := range []string{newVersionFile, CheckpointName(cur.Version), LogName(cur.Version)} {
		if vfs.Exists(fs, n) {
			t.Errorf("recovery left %s behind", n)
		}
	}
}

// TestSplitCrashBeforeCommit: with the checkpoint and log files of the next
// version written but newversion absent, the OLD version must recover and
// the debris must be cleared — the window in which the non-blocking
// checkpoint does all its heavy I/O.
func TestSplitCrashBeforeCommit(t *testing.T) {
	fs := vfs.NewMem(1)
	cur := initV1(t, fs, "root-v1")
	next, err := Prepare(fs, cur, func(w io.Writer) error {
		_, err := w.Write([]byte("root-v2"))
		return err
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		t.Fatal(err)
	}
	lf.Close()
	st, err := RecoverWith(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != cur.Version {
		t.Fatalf("recovered version %d, want %d", st.Version, cur.Version)
	}
	for _, n := range []string{CheckpointName(next), LogName(next)} {
		if vfs.Exists(fs, n) {
			t.Errorf("recovery left %s behind", n)
		}
	}
}

// TestAbortClearsPreparedFiles: Abort removes what Prepare and
// CreateLogFile made, leaving the old version's state untouched.
func TestAbortClearsPreparedFiles(t *testing.T) {
	fs := vfs.NewMem(1)
	cur := initV1(t, fs, "root-v1")
	next, err := Prepare(fs, cur, func(w io.Writer) error {
		_, err := w.Write([]byte("root-v2"))
		return err
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := CreateLogFile(fs, next)
	if err != nil {
		t.Fatal(err)
	}
	lf.Close()
	Abort(fs, next)
	for _, n := range []string{CheckpointName(next), LogName(next)} {
		if vfs.Exists(fs, n) {
			t.Errorf("Abort left %s behind", n)
		}
	}
	st, err := RecoverWith(fs, Options{})
	if err != nil || st.Version != cur.Version {
		t.Fatalf("after abort: %+v, %v", st, err)
	}
	// Aborting twice is harmless.
	Abort(fs, next)
}
