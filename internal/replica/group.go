// Group mode generalizes the paper's hardwired replica pair to an N-node
// group with quorum commit. The node an update arrives at commits it
// locally (it is the update's origin — the single-writer store underneath
// is untouched), fans the entry out to every other member through
// per-member ordered push streams, and acks the client once a configurable
// write quorum W of members — the origin counts as one — have synced and
// applied it. Members that fall behind (partition, crash, full queue) are
// marked lagging and repaired in the background by a push-style
// anti-entropy loop driven from the origin's own history; the per-member
// streams stay ordered so a push can never be silently skipped as a
// sequence gap and still counted as an ack.

package replica

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"smalldb/internal/core"
	"smalldb/internal/nameserver"
	"smalldb/internal/obs"
	"smalldb/internal/pickle"
	"smalldb/internal/rpc"
)

// Typed config errors: the group-membership decode path rejects malformed
// input with these (never a panic) — the fuzz target holds it to that.
var (
	// ErrNoMembers marks an empty membership.
	ErrNoMembers = errors.New("replica: group has no members")
	// ErrDuplicateMember marks a member name that appears twice.
	ErrDuplicateMember = errors.New("replica: duplicate group member")
	// ErrBadMember marks a malformed member (empty name or address, or a
	// name containing the spec separators).
	ErrBadMember = errors.New("replica: malformed group member")
	// ErrBadQuorum marks a write quorum outside 1..N.
	ErrBadQuorum = errors.New("replica: write quorum out of range")
	// ErrSelfNotMember marks a local node name missing from the membership.
	ErrSelfNotMember = errors.New("replica: self is not a group member")
)

// Member is one node of a replica group.
type Member struct {
	Name string
	Addr string
}

// GroupConfig describes a replica group from one member's point of view.
type GroupConfig struct {
	// Self names the local node; it must appear in Members.
	Self string
	// Members is the full group membership, including Self.
	Members []Member
	// W is the write quorum: an update is acked once W members (the
	// origin counts as one) have synced and applied it. 0 means majority.
	W int
	// QueueDepth bounds each member's ordered push stream, in entries;
	// a member whose stream overflows is marked lagging and repaired by
	// anti-entropy instead. 0 means 1024.
	QueueDepth int
	// QuorumTimeout bounds how long Apply waits for the quorum after the
	// local commit; 0 means the push policy's budget plus a grace period.
	QuorumTimeout time.Duration
	// PushPolicy bounds each push RPC; SyncPolicy bounds each
	// anti-entropy RPC (Vector, Push, Install). Zero values mean the rpc
	// defaults.
	PushPolicy rpc.RetryPolicy
	SyncPolicy rpc.RetryPolicy
	// AntiEntropyEvery is the background repair interval for lagging
	// members; 0 means 100ms. Repair is also kicked immediately whenever
	// a member starts lagging.
	AntiEntropyEvery time.Duration
	// Obs receives the group gauges (replica_group_*); Tracer the push
	// and anti-entropy events.
	Obs    *obs.Registry
	Tracer obs.Tracer
}

// Majority returns the default write quorum for an n-member group:
// ⌈(n+1)/2⌉, i.e. more than half.
func Majority(n int) int {
	if n <= 0 {
		return 1
	}
	return n/2 + 1
}

// Validate checks the membership and quorum, normalizing W to the
// majority default. It returns the typed config errors above.
func (c *GroupConfig) Validate() error {
	if len(c.Members) == 0 {
		return ErrNoMembers
	}
	seen := make(map[string]bool, len(c.Members))
	for _, m := range c.Members {
		if m.Name == "" || m.Addr == "" || strings.ContainsAny(m.Name, "=,") {
			return fmt.Errorf("%w: %q=%q", ErrBadMember, m.Name, m.Addr)
		}
		if seen[m.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicateMember, m.Name)
		}
		seen[m.Name] = true
	}
	if c.Self == "" || !seen[c.Self] {
		return fmt.Errorf("%w: %q not in %d members", ErrSelfNotMember, c.Self, len(c.Members))
	}
	if c.W == 0 {
		c.W = Majority(len(c.Members))
	}
	if c.W < 1 || c.W > len(c.Members) {
		return fmt.Errorf("%w: W=%d with %d members", ErrBadQuorum, c.W, len(c.Members))
	}
	return nil
}

// ParseGroupSpec decodes the nsd-style group spec: self is the local node
// name, peers is a comma-separated "name=addr" list of the other members
// (whitespace around items is tolerated, empty items are not), and w is
// the write quorum (0 = majority of the whole group, self included). The
// returned config's Members holds self (with an empty-is-fine local addr
// of "local") plus every peer.
func ParseGroupSpec(self, peers string, w int) (GroupConfig, error) {
	cfg := GroupConfig{Self: self, W: w}
	if strings.TrimSpace(self) == "" || strings.ContainsAny(self, "=,") {
		return cfg, fmt.Errorf("%w: self %q", ErrBadMember, self)
	}
	cfg.Members = append(cfg.Members, Member{Name: self, Addr: "local"})
	if strings.TrimSpace(peers) != "" {
		for _, item := range strings.Split(peers, ",") {
			item = strings.TrimSpace(item)
			name, addr, ok := strings.Cut(item, "=")
			if !ok || strings.TrimSpace(name) == "" || strings.TrimSpace(addr) == "" {
				return cfg, fmt.Errorf("%w: %q (want name=addr)", ErrBadMember, item)
			}
			cfg.Members = append(cfg.Members, Member{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)})
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// String renders the config back into spec form, for logs.
func (c GroupConfig) String() string {
	parts := make([]string, 0, len(c.Members))
	for _, m := range c.Members {
		if m.Name == c.Self {
			continue
		}
		parts = append(parts, m.Name+"="+m.Addr)
	}
	return "self=" + c.Self + " peers=" + strings.Join(parts, ",") + " w=" + strconv.Itoa(c.W)
}

// ErrQuorumUnreachable marks an update that committed locally but did not
// gather its write quorum within the timeout; it remains committed at the
// origin and propagates by anti-entropy, but the client must not treat it
// as quorum-durable.
var ErrQuorumUnreachable = errors.New("replica: write quorum unreachable")

// groupMetrics is the group-layer instrumentation; all fields are nil-safe.
type groupMetrics struct {
	quorumAcks  *obs.Counter   // updates acked at the write quorum
	quorumFails *obs.Counter   // updates that timed out short of the quorum
	quorumLag   *obs.Histogram // local commit → quorum ack, ns
	pushes      *obs.Counter   // stream pushes attempted
	pushErrors  *obs.Counter   // stream pushes failed (member goes lagging)
	laggards    *obs.Gauge     // members currently lagging
	queueDepth  *obs.Gauge     // entries queued across all member streams
	aeRounds    *obs.Counter   // anti-entropy repair rounds completed
	aeErrors    *obs.Counter   // anti-entropy repair rounds failed
	aeBytes     *obs.Counter   // pickled bytes of repair entries pushed
	aeInstalls  *obs.Counter   // full snapshot installs pushed to laggards
}

func newGroupMetrics(reg *obs.Registry) groupMetrics {
	return groupMetrics{
		quorumAcks:  reg.Counter("replica_group_quorum_acks"),
		quorumFails: reg.Counter("replica_group_quorum_fails"),
		quorumLag:   reg.Histogram("replica_group_quorum_lag_ns"),
		pushes:      reg.Counter("replica_group_pushes"),
		pushErrors:  reg.Counter("replica_group_push_errors"),
		laggards:    reg.Gauge("replica_group_laggards"),
		queueDepth:  reg.Gauge("replica_group_queue_depth"),
		aeRounds:    reg.Counter("replica_group_ae_rounds"),
		aeErrors:    reg.Counter("replica_group_ae_errors"),
		aeBytes:     reg.Counter("replica_group_ae_bytes"),
		aeInstalls:  reg.Counter("replica_group_ae_installs"),
	}
}

// memberState tracks one remote member's push stream.
type memberState struct {
	name   string
	client *rpc.Client
	ch     chan []Entry

	// Guarded by Group.mu.
	acked   uint64 // highest origin seq the member has applied
	lagging bool   // stream broken; anti-entropy owns repair
	queued  int    // entries in ch (laggard-depth accounting)
}

// Group is the quorum-commit fan-out for one member of a replica group.
// The wrapped Node remains the single-writer store and the group's RPC
// face; the Group adds ordered push streams, quorum waits, and push-style
// anti-entropy.
type Group struct {
	node   *Node
	cfg    GroupConfig
	w      int
	m      groupMetrics
	tracer obs.Tracer

	queueDepth    int
	quorumTimeout time.Duration
	aeInterval    time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	members   []*memberState // remote members, in cfg order
	commitSeq uint64         // highest locally committed origin seq
	closed    bool

	aeKick chan struct{}
	aeStop chan struct{}
	wg     sync.WaitGroup
}

// NewGroup validates cfg and wraps node — which must be named cfg.Self —
// as the local member. Remote members attach with Connect; pushes to a
// member start flowing once it is connected, and anti-entropy starts with
// the first connection.
func NewGroup(node *Node, cfg GroupConfig) (*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if node.Name() != cfg.Self {
		return nil, fmt.Errorf("%w: node %q is not config self %q", ErrSelfNotMember, node.Name(), cfg.Self)
	}
	g := &Group{
		node:          node,
		cfg:           cfg,
		w:             cfg.W,
		m:             newGroupMetrics(cfg.Obs),
		tracer:        cfg.Tracer,
		queueDepth:    cfg.QueueDepth,
		quorumTimeout: cfg.QuorumTimeout,
		aeInterval:    cfg.AntiEntropyEvery,
		aeKick:        make(chan struct{}, 1),
		aeStop:        make(chan struct{}),
	}
	if g.queueDepth <= 0 {
		g.queueDepth = 1024
	}
	if g.quorumTimeout <= 0 {
		budget := cfg.PushPolicy.Budget
		if budget <= 0 {
			budget = 2 * time.Second
		}
		g.quorumTimeout = budget + budget/2
	}
	if g.aeInterval <= 0 {
		g.aeInterval = 100 * time.Millisecond
	}
	g.cond = sync.NewCond(&g.mu)
	g.wg.Add(1)
	go g.antiEntropyLoop()
	return g, nil
}

// Node exposes the wrapped local member.
func (g *Group) Node() *Node { return g.node }

// W reports the effective write quorum.
func (g *Group) W() int { return g.w }

// Connect attaches a remote member's RPC client and starts its ordered
// push stream. The client is owned by the group from here on (closed by
// Group.Close). Connecting a name that is not in the membership is an
// error; connecting a member twice replaces nothing and errors too.
func (g *Group) Connect(name string, client *rpc.Client) error {
	if name == g.cfg.Self {
		return fmt.Errorf("%w: connect of self %q", ErrBadMember, name)
	}
	found := false
	for _, m := range g.cfg.Members {
		if m.Name == name {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: connect of unknown member %q", ErrBadMember, name)
	}
	client.SetTracer(g.tracer)
	ms := &memberState{name: name, client: client, ch: make(chan []Entry, g.queueDepth)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("replica: group closed")
	}
	for _, old := range g.members {
		if old.name == name {
			g.mu.Unlock()
			return fmt.Errorf("%w: member %q already connected", ErrDuplicateMember, name)
		}
	}
	g.members = append(g.members, ms)
	g.mu.Unlock()
	g.wg.Add(1)
	go g.pusher(ms)
	return nil
}

// Apply commits inner locally and acks once the write quorum holds it.
func (g *Group) Apply(inner core.Update) error {
	return g.ApplyTraced(inner, obs.SpanContext{})
}

// ApplyTraced is Apply under a trace context.
func (g *Group) ApplyTraced(inner core.Update, sc obs.SpanContext) error {
	return g.applyAll([]core.Update{inner}, sc)
}

// ApplyBatch commits a batch locally through one epoch barrier and acks
// once the write quorum holds the whole batch. Prefix semantics follow
// core.Store.ApplyBatch: on a batch error the committed prefix still fans
// out (and is quorum-waited) and the batch error is returned; if the
// quorum wait fails too, the errors are joined so the caller sees both.
func (g *Group) ApplyBatch(inners []core.Update) error {
	return g.applyAll(inners, obs.SpanContext{})
}

func (g *Group) applyAll(inners []core.Update, sc obs.SpanContext) error {
	entries, batchErr := g.node.commitLocal(inners, sc)
	if len(entries) == 0 {
		return batchErr
	}
	committed := time.Now()
	last := entries[len(entries)-1].Seq
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("%w: group closed", ErrQuorumUnreachable)
	}
	if last > g.commitSeq {
		g.commitSeq = last
	}
	lagged := false
	for _, ms := range g.members {
		if ms.lagging {
			continue
		}
		select {
		case ms.ch <- entries:
			ms.queued += len(entries)
			g.m.queueDepth.Add(int64(len(entries)))
		default:
			// Stream full: the member is not keeping up. Hand it to
			// anti-entropy rather than block the commit path.
			ms.lagging = true
			lagged = true
			g.m.laggards.Add(1)
		}
	}
	g.mu.Unlock()
	if lagged {
		g.kickAE()
	}
	if err := g.awaitQuorum(last, committed); err != nil {
		// Surface both failures: the caller must learn that the suffix was
		// never committed anywhere (batchErr) AND that even the committed
		// prefix is not quorum-durable (err).
		return errors.Join(err, batchErr)
	}
	return batchErr
}

// Set and Delete are name-tree conveniences over Apply.

// Set binds value to name, quorum-acked.
func (g *Group) Set(name, value string) error { return g.SetTraced(name, value, obs.SpanContext{}) }

// SetTraced is Set under a trace context.
func (g *Group) SetTraced(name, value string, sc obs.SpanContext) error {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return err
	}
	return g.ApplyTraced(&nameserver.SetValue{Path: parts, Value: value}, sc)
}

// Delete removes name and its subtree, quorum-acked.
func (g *Group) Delete(name string) error { return g.DeleteTraced(name, obs.SpanContext{}) }

// DeleteTraced is Delete under a trace context.
func (g *Group) DeleteTraced(name string, sc obs.SpanContext) error {
	parts, err := nameserver.SplitPath(name)
	if err != nil {
		return err
	}
	return g.ApplyTraced(&nameserver.DeleteSubtree{Path: parts}, sc)
}

// awaitQuorum blocks until W members (this one included) have applied seq,
// or the quorum timeout passes.
func (g *Group) awaitQuorum(seq uint64, committed time.Time) error {
	need := g.w - 1 // remote acks needed; the local commit is the first
	if need <= 0 {
		g.m.quorumAcks.Inc()
		g.m.quorumLag.ObserveSince(committed)
		return nil
	}
	deadline := committed.Add(g.quorumTimeout)
	timer := time.AfterFunc(time.Until(deadline), func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer timer.Stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		got := 0
		for _, ms := range g.members {
			if ms.acked >= seq {
				got++
			}
		}
		if got >= need {
			g.m.quorumAcks.Inc()
			g.m.quorumLag.ObserveSince(committed)
			return nil
		}
		if g.closed {
			return fmt.Errorf("%w: group closed at %d/%d acks for seq %d", ErrQuorumUnreachable, got+1, g.w, seq)
		}
		if !time.Now().Before(deadline) {
			g.m.quorumFails.Inc()
			return fmt.Errorf("%w: %d/%d acks for seq %d after %v", ErrQuorumUnreachable, got+1, g.w, seq, g.quorumTimeout)
		}
		g.cond.Wait()
	}
}

// pusher drains one member's ordered stream. Order is what makes an ack
// trustworthy: entries reach the member in origin-sequence order, so the
// member's replied vector slot climbs without silent gap-skips. Any push
// failure (or a reply that does not cover the batch) flips the member to
// lagging; from then on the pusher discards its queue — burning the push
// budget per queued batch against a dead member would stall repair — and
// anti-entropy owns the member until it has caught back up.
func (g *Group) pusher(ms *memberState) {
	defer g.wg.Done()
	for batch := range ms.ch {
		// Coalesce whatever else is already queued into this push: one
		// RPC absorbs the whole backlog, so a member running behind the
		// commit rate pays per-push cost once per burst instead of once
		// per commit. Order is preserved — the queue is the stream.
		for {
			var more []Entry
			var ok bool
			select {
			case more, ok = <-ms.ch:
			default:
			}
			if !ok || more == nil {
				break
			}
			batch = append(batch, more...)
		}
		g.mu.Lock()
		ms.queued -= len(batch)
		g.m.queueDepth.Add(-int64(len(batch)))
		skip := ms.lagging
		g.mu.Unlock()
		if skip {
			continue
		}
		last := batch[len(batch)-1].Seq
		var reply PushReply
		err := ms.client.CallRetry("Replica.Push", &PushArgs{Entries: batch}, &reply, g.cfg.PushPolicy)
		g.m.pushes.Inc()
		// The ack is the member's post-apply slot for OUR origin (stream
		// batches are all local-origin entries); prefer the replied vector
		// over Seq, which only names the last entry's origin.
		acked := reply.Seq
		if reply.Vector != nil {
			acked = reply.Vector[g.node.Name()]
		}
		g.mu.Lock()
		switch {
		case err != nil, acked < last:
			if !ms.lagging {
				ms.lagging = true
				g.m.laggards.Add(1)
			}
			g.m.pushErrors.Inc()
			g.mu.Unlock()
			g.kickAE()
		default:
			if acked > ms.acked {
				ms.acked = acked
				g.cond.Broadcast()
			}
			g.mu.Unlock()
		}
	}
}

// kickAE nudges the anti-entropy loop without blocking.
func (g *Group) kickAE() {
	select {
	case g.aeKick <- struct{}{}:
	default:
	}
}

// antiEntropyLoop repairs lagging members: fetch the member's vector,
// push the missing suffix from our own history (or a full snapshot when
// the history has been trimmed past the member's vector), and clear the
// lagging mark only once the member has covered every seq committed so
// far — re-checking under the lock so a commit racing the repair keeps
// the member lagging and the loop running.
func (g *Group) antiEntropyLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.aeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.aeStop:
			return
		case <-g.aeKick:
		case <-t.C:
		}
		g.mu.Lock()
		var lagging []*memberState
		for _, ms := range g.members {
			if ms.lagging {
				lagging = append(lagging, ms)
			}
		}
		g.mu.Unlock()
		for _, ms := range lagging {
			g.repair(ms)
		}
	}
}

// repair runs rounds against one lagging member until it is caught up or
// a round fails (the next kick or tick retries).
func (g *Group) repair(ms *memberState) {
	for {
		repairedTo, err := g.repairRound(ms)
		g.mu.Lock()
		if err != nil {
			g.m.aeErrors.Inc()
			g.mu.Unlock()
			obs.Emit(g.tracer, obs.Event{Name: "replica.group_repair", Err: err, Attrs: []obs.Attr{obs.A("member", ms.name)}})
			return
		}
		g.m.aeRounds.Inc()
		if repairedTo > ms.acked {
			ms.acked = repairedTo
			g.cond.Broadcast()
		}
		if ms.acked >= g.commitSeq || g.closed {
			// Caught up with everything committed so far; new commits
			// enqueue normally again.
			if ms.lagging {
				ms.lagging = false
				g.m.laggards.Add(-1)
			}
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
	}
}

// repairRound ships one round of missing entries (or a snapshot) to the
// member and returns the origin seq the member then covers.
func (g *Group) repairRound(ms *memberState) (uint64, error) {
	var vec VectorReply
	if err := ms.client.CallRetry("Replica.Vector", &VectorArgs{}, &vec, g.cfg.SyncPolicy); err != nil {
		return 0, err
	}
	origin := g.node.Name()
	var entries []Entry
	var needFull bool
	err := g.node.store.View(func(root any) error {
		r, rerr := rootOf(root)
		if rerr != nil {
			return rerr
		}
		entries, needFull = r.missingFrom(vec.Vector)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if needFull {
		var snap SnapshotReply
		if err := g.node.store.View(func(root any) error {
			r, rerr := rootOf(root)
			if rerr != nil {
				return rerr
			}
			data, merr := pickle.Marshal(r)
			if merr != nil {
				return merr
			}
			g.m.aeBytes.Add(uint64(len(data)))
			var cp Root
			if uerr := pickle.Unmarshal(data, &cp); uerr != nil {
				return uerr
			}
			snap.Root = &cp
			return nil
		}); err != nil {
			return 0, err
		}
		var reply InstallReply
		if err := ms.client.CallRetry("Replica.Install", &InstallArgs{Root: snap.Root}, &reply, g.cfg.SyncPolicy); err != nil {
			return 0, err
		}
		g.m.aeInstalls.Inc()
		return snap.Root.Vector[origin], nil
	}
	if len(entries) == 0 {
		return vec.Vector[origin], nil
	}
	args := &PushArgs{Entries: entries}
	if data, merr := pickle.Marshal(args); merr == nil {
		g.m.aeBytes.Add(uint64(len(data)))
	}
	var reply PushReply
	if err := ms.client.CallRetry("Replica.Push", args, &reply, g.cfg.SyncPolicy); err != nil {
		return 0, err
	}
	// Repair batches are multi-origin and (origin, seq)-sorted, so
	// reply.Seq may name ANOTHER origin's slot; trusting it here would
	// inflate ms.acked and let awaitQuorum count acks the member never
	// received. Only the member's replied vector slot for our own origin
	// is an ack of local seqs; without a vector, fall back to the slot
	// the member proved before the push rather than guess.
	if reply.Vector != nil {
		return reply.Vector[origin], nil
	}
	return vec.Vector[origin], nil
}

// MarkLagging forces a member onto the anti-entropy path (test hook and
// administrative remedy for a member known to have restarted).
func (g *Group) MarkLagging(name string) {
	g.mu.Lock()
	for _, ms := range g.members {
		if ms.name == name && !ms.lagging {
			ms.lagging = true
			g.m.laggards.Add(1)
		}
	}
	g.mu.Unlock()
	g.kickAE()
}

// Acked reports the highest origin seq each connected member has applied,
// plus this node's own committed seq under its own name.
func (g *Group) Acked() map[string]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := map[string]uint64{g.cfg.Self: g.commitSeq}
	for _, ms := range g.members {
		out[ms.name] = ms.acked
	}
	return out
}

// Close stops the pushers and anti-entropy, closes the member clients,
// and wakes any quorum waiter with ErrQuorumUnreachable. It does not
// close the wrapped node.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	members := g.members
	g.cond.Broadcast()
	g.mu.Unlock()
	close(g.aeStop)
	for _, ms := range members {
		close(ms.ch)
	}
	g.wg.Wait()
	for _, ms := range members {
		ms.client.Close()
	}
	return nil
}
