// Package rpc is a from-scratch remote procedure call facility in the
// mould of the paper's §6: clients interact with the name server "through a
// general purpose remote procedure call mechanism" whose marshalling
// converts "between strongly typed data structures and bit representations
// suitable for transport across the network" — here, the pickle package
// plays both roles, so (as the paper boasts) there is no manually written
// marshalling code anywhere.
//
// Exposed services are ordinary Go values. Every exported method of the
// form
//
//	func (s *Svc) Method(arg *A, reply *R) error
//
// becomes callable as "SvcName.Method". Argument and reply types must be
// registered with pickle.Register — the analogue of the paper's
// automatically generated stub modules, derived here from reflection
// instead of a stub compiler.
//
// The wire protocol is one uvarint-length-prefixed pickled message per
// request or response, multiplexed by call ID, so one connection carries
// any number of concurrent calls.
//
// The network is allowed to fail. A Client built over a dial function
// (NewClientDialer, Dial, DialRetry) reconnects automatically: when the
// connection dies, every call in flight on it fails with ErrDisconnected
// and the next call dials afresh. CallRetry layers at-least-once delivery
// on top — exponential backoff with jitter under a total deadline budget —
// and stamps every attempt with the same idempotency token, which the
// server uses to deduplicate re-executions and replay the original reply,
// making retries safe even for non-idempotent methods. This is the
// transport the paper's §7 replication story assumes: an update is acked
// after one replica commits it, so the path to that replica must survive
// drops, delays and partitions rather than wedge on the first dead socket.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// maxMessage bounds a single RPC message.
const maxMessage = 64 << 20

// frameChunk is the allocation step for incoming frames: a frame's buffer
// grows as bytes actually arrive, so a garbage header claiming maxMessage
// cannot force a 64 MiB allocation for a 3-byte connection.
const frameChunk = 64 << 10

// ServerError is an error returned by the remote side.
type ServerError string

func (e ServerError) Error() string { return string(e) }

// ErrShutdown is returned by calls on a closed client.
var ErrShutdown = errors.New("rpc: client is shut down")

// ErrTimeout is returned by CallTimeout when the deadline passes.
var ErrTimeout = errors.New("rpc: call timed out")

// ErrDisconnected marks a call that failed because the connection died (or
// could not be established). The request may or may not have executed on
// the server; CallRetry treats it as retryable, relying on idempotency
// tokens to keep re-execution safe.
var ErrDisconnected = errors.New("rpc: connection lost")

// Retryable reports whether err is a transport-level failure worth
// retrying: the connection died or the call timed out. Server-side errors
// (ServerError) mean the request executed and are final, and ErrShutdown
// means the caller closed the client.
func Retryable(err error) bool {
	return errors.Is(err, ErrDisconnected) || errors.Is(err, ErrTimeout)
}

// request and response are the two wire message types. Client and Token,
// when set, identify the call across retried attempts: the server caches
// the response per (Client, Token) and replays it for duplicates instead of
// re-executing the method.
type request struct {
	ID     uint64
	Method string
	Arg    any
	Client string
	Token  uint64
}

type response struct {
	ID     uint64
	Err    string
	Result any
}

func init() {
	pickle.Register(&request{})
	pickle.Register(&response{})
}

// writeMessage frames and writes one pickled message. Header and payload go
// out in a single Write, so the transport never observes a torn frame
// boundary between them.
//
// When sc carries a trace, the frame is prefixed with the trace-context
// extension: a zero length uvarint (the sentinel — a real message is never
// empty, since a pickled struct always encodes to at least one byte),
// then the trace and span IDs as uvarints, then the ordinary length-
// prefixed payload. Untraced frames are byte-identical to the pre-
// extension protocol, so old and new endpoints interoperate as long as
// only new ones emit traces.
func writeMessage(w io.Writer, wmu *sync.Mutex, v any, sc obs.SpanContext) error {
	payload, err := pickle.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [5 * binary.MaxVarintLen64]byte
	n := 0
	if sc.Trace != 0 {
		hdr[n] = 0 // extension sentinel: zero-length frame
		n++
		n += binary.PutUvarint(hdr[n:], uint64(sc.Trace))
		n += binary.PutUvarint(hdr[n:], uint64(sc.Span))
	}
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	buf := make([]byte, 0, n+len(payload))
	buf = append(buf, hdr[:n]...)
	buf = append(buf, payload...)
	wmu.Lock()
	defer wmu.Unlock()
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame payload and its trace context
// (zero when the frame carried none). Truncated, garbage or oversized
// frames error; the buffer is grown in frameChunk steps as data actually
// arrives, bounding the allocation a hostile header can cause.
func readFrame(r *bufio.Reader) ([]byte, obs.SpanContext, error) {
	var sc obs.SpanContext
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, sc, err
	}
	if n == 0 {
		// Trace-context extension: trace ID, span ID, then the real length.
		tr, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, sc, err
		}
		sp, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, sc, err
		}
		sc = obs.SpanContext{Trace: obs.TraceID(tr), Span: obs.SpanID(sp)}
		if n, err = binary.ReadUvarint(r); err != nil {
			return nil, sc, err
		}
		if n == 0 {
			return nil, sc, errors.New("rpc: malformed frame: empty message after trace extension")
		}
	}
	if n > maxMessage {
		return nil, sc, fmt.Errorf("rpc: message of %d bytes exceeds limit", n)
	}
	if n <= frameChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, sc, err
		}
		return buf, sc, nil
	}
	buf := make([]byte, 0, frameChunk)
	for uint64(len(buf)) < n {
		step := n - uint64(len(buf))
		if step > frameChunk {
			step = frameChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, sc, err
		}
	}
	return buf, sc, nil
}

// readMessage reads one framed message into ptr, returning the frame's
// trace context.
func readMessage(r *bufio.Reader, ptr any) (obs.SpanContext, error) {
	buf, sc, err := readFrame(r)
	if err != nil {
		return sc, err
	}
	return sc, pickle.Unmarshal(buf, ptr)
}

// --- server ---

// A Server dispatches calls to registered services.
type Server struct {
	mu       sync.RWMutex
	services map[string]*service

	dedupe dedupe

	// obs and tracer are set by Instrument before serving; nil means
	// uninstrumented (every metric method tolerates nil).
	obs        *obs.Registry
	tracer     obs.Tracer
	openConns  *obs.Gauge
	requests   *obs.Counter
	errors     *obs.Counter
	dedupeHits *obs.Counter

	lmu       sync.Mutex
	listeners []net.Listener
	conns     map[io.Closer]bool
	closed    bool
}

// Instrument wires the server's metrics into reg — rpc_requests,
// rpc_errors, rpc_open_conns, rpc_dedupe_hits, and per-method
// rpc_calls_<Service.Method> / rpc_errors_<Service.Method> counters with
// rpc_latency_ns_<Service.Method> histograms — and emits an "rpc.call"
// event per dispatch to tr. Call before Serve.
func (s *Server) Instrument(reg *obs.Registry, tr obs.Tracer) {
	s.obs = reg
	s.tracer = tr
	s.openConns = reg.Gauge("rpc_open_conns")
	s.requests = reg.Counter("rpc_requests")
	s.errors = reg.Counter("rpc_errors")
	s.dedupeHits = reg.Counter("rpc_dedupe_hits")
}

type service struct {
	rcvr    reflect.Value
	methods map[string]serviceMethod
}

// serviceMethod is one dispatchable method; traced methods take the
// caller's span context as a third argument.
type serviceMethod struct {
	m      reflect.Method
	traced bool
}

// NewServer returns an empty Server.
func NewServer() *Server {
	return &Server{
		services: make(map[string]*service),
		conns:    make(map[io.Closer]bool),
		dedupe:   dedupe{clients: make(map[string]*clientDedupe)},
	}
}

var (
	errType = reflect.TypeOf((*error)(nil)).Elem()
	scType  = reflect.TypeOf(obs.SpanContext{})
)

// Register exposes rcvr's suitable methods under the given service name. A
// suitable method is exported, takes two pointer arguments (args and
// reply), and returns error; it may additionally take an obs.SpanContext
// as a third argument, in which case dispatch hands it the caller's trace
// context (zero for untraced calls):
//
//	func (s *Svc) Method(arg *A, reply *R) error
//	func (s *Svc) Method(arg *A, reply *R, sc obs.SpanContext) error
func (s *Server) Register(name string, rcvr any) error {
	rv := reflect.ValueOf(rcvr)
	rt := rv.Type()
	svc := &service{rcvr: rv, methods: make(map[string]serviceMethod)}
	for i := 0; i < rt.NumMethod(); i++ {
		m := rt.Method(i)
		mt := m.Type
		if !m.IsExported() || mt.NumOut() != 1 || mt.Out(0) != errType {
			continue
		}
		switch mt.NumIn() {
		case 3:
		case 4:
			if mt.In(3) != scType {
				continue
			}
		default:
			continue
		}
		if mt.In(1).Kind() != reflect.Pointer || mt.In(2).Kind() != reflect.Pointer {
			continue
		}
		svc.methods[m.Name] = serviceMethod{m: m, traced: mt.NumIn() == 4}
	}
	if len(svc.methods) == 0 {
		return fmt.Errorf("rpc: %T exposes no methods of the form Method(arg *A, reply *R) error", rcvr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[name]; dup {
		return fmt.Errorf("rpc: service %q already registered", name)
	}
	s.services[name] = svc
	return nil
}

// Serve accepts connections from l until it is closed, serving each
// connection on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.lmu.Lock()
	if s.closed {
		s.lmu.Unlock()
		l.Close()
		return errors.New("rpc: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.lmu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.lmu.Lock()
			closed := s.closed
			s.lmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn serves a single connection until it fails or the server closes.
// Requests on one connection are handled concurrently, each on its own
// goroutine, as the calls they carry may interleave enquiries and updates.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	s.lmu.Lock()
	if s.closed {
		s.lmu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = true
	s.lmu.Unlock()
	s.openConns.Inc()
	defer func() {
		s.openConns.Dec()
		s.lmu.Lock()
		delete(s.conns, conn)
		s.lmu.Unlock()
		conn.Close()
	}()

	var wmu sync.Mutex
	r := bufio.NewReader(conn)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		var req request
		sc, err := readMessage(r, &req)
		if err != nil {
			return
		}
		handlers.Add(1)
		go func(req request, sc obs.SpanContext) {
			defer handlers.Done()
			resp := s.serveRequest(&req, sc)
			_ = writeMessage(conn, &wmu, resp, obs.SpanContext{})
		}(req, sc)
	}
}

// serveRequest dispatches one request, deduplicating retried attempts: a
// request carrying an idempotency token executes at most once while the
// token is remembered, and duplicates replay the cached response.
func (s *Server) serveRequest(req *request, sc obs.SpanContext) *response {
	if req.Token == 0 || req.Client == "" {
		return s.dispatch(req, sc)
	}
	for {
		cached, inflight := s.dedupe.begin(req.Client, req.Token)
		if cached != nil {
			s.dedupeHits.Inc()
			r := *cached
			r.ID = req.ID
			return &r
		}
		if inflight == nil {
			break // this attempt is the executor
		}
		// The original attempt is still executing (its response probably
		// died with the old connection); wait for it rather than running
		// the method twice concurrently.
		<-inflight
	}
	resp := s.dispatch(req, sc)
	s.dedupe.finish(req.Client, req.Token, resp)
	return resp
}

// dispatch has a named result so the deferred panic handler can still
// deliver a response after recovering. sc is the caller's trace context;
// when the server has a tracer, the call becomes an "rpc.call" span —
// parented to sc when the request carried a trace, or the root of a fresh
// one when it did not, which is how every update entering through the RPC
// boundary gets stamped with a trace — and traced methods receive the
// span's context so their own child spans chain under the call.
func (s *Server) dispatch(req *request, sc obs.SpanContext) (resp *response) {
	resp = &response{ID: req.ID}
	var span obs.Span
	if s.tracer != nil {
		if sc.Valid() {
			span = obs.StartSpan(s.tracer, sc, "rpc.call")
		} else {
			span = obs.StartRoot(s.tracer, "rpc.call")
		}
	}
	methodCtx := span.Context()
	if s.obs != nil || s.tracer != nil {
		s.requests.Inc()
		// Per-method metrics use only names that resolve to a
		// registered method, so a client sending garbage cannot grow
		// the registry without bound.
		label := "unknown"
		if svcName, mName, ok := splitMethod(req.Method); ok {
			s.mu.RLock()
			if svc := s.services[svcName]; svc != nil {
				if _, known := svc.methods[mName]; known {
					label = req.Method
				}
			}
			s.mu.RUnlock()
		}
		s.obs.Counter("rpc_calls_" + label).Inc()
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.obs.Histogram("rpc_latency_ns_" + label).ObserveDuration(dur)
			var err error
			if resp.Err != "" {
				err = ServerError(resp.Err)
				s.errors.Inc()
				s.obs.Counter("rpc_errors_" + label).Inc()
			}
			if span.Active() {
				span.End(err, obs.A("method", req.Method))
			} else {
				obs.Emit(s.tracer, obs.Event{Name: "rpc.call", Dur: dur, Err: err, Attrs: []obs.Attr{
					obs.A("method", req.Method),
				}})
			}
		}()
	}
	svcName, mName, ok := splitMethod(req.Method)
	if !ok {
		resp.Err = fmt.Sprintf("rpc: malformed method %q", req.Method)
		return resp
	}
	s.mu.RLock()
	svc := s.services[svcName]
	s.mu.RUnlock()
	if svc == nil {
		resp.Err = fmt.Sprintf("rpc: unknown service %q", svcName)
		return resp
	}
	sm, ok := svc.methods[mName]
	if !ok {
		resp.Err = fmt.Sprintf("rpc: service %q has no method %q", svcName, mName)
		return resp
	}
	m := sm.m

	argType := m.Type.In(1)   // *A
	replyType := m.Type.In(2) // *R
	argv := reflect.New(argType.Elem())
	if req.Arg != nil {
		av := reflect.ValueOf(req.Arg)
		switch {
		case av.Type() == argType:
			argv = av
		case av.Type() == argType.Elem():
			argv.Elem().Set(av)
		default:
			resp.Err = fmt.Sprintf("rpc: %s wants %v, got %T", req.Method, argType, req.Arg)
			return resp
		}
	}
	replyv := reflect.New(replyType.Elem())

	defer func() {
		if p := recover(); p != nil {
			resp.Err = fmt.Sprintf("rpc: %s panicked: %v", req.Method, p)
			resp.Result = nil
		}
	}()
	in := []reflect.Value{svc.rcvr, argv, replyv}
	if sm.traced {
		in = append(in, reflect.ValueOf(methodCtx))
	}
	out := m.Func.Call(in)
	if ierr := out[0].Interface(); ierr != nil {
		resp.Err = ierr.(error).Error()
		return resp
	}
	resp.Result = replyv.Interface()
	return resp
}

func splitMethod(s string) (svc, method string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i], s[i+1:], i > 0 && i < len(s)-1
		}
	}
	return "", "", false
}

// Close stops all listeners and open connections.
func (s *Server) Close() {
	s.lmu.Lock()
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	var conns []io.Closer
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lmu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// --- idempotency dedupe ---

// dedupePerClient bounds the remembered responses per client, and
// dedupeClients the number of clients tracked; both evict FIFO. The bound
// is a window, not a guarantee: a retry arriving after its token was
// evicted re-executes, which is why callers of CallRetry should still
// prefer naturally idempotent methods.
const (
	dedupePerClient = 1024
	dedupeClients   = 128
)

// dedupe is the server's per-client idempotency-token cache.
type dedupe struct {
	mu      sync.Mutex
	clients map[string]*clientDedupe
	order   []string // FIFO client eviction
}

type clientDedupe struct {
	done     map[uint64]*response
	inflight map[uint64]chan struct{}
	order    []uint64 // FIFO token eviction
}

// begin resolves one attempt: a cached response (already executed), an
// in-flight channel to wait on (executing right now), or (nil, nil)
// meaning the caller must execute and finish.
func (d *dedupe) begin(client string, token uint64) (*response, chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.clients[client]
	if cd == nil {
		if len(d.clients) >= dedupeClients {
			oldest := d.order[0]
			d.order = d.order[1:]
			if old := d.clients[oldest]; old != nil {
				// Unblock anyone waiting on the evicted client's
				// in-flight tokens; they will re-begin and re-execute.
				for _, ch := range old.inflight {
					close(ch)
				}
			}
			delete(d.clients, oldest)
		}
		cd = &clientDedupe{done: make(map[uint64]*response), inflight: make(map[uint64]chan struct{})}
		d.clients[client] = cd
		d.order = append(d.order, client)
	}
	if r, ok := cd.done[token]; ok {
		return r, nil
	}
	if ch, ok := cd.inflight[token]; ok {
		return nil, ch
	}
	cd.inflight[token] = make(chan struct{})
	return nil, nil
}

// finish records the executor's response and wakes duplicate waiters.
func (d *dedupe) finish(client string, token uint64, resp *response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cd := d.clients[client]
	if cd == nil {
		return // evicted mid-execution; duplicates will re-execute
	}
	if ch, ok := cd.inflight[token]; ok {
		close(ch)
		delete(cd.inflight, token)
	}
	cd.done[token] = resp
	cd.order = append(cd.order, token)
	if len(cd.order) > dedupePerClient {
		evict := cd.order[0]
		cd.order = cd.order[1:]
		delete(cd.done, evict)
	}
}

// --- client ---

// A Client issues calls over one connection at a time; it is safe for
// concurrent use and multiplexes any number of outstanding calls. A client
// built with a dial function reconnects lazily: when the connection dies,
// in-flight calls fail with ErrDisconnected and the next call redials.
type Client struct {
	// SimulatedRTT, when set, delays every call by the given round-trip
	// time — experiment E11's stand-in for the paper's 8 ms network.
	SimulatedRTT time.Duration

	dial func() (io.ReadWriteCloser, error)
	id   string // identity for idempotency tokens

	// tracer, when set via SetTracer, records an "rpc.attempt" span per
	// traced call attempt (so retries and reconnects are visible in the
	// originating trace).
	tracer obs.Tracer

	// metrics are set by Instrument; all are nil-safe.
	retries    *obs.Counter
	reconnects *obs.Counter
	timeouts   *obs.Counter
	inflight   *obs.Gauge

	nextToken atomic.Uint64

	rmu sync.Mutex
	rng *rand.Rand // backoff jitter

	mu       sync.Mutex
	cur      *clientConn
	everConn bool
	nextID   uint64
	pending  map[uint64]*pendingCall
	err      error // sticky death of a fixed-conn client
	closed   bool
}

// clientConn is one live connection with its write lock.
type clientConn struct {
	rwc io.ReadWriteCloser
	wmu sync.Mutex
}

// pendingCall is one outstanding request awaiting its response.
type pendingCall struct {
	cc *clientConn
	ch chan callResult
}

// callResult is a response or a transport failure.
type callResult struct {
	resp *response
	err  error
}

var clientSeq atomic.Uint64

func newClient(dial func() (io.ReadWriteCloser, error)) *Client {
	seq := clientSeq.Add(1)
	return &Client{
		dial:    dial,
		id:      fmt.Sprintf("c%d.%d", os.Getpid(), seq),
		rng:     rand.New(rand.NewSource(int64(seq))),
		pending: make(map[uint64]*pendingCall),
	}
}

// NewClient returns a Client bound to one fixed conn; when it dies the
// client is dead (use NewClientDialer for reconnection).
func NewClient(conn io.ReadWriteCloser) *Client {
	c := newClient(nil)
	cc := &clientConn{rwc: conn}
	c.cur = cc
	c.everConn = true
	go c.readLoop(cc)
	return c
}

// NewClientDialer returns a Client that connects lazily via dial and
// reconnects (on the next call) whenever the connection dies. Construction
// never fails; a dead endpoint surfaces as ErrDisconnected from calls.
func NewClientDialer(dial func() (io.ReadWriteCloser, error)) *Client {
	return newClient(dial)
}

// Dial connects a Client to a TCP server, verifying the endpoint once; the
// returned client redials on every subsequent connection failure.
func Dial(addr string) (*Client, error) {
	c := DialRetry(addr)
	c.mu.Lock()
	_, err := c.ensureConnLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// DialRetry returns a reconnecting TCP client for addr without dialing yet:
// the first call connects, and every connection failure after that redials.
func DialRetry(addr string) *Client {
	return NewClientDialer(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	})
}

// Instrument wires the client's resilience metrics into reg: rpc_retries,
// rpc_reconnects, rpc_timeouts and the rpc_inflight gauge. Clients sharing
// a registry share the metric objects, so the counters aggregate.
func (c *Client) Instrument(reg *obs.Registry) {
	c.retries = reg.Counter("rpc_retries")
	c.reconnects = reg.Counter("rpc_reconnects")
	c.timeouts = reg.Counter("rpc_timeouts")
	c.inflight = reg.Gauge("rpc_inflight")
}

// SetTracer attaches a tracer to the client: traced calls (CallTraced,
// CallRetryTraced) record an "rpc.attempt" span per attempt. Call before
// the client is in use.
func (c *Client) SetTracer(t obs.Tracer) { c.tracer = t }

// ensureConnLocked returns the live connection, dialing one if needed.
// Called with c.mu held; a slow dial therefore serializes callers, which is
// what we want — one reconnection attempt at a time.
func (c *Client) ensureConnLocked() (*clientConn, error) {
	if c.closed {
		return nil, ErrShutdown
	}
	if c.cur != nil {
		return c.cur, nil
	}
	if c.dial == nil {
		if c.err != nil {
			return nil, c.err
		}
		return nil, ErrShutdown
	}
	rwc, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("%w: dial: %v", ErrDisconnected, err)
	}
	cc := &clientConn{rwc: rwc}
	c.cur = cc
	if c.everConn {
		c.reconnects.Inc()
	}
	c.everConn = true
	go c.readLoop(cc)
	return cc, nil
}

func (c *Client) readLoop(cc *clientConn) {
	r := bufio.NewReader(cc.rwc)
	for {
		var resp response
		if _, err := readMessage(r, &resp); err != nil {
			c.connFailed(cc, err)
			return
		}
		c.mu.Lock()
		pc := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- callResult{resp: &resp}
		}
		// A nil pc is a response whose caller stopped waiting (timeout);
		// it is discarded, not leaked.
	}
}

// connFailed retires a dead connection: calls in flight on it fail with
// ErrDisconnected, the conn is closed (unwedging any writer blocked on a
// black-holed transport), and — for fixed-conn clients — the death is
// sticky.
func (c *Client) connFailed(cc *clientConn, cause error) {
	err := fmt.Errorf("%w: %v", ErrDisconnected, cause)
	c.mu.Lock()
	if c.cur == cc {
		c.cur = nil
		if c.dial == nil && c.err == nil {
			c.err = err
		}
	}
	var failed []*pendingCall
	for id, pc := range c.pending {
		if pc.cc == cc {
			delete(c.pending, id)
			failed = append(failed, pc)
		}
	}
	c.mu.Unlock()
	cc.rwc.Close()
	for _, pc := range failed {
		pc.ch <- callResult{err: err}
	}
}

func (c *Client) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Call invokes "Service.Method" with arg, storing the result into reply
// (a non-nil pointer, or nil to discard). It waits as long as the
// connection lives; use CallTimeout or CallRetry to bound it.
func (c *Client) Call(method string, arg any, reply any) error {
	return c.call(method, arg, reply, 0, 0, obs.SpanContext{})
}

// CallTraced is Call with a trace context: the request's frame carries sc
// across the wire, so the server-side spans land in the caller's trace.
func (c *Client) CallTraced(sc obs.SpanContext, method string, arg, reply any) error {
	return c.call(method, arg, reply, 0, 0, sc)
}

// CallTimeout is Call with a deadline: if the response does not arrive in
// time the call fails with ErrTimeout. The request is not cancelled on the
// server — as in the paper's RPC, the caller just stops waiting — but the
// pending-call entry is removed, so the late response is discarded rather
// than leaked.
func (c *Client) CallTimeout(method string, arg, reply any, d time.Duration) error {
	if d <= 0 {
		return c.call(method, arg, reply, 0, 0, obs.SpanContext{})
	}
	return c.call(method, arg, reply, 0, d, obs.SpanContext{})
}

// call is the shared call path: send, then wait with an optional deadline.
// token, when nonzero, is the idempotency token stamped on the request; sc,
// when valid, rides the frame header to the server.
func (c *Client) call(method string, arg, reply any, token uint64, d time.Duration, sc obs.SpanContext) error {
	if c.SimulatedRTT > 0 {
		time.Sleep(c.SimulatedRTT)
	}
	c.inflight.Inc()
	defer c.inflight.Dec()

	c.mu.Lock()
	cc, err := c.ensureConnLocked()
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	pc := &pendingCall{cc: cc, ch: make(chan callResult, 1)}
	c.pending[id] = pc
	c.mu.Unlock()

	req := &request{ID: id, Method: method, Arg: arg}
	if token != 0 {
		req.Client = c.id
		req.Token = token
	}
	if err := writeMessage(cc.rwc, &cc.wmu, req, sc); err != nil {
		c.dropPending(id)
		// A failed write leaves the stream in an unknown framing state;
		// the connection is done.
		c.connFailed(cc, err)
		return fmt.Errorf("%w: write: %v", ErrDisconnected, err)
	}

	var res callResult
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case res = <-pc.ch:
		case <-timer.C:
			c.dropPending(id)
			c.timeouts.Inc()
			return ErrTimeout
		}
	} else {
		res = <-pc.ch
	}
	if res.err != nil {
		return res.err
	}
	resp := res.resp
	if resp.Err != "" {
		return ServerError(resp.Err)
	}
	if reply == nil || resp.Result == nil {
		return nil
	}
	rv := reflect.ValueOf(reply)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("rpc: reply must be a non-nil pointer, got %T", reply)
	}
	res2 := reflect.ValueOf(resp.Result)
	switch {
	case res2.Type() == rv.Type():
		rv.Elem().Set(res2.Elem())
	case res2.Type() == rv.Type().Elem():
		rv.Elem().Set(res2)
	default:
		return fmt.Errorf("rpc: reply type %T does not match result %T", reply, resp.Result)
	}
	return nil
}

// RetryPolicy bounds CallRetry. The zero value picks the defaults noted on
// each field.
type RetryPolicy struct {
	// MaxAttempts caps the number of attempts; 0 means bounded only by
	// Budget.
	MaxAttempts int
	// Budget is the total time the call may consume across attempts and
	// backoffs; 0 means 2s.
	Budget time.Duration
	// BaseDelay is the first backoff; it doubles per attempt. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 100ms.
	MaxDelay time.Duration
	// PerTry bounds each individual attempt; 0 means the remaining budget,
	// so a black-holed connection consumes the whole budget in one
	// attempt. Set it when the transport can wedge silently.
	PerTry time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Budget <= 0 {
		p.Budget = 2 * time.Second
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// CallRetry is Call with at-least-once delivery over a failing network:
// transport-level failures (ErrDisconnected, ErrTimeout) are retried with
// exponential backoff and jitter until the policy's budget or attempt cap
// runs out. Every attempt carries the same idempotency token, so a server
// that executed a previous attempt replays its response instead of
// re-executing. Server-side errors are returned immediately — the request
// executed, and retrying would not change the answer.
func (c *Client) CallRetry(method string, arg, reply any, p RetryPolicy) error {
	return c.CallRetryTraced(obs.SpanContext{}, method, arg, reply, p)
}

// CallRetryTraced is CallRetry with a trace context: every attempt becomes
// an "rpc.attempt" span under sc (when the client has a tracer), and the
// attempt's own span context rides the wire — so the trace shows each
// retry and reconnect individually, with the server-side "rpc.call" span
// parented under the attempt that actually reached it.
func (c *Client) CallRetryTraced(sc obs.SpanContext, method string, arg, reply any, p RetryPolicy) error {
	p = p.withDefaults()
	deadline := time.Now().Add(p.Budget)
	token := c.nextToken.Add(1)
	var err error
	for attempt := 1; ; attempt++ {
		d := time.Until(deadline)
		if d <= 0 {
			if err == nil {
				err = ErrTimeout
			}
			return fmt.Errorf("rpc: %s: retry budget exhausted after %d attempts: %w", method, attempt-1, err)
		}
		if p.PerTry > 0 && p.PerTry < d {
			d = p.PerTry
		}
		wire := sc
		aspan := obs.StartSpan(c.tracer, sc, "rpc.attempt")
		if aspan.Active() {
			wire = aspan.Context()
		}
		err = c.call(method, arg, reply, token, d, wire)
		if aspan.Active() {
			aspan.End(err, obs.A("method", method), obs.A("attempt", attempt))
		}
		if err == nil || !Retryable(err) {
			return err
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return fmt.Errorf("rpc: %s: failed after %d attempts: %w", method, attempt, err)
		}
		backoff := p.BaseDelay << (attempt - 1)
		if backoff <= 0 || backoff > p.MaxDelay {
			backoff = p.MaxDelay
		}
		// Jitter in [backoff/2, backoff]: desynchronizes retry storms
		// without ever shrinking the wait to zero.
		c.rmu.Lock()
		backoff = backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		c.rmu.Unlock()
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("rpc: %s: retry budget exhausted after %d attempts: %w", method, attempt, err)
		}
		c.retries.Inc()
		time.Sleep(backoff)
	}
}

// PendingCalls reports the number of in-flight requests in the pending map
// (for tests and debugging: a stuck entry here is a leak).
func (c *Client) PendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close shuts the client down; outstanding calls fail with ErrShutdown and
// no reconnection happens.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cc := c.cur
	c.cur = nil
	pending := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.mu.Unlock()
	var err error
	if cc != nil {
		err = cc.rwc.Close()
	}
	for _, pc := range pending {
		pc.ch <- callResult{err: ErrShutdown}
	}
	return err
}
