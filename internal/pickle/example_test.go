package pickle_test

import (
	"bytes"
	"fmt"

	"smalldb/internal/pickle"
)

// Employee demonstrates structural pickling with shared pointers.
type Employee struct {
	Name    string
	Manager *Employee
}

func Example() {
	boss := &Employee{Name: "birrell"}
	team := []*Employee{
		{Name: "jones", Manager: boss},
		{Name: "wobber", Manager: boss},
		boss,
	}

	data, err := pickle.Marshal(team)
	if err != nil {
		panic(err)
	}
	var out []*Employee
	if err := pickle.Unmarshal(data, &out); err != nil {
		panic(err)
	}

	// Shared pointers keep their identity: both reports reference the
	// same manager object, and the manager in the slice is that object.
	fmt.Println(out[0].Manager == out[1].Manager)
	fmt.Println(out[0].Manager == out[2])
	fmt.Println(out[2].Name)
	// Output:
	// true
	// true
	// birrell
}

func Example_schemaEvolution() {
	// A value written with one version of a struct decodes into another
	// that gained and lost fields: matching is by field name.
	type V1 struct {
		Name string
		Age  int
	}
	type V2 struct {
		Name  string
		Email string // new: left zero
		// Age removed: skipped
	}
	data, _ := pickle.Marshal(V1{Name: "amy", Age: 37})
	var v2 V2
	if err := pickle.Unmarshal(data, &v2); err != nil {
		panic(err)
	}
	fmt.Printf("%q %q\n", v2.Name, v2.Email)
	// Output: "amy" ""
}

func ExampleDecoder_DecodeAny() {
	// A stream can be decoded without knowing its Go types — this is how
	// cmd/logdump renders any database's log entries.
	type Update struct {
		Key   string
		Value string
	}
	data, _ := pickle.Marshal(&Update{Key: "host", Value: "16.4.0.1"})
	v, err := pickle.NewDecoder(bytes.NewReader(data)).DecodeAny()
	if err != nil {
		panic(err)
	}
	fmt.Println(pickle.Format(v))
	// Output:
	// &pickle_test.Update {
	//   Key: "host"
	//   Value: "16.4.0.1"
	// }
}
