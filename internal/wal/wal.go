// Package wal implements the paper's redo log: an append-only file of
// update records, one per single-shot transaction, whose disk write is the
// commit point of the design ("The commit point is the disk write: if we
// crash before the write occurs on the disk, the update is not visible
// after a restart; if we crash after the write completes, the entire update
// will be completed after a restart").
//
// Each entry is framed as
//
//	uvarint sequence | uvarint length | payload | crc32c(sequence, length, payload)
//
// The leading length plays the role the paper gives it — "this detection
// comes from including the log entry's length on the first page of the
// entry" — and the trailing CRC substitutes for the 1987 disk hardware's
// property that a partially written page reports a read error: a torn tail
// entry fails its checksum and is discarded by recovery. A damaged entry in
// the *middle* of the log can optionally be skipped (the paper's §4:
// "recovery from a hard error in the log could consist of ignoring just the
// damaged log entry"), because the entry length lets the reader hop over an
// unreadable payload.
//
// Group commit — "arranging to record multiple commit records in a single
// log entry (in the presence of concurrent update requests)", which the
// paper identifies as the only scheme that can beat one-write-per-update —
// is available as an option: concurrent Appends share a single Sync.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"smalldb/internal/obs"
	"smalldb/internal/vfs"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSpareFlushBuf bounds the flush buffer kept across group commits.
const maxSpareFlushBuf = 1 << 20

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures a Log.
type Options struct {
	// NoSync skips the Sync on append. Only for tests that model a
	// system without a commit point; the reliability experiments show
	// what it costs.
	NoSync bool
	// Obs, when non-nil, receives the log's metrics: wal_appends,
	// wal_append_bytes, wal_flushes, wal_flush_ns, wal_flush_bytes and
	// wal_group_entries.
	Obs *obs.Registry
	// Tracer, when non-nil, receives a "log.flush" event per disk write.
	Tracer obs.Tracer
}

// metrics holds the log's instrumentation; every field tolerates nil, so
// an unwired log pays only nil checks.
type metrics struct {
	appends      *obs.Counter   // entries enqueued
	appendBytes  *obs.Counter   // framed bytes enqueued
	flushes      *obs.Counter   // disk writes (write+sync pairs)
	flushNS      *obs.Histogram // latency of one write+sync
	flushBytes   *obs.Histogram // bytes per disk write
	groupEntries *obs.Histogram // entries sharing one disk write
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		appends:      reg.Counter("wal_appends"),
		appendBytes:  reg.Counter("wal_append_bytes"),
		flushes:      reg.Counter("wal_flushes"),
		flushNS:      reg.Histogram("wal_flush_ns"),
		flushBytes:   reg.Histogram("wal_flush_bytes"),
		groupEntries: reg.Histogram("wal_group_entries"),
	}
}

// Log is an open redo log positioned for appending.
type Log struct {
	fs   vfs.FS
	name string
	opts Options
	m    metrics

	mu           sync.Mutex
	cond         *sync.Cond
	f            vfs.File
	nextSeq      uint64
	size         int64
	pending      []byte // frames appended but not yet written+synced (group commit)
	spare        []byte // the previous flush's buffer, recycled to rebuild pending
	pendingCount int    // entries in pending
	pendingHi    uint64 // highest seq in pending
	committed    uint64 // highest seq known durable
	syncing      bool
	holdFlush    bool  // blocks new flush leaders; see FinishMirror
	err          error // sticky: a failed log write poisons the log
	closed       bool
	mirror       mirrorState
}

// mirrorState is the mirror window a non-blocking checkpoint opens: every
// frame appended while the window is open still commits durably to the
// current (old) file — which remains the commit point — and is additionally
// buffered for the checkpoint's new log file. Once the new file is attached,
// each flush writes and syncs BOTH files before acknowledging, so at every
// instant after a successful SyncMirror the new file durably holds every
// acknowledged entry of the window; the version flip is then safe at any
// point and FinishMirror retargets the log with a lock-only critical
// section.
type mirrorState struct {
	active   bool
	f        vfs.File // nil until AttachMirrorFile
	buf      []byte   // frames not yet written to f
	inflight int64    // bytes taken by the flush currently writing f
	written  int64    // bytes durably written to f
	entries  int64    // frames appended during the window
}

// Create creates (or truncates) the named log file and returns an empty Log
// whose first entry will have sequence firstSeq (≥ 1; sequence 0 is
// reserved as "nothing committed").
func Create(fs vfs.FS, name string, firstSeq uint64, opts Options) (*Log, error) {
	if firstSeq == 0 {
		return nil, fmt.Errorf("wal: firstSeq must be ≥ 1")
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{fs: fs, name: name, opts: opts, m: newMetrics(opts.Obs), f: f, nextSeq: firstSeq}
	l.cond = sync.NewCond(&l.mu)
	l.committed = firstSeq - 1
	return l, nil
}

// Open opens an existing log for appending. nextSeq must be one past the
// sequence of the last entry (as reported by Replay during recovery).
func Open(fs vfs.FS, name string, nextSeq uint64, opts Options) (*Log, error) {
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: nextSeq must be ≥ 1")
	}
	f, err := fs.Append(name)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{fs: fs, name: name, opts: opts, m: newMetrics(opts.Obs), f: f, nextSeq: nextSeq, size: size}
	l.cond = sync.NewCond(&l.mu)
	l.committed = nextSeq - 1
	return l, nil
}

// Name reports the log's file name.
func (l *Log) Name() string { return l.name }

// Size reports the log's current size in bytes, including unsynced frames.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// NextSeq reports the sequence number the next Append will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// appendFrame encodes one log entry in place at the end of buf, so the
// append path frames straight into the shared pending buffer with no
// per-entry allocation.
func appendFrame(buf []byte, seq uint64, payload []byte) []byte {
	base := len(buf)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[base:], crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// frame encodes one log entry into a fresh slice.
func frame(seq uint64, payload []byte) []byte {
	return appendFrame(make([]byte, 0, 2*binary.MaxVarintLen64+len(payload)+4), seq, payload)
}

// Append writes one entry and makes it durable; when it returns, the entry
// is the committed record of an update. It reports the entry's sequence
// number. Concurrent Appends are serialized; with GroupCommit they may share
// one disk write.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, wait := l.AppendAsync(payload)
	return seq, wait()
}

// AppendAsync enqueues one entry, assigning its sequence number
// immediately, and returns a wait function that blocks until the entry is
// durable (performing or joining the disk write as needed). It lets a
// caller that must assign sequence numbers inside its own critical section
// move the disk wait outside it — the store's group-commit mode.
func (l *Log) AppendAsync(payload []byte) (uint64, func() error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, func() error { return ErrClosed }
	}
	if l.err != nil {
		err := l.err
		return 0, func() error { return err }
	}
	seq := l.nextSeq
	l.appendSeqLocked(seq, payload)
	return seq, func() error { return l.waitDurable(seq) }
}

// AppendSeqAsync enqueues one entry under a caller-assigned sequence
// number, at least the log's next one. It exists for logs that are one
// stream of a Sharded log: the global ticket hands out sequences across
// streams, so within any single stream they are strictly increasing but
// not dense. The log's own numbering continues from seq+1; the returned
// wait function blocks until this stream has synced the entry (the epoch
// barrier normally waits for all streams instead).
func (l *Log) AppendSeqAsync(seq uint64, payload []byte) func() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return func() error { return ErrClosed }
	}
	if l.err != nil {
		err := l.err
		return func() error { return err }
	}
	if seq < l.nextSeq {
		err := fmt.Errorf("wal: AppendSeqAsync sequence %d below next sequence %d", seq, l.nextSeq)
		return func() error { return err }
	}
	l.appendSeqLocked(seq, payload)
	return func() error { return l.waitDurable(seq) }
}

// enqueueSeq is AppendSeqAsync without the wait closure: the Sharded
// append path's epoch barrier is the wait, so building a per-stream
// closure would be a wasted allocation on the hot path. A closed or
// poisoned stream drops the frame; the epoch seal's Flush surfaces the
// same error to every waiter, so acked ⇒ durable still holds.
func (l *Log) enqueueSeq(seq uint64, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil || seq < l.nextSeq {
		return
	}
	l.appendSeqLocked(seq, payload)
}

// appendSeqLocked frames one entry at sequence seq into the pending buffer.
// Called with l.mu held on an open, healthy log; seq must be >= l.nextSeq.
func (l *Log) appendSeqLocked(seq uint64, payload []byte) {
	l.nextSeq = seq + 1
	was := len(l.pending)
	l.pending = appendFrame(l.pending, seq, payload)
	frameLen := len(l.pending) - was
	if l.mirror.active {
		l.mirror.buf = append(l.mirror.buf, l.pending[was:]...)
		l.mirror.entries++
	}
	l.pendingCount++
	l.pendingHi = seq
	l.size += int64(frameLen)
	l.m.appends.Inc()
	l.m.appendBytes.Add(uint64(frameLen))
}

// waitDurable blocks until seq is durable. If no flush is in progress it
// leads one, writing every pending frame with a single disk write and sync;
// otherwise it waits for the current leader and, if that flush did not
// cover seq, leads the next. Concurrent waiters therefore share disk
// writes: this is the group commit the paper describes, arising naturally
// whenever callers overlap. Callers that serialize (the store's base mode,
// one update at a time under the update lock) get exactly one disk write
// per entry.
func (l *Log) waitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.committed >= seq {
			return nil
		}
		if !l.syncing && !l.holdFlush && len(l.pending) > 0 {
			l.syncing = true
			err := l.flushLocked()
			l.syncing = false
			l.cond.Broadcast()
			if err != nil {
				return err
			}
			continue
		}
		// Either a flush is in flight (it holds our frame, or the
		// next leader will) or our frame is in a flush that is about
		// to complete; both broadcast.
		l.cond.Wait()
	}
}

// flushLocked writes and syncs all pending frames. Called with l.mu held;
// releases it around the I/O. While a mirror file is attached, the mirrored
// frames are written and synced to it too, and no entry is acknowledged
// (committed advanced) until both files are durable — the invariant the
// non-blocking checkpoint's version flip depends on.
func (l *Log) flushLocked() error {
	buf := l.pending
	hi := l.pendingHi
	entries := l.pendingCount
	// Swap in the previous flush's buffer so appends arriving during the
	// I/O frame into recycled storage instead of regrowing from nil. Only
	// one flush runs at a time (l.syncing), so buf is ours until we hand
	// it back below.
	l.pending = l.spare[:0]
	l.spare = nil
	l.pendingCount = 0
	var mbuf []byte
	var mf vfs.File
	if l.mirror.f != nil && len(l.mirror.buf) > 0 {
		mf = l.mirror.f
		mbuf = l.mirror.buf
		l.mirror.buf = nil
		l.mirror.inflight = int64(len(mbuf))
	}
	if len(buf) == 0 && mbuf == nil {
		l.spare = buf
		return nil
	}
	l.mu.Unlock()
	start := time.Now()
	var werr, serr error
	if len(buf) > 0 {
		_, werr = l.f.Write(buf)
		if werr == nil && !l.opts.NoSync {
			serr = l.f.Sync()
		}
	}
	var merr error
	if werr == nil && serr == nil && mf != nil {
		if _, merr = mf.Write(mbuf); merr == nil && !l.opts.NoSync {
			merr = mf.Sync()
		}
	}
	dur := time.Since(start)
	l.m.flushes.Inc()
	l.m.flushNS.ObserveDuration(dur)
	l.m.flushBytes.Observe(int64(len(buf)))
	l.m.groupEntries.Observe(int64(entries))
	if l.opts.Tracer != nil {
		ferr := werr
		if ferr == nil {
			ferr = serr
		}
		if ferr == nil {
			ferr = merr
		}
		l.opts.Tracer.Emit(obs.Event{Name: "log.flush", Time: start, Dur: dur, Err: ferr, Attrs: []obs.Attr{
			obs.A("bytes", len(buf)), obs.A("entries", entries), obs.A("hi_seq", hi),
		}})
	}
	l.mu.Lock()
	// Hand the written buffer back for the next flush cycle, unless it
	// ballooned (a giant group) — holding that much memory between
	// flushes is not worth the saved allocation.
	if l.spare == nil && cap(buf) <= maxSpareFlushBuf {
		l.spare = buf[:0]
	}
	if mf != nil {
		l.mirror.inflight = 0
		if merr == nil {
			l.mirror.written += int64(len(mbuf))
		}
	}
	// Wake every waiter regardless of outcome: they either see their
	// sequence committed or the poisoned log.
	defer l.cond.Broadcast()
	if werr == nil && serr == nil && merr == nil {
		if len(buf) > 0 && hi > l.committed {
			l.committed = hi
		}
		return nil
	}
	err := werr
	if err == nil {
		err = serr
	}
	if err == nil {
		err = merr
	}
	l.err = fmt.Errorf("wal: append failed, log poisoned: %w", err)
	return l.err
}

// Flush makes every enqueued entry durable before returning, waiting out
// any in-flight flush. Administrative operations (audit-trail reads) use it
// to bring the file in line with the in-memory state.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if len(l.pending) == 0 {
		return nil
	}
	l.syncing = true
	err := l.flushLocked()
	l.syncing = false
	l.cond.Broadcast()
	return err
}

// hasPending reports whether unflushed frames are enqueued. The Sharded
// epoch seal uses it to pick which streams need a sync this epoch.
func (l *Log) hasPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) > 0
}

// MirrorActive reports whether a mirror window is open — i.e. a
// non-blocking checkpoint is in flight and appends are being dual-written.
// Traced commits use it to tag the sync span that paid for the mirror.
func (l *Log) MirrorActive() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mirror.active
}

// BeginMirror opens the mirror window. The caller must have quiesced
// appends (the store holds the update lock) and flushed the log: every
// frame appended from here on is buffered for the checkpoint's new log
// file in addition to committing durably to the current one.
func (l *Log) BeginMirror() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.mirror.active {
		return errors.New("wal: mirror window already open")
	}
	if len(l.pending) > 0 || l.syncing {
		return errors.New("wal: BeginMirror requires a flushed log")
	}
	l.mirror = mirrorState{active: true}
	return nil
}

// AttachMirrorFile hands the mirror window the new log file (created and
// synced by the checkpoint protocol). Until SyncMirror returns, frames
// buffered since BeginMirror may still be waiting; afterwards every flush
// keeps the file durably caught up before acknowledging.
func (l *Log) AttachMirrorFile(f vfs.File) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.mirror.active {
		return errors.New("wal: AttachMirrorFile without BeginMirror")
	}
	if l.mirror.f != nil {
		return errors.New("wal: mirror file already attached")
	}
	l.mirror.f = f
	return nil
}

// SyncMirror drains the mirror backlog: when it returns nil, every entry
// acknowledged so far with a sequence inside the window is durably in the
// mirror file — and the dual-write rule in flushLocked keeps that invariant
// for every later acknowledgement, so the checkpoint may flip the version
// at any moment after this.
func (l *Log) SyncMirror() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.mirror.active || l.mirror.f == nil {
		return errors.New("wal: SyncMirror without attached mirror")
	}
	// Wait for progress, not for quiet: under a steady append stream the
	// log is flushing almost continuously and a wait for !syncing could
	// starve forever — but every one of those flushes drains the mirror
	// backlog too, so it is enough to watch mirror.written reach the
	// bytes appended so far. Frames appended after this point are the
	// dual-write rule's problem, not ours.
	target := l.mirror.written + l.mirror.inflight + int64(len(l.mirror.buf))
	for {
		if l.err != nil {
			return l.err
		}
		if l.mirror.written >= target {
			return nil
		}
		if !l.syncing && !l.holdFlush {
			l.syncing = true
			err := l.flushLocked()
			l.syncing = false
			l.cond.Broadcast()
			if err != nil {
				return err
			}
			continue
		}
		l.cond.Wait()
	}
}

// FinishMirror ends the mirror window by retargeting the log to the mirror
// file: the same Log keeps its sequence numbering and pending frames but
// appends to (and syncs) the new file from now on, and the old file handle
// is closed. The caller must have called SyncMirror and flipped the version
// first. It reports how many entries were appended during the window.
func (l *Log) FinishMirror(newName string) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// Block new flush leaders while we wait for the in-flight one: under a
	// steady append stream the log is otherwise flushing back-to-back and
	// this wait could starve. Parked appenders resume on the broadcast.
	l.holdFlush = true
	defer func() {
		l.holdFlush = false
		l.cond.Broadcast()
	}()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if !l.mirror.active || l.mirror.f == nil {
		return 0, errors.New("wal: FinishMirror without attached mirror")
	}
	old := l.f
	l.f = l.mirror.f
	l.name = newName
	// Since the last drain (SyncMirror at the latest), pending and
	// mirror.buf have held the same frames — flushes empty them together
	// and appends extend them together — so the unwritten tail and its
	// counters carry over unchanged.
	l.pending = l.mirror.buf
	l.size = l.mirror.written + int64(len(l.pending))
	entries := l.mirror.entries
	l.mirror = mirrorState{}
	l.spare = nil
	_ = old.Close() // the superseded version's log; best-effort
	return entries, nil
}

// / AbortMirror ends the mirror window without switching files: buffered
// mirror frames are discarded and the mirror file, if attached, is closed.
// The log keeps appending to its current file. Safe to call in any state.
func (l *Log) AbortMirror() {
	l.mu.Lock()
	l.holdFlush = true
	for l.syncing {
		l.cond.Wait()
	}
	l.holdFlush = false
	f := l.mirror.f
	l.mirror = mirrorState{}
	l.cond.Broadcast()
	l.mu.Unlock()
	if f != nil {
		_ = f.Close()
	}
}

// Close closes the log file. Pending unsynced frames are flushed first,
// after any in-flight flush completes — there is never more than one flush
// writing the file at a time, which keeps frames in sequence order.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	var err error
	if l.err == nil && len(l.pending) > 0 {
		l.syncing = true
		err = l.flushLocked()
		l.syncing = false
		l.cond.Broadcast()
	}
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayOptions configures log recovery.
type ReplayOptions struct {
	// SkipDamaged makes Replay hop over entries whose payload is
	// unreadable (hard media failure) instead of failing, implementing
	// the paper's "ignoring just the damaged log entry" recovery for
	// applications whose updates are independent.
	SkipDamaged bool
	// Repair truncates the log file in place after a torn tail entry is
	// detected, so a subsequent Open appends from the last good entry.
	Repair bool
	// Monotonic relaxes the dense-sequence check to strictly-increasing:
	// the log is one stream of a Sharded log, carrying only the global
	// sequences that hashed to it. The first entry must still be >=
	// firstSeq. Cross-stream gap detection is the merge's job
	// (ReplayShardedPipelined), not the stream's.
	Monotonic bool
	// Obs, when non-nil, receives the wal_torn_tails and
	// wal_damaged_entries recovery counters.
	Obs *obs.Registry
}

// ReplayResult describes what recovery found.
type ReplayResult struct {
	// Entries is the number of intact entries delivered.
	Entries int
	// LastSeq is the sequence of the last intact entry (0 if none).
	LastSeq uint64
	// NextSeq is the sequence a reopened log should continue from.
	NextSeq uint64
	// Truncated reports that a partially written tail entry was
	// discarded — the transient-failure case of §4.
	Truncated bool
	// Damaged is the number of unreadable entries skipped (only with
	// SkipDamaged).
	Damaged int
	// GoodSize is the byte offset just past the last intact entry.
	GoodSize int64
}

// Replay reads the named log from the beginning, calling fn for each intact
// entry in order. A torn tail (truncated data or bad checksum at the end)
// ends replay without error. fn errors abort replay.
//
// firstSeq is the sequence expected of the first entry; Replay verifies the
// sequence numbers are dense so a lost or reordered entry is detected.
func Replay(fs vfs.FS, name string, firstSeq uint64, opts ReplayOptions, fn func(seq uint64, payload []byte) error) (ReplayResult, error) {
	res := ReplayResult{NextSeq: firstSeq}
	f, err := fs.Open(name)
	if err != nil {
		return res, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return res, err
	}

	var off int64
	expect := firstSeq
	for off < size {
		entryStart := off
		seq, payload, n, rerr := readEntry(f, off, size)
		switch {
		case rerr == nil:
			// A sequence discontinuity with a valid CRC means the file
			// is not the log we think it is; fail loudly. A shard
			// stream (Monotonic) holds only the global sequences that
			// hashed to it, so there only a regression is a
			// discontinuity — cross-stream gaps are the merge's job.
			if opts.Monotonic && seq < expect {
				f.Close()
				return res, fmt.Errorf("wal: %s: entry at offset %d has sequence %d, want >= %d", name, entryStart, seq, expect)
			}
			if !opts.Monotonic && seq != expect {
				f.Close()
				return res, fmt.Errorf("wal: %s: entry at offset %d has sequence %d, want %d", name, entryStart, seq, expect)
			}
			if err := fn(seq, payload); err != nil {
				f.Close()
				return res, err
			}
			res.Entries++
			res.LastSeq = seq
			off += n
			res.GoodSize = off
			expect = seq + 1
			res.NextSeq = expect
		case errors.Is(rerr, vfs.ErrDamaged) && n > 0 && !anyIntactFrom(f, off+n, size):
			// Unreadable data running to the end of the log, with no
			// intact entry beyond it: indistinguishable from a flush
			// the crash interrupted mid-transfer — §2's torn update,
			// whose partially written pages read back as errors.
			// None of it committed (the sync never succeeded), so
			// discard it as a torn tail.
			res.Truncated = true
			off = size // stop
		case errors.Is(rerr, vfs.ErrDamaged) && opts.SkipDamaged && n > 0:
			// The frame header was readable, so we know the
			// entry's extent: hop over it. The update it held is
			// lost; the paper accepts this for independent
			// updates.
			res.Damaged++
			off += n
			res.GoodSize = off
			if opts.Monotonic && seq >= expect {
				expect = seq + 1
			} else if !opts.Monotonic {
				expect++
			}
			res.NextSeq = expect
		case errors.Is(rerr, errTorn):
			// Partial tail entry: the crash happened during this
			// entry's disk write, so the update did not commit.
			res.Truncated = true
			off = size // stop
		default:
			f.Close()
			return res, fmt.Errorf("wal: %s at offset %d: %w", name, entryStart, rerr)
		}
	}
	f.Close()

	if res.Damaged > 0 {
		opts.Obs.Counter("wal_damaged_entries").Add(uint64(res.Damaged))
	}
	if res.Truncated {
		opts.Obs.Counter("wal_torn_tails").Inc()
	}
	if res.Truncated && opts.Repair {
		rw, err := fs.OpenRW(name)
		if err != nil {
			return res, err
		}
		if err := rw.Truncate(res.GoodSize); err != nil {
			rw.Close()
			return res, err
		}
		if err := rw.Sync(); err != nil {
			rw.Close()
			return res, err
		}
		if err := rw.Close(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// FirstSeq reports the sequence number of the named log's first intact
// entry, with ok=false for an empty (or immediately torn) log. Diagnostic
// tools use it to replay a log whose starting sequence they do not know.
func FirstSeq(fs vfs.FS, name string) (seq uint64, ok bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, false, err
	}
	if size == 0 {
		return 0, false, nil
	}
	seq, _, _, rerr := readEntry(f, 0, size)
	if rerr != nil {
		if errors.Is(rerr, errTorn) {
			return 0, false, nil
		}
		return 0, false, rerr
	}
	return seq, true, nil
}

// anyIntactFrom reports whether any intact entry exists at or after off:
// the test separating a hard-failed entry in the middle of the log (intact
// data follows it) from a torn tail (unreadable to the end). It walks
// frame by frame while extents remain decodable.
func anyIntactFrom(f vfs.File, off, size int64) bool {
	for off < size {
		_, _, n, rerr := readEntry(f, off, size)
		switch {
		case rerr == nil:
			return true
		case errors.Is(rerr, vfs.ErrDamaged) && n > 0:
			off += n // extent known: keep scanning
		default:
			return false // torn or unreadable extent: nothing beyond
		}
	}
	return false
}

// errTorn marks a partially written tail entry.
var errTorn = errors.New("wal: torn tail entry")

// readEntry reads the frame at off. It returns the total frame length n
// when the header was decodable (even if the payload is damaged), so the
// caller can skip. A frame that runs past size, or whose CRC fails, is torn.
func readEntry(f vfs.File, off, size int64) (seq uint64, payload []byte, n int64, err error) {
	// Read the header (two uvarints ≤ 20 bytes). If the block read trips
	// over damage — which may lie in the payload bytes that follow the
	// header — fall back to reading one byte at a time so a readable
	// header in front of a damaged payload can still be parsed; the
	// paper's hop-over-the-damaged-entry recovery depends on the length
	// being legible.
	var hdr [2 * binary.MaxVarintLen64]byte
	hn, rerr := f.ReadAt(hdr[:], off)
	if errors.Is(rerr, vfs.ErrDamaged) {
		hn, rerr = 0, nil
		for i := range hdr {
			if _, berr := f.ReadAt(hdr[i:i+1], off+int64(i)); berr != nil {
				if errors.Is(berr, vfs.ErrDamaged) || berr == io.EOF {
					break
				}
				return 0, nil, 0, berr
			}
			hn++
		}
	}
	if rerr != nil && rerr != io.EOF {
		return 0, nil, 0, rerr
	}
	if hn == 0 {
		return 0, nil, 0, errTorn
	}
	seq, s1 := binary.Uvarint(hdr[:hn])
	if s1 <= 0 {
		return 0, nil, 0, errTorn
	}
	plen, s2 := binary.Uvarint(hdr[s1:hn])
	if s2 <= 0 {
		return 0, nil, 0, errTorn
	}
	hlen := int64(s1 + s2)
	if plen > uint64(size-off) { // cannot possibly fit: torn length or tail
		return 0, nil, 0, errTorn
	}
	n = hlen + int64(plen) + 4
	if off+n > size {
		return seq, nil, n, errTorn
	}
	body := make([]byte, int64(plen)+4)
	if _, rerr := f.ReadAt(body, off+hlen); rerr != nil && rerr != io.EOF {
		// Damaged payload: header told us the extent, so n is valid
		// for skipping.
		return seq, nil, n, rerr
	}
	payload = body[:plen]
	wantSum := binary.LittleEndian.Uint32(body[plen:])
	h := crc32.New(crcTable)
	h.Write(hdr[:hlen])
	h.Write(payload)
	if h.Sum32() != wantSum {
		return seq, nil, n, errTorn
	}
	return seq, payload, n, nil
}
