package pickle

// Wire tags. Every encoded value starts with one tag byte. The stream as a
// whole begins with the magic byte so that a checkpoint or log entry fed to
// the wrong reader fails loudly instead of decoding garbage.
const (
	magic byte = 0xD6 // arbitrary, unlikely first byte of text

	tNil     byte = iota + 1 // nil pointer, map, slice or interface
	tFalse                   // bool false
	tTrue                    // bool true
	tInt                     // zigzag varint
	tUint                    // uvarint
	tFloat32                 // 4 bytes little-endian IEEE 754
	tFloat64                 // 8 bytes little-endian IEEE 754
	tComplex                 // two float64s
	tString                  // uvarint length + bytes
	tBytes                   // uvarint length + bytes ([]byte fast path)
	tSlice                   // uvarint length + elements
	tArray                   // uvarint length + elements
	tMap                     // uvarint refid + uvarint length + key/value pairs
	tStruct                  // uvarint typeid [+ inline definition] + fields
	tPtr                     // uvarint refid + pointee
	tRef                     // uvarint refid of a previously defined ptr/map
	tIface                   // type name string + concrete value
	tBinary                  // uvarint length + encoding.BinaryMarshaler bytes
	tagMax
)

func tagName(t byte) string {
	switch t {
	case tNil:
		return "nil"
	case tFalse, tTrue:
		return "bool"
	case tInt:
		return "int"
	case tUint:
		return "uint"
	case tFloat32:
		return "float32"
	case tFloat64:
		return "float64"
	case tComplex:
		return "complex"
	case tString:
		return "string"
	case tBytes:
		return "bytes"
	case tSlice:
		return "slice"
	case tArray:
		return "array"
	case tMap:
		return "map"
	case tStruct:
		return "struct"
	case tPtr:
		return "pointer"
	case tRef:
		return "ref"
	case tIface:
		return "interface"
	case tBinary:
		return "binary-marshaled"
	default:
		return "invalid"
	}
}
