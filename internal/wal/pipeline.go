package wal

import (
	"errors"
	"sync"

	"smalldb/internal/vfs"
)

// Pipelined replay: restart time is dominated by re-deserializing log
// entries, which is pure CPU and embarrassingly parallel, while applying
// them must stay strictly sequential to reproduce the exact pre-crash
// state. ReplayPipelined splits the two: one goroutine scans frames off the
// disk, a bounded worker pool decodes payloads out of order, and the
// caller's goroutine applies results in sequence order. The applied state
// is byte-identical to a sequential Replay — only the wall clock differs.

// errStopped aborts the scanner once the applier has already failed; the
// applier's error wins.
var errStopped = errors.New("wal: replay stopped")

// replayJob carries one intact log entry through the decode pool.
type replayJob struct {
	seq     uint64
	payload []byte
	v       any
	err     error
	done    chan struct{} // closed when v/err are ready
}

// ReplayPipelined is Replay with the per-entry work split into a decode
// function, run on up to workers goroutines concurrently and out of order,
// and an apply function, called on the caller's goroutine strictly in
// sequence order. decode must not touch shared state; payload is owned by
// the callee. workers <= 1 degenerates to the sequential Replay.
func ReplayPipelined(fs vfs.FS, name string, firstSeq uint64, opts ReplayOptions, workers int,
	decode func(seq uint64, payload []byte) (any, error),
	apply func(seq uint64, v any) error) (ReplayResult, error) {
	if workers <= 1 {
		return Replay(fs, name, firstSeq, opts, func(seq uint64, payload []byte) error {
			v, err := decode(seq, payload)
			if err != nil {
				return err
			}
			return apply(seq, v)
		})
	}

	// jobs feeds the decode pool; order carries the same jobs to the
	// applier in scan order. Buffers bound read-ahead so a huge log does
	// not sit in memory all at once.
	jobs := make(chan *replayJob, 2*workers)
	order := make(chan *replayJob, 2*workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				j.v, j.err = decode(j.seq, j.payload)
				close(j.done)
			}
		}()
	}

	var (
		res     ReplayResult
		scanErr error
	)
	go func() {
		res, scanErr = Replay(fs, name, firstSeq, opts, func(seq uint64, payload []byte) error {
			j := &replayJob{seq: seq, payload: payload, done: make(chan struct{})}
			select {
			case order <- j:
			case <-stop:
				return errStopped
			}
			select {
			case jobs <- j:
			case <-stop:
				// The job is in order but will never be decoded; the
				// applier is already draining without waiting.
				return errStopped
			}
			return nil
		})
		close(jobs)
		close(order)
	}()

	var applyErr error
	for j := range order {
		if applyErr != nil {
			continue // draining after failure: do not wait on done
		}
		<-j.done
		if j.err != nil {
			applyErr = j.err
			halt()
			continue
		}
		if err := apply(j.seq, j.v); err != nil {
			applyErr = err
			halt()
		}
	}
	wg.Wait()

	// order is closed only after Replay returned, so reading res/scanErr
	// here is ordered. The applier's error wins over the scanner's
	// stop-induced one.
	if applyErr != nil {
		return res, applyErr
	}
	if scanErr != nil {
		return res, scanErr
	}
	return res, nil
}
