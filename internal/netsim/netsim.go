// Package netsim is a deterministic, seeded fault-injecting network for
// torture-testing the RPC and replication layers — the network analogue of
// internal/vfs/faultfs. The paper's answer to hard errors is replication
// (§4, §7): an update is acknowledged once one replica commits it and
// anti-entropy spreads it to the rest, which only works if the transport
// underneath tolerates the network actually failing. netsim makes those
// failures reproducible.
//
// A Network is a set of named endpoints connected by in-memory duplex
// streams. Every fault decision — the fate of a dial attempt, the fate of
// each written message — is assigned a monotonically increasing decision
// index and drawn from one seeded PRNG, so a workload that drives the
// network sequentially gets an identical fault schedule on every run with
// the same seed: any failure is replayable from (seed, index), exactly like
// crashtest's (seed, crash point). The decision trace records what happened
// at each index.
//
// Faults, per the configured Profile or forced via FailAt:
//
//   - drop: a written message is lost. The streams are TCP-like (ordered,
//     reliable-or-dead), so a lost segment kills the connection — both ends
//     see a reset, the way a real kernel gives up after retransmits.
//   - delay: delivery of a message is delayed by a seeded jitter.
//   - blackhole: a written message is silently discarded but the connection
//     stays up — the sender learns nothing until its own timeout fires.
//   - dial failure: a connect attempt is refused.
//   - duplicate dial: a connect attempt delivers a second, ghost connection
//     to the listener (a retransmitted SYN the server also accepted); the
//     ghost carries no data and the server must tolerate it.
//   - hard close: Kill resets a connection at any moment.
//
// Partitions cut links between named endpoints: Partition(a, b) is
// symmetric (existing connections are reset, dials refused both ways) and
// PartitionOneWay(from, to) is asymmetric (messages from→to vanish, dials
// from→to are refused, the reverse direction still works). Heal restores a
// link and HealAll the whole network.
package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"smalldb/internal/obs"
)

// Errors returned by connections and dials. All of them mean "the network
// failed you", which a resilient client treats as retryable.
var (
	// ErrReset marks a connection killed by a drop, a partition, Kill, or
	// Network.Close.
	ErrReset = errors.New("netsim: connection reset")
	// ErrRefused marks a dial rejected by a fault or a partition.
	ErrRefused = errors.New("netsim: connection refused")
	// ErrClosed marks use of a closed connection, listener, or network.
	ErrClosed = errors.New("netsim: closed")
)

// Profile sets the background fault probabilities. The zero Profile is a
// perfect network; faults then come only from partitions, FailAt, and Kill.
type Profile struct {
	// DropProb is the per-message probability that the message is lost and
	// the connection reset.
	DropProb float64
	// DelayProb is the per-message probability of a delivery delay drawn
	// uniformly from (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds the delivery jitter; 0 disables delays even when
	// DelayProb is set.
	MaxDelay time.Duration
	// BlackholeProb is the per-message probability that the message is
	// silently discarded with the connection left up.
	BlackholeProb float64
	// DialFailProb is the probability that a dial attempt is refused.
	DialFailProb float64
	// DupDialProb is the probability that a successful dial also delivers
	// a ghost connection to the listener.
	DupDialProb float64
}

// Event is one traced fault decision.
type Event struct {
	Index int64
	// Kind is the outcome: "deliver", "drop", "delay", "blackhole",
	// "cut", "dial", "dial-fail", "dial-dup", "kill", "partition", "heal".
	Kind     string
	From, To string
	// Delay is set for "delay" events.
	Delay time.Duration
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s->%s", e.Index, e.Kind, e.From, e.To)
	if e.Delay > 0 {
		s += fmt.Sprintf(" (%v)", e.Delay)
	}
	return s
}

// Options configures a Network.
type Options struct {
	Profile Profile
	// TraceCap bounds the decision trace (a ring of the most recent
	// events); 0 keeps the default of 4096, negative keeps no trace.
	TraceCap int
	// Obs, when non-nil, receives the netsim_* counters.
	Obs *obs.Registry
}

// DefaultTraceCap is the trace ring size when Options.TraceCap is 0.
const DefaultTraceCap = 4096

// Network is one simulated network: named listeners, faulty links, one
// seeded PRNG driving every fault decision.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	profile   Profile
	next      int64 // decision index the next fault decision will get
	failAt    map[int64]bool
	listeners map[string]*Listener
	conns     map[*Conn]struct{}
	cuts      map[string]cut // key "from\x00to", one per direction
	closed    bool

	trace    []Event
	traceCap int
	traceOff int

	msgs      *obs.Counter
	drops     *obs.Counter
	delays    *obs.Counter
	blackhole *obs.Counter
	dials     *obs.Counter
	dialFails *obs.Counter
	kills     *obs.Counter
}

type cut struct{ active bool }

// New returns a Network whose fault schedule is fully determined by seed.
func New(seed int64, opts Options) *Network {
	cap := opts.TraceCap
	if cap == 0 {
		cap = DefaultTraceCap
	}
	if cap < 0 {
		cap = 0
	}
	n := &Network{
		rng:       rand.New(rand.NewSource(seed)),
		profile:   opts.Profile,
		failAt:    make(map[int64]bool),
		listeners: make(map[string]*Listener),
		conns:     make(map[*Conn]struct{}),
		cuts:      make(map[string]cut),
		traceCap:  cap,
	}
	reg := opts.Obs
	n.msgs = reg.Counter("netsim_messages")
	n.drops = reg.Counter("netsim_drops")
	n.delays = reg.Counter("netsim_delays")
	n.blackhole = reg.Counter("netsim_blackholed")
	n.dials = reg.Counter("netsim_dials")
	n.dialFails = reg.Counter("netsim_dial_failures")
	n.kills = reg.Counter("netsim_conns_killed")
	return n
}

// SetProfile replaces the background fault profile (e.g. to run a healthy
// warm-up phase before turning the weather bad).
func (n *Network) SetProfile(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profile = p
}

// FailAt forces the decision at index idx to fail (a dial is refused, a
// message is dropped), regardless of the profile — the hook for replaying a
// specific schedule or minimizing one.
func (n *Network) FailAt(idx int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failAt[idx] = true
}

// OpCount reports how many fault decisions have been indexed so far.
func (n *Network) OpCount() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.next
}

// Trace returns the recorded decision tail, oldest first.
func (n *Network) Trace() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Event, 0, len(n.trace))
	out = append(out, n.trace[n.traceOff:]...)
	out = append(out, n.trace[:n.traceOff]...)
	return out
}

func (n *Network) record(e Event) {
	if n.traceCap <= 0 {
		return
	}
	if len(n.trace) < n.traceCap {
		n.trace = append(n.trace, e)
		return
	}
	n.trace[n.traceOff] = e
	n.traceOff = (n.traceOff + 1) % n.traceCap
}

// note records an un-indexed control event (partition, heal, kill).
func (n *Network) note(kind, from, to string) {
	n.record(Event{Index: -1, Kind: kind, From: from, To: to})
}

func cutKey(from, to string) string { return from + "\x00" + to }

// Partition cuts the a↔b link symmetrically: existing connections between
// them are reset and dials refused in both directions until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.cuts[cutKey(a, b)] = cut{active: true}
	n.cuts[cutKey(b, a)] = cut{active: true}
	n.note("partition", a, b)
	victims := n.connsOnLinkLocked(a, b)
	n.mu.Unlock()
	for _, c := range victims {
		c.kill()
	}
}

// PartitionOneWay makes the from→to direction lossy: messages vanish
// (blackhole) and dials from→to are refused, while to→from still works.
// Existing connections stay up, starving rather than dying.
func (n *Network) PartitionOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts[cutKey(from, to)] = cut{active: true}
	n.note("partition-oneway", from, to)
}

// Heal removes any cut between a and b, in both directions.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cuts, cutKey(a, b))
	delete(n.cuts, cutKey(b, a))
	n.note("heal", a, b)
}

// HealAll removes every cut.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts = make(map[string]cut)
	n.note("heal", "*", "*")
}

func (n *Network) cutLocked(from, to string) bool {
	return n.cuts[cutKey(from, to)].active
}

func (n *Network) connsOnLinkLocked(a, b string) []*Conn {
	var out []*Conn
	for c := range n.conns {
		if (c.local == a && c.remote == b) || (c.local == b && c.remote == a) {
			out = append(out, c)
		}
	}
	return out
}

// Close resets every connection, closes every listener, and refuses all
// further dials.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	var conns []*Conn
	for c := range n.conns {
		conns = append(conns, c)
	}
	var ls []*Listener
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.kill()
	}
	for _, l := range ls {
		l.Close()
	}
}

// fate is the outcome of one decision.
type fate int

const (
	fateDeliver fate = iota
	fateDrop
	fateDelay
	fateBlackhole
	fateCut
)

// decide indexes one message decision on the from→to direction and rolls
// its fate. Exactly one PRNG draw is consumed per decision (plus one for
// the delay duration), so the schedule depends only on the seed and the
// decision order.
func (n *Network) decide(from, to string) (fate, time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.next
	n.next++
	n.msgs.Inc()
	if n.cutLocked(from, to) {
		// Symmetric cuts kill connections eagerly, so a cut seen here is
		// (or acts as) the asymmetric kind: the message just vanishes.
		n.record(Event{Index: idx, Kind: "cut", From: from, To: to})
		n.blackhole.Inc()
		return fateCut, 0
	}
	roll := n.rng.Float64()
	forced := n.failAt[idx]
	if forced {
		delete(n.failAt, idx)
	}
	p := n.profile
	switch {
	case forced || roll < p.DropProb:
		n.record(Event{Index: idx, Kind: "drop", From: from, To: to})
		n.drops.Inc()
		return fateDrop, 0
	case roll < p.DropProb+p.BlackholeProb:
		n.record(Event{Index: idx, Kind: "blackhole", From: from, To: to})
		n.blackhole.Inc()
		return fateBlackhole, 0
	case roll < p.DropProb+p.BlackholeProb+p.DelayProb && p.MaxDelay > 0:
		d := time.Duration(1 + n.rng.Int63n(int64(p.MaxDelay)))
		n.record(Event{Index: idx, Kind: "delay", From: from, To: to, Delay: d})
		n.delays.Inc()
		return fateDelay, d
	default:
		n.record(Event{Index: idx, Kind: "deliver", From: from, To: to})
		return fateDeliver, 0
	}
}

// decideDial indexes one dial decision. It returns refused, dup.
func (n *Network) decideDial(from, to string) (bool, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.next
	n.next++
	n.dials.Inc()
	if n.closed || n.cutLocked(from, to) {
		n.record(Event{Index: idx, Kind: "dial-fail", From: from, To: to})
		n.dialFails.Inc()
		return true, false
	}
	roll := n.rng.Float64()
	forced := n.failAt[idx]
	if forced {
		delete(n.failAt, idx)
	}
	p := n.profile
	switch {
	case forced || roll < p.DialFailProb:
		n.record(Event{Index: idx, Kind: "dial-fail", From: from, To: to})
		n.dialFails.Inc()
		return true, false
	case roll < p.DialFailProb+p.DupDialProb:
		n.record(Event{Index: idx, Kind: "dial-dup", From: from, To: to})
		return false, true
	default:
		n.record(Event{Index: idx, Kind: "dial", From: from, To: to})
		return false, false
	}
}

// --- listener ---

// Listener accepts simulated connections for one named endpoint. It
// implements net.Listener.
type Listener struct {
	net  *Network
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Conn
	closed  bool
}

// Listen binds name to a new Listener. A name may be re-bound after its
// previous listener closed (a restarted server), but not while it is live.
func (n *Network) Listen(name string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("netsim: listen %s: %w", name, ErrClosed)
	}
	if old, ok := n.listeners[name]; ok {
		old.mu.Lock()
		live := !old.closed
		old.mu.Unlock()
		if live {
			return nil, fmt.Errorf("netsim: %s already listening", name)
		}
	}
	l := &Listener{net: n, name: name}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[name] = l
	return l, nil
}

// Accept blocks for the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, fmt.Errorf("netsim: accept %s: %w", l.name, ErrClosed)
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close stops the listener; blocked Accepts return ErrClosed.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr(l.name) }

// deliver hands an accepted conn to the listener; false if it is closed.
func (l *Listener) deliver(c *Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.backlog = append(l.backlog, c)
	l.cond.Signal()
	return true
}

// addr is a net.Addr naming a simulated endpoint.
type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// --- dialing ---

// Dial connects endpoint from to the listener named to, subject to the
// fault schedule.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	refused, dup := n.decideDial(from, to)
	if refused {
		return nil, fmt.Errorf("netsim: dial %s->%s: %w", from, to, ErrRefused)
	}
	n.mu.Lock()
	l := n.listeners[to]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netsim: dial %s->%s: no listener: %w", from, to, ErrRefused)
	}
	if dup {
		// The ghost connection: accepted by the server, abandoned by the
		// network. It carries nothing and dies when either side closes.
		_, ghost := n.newPair(from, to)
		if !l.deliver(ghost) {
			ghost.kill()
		}
	}
	client, server := n.newPair(from, to)
	if !l.deliver(server) {
		client.kill()
		return nil, fmt.Errorf("netsim: dial %s->%s: listener closed: %w", from, to, ErrRefused)
	}
	return client, nil
}

// Dialer returns a dial function bound to a from→to link, in the shape the
// rpc package's reconnecting client wants.
func (n *Network) Dialer(from, to string) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) { return n.Dial(from, to) }
}

// newPair builds a connected duplex pair; a is the from side.
func (n *Network) newPair(from, to string) (a, b *Conn) {
	a = &Conn{net: n, local: from, remote: to}
	b = &Conn{net: n, local: to, remote: from}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer, b.peer = b, a
	n.mu.Lock()
	n.conns[a] = struct{}{}
	n.conns[b] = struct{}{}
	n.mu.Unlock()
	return a, b
}

// --- conn ---

// Conn is one side of a simulated duplex stream. It implements net.Conn.
// Faults are decided on the write side; reads just drain the inbox.
type Conn struct {
	net           *Network
	local, remote string
	peer          *Conn

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  bytes.Buffer
	closed bool // this side Closed locally
	reset  bool // killed: reads fail immediately, buffered data discarded
	eof    bool // peer closed gracefully: reads drain then EOF
}

// Read drains the inbox, blocking until data, EOF, or a reset.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.reset {
			return 0, ErrReset
		}
		if c.closed {
			return 0, ErrClosed
		}
		if c.inbox.Len() > 0 {
			return c.inbox.Read(p)
		}
		if c.eof {
			return 0, io.EOF
		}
		c.cond.Wait()
	}
}

// Write submits one message to the fault schedule, then delivers it to the
// peer's inbox (possibly after a delay), discards it, or resets the
// connection.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrReset
	}
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.mu.Unlock()

	f, delay := c.net.decide(c.local, c.remote)
	switch f {
	case fateDrop:
		c.net.kills.Inc()
		c.kill()
		c.peer.kill()
		return 0, fmt.Errorf("%w (message dropped %s->%s)", ErrReset, c.local, c.remote)
	case fateBlackhole, fateCut:
		// Acknowledged to the sender, never delivered.
		return len(p), nil
	case fateDelay:
		time.Sleep(delay)
	}
	return c.peer.receive(p)
}

// receive appends delivered bytes to this side's inbox.
func (c *Conn) receive(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset || c.closed {
		// The receiver is gone; the sender's stream is broken.
		return 0, ErrReset
	}
	c.inbox.Write(p)
	c.cond.Signal()
	return len(p), nil
}

// Close shuts this side down gracefully: the peer drains buffered data and
// then reads EOF.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed || c.reset {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.peer.peerClosed()
	c.net.forget(c)
	return nil
}

func (c *Conn) peerClosed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eof = true
	c.cond.Broadcast()
}

// Kill resets the connection from outside — the hard-close fault.
func (c *Conn) Kill() {
	c.net.kills.Inc()
	c.net.mu.Lock()
	c.net.note("kill", c.local, c.remote)
	c.net.mu.Unlock()
	c.kill()
	c.peer.kill()
}

func (c *Conn) kill() {
	c.mu.Lock()
	if !c.reset {
		c.reset = true
		c.inbox.Reset()
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	c.net.forget(c)
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return addr(c.local) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return addr(c.remote) }

// SetDeadline implements net.Conn; deadlines are not simulated.
func (c *Conn) SetDeadline(t time.Time) error { return nil }

// SetReadDeadline implements net.Conn; deadlines are not simulated.
func (c *Conn) SetReadDeadline(t time.Time) error { return nil }

// SetWriteDeadline implements net.Conn; deadlines are not simulated.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }
