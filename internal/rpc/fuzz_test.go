package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"smalldb/internal/obs"
	"smalldb/internal/pickle"
)

// frameBytes builds a well-formed untraced frame around payload.
func frameBytes(payload []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	return append(hdr[:n], payload...)
}

// tracedFrameBytes builds a frame carrying the trace-context extension.
func tracedFrameBytes(payload []byte, sc obs.SpanContext) []byte {
	var hdr [4 * binary.MaxVarintLen64]byte
	n := 0
	hdr[n] = 0
	n++
	n += binary.PutUvarint(hdr[n:], uint64(sc.Trace))
	n += binary.PutUvarint(hdr[n:], uint64(sc.Span))
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	return append(hdr[:n], payload...)
}

// FuzzDecodeFrame feeds arbitrary bytes to the wire-frame reader and the
// full message decoder. Truncated, garbage, or oversized frames must
// error — never panic, hang, or allocate anywhere near the claimed length.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: a valid request frame, the same frame with a trace
	// context, empty input, a truncated frame, an oversized length claim,
	// and a bare extension sentinel (a zero length with nothing after it).
	valid, err := pickle.Marshal(&request{ID: 1, Method: "NS.Lookup", Client: "c1", Token: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frameBytes(valid))
	f.Add(tracedFrameBytes(valid, obs.SpanContext{Trace: 0xdeadbeef, Span: 0x1234}))
	f.Add([]byte{})
	f.Add(frameBytes(valid)[:3])
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], maxMessage+1)
	f.Add(huge[:n])
	f.Add([]byte{0})
	// A doubled sentinel: extension header followed by another zero length
	// must error, not recurse or loop.
	f.Add([]byte{0, 1, 1, 0})
	// A large claimed length with only a few real bytes: must error from
	// truncation without allocating the claimed size up front.
	var big [binary.MaxVarintLen64]byte
	n = binary.PutUvarint(big[:], 32<<20)
	f.Add(append(big[:n], 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf, _, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			if len(buf) > maxMessage {
				t.Fatalf("readFrame returned %d bytes, over the limit", len(buf))
			}
			if len(buf) > len(data) {
				t.Fatalf("readFrame returned %d bytes from %d input bytes", len(buf), len(data))
			}
		}
		// The full decode path must also never panic on garbage.
		var req request
		_, _ = readMessage(bufio.NewReader(bytes.NewReader(data)), &req)
	})
}

// TestFrameRoundTrip pins the framing format: writeMessage output decodes
// through readMessage, untraced frames carry no context, and traced frames
// carry theirs intact.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	in := &request{ID: 42, Method: "Svc.M", Client: "me", Token: 9}
	if err := writeMessage(&buf, &mu, in, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	var out request
	sc, err := readMessage(bufio.NewReader(&buf), &out)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Valid() {
		t.Fatalf("untraced frame decoded with context %+v", sc)
	}
	if out.ID != in.ID || out.Method != in.Method || out.Client != in.Client || out.Token != in.Token {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

// TestFrameRoundTripTraced pins the trace-context extension: the context
// survives the wire and the payload still decodes.
func TestFrameRoundTripTraced(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	in := &request{ID: 7, Method: "Svc.M"}
	want := obs.SpanContext{Trace: 0xfeedface01, Span: 0xabc}
	if err := writeMessage(&buf, &mu, in, want); err != nil {
		t.Fatal(err)
	}
	var out request
	sc, err := readMessage(bufio.NewReader(&buf), &out)
	if err != nil {
		t.Fatal(err)
	}
	if sc != want {
		t.Fatalf("trace context mangled: got %+v want %+v", sc, want)
	}
	if out.ID != in.ID || out.Method != in.Method {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

// TestReadFrameUntracedCompat pins backwards compatibility byte-for-byte:
// a frame written with a zero context is identical to the pre-extension
// framing (no sentinel, no IDs).
func TestReadFrameUntracedCompat(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	in := &request{ID: 3, Method: "Svc.M"}
	if err := writeMessage(&buf, &mu, in, obs.SpanContext{}); err != nil {
		t.Fatal(err)
	}
	payload, err := pickle.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), frameBytes(payload)) {
		t.Fatal("untraced frame differs from legacy framing")
	}
}

// TestReadFrameChunkedLargeFrame exercises the chunked-growth path with a
// genuine frame bigger than one chunk.
func TestReadFrameChunkedLargeFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, frameChunk*3+17)
	got, _, err := readFrame(bufio.NewReader(bytes.NewReader(frameBytes(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("large frame corrupted: %d bytes", len(got))
	}
}

// TestReadFrameOversizedClaim checks an over-limit length errors without
// reading the body.
func TestReadFrameOversizedClaim(t *testing.T) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], maxMessage+1)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:n]))); err == nil {
		t.Fatal("oversized claim accepted")
	}
}

// TestReadFrameDoubleSentinel checks that a zero length following the
// extension header errors instead of being treated as a nested extension.
func TestReadFrameDoubleSentinel(t *testing.T) {
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 1, 1, 0}))); err == nil {
		t.Fatal("double sentinel accepted")
	}
}
