package wal

import (
	"fmt"
	"sync"

	"smalldb/internal/vfs"
)

// Sharded recovery: each stream is scanned and decoded exactly like a
// single log — ReplayPipelined's decode-parallel/apply-ordered pattern —
// but the apply loop merges the streams by global sequence: all stream
// scanners run concurrently, a shared worker pool decodes payloads out of
// order, and the caller's goroutine repeatedly applies the smallest
// sequence among the streams' next entries. The merged prefix must be
// dense: the first missing sequence ends recovery, because the epoch
// barrier acknowledges sequences strictly in order — an acknowledged
// update's epoch synced on every participating stream, so every sequence
// up to the durable frontier is present, and anything beyond a gap belongs
// to an epoch whose barrier never completed and was never acknowledged.
// With Repair, those beyond-the-gap entries are truncated from their
// streams ("unsynced epochs fully discarded") so a reopened log appends
// cleanly after the frontier.
//
// The paper's skip-damaged-entry recovery (§4) is a single-stream feature:
// in a merge, hopping over a damaged entry would be indistinguishable from
// truncating at a gap, and truncating after hard damage could discard
// acknowledged entries on other streams. A damaged entry mid-stream
// therefore fails sharded recovery loudly (the retained-version fallback
// chain still applies).

// ShardedReplayResult describes what sharded recovery found.
type ShardedReplayResult struct {
	// Names are the stream files discovered, in stream order.
	Names []string
	// StreamResults holds each stream's own replay result, index-aligned
	// with Names.
	StreamResults []ReplayResult
	// Entries is the number of entries applied: the merged dense prefix.
	Entries int
	// LastSeq is the sequence of the last applied entry (0 if none).
	LastSeq uint64
	// NextSeq is the sequence a reopened log should continue from.
	NextSeq uint64
	// Truncated reports that at least one stream ended in a torn tail.
	Truncated bool
	// Damaged is the number of unreadable entries skipped — only possible
	// on the single-stream degenerate path, where SkipDamaged applies.
	Damaged int
	// GapAt is the first missing sequence (0 when the merge was dense to
	// the end): the point where an epoch's barrier was interrupted.
	GapAt uint64
	// Discarded counts intact entries found beyond GapAt and discarded as
	// unacknowledged.
	Discarded int
}

// FirstSeqSharded reports the lowest first sequence across the streams of
// a sharded log — the merge's starting sequence — with ok=false when every
// stream is empty. Diagnostic tools use it as they use FirstSeq.
func FirstSeqSharded(fs vfs.FS, base string) (uint64, bool, error) {
	names, err := ShardFiles(fs, base)
	if err != nil {
		return 0, false, err
	}
	var min uint64
	found := false
	for _, n := range names {
		seq, ok, err := FirstSeq(fs, n)
		if err != nil {
			return 0, false, err
		}
		if ok && (!found || seq < min) {
			min, found = seq, true
		}
	}
	return min, found, nil
}

// ReplayShardedPipelined replays every stream of the sharded log rooted at
// base (whatever streams exist on disk, regardless of the configured shard
// count), decoding entries concurrently on up to workers goroutines and
// applying them strictly in global sequence order starting at firstSeq.
// With a single stream file it degenerates to ReplayPipelined — byte-
// identical to the paper's sequential recovery, SkipDamaged included.
func ReplayShardedPipelined(fs vfs.FS, base string, firstSeq uint64, opts ReplayOptions, workers int,
	decode func(seq uint64, payload []byte) (any, error),
	apply func(seq uint64, v any) error) (ShardedReplayResult, error) {
	names, err := ShardFiles(fs, base)
	if err != nil {
		return ShardedReplayResult{}, err
	}
	if len(names) == 0 {
		// No stream files at all: surface the same error a single-stream
		// replay of the missing base would.
		_, err := fs.Open(base)
		return ShardedReplayResult{}, err
	}
	if len(names) == 1 && names[0] == base {
		res, err := ReplayPipelined(fs, base, firstSeq, opts, workers, decode, apply)
		return ShardedReplayResult{
			Names:         names,
			StreamResults: []ReplayResult{res},
			Entries:       res.Entries,
			LastSeq:       res.LastSeq,
			NextSeq:       res.NextSeq,
			Truncated:     res.Truncated,
			Damaged:       res.Damaged,
		}, err
	}

	// Per-stream scans deliver jobs in stream order on their own channel
	// (for the merge) and into the shared decode pool. Monotonic replaces
	// the dense check within a stream; SkipDamaged is off (see above).
	sopts := opts
	sopts.Monotonic = true
	sopts.SkipDamaged = false
	if workers < 1 {
		workers = 1
	}

	type streamScan struct {
		ch  chan *replayJob
		res ReplayResult
		err error
	}
	scans := make([]*streamScan, len(names))
	jobs := make(chan *replayJob, 2*workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var decodeWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		decodeWG.Add(1)
		go func() {
			defer decodeWG.Done()
			for j := range jobs {
				j.v, j.err = decode(j.seq, j.payload)
				close(j.done)
			}
		}()
	}

	var scanWG sync.WaitGroup
	for si, name := range names {
		sc := &streamScan{ch: make(chan *replayJob, 2*workers)}
		scans[si] = sc
		scanWG.Add(1)
		go func(name string) {
			defer scanWG.Done()
			sc.res, sc.err = Replay(fs, name, firstSeq, sopts, func(seq uint64, payload []byte) error {
				j := &replayJob{seq: seq, payload: payload, done: make(chan struct{})}
				select {
				case sc.ch <- j:
				case <-stop:
					return errStopped
				}
				select {
				case jobs <- j:
				case <-stop:
					return errStopped
				}
				return nil
			})
			close(sc.ch)
		}(name)
	}
	go func() {
		scanWG.Wait()
		close(jobs)
	}()

	// The merge: keep one head per stream, apply the smallest, refill.
	// Refilling blocks on that stream's scanner — necessary, since any
	// stream might hold the next expected sequence (the stream count may
	// have changed since the entries were written).
	res := ShardedReplayResult{Names: names, NextSeq: firstSeq}
	heads := make([]*replayJob, len(scans))
	expect := firstSeq
	var applyErr error
merge:
	for {
		best := -1
		for i, sc := range scans {
			if heads[i] == nil && sc.ch != nil {
				j, ok := <-sc.ch
				if !ok {
					scans[i].ch = nil
				} else {
					heads[i] = j
				}
			}
			if heads[i] != nil && (best == -1 || heads[i].seq < heads[best].seq) {
				best = i
			}
		}
		if best == -1 {
			break // every stream drained
		}
		j := heads[best]
		switch {
		case j.seq < expect:
			// In-stream regressions are caught by Monotonic; a
			// cross-stream duplicate means the files disagree about
			// the ticket — corruption, not a crash artifact.
			applyErr = fmt.Errorf("wal: %s: duplicate sequence %d across streams of %s", names[best], j.seq, base)
			halt()
			break merge
		case j.seq > expect:
			// The first missing sequence: the acknowledged prefix ends
			// here. Everything still unapplied was never acknowledged.
			res.GapAt = expect
			halt()
			break merge
		}
		heads[best] = nil
		<-j.done
		if j.err != nil {
			applyErr = j.err
			halt()
			break
		}
		if err := apply(j.seq, j.v); err != nil {
			applyErr = err
			halt()
			break
		}
		res.Entries++
		res.LastSeq = j.seq
		expect = j.seq + 1
		res.NextSeq = expect
	}
	halt()
	scanWG.Wait()
	decodeWG.Wait()

	res.StreamResults = make([]ReplayResult, len(scans))
	scanned := 0
	for i, sc := range scans {
		res.StreamResults[i] = sc.res
		if sc.res.Truncated {
			res.Truncated = true
		}
		scanned += sc.res.Entries
		if sc.err != nil && sc.err != errStopped && applyErr == nil {
			applyErr = sc.err
		}
	}
	if applyErr != nil {
		return res, applyErr
	}
	if res.GapAt != 0 {
		res.Discarded = scanned - res.Entries
		if opts.Repair {
			// Discard the unacknowledged epochs: truncate every stream
			// after its last intact entry below the gap, so a reopened
			// log reuses the sequences without colliding with stale
			// frames.
			for _, name := range names {
				if err := truncateBeyondSeq(fs, name, res.GapAt-1); err != nil {
					return res, err
				}
			}
		}
	}
	return res, nil
}

// truncateBeyondSeq truncates the named stream file after its last leading
// intact entry with sequence <= maxSeq. The scan stops at the first torn
// or damaged frame too, so a stream's unreadable tail goes with its
// beyond-the-gap entries.
func truncateBeyondSeq(fs vfs.FS, name string, maxSeq uint64) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	var off, good int64
	for off < size {
		seq, _, n, rerr := readEntry(f, off, size)
		if rerr != nil || seq > maxSeq {
			break
		}
		off += n
		good = off
	}
	if err := f.Close(); err != nil {
		return err
	}
	if good == size {
		return nil
	}
	rw, err := fs.OpenRW(name)
	if err != nil {
		return err
	}
	if err := rw.Truncate(good); err != nil {
		rw.Close()
		return err
	}
	if err := rw.Sync(); err != nil {
		rw.Close()
		return err
	}
	return rw.Close()
}
