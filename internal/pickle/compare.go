package pickle

import (
	"reflect"
	"strings"
	"sync"
)

// Map keys are sorted before encoding so that the same logical map always
// pickles to the same bytes. The ordering function is compiled once per key
// type and cached, so sorting a large map makes no per-comparison kind
// decisions.

// A cmpFn orders two values of one fixed type: negative, zero or positive
// as a sorts before, equal to, or after b.
type cmpFn func(a, b reflect.Value) int

var keyComparers sync.Map // reflect.Type -> cmpFn (nil entries stored as (*cmpFn)(nil) sentinel)

// keyComparer returns a compiled ordering for map keys of type rt, or nil
// when the type admits no stable order (pointers, interfaces, channels) —
// such maps are encoded in iteration order, as before.
func keyComparer(rt reflect.Type) cmpFn {
	if f, ok := keyComparers.Load(rt); ok {
		if f == nil {
			return nil
		}
		return f.(cmpFn)
	}
	fn := buildComparer(rt)
	if fn == nil {
		keyComparers.Store(rt, nil)
	} else {
		keyComparers.Store(rt, fn)
	}
	return fn
}

func buildComparer(rt reflect.Type) cmpFn {
	switch rt.Kind() {
	case reflect.String:
		return func(a, b reflect.Value) int { return strings.Compare(a.String(), b.String()) }
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(a, b reflect.Value) int { return cmpOrdered(a.Int(), b.Int()) }
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return func(a, b reflect.Value) int { return cmpOrdered(a.Uint(), b.Uint()) }
	case reflect.Float32, reflect.Float64:
		// NaNs compare as equal to everything, matching the previous
		// behavior of sorting with a < predicate.
		return func(a, b reflect.Value) int { return cmpOrdered(a.Float(), b.Float()) }
	case reflect.Bool:
		return func(a, b reflect.Value) int {
			x, y := a.Bool(), b.Bool()
			switch {
			case x == y:
				return 0
			case !x:
				return -1
			default:
				return 1
			}
		}
	case reflect.Complex64, reflect.Complex128:
		return func(a, b reflect.Value) int {
			x, y := a.Complex(), b.Complex()
			if c := cmpOrdered(real(x), real(y)); c != 0 {
				return c
			}
			return cmpOrdered(imag(x), imag(y))
		}
	case reflect.Array:
		elem := buildComparer(rt.Elem())
		if elem == nil {
			return nil
		}
		n := rt.Len()
		return func(a, b reflect.Value) int {
			for i := 0; i < n; i++ {
				if c := elem(a.Index(i), b.Index(i)); c != 0 {
					return c
				}
			}
			return 0
		}
	case reflect.Struct:
		// Compare every field — including unexported ones, which the
		// typed accessors used by the compiled comparers can read — so
		// the order is total across distinct map keys.
		n := rt.NumField()
		fns := make([]cmpFn, n)
		for i := 0; i < n; i++ {
			if fns[i] = buildComparer(rt.Field(i).Type); fns[i] == nil {
				return nil
			}
		}
		return func(a, b reflect.Value) int {
			for i, fn := range fns {
				if c := fn(a.Field(i), b.Field(i)); c != 0 {
					return c
				}
			}
			return 0
		}
	default:
		return nil
	}
}

func cmpOrdered[T int64 | uint64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
